/* getrusage-based peak-RSS fallback for platforms (or sandboxes) where
   /proc/self/status is unavailable. ru_maxrss is KiB on Linux. */
#include <caml/mlvalues.h>
#include <sys/resource.h>

CAMLprim value nocap_rss_getrusage_maxrss_kb(value unit)
{
  struct rusage ru;
  (void)unit;
  if (getrusage(RUSAGE_SELF, &ru) != 0)
    return Val_long(0);
  return Val_long((long)ru.ru_maxrss);
}
