(* Circuit static-analysis bench: lints the shipped workload corpus, emits
   the structure reports the performance model consumes, and replays a
   seeded mutation sweep demanding zero silent accepts — every weakened
   circuit must trip its operator's expected lint rule.

   Emits BENCH_analysis.json (validated against its own schema before exit)
   and exits non-zero on any lint error in the corpus, report inconsistency
   (Structure.consistent), or silent mutant.

   [run ~smoke:true] backs the @bench-smoke alias that tier-1 runs: it lints
   the fast corpus entries and sweeps >= 1000 mutants; the full run covers
   every corpus circuit with a larger sweep. *)

open Nocap_repro

let schema_id = "nocap-bench-analysis/v1"
let mutant_seed = 0xC1_6C_57L

(* Fast corpus subset for the smoke sweep: lint + mutate cost is dominated
   by circuit size, and these four stay under ~10 ms per lint. *)
let smoke_lint_names =
  [ "modexp"; "auction"; "ml_inference"; "verifiable_db"; "synthetic" ]

let smoke_mutate_names = [ "auction"; "ml_inference"; "verifiable_db"; "synthetic" ]

type circuit_row = {
  report : Circuit_report.t;
  verdict : Circuit_lint.verdict;
  density_rel : float;
  streamable : bool;
  consistent : bool;
  prover_seconds : float;
}

type mutant_totals = {
  total : int;
  caught : int;
  unsatisfied : int;  (* mutants the honest assignment no longer satisfies *)
  by_op : (string * int) list;
}

(* --- JSON emission ------------------------------------------------------ *)

let json_of_results ~smoke ~anchor_name (rows : circuit_row list)
    (m : mutant_totals) =
  let buf = Buffer.create 8192 in
  let adds fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  adds "{\n";
  adds "  \"schema\": %S,\n" schema_id;
  adds "  \"smoke\": %b,\n" smoke;
  adds "  \"seed\": %Ld,\n" mutant_seed;
  adds "  \"anchor\": %S,\n" anchor_name;
  adds "  \"circuits\": [\n";
  List.iteri
    (fun i r ->
      adds "    {\n";
      adds "      \"report\": %s,\n" (Circuit_report.to_json r.report);
      adds "      \"density_rel\": %.6f,\n" r.density_rel;
      adds "      \"streamable\": %b,\n" r.streamable;
      adds "      \"consistent\": %b,\n" r.consistent;
      adds "      \"prover_seconds_est\": %.9f,\n" r.prover_seconds;
      adds "      \"lint\": {\"errors\": %d, \"warnings\": %d, \"propagated\": %d, \"probe_unknowns\": %d, \"probe_free\": %d, \"probe_ops\": %d}\n"
        (List.length (Diag.errors r.verdict.Circuit_lint.diags))
        (List.length (Diag.warnings r.verdict.Circuit_lint.diags))
        r.verdict.Circuit_lint.propagated r.verdict.Circuit_lint.probe_unknowns
        r.verdict.Circuit_lint.probe_free r.verdict.Circuit_lint.probe_ops;
      adds "    }%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  adds "  ],\n";
  adds "  \"mutants\": {\n";
  adds "    \"total\": %d,\n" m.total;
  adds "    \"caught\": %d,\n" m.caught;
  adds "    \"silent_accepts\": %d,\n" (m.total - m.caught);
  adds "    \"unsatisfied\": %d,\n" m.unsatisfied;
  adds "    \"by_op\": { %s }\n"
    (String.concat ", "
       (List.map (fun (k, n) -> Printf.sprintf "%S: %d" k n) m.by_op));
  adds "  }\n";
  adds "}\n";
  Buffer.contents buf

(* --- schema validation (shared parser in Json_min) ---------------------- *)

open Json_min

let validate_schema (s : string) : (unit, string) result =
  try
    let j = parse_json s in
    if as_str (field j "schema") <> schema_id then
      raise (Bad_json "wrong schema id");
    let circuits = as_list (field j "circuits") in
    if circuits = [] then raise (Bad_json "circuits must be non-empty");
    List.iter
      (fun c ->
        let report = field c "report" in
        if as_str (field report "name") = "" then
          raise (Bad_json "circuit name must be non-empty");
        if as_num (field report "total_nnz") <= 0.0 then
          raise (Bad_json "total_nnz must be positive");
        if as_num (field report "density_factor") <= 0.0 then
          raise (Bad_json "density_factor must be positive");
        if as_num (field c "density_rel") <= 0.0 then
          raise (Bad_json "density_rel must be positive");
        if not (as_bool (field c "consistent")) then
          raise (Bad_json "report failed Structure.consistent");
        let lint = field c "lint" in
        if as_num (field lint "errors") <> 0.0 then
          raise (Bad_json "corpus circuit has lint errors");
        if as_num (field lint "probe_free") <> 0.0 then
          raise (Bad_json "corpus circuit has residual degrees of freedom"))
      circuits;
    let m = field j "mutants" in
    let num k = int_of_float (as_num (field m k)) in
    if num "total" < 1000 then
      raise (Bad_json "mutant sweep must cover >= 1000 mutants");
    if num "silent_accepts" <> 0 then
      raise (Bad_json "silent accepts in the mutation sweep");
    if num "caught" <> num "total" then
      raise (Bad_json "caught must account for every mutant");
    if num "unsatisfied" <> 0 then
      raise (Bad_json "a mutation operator broke satisfiability");
    let op_total =
      match field m "by_op" with
      | Obj kvs ->
        List.fold_left (fun acc (_, v) -> acc + int_of_float (as_num v)) 0 kvs
      | _ -> raise (Bad_json "by_op must be an object")
    in
    if op_total <> num "total" then
      raise (Bad_json "by_op must sum to total");
    Ok ()
  with Bad_json msg -> Error msg

(* --- driver ------------------------------------------------------------- *)

let run ?(smoke = false) ?(path = "BENCH_analysis.json") () =
  Zk_report.Render.section
    (Printf.sprintf "Circuit analysis: lint + structure + mutation oracle%s"
       (if smoke then " (smoke)" else ""));
  let entries name_filter =
    List.filter
      (fun (e : Circuit_corpus.entry) ->
        match name_filter with
        | None -> true
        | Some names -> List.mem e.Circuit_corpus.name names)
      Circuit_corpus.entries
  in
  let lint_entries = entries (if smoke then Some smoke_lint_names else None) in
  (* The sweep lints every mutant, so it sticks to the fast circuits in both
     modes; the full run compensates with a much larger draw count. *)
  let mutate_entries = entries (Some smoke_mutate_names) in
  (* Anchor: the AES circuit defines density 1.0 for the performance model.
     Building its report does not require linting it, so the smoke run pays
     only generation + one entries pass. *)
  let anchor_entry =
    match Circuit_corpus.find "aes128" with
    | Some e -> e
    | None -> failwith "corpus must contain aes128"
  in
  let anchor_inst, _ = anchor_entry.Circuit_corpus.generate ~scale:1 in
  let anchor = Circuit_report.of_instance ~name:"aes128" anchor_inst in
  let rows =
    List.map
      (fun (e : Circuit_corpus.entry) ->
        let inst, asgn = e.Circuit_corpus.generate ~scale:1 in
        let verdict = Circuit_lint.analyze inst asgn in
        let report = Circuit_report.of_instance ~name:e.Circuit_corpus.name inst in
        {
          report;
          verdict;
          density_rel = Structure.density_relative ~anchor report;
          streamable = Structure.spmv_streamable report;
          consistent = Result.is_ok (Structure.consistent report);
          prover_seconds = Structure.prover_seconds_of_report ~anchor report;
        })
      lint_entries
  in
  Zk_report.Render.table
    ~header:
      [ "circuit"; "rows"; "nnz"; "density"; "errors"; "warnings"; "probed"; "free" ]
    (List.map
       (fun r ->
         [
           r.report.Circuit_report.name;
           string_of_int r.report.Circuit_report.num_constraints;
           string_of_int r.report.Circuit_report.total_nnz;
           Printf.sprintf "%.2f" r.density_rel;
           string_of_int (List.length (Diag.errors r.verdict.Circuit_lint.diags));
           string_of_int
             (List.length (Diag.warnings r.verdict.Circuit_lint.diags));
           string_of_int r.verdict.Circuit_lint.probe_unknowns;
           string_of_int r.verdict.Circuit_lint.probe_free;
         ])
       rows);
  let dirty =
    List.filter
      (fun r ->
        (not (Circuit_lint.is_clean r.verdict)) || not r.consistent)
      rows
  in
  if dirty <> [] then begin
    List.iter
      (fun r ->
        Printf.eprintf "circuit %s FAILED: %s%s\n%!"
          r.report.Circuit_report.name
          (Circuit_lint.summary r.verdict)
          (match Structure.consistent r.report with
          | Ok () -> ""
          | Error m -> "; report inconsistent: " ^ m);
        List.iter
          (fun d -> Printf.eprintf "  %s\n%!" (Diag.to_string d))
          (Diag.errors r.verdict.Circuit_lint.diags))
      dirty;
    exit 1
  end;
  (* Mutation sweep: every weakened circuit must trip its operator's
     expected rule, and the honest assignment must still satisfy it (the
     operators are weakenings, not corruptions). *)
  let per_circuit = if smoke then 260 else 1500 in
  let total = ref 0 and caught = ref 0 and unsat = ref 0 in
  let by_op = Hashtbl.create 8 in
  let silent = ref [] in
  List.iter
    (fun (e : Circuit_corpus.entry) ->
      let inst, asgn = e.Circuit_corpus.generate ~scale:1 in
      List.iter
        (fun (op, mutant) ->
          incr total;
          let name = Circuit_mutate.op_name op in
          Hashtbl.replace by_op name
            (1 + try Hashtbl.find by_op name with Not_found -> 0);
          if not (R1cs.satisfied mutant asgn) then incr unsat;
          let diags = Circuit_lint.lint mutant asgn in
          if Diag.has_rule (Circuit_mutate.expected_rule op) diags then
            incr caught
          else
            silent :=
              Printf.sprintf "%s/%s" e.Circuit_corpus.name
                (Circuit_mutate.op_to_string op)
              :: !silent)
        (Circuit_mutate.sweep ~seed:mutant_seed ~count:per_circuit inst asgn))
    mutate_entries;
  Printf.printf "mutation sweep: %d mutants, %d caught, %d silent, %d unsatisfied\n%!"
    !total !caught (!total - !caught) !unsat;
  if !total <> !caught || !unsat > 0 then begin
    List.iter (fun s -> Printf.eprintf "SILENT ACCEPT: %s\n%!" s) !silent;
    if !unsat > 0 then
      Printf.eprintf "mutation operators broke satisfiability %d times\n%!" !unsat;
    exit 1
  end;
  let totals =
    {
      total = !total;
      caught = !caught;
      unsatisfied = !unsat;
      by_op = Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_op [];
    }
  in
  let json = json_of_results ~smoke ~anchor_name:"aes128" rows totals in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  (match validate_schema json with
  | Ok () -> Printf.printf "wrote %s (schema %s, valid)\n%!" path schema_id
  | Error msg ->
    Printf.eprintf "BENCH_analysis.json failed schema validation: %s\n%!" msg;
    exit 1);
  rows
