(* Parallel-runtime benchmark: times serial vs. multi-domain runs of each
   converted prover kernel plus an end-to-end Spartan prove, cross-checks
   that every domain count produced identical results, and emits
   BENCH_parallel.json (validated against its own schema before exit).

   Schema v2 additions: a [dispatch] micro-row (latency of an empty-body
   parallel_for per domain count — the pure pool overhead), a [host_domains]
   field (what the OS reports), a measured [recommended_domains] (the domain
   count with the best geometric-mean speedup across kernels on THIS host),
   and per-kernel [grain] / [crossover_n] fields recording the adaptive
   chunk hint each kernel hands the pool.

   [run ~smoke:true] uses tiny sizes — it backs the @bench-smoke alias that
   tier-1 verify builds, so it must stay fast and loud on regressions. On
   top of the fingerprint cross-checks, smoke mode asserts that the empty
   dispatch stays under a pinned latency ceiling and that no kernel slows
   down more than 10% when routed through a 1-domain pool. *)

open Nocap_repro

let wall () = Unix.gettimeofday ()

(* Best-of-r wall time: robust to scheduler noise without needing a long
   quota like Bechamel's OLS. *)
let time_best ~reps f =
  (* Start each measurement from a settled heap so a major GC triggered by
     the previous configuration is not charged to this one. *)
  Gc.major ();
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = wall () in
    ignore (Sys.opaque_identity (f ()));
    let dt = wall () -. t0 in
    if dt < !best then best := dt
  done;
  !best

type kernel = {
  k_name : string;
  k_n : int; (* problem size, for the report *)
  k_grain : int; (* chunk hint the kernel's hot loop hands the pool; 0 = composite *)
  k_run : unit -> string; (* returns a result fingerprint for equality checks *)
}

let kernels ~smoke rng =
  let scale b s = if smoke then s else b in
  let merkle_n = scale 8192 256 in
  let leaves =
    Array.init merkle_n (fun i -> Keccak.sha3_256_string (string_of_int i))
  in
  let keccak_n = scale 2048 64 in
  let keccak_msgs = Array.init keccak_n (fun i -> Bytes.make 512 (Char.chr (i land 0xff))) in
  let enc_rows = scale 64 8 in
  let enc_cols = scale 1024 64 in
  let rows = Array.init enc_rows (fun _ -> Array.init enc_cols (fun _ -> Gf.random rng)) in
  let sc_n = scale (1 lsl 14) (1 lsl 8) in
  let sc_tables = Array.init 4 (fun _ -> Array.init sc_n (fun _ -> Gf.random rng)) in
  let sc_comb v = Gf.mul v.(0) (Gf.sub (Gf.mul v.(1) v.(2)) v.(3)) in
  let sc_claim =
    let acc = ref Gf.zero in
    for b = 0 to sc_n - 1 do
      acc := Gf.add !acc (sc_comb (Array.map (fun t -> t.(b)) sc_tables))
    done;
    !acc
  in
  (* 2^12 points: enough for ~26 ten-bit windows, so window-level
     parallelism is actually exposed (128 points kept the whole MSM under
     the serial crossover and benchmarked nothing). *)
  let msm_n = scale 4096 64 in
  let msm_scalars = Array.init msm_n (fun _ -> Fr_bls.random rng) in
  let msm_points = Array.init msm_n (fun _ -> G1.random rng) in
  let msm_c = Msm.window_for msm_n in
  let orion_n = scale (1 lsl 12) (1 lsl 8) in
  let orion_table = Array.init orion_n (fun _ -> Gf.random rng) in
  let orion_rows = scale 64 16 in
  let orion_params =
    { Orion.rows = orion_rows; code = (module Reed_solomon); proximity_count = 4; zk = true }
  in
  let e2e_constraints = scale 2000 200 in
  let e2e = lazy (Synthetic.circuit ~n_constraints:e2e_constraints ~seed:42L ()) in
  [
    {
      k_name = "merkle-build";
      k_n = merkle_n;
      (* hash2_pairs: one Keccak permutation per pair. *)
      k_grain = Pool.grain_of_ns (Keccak.block_ns ());
      k_run = (fun () -> Keccak.to_hex (Merkle.root (Merkle.build leaves)));
    };
    {
      k_name = "keccak-batch";
      k_n = keccak_n;
      k_grain = Keccak.batch_grain ~msg_bytes:512;
      k_run =
        (fun () ->
          let ds = Keccak.sha3_256_batch keccak_msgs in
          Keccak.to_hex ds.(Array.length ds - 1));
    };
    {
      k_name = "rs-encode-rows";
      k_n = enc_rows * enc_cols;
      k_grain = Pool.grain_of_ns (Reed_solomon.row_encode_ns ~cols:enc_cols);
      k_run =
        (fun () ->
          let e = Reed_solomon.encode_batch rows in
          Gf.to_string e.(enc_rows - 1).(0));
    };
    {
      k_name = "sumcheck-prove";
      k_n = sc_n;
      (* First-round evaluation grain: degree 3, comb_mults 2, 4 tables. *)
      k_grain = Pool.grain_of_ns (max 1 ((3 + 1) * (2 + 4) * 20));
      k_run =
        (fun () ->
          let t = Transcript.create "bench-parallel" in
          let r =
            Sumcheck.prove ~comb_mults:2 t ~degree:3 ~tables:sc_tables ~comb:sc_comb
              ~claim:sc_claim
          in
          Gf.to_string r.Sumcheck.challenges.(Array.length r.Sumcheck.challenges - 1));
    };
    {
      k_name = "msm-pippenger";
      k_n = msm_n;
      k_grain =
        Pool.grain_of_ns (max 1 ((msm_n + (2 * (1 lsl msm_c)) + msm_c) * 1_500));
      k_run = (fun () -> if G1.is_infinity (Msm.pippenger msm_scalars msm_points) then "inf" else "pt");
    };
    {
      k_name = "orion-commit";
      k_n = orion_n;
      k_grain = Pool.grain_of_ns (Reed_solomon.row_encode_ns ~cols:(orion_n / orion_rows));
      k_run =
        (fun () ->
          let _, cm = Orion.commit orion_params (Rng.create 1L) orion_table in
          Keccak.to_hex cm.Orion.root);
    };
    {
      k_name = "endtoend-prove";
      k_n = e2e_constraints;
      k_grain = 0;
      k_run =
        (fun () ->
          let inst, asn = Lazy.force e2e in
          let proof, _ = Spartan.prove Spartan.test_params inst asn in
          Keccak.to_hex proof.Spartan.w_commitment.Orion.root);
    };
  ]

type timing = { domains : int; seconds : float; speedup : float }

type row = { kernel : kernel; serial_seconds : float; timings : timing list }

type dispatch = { d_domains : int; d_seconds : float }

let domain_counts () =
  let n = Pool.default_domains () in
  List.sort_uniq compare (1 :: 2 :: 4 :: [ n ])

(* Empty-body parallel_for latency: the pool's pure dispatch cost (submit,
   wake, steal-to-empty, retire, wait). grain:1 over 64 indices forces the
   parallel path even at one domain. *)
let measure_dispatch ~smoke () =
  let iters = if smoke then 100 else 1000 in
  List.map
    (fun d ->
      Pool.with_domains d (fun () ->
          Pool.parallel_for ~grain:1 ~n:64 (fun _ -> ());
          let t0 = wall () in
          for _ = 1 to iters do
            Pool.parallel_for ~grain:1 ~n:64 (fun _ -> ())
          done;
          { d_domains = d; d_seconds = (wall () -. t0) /. float_of_int iters }))
    (domain_counts ())

let measure ~smoke kernel =
  let reps = if smoke then 3 else 5 in
  (* Warm-up run (also the cross-domain-count reference fingerprint) so the
     serial baseline is not charged for plan/page/GC warm-up. *)
  let reference = Pool.with_domains 1 kernel.k_run in
  let serial_seconds =
    Pool.with_domains 1 (fun () -> time_best ~reps kernel.k_run)
  in
  let timings =
    List.map
      (fun d ->
        Pool.with_domains d (fun () ->
            let fp = kernel.k_run () in
            if not (String.equal fp reference) then
              failwith
                (Printf.sprintf "bench parallel: %s diverged at %d domains" kernel.k_name d);
            let seconds = time_best ~reps kernel.k_run in
            { domains = d; seconds; speedup = serial_seconds /. seconds }))
      (domain_counts ())
  in
  { kernel; serial_seconds; timings }

(* Domain count with the best geometric-mean speedup across kernels — a
   measured recommendation for THIS host, not the OS core count. Ties go to
   the smaller count (fewer domains, same throughput). *)
let recommended_domains rows =
  let geomean d =
    let logs =
      List.filter_map
        (fun r ->
          List.find_opt (fun t -> t.domains = d) r.timings
          |> Option.map (fun t -> log (max 1e-9 t.speedup)))
        rows
    in
    match logs with
    | [] -> 0.0
    | _ -> exp (List.fold_left ( +. ) 0.0 logs /. float_of_int (List.length logs))
  in
  List.fold_left
    (fun (best_d, best_g) d ->
      let g = geomean d in
      if g > best_g +. 1e-9 then (d, g) else (best_d, best_g))
    (1, geomean 1)
    (domain_counts ())
  |> fst

(* --- JSON emission ------------------------------------------------------ *)

let schema_id = "nocap-bench-parallel/v2"

let json_of_rows ~dispatch rows =
  let buf = Buffer.create 4096 in
  let adds fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  adds "{\n";
  adds "  \"schema\": %S,\n" schema_id;
  adds "  \"host_domains\": %d,\n" (Domain.recommended_domain_count ());
  adds "  \"recommended_domains\": %d,\n" (recommended_domains rows);
  adds "  \"domains\": [%s],\n"
    (String.concat ", " (List.map string_of_int (domain_counts ())));
  adds "  \"dispatch\": [\n";
  List.iteri
    (fun i d ->
      adds "    {\"domains\": %d, \"seconds\": %.9f}%s\n" d.d_domains d.d_seconds
        (if i = List.length dispatch - 1 then "" else ","))
    dispatch;
  adds "  ],\n";
  adds "  \"kernels\": [\n";
  List.iteri
    (fun i r ->
      adds "    {\n";
      adds "      \"name\": %S,\n" r.kernel.k_name;
      adds "      \"n\": %d,\n" r.kernel.k_n;
      adds "      \"grain\": %d,\n" r.kernel.k_grain;
      adds "      \"crossover_n\": %d,\n" (2 * r.kernel.k_grain);
      adds "      \"serial_seconds\": %.9f,\n" r.serial_seconds;
      adds "      \"timings\": [\n";
      List.iteri
        (fun j t ->
          adds "        {\"domains\": %d, \"seconds\": %.9f, \"speedup\": %.4f}%s\n"
            t.domains t.seconds t.speedup
            (if j = List.length r.timings - 1 then "" else ","))
        r.timings;
      adds "      ]\n";
      adds "    }%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  adds "  ]\n";
  adds "}\n";
  Buffer.contents buf

(* --- schema validation (shared parser in Json_min) ---------------------- *)

open Json_min

(* Required shape: schema id, host + recommended domain counts, one dispatch
   micro-row per domain count, and >= 4 kernels + the end-to-end prove,
   each with grain/crossover hints, serial time, and one timing per domain
   count. *)
let validate_schema (s : string) : (unit, string) result =
  try
    let j = parse_json s in
    if as_str (field j "schema") <> schema_id then raise (Bad_json "wrong schema id");
    if as_int (field j "host_domains") < 1 then raise (Bad_json "host_domains < 1");
    if as_int (field j "recommended_domains") < 1 then
      raise (Bad_json "recommended_domains < 1");
    let domains = List.map as_int (as_list (field j "domains")) in
    if domains = [] then raise (Bad_json "empty domains");
    let dispatch = as_list (field j "dispatch") in
    if List.length dispatch <> List.length domains then
      raise (Bad_json "one dispatch row per domain count required");
    List.iter
      (fun d ->
        ignore (as_int (field d "domains"));
        if not (as_num (field d "seconds") > 0.0) then
          raise (Bad_json "dispatch seconds must be positive"))
      dispatch;
    let kernels = as_list (field j "kernels") in
    if List.length kernels < 5 then raise (Bad_json "need >= 5 kernels");
    let names =
      List.map
        (fun k ->
          ignore (as_int (field k "n"));
          let grain = as_int (field k "grain") in
          if grain < 0 then raise (Bad_json "grain must be >= 0");
          if as_int (field k "crossover_n") <> 2 * grain then
            raise (Bad_json "crossover_n must equal 2 * grain");
          let serial = as_num (field k "serial_seconds") in
          if not (serial > 0.0) then raise (Bad_json "serial_seconds must be positive");
          let timings = as_list (field k "timings") in
          if List.length timings <> List.length domains then
            raise (Bad_json "one timing per domain count required");
          List.iter
            (fun t ->
              ignore (as_int (field t "domains"));
              let sec = as_num (field t "seconds") in
              if not (sec > 0.0) then raise (Bad_json "seconds must be positive");
              ignore (as_num (field t "speedup")))
            timings;
          as_str (field k "name"))
        kernels
    in
    if not (List.mem "endtoend-prove" names) then
      raise (Bad_json "endtoend-prove kernel missing");
    Ok ()
  with Bad_json msg -> Error msg

(* --- smoke assertions ---------------------------------------------------- *)

(* Pinned ceiling for one empty dispatch. A healthy pool needs ~1-30µs
   (spin-path handoff) even when domains are oversubscribed on one core;
   the pin leaves ~2 orders of magnitude of headroom so only real
   regressions (lost-wakeup stalls, accidental blocking waits on the hot
   path) trip it, not scheduler noise. *)
let dispatch_ceiling_seconds = 0.005

(* A 1-domain pool must run the same code the serial path runs (modulo
   dispatch); a kernel slowing down >10% there means the runtime is taxing
   single-core users. *)
let one_domain_floor = 0.9

let assert_smoke ~dispatch rows =
  (* Both pins compare timings of concurrently-scheduled configurations, so
     they are only meaningful when the host can actually run a second
     domain: on a 1-core box every multi-domain configuration timeshares
     one CPU, and a loaded machine makes both measurements pure noise.
     Skip (loudly, with the reason) rather than fail there. *)
  if Domain.recommended_domain_count () <= 1 then
    Printf.printf
      "bench-smoke SKIP: host_domains=1 — dispatch ceiling and 1-domain speedup pins need a \
       multi-core host (timings on a timeshared core are noise, not regressions)\n\
       %!"
  else begin
    let failures = ref [] in
    let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
    List.iter
      (fun d ->
        if d.d_seconds > dispatch_ceiling_seconds then
          fail "dispatch at %d domains took %.6fs > pinned ceiling %.6fs" d.d_domains
            d.d_seconds dispatch_ceiling_seconds)
      dispatch;
    List.iter
      (fun r ->
        match List.find_opt (fun t -> t.domains = 1) r.timings with
        | Some t when t.speedup < one_domain_floor ->
          fail "%s: 1-domain speedup %.2fx < %.2fx floor" r.kernel.k_name t.speedup
            one_domain_floor
        | _ -> ())
      rows;
    match !failures with
    | [] -> ()
    | fs ->
      List.iter (fun m -> Printf.eprintf "bench-smoke FAIL: %s\n" m) (List.rev fs);
      Printf.eprintf "%!";
      exit 1
  end

(* --- driver ------------------------------------------------------------- *)

let run ?(smoke = false) ?(path = "BENCH_parallel.json") () =
  Zk_report.Render.section
    (Printf.sprintf "Parallel runtime: serial vs. multi-domain%s"
       (if smoke then " (smoke)" else ""));
  let rng = Rng.create 0xD0_5EEDL in
  let dispatch = measure_dispatch ~smoke () in
  let rows = List.map (measure ~smoke) (kernels ~smoke rng) in
  Zk_report.Render.table
    ~header:("kernel" :: "n" :: "grain" :: "serial"
            :: List.map (fun d -> Printf.sprintf "%dd speedup" d) (domain_counts ()))
    (List.map
       (fun r ->
         r.kernel.k_name :: string_of_int r.kernel.k_n
         :: string_of_int r.kernel.k_grain
         :: Zk_report.Render.seconds r.serial_seconds
         :: List.map (fun t -> Printf.sprintf "%.2fx" t.speedup) r.timings)
       rows);
  Printf.printf "dispatch: %s\n"
    (String.concat "  "
       (List.map
          (fun d -> Printf.sprintf "%dd=%.1fus" d.d_domains (d.d_seconds *. 1e6))
          dispatch));
  Printf.printf "host_domains=%d recommended_domains=%d\n"
    (Domain.recommended_domain_count ())
    (recommended_domains rows);
  let json = json_of_rows ~dispatch rows in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  (match validate_schema json with
  | Ok () -> Printf.printf "wrote %s (schema %s, valid)\n%!" path schema_id
  | Error msg ->
    Printf.eprintf "BENCH_parallel.json failed schema validation: %s\n%!" msg;
    exit 1);
  if smoke then assert_smoke ~dispatch rows;
  rows
