(* Boxed vs. unboxed memory benchmark: times each converted prover kernel in
   its [Gf.t array] (boxed Int64) and [Fv.t] (flat Bigarray) forms, records
   per-kernel GC statistics (minor/major allocated words, promotions,
   collection counts) for both, cross-checks that the two forms produce the
   same result, and emits BENCH_memory.json (validated against its own
   schema before exit).

   Everything runs single-domain ([Pool.with_domains 1]): the point is the
   allocation behaviour of one domain's hot loop, not parallel scaling —
   BENCH_parallel.json covers that axis.

   NOTE the numbers depend on the build profile: the dev profile passes
   [-opaque], which blocks cross-module inlining, so the Gf primitives stay
   out-of-line and even the Fv loops box their intermediates. Run this under
   [dune exec --profile release] for the intended zero-allocation behaviour
   (see README "Compiler flags"). The report includes a probe so the profile
   is visible in the JSON. *)

open Nocap_repro
module Gf_fv = Ntt.Gf_fv

let wall () = Unix.gettimeofday ()

type gc_sample = {
  seconds : float;
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

(* Best-of-r wall time plus GC deltas over a single run from a settled
   heap, so collections triggered by the previous variant are not charged
   to this one. *)
let measure ~reps f =
  Gc.full_major ();
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = wall () in
    ignore (Sys.opaque_identity (f ()));
    let dt = wall () -. t0 in
    if dt < !best then best := dt
  done;
  Gc.full_major ();
  let s0 = Gc.quick_stat () in
  (* [Gc.minor_words] reads the live allocation pointer; quick_stat's
     minor_words field is only refreshed at collection boundaries, which
     would report 0 for any kernel that fits in the minor heap. *)
  let m0 = Gc.minor_words () in
  ignore (Sys.opaque_identity (f ()));
  let m1 = Gc.minor_words () in
  let s1 = Gc.quick_stat () in
  {
    seconds = !best;
    minor_words = m1 -. m0;
    major_words = s1.Gc.major_words -. s0.Gc.major_words;
    promoted_words = s1.Gc.promoted_words -. s0.Gc.promoted_words;
    minor_collections = s1.Gc.minor_collections - s0.Gc.minor_collections;
    major_collections = s1.Gc.major_collections - s0.Gc.major_collections;
  }

(* How many words per element a settled Fv loop allocates right now: ~0
   under the release profile (inlined Gf ops), ~10+ under dev ([-opaque]).
   Recorded in the JSON so a dev-profile report is recognizable. *)
let fv_probe_words_per_elem () =
  let n = 4096 in
  let v = Fv.create n in
  Fv.fill v Gf.one;
  let dst = Fv.create n in
  ignore (Sys.opaque_identity (Fv.mul_into ~dst v v));
  let s0 = Gc.quick_stat () in
  ignore (Sys.opaque_identity (Fv.mul_into ~dst v v));
  let s1 = Gc.quick_stat () in
  (s1.Gc.minor_words -. s0.Gc.minor_words) /. float_of_int n

type kernel = {
  k_name : string;
  k_n : int; (* elements processed, for the per-element normalization *)
  k_boxed : unit -> string; (* each returns a result fingerprint *)
  k_unboxed : unit -> string;
}

let kernels ~smoke rng =
  let scale b s = if smoke then s else b in
  (* NTT: one full-size in-place transform per run, same preallocated
     buffer refilled from the same input. *)
  let ntt_n = scale (1 lsl 18) (1 lsl 10) in
  let ntt_input = Array.init ntt_n (fun _ -> Gf.random rng) in
  let ntt_input_fv = Fv.of_array ntt_input in
  let ntt_buf = Array.make ntt_n Gf.zero in
  let ntt_buf_fv = Fv.create ntt_n in
  let ntt_plan = Ntt.Gf_ntt.plan ntt_n in
  let ntt_plan_fv = Gf_fv.plan ntt_n in
  (* Merkle build: leaves from a [mk_rows x mk_len] codeword matrix, boxed
     as gathered columns vs. read strided out of the flat buffer. *)
  let mk_rows = scale 128 16 in
  let mk_len = scale 2048 64 in
  let mk_flat = Fv.create (mk_rows * mk_len) in
  for i = 0 to (mk_rows * mk_len) - 1 do
    Fv.set mk_flat i (Gf.random rng)
  done;
  let mk_cols =
    Array.init mk_len (fun j ->
        Array.init mk_rows (fun r -> Fv.get mk_flat ((r * mk_len) + j)))
  in
  (* RS encode: row-wise batch encode of a message matrix. *)
  let rs_rows = scale 256 8 in
  let rs_cols = scale 1024 64 in
  let rs_msgs = Array.init rs_rows (fun _ -> Array.init rs_cols (fun _ -> Gf.random rng)) in
  let rs_flat = Fv.create (rs_rows * rs_cols) in
  Array.iteri (fun r row -> Fv.write_array row ~src_pos:0 rs_flat ~dst_pos:(r * rs_cols) ~len:rs_cols) rs_msgs;
  (* Sumcheck fold: the round-folding recurrence
     T(b) <- T(b) + r*(T(b+half) - T(b)) run to a single element, with a
     fixed deterministic challenge per round. *)
  let sf_n = scale (1 lsl 18) (1 lsl 10) in
  let sf_table = Array.init sf_n (fun _ -> Gf.random rng) in
  let sf_table_fv = Fv.of_array sf_table in
  let sf_buf = Array.make sf_n Gf.zero in
  let sf_buf_fv = Fv.create sf_n in
  let sf_challenges =
    let r = Rng.create 0xF01DL in
    Array.init 64 (fun _ -> Gf.random r)
  in
  (* Full sumcheck prover: boxed reference vs. unboxed production path. *)
  let sc_n = scale (1 lsl 14) (1 lsl 8) in
  let sc_tables = Array.init 4 (fun _ -> Array.init sc_n (fun _ -> Gf.random rng)) in
  let sc_comb v = Gf.mul v.(0) (Gf.sub (Gf.mul v.(1) v.(2)) v.(3)) in
  let sc_claim =
    let acc = ref Gf.zero in
    for b = 0 to sc_n - 1 do
      acc := Gf.add !acc (sc_comb (Array.map (fun t -> t.(b)) sc_tables))
    done;
    !acc
  in
  (* Orion commit (zk off so both sides are deterministic): production
     flat commit vs. the same pipeline assembled from the boxed entry
     points. *)
  let orion_n = scale (1 lsl 16) (1 lsl 8) in
  let orion_table = Array.init orion_n (fun _ -> Gf.random rng) in
  let orion_params =
    { Orion.rows = scale 128 16; code = (module Reed_solomon); proximity_count = 4; zk = false }
  in
  let orion_rows = min orion_params.Orion.rows orion_n in
  let orion_cols = orion_n / orion_rows in
  [
    {
      k_name = "ntt";
      k_n = ntt_n;
      k_boxed =
        (fun () ->
          Array.blit ntt_input 0 ntt_buf 0 ntt_n;
          Ntt.Gf_ntt.forward ntt_plan ntt_buf;
          Gf.to_string ntt_buf.(1));
      k_unboxed =
        (fun () ->
          Fv.blit ~src:ntt_input_fv ~src_pos:0 ~dst:ntt_buf_fv ~dst_pos:0 ~len:ntt_n;
          Gf_fv.forward ntt_plan_fv ntt_buf_fv;
          Gf.to_string (Fv.get ntt_buf_fv 1));
    };
    {
      k_name = "merkle-build";
      k_n = mk_rows * mk_len;
      k_boxed =
        (fun () -> Keccak.to_hex (Merkle.root (Merkle.build (Merkle.leaves_of_columns mk_cols))));
      k_unboxed =
        (fun () ->
          Keccak.to_hex
            (Merkle.root (Merkle.build (Merkle.leaves_of_matrix ~rows:mk_rows ~cols:mk_len mk_flat))));
    };
    {
      k_name = "rs-encode";
      k_n = rs_rows * rs_cols;
      k_boxed =
        (fun () ->
          let e = Reed_solomon.encode_batch rs_msgs in
          Gf.to_string e.(rs_rows - 1).(1));
      k_unboxed =
        (fun () ->
          let e = Reed_solomon.encode_rows_fv ~rows:rs_rows ~cols:rs_cols rs_flat in
          Gf.to_string (Fv.get e (((rs_rows - 1) * Reed_solomon.blowup * rs_cols) + 1)));
    };
    {
      k_name = "sumcheck-fold";
      k_n = sf_n;
      k_boxed =
        (fun () ->
          Array.blit sf_table 0 sf_buf 0 sf_n;
          let len = ref sf_n and round = ref 0 in
          while !len > 1 do
            let half = !len / 2 in
            let r = sf_challenges.(!round) in
            for b = 0 to half - 1 do
              sf_buf.(b) <- Gf.add sf_buf.(b) (Gf.mul r (Gf.sub sf_buf.(b + half) sf_buf.(b)))
            done;
            len := half;
            incr round
          done;
          Gf.to_string sf_buf.(0));
      k_unboxed =
        (fun () ->
          Fv.blit ~src:sf_table_fv ~src_pos:0 ~dst:sf_buf_fv ~dst_pos:0 ~len:sf_n;
          let len = ref sf_n and round = ref 0 in
          while !len > 1 do
            let half = !len / 2 in
            let r = sf_challenges.(!round) in
            for b = 0 to half - 1 do
              let x = Fv.unsafe_get sf_buf_fv b in
              Fv.unsafe_set sf_buf_fv b
                (Gf.add x (Gf.mul r (Gf.sub (Fv.unsafe_get sf_buf_fv (b + half)) x)))
            done;
            len := half;
            incr round
          done;
          Gf.to_string (Fv.get sf_buf_fv 0));
    };
    {
      k_name = "sumcheck-prove";
      k_n = sc_n;
      k_boxed =
        (fun () ->
          let t = Transcript.create "bench-memory" in
          let r =
            Sumcheck.prove_arrays ~comb_mults:2 t ~degree:3 ~tables:sc_tables ~comb:sc_comb
              ~claim:sc_claim
          in
          Gf.to_string r.Sumcheck.challenges.(Array.length r.Sumcheck.challenges - 1));
      k_unboxed =
        (fun () ->
          let t = Transcript.create "bench-memory" in
          let r =
            Sumcheck.prove ~comb_mults:2 t ~degree:3 ~tables:sc_tables ~comb:sc_comb
              ~claim:sc_claim
          in
          Gf.to_string r.Sumcheck.challenges.(Array.length r.Sumcheck.challenges - 1));
    };
    {
      k_name = "orion-commit";
      k_n = orion_n;
      k_boxed =
        (fun () ->
          let matrix = Array.init orion_rows (fun r -> Array.sub orion_table (r * orion_cols) orion_cols) in
          let encoded = Reed_solomon.encode_batch matrix in
          let code_len = Reed_solomon.blowup * orion_cols in
          let cols =
            Array.init code_len (fun j -> Array.map (fun row -> row.(j)) encoded)
          in
          Keccak.to_hex (Merkle.root (Merkle.build (Merkle.leaves_of_columns cols))));
      k_unboxed =
        (fun () ->
          let _, cm = Orion.commit orion_params (Rng.create 1L) orion_table in
          Keccak.to_hex cm.Orion.root);
    };
  ]

type row = { kernel : kernel; boxed : gc_sample; unboxed : gc_sample; fingerprint_equal : bool }

let measure_kernel ~smoke k =
  let reps = if smoke then 2 else 5 in
  (* Warm-up both variants (plans, arena growth, page faults) and take the
     equality fingerprints. *)
  let fp_boxed = k.k_boxed () in
  let fp_unboxed = k.k_unboxed () in
  let boxed = measure ~reps k.k_boxed in
  let unboxed = measure ~reps k.k_unboxed in
  { kernel = k; boxed; unboxed; fingerprint_equal = String.equal fp_boxed fp_unboxed }

let speedup r = r.boxed.seconds /. r.unboxed.seconds

(* Total allocation (minor + directly-major) per variant; the reduction
   ratio floors both sides at one word to stay finite and positive when a
   variant allocates exactly nothing in the optimized build. *)
let allocated s = s.minor_words +. s.major_words -. s.promoted_words
let alloc_reduction r =
  Float.max 1.0 (allocated r.boxed) /. Float.max 1.0 (allocated r.unboxed)

(* --- JSON emission + schema --------------------------------------------- *)

let schema_id = "nocap-bench-memory/v1"

let json_of_rows ~probe ~peak_rss_kb ~rss_source rows =
  let control = Gc.get () in
  let buf = Buffer.create 4096 in
  let adds fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let add_sample name (s : gc_sample) n =
    adds "      \"%s\": {\"seconds\": %.9f, \"minor_words\": %.1f, \"major_words\": %.1f, \"promoted_words\": %.1f, \"minor_collections\": %d, \"major_collections\": %d, \"words_per_elem\": %.4f},\n"
      name s.seconds s.minor_words s.major_words s.promoted_words s.minor_collections
      s.major_collections
      (allocated s /. float_of_int n)
  in
  adds "{\n";
  adds "  \"schema\": %S,\n" schema_id;
  adds "  \"domains\": 1,\n";
  adds "  \"peak_rss_kb\": %d,\n" peak_rss_kb;
  adds "  \"rss_source\": %S,\n" rss_source;
  adds "  \"fv_probe_words_per_elem\": %.4f,\n" probe;
  adds "  \"gc\": {\"minor_heap_words\": %d, \"space_overhead\": %d},\n"
    control.Gc.minor_heap_size control.Gc.space_overhead;
  adds "  \"kernels\": [\n";
  List.iteri
    (fun i r ->
      adds "    {\n";
      adds "      \"name\": %S,\n" r.kernel.k_name;
      adds "      \"n\": %d,\n" r.kernel.k_n;
      adds "      \"fingerprint_equal\": %b,\n" r.fingerprint_equal;
      add_sample "boxed" r.boxed r.kernel.k_n;
      add_sample "unboxed" r.unboxed r.kernel.k_n;
      adds "      \"speedup\": %.4f,\n" (speedup r);
      adds "      \"alloc_reduction\": %.4f\n" (alloc_reduction r);
      adds "    }%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  adds "  ]\n";
  adds "}\n";
  Buffer.contents buf

open Json_min

(* Required shape: schema id, single-domain marker, GC settings, and >= 6
   kernels each carrying both GC samples, matching fingerprints, and the
   derived ratios. *)
let validate_schema (s : string) : (unit, string) result =
  try
    let j = parse_json s in
    if as_str (field j "schema") <> schema_id then raise (Bad_json "wrong schema id");
    if as_num (field j "domains") <> 1.0 then raise (Bad_json "memory bench must be single-domain");
    let rss_source = as_str (field j "rss_source") in
    if rss_source = "" then raise (Bad_json "rss_source must be non-empty");
    (* (0, "none") is the probe's explicit both-probes-failed marker; any
       live source must report a positive high-water mark. *)
    if rss_source <> "none" && not (as_num (field j "peak_rss_kb") > 0.0) then
      raise (Bad_json "peak_rss_kb must be positive");
    ignore (as_num (field j "fv_probe_words_per_elem"));
    let gc = field j "gc" in
    if not (as_num (field gc "minor_heap_words") > 0.0) then
      raise (Bad_json "minor_heap_words must be positive");
    ignore (as_num (field gc "space_overhead"));
    let kernels = as_list (field j "kernels") in
    if List.length kernels < 6 then raise (Bad_json "need >= 6 kernels");
    let names =
      List.map
        (fun k ->
          ignore (as_num (field k "n"));
          if not (as_bool (field k "fingerprint_equal")) then
            raise (Bad_json "boxed/unboxed fingerprints diverged");
          List.iter
            (fun v ->
              let sample = field k v in
              if not (as_num (field sample "seconds") > 0.0) then
                raise (Bad_json "seconds must be positive");
              List.iter
                (fun key -> ignore (as_num (field sample key)))
                [ "minor_words"; "major_words"; "promoted_words"; "minor_collections";
                  "major_collections"; "words_per_elem" ])
            [ "boxed"; "unboxed" ];
          if not (as_num (field k "speedup") > 0.0) then
            raise (Bad_json "speedup must be positive");
          if not (as_num (field k "alloc_reduction") > 0.0) then
            raise (Bad_json "alloc_reduction must be positive");
          as_str (field k "name"))
        kernels
    in
    List.iter
      (fun required ->
        if not (List.mem required names) then
          raise (Bad_json (Printf.sprintf "kernel %S missing" required)))
      [ "ntt"; "merkle-build"; "rs-encode"; "sumcheck-fold"; "sumcheck-prove"; "orion-commit" ];
    Ok ()
  with Bad_json msg -> Error msg

(* --- driver ------------------------------------------------------------- *)

let run ?(smoke = false) ?(path = "BENCH_memory.json") () =
  Zk_report.Render.section
    (Printf.sprintf "Memory: boxed Gf.t array vs unboxed Fv (single domain)%s"
       (if smoke then " (smoke)" else ""));
  let rng = Rng.create 0x4D454DL in
  let probe, rows =
    Pool.with_domains 1 (fun () ->
        let probe = fv_probe_words_per_elem () in
        (probe, List.map (measure_kernel ~smoke) (kernels ~smoke rng)))
  in
  Zk_report.Render.table
    ~header:
      [ "kernel"; "n"; "boxed"; "unboxed"; "speedup"; "boxed w/elem"; "fv w/elem"; "alloc x" ]
    (List.map
       (fun r ->
         [
           r.kernel.k_name;
           string_of_int r.kernel.k_n;
           Zk_report.Render.seconds r.boxed.seconds;
           Zk_report.Render.seconds r.unboxed.seconds;
           Printf.sprintf "%.2fx" (speedup r);
           Printf.sprintf "%.2f" (allocated r.boxed /. float_of_int r.kernel.k_n);
           Printf.sprintf "%.4f" (allocated r.unboxed /. float_of_int r.kernel.k_n);
           Printf.sprintf "%.0fx" (alloc_reduction r);
         ])
       rows);
  (match List.filter (fun r -> not r.fingerprint_equal) rows with
  | [] -> ()
  | bad ->
    List.iter
      (fun r -> Printf.eprintf "bench memory: %s boxed/unboxed diverged\n%!" r.kernel.k_name)
      bad;
    exit 1);
  let peak_rss_kb, rss_source = Rss.peak_rss_kb () in
  Printf.printf "peak RSS: %d KiB (probe: %s)\n%!" peak_rss_kb rss_source;
  let json = json_of_rows ~probe ~peak_rss_kb ~rss_source rows in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  (match validate_schema json with
  | Ok () -> Printf.printf "wrote %s (schema %s, valid)\n%!" path schema_id
  | Error msg ->
    Printf.eprintf "BENCH_memory.json failed schema validation: %s\n%!" msg;
    exit 1);
  rows
