(* Portable peak-RSS probe for the memory benches.

   Primary source: VmHWM from /proc/self/status (KiB), which the kernel
   lets us *reset* between bench phases by writing "5" to
   /proc/self/clear_refs — without the reset a monotonic high-water mark
   would charge every phase with the largest phase before it. Fallback:
   getrusage(RUSAGE_SELF).ru_maxrss via a C stub (same unit on Linux, not
   resettable). The source actually used is recorded in the emitted JSON
   so flat-vs-growing comparisons are interpretable. *)

external getrusage_maxrss_kb : unit -> int = "nocap_rss_getrusage_maxrss_kb"

let scan_status key =
  let prefix = key ^ ":" in
  try
    let ic = open_in "/proc/self/status" in
    let rec go () =
      match input_line ic with
      | line ->
        if
          String.length line > String.length prefix
          && String.sub line 0 (String.length prefix) = prefix
        then begin
          close_in ic;
          let rest =
            String.sub line (String.length prefix)
              (String.length line - String.length prefix)
          in
          try Scanf.sscanf rest " %d" (fun kb -> Some kb) with _ -> None
        end
        else go ()
      | exception End_of_file ->
        close_in ic;
        None
    in
    go ()
  with Sys_error _ -> None

let current_rss_kb () = match scan_status "VmRSS" with Some kb -> kb | None -> 0

(* (kilobytes, source); (0, "none") only when both probes fail. *)
let peak_rss_kb () =
  match scan_status "VmHWM" with
  | Some kb -> (kb, "vmhwm")
  | None ->
    let kb = getrusage_maxrss_kb () in
    if kb > 0 then (kb, "getrusage") else (0, "none")

(* Reset the VmHWM high-water mark to the current RSS. Returns false where
   unsupported (non-Linux, restricted /proc) — peaks are then monotonic
   across phases and the caller should order phases smallest-first. *)
let reset_peak () =
  try
    let oc = open_out "/proc/self/clear_refs" in
    output_string oc "5";
    close_out oc;
    true
  with Sys_error _ -> false

(* Shrink the OCaml heap before resetting, so a phase's floor is the live
   data rather than the previous phase's high-water heap. *)
let settle_and_reset () =
  Gc.compact ();
  reset_peak ()
