(* Backend benchmark: times commit / open / verify for every PCS backend on
   the same multilinear table and point, cross-checks the opened value
   against a direct MLE evaluation, and emits BENCH_backend.json (validated
   against its own schema before exit).

   [run ~smoke:true] uses tiny sizes — it backs the @bench-smoke alias that
   tier-1 verify builds, so it must stay fast and loud on regressions. *)

open Nocap_repro

let wall () = Unix.gettimeofday ()

let time_best ~reps f =
  Gc.major ();
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = wall () in
    ignore (Sys.opaque_identity (f ()));
    let dt = wall () -. t0 in
    if dt < !best then best := dt
  done;
  !best

type row = {
  b_name : string;
  b_num_vars : int;
  commit_seconds : float;
  open_seconds : float;
  verify_seconds : float;
  commitment_bytes : int;
  proof_bytes : int;
  queries : int;
}

(* One backend, measured generically through the PCS signature. The same
   table and point go to every backend, so rows are directly comparable. *)
let measure ~smoke (module P : Pcs.S) =
  let params = if smoke then P.test_params else P.default_params in
  let reps = if smoke then 2 else 5 in
  let num_vars = if smoke then 8 else 12 in
  let n = 1 lsl num_vars in
  let rng = Rng.create 0xBACC_E2DL in
  let evals = Array.init n (fun _ -> Gf.random rng) in
  let point = Array.init num_vars (fun _ -> Gf.random rng) in
  let fresh_rng () = Rng.create 0x5EED_BACCL in
  let committed, cm = P.commit params (fresh_rng ()) evals in
  let transcript () =
    let t = Transcript.create ("bench-backend-" ^ P.name) in
    P.absorb_commitment t cm;
    t
  in
  let value, proof = P.open_at params committed (transcript ()) point in
  (* Correctness gates: the opened value must be the MLE evaluation, and the
     verifier must accept — a bench that times a broken backend is worse
     than no bench. *)
  if not (Gf.equal value (Mle.eval evals point)) then
    failwith (Printf.sprintf "bench backend: %s opened a wrong value" P.name);
  (match P.verify params cm (transcript ()) point value proof with
  | Ok () -> ()
  | Error e ->
    failwith (Printf.sprintf "bench backend: %s rejected its own proof: %s" P.name (Zk_pcs.Verify_error.to_string e)));
  let commit_seconds =
    time_best ~reps (fun () -> P.commit params (fresh_rng ()) evals)
  in
  let open_seconds =
    time_best ~reps (fun () -> P.open_at params committed (transcript ()) point)
  in
  let verify_seconds =
    time_best ~reps (fun () ->
        match P.verify params cm (transcript ()) point value proof with
        | Ok () -> ()
        | Error e -> failwith (Zk_pcs.Verify_error.to_string e))
  in
  let s = P.stats params cm proof in
  {
    b_name = P.name;
    b_num_vars = num_vars;
    commit_seconds;
    open_seconds;
    verify_seconds;
    commitment_bytes = s.Pcs.commitment_bytes;
    proof_bytes = s.Pcs.proof_bytes;
    queries = s.Pcs.queries;
  }

let backends : (module Pcs.S) list = [ (module Orion_pcs); (module Fri_pcs) ]

(* --- JSON emission ------------------------------------------------------ *)

let schema_id = "nocap-bench-backend/v1"

let json_of_rows rows =
  let buf = Buffer.create 2048 in
  let adds fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  adds "{\n";
  adds "  \"schema\": %S,\n" schema_id;
  adds "  \"backends\": [\n";
  List.iteri
    (fun i r ->
      adds "    {\n";
      adds "      \"name\": %S,\n" r.b_name;
      adds "      \"num_vars\": %d,\n" r.b_num_vars;
      adds "      \"commit_seconds\": %.9f,\n" r.commit_seconds;
      adds "      \"open_seconds\": %.9f,\n" r.open_seconds;
      adds "      \"verify_seconds\": %.9f,\n" r.verify_seconds;
      adds "      \"commitment_bytes\": %d,\n" r.commitment_bytes;
      adds "      \"proof_bytes\": %d,\n" r.proof_bytes;
      adds "      \"queries\": %d\n" r.queries;
      adds "    }%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  adds "  ]\n";
  adds "}\n";
  Buffer.contents buf

(* --- schema validation (shared parser in Json_min) ---------------------- *)

open Json_min

(* Required shape: schema id, and one entry per registered backend — both
   "orion" and "fri" must be present with positive times and sizes. *)
let validate_schema (s : string) : (unit, string) result =
  try
    let j = parse_json s in
    if as_str (field j "schema") <> schema_id then raise (Bad_json "wrong schema id");
    let rows = as_list (field j "backends") in
    if List.length rows < 2 then raise (Bad_json "need >= 2 backends");
    let names =
      List.map
        (fun r ->
          if as_num (field r "num_vars") <= 0.0 then
            raise (Bad_json "num_vars must be positive");
          List.iter
            (fun key ->
              if as_num (field r key) <= 0.0 then
                raise (Bad_json (key ^ " must be positive")))
            [
              "commit_seconds"; "open_seconds"; "verify_seconds";
              "commitment_bytes"; "proof_bytes"; "queries";
            ];
          as_str (field r "name"))
        rows
    in
    List.iter
      (fun required ->
        if not (List.mem required names) then
          raise (Bad_json (required ^ " backend missing")))
      [ "orion"; "fri" ];
    Ok ()
  with Bad_json msg -> Error msg

(* --- driver ------------------------------------------------------------- *)

let run ?(smoke = false) ?(path = "BENCH_backend.json") () =
  Zk_report.Render.section
    (Printf.sprintf "PCS backends: Orion vs FRI commit/open/verify%s"
       (if smoke then " (smoke)" else ""));
  let rows = List.map (measure ~smoke) backends in
  Zk_report.Render.table
    ~header:
      [ "backend"; "2^L"; "commit"; "open"; "verify"; "proof bytes"; "queries" ]
    (List.map
       (fun r ->
         [
           r.b_name;
           string_of_int (1 lsl r.b_num_vars);
           Zk_report.Render.seconds r.commit_seconds;
           Zk_report.Render.seconds r.open_seconds;
           Zk_report.Render.seconds r.verify_seconds;
           string_of_int r.proof_bytes;
           string_of_int r.queries;
         ])
       rows);
  let json = json_of_rows rows in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  (match validate_schema json with
  | Ok () -> Printf.printf "wrote %s (schema %s, valid)\n%!" path schema_id
  | Error msg ->
    Printf.eprintf "BENCH_backend.json failed schema validation: %s\n%!" msg;
    exit 1);
  rows
