(* Proving-service load generator -> BENCH_serve.json.

   Three phases, each against a fresh service instance:

   - [throughput]: clean sustained load (no faults) measuring proofs/s and
     p50/p99 job latency (submit -> finish, including queue wait).
   - [faulted]: the hard smoke gate. Bursts larger than the queue capacity
     under the deterministic Runtime_faults plan (injected worker crashes,
     spill I/O errors, slow jobs) with a memory budget small enough that
     every job demotes to the streaming prover (so the armed spill faults
     actually fire), plus malformed tenant requests. The run must finish
     with zero hangs (a watchdog domain aborts the process otherwise),
     nonzero retry/rejection/invalid/crash/io-failure counters, and every
     surviving proof byte-identical to an offline [Spartan.prove] of the
     same request — re-proved AFTER service shutdown, which doubles as the
     pool-is-still-usable check.
   - [deadline]: every job artificially slowed past a tight deadline; all
     must fail with [Deadline_exceeded] (nonzero timeout counter, no
     retries burned on a permanent error).

   All gates exit 1; the emitted JSON is schema-validated in-process. *)

open Nocap_repro

let schema_id = "nocap-bench-serve/v1"
let wall () = Unix.gettimeofday ()

(* Abort the whole process if the benchmark wedges: the service's no-hang
   property is the point of the exercise, so a deadlocked queue must turn
   into a loud exit 1, not a stuck CI job. *)
let install_hang_guard ~limit_s =
  let finished = Atomic.make false in
  ignore
    (Domain.spawn (fun () ->
         let waited = ref 0.0 in
         while (not (Atomic.get finished)) && !waited < limit_s do
           Unix.sleepf 0.25;
           waited := !waited +. 0.25
         done;
         if not (Atomic.get finished) then begin
           Printf.eprintf "bench serve: HANG — no progress after %.0f s, aborting\n%!" limit_s;
           exit 1
         end));
  finished

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0 else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

(* --- throughput --------------------------------------------------------- *)

type throughput = {
  t_jobs : int;
  t_completed : int;
  t_wall_s : float;
  t_proofs_per_s : float;
  t_p50_ms : float;
  t_p99_ms : float;
  t_peak_rss_kb : int;
}

let run_throughput ~smoke =
  let jobs = if smoke then 12 else 48 in
  ignore (Rss.settle_and_reset ());
  let config =
    {
      Serve.default_config with
      Serve.capacity = jobs;
      runners = 2;
      params = Spartan.test_params;
    }
  in
  let srv = Serve.create ~config () in
  let t0 = wall () in
  let ids =
    List.init jobs (fun i ->
        let req =
          {
            Serve.tenant = Printf.sprintf "tenant-%d" (i mod 4);
            workload = "litmus";
            scale = 1;
            kind = Serve.Prove;
            deadline_s = None;
          }
        in
        match Serve.submit srv req with
        | Ok id -> id
        | Error e -> failwith ("throughput submit rejected: " ^ Job_error.to_string e))
  in
  let latencies =
    List.filter_map
      (fun id ->
        match Serve.await srv id with
        | Serve.Proof { elapsed_s; _ } -> Some elapsed_s
        | Serve.Verified _ -> None
        | Serve.Failed { error; _ } ->
          failwith ("throughput job failed: " ^ Job_error.to_string error))
      ids
  in
  let wall_s = wall () -. t0 in
  let stats = Serve.shutdown srv in
  let sorted = Array.of_list latencies in
  Array.sort compare sorted;
  let kb, _ = Rss.peak_rss_kb () in
  {
    t_jobs = jobs;
    t_completed = stats.Serve.completed;
    t_wall_s = wall_s;
    t_proofs_per_s = float_of_int stats.Serve.completed /. max 1e-9 wall_s;
    t_p50_ms = 1e3 *. percentile sorted 0.50;
    t_p99_ms = 1e3 *. percentile sorted 0.99;
    t_peak_rss_kb = kb;
  }

(* --- faulted ------------------------------------------------------------ *)

type faulted = {
  f_stats : Serve.stats;
  f_proofs : int;  (** jobs that survived to a proof *)
  f_byte_identical : bool;  (** every surviving proof = offline prover's *)
  f_offline_proves : int;  (** distinct (workload, scale) re-proved offline *)
  f_pool_reusable : bool;  (** offline proving worked AFTER shutdown *)
  f_peak_rss_kb : int;
}

let run_faulted ~smoke =
  ignore (Rss.settle_and_reset ());
  (* Capacity far below the burst size so admission control must reject,
     and a memory budget below every job's working-set estimate so every
     admitted job demotes to the streaming prover — which is what gives
     the armed spill I/O faults something to fail. *)
  let rounds = if smoke then 3 else 5 in
  let burst = if smoke then 12 else 24 in
  let config =
    {
      Serve.default_config with
      Serve.capacity = 5;
      runners = 2;
      max_retries = 2;
      backoff_base_s = 0.005;
      backoff_max_s = 0.05;
      mem_budget_bytes = Some (64 * 1024);
      params = Spartan.test_params;
    }
  in
  let plan = { Runtime_faults.default with Runtime_faults.slow_s = 0.05 } in
  let srv = Serve.create ~fault_hook:(Runtime_faults.hook plan) ~config () in
  (* Malformed tenant input: all three kinds must bounce at admission. *)
  for i = 0 to 2 do
    match Serve.submit srv (Runtime_faults.malformed_request i) with
    | Error (Job_error.Invalid_input _) -> ()
    | Error e -> failwith ("malformed request misclassified: " ^ Job_error.to_string e)
    | Ok _ -> failwith "malformed request was admitted"
  done;
  (* Burst rounds: submit much faster than the runners drain, await the
     admitted jobs, repeat. Streaming proofs take long enough that each
     burst overflows the 5-slot queue. *)
  let scales = [| 2048; 4096 |] in
  let survived = ref [] in
  for round = 0 to rounds - 1 do
    let admitted = ref [] in
    for i = 0 to burst - 1 do
      let scale = scales.((i + round) mod Array.length scales) in
      let req =
        {
          Serve.tenant = Printf.sprintf "tenant-%d" (i mod 3);
          workload = "synthetic";
          scale;
          kind = Serve.Prove;
          deadline_s = None;
        }
      in
      match Serve.submit srv req with
      | Ok id -> admitted := (id, scale) :: !admitted
      | Error (Job_error.Queue_full _) -> ()
      | Error e -> failwith ("unexpected admission error: " ^ Job_error.to_string e)
    done;
    List.iter
      (fun (id, scale) ->
        match Serve.await srv id with
        | Serve.Proof { bytes; _ } -> survived := (scale, bytes) :: !survived
        | Serve.Verified _ -> ()
        | Serve.Failed { error; _ } ->
          (* Retry exhaustion is impossible under a first-attempt-only
             plan: any failure here is a service bug. *)
          failwith
            (Printf.sprintf "faulted job %d died: %s" id (Job_error.to_string error)))
      (List.rev !admitted)
  done;
  let stats = Serve.shutdown srv in
  Runtime_faults.disarm_io_faults ();
  let kb, _ = Rss.peak_rss_kb () in
  (* Byte-identity vs the offline prover, AFTER shutdown: the shared kernel
     pool survived every injected crash/cancel if these still prove. *)
  let oracle = Hashtbl.create 4 in
  let offline scale =
    match Hashtbl.find_opt oracle scale with
    | Some b -> b
    | None ->
      let inst, asn =
        match Serve.generate_workload ~workload:"synthetic" ~scale with
        | Ok ia -> ia
        | Error e -> failwith (Job_error.to_string e)
      in
      let proof, _ = Spartan.prove Spartan.test_params inst asn in
      let b = Spartan.proof_to_bytes proof in
      Hashtbl.add oracle scale b;
      b
  in
  let byte_identical =
    List.for_all (fun (scale, bytes) -> Bytes.equal bytes (offline scale)) !survived
  in
  {
    f_stats = stats;
    f_proofs = List.length !survived;
    f_byte_identical = byte_identical;
    f_offline_proves = Hashtbl.length oracle;
    f_pool_reusable = Hashtbl.length oracle > 0;
    f_peak_rss_kb = kb;
  }

(* --- deadline ----------------------------------------------------------- *)

type deadline_r = { d_jobs : int; d_timeouts : int; d_retries : int }

let run_deadline ~smoke =
  let jobs = if smoke then 4 else 8 in
  (* Every attempt sleeps well past the deadline; the watchdog must cancel
     each job at the next chunk boundary and report Deadline_exceeded
     without burning retries on a permanent error. *)
  let plan =
    {
      Runtime_faults.none with
      Runtime_faults.slow_every = 1;
      slow_s = 0.2;
      first_attempt_only = false;
    }
  in
  let config =
    {
      Serve.default_config with
      Serve.capacity = jobs;
      runners = 2;
      default_deadline_s = Some 0.04;
      params = Spartan.test_params;
    }
  in
  let srv = Serve.create ~fault_hook:(Runtime_faults.hook plan) ~config () in
  let ids =
    List.init jobs (fun i ->
        match
          Serve.submit srv
            {
              Serve.tenant = "slow";
              workload = "litmus";
              scale = 1;
              kind = Serve.Prove;
              deadline_s = Some (0.02 +. (0.005 *. float_of_int i));
            }
        with
        | Ok id -> id
        | Error e -> failwith ("deadline submit rejected: " ^ Job_error.to_string e))
  in
  let timeouts =
    List.fold_left
      (fun acc id ->
        match Serve.await srv id with
        | Serve.Failed { error = Job_error.Deadline_exceeded _; _ } -> acc + 1
        | Serve.Failed { error; _ } ->
          failwith ("deadline job failed otherwise: " ^ Job_error.to_string error)
        | Serve.Proof _ | Serve.Verified _ ->
          failwith "slowed job beat a deadline shorter than its sleep")
      0 ids
  in
  let stats = Serve.shutdown srv in
  { d_jobs = jobs; d_timeouts = timeouts; d_retries = stats.Serve.retries }

(* --- JSON + schema ------------------------------------------------------ *)

let json_of ~smoke ~rss_source ~spill_leftovers tp fl dl =
  let buf = Buffer.create 2048 in
  let adds fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let s = fl.f_stats in
  adds "{\n";
  adds "  \"schema\": %S,\n" schema_id;
  adds "  \"smoke\": %b,\n" smoke;
  adds "  \"rss_source\": %S,\n" rss_source;
  adds "  \"spill_leftover_files\": %d,\n" spill_leftovers;
  adds "  \"throughput\": {\n";
  adds "    \"jobs\": %d,\n" tp.t_jobs;
  adds "    \"completed\": %d,\n" tp.t_completed;
  adds "    \"wall_s\": %.6f,\n" tp.t_wall_s;
  adds "    \"proofs_per_s\": %.4f,\n" tp.t_proofs_per_s;
  adds "    \"p50_latency_ms\": %.3f,\n" tp.t_p50_ms;
  adds "    \"p99_latency_ms\": %.3f,\n" tp.t_p99_ms;
  adds "    \"peak_rss_kb\": %d\n" tp.t_peak_rss_kb;
  adds "  },\n";
  adds "  \"faulted\": {\n";
  adds "    \"submitted\": %d,\n" s.Serve.submitted;
  adds "    \"completed\": %d,\n" s.Serve.completed;
  adds "    \"failed\": %d,\n" s.Serve.failed;
  adds "    \"rejected\": %d,\n" s.Serve.rejected;
  adds "    \"invalid\": %d,\n" s.Serve.invalid;
  adds "    \"retries\": %d,\n" s.Serve.retries;
  adds "    \"crashes\": %d,\n" s.Serve.crashes;
  adds "    \"io_failures\": %d,\n" s.Serve.io_failures;
  adds "    \"demoted\": %d,\n" s.Serve.demoted;
  adds "    \"timeouts\": %d,\n" s.Serve.timeouts;
  adds "    \"cancelled\": %d,\n" s.Serve.cancelled;
  adds "    \"surviving_proofs\": %d,\n" fl.f_proofs;
  adds "    \"byte_identical\": %b,\n" fl.f_byte_identical;
  adds "    \"offline_proves\": %d,\n" fl.f_offline_proves;
  adds "    \"pool_reusable\": %b,\n" fl.f_pool_reusable;
  adds "    \"peak_rss_kb\": %d\n" fl.f_peak_rss_kb;
  adds "  },\n";
  adds "  \"deadline\": {\n";
  adds "    \"jobs\": %d,\n" dl.d_jobs;
  adds "    \"timeouts\": %d,\n" dl.d_timeouts;
  adds "    \"retries\": %d\n" dl.d_retries;
  adds "  }\n";
  adds "}\n";
  Buffer.contents buf

open Json_min

let validate_schema (str : string) : (unit, string) result =
  try
    let j = parse_json str in
    if as_str (field j "schema") <> schema_id then raise (Bad_json "wrong schema id");
    ignore (as_bool (field j "smoke"));
    if as_str (field j "rss_source") = "" then raise (Bad_json "empty rss_source");
    if as_num (field j "spill_leftover_files") <> 0.0 then
      raise (Bad_json "spill files leaked past shutdown");
    let tp = field j "throughput" in
    if not (as_num (field tp "proofs_per_s") > 0.0) then
      raise (Bad_json "throughput must be positive");
    if as_num (field tp "completed") <> as_num (field tp "jobs") then
      raise (Bad_json "clean run lost jobs");
    if not (as_num (field tp "p99_latency_ms") >= as_num (field tp "p50_latency_ms")) then
      raise (Bad_json "p99 below p50");
    ignore (as_num (field tp "peak_rss_kb"));
    let fl = field j "faulted" in
    List.iter
      (fun key ->
        if not (as_num (field fl key) > 0.0) then
          raise (Bad_json ("faulted." ^ key ^ " must be nonzero")))
      [ "submitted"; "completed"; "rejected"; "invalid"; "retries"; "crashes";
        "io_failures"; "demoted"; "surviving_proofs" ];
    if as_num (field fl "failed") <> 0.0 then
      raise (Bad_json "first-attempt-only faults must all recover");
    if not (as_bool (field fl "byte_identical")) then
      raise (Bad_json "surviving proof diverged from offline prover");
    if not (as_bool (field fl "pool_reusable")) then
      raise (Bad_json "kernel pool unusable after faulted shutdown");
    let dl = field j "deadline" in
    if not (as_num (field dl "timeouts") > 0.0) then
      raise (Bad_json "deadline phase produced no timeouts");
    if as_num (field dl "timeouts") <> as_num (field dl "jobs") then
      raise (Bad_json "a slowed job escaped its deadline");
    if as_num (field dl "retries") <> 0.0 then
      raise (Bad_json "deadline errors are permanent; no retries allowed");
    Ok ()
  with Bad_json msg -> Error msg

(* --- driver ------------------------------------------------------------- *)

let run ?(smoke = false) ?(path = "BENCH_serve.json") () =
  Zk_report.Render.section
    (Printf.sprintf "Proving service: throughput, injected faults, deadlines%s"
       (if smoke then " (smoke)" else ""));
  let finished = install_hang_guard ~limit_s:(if smoke then 240.0 else 540.0) in
  let tp = run_throughput ~smoke in
  let fl = run_faulted ~smoke in
  let dl = run_deadline ~smoke in
  Atomic.set finished true;
  let _, rss_source = Rss.peak_rss_kb () in
  let spill_leftovers = Spill.live_files () in
  let s = fl.f_stats in
  Zk_report.Render.table
    ~header:[ "phase"; "jobs"; "ok"; "fail"; "rej"; "inv"; "retry"; "t/o"; "metric" ]
    [
      [
        "throughput"; string_of_int tp.t_jobs; string_of_int tp.t_completed; "0"; "0"; "0";
        "0"; "0";
        Printf.sprintf "%.1f proofs/s, p50 %.0fms p99 %.0fms" tp.t_proofs_per_s tp.t_p50_ms
          tp.t_p99_ms;
      ];
      [
        "faulted";
        string_of_int s.Serve.submitted;
        string_of_int s.Serve.completed;
        string_of_int s.Serve.failed;
        string_of_int s.Serve.rejected;
        string_of_int s.Serve.invalid;
        string_of_int s.Serve.retries;
        string_of_int s.Serve.timeouts;
        Printf.sprintf "%d crashes, %d io faults, %d demoted, bytes %s" s.Serve.crashes
          s.Serve.io_failures s.Serve.demoted
          (if fl.f_byte_identical then "ok" else "DIVERGED");
      ];
      [
        "deadline"; string_of_int dl.d_jobs; "0"; string_of_int dl.d_timeouts; "0"; "0";
        string_of_int dl.d_retries; string_of_int dl.d_timeouts; "all Deadline_exceeded";
      ];
    ];
  let json = json_of ~smoke ~rss_source ~spill_leftovers tp fl dl in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  (* The schema validator IS the gate battery: counters that must be
     nonzero, byte identity, pool reusability, zero leaked spill files. *)
  (match validate_schema json with
  | Ok () -> Printf.printf "wrote %s (schema %s, valid)\n%!" path schema_id
  | Error msg ->
    Printf.eprintf "BENCH_serve.json failed schema validation: %s\n%!" msg;
    exit 1);
  (tp, fl, dl)
