(* Fault-injection sweep: mutate honest proofs at the wire and structure
   layers for every Spartan backend and demand the verifier rejects each
   mutant with a structured error — no accepts (soundness alarm), no
   exceptions (robustness alarm). Emits BENCH_faults.json (validated
   against its own schema before exit) and exits non-zero on any alarm.

   [run ~smoke:true] backs the @fuzz-smoke alias that tier-1 verify builds;
   the full run is the acceptance sweep (>= 10k mutants per backend). *)

open Nocap_repro

let schema_id = "nocap-bench-faults/v1"

(* --- JSON emission ------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_reports ~seed (reports : Fuzz.report list) =
  let buf = Buffer.create 4096 in
  let adds fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  adds "{\n";
  adds "  \"schema\": %S,\n" schema_id;
  adds "  \"seed\": %Ld,\n" seed;
  adds "  \"targets\": [\n";
  List.iteri
    (fun i (r : Fuzz.report) ->
      let counts kvs =
        String.concat ", " (List.map (fun (k, n) -> Printf.sprintf "%S: %d" k n) kvs)
      in
      adds "    {\n";
      adds "      \"name\": %S,\n" r.Fuzz.target_name;
      adds "      \"byte_mutants\": %d,\n" r.Fuzz.byte_mutants;
      adds "      \"structured_mutants\": %d,\n" r.Fuzz.structured_mutants;
      adds "      \"rejected\": %d,\n" r.Fuzz.rejected;
      adds "      \"accepted\": %d,\n" r.Fuzz.accepted;
      adds "      \"raised\": %d,\n" r.Fuzz.raised;
      adds "      \"honest_ok\": %b,\n" r.Fuzz.honest_ok;
      adds "      \"by_category\": { %s },\n" (counts r.Fuzz.by_category);
      adds "      \"by_op\": { %s },\n" (counts r.Fuzz.by_op);
      adds "      \"alarms\": [%s]\n"
        (String.concat ", "
           (List.map (fun a -> Printf.sprintf "\"%s\"" (json_escape a)) r.Fuzz.alarms));
      adds "    }%s\n" (if i = List.length reports - 1 then "" else ","))
    reports;
  adds "  ]\n";
  adds "}\n";
  Buffer.contents buf

(* --- schema validation (shared parser in Json_min) ---------------------- *)

open Json_min

(* Required shape: schema id, both backends, zero accepts/raises, honest
   proofs verifying, and the per-category buckets accounting for every
   rejection. *)
let validate_schema (s : string) : (unit, string) result =
  try
    let j = parse_json s in
    if as_str (field j "schema") <> schema_id then raise (Bad_json "wrong schema id");
    let rows = as_list (field j "targets") in
    let names =
      List.map
        (fun r ->
          let num k = int_of_float (as_num (field r k)) in
          if num "accepted" <> 0 then raise (Bad_json "accepted must be 0");
          if num "raised" <> 0 then raise (Bad_json "raised must be 0");
          (match field r "honest_ok" with
          | Bool true -> ()
          | _ -> raise (Bad_json "honest_ok must be true"));
          if num "byte_mutants" <= 0 then raise (Bad_json "byte_mutants must be positive");
          if num "structured_mutants" <= 0 then
            raise (Bad_json "structured_mutants must be positive");
          if num "rejected" <> num "byte_mutants" + num "structured_mutants" then
            raise (Bad_json "rejected must account for every mutant");
          let cat_total =
            match field r "by_category" with
            | Obj kvs -> List.fold_left (fun acc (_, v) -> acc + int_of_float (as_num v)) 0 kvs
            | _ -> raise (Bad_json "by_category must be an object")
          in
          if cat_total <> num "rejected" then
            raise (Bad_json "by_category must sum to rejected");
          as_str (field r "name"))
        rows
    in
    List.iter
      (fun required ->
        if not (List.mem required names) then
          raise (Bad_json (required ^ " target missing")))
      [ "orion"; "fri" ];
    Ok ()
  with Bad_json msg -> Error msg

(* --- driver ------------------------------------------------------------- *)

let run ?(smoke = false) ?(path = "BENCH_faults.json") () =
  Zk_report.Render.section
    (Printf.sprintf "Fault injection: mutated proofs vs the verifier%s"
       (if smoke then " (smoke)" else ""));
  let seed = 0xFA_17_5EL in
  (* The full sweep is the acceptance run: >= 10k mutants per backend.
     Structured mutants come from ~17 mutators per round, so 600 rounds
     yields ~10k structured on top of the 10k byte mutants. *)
  let byte_mutants = if smoke then 150 else 10_000 in
  let structured_rounds = if smoke then 4 else 600 in
  let reports =
    List.map
      (fun target -> Fuzz.sweep ~seed ~byte_mutants ~structured_rounds target)
      (Fault_targets.all ())
  in
  Zk_report.Render.table
    ~header:[ "target"; "byte"; "structured"; "rejected"; "accepted"; "raised"; "honest" ]
    (List.map
       (fun (r : Fuzz.report) ->
         [
           r.Fuzz.target_name;
           string_of_int r.Fuzz.byte_mutants;
           string_of_int r.Fuzz.structured_mutants;
           string_of_int r.Fuzz.rejected;
           string_of_int r.Fuzz.accepted;
           string_of_int r.Fuzz.raised;
           (if r.Fuzz.honest_ok then "ok" else "REJECTED");
         ])
       reports);
  List.iter (fun r -> Format.printf "%a" Fuzz.pp_report r) reports;
  let dirty = List.filter (fun r -> not (Fuzz.clean r)) reports in
  if dirty <> [] then begin
    List.iter
      (fun (r : Fuzz.report) ->
        Printf.eprintf "fault sweep FAILED on %s: %d accepted, %d raised, honest %b\n%!"
          r.Fuzz.target_name r.Fuzz.accepted r.Fuzz.raised r.Fuzz.honest_ok)
      dirty;
    exit 1
  end;
  let json = json_of_reports ~seed reports in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  (match validate_schema json with
  | Ok () -> Printf.printf "wrote %s (schema %s, valid)\n%!" path schema_id
  | Error msg ->
    Printf.eprintf "BENCH_faults.json failed schema validation: %s\n%!" msg;
    exit 1);
  reports
