(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sec. VIII) and runs one Bechamel microbenchmark per
   table/figure plus the substrate kernels they are built from.

   Usage:
     main.exe            full report + microbenchmarks
     main.exe report     tables/figures only
     main.exe bench      microbenchmarks only
     main.exe parallel   serial vs multi-domain kernels -> BENCH_parallel.json
     main.exe memory     boxed vs unboxed kernels + GC stats -> BENCH_memory.json
     main.exe backend    Orion vs FRI PCS backends -> BENCH_backend.json
     main.exe native     OCaml vs scalar-C vs SIMD kernels -> BENCH_native.json
     main.exe faults     fault-injection sweep over mutated proofs -> BENCH_faults.json
     main.exe analysis   circuit lint + structure + mutation oracle -> BENCH_analysis.json
     main.exe stream     streaming vs in-memory prover + peak RSS -> BENCH_stream.json
     main.exe serve      proving service under load + injected faults -> BENCH_serve.json
     main.exe table4     a single table/figure by id

   GC tuning for every mode lives in [tune_gc] below. *)

open Nocap_repro
open Bechamel
open Toolkit

(* The one place the harness touches the GC. A larger minor heap keeps the
   boxed baselines from spending their time in minor collections (so the
   boxed-vs-unboxed comparison in `memory` measures allocation cost, not
   collector scheduling), and a higher space_overhead keeps the major GC
   out of the timed regions. NOCAP_GC_MINOR_MB (validated once by
   Engine.Config, along with NOCAP_DOMAINS) overrides the minor-heap size
   in MiB. *)
let tune_gc () = Engine.tune_gc (Engine.default ())

(* Static verification of every schedule the harness produces: each kernel
   program at the vector lengths the benches use, linted and checked against
   its Schedule.run schedule. Fails loudly — a dirty program here means a
   kernel generator or the scheduler regressed. *)
let run_lint () =
  Zk_report.Render.section "Static analysis: program lint + schedule check";
  let verdicts =
    List.concat_map
      (fun k -> Program_corpus.verify_all Hw_config.default (Program_corpus.kernels ~vector_len:k))
      [ 64; 256; 2048 ]
  in
  Zk_report.Render.table
    ~header:[ "program"; "k"; "errors"; "warnings"; "makespan"; "critical path" ]
    (List.map
       (fun (v : Program_corpus.verdict) ->
         [
           v.Program_corpus.entry.Program_corpus.name;
           string_of_int v.Program_corpus.entry.Program_corpus.vector_len;
           string_of_int
             (List.length
                (Diag.errors
                   (v.Program_corpus.lint.Lint.diags @ v.Program_corpus.check.Schedule_check.diags)));
           string_of_int
             (List.length (Diag.warnings v.Program_corpus.lint.Lint.diags));
           string_of_int v.Program_corpus.check.Schedule_check.makespan;
           string_of_int v.Program_corpus.check.Schedule_check.critical_path;
         ])
       verdicts);
  let bad = List.filter (fun v -> not (Program_corpus.clean v)) verdicts in
  if bad <> [] then (
    List.iter
      (fun v -> Printf.eprintf "%s\n" (Program_corpus.summary v))
      bad;
    failwith "static analysis found errors in harness programs")

let report_items : (string * (unit -> unit)) list =
  [
    ("lint", run_lint);
    ("table1", Zk_report.Tables.table1);
    ("table2", Zk_report.Tables.table2);
    ("table3", Zk_report.Tables.table3);
    ("table4", Zk_report.Tables.table4);
    ("table5", Zk_report.Tables.table5);
    ("fig5", Zk_report.Figures.fig5);
    ("fig6", Zk_report.Figures.fig6);
    ("fig7", Zk_report.Figures.fig7);
    ("fig8", Zk_report.Figures.fig8);
    ("ablations", Zk_report.Figures.ablations);
    ("db", Zk_report.Figures.db_throughput);
    ("apps", Zk_report.Figures.applications);
    ("scaling", Zk_report.Figures.scaling);
    ("soundness", Zk_report.Figures.soundness_ablation);
  ]

(* --- Bechamel microbenchmarks: one per table/figure, exercising the kernel
   that drives it, plus the underlying substrate kernels. --- *)

let rng = Rng.create 0xBE5CAFEL

let staged = Staged.stage

let bench_table1 =
  Test.make ~name:"table1/endtoend-model" (staged (fun () ->
      List.iter
        (fun p -> ignore (Endtoend.run p ~n_constraints:16.0e6 ()))
        Endtoend.[ Groth16_cpu; Groth16_gpu; Groth16_pipezk; Spartan_cpu; Spartan_nocap ]))

let bench_table2 =
  Test.make ~name:"table2/area-model" (staged (fun () ->
      ignore (Area.total (Area.of_config Hw_config.default))))

let bench_table3 =
  Test.make ~name:"table3/proof-size-model" (staged (fun () ->
      List.iter
        (fun (b : Benchmarks.t) ->
          ignore (Proofsize.spartan_orion_proof_bytes ~n_constraints:b.Benchmarks.r1cs_size))
        Benchmarks.all))

let bench_table4 =
  Test.make ~name:"table4/nocap-simulator" (staged (fun () ->
      List.iter
        (fun (b : Benchmarks.t) ->
          let wl =
            Workload.spartan_orion ~density:b.Benchmarks.density
              ~n_constraints:b.Benchmarks.r1cs_size ()
          in
          ignore (Simulator.run Hw_config.default wl))
        Benchmarks.all))

let bench_table5 =
  Test.make ~name:"table5/endtoend-benchmarks" (staged (fun () ->
      List.iter
        (fun b -> ignore (Endtoend.benchmark_breakdown Endtoend.Spartan_nocap b))
        Benchmarks.all))

let bench_fig5 =
  Test.make ~name:"fig5/power-model" (staged (fun () ->
      let r =
        Simulator.run Hw_config.default (Workload.spartan_orion ~n_constraints:16.0e6 ())
      in
      ignore (Power.of_result r)))

let bench_fig6 =
  Test.make ~name:"fig6/task-breakdown" (staged (fun () ->
      let r =
        Simulator.run Hw_config.default (Workload.spartan_orion ~n_constraints:16.0e6 ())
      in
      List.iter (fun t -> ignore (Simulator.task_fraction r t)) Workload.all_tasks))

let bench_fig7 =
  Test.make ~name:"fig7/sensitivity-point" (staged (fun () ->
      let c = Hw_config.scale_fu Hw_config.default `Arith 0.5 in
      ignore (Simulator.run c (Workload.spartan_orion ~n_constraints:16.0e6 ()))))

let bench_fig8 =
  Test.make ~name:"fig8/design-point" (staged (fun () ->
      let c = Hw_config.scale_hbm (Hw_config.scale_regfile Hw_config.default 2.0) 2.0 in
      ignore (Area.total (Area.of_config c));
      ignore (Simulator.run c (Workload.spartan_orion ~n_constraints:16.0e6 ()))))

(* Substrate kernels (the real computations behind the tasks of Fig. 4). *)

let gf_inputs = Array.init 4096 (fun _ -> Gf.random rng)

let bench_gf_mul =
  Test.make ~name:"kernel/gf-mul-4096" (staged (fun () ->
      let acc = ref Gf.one in
      Array.iter (fun x -> acc := Gf.mul !acc x) gf_inputs;
      ignore !acc))

let ntt_input = Array.init 4096 (fun _ -> Gf.random rng)

let bench_ntt =
  let plan = Ntt.Gf_ntt.plan 4096 in
  Test.make ~name:"kernel/ntt-4096" (staged (fun () ->
      ignore (Ntt.Gf_ntt.forward_copy plan ntt_input)))

let sha_input = Bytes.make 1024 'x'

let bench_sha3 =
  Test.make ~name:"kernel/sha3-1KB" (staged (fun () -> ignore (Keccak.sha3_256 sha_input)))

let rs_msg = Array.init 1024 (fun _ -> Gf.random rng)

let bench_rs_encode =
  Test.make ~name:"ablation/rs-encode-1024" (staged (fun () ->
      ignore (Reed_solomon.encode rs_msg)))

let bench_expander_encode =
  Test.make ~name:"ablation/expander-encode-1024" (staged (fun () ->
      ignore (Expander_code.encode rs_msg)))

let merkle_leaves =
  Array.init 1024 (fun i -> Keccak.sha3_256_string (string_of_int i))

let bench_merkle =
  Test.make ~name:"kernel/merkle-1024" (staged (fun () ->
      ignore (Merkle.root (Merkle.build merkle_leaves))))

let sumcheck_tables = Array.init 4 (fun _ -> Array.init 4096 (fun _ -> Gf.random rng))

let bench_sumcheck =
  let comb v = Gf.mul v.(0) (Gf.sub (Gf.mul v.(1) v.(2)) v.(3)) in
  let claim =
    let acc = ref Gf.zero in
    for b = 0 to 4095 do
      acc := Gf.add !acc (comb (Array.map (fun t -> t.(b)) sumcheck_tables))
    done;
    !acc
  in
  Test.make ~name:"kernel/sumcheck-2^12" (staged (fun () ->
      let t = Transcript.create "bench" in
      ignore (Sumcheck.prove ~comb_mults:2 t ~degree:3 ~tables:sumcheck_tables ~comb ~claim)))

let spartan_instance = lazy (Synthetic.circuit ~n_constraints:2000 ~seed:42L ())

let bench_spartan_prove =
  Test.make ~name:"kernel/spartan-prove-2k" (staged (fun () ->
      let inst, asn = Lazy.force spartan_instance in
      ignore (Spartan.prove Spartan.test_params inst asn)))

let msm_points = lazy (Array.init 64 (fun _ -> G1.random rng))
let msm_scalars = Array.init 64 (fun _ -> Fr_bls.random rng)

let bench_msm =
  Test.make ~name:"baseline/msm-pippenger-64" (staged (fun () ->
      ignore (Msm.pippenger msm_scalars (Lazy.force msm_points))))

let bench_vm_kernel =
  let vm = Vm.create ~vector_len:256 ~num_regs:8 ~mem_slots:8 in
  let data = Array.init 256 (fun _ -> Gf.random rng) in
  Vm.write_mem vm 0 data;
  Vm.write_mem vm 1 data;
  Vm.write_mem vm 4 (Array.make 256 (Gf.random rng));
  let kern = Kernels.sumcheck_round ~vector_len:256 in
  Test.make ~name:"kernel/vm-sumcheck-round" (staged (fun () ->
      Vm.exec vm kern.Kernels.program))

let bench_aggregate =
  let fixture =
    lazy
      (let inst, asn = Synthetic.circuit ~n_constraints:500 ~seed:43L () in
       (inst, Array.make 4 asn))
  in
  Test.make ~name:"extension/aggregate-batch-4" (staged (fun () ->
      let inst, asns = Lazy.force fixture in
      ignore (Aggregate.prove Spartan.test_params inst asns)))

let bench_sumcheck_ext =
  let tables = Array.init 4 (fun _ -> Array.init 1024 (fun _ -> Gf.random rng)) in
  let comb v = Gf2.mul v.(0) (Gf2.sub (Gf2.mul v.(1) v.(2)) v.(3)) in
  let claim =
    let acc = ref Gf.zero in
    for b = 0 to 1023 do
      acc :=
        Gf.add !acc
          (Gf.mul tables.(0).(b)
             (Gf.sub (Gf.mul tables.(1).(b) tables.(2).(b)) tables.(3).(b)))
    done;
    !acc
  in
  Test.make ~name:"extension/sumcheck-ext-2^10" (staged (fun () ->
      let t = Transcript.create "bench-ext" in
      ignore (Sumcheck_ext.prove t ~degree:3 ~tables ~comb ~comb_mults:2 ~claim)))

let bench_streams =
  let program = (Kernels.sumcheck_round ~vector_len:2048).Kernels.program in
  Test.make ~name:"extension/streams-split" (staged (fun () ->
      ignore (Streams.split Hw_config.default ~vector_len:2048 program)))

let bench_four_step =
  let kern, twiddles = Kernels.four_step_ntt ~rows:16 ~cols:16 in
  let vm = Vm.create ~vector_len:256 ~num_regs:8 ~mem_slots:4 in
  let input = Array.init 256 (fun _ -> Gf.random rng) in
  Vm.write_mem vm 0 input;
  Vm.write_mem vm 1 twiddles;
  Test.make ~name:"extension/four-step-ntt-256" (staged (fun () ->
      Vm.exec vm kern.Kernels.program))

let bench_analysis =
  let entries = Program_corpus.kernels ~vector_len:256 in
  Test.make ~name:"extension/analysis-verify" (staged (fun () ->
      List.iter
        (fun v ->
          if not (Program_corpus.clean v) then failwith "analysis: unclean program")
        (Program_corpus.verify_all Hw_config.default entries)))

let bench_multichip =
  Test.make ~name:"extension/multichip-sweep" (staged (fun () ->
      ignore (Multichip.sweep ~n_constraints:550.0e6 ~chips:[ 1; 2; 4; 8; 16 ] ())))

let bench_fri =
  let coeffs = Array.init 512 (fun _ -> Gf.random rng) in
  Test.make ~name:"extension/fri-prove-512" (staged (fun () ->
      let t = Transcript.create "bench-fri" in
      ignore (Fri.prove Fri.default_params t coeffs)))

let bench_stark =
  Test.make ~name:"extension/stark-fib-256" (staged (fun () ->
      ignore (Stark.prove ~n:256 ~a0:Gf.one ~a1:Gf.one)))

let bench_serialize =
  let fixture =
    lazy
      (let inst, asn = Synthetic.circuit ~n_constraints:300 ~seed:44L () in
       fst (Spartan.prove Spartan.test_params inst asn))
  in
  Test.make ~name:"extension/proof-serialize" (staged (fun () ->
      let proof = Lazy.force fixture in
      match Proof_serialize.proof_of_bytes (Proof_serialize.proof_to_bytes proof) with
      | Ok _ -> ()
      | Error e -> failwith (Zk_pcs.Verify_error.to_string e)))

let all_benches =
  [
    bench_table1; bench_table2; bench_table3; bench_table4; bench_table5;
    bench_fig5; bench_fig6; bench_fig7; bench_fig8;
    bench_gf_mul; bench_ntt; bench_sha3; bench_rs_encode; bench_expander_encode;
    bench_merkle; bench_sumcheck; bench_spartan_prove; bench_msm; bench_vm_kernel;
    bench_aggregate; bench_sumcheck_ext; bench_streams; bench_four_step;
    bench_multichip; bench_serialize; bench_fri; bench_stark; bench_analysis;
  ]

let run_benches () =
  Zk_report.Render.section "Microbenchmarks (Bechamel, monotonic clock)";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.2) ~stabilize:false () in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let grouped = Test.make_grouped ~name:"nocap" all_benches in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns = match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan in
        (name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Zk_report.Render.table
    ~header:[ "benchmark"; "time/run" ]
    (List.map (fun (name, ns) -> [ name; Zk_report.Render.seconds (ns /. 1e9) ]) rows)

let () =
  tune_gc ();
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] ->
    List.iter (fun (_, f) -> f ()) report_items;
    run_benches ();
    ignore (Bench_parallel.run ());
    ignore (Bench_memory.run ());
    ignore (Bench_backend.run ());
    ignore (Bench_native.run ());
    ignore (Bench_faults.run ());
    ignore (Bench_analysis.run ());
    ignore (Bench_stream.run ());
    ignore (Bench_serve.run ())
  | [ "report" ] -> List.iter (fun (_, f) -> f ()) report_items
  | [ "bench" ] -> run_benches ()
  | [ "parallel" ] -> ignore (Bench_parallel.run ())
  | [ "parallel"; path ] -> ignore (Bench_parallel.run ~path ())
  | [ "parallel-smoke" ] -> ignore (Bench_parallel.run ~smoke:true ())
  | [ "parallel-smoke"; path ] -> ignore (Bench_parallel.run ~smoke:true ~path ())
  | [ "memory" ] -> ignore (Bench_memory.run ())
  | [ "memory"; path ] -> ignore (Bench_memory.run ~path ())
  | [ "memory-smoke" ] -> ignore (Bench_memory.run ~smoke:true ~path:"BENCH_memory_smoke.json" ())
  | [ "memory-smoke"; path ] -> ignore (Bench_memory.run ~smoke:true ~path ())
  | [ "backend" ] -> ignore (Bench_backend.run ())
  | [ "backend"; path ] -> ignore (Bench_backend.run ~path ())
  | [ "backend-smoke" ] -> ignore (Bench_backend.run ~smoke:true ())
  | [ "backend-smoke"; path ] -> ignore (Bench_backend.run ~smoke:true ~path ())
  | [ "native" ] -> ignore (Bench_native.run ())
  | [ "native"; path ] -> ignore (Bench_native.run ~path ())
  | [ "native-smoke" ] -> ignore (Bench_native.run ~smoke:true ())
  | [ "native-smoke"; path ] -> ignore (Bench_native.run ~smoke:true ~path ())
  | [ "faults" ] -> ignore (Bench_faults.run ())
  | [ "faults"; path ] -> ignore (Bench_faults.run ~path ())
  | [ "faults-smoke" ] -> ignore (Bench_faults.run ~smoke:true ())
  | [ "faults-smoke"; path ] -> ignore (Bench_faults.run ~smoke:true ~path ())
  | [ "serve" ] -> ignore (Bench_serve.run ())
  | [ "serve"; path ] -> ignore (Bench_serve.run ~path ())
  | [ "serve-smoke" ] -> ignore (Bench_serve.run ~smoke:true ())
  | [ "serve-smoke"; path ] -> ignore (Bench_serve.run ~smoke:true ~path ())
  | [ "stream" ] -> ignore (Bench_stream.run ())
  | [ "stream"; path ] -> ignore (Bench_stream.run ~path ())
  | [ "stream-smoke" ] -> ignore (Bench_stream.run ~smoke:true ())
  | [ "stream-smoke"; path ] -> ignore (Bench_stream.run ~smoke:true ~path ())
  | [ "analysis" ] -> ignore (Bench_analysis.run ())
  | [ "analysis"; path ] -> ignore (Bench_analysis.run ~path ())
  | [ "analysis-smoke" ] -> ignore (Bench_analysis.run ~smoke:true ())
  | [ "analysis-smoke"; path ] -> ignore (Bench_analysis.run ~smoke:true ~path ())
  | ids ->
    List.iter
      (fun id ->
        match List.assoc_opt id report_items with
        | Some f -> f ()
        | None -> Printf.eprintf "unknown item %s\n" id)
      ids
