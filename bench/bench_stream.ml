(* Streaming out-of-core prover benchmark -> BENCH_stream.json.

   Three sections:

   - [endtoend]: the full Spartan pipeline, streaming vs in-memory, for
     both PCS backends. Proof BYTES MUST BE EQUAL — this is the hard gate
     (exit 1 otherwise), and in smoke mode the flagship entry is a
     2^16-constraint Orion proof under an artificially tiny budget that
     must actually spill.
   - [commit]: Orion's out-of-core commit over a PRG row producer (the
     table never exists in RAM), with the matrix aspect chosen so the
     column working set is constant — peak RSS should stay flat while N
     doubles, where the in-memory commit grows linearly.
   - [sumcheck]: the recompute-halves streaming sumcheck over spilled
     tables vs the in-memory prover at the same sizes.

   Peak RSS comes from the {!Rss} probe; all streaming phases run BEFORE
   the in-memory phases (ascending N, with a high-water-mark reset in
   between) so a monotonic probe cannot charge streaming with an earlier
   in-memory peak. *)

open Nocap_repro

let schema_id = "nocap-bench-stream/v1"
let wall () = Unix.gettimeofday ()

(* Deterministic per-index field element; the commit section's "table". *)
let gf_of_index i =
  let x = Int64.of_int (i + 1) in
  let x = Int64.mul x 0x9E3779B97F4A7C15L in
  let x = Int64.logxor x (Int64.shift_right_logical x 29) in
  Gf.of_int64 (Int64.shift_right_logical x 1)

type phase = { seconds : float; peak_rss_kb : int }

let measure f =
  ignore (Rss.settle_and_reset ());
  let t0 = wall () in
  let r = f () in
  let seconds = wall () -. t0 in
  let kb, _ = Rss.peak_rss_kb () in
  (r, { seconds; peak_rss_kb = kb })

(* --- endtoend ----------------------------------------------------------- *)

type endtoend = {
  e_backend : string;
  e_constraints_log2 : int;
  e_budget : int;
  e_bytes_equal : bool;
  e_spill_bytes : int;
  e_streaming : phase;
  e_in_memory : phase;
}

let endtoend_sizes ~smoke =
  (* (backend, constraints_log2, budget_bytes); the Orion 2^16 entry under
     a 1 MiB budget is the smoke gate. *)
  if smoke then [ ("orion", 16, 1 lsl 20); ("fri", 11, 1 lsl 18) ]
  else
    [
      ("orion", 16, 1 lsl 20);
      ("orion", 18, 4 lsl 20);
      ("orion", 20, 16 lsl 20);
      ("fri", 12, 1 lsl 19);
      ("fri", 14, 1 lsl 20);
    ]

let run_endtoend ~smoke =
  let cases = endtoend_sizes ~smoke in
  let circuits =
    List.map
      (fun (backend, lg, budget) ->
        let inst, asn =
          Synthetic.circuit ~n_constraints:(1 lsl lg) ~public_seed:true ~seed:0xBEEFL ()
        in
        (backend, lg, budget, inst, asn))
      cases
  in
  let prove_bytes ~engine backend inst asn =
    match backend with
    | "orion" ->
      let params = { Spartan.pcs = { Orion.default_params with Orion.rows = 64 }; repetitions = 1 } in
      let proof, _ = Spartan.prove ?engine params inst asn in
      Spartan.proof_to_bytes proof
    | _ ->
      let params = { Spartan_fri.pcs = Fri_pcs.test_params; repetitions = 1 } in
      let proof, _ = Spartan_fri.prove ?engine params inst asn in
      Spartan_fri.proof_to_bytes proof
  in
  (* streaming phases first, ascending *)
  let streamed =
    List.map
      (fun (backend, lg, budget, inst, asn) ->
        Spill.reset_counters ();
        let engine = Some (Engine.create ~stream_budget_bytes:budget ()) in
        let bytes, ph = measure (fun () -> prove_bytes ~engine backend inst asn) in
        (backend, lg, budget, bytes, ph, Spill.spilled_bytes_total ()))
      circuits
  in
  List.map2
    (fun (backend, lg, budget, s_bytes, s_ph, spill_bytes) (_, _, _, inst, asn) ->
      let m_bytes, m_ph = measure (fun () -> prove_bytes ~engine:None backend inst asn) in
      {
        e_backend = backend;
        e_constraints_log2 = lg;
        e_budget = budget;
        e_bytes_equal = Bytes.equal s_bytes m_bytes;
        e_spill_bytes = spill_bytes;
        e_streaming = s_ph;
        e_in_memory = m_ph;
      })
    streamed circuits

(* --- commit ------------------------------------------------------------- *)

type commit_row = {
  c_log_n : int;
  c_budget : int;
  c_rows : int;
  c_cols : int;
  c_spill_bytes : int;
  c_phase : phase;
}

let run_commit ~smoke =
  (* Fixed column count: the per-column working set (sponge bank, Merkle
     tree) is then constant, so with the row stream spilling, peak RSS is
     budget-bound and flat as N doubles. *)
  let cols_log2 = if smoke then 8 else 10 in
  let budget = if smoke then 1 lsl 18 else 1 lsl 22 in
  let sizes = if smoke then [ 14; 15; 16 ] else [ 18; 19; 20; 21; 22 ] in
  List.map
    (fun log_n ->
      let rows = 1 lsl (log_n - cols_log2) in
      let params = { Orion.default_params with Orion.rows } in
      Spill.reset_counters ();
      let (), ph =
        measure (fun () ->
            let committed, _cm =
              Orion.commit_stream params (Rng.create 7L) ~num_vars:log_n
                ~read:(fun ~pos dst ->
                  for i = 0 to Fv.length dst - 1 do
                    Fv.set dst i (gf_of_index (pos + i))
                  done)
                ~budget_bytes:budget
            in
            Orion.free_committed committed)
      in
      {
        c_log_n = log_n;
        c_budget = budget;
        c_rows = rows;
        c_cols = 1 lsl cols_log2;
        c_spill_bytes = Spill.spilled_bytes_total ();
        c_phase = ph;
      })
    sizes

(* --- sumcheck ----------------------------------------------------------- *)

type sumcheck_row = {
  s_log_n : int;
  s_budget : int;
  s_streaming : phase;
  s_in_memory : phase;
  s_equal : bool;
}

let comb2 v = Gf.mul v.(0) v.(1)

let run_sumcheck ~smoke =
  let budget = if smoke then 1 lsl 18 else 1 lsl 22 in
  let sizes = if smoke then [ 14; 15; 16 ] else [ 18; 20; 22 ] in
  (* streaming first (spilled PRG tables), then the in-memory oracle *)
  let streamed =
    List.map
      (fun log_n ->
        let n = 1 lsl log_n in
        let make_table salt =
          let s = Spill.create ~tag:"bench-sc" ~spill:true n in
          let block = 1 lsl 14 in
          let buf = Fv.create (min block n) in
          let pos = ref 0 in
          while !pos < n do
            let len = min (Fv.length buf) (n - !pos) in
            let v = Fv.sub_view buf ~pos:0 ~len in
            for i = 0 to len - 1 do
              Fv.set v i (gf_of_index ((salt * n) + !pos + i))
            done;
            Spill.write s ~pos:!pos v;
            pos := !pos + len
          done;
          s
        in
        let claim = ref Gf.zero in
        let r, ph =
          measure (fun () ->
              let tables = [| make_table 1; make_table 2 |] in
              (* claim = sum of products, computed blockwise *)
              let reader0 = Spill.Reader.create tables.(0) in
              let reader1 = Spill.Reader.create tables.(1) in
              for b = 0 to n - 1 do
                claim :=
                  Gf.add !claim
                    (Gf.mul (Spill.Reader.get reader0 b) (Spill.Reader.get reader1 b))
              done;
              let t = Transcript.create "bench-stream" in
              let r =
                Sumcheck.prove_streaming ~comb_mults:1 ~budget_bytes:budget t ~degree:2
                  ~tables ~comb:comb2 ~claim:!claim
              in
              Array.iter Spill.free tables;
              r)
        in
        (log_n, r, ph, !claim))
      sizes
  in
  List.map
    (fun (log_n, streamed_r, s_ph, claim) ->
      let n = 1 lsl log_n in
      let in_mem_r, m_ph =
        measure (fun () ->
            let tables =
              [|
                Array.init n (fun i -> gf_of_index (n + i));
                Array.init n (fun i -> gf_of_index ((2 * n) + i));
              |]
            in
            let t = Transcript.create "bench-stream" in
            Sumcheck.prove ~comb_mults:1 t ~degree:2 ~tables ~comb:comb2 ~claim)
      in
      {
        s_log_n = log_n;
        s_budget = budget;
        s_streaming = s_ph;
        s_in_memory = m_ph;
        s_equal =
          streamed_r.Sumcheck.proof = in_mem_r.Sumcheck.proof
          && streamed_r.Sumcheck.challenges = in_mem_r.Sumcheck.challenges;
      })
    streamed

(* --- JSON + schema ------------------------------------------------------ *)

let json_of ~smoke ~rss_source ~resettable endtoend commits sumchecks =
  let buf = Buffer.create 4096 in
  let adds fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let add_phase name p =
    adds "      \"%s\": {\"seconds\": %.6f, \"peak_rss_kb\": %d},\n" name p.seconds
      p.peak_rss_kb
  in
  adds "{\n";
  adds "  \"schema\": %S,\n" schema_id;
  adds "  \"smoke\": %b,\n" smoke;
  adds "  \"rss_source\": %S,\n" rss_source;
  adds "  \"rss_resettable\": %b,\n" resettable;
  adds "  \"endtoend\": [\n";
  List.iteri
    (fun i e ->
      adds "    {\n";
      adds "      \"backend\": %S,\n" e.e_backend;
      adds "      \"constraints_log2\": %d,\n" e.e_constraints_log2;
      adds "      \"budget_bytes\": %d,\n" e.e_budget;
      adds "      \"bytes_equal\": %b,\n" e.e_bytes_equal;
      adds "      \"spill_bytes\": %d,\n" e.e_spill_bytes;
      add_phase "streaming" e.e_streaming;
      add_phase "in_memory" e.e_in_memory;
      adds "      \"slowdown\": %.4f\n"
        (e.e_streaming.seconds /. (max 1e-9 e.e_in_memory.seconds));
      adds "    }%s\n" (if i = List.length endtoend - 1 then "" else ","))
    endtoend;
  adds "  ],\n";
  adds "  \"commit\": [\n";
  List.iteri
    (fun i c ->
      adds
        "    {\"log_n\": %d, \"budget_bytes\": %d, \"rows\": %d, \"cols\": %d, \
         \"spill_bytes\": %d, \"seconds\": %.6f, \"peak_rss_kb\": %d}%s\n"
        c.c_log_n c.c_budget c.c_rows c.c_cols c.c_spill_bytes c.c_phase.seconds
        c.c_phase.peak_rss_kb
        (if i = List.length commits - 1 then "" else ","))
    commits;
  adds "  ],\n";
  adds "  \"sumcheck\": [\n";
  List.iteri
    (fun i s ->
      adds "    {\n";
      adds "      \"log_n\": %d,\n" s.s_log_n;
      adds "      \"budget_bytes\": %d,\n" s.s_budget;
      adds "      \"proof_equal\": %b,\n" s.s_equal;
      add_phase "streaming" s.s_streaming;
      add_phase "in_memory" s.s_in_memory;
      adds "      \"slowdown\": %.4f\n"
        (s.s_streaming.seconds /. (max 1e-9 s.s_in_memory.seconds));
      adds "    }%s\n" (if i = List.length sumchecks - 1 then "" else ","))
    sumchecks;
  adds "  ]\n";
  adds "}\n";
  Buffer.contents buf

open Json_min

let validate_schema (s : string) : (unit, string) result =
  try
    let j = parse_json s in
    if as_str (field j "schema") <> schema_id then raise (Bad_json "wrong schema id");
    ignore (as_bool (field j "smoke"));
    if as_str (field j "rss_source") = "" then raise (Bad_json "empty rss_source");
    ignore (as_bool (field j "rss_resettable"));
    let endtoend = as_list (field j "endtoend") in
    if List.length endtoend < 2 then raise (Bad_json "need >= 2 endtoend entries");
    let has_spill = ref false in
    List.iter
      (fun e ->
        ignore (as_str (field e "backend"));
        ignore (as_num (field e "constraints_log2"));
        if not (as_num (field e "budget_bytes") > 0.0) then
          raise (Bad_json "budget must be positive");
        if not (as_bool (field e "bytes_equal")) then
          raise (Bad_json "streaming proof bytes diverged from in-memory");
        if as_num (field e "spill_bytes") > 0.0 then has_spill := true;
        List.iter
          (fun ph ->
            let p = field e ph in
            if not (as_num (field p "seconds") > 0.0) then
              raise (Bad_json "seconds must be positive");
            ignore (as_num (field p "peak_rss_kb")))
          [ "streaming"; "in_memory" ])
      endtoend;
    if not !has_spill then raise (Bad_json "no endtoend entry actually spilled");
    let commits = as_list (field j "commit") in
    if List.length commits < 3 then raise (Bad_json "need >= 3 commit sizes");
    List.iter
      (fun c ->
        ignore (as_num (field c "log_n"));
        if not (as_num (field c "spill_bytes") > 0.0) then
          raise (Bad_json "streamed commit must spill");
        if not (as_num (field c "seconds") > 0.0) then
          raise (Bad_json "commit seconds must be positive"))
      commits;
    let sumchecks = as_list (field j "sumcheck") in
    if List.length sumchecks < 2 then raise (Bad_json "need >= 2 sumcheck sizes");
    List.iter
      (fun s ->
        if not (as_bool (field s "proof_equal")) then
          raise (Bad_json "streaming sumcheck diverged"))
      sumchecks;
    Ok ()
  with Bad_json msg -> Error msg

(* --- driver ------------------------------------------------------------- *)

let run ?(smoke = false) ?(path = "BENCH_stream.json") () =
  Zk_report.Render.section
    (Printf.sprintf "Streaming out-of-core prover: bounded-memory vs in-RAM%s"
       (if smoke then " (smoke)" else ""));
  let resettable = Rss.settle_and_reset () in
  (* The commit ladder runs FIRST: the OCaml heap never shrinks back after
     the big endtoend phases, so running it later would bury its flat,
     budget-bound RSS profile under the endtoend phases' heap floor. *)
  let commits = run_commit ~smoke in
  let sumchecks = run_sumcheck ~smoke in
  let endtoend = run_endtoend ~smoke in
  let _, rss_source = Rss.peak_rss_kb () in
  Zk_report.Render.table
    ~header:
      [ "backend"; "2^c"; "budget"; "equal"; "spilled"; "stream"; "in-mem"; "rss str"; "rss mem" ]
    (List.map
       (fun e ->
         [
           e.e_backend;
           string_of_int e.e_constraints_log2;
           Printf.sprintf "%dK" (e.e_budget / 1024);
           (if e.e_bytes_equal then "yes" else "NO");
           Printf.sprintf "%dK" (e.e_spill_bytes / 1024);
           Zk_report.Render.seconds e.e_streaming.seconds;
           Zk_report.Render.seconds e.e_in_memory.seconds;
           Printf.sprintf "%dM" (e.e_streaming.peak_rss_kb / 1024);
           Printf.sprintf "%dM" (e.e_in_memory.peak_rss_kb / 1024);
         ])
       endtoend);
  Zk_report.Render.table
    ~header:[ "commit 2^n"; "rows x cols"; "budget"; "spilled"; "time"; "peak rss" ]
    (List.map
       (fun c ->
         [
           string_of_int c.c_log_n;
           Printf.sprintf "%dx%d" c.c_rows c.c_cols;
           Printf.sprintf "%dK" (c.c_budget / 1024);
           Printf.sprintf "%dK" (c.c_spill_bytes / 1024);
           Zk_report.Render.seconds c.c_phase.seconds;
           Printf.sprintf "%dM" (c.c_phase.peak_rss_kb / 1024);
         ])
       commits);
  Zk_report.Render.table
    ~header:[ "sumcheck 2^n"; "equal"; "stream"; "in-mem"; "rss str"; "rss mem" ]
    (List.map
       (fun s ->
         [
           string_of_int s.s_log_n;
           (if s.s_equal then "yes" else "NO");
           Zk_report.Render.seconds s.s_streaming.seconds;
           Zk_report.Render.seconds s.s_in_memory.seconds;
           Printf.sprintf "%dM" (s.s_streaming.peak_rss_kb / 1024);
           Printf.sprintf "%dM" (s.s_in_memory.peak_rss_kb / 1024);
         ])
       sumchecks);
  (* Hard gates: every streaming proof must match its in-memory oracle, and
     the flagship smoke entry (orion @ 2^16 constraints, 1 MiB budget) must
     actually have spilled. *)
  List.iter
    (fun e ->
      if not e.e_bytes_equal then begin
        Printf.eprintf
          "bench stream: %s 2^%d streaming proof bytes DIVERGED from in-memory\n%!"
          e.e_backend e.e_constraints_log2;
        exit 1
      end)
    endtoend;
  (match
     List.find_opt
       (fun e -> e.e_backend = "orion" && e.e_constraints_log2 = 16)
       endtoend
   with
  | Some e when e.e_spill_bytes = 0 ->
    Printf.eprintf "bench stream: 2^16 gate entry never spilled (budget too large?)\n%!";
    exit 1
  | Some _ -> ()
  | None ->
    Printf.eprintf "bench stream: 2^16 gate entry missing\n%!";
    exit 1);
  List.iter
    (fun s ->
      if not s.s_equal then begin
        Printf.eprintf "bench stream: sumcheck 2^%d diverged\n%!" s.s_log_n;
        exit 1
      end)
    sumchecks;
  let json = json_of ~smoke ~rss_source ~resettable endtoend commits sumchecks in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  (match validate_schema json with
  | Ok () -> Printf.printf "wrote %s (schema %s, valid)\n%!" path schema_id
  | Error msg ->
    Printf.eprintf "BENCH_stream.json failed schema validation: %s\n%!" msg;
    exit 1);
  (endtoend, commits, sumchecks)
