(* Native kernel layer benchmark: times each C-stub-backed kernel in its
   three modes — pure OCaml oracle ([Native.Off]), portable scalar C
   ([Native.Scalar]), and SIMD-dispatched C ([Native.Simd]) — cross-checks
   that all three produce identical results, and emits BENCH_native.json
   (validated against its own schema before exit).

   Everything runs single-domain ([Pool.with_domains 1]): the point is the
   per-kernel instruction stream, not parallel scaling — BENCH_parallel.json
   covers that axis, and the native/OCaml choice composes with it (the
   mode-aware grain costs in Keccak/Ntt/Reed_solomon keep chunking sane
   either way).

   The three modes are timed over the same preallocated inputs, so the
   ratios isolate the kernel swap itself. On a machine without AVX2/NEON the
   Simd rows degrade to the scalar C bodies and speedup_simd ~= speedup_scalar;
   the "features" field in the JSON records which case a given report is. *)

open Nocap_repro
module Gf_fv = Ntt.Gf_fv

let wall () = Unix.gettimeofday ()

(* Best-of-r wall time from a settled heap. *)
let measure ~reps f =
  Gc.full_major ();
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = wall () in
    ignore (Sys.opaque_identity (f ()));
    let dt = wall () -. t0 in
    if dt < !best then best := dt
  done;
  !best

type kernel = {
  k_name : string;
  k_n : int; (* elements (or bytes, for keccak-batch) processed per run *)
  k_run : unit -> string; (* runs under the ambient mode; returns fingerprint *)
}

let kernels ~smoke rng =
  let scale b s = if smoke then s else b in
  (* Elementwise Goldilocks: one mul_into pass over a large vector. *)
  let ew_n = scale (1 lsl 20) (1 lsl 12) in
  let ew_a = Fv.create ew_n and ew_b = Fv.create ew_n in
  for i = 0 to ew_n - 1 do
    Fv.set ew_a i (Gf.random rng);
    Fv.set ew_b i (Gf.random rng)
  done;
  let ew_dst = Fv.create ew_n in
  (* Row-batched forward NTT: the codeword-matrix shape Orion commits. *)
  let ntt_rows = scale 64 4 in
  let ntt_cols = scale (1 lsl 12) (1 lsl 8) in
  let ntt_input = Fv.create (ntt_rows * ntt_cols) in
  for i = 0 to (ntt_rows * ntt_cols) - 1 do
    Fv.set ntt_input i (Gf.random rng)
  done;
  let ntt_buf = Fv.create (ntt_rows * ntt_cols) in
  let ntt_plan = Gf_fv.plan ntt_cols in
  (* Keccak batch: independent equal-length messages (three f1600 each). *)
  let kb_count = scale 1024 32 in
  let kb_len = scale 272 64 in
  let kb_msgs =
    Array.init kb_count (fun i ->
        Bytes.init kb_len (fun j -> Char.chr ((i + (31 * j)) land 0xff)))
  in
  (* Fused RS row encode over a message matrix. *)
  let rs_rows = scale 128 4 in
  let rs_cols = scale 1024 64 in
  let rs_flat = Fv.create (rs_rows * rs_cols) in
  for i = 0 to (rs_rows * rs_cols) - 1 do
    Fv.set rs_flat i (Gf.random rng)
  done;
  (* Column sponges over a flat codeword matrix (Merkle leaf hashing). *)
  let ch_rows = scale 2048 64 in
  let ch_cols = scale 256 16 in
  let ch_flat = Fv.create (ch_rows * ch_cols) in
  for i = 0 to (ch_rows * ch_cols) - 1 do
    Fv.set ch_flat i (Gf.random rng)
  done;
  (* One Merkle level: pairwise digest compression. *)
  let hp_n = scale 8192 64 in
  let hp_digests =
    Array.init hp_n (fun i -> Keccak.sha3_256 (Bytes.of_string (string_of_int i)))
  in
  [
    {
      k_name = "fv-mul";
      k_n = ew_n;
      k_run =
        (fun () ->
          Fv.mul_into ~dst:ew_dst ew_a ew_b;
          Gf.to_string (Fv.get ew_dst (ew_n - 1)));
    };
    {
      k_name = "ntt-forward-rows";
      k_n = ntt_rows * ntt_cols;
      k_run =
        (fun () ->
          Fv.blit ~src:ntt_input ~src_pos:0 ~dst:ntt_buf ~dst_pos:0
            ~len:(ntt_rows * ntt_cols);
          Gf_fv.forward_rows_flat ntt_plan ~rows:ntt_rows ntt_buf;
          Gf.to_string (Fv.get ntt_buf ((ntt_rows * ntt_cols) - 1)));
    };
    {
      k_name = "keccak-batch";
      k_n = kb_count * kb_len;
      k_run =
        (fun () ->
          let d = Keccak.sha3_256_batch kb_msgs in
          Keccak.to_hex d.(kb_count - 1));
    };
    {
      k_name = "rs-encode-rows";
      k_n = rs_rows * rs_cols;
      k_run =
        (fun () ->
          let e = Reed_solomon.encode_rows_fv ~rows:rs_rows ~cols:rs_cols rs_flat in
          Gf.to_string
            (Fv.get e (((rs_rows - 1) * Reed_solomon.blowup * rs_cols) + 1)));
    };
    {
      k_name = "col-hash";
      k_n = ch_rows * ch_cols;
      k_run =
        (fun () ->
          let d = Keccak.hash_matrix_cols ~rows:ch_rows ~cols:ch_cols ch_flat in
          Keccak.to_hex d.(ch_cols - 1));
    };
    {
      k_name = "hash2-pairs";
      k_n = hp_n;
      k_run =
        (fun () ->
          let d = Keccak.hash2_pairs hp_digests in
          Keccak.to_hex d.((hp_n / 2) - 1));
    };
  ]

type row = {
  kernel : kernel;
  ocaml_s : float;
  scalar_s : float;
  simd_s : float;
  fingerprint_equal : bool;
}

let measure_kernel ~smoke k =
  let reps = if smoke then 2 else 5 in
  let under mode =
    Native.with_mode mode (fun () ->
        (* Warm-up builds plans/twiddles and takes the equality fingerprint. *)
        let fp = k.k_run () in
        (fp, measure ~reps k.k_run))
  in
  let fp_ocaml, ocaml_s = under Native.Off in
  let fp_scalar, scalar_s = under Native.Scalar in
  let fp_simd, simd_s = under Native.Simd in
  {
    kernel = k;
    ocaml_s;
    scalar_s;
    simd_s;
    fingerprint_equal =
      String.equal fp_ocaml fp_scalar && String.equal fp_ocaml fp_simd;
  }

let speedup_scalar r = r.ocaml_s /. r.scalar_s
let speedup_simd r = r.ocaml_s /. r.simd_s

(* --- JSON emission + schema --------------------------------------------- *)

let schema_id = "nocap-bench-native/v1"

let json_of_rows rows =
  let buf = Buffer.create 4096 in
  let adds fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  adds "{\n";
  adds "  \"schema\": %S,\n" schema_id;
  adds "  \"domains\": 1,\n";
  adds "  \"features\": %S,\n" (Native.features_to_string ());
  adds "  \"default_mode\": %S,\n" (Native.mode_to_string (Native.mode ()));
  adds "  \"kernels\": [\n";
  List.iteri
    (fun i r ->
      adds "    {\n";
      adds "      \"name\": %S,\n" r.kernel.k_name;
      adds "      \"n\": %d,\n" r.kernel.k_n;
      adds "      \"fingerprint_equal\": %b,\n" r.fingerprint_equal;
      adds "      \"ocaml_seconds\": %.9f,\n" r.ocaml_s;
      adds "      \"scalar_seconds\": %.9f,\n" r.scalar_s;
      adds "      \"simd_seconds\": %.9f,\n" r.simd_s;
      adds "      \"speedup_scalar\": %.4f,\n" (speedup_scalar r);
      adds "      \"speedup_simd\": %.4f\n" (speedup_simd r);
      adds "    }%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  adds "  ]\n";
  adds "}\n";
  Buffer.contents buf

open Json_min

(* Required shape: schema id, single-domain marker, CPU feature string, and
   >= 6 kernels each carrying all three timings, matching fingerprints, and
   positive speedups; the three acceptance kernels must be present. *)
let validate_schema (s : string) : (unit, string) result =
  try
    let j = parse_json s in
    if as_str (field j "schema") <> schema_id then raise (Bad_json "wrong schema id");
    if as_num (field j "domains") <> 1.0 then
      raise (Bad_json "native bench must be single-domain");
    ignore (as_str (field j "features"));
    ignore (as_str (field j "default_mode"));
    let kernels = as_list (field j "kernels") in
    if List.length kernels < 6 then raise (Bad_json "need >= 6 kernels");
    let names =
      List.map
        (fun k ->
          if not (as_num (field k "n") > 0.0) then raise (Bad_json "n must be positive");
          if not (as_bool (field k "fingerprint_equal")) then
            raise (Bad_json "mode fingerprints diverged");
          List.iter
            (fun key ->
              if not (as_num (field k key) > 0.0) then
                raise (Bad_json (key ^ " must be positive")))
            [ "ocaml_seconds"; "scalar_seconds"; "simd_seconds";
              "speedup_scalar"; "speedup_simd" ];
          as_str (field k "name"))
        kernels
    in
    List.iter
      (fun required ->
        if not (List.mem required names) then
          raise (Bad_json (Printf.sprintf "kernel %S missing" required)))
      [ "ntt-forward-rows"; "keccak-batch"; "rs-encode-rows" ];
    Ok ()
  with Bad_json msg -> Error msg

(* --- driver ------------------------------------------------------------- *)

let run ?(smoke = false) ?(path = "BENCH_native.json") () =
  Zk_report.Render.section
    (Printf.sprintf "Native kernels: OCaml vs scalar C vs SIMD (single domain)%s"
       (if smoke then " (smoke)" else ""));
  Printf.printf "cpu features: %s, default mode: %s\n%!"
    (Native.features_to_string ())
    (Native.mode_to_string (Native.mode ()));
  let rng = Rng.create 0x5E1FL in
  let rows =
    Pool.with_domains 1 (fun () -> List.map (measure_kernel ~smoke) (kernels ~smoke rng))
  in
  Zk_report.Render.table
    ~header:[ "kernel"; "n"; "ocaml"; "scalar C"; "simd"; "scalar x"; "simd x" ]
    (List.map
       (fun r ->
         [
           r.kernel.k_name;
           string_of_int r.kernel.k_n;
           Zk_report.Render.seconds r.ocaml_s;
           Zk_report.Render.seconds r.scalar_s;
           Zk_report.Render.seconds r.simd_s;
           Printf.sprintf "%.2fx" (speedup_scalar r);
           Printf.sprintf "%.2fx" (speedup_simd r);
         ])
       rows);
  (match List.filter (fun r -> not r.fingerprint_equal) rows with
  | [] -> ()
  | bad ->
    List.iter
      (fun r ->
        Printf.eprintf "bench native: %s diverged across modes\n%!" r.kernel.k_name)
      bad;
    exit 1);
  let json = json_of_rows rows in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  (match validate_schema json with
  | Ok () -> Printf.printf "wrote %s (schema %s, valid)\n%!" path schema_id
  | Error msg ->
    Printf.eprintf "BENCH_native.json failed schema validation: %s\n%!" msg;
    exit 1);
  rows
