(* Command-line front end: prove/verify real circuits, run the accelerator
   model, and regenerate the paper's tables and figures.

     nocap-cli prove --benchmark aes --scale 2
     nocap-cli simulate --constraints 16e6 --hbm-gbps 2048
     nocap-cli report table4 fig7
     nocap-cli db --rows 8 --batches 3 --txs 4 *)

open Cmdliner
open Nocap_repro

let benchmark_arg =
  let doc = "Benchmark circuit: aes, sha, rsa, litmus, or auction." in
  Arg.(value & opt string "aes" & info [ "benchmark"; "b" ] ~docv:"NAME" ~doc)

let scale_arg =
  let doc = "Workload scale (blocks / bids / transactions)." in
  Arg.(value & opt int 1 & info [ "scale"; "s" ] ~docv:"N" ~doc)

let reps_arg =
  let doc = "Sumcheck soundness repetitions (paper uses 3)." in
  Arg.(value & opt int 1 & info [ "repetitions"; "r" ] ~docv:"N" ~doc)

let pcs_arg =
  let doc = "Proof backend: orion (default) or fri." in
  Arg.(value & opt string "orion" & info [ "pcs" ] ~docv:"BACKEND" ~doc)

let find_benchmark name =
  try Benchmarks.find name
  with Not_found ->
    Printf.eprintf "unknown benchmark %s\n" name;
    exit 2

(* Prove (and self-check) over any Spartan instantiation, optionally writing
   the serialized proof for a later `nocap-cli verify`. *)
module Prove_run (S : Zk_spartan.Spartan.S) = struct
  let run ~reps ~out inst asn =
    let params = { S.test_params with S.repetitions = reps } in
    let t0 = Unix.gettimeofday () in
    let proof, stats = S.prove params inst asn in
    let t1 = Unix.gettimeofday () in
    Printf.printf "  proved in %.3f s (%d sumcheck mults, %d spmv mults, %d hashes)\n%!"
      (t1 -. t0) stats.S.sumcheck_mults stats.S.spmv_mults stats.S.transcript_hashes;
    Printf.printf "  proof size: %d bytes\n%!" (S.proof_size_bytes params proof);
    let t2 = Unix.gettimeofday () in
    (match S.verify params inst ~io:(R1cs.public_io inst asn) proof with
    | Ok () -> Printf.printf "  verified in %.3f s: OK\n%!" (Unix.gettimeofday () -. t2)
    | Error e ->
      Printf.printf "  VERIFICATION FAILED: %s\n%!" (Zk_pcs.Verify_error.to_string e);
      exit 1);
    match out with
    | None -> ()
    | Some path ->
      let data = S.proof_to_bytes proof in
      let oc = open_out_bin path in
      output_bytes oc data;
      close_out oc;
      Printf.printf "  wrote %s (%d bytes, backend %s)\n%!" path (Bytes.length data)
        S.P.name
end

let prove_cmd =
  let out_arg =
    let doc = "Write the serialized proof to $(docv)." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let run name scale reps pcs out =
    let b = find_benchmark name in
    Printf.printf "building %s circuit (scale %d): %s\n%!" b.Benchmarks.name scale
      b.Benchmarks.description;
    let inst, asn = b.Benchmarks.generate scale in
    Printf.printf "  constraints: %d (padded to 2^%d), nnz: %d\n%!"
      inst.R1cs.num_constraints inst.R1cs.log_size (R1cs.nnz inst);
    (match pcs with
    | "orion" ->
      let module M = Prove_run (Spartan) in
      M.run ~reps ~out inst asn
    | "fri" ->
      let module M = Prove_run (Spartan_fri) in
      M.run ~reps ~out inst asn
    | other ->
      Printf.eprintf "unknown PCS backend %s (expected orion or fri)\n" other;
      exit 2);
    (* Model the same statement at paper scale. *)
    let wl =
      Workload.spartan_orion ~density:b.Benchmarks.density
        ~n_constraints:b.Benchmarks.r1cs_size ()
    in
    let sim = Simulator.run Hw_config.default wl in
    Printf.printf "at paper scale (%.0fM constraints): NoCap would prove in %s\n"
      (b.Benchmarks.r1cs_size /. 1e6)
      (Zk_report.Render.seconds sim.Simulator.total_seconds)
  in
  Cmd.v (Cmd.info "prove" ~doc:"Build a benchmark circuit, prove and verify it.")
    Term.(const run $ benchmark_arg $ scale_arg $ reps_arg $ pcs_arg $ out_arg)

(* `verify` treats the proof file as untrusted input: any outcome other than
   acceptance is a categorized Verify_error mapped to a distinct exit code
   (documented in the README), with the category name on stderr — never an
   exception. The statement is regenerated deterministically from the same
   benchmark/scale the proof was made for. *)
let verify_cmd =
  let proof_arg =
    let doc = "Serialized proof file (written by prove --out)." in
    Arg.(required & opt (some string) None & info [ "proof"; "p" ] ~docv:"FILE" ~doc)
  in
  let run name scale reps proof_path =
    let b = find_benchmark name in
    let data =
      try
        let ic = open_in_bin proof_path in
        let n = in_channel_length ic in
        let data = really_input_string ic n in
        close_in ic;
        Bytes.of_string data
      with Sys_error msg ->
        Printf.eprintf "cannot read proof: %s\n" msg;
        exit 2
    in
    let inst, asn = b.Benchmarks.generate scale in
    let io = R1cs.public_io inst asn in
    let result =
      match Proof_serialize.backend_of_bytes data with
      | Error e -> Error e
      | Ok bk when String.equal bk Orion_pcs.name ->
        let params = { Spartan.test_params with Spartan.repetitions = reps } in
        Result.map
          (fun () -> bk)
          (Result.bind (Spartan.proof_of_bytes data) (Spartan.verify params inst ~io))
      | Ok bk when String.equal bk Fri_pcs.name ->
        let params = { Spartan_fri.test_params with Spartan_fri.repetitions = reps } in
        Result.map
          (fun () -> bk)
          (Result.bind (Spartan_fri.proof_of_bytes data) (Spartan_fri.verify params inst ~io))
      | Ok bk ->
        Verify_error.errorf Verify_error.Bad_header "no verifier wired for backend %S" bk
    in
    match result with
    | Ok bk ->
      Printf.printf "proof verified OK (%s backend, %d bytes, %s scale %d)\n" bk
        (Bytes.length data) b.Benchmarks.name scale
    | Error e ->
      Printf.eprintf "%s\n" (Verify_error.to_string e);
      exit (Verify_error.exit_code e.Verify_error.category)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Verify an untrusted serialized proof against a regenerated benchmark \
          statement. Exit codes: 0 accepted, 2 usage/io, 10-17 one per rejection \
          category (bad_header=10 ... consistency=17).")
    Term.(const run $ benchmark_arg $ scale_arg $ reps_arg $ proof_arg)

(* `fuzz` is the CLI face of the fault-injection harness: seeded, replayable
   sweeps whose only healthy outcome is every mutant rejected with a
   structured error. *)
let fuzz_cmd =
  let backend_arg =
    let doc = "Target backend: orion, fri, or both." in
    Arg.(value & opt string "both" & info [ "backend" ] ~docv:"NAME" ~doc)
  in
  let mutants_arg =
    let doc = "Byte-level mutants per target." in
    Arg.(value & opt int 1000 & info [ "mutants"; "n" ] ~docv:"N" ~doc)
  in
  let rounds_arg =
    let doc = "Structural mutation rounds per target (one mutant per mutator per round)." in
    Arg.(value & opt int 30 & info [ "structured-rounds" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "RNG seed; (seed, index) replays any mutant." in
    Arg.(value & opt int 0xFA175E & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let run backend mutants rounds seed =
    let targets =
      match backend with
      | "both" -> Fault_targets.all ()
      | name -> (
        match Fault_targets.by_name name with
        | Some t -> [ t ]
        | None ->
          Printf.eprintf "unknown backend %s (expected orion, fri, or both)\n" name;
          exit 2)
    in
    let reports =
      List.map
        (Fuzz.sweep ~seed:(Int64.of_int seed) ~byte_mutants:mutants
           ~structured_rounds:rounds)
        targets
    in
    List.iter (fun r -> Format.printf "%a%!" Fuzz.pp_report r) reports;
    if List.for_all Fuzz.clean reports then
      Printf.printf "fuzz: every mutant rejected with a structured error\n"
    else begin
      Printf.eprintf "fuzz: ALARM — corrupted proof accepted or exception raised\n";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Fault-inject the verifier: mutate honest proofs at the byte and \
          structure level and demand structured rejection of every mutant. \
          Exits 1 on any accept (soundness alarm) or exception (robustness \
          alarm).")
    Term.(const run $ backend_arg $ mutants_arg $ rounds_arg $ seed_arg)

let constraints_arg =
  let doc = "Statement size in R1CS constraints." in
  Arg.(value & opt float 16.0e6 & info [ "constraints"; "n" ] ~docv:"N" ~doc)

let hbm_arg =
  let doc = "HBM bandwidth in GB/s." in
  Arg.(value & opt float 1024.0 & info [ "hbm-gbps" ] ~docv:"GBPS" ~doc)

let arith_arg =
  let doc = "Multiply/add lane-count scale factor." in
  Arg.(value & opt float 1.0 & info [ "arith-scale" ] ~docv:"F" ~doc)

let regfile_arg =
  let doc = "Register file size in MB." in
  Arg.(value & opt float 8.0 & info [ "regfile-mb" ] ~docv:"MB" ~doc)

let simulate_cmd =
  let run n hbm arith regfile =
    let c = Hw_config.scale_fu Hw_config.default `Arith arith in
    let c = { c with Hw_config.hbm_gbps = hbm; regfile_mb = regfile } in
    Printf.printf "%s\n" (Hw_config.describe c);
    let r = Simulator.run c (Workload.spartan_orion ~n_constraints:n ()) in
    Printf.printf "proving time: %s (%.0f cycles)\n"
      (Zk_report.Render.seconds r.Simulator.total_seconds)
      r.Simulator.total_cycles;
    List.iter
      (fun (t : Simulator.task_timing) ->
        Printf.printf "  %-13s %6.2f%%  bound by %s\n"
          (Workload.task_name t.Simulator.task)
          (100.0 *. t.Simulator.cycles /. r.Simulator.total_cycles)
          (Simulator.resource_name t.Simulator.bound_by))
      r.Simulator.tasks;
    let area = Area.of_config c in
    let power = Power.of_result r in
    Printf.printf "area: %.1f mm^2, power: %.1f W, compute utilization: %.0f%%\n"
      (Area.total area) (Power.total power)
      (100.0 *. r.Simulator.compute_utilization)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run the NoCap timing/area/power model on one statement.")
    Term.(const run $ constraints_arg $ hbm_arg $ arith_arg $ regfile_arg)

let report_items =
  [
    ("table1", Zk_report.Tables.table1);
    ("table2", Zk_report.Tables.table2);
    ("table3", Zk_report.Tables.table3);
    ("table4", Zk_report.Tables.table4);
    ("table5", Zk_report.Tables.table5);
    ("fig5", Zk_report.Figures.fig5);
    ("fig6", Zk_report.Figures.fig6);
    ("fig7", Zk_report.Figures.fig7);
    ("fig8", Zk_report.Figures.fig8);
    ("ablations", Zk_report.Figures.ablations);
    ("db", Zk_report.Figures.db_throughput);
    ("apps", Zk_report.Figures.applications);
    ("scaling", Zk_report.Figures.scaling);
    ("soundness", Zk_report.Figures.soundness_ablation);
  ]

let report_cmd =
  let ids_arg =
    let doc = "Items to print (default: all). One of: table1..table5, fig5..fig8, ablations, db, apps." in
    Arg.(value & pos_all string [] & info [] ~docv:"ITEM" ~doc)
  in
  let run ids =
    let ids = if ids = [] then List.map fst report_items else ids in
    List.iter
      (fun id ->
        match List.assoc_opt id report_items with
        | Some f -> f ()
        | None -> Printf.eprintf "unknown report item %s\n" id)
      ids
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Regenerate the paper's evaluation tables and figures.")
    Term.(const run $ ids_arg)

let db_cmd =
  let rows_arg = Arg.(value & opt int 8 & info [ "rows" ] ~docv:"N" ~doc:"Table rows.") in
  let batches_arg = Arg.(value & opt int 2 & info [ "batches" ] ~docv:"N" ~doc:"Batches to prove.") in
  let txs_arg = Arg.(value & opt int 4 & info [ "txs" ] ~docv:"N" ~doc:"Transactions per batch.") in
  let run rows batches txs =
    let db = Zkdb.create ~rows ~seed:7L in
    let rng = Rng.create 8L in
    for i = 1 to batches do
      let batch = Litmus_circuit.random_transactions rng ~rows ~count:txs in
      let t0 = Unix.gettimeofday () in
      let receipt = Zkdb.prove_batch db batch in
      let ok = Zkdb.verify_batch receipt in
      Printf.printf "batch %d: %d txs, %d constraints, proved+verified in %.3f s: %s\n%!"
        i txs receipt.Zkdb.instance.R1cs.num_constraints
        (Unix.gettimeofday () -. t0)
        (if ok then "OK" else "FAILED")
    done;
    Zk_report.Figures.db_throughput ()
  in
  Cmd.v
    (Cmd.info "db" ~doc:"Run the verifiable database demo and throughput analysis.")
    Term.(const run $ rows_arg $ batches_arg $ txs_arg)

let batch_cmd =
  let size_arg =
    Arg.(value & opt int 4 & info [ "size"; "k" ] ~docv:"K" ~doc:"Statements per batch.")
  in
  let run k =
    (* k proofs of knowledge of factorizations, batched into shared
       sumchecks (Aggregate): the Litmus-style amortization. *)
    let build x y =
      let b = Builder.create () in
      let vx = Builder.witness b (Gf.of_int x) in
      let vy = Builder.witness b (Gf.of_int y) in
      let out = Builder.input b (Gf.of_int (x * y)) in
      Builder.constrain b (Builder.lc_var vx) (Builder.lc_var vy) (Builder.lc_var out);
      Builder.finalize b
    in
    let rng = Rng.create 99L in
    let pairs = Array.init k (fun _ -> (2 + Rng.int rng 100, 2 + Rng.int rng 100)) in
    let inst = fst (build (fst pairs.(0)) (snd pairs.(0))) in
    let assignments = Array.map (fun (x, y) -> snd (build x y)) pairs in
    let t0 = Unix.gettimeofday () in
    let proof = Aggregate.prove Spartan.test_params inst assignments in
    let mid = Unix.gettimeofday () in
    let ios = Array.map (R1cs.public_io inst) assignments in
    (match Aggregate.verify Spartan.test_params inst ~ios proof with
    | Ok () ->
      Printf.printf
        "batched %d statements: proved in %.3f s, verified in %.3f s (%d bytes, one shared sumcheck pair)\n"
        k (mid -. t0)
        (Unix.gettimeofday () -. mid)
        (Aggregate.proof_size_bytes Spartan.test_params proof)
    | Error e ->
      Printf.eprintf "batch verification failed: %s\n" (Zk_pcs.Verify_error.to_string e);
      exit 1);
    let single, _ = Spartan.prove Spartan.test_params inst assignments.(0) in
    Printf.printf "k separate proofs would total %d bytes\n"
      (k * Spartan.proof_size_bytes Spartan.test_params single)
  in
  Cmd.v
    (Cmd.info "batch" ~doc:"Prove many statements of one circuit with shared sumchecks.")
    Term.(const run $ size_arg)

(* Both linters share the PR-5-style scriptable contract: structured Diag
   findings, --format json for the stable nocap-diag/v1 envelope, the
   winning rule name on stderr as the final line, and one exit code per
   error rule (Diag.error_rule_codes, starting at 20). *)
let format_arg =
  let doc = "Output format: text, or json (the stable nocap-diag/v1 envelope on stdout)." in
  Arg.(value & opt string "text" & info [ "format" ] ~docv:"FMT" ~doc)

let check_format = function
  | "text" | "json" -> ()
  | f ->
    Printf.eprintf "unknown format %s (expected text or json)\n" f;
    exit 2

(* Shared tail of a lint run: emit the envelope (json mode), then the rule
   name on stderr + its exit code if any error rule fired. *)
let finish_lint ~format diags =
  if format = "json" then print_string (Diag.list_to_json diags);
  match Diag.exit_category diags with
  | None -> ()
  | Some (rule, code) ->
    Printf.eprintf "%s\n" rule;
    exit code

let lint_cmd =
  let vector_len_arg =
    let doc = "Vector length for the kernel programs (power of two >= 8)." in
    Arg.(value & opt int 64 & info [ "vector-len"; "k" ] ~docv:"K" ~doc)
  in
  let run name scale vector_len format =
    check_format format;
    let b =
      try Benchmarks.find name
      with Not_found ->
        Printf.eprintf "unknown benchmark %s\n" name;
        exit 2
    in
    if format = "text" then
      Printf.printf "linting built-in kernels (k = %d) and the %s workload's SpMV programs (scale %d)\n%!"
        vector_len b.Benchmarks.name scale;
    let inst, _ = b.Benchmarks.generate scale in
    let pad m =
      let n = max (R1cs.size inst) vector_len in
      Sparse.pad_to m ~nrows:n ~ncols:n
    in
    let entries =
      Program_corpus.kernels ~vector_len
      @ [
          Program_corpus.of_spmv ~name:(b.Benchmarks.name ^ "-spmv-A")
            ~vector_len (pad inst.R1cs.a);
          Program_corpus.of_spmv ~name:(b.Benchmarks.name ^ "-spmv-B")
            ~vector_len (pad inst.R1cs.b);
          Program_corpus.of_spmv ~name:(b.Benchmarks.name ^ "-spmv-C")
            ~vector_len (pad inst.R1cs.c);
        ]
    in
    let verdicts = Program_corpus.verify_all Hw_config.default entries in
    let diags =
      List.concat_map
        (fun v ->
          v.Program_corpus.lint.Lint.diags
          @ v.Program_corpus.check.Schedule_check.diags)
        verdicts
    in
    if format = "text" then begin
      List.iter (fun v -> Printf.printf "%s\n%!" (Program_corpus.summary v)) verdicts;
      let bad = List.filter (fun v -> not (Program_corpus.clean v)) verdicts in
      if bad = [] then
        Printf.printf "all %d programs lint clean and schedule-check clean\n"
          (List.length verdicts)
      else
        Printf.printf "%d of %d programs FAILED verification: %s\n"
          (List.length bad) (List.length verdicts)
          (String.concat ", "
             (List.map (fun v -> v.Program_corpus.entry.Program_corpus.name) bad))
    end;
    finish_lint ~format diags
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically verify ISA programs and schedules: kernels plus a \
          benchmark workload's compiled SpMV, checked for dataflow, \
          permutation, register-pressure, and schedule-hazard violations. \
          Exit codes: 0 clean, 2 usage, else 20+ — one per error rule \
          (see README), rule name on stderr.")
    Term.(const run $ benchmark_arg $ scale_arg $ vector_len_arg $ format_arg)

(* `circuit-lint` is the R1CS-level counterpart: soundness lints over the
   named workload circuits (under-constrained signals, dead inputs, trivial
   or redundant rows) plus the structure report the performance model
   consumes. *)
let circuit_lint_cmd =
  let circuit_arg =
    let doc =
      "Corpus circuit to lint: " ^ String.concat ", " Circuit_corpus.names ^ "."
    in
    Arg.(value & opt string "synthetic" & info [ "circuit"; "c" ] ~docv:"NAME" ~doc)
  in
  let all_arg =
    let doc = "Lint every corpus circuit." in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  let report_arg =
    let doc = "Also print each circuit's structure report line (text mode)." in
    Arg.(value & flag & info [ "report" ] ~doc)
  in
  let run name all scale show_report format =
    check_format format;
    let entries =
      if all then Circuit_corpus.entries
      else
        match Circuit_corpus.find name with
        | Some e -> [ e ]
        | None ->
          Printf.eprintf "unknown circuit %s (expected one of %s)\n" name
            (String.concat ", " Circuit_corpus.names);
          exit 2
    in
    let diags =
      List.concat_map
        (fun (e : Circuit_corpus.entry) ->
          let inst, asgn = e.Circuit_corpus.generate ~scale in
          let v = Circuit_lint.analyze inst asgn in
          if format = "text" then begin
            Printf.printf "%s: %s\n%!" e.Circuit_corpus.name
              (Circuit_lint.summary v);
            if show_report then
              Printf.printf "  %s\n%!"
                (Circuit_report.summary
                   (Circuit_report.of_instance ~name:e.Circuit_corpus.name inst));
            List.iter
              (fun d -> Printf.printf "  %s\n%!" (Diag.to_string d))
              v.Circuit_lint.diags
          end;
          v.Circuit_lint.diags)
        entries
    in
    if format = "text" && Diag.is_clean diags then
      Printf.printf "all %d circuits lint clean\n" (List.length entries);
    finish_lint ~format diags
  in
  Cmd.v
    (Cmd.info "circuit-lint"
       ~doc:
         "Statically analyze R1CS workload circuits: unconstrained and \
          under-constrained witness signals (unit propagation + Jacobian \
          rank probe), unused public inputs, trivial/duplicate/redundant \
          constraints. Exit codes: 0 clean, 2 usage, else 20+ — one per \
          error rule (see README), rule name on stderr.")
    Term.(const run $ circuit_arg $ all_arg $ scale_arg $ report_arg $ format_arg)

(* `serve` runs the fault-tolerant proving service (DESIGN.md Sec. 15) as a
   self-driving demo: it submits a stream of prove jobs for the requested
   workloads, optionally under the deterministic Runtime_faults plan, and
   reports per-job outcomes plus the final service counters. SIGTERM/SIGINT
   drain in flight jobs and still print the summary. Exit code 0 when every
   admitted job finished with a proof; otherwise the Job_error exit code
   (50-57, table in README) of the first failed job. *)
let serve_cmd =
  let jobs_arg =
    let doc = "Number of jobs to submit." in
    Arg.(value & opt int 16 & info [ "jobs"; "n" ] ~docv:"N" ~doc)
  in
  let runners_arg =
    let doc = "Prover runner domains." in
    Arg.(value & opt int 2 & info [ "runners" ] ~docv:"N" ~doc)
  in
  let capacity_arg =
    let doc = "Queue capacity (admitted-but-unfinished jobs); overflow rejects." in
    Arg.(value & opt int 64 & info [ "capacity" ] ~docv:"N" ~doc)
  in
  let deadline_arg =
    let doc = "Per-job deadline in seconds (default: none)." in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)
  in
  let mem_budget_arg =
    let doc =
      "Memory budget in bytes; jobs whose working set exceeds it are demoted \
       to the streaming prover."
    in
    Arg.(value & opt (some int) None & info [ "mem-budget" ] ~docv:"BYTES" ~doc)
  in
  let faults_arg =
    let doc = "Inject the deterministic fault plan (crashes, spill I/O errors, slow jobs)." in
    Arg.(value & flag & info [ "faults" ] ~doc)
  in
  let workloads_arg =
    let doc = "Workloads to cycle through (default: litmus)." in
    Arg.(value & opt_all string [] & info [ "workload"; "w" ] ~docv:"NAME" ~doc)
  in
  let run jobs runners capacity deadline mem_budget faults workloads scale =
    if jobs < 1 then begin
      Printf.eprintf "serve: --jobs must be >= 1\n";
      exit 2
    end;
    let workloads = if workloads = [] then [ "litmus" ] else workloads in
    let config =
      {
        Serve.default_config with
        Serve.capacity;
        runners;
        default_deadline_s = deadline;
        mem_budget_bytes = mem_budget;
        params = Spartan.test_params;
      }
    in
    let fault_hook = if faults then Some (Runtime_faults.hook Runtime_faults.default) else None in
    let srv = Serve.create ?fault_hook ~config () in
    let restore_signals = Serve.handle_signals srv in
    Printf.printf "serve: %d runner(s), capacity %d, %d job(s) over [%s]%s\n%!" runners capacity
      jobs
      (String.concat "; " workloads)
      (if faults then " with injected faults" else "");
    let wl_arr = Array.of_list workloads in
    let ids = ref [] in
    for i = 0 to jobs - 1 do
      let req =
        {
          Serve.tenant = Printf.sprintf "tenant-%d" (i mod 4);
          workload = wl_arr.(i mod Array.length wl_arr);
          scale;
          kind = Serve.Prove;
          deadline_s = None;
        }
      in
      match Serve.submit srv req with
      | Ok id -> ids := (id, req) :: !ids
      | Error e -> Printf.printf "  job %2d rejected: %s\n%!" i (Job_error.to_string e)
    done;
    let first_failure = ref None in
    List.iter
      (fun (id, req) ->
        match Serve.await srv id with
        | Serve.Proof { bytes; attempts; streamed; elapsed_s } ->
          Printf.printf "  job %2d (%s/%d): proof %d bytes in %.3f s, %d attempt(s)%s\n%!" id
            req.Serve.workload req.Serve.scale (Bytes.length bytes) elapsed_s attempts
            (if streamed then " [streamed]" else "")
        | Serve.Verified { attempts; elapsed_s } ->
          Printf.printf "  job %2d (%s/%d): verified in %.3f s, %d attempt(s)\n%!" id
            req.Serve.workload req.Serve.scale elapsed_s attempts
        | Serve.Failed { error; attempts } ->
          if !first_failure = None then first_failure := Some error;
          Printf.printf "  job %2d (%s/%d): FAILED after %d attempt(s): %s\n%!" id
            req.Serve.workload req.Serve.scale attempts (Job_error.to_string error))
      (List.rev !ids);
    let stats = Serve.shutdown srv in
    restore_signals ();
    if faults then Runtime_faults.disarm_io_faults ();
    Printf.printf
      "serve: done. submitted %d, completed %d, failed %d, rejected %d, invalid %d\n\
      \       retries %d, timeouts %d, cancelled %d, demoted %d, crashes %d, io failures %d\n%!"
      stats.Serve.submitted stats.Serve.completed stats.Serve.failed stats.Serve.rejected
      stats.Serve.invalid stats.Serve.retries stats.Serve.timeouts stats.Serve.cancelled
      stats.Serve.demoted stats.Serve.crashes stats.Serve.io_failures;
    match !first_failure with
    | Some e -> exit (Job_error.exit_code e)
    | None -> ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the fault-tolerant proving service on a stream of jobs: bounded \
          queue, deadlines, retry with backoff, crash isolation, graceful \
          drain on SIGTERM/SIGINT. Exit 0 when every admitted job proved; \
          otherwise the first failure's Job_error exit code (50-57).")
    Term.(
      const run $ jobs_arg $ runners_arg $ capacity_arg $ deadline_arg $ mem_budget_arg
      $ faults_arg $ workloads_arg $ scale_arg)

let () =
  (* Build the default engine up front: this validates NOCAP_DOMAINS /
     NOCAP_GC_MINOR_MB once, loudly, instead of each subsystem quietly
     re-reading the environment. *)
  (try ignore (Nocap_repro.Engine.default ())
   with Invalid_argument msg ->
     Printf.eprintf "nocap-cli: %s\n" msg;
     exit 2);
  let info = Cmd.info "nocap-cli" ~doc:"NoCap reproduction: hash-based ZKP proving and accelerator modeling." in
  exit
    (Cmd.eval
       (Cmd.group info
          [ prove_cmd; verify_cmd; serve_cmd; fuzz_cmd; simulate_cmd; report_cmd; db_cmd; batch_cmd; lint_cmd; circuit_lint_cmd ]))
