(* Quickstart: prove knowledge of a factorization, end to end.

   The prover convinces anyone that it knows x and y with x * y = 35 and
   x + y = 12 without revealing x or y — the smallest possible tour of the
   public API: build a circuit with the gadget DSL, prove it with
   Spartan+Orion, verify against the public inputs only.

   Run with: dune exec examples/quickstart.exe *)

open Nocap_repro

let () =
  (* 1. Build the circuit. Witness wires hold secret values; input wires are
     public. The builder checks every constraint as it is added. *)
  let b = Builder.create () in
  let x = Builder.witness b (Gf.of_int 5) in
  let y = Builder.witness b (Gf.of_int 7) in
  let product = Builder.input b (Gf.of_int 35) in
  let sum = Builder.input b (Gf.of_int 12) in
  Builder.constrain b (Builder.lc_var x) (Builder.lc_var y) (Builder.lc_var product);
  Gadgets.assert_equal b
    (Builder.lc_add (Builder.lc_var x) (Builder.lc_var y))
    (Builder.lc_var sum);
  let instance, assignment = Builder.finalize b in
  Printf.printf "circuit: %d constraints, padded to 2^%d\n" instance.R1cs.num_constraints
    instance.R1cs.log_size;

  (* 2. Prove. The proof commits to the witness with Orion (Reed-Solomon +
     Merkle) and runs Spartan's two sumchecks. *)
  let params = Spartan.test_params in
  let proof, stats = Spartan.prove params instance assignment in
  Printf.printf "proved: %d bytes, %d field mults in sumcheck\n"
    (Spartan.proof_size_bytes params proof)
    stats.Spartan.sumcheck_mults;

  (* 3. Verify, knowing only the instance and the public inputs. *)
  let io = R1cs.public_io instance assignment in
  (match Spartan.verify params instance ~io proof with
  | Ok () -> print_endline "verified: the prover knows factors of 35 summing to 12"
  | Error e -> failwith ("verification failed: " ^ Zk_pcs.Verify_error.to_string e));

  (* A wrong public claim must fail. *)
  io.(1) <- Gf.of_int 36;
  match Spartan.verify params instance ~io proof with
  | Ok () -> failwith "BUG: accepted a false statement"
  | Error _ -> print_endline "and the same proof is rejected for product = 36, as it should be"
