(* Secure photo modification (Sec. I of the paper): a user proves that a
   published crop is a genuine sub-region of a (hidden) original image,
   without revealing the rest of the original or even the crop position.

   The original pixels and the crop offset are witness data; the crop's
   pixels are public. Each crop pixel is tied to the original through a
   one-hot row/column selector — the same multiplexer gadget a real image
   circuit would use, here at 8x8 -> 4x4 scale. The harness then models the
   paper's 256 KB case on NoCap.

   Run with: dune exec examples/photo_crop.exe *)

open Nocap_repro

let image_size = 8
let crop_size = 4

let () =
  let rng = Rng.create 2024L in
  (* The secret original and the secret crop offset. *)
  let original =
    Array.init image_size (fun _ -> Array.init image_size (fun _ -> Rng.int rng 256))
  in
  let dx = Rng.int rng (image_size - crop_size) in
  let dy = Rng.int rng (image_size - crop_size) in
  let crop =
    Array.init crop_size (fun i -> Array.init crop_size (fun j -> original.(i + dy).(j + dx)))
  in
  Printf.printf "original: %dx%d secret image; publishing a %dx%d crop (secret offset)\n"
    image_size image_size crop_size crop_size;

  let b = Builder.create () in
  (* Witness: every original pixel, plus one-hot selectors for the offset. *)
  let pix =
    Array.map (Array.map (fun v -> Builder.witness b (Gf.of_int v))) original
  in
  let one_hot bound hot =
    let sel =
      Array.init bound (fun k ->
          let bit = Builder.witness b (if k = hot then Gf.one else Gf.zero) in
          Gadgets.assert_bool b bit;
          bit)
    in
    Gadgets.assert_equal b
      (Array.to_list sel |> List.map (fun s -> (s, Gf.one)))
      (Builder.lc_const Gf.one);
    sel
  in
  let offsets = image_size - crop_size + 1 in
  let sel_y = one_hot offsets dy and sel_x = one_hot offsets dx in
  (* Each public crop pixel equals sum_{a,b} sel_y(a) sel_x(b) pix(i+a, j+b).
     The product of the two selectors is materialized once per (a, b). *)
  let sel_prod =
    Array.init offsets (fun a -> Array.init offsets (fun bx -> Gadgets.mul b sel_y.(a) sel_x.(bx)))
  in
  for i = 0 to crop_size - 1 do
    for j = 0 to crop_size - 1 do
      let terms = ref [] in
      for a = 0 to offsets - 1 do
        for bx = 0 to offsets - 1 do
          let gated = Gadgets.mul b sel_prod.(a).(bx) pix.(i + a).(j + bx) in
          terms := (gated, Gf.one) :: !terms
        done
      done;
      let public_pixel = Builder.input b (Gf.of_int crop.(i).(j)) in
      Gadgets.assert_equal b !terms (Builder.lc_var public_pixel)
    done
  done;
  let instance, assignment = Builder.finalize b in
  Printf.printf "circuit: %d constraints\n%!" instance.R1cs.num_constraints;

  let t0 = Unix.gettimeofday () in
  let proof, _ = Spartan.prove Spartan.test_params instance assignment in
  Printf.printf "proved in %.2f s (%d byte proof)\n%!"
    (Unix.gettimeofday () -. t0)
    (Spartan.proof_size_bytes Spartan.test_params proof);
  (match Spartan.verify Spartan.test_params instance ~io:(R1cs.public_io instance assignment) proof with
  | Ok () -> print_endline "verified: the crop descends from the committed original"
  | Error e -> failwith (Zk_pcs.Verify_error.to_string e));

  (* The paper's 256 KB case (Sec. I): >12 min on a CPU, ~1 s on NoCap. *)
  let n = 122.0e6 in
  let cpu = Cpu_model.spartan_orion_seconds ~n_constraints:n () in
  let sim =
    Simulator.run Hw_config.default (Workload.spartan_orion ~n_constraints:n ())
  in
  let verify_s = Proofsize.spartan_orion_verifier_seconds ~n_constraints:n in
  Printf.printf
    "\nat the paper's 256 KB-image scale (~122M constraints):\n\
    \  CPU prover:   %s   (paper: over 12 minutes)\n\
    \  NoCap prover: %s   (paper: just over a second)\n\
    \  verification: %s   (paper: 0.2 seconds)\n"
    (Zk_report.Render.seconds cpu)
    (Zk_report.Render.seconds sim.Simulator.total_seconds)
    (Zk_report.Render.seconds verify_s)
