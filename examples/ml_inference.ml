(* Verifiable machine learning (Sec. I: "a server can use ZKPs to prove to
   clients that a (secret) machine-learning model achieves a certain
   accuracy" / zkCNN-style inference): the server proves that its hidden
   model classifies a public input the way it claims, without revealing the
   weights.

   The model is a small fixed-point two-layer perceptron; the circuit
   computes both layers (matrix-vector products over the field, ReLU via the
   comparison gadget) and exposes only the predicted class index.

   Run with: dune exec examples/ml_inference.exe *)

open Nocap_repro

let input_dim = 8
let hidden_dim = 6
let classes = 3
let fixed_bits = 8 (* inputs and weights are 8-bit fixed-point magnitudes *)

let () =
  let rng = Rng.create 424242L in
  (* Secret model. *)
  let w1 = Array.init hidden_dim (fun _ -> Array.init input_dim (fun _ -> Rng.int rng 16)) in
  let w2 = Array.init classes (fun _ -> Array.init hidden_dim (fun _ -> Rng.int rng 16)) in
  (* Public input vector. *)
  let x = Array.init input_dim (fun _ -> Rng.int rng (1 lsl fixed_bits)) in

  (* Reference inference (everything is non-negative here, so ReLU only
     matters after centring; we centre by subtracting a per-neuron bias). *)
  let bias = 8 * 128 * 4 in
  let layer weights v =
    Array.map
      (fun row ->
        let acc = ref 0 in
        Array.iteri (fun i wi -> acc := !acc + (wi * v.(i))) row;
        max 0 (!acc - bias))
      weights
  in
  let hidden = layer w1 x in
  let logits = layer w2 hidden in
  let predicted = ref 0 in
  Array.iteri (fun i l -> if l > logits.(!predicted) then predicted := i) logits;
  Printf.printf "hidden model, public input: predicted class %d (logits %s)\n"
    !predicted
    (String.concat " " (Array.to_list (Array.map string_of_int logits)));

  (* Circuit. *)
  let b = Builder.create () in
  let xs = Array.map (fun v -> Builder.input b (Gf.of_int v)) x in
  let wire_layer weights inputs width =
    Array.map
      (fun row ->
        let row_w = Array.map (fun v -> Builder.witness b (Gf.of_int v)) row in
        (* Dot product: materialize each product, sum as a linear combination,
           subtract the bias. *)
        let terms =
          Array.to_list (Array.map2 (fun w v -> (Gadgets.mul b w v, Gf.one)) row_w inputs)
        in
        let pre =
          Gadgets.add_lc b
            (Builder.lc_add terms (Builder.lc_const (Gf.of_int (-bias))))
        in
        (* ReLU(pre) via sign test: pre is in (-bias, 2^width); shift into
           non-negative range, take the "is negative" bit, select. *)
        let shifted =
          Gadgets.add_lc b
            (Builder.lc_add (Builder.lc_var pre) (Builder.lc_const (Gf.of_int bias)))
        in
        let bits = Gadgets.bits_of b ~width shifted in
        ignore bits;
        let zero = Gadgets.add_lc b (Builder.lc_const Gf.zero) in
        let bias_wire = Gadgets.add_lc b (Builder.lc_const (Gf.of_int bias)) in
        let is_neg = Gadgets.less_than b ~width shifted bias_wire in
        Gadgets.select b ~cond:is_neg zero pre)
      weights
  in
  let hidden_w = wire_layer w1 xs 22 in
  let logits_w = wire_layer w2 hidden_w 30 in
  (* Prove the claimed class has the maximum logit. *)
  let claimed = logits_w.(!predicted) in
  Array.iteri
    (fun i l ->
      if i <> !predicted then begin
        let lt = Gadgets.less_than b ~width:30 l claimed in
        ignore (Gadgets.bor b lt (Gadgets.equal b l claimed) |> fun ge ->
                Gadgets.assert_equal b (Builder.lc_var ge) (Builder.lc_const Gf.one))
      end)
    logits_w;
  let class_out = Builder.input b (Gf.of_int !predicted) in
  ignore class_out;
  let instance, assignment = Builder.finalize b in
  Printf.printf "circuit: %d constraints\n%!" instance.R1cs.num_constraints;

  let t0 = Unix.gettimeofday () in
  let proof, _ = Spartan.prove Spartan.test_params instance assignment in
  Printf.printf "proved in %.2f s\n%!" (Unix.gettimeofday () -. t0);
  (match Spartan.verify Spartan.test_params instance
           ~io:(R1cs.public_io instance assignment) proof with
  | Ok () -> print_endline "verified: the hidden model really outputs that class"
  | Error e -> failwith (Zk_pcs.Verify_error.to_string e));

  (* Sec. I's confidential-DP-training claim, from the models. *)
  let dp_n = 100.0 *. 3600.0 /. (94.2 /. 16.0e6) in
  let sim = Simulator.run Hw_config.default (Workload.spartan_orion ~n_constraints:dp_n ()) in
  Printf.printf
    "\nscaling up: proving a DP training run the paper sizes at 100 CPU-hours\n\
     would take NoCap %s (paper: under 30 minutes)\n"
    (Zk_report.Render.seconds sim.Simulator.total_seconds)
