(* Trustless sealed-bid auction (Sec. VII-B): the auctioneer proves the
   announced winning price really is the maximum of the sealed bids, without
   revealing any losing bid.

   Run with: dune exec examples/auction_demo.exe *)

open Nocap_repro

let () =
  let bids = 32 in
  Printf.printf "sealed-bid auction with %d hidden bids\n" bids;
  let instance, assignment = Auction_circuit.circuit ~bids ~seed:77L () in
  Printf.printf "circuit: %d constraints (comparator chain + range checks)\n%!"
    instance.R1cs.num_constraints;
  let t0 = Unix.gettimeofday () in
  let proof, _ = Spartan.prove Spartan.test_params instance assignment in
  Printf.printf "proved in %.2f s\n%!" (Unix.gettimeofday () -. t0);
  let io = R1cs.public_io instance assignment in
  (* The winning price is the public output the auctioneer announces. *)
  Printf.printf "announced winning price: %s\n" (Gf.to_string io.(1));
  (match Spartan.verify Spartan.test_params instance ~io proof with
  | Ok () -> print_endline "all participants can verify: no higher bid was hidden"
  | Error e -> failwith (Zk_pcs.Verify_error.to_string e));

  (* A lying auctioneer announcing a lower price cannot produce an accepted
     proof: the same proof fails against altered public output. *)
  let forged = Array.copy io in
  forged.(1) <- Gf.sub forged.(1) Gf.one;
  (match Spartan.verify Spartan.test_params instance ~io:forged proof with
  | Ok () -> failwith "BUG: accepted a forged price"
  | Error _ -> print_endline "a forged price is rejected");

  (* Paper scale: 550M constraints (100x the bids of prior work). *)
  let b = Benchmarks.find "auction" in
  let sim =
    Simulator.run Hw_config.default
      (Workload.spartan_orion ~density:b.Benchmarks.density
         ~n_constraints:b.Benchmarks.r1cs_size ())
  in
  Printf.printf
    "\nat paper scale (550M constraints): NoCap proves in %s (paper: 10.8 s), CPU in %s (paper: 1.7 h)\n"
    (Zk_report.Render.seconds sim.Simulator.total_seconds)
    (Zk_report.Render.seconds
       (Cpu_model.spartan_orion_seconds ~density:b.Benchmarks.density
          ~n_constraints:b.Benchmarks.r1cs_size ()))
