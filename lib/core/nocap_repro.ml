(** Top-level public API for the NoCap reproduction.

    One alias per subsystem, grouped the way DESIGN.md inventories them. A
    typical proving session:

    {[
      let b = Nocap_repro.Builder.create () in
      (* ... build a circuit with Nocap_repro.Gadgets ... *)
      let instance, assignment = Nocap_repro.Builder.finalize b in
      let proof, _ = Nocap_repro.Spartan.prove params instance assignment in
      Nocap_repro.Spartan.verify params instance ~io proof
    ]}

    and a typical accelerator study:

    {[
      let wl = Nocap_repro.Workload.spartan_orion ~n_constraints:16e6 () in
      Nocap_repro.Simulator.run Nocap_repro.Hw_config.default wl
    ]} *)

(* Substrates *)
module Pool = Nocap_parallel.Pool
module Native = Nocap_native.Native
module Fv = Nocap_vec.Fv
module Spill = Nocap_vec.Spill
module Arena = Nocap_vec.Arena
module Rng = Zk_util.Rng
module Stats = Zk_util.Stats
module Json_min = Zk_util.Json_min
module Gf = Zk_field.Gf
module Gf2 = Zk_field.Gf2
module Limbs = Zk_field.Limbs
module Fr_bls = Zk_field.Fr_bls
module Fq_bls = Zk_field.Fq_bls
module Keccak = Zk_hash.Keccak
module Transcript = Zk_hash.Transcript
module Multiset_hash = Zk_hash.Multiset_hash
module Ntt = Zk_ntt.Ntt
module Dense_poly = Zk_poly.Dense
module Mle = Zk_poly.Mle
module Reed_solomon = Zk_ecc.Reed_solomon
module Expander_code = Zk_ecc.Expander
module Merkle = Zk_merkle.Merkle

(* Arithmetization and protocol *)
module Sparse = Zk_r1cs.Sparse
module R1cs = Zk_r1cs.R1cs
module Builder = Zk_r1cs.Builder
module Gadgets = Zk_r1cs.Gadgets
module Lang = Zk_r1cs.Lang
module Memory_check = Zk_r1cs.Memory_check
module Bignum = Zk_r1cs.Bignum
module Sumcheck = Zk_sumcheck.Sumcheck
module Sumcheck_ext = Zk_sumcheck.Sumcheck_ext
module Grand_product = Zk_sumcheck.Grand_product
module Orion = Zk_orion.Orion
module Fri = Zk_orion.Fri
module Stark = Zk_orion.Stark

(* Proving engine: PCS interface, engine context, and the pluggable backends *)
module Pcs = Zk_pcs.Pcs
module Engine = Zk_pcs.Engine
module Orion_pcs = Zk_orion.Orion_pcs
module Fri_pcs = Zk_orion.Fri_pcs
module Spartan = Zk_spartan.Spartan

(** Spartan over the FRI backend — same SNARK, NTT-heavy PCS. *)
module Spartan_fri = Zk_spartan.Spartan.Make (Zk_orion.Fri_pcs)

module Proof_serialize = Zk_spartan.Serialize
module Aggregate = Zk_spartan.Aggregate

(* Proving service runtime: job queue, deadlines, retry, degradation *)
module Serve = Nocap_serve.Serve
module Job_error = Nocap_serve.Job_error

(* Verification boundary: error taxonomy and the fault-injection harness *)
module Verify_error = Zk_pcs.Verify_error
module Mutate = Nocap_faults.Mutate
module Fuzz = Nocap_faults.Fuzz
module Fault_targets = Nocap_faults.Targets
module Runtime_faults = Nocap_faults.Runtime_faults

(* Groth16 baseline substrate *)
module G1 = Zk_curve.G1
module Msm = Zk_curve.Msm
module Groth16 = Zk_curve.Groth16

(* Accelerator model *)
module Hw_config = Nocap_model.Config
module Workload = Nocap_model.Workload
module Simulator = Nocap_model.Simulator
module Area = Nocap_model.Area
module Power = Nocap_model.Power
module Isa = Nocap_model.Isa
module Vm = Nocap_model.Vm
module Schedule = Nocap_model.Schedule
module Streams = Nocap_model.Streams
module Multichip = Nocap_model.Multichip
module Kernels = Nocap_model.Kernels
module Spmv_compile = Nocap_model.Spmv_compile

(* Static analysis & verification *)
module Diag = Nocap_analysis.Diag
module Lint = Nocap_analysis.Lint
module Schedule_check = Nocap_analysis.Check
module Program_corpus = Nocap_analysis.Corpus
module Circuit_lint = Nocap_analysis.Circuit_lint
module Circuit_report = Nocap_analysis.Circuit_report
module Circuit_mutate = Nocap_analysis.Circuit_mutate
module Circuit_corpus = Nocap_analysis.Circuit_corpus

(* Baselines and evaluation *)
module Cpu_model = Zk_baseline.Cpu_model
module Pipezk = Zk_baseline.Pipezk
module Gzkp = Zk_baseline.Gzkp
module Proofsize = Zk_baseline.Proofsize
module Endtoend = Zk_perf.Endtoend
module Opcounts = Zk_perf.Opcounts
module Structure = Zk_perf.Structure

(* Workloads and applications *)
module Benchmarks = Zk_workloads.Benchmarks
module Cipher = Zk_workloads.Cipher
module Aes128 = Zk_workloads.Aes128
module Keccak_circuit = Zk_workloads.Keccak_circuit
module Sha256_circuit = Zk_workloads.Sha256_circuit
module Modexp = Zk_workloads.Modexp
module Auction_circuit = Zk_workloads.Auction_circuit
module Litmus_circuit = Zk_workloads.Litmus_circuit
module Synthetic = Zk_workloads.Synthetic
module Mlp_circuit = Zk_workloads.Mlp_circuit
module Zkdb = Zk_zkdb.Zkdb
