(** The polynomial-commitment-scheme interface the Spartan prover is
    functorized over.

    A backend packages a multilinear PCS over Goldilocks-64: commit to an
    evaluation table of size [2^L], later open it at a point in [Gf^L]
    against a Fiat-Shamir transcript, and let a verifier check the claimed
    value from the commitment alone. Orion (Reed-Solomon + Merkle,
    sumcheck-friendly) and FRI (NTT-heavy, basefold-style) implement it —
    the two ends of the hardware design space the paper's related work
    contrasts.

    Contract highlights, beyond the types:
    - [commit]/[open_at]/[verify] take an optional {!Engine.t}; a backend
      must produce identical bytes for every engine (pools only schedule,
      the RNG only feeds hiding masks drawn in a fixed order).
    - The transcript discipline is caller-driven: the caller absorbs the
      commitment ({!S.absorb_commitment}); [open_at] and [verify] then
      absorb/draw in mirrored order, so one transcript can interleave
      several protocol phases.
    - [write_*]/[read_*] are total byte forms built on {!Codec}; [read_*]
      must never raise on untrusted input.
    - [tag] is the backend's wire identity, embedded in serialized proof
      headers; it must be unique across backends and never reused. *)

module Gf = Zk_field.Gf

(** Uniform per-proof accounting, comparable across backends (feeds the
    backend bench and the paper's proof-size tables). *)
type stats = {
  backend : string;
  num_vars : int;
  commitment_bytes : int;
  proof_bytes : int;
  queries : int;  (** opened positions (columns for Orion, FRI queries) *)
}

module type S = sig
  val name : string
  (** Short lowercase identifier ("orion", "fri"); also the CLI/bench
      selector and the transcript domain-separation suffix. *)

  val tag : char
  (** Wire tag for serialized proof headers. Unique per backend. *)

  type params

  val default_params : params
  (** Paper-scale configuration. *)

  val test_params : params
  (** Small, fast configuration for unit tests. *)

  type param_error

  val validate_params : params -> (unit, param_error) result
  val param_error_to_string : param_error -> string

  type committed
  (** Prover-side opening state; never serialized. *)

  type commitment

  type eval_proof

  val commit :
    ?engine:Engine.t -> params -> Zk_util.Rng.t -> Gf.t array -> committed * commitment
  (** Commit to the multilinear polynomial whose evaluation table is the
      array (power-of-two length). [rng] draws hiding masks, if the backend
      has any; it must be consumed in a deterministic order.
      @raise Invalid_argument on invalid [params] (see {!validate_params})
      or a non-power-of-two table. *)

  val absorb_commitment : Zk_hash.Transcript.t -> commitment -> unit

  val commitment_num_vars : commitment -> int

  val open_at :
    ?engine:Engine.t ->
    params ->
    committed ->
    Zk_hash.Transcript.t ->
    Gf.t array ->
    Gf.t * eval_proof
  (** Open at a point of length [num_vars], returning the evaluation and
      its proof. The commitment must already have been absorbed. *)

  val free_committed : committed -> unit
  (** Release out-of-core resources (spill files) held by the prover
      state; a no-op for in-RAM state.

      {b Lifecycle contract.} A [committed] moves through
      [commit] → zero or more [open_at] → [free_committed]; after the
      free, any further [open_at] on it raises. [free_committed] is
      {e idempotent} — double frees (and frees racing a GC finalizer) are
      safe no-ops, which is what lets a retrying caller unconditionally
      free a failed attempt's state in its cleanup path and then
      re-[commit] from scratch: retry never reuses a [committed] across
      attempts. Callers that stop early (cancellation, a worker crash, an
      I/O fault mid-opening) must still run [free_committed] on the way
      out — provers wrap the commit→open span in [Fun.protect] — and
      backends must also attach a GC-finalizer backstop so state leaked
      past all of that cannot exhaust file descriptors. *)

  val verify :
    ?engine:Engine.t ->
    params ->
    commitment ->
    Zk_hash.Transcript.t ->
    Gf.t array ->
    Gf.t ->
    eval_proof ->
    (unit, Verify_error.t) result
  (** Check a claimed evaluation. Must mirror [open_at]'s transcript
      traffic exactly, including on the error paths it can reach. The
      commitment and proof must be treated as attacker-controlled: any
      shape, including one produced by [read_*] on hostile bytes, yields a
      categorized [Error] — never an exception. *)

  val proof_size_bytes : params -> commitment -> eval_proof -> int

  val stats : params -> commitment -> eval_proof -> stats

  val write_commitment : Buffer.t -> commitment -> unit
  val read_commitment : Codec.reader -> (commitment, Verify_error.t) result
  val write_eval_proof : Buffer.t -> eval_proof -> unit
  val read_eval_proof : Codec.reader -> (eval_proof, Verify_error.t) result
end
