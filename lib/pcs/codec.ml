module Gf = Zk_field.Gf

(* --- writer --- *)

let put_u64 buf (x : int64) =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 x;
  Buffer.add_bytes buf b

let put_int buf n = put_u64 buf (Int64.of_int n)

let put_byte buf (c : char) = Buffer.add_char buf c

let put_gf buf x = put_u64 buf (Gf.to_int64 x)

let put_gf_array buf a =
  put_int buf (Array.length a);
  Array.iter (put_gf buf) a

let put_digest buf d =
  assert (String.length d = 32);
  Buffer.add_string buf d

(* --- reader: total, bounds-checked --- *)

type reader = { data : bytes; mutable pos : int }

let reader data = { data; pos = 0 }

let pos r = r.pos

let remaining r = Bytes.length r.data - r.pos

let at_end r = r.pos = Bytes.length r.data

let ( let* ) = Result.bind

(* Any single length field beyond this is rejected outright: it cannot be a
   legitimate proof component and would otherwise let a malicious length
   pre-allocate unbounded memory. *)
let max_len = 1 lsl 28

let need r n =
  if n >= 0 && r.pos + n <= Bytes.length r.data then Ok ()
  else
    Verify_error.errorf Verify_error.Truncated
      "input ends at byte %d, needed %d more" (Bytes.length r.data) n

let get_u64 r =
  let* () = need r 8 in
  let x = Bytes.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  Ok x

let get_byte r =
  let* () = need r 1 in
  let c = Bytes.get r.data r.pos in
  r.pos <- r.pos + 1;
  Ok c

let get_len r =
  let* x = get_u64 r in
  if Int64.compare x 0L < 0 || Int64.compare x (Int64.of_int max_len) > 0 then
    Verify_error.errorf Verify_error.Malformed_field "implausible length field %Ld" x
  else Ok (Int64.to_int x)

let get_gf r =
  let* x = get_u64 r in
  if Gf.is_canonical x then Ok (Gf.of_int64 x)
  else
    Verify_error.errorf Verify_error.Malformed_field
      "non-canonical field element 0x%Lx" x

let get_gf_array r =
  let* n = get_len r in
  let* () = need r (8 * n) in
  let out = Array.make (max n 1) Gf.zero in
  let rec go i =
    if i = n then Ok (if n = 0 then [||] else out)
    else
      let* x = get_gf r in
      out.(i) <- x;
      go (i + 1)
  in
  go 0

let get_digest r =
  let* () = need r 32 in
  let d = Bytes.sub_string r.data r.pos 32 in
  r.pos <- r.pos + 32;
  Ok d

let get_list r get =
  let* n = get_len r in
  let rec go i acc =
    if i = n then Ok (List.rev acc)
    else
      let* x = get r in
      go (i + 1) (x :: acc)
  in
  go 0 []

let get_array r get =
  let* l = get_list r get in
  Ok (Array.of_list l)

let expect_string r s =
  let n = String.length s in
  let* () =
    if r.pos + n <= Bytes.length r.data then Ok ()
    else Verify_error.error Verify_error.Bad_header "input shorter than the header"
  in
  let got = Bytes.sub_string r.data r.pos n in
  if String.equal got s then begin
    r.pos <- r.pos + n;
    Ok ()
  end
  else Verify_error.error Verify_error.Bad_header "bad magic"

let expect_end r =
  if at_end r then Ok ()
  else
    Verify_error.errorf Verify_error.Malformed_field
      "%d trailing bytes after a complete value" (remaining r)
