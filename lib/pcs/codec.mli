(** Shared binary codec for proof blobs.

    Writers append little-endian fixed-width fields to a [Buffer.t]; the
    reader is total (bounds-checked, no exceptions) and rejects implausible
    length fields before allocating, so [proof_of_bytes]-style decoders can
    be fed untrusted data. Every backend's commitment/eval-proof byte form
    ({!Pcs.S.write_commitment} and friends) is built from these helpers, so
    the framing conventions (8-byte lengths, 32-byte digests, canonical
    field elements) are uniform across backends. *)

module Gf = Zk_field.Gf

(** {2 Writer} *)

val put_u64 : Buffer.t -> int64 -> unit
val put_int : Buffer.t -> int -> unit
val put_byte : Buffer.t -> char -> unit
val put_gf : Buffer.t -> Gf.t -> unit

val put_gf_array : Buffer.t -> Gf.t array -> unit
(** Length-prefixed. *)

val put_digest : Buffer.t -> string -> unit
(** Raw 32 bytes, no length prefix. *)

(** {2 Reader} *)

type reader
(** A cursor over immutable bytes. All getters return [Error] (never raise)
    on truncation or malformed content; errors carry a {!Verify_error}
    category ([Truncated], [Malformed_field], [Bad_header]). *)

val reader : bytes -> reader
val pos : reader -> int
val remaining : reader -> int
val at_end : reader -> bool

val max_len : int
(** Upper bound accepted for any single length field (2^28): a decoded
    length beyond this is rejected before any allocation happens. *)

val need : reader -> int -> (unit, Verify_error.t) result
val get_u64 : reader -> (int64, Verify_error.t) result
val get_byte : reader -> (char, Verify_error.t) result

val get_len : reader -> (int, Verify_error.t) result
(** A u64 validated against [0, max_len]. *)

val get_gf : reader -> (Gf.t, Verify_error.t) result
(** Rejects non-canonical encodings (>= the field modulus). *)

val get_gf_array : reader -> (Gf.t array, Verify_error.t) result
val get_digest : reader -> (string, Verify_error.t) result

val get_list :
  reader -> (reader -> ('a, Verify_error.t) result) -> ('a list, Verify_error.t) result

val get_array :
  reader -> (reader -> ('a, Verify_error.t) result) -> ('a array, Verify_error.t) result

val expect_string : reader -> string -> (unit, Verify_error.t) result
(** Consume and compare a fixed literal (e.g. a magic prefix); mismatch and
    short input are both [Bad_header]. *)

val expect_end : reader -> (unit, Verify_error.t) result
(** [Malformed_field] unless the cursor consumed every byte. *)
