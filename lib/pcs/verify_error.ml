type category =
  | Bad_header
  | Truncated
  | Malformed_field
  | Shape
  | Params
  | Merkle_mismatch
  | Sumcheck_mismatch
  | Consistency

type t = { category : category; detail : string }

let make category detail = { category; detail }

let error category detail = Error (make category detail)

let errorf category fmt = Printf.ksprintf (fun s -> Error (make category s)) fmt

let all_categories =
  [
    Bad_header;
    Truncated;
    Malformed_field;
    Shape;
    Params;
    Merkle_mismatch;
    Sumcheck_mismatch;
    Consistency;
  ]

let category_name = function
  | Bad_header -> "bad_header"
  | Truncated -> "truncated"
  | Malformed_field -> "malformed_field"
  | Shape -> "shape"
  | Params -> "params"
  | Merkle_mismatch -> "merkle_mismatch"
  | Sumcheck_mismatch -> "sumcheck_mismatch"
  | Consistency -> "consistency"

let category_of_name name =
  List.find_opt (fun c -> String.equal (category_name c) name) all_categories

let exit_code category =
  let rec index i = function
    | [] -> assert false
    | c :: rest -> if c = category then i else index (i + 1) rest
  in
  10 + index 0 all_categories

let to_string { category; detail } = category_name category ^ ": " ^ detail

let pp fmt e = Format.pp_print_string fmt (to_string e)
