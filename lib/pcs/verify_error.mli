(** Structured error taxonomy for the verification boundary.

    Every decoder and verifier that can be fed attacker-controlled bytes —
    {!Codec} readers, [proof_of_bytes], PCS [verify], Spartan/Aggregate
    verification, sumcheck replay — reports failure as a [t]: a coarse
    {!category} (stable, machine-checkable, the unit the fault-injection
    harness buckets by and the CLI maps to exit codes) plus a free-form
    human [detail]. The contract of the whole boundary is: arbitrary input
    yields [Error] of one of these categories, never an exception.

    Categories are ordered roughly by how far into verification the input
    got: framing ([Bad_header]), byte-level decode ([Truncated],
    [Malformed_field]), structural shape ([Shape]), parameter/statement
    mismatch ([Params]), then the cryptographic checks ([Merkle_mismatch],
    [Sumcheck_mismatch], [Consistency]). *)

type category =
  | Bad_header
      (** wrong magic, legacy [NCAP1] framing, unknown or mismatched
          backend tag *)
  | Truncated  (** input ends before a field it promised *)
  | Malformed_field
      (** non-canonical field element, implausible length field, trailing
          bytes after a complete proof *)
  | Shape
      (** decoded structure has wrong counts or dimensions (rounds,
          repetitions, query/column/layer counts, vector lengths) *)
  | Params
      (** invalid parameters, or a commitment/statement inconsistent with
          the verifier's parameters (matrix layout, io prefix, point
          dimension) *)
  | Merkle_mismatch  (** an authentication path fails to reach the root *)
  | Sumcheck_mismatch
      (** a sumcheck invariant fails: [g(0) + g(1)] vs the running claim,
          or a final reduced claim *)
  | Consistency
      (** any other cryptographic cross-check fails: claimed evaluation,
          encoded-row consistency, fold chain, proximity test *)

type t = { category : category; detail : string }

val make : category -> string -> t
val error : category -> string -> ('a, t) result
(** [error c msg] is [Error (make c msg)]. *)

val errorf : category -> ('a, unit, string, ('b, t) result) format4 -> 'a
(** Printf-style {!error}. *)

val all_categories : category list
(** In taxonomy order; drives exhaustive bucketing in the fault harness. *)

val category_name : category -> string
(** Stable lowercase snake-case identifier ("bad_header", "truncated", ...):
    the bucket key in BENCH_faults.json and the token [nocap-cli verify]
    prints on stderr. *)

val category_of_name : string -> category option

val exit_code : category -> int
(** Distinct per-category process exit code for [nocap-cli verify]
    (documented in the README): 10 + the category's position in
    {!all_categories}, so [bad_header] = 10 ... [consistency] = 17. *)

val to_string : t -> string
(** ["<category_name>: <detail>"]. *)

val pp : Format.formatter -> t -> unit
