module Pool = Nocap_parallel.Pool
module Rng = Zk_util.Rng

module Native = Nocap_native.Native

module Config = struct
  type t = {
    domains : int option;
    gc_minor_mb : int option;
    spin_us : int option;
    native : Native.mode option;
    stream_budget_mb : int option;
  }

  let default =
    {
      domains = None;
      gc_minor_mb = None;
      spin_us = None;
      native = None;
      stream_budget_mb = None;
    }

  let parse_positive ~name raw =
    match int_of_string_opt (String.trim raw) with
    | Some v when v > 0 -> Ok v
    | Some v -> Error (Printf.sprintf "%s must be a positive integer, got %d" name v)
    | None -> Error (Printf.sprintf "%s must be a positive integer, got %S" name raw)

  (* Spin budgets may legitimately be 0 ("park immediately"), so the spin
     knob gets its own non-negative parser. *)
  let parse_non_negative ~name raw =
    match int_of_string_opt (String.trim raw) with
    | Some v when v >= 0 -> Ok v
    | Some v -> Error (Printf.sprintf "%s must be a non-negative integer, got %d" name v)
    | None -> Error (Printf.sprintf "%s must be a non-negative integer, got %S" name raw)

  (* Every knob is parsed even after one fails: a service operator who
     fat-fingered three variables gets all three diagnostics in one startup
     failure instead of a fix-rerun loop per knob. *)
  let parse ~lookup =
    let errors = ref [] in
    let keep = function
      | Ok v -> Some v
      | Error msg ->
        errors := msg :: !errors;
        None
    in
    let knob name =
      match lookup name with
      | None -> None
      | Some raw -> keep (parse_positive ~name raw)
    in
    let knob_nn name =
      match lookup name with
      | None -> None
      | Some raw -> keep (parse_non_negative ~name raw)
    in
    let domains = knob "NOCAP_DOMAINS" in
    let gc_minor_mb = knob "NOCAP_GC_MINOR_MB" in
    let spin_us = knob_nn "NOCAP_SPIN_US" in
    let native =
      match lookup "NOCAP_NATIVE" with
      | None -> None
      | Some raw -> keep (Native.parse_mode raw)
    in
    let stream_budget_mb = knob "NOCAP_STREAM_BUDGET_MB" in
    match List.rev !errors with
    | [] -> Ok { domains; gc_minor_mb; spin_us; native; stream_budget_mb }
    | errs -> Error (String.concat "; " errs)

  (* The single *validating* environment-read site in the tree. Malformed
     values fail loudly here instead of silently falling back: an operator
     who set NOCAP_DOMAINS=four wants to hear about it, not run
     single-domain. (NOCAP_NATIVE is also read leniently by [Native.mode]
     itself as a layering exception — the kernel libraries sit below this
     module and must work in processes that never resolve an engine; both
     parsers accept exactly the same grammar.) *)
  let of_env () =
    match parse ~lookup:Sys.getenv_opt with
    | Ok c -> c
    | Error msg -> invalid_arg ("Engine.Config.of_env: " ^ msg)
end

type arena_policy = Grow_only | Reset_after_entry

type t = {
  pool : Pool.t option;
  rng : Rng.t option;
  trace : (string -> float -> unit) option;
  arena : arena_policy;
  config : Config.t;
  stream_budget_bytes : int option;
}

let create ?pool ?rng ?trace ?(arena = Grow_only) ?(config = Config.default)
    ?stream_budget_bytes () =
  (match stream_budget_bytes with
  | Some b when b <= 0 ->
    invalid_arg "Engine.create: stream_budget_bytes must be positive"
  | _ -> ());
  { pool; rng; trace; arena; config; stream_budget_bytes }

let default_engine : t option ref = ref None

let default () =
  match !default_engine with
  | Some e -> e
  | None ->
    let config = Config.of_env () in
    (* The pool itself stays lazy: recording a baseline (instead of building
       a pool eagerly) keeps Pool.with_domains and explicit pools able to
       override, and avoids spawning domains in processes that never prove. *)
    Option.iter Pool.set_baseline_domains config.Config.domains;
    Option.iter Pool.set_spin_us config.Config.spin_us;
    Option.iter Native.set_mode config.Config.native;
    let e = create ~config () in
    default_engine := Some e;
    e

let reset_default () = default_engine := None

let resolve = function Some e -> e | None -> default ()

let pool e = e.pool

let config e = e.config

(* Byte granularity so tests can force spills on tiny circuits; the env
   knob is MB granularity for operators. Explicit argument wins. *)
let stream_budget_bytes e =
  match e.stream_budget_bytes with
  | Some b -> Some b
  | None ->
    Option.map (fun mb -> mb * 1024 * 1024) e.config.Config.stream_budget_mb

let rng ~seed ?rng e =
  match rng with
  | Some r -> r
  | None -> ( match e.rng with Some r -> r | None -> Rng.create seed)

let emit e key value = match e.trace with Some f -> f key value | None -> ()

let tune_gc e =
  let mb = Option.value e.config.Config.gc_minor_mb ~default:16 in
  Gc.set
    {
      (Gc.get ()) with
      Gc.minor_heap_size = mb * 1024 * 1024 / 8;
      space_overhead = 200;
    }

let finish_entry e =
  match e.arena with
  | Grow_only -> ()
  | Reset_after_entry -> Nocap_vec.Arena.reset ()
