(** Explicit engine context for the prover stack.

    An [Engine.t] bundles every runtime policy a prove/verify entry point
    used to pick up ambiently — domain pool, RNG, stat/trace sink, arena
    policy, GC tuning — into one value that is created once (usually by the
    driver) and threaded down through Spartan, the PCS backends, sumcheck,
    and zkdb. Call sites that pass nothing get {!default}, which behaves
    exactly like the pre-engine code, so the context is opt-in.

    {b Ownership rules.} The engine does not own its pool: [pool = None]
    means "use {!Nocap_parallel.Pool.default} at the moment of use", which
    keeps engines valid across [Pool.with_domains] sweeps. An explicit pool
    is owned by whoever created it and must outlive the engine's use. The
    pool choice never affects proof bytes (the parallel layer's determinism
    contract), and the RNG only feeds zk masking, so two engines differing
    only in [pool]/[trace] produce identical proofs. *)

module Config : sig
  type t = {
    domains : int option;
    gc_minor_mb : int option;
    spin_us : int option;
    native : Nocap_native.Native.mode option;
    stream_budget_mb : int option;
  }

  val default : t
  (** All knobs unset. *)

  val parse : lookup:(string -> string option) -> (t, string) result
  (** Parse the configuration from a key-value source ([lookup] is
      [Sys.getenv_opt] in production, an assoc list in tests). Recognized
      keys: [NOCAP_DOMAINS] (default-pool size), [NOCAP_GC_MINOR_MB]
      (minor heap size for {!tune_gc}), [NOCAP_SPIN_US] (idle-worker
      spin budget before parking, see
      {!Nocap_parallel.Pool.set_spin_us}; 0 is legal and means park
      immediately), [NOCAP_NATIVE] (kernel layer mode, see
      {!Nocap_native.Native.parse_mode}: [0|off], [scalar],
      [1|on|auto|simd]) and [NOCAP_STREAM_BUDGET_MB] (prover memory
      budget in MiB; setting it switches provers to the streaming
      out-of-core path). A key that is set but malformed is an [Error] —
      rejected loudly, never silently defaulted. All knobs are validated
      even after one fails: the [Error] aggregates every malformed
      variable (["; "]-separated, in knob order), so a service operator
      sees the complete misconfiguration in a single startup report. *)

  val of_env : unit -> t
  (** [parse] over the process environment; the only *validating*
      [Sys.getenv] site in the library tree ([Nocap_native.Native.mode]
      also reads NOCAP_NATIVE leniently, because the kernel libraries sit
      below this module — same grammar, malformed falls back to default
      there and errors here).
      @raise Invalid_argument on a malformed value. *)
end

type arena_policy =
  | Grow_only  (** per-domain arenas keep their high-water mark (default) *)
  | Reset_after_entry
      (** release arena memory after each prove/verify entry point; only
          safe when no [Fv] views escape the entry point *)

type t

val create :
  ?pool:Nocap_parallel.Pool.t ->
  ?rng:Zk_util.Rng.t ->
  ?trace:(string -> float -> unit) ->
  ?arena:arena_policy ->
  ?config:Config.t ->
  ?stream_budget_bytes:int ->
  unit ->
  t
(** All fields optional: [create ()] is a fully default engine (lazy
    default pool, per-call RNG seeds, no trace sink).
    [stream_budget_bytes] is the byte-granular form of the
    [NOCAP_STREAM_BUDGET_MB] knob (it wins over the config when both are
    set) so tests can force spills on tiny circuits.
    @raise Invalid_argument if [stream_budget_bytes <= 0]. *)

val default : unit -> t
(** The shared default engine, built on first use from {!Config.of_env}.
    Its [domains] knob is applied as the default pool's baseline size (see
    {!Nocap_parallel.Pool.set_baseline_domains}) — explicit pools and
    [Pool.with_domains]/[set_default_domains] still take precedence — and
    its [native] knob via {!Nocap_native.Native.set_mode}. *)

val reset_default : unit -> unit
(** Drop the cached default engine so the next {!default} re-reads the
    environment. For tests. *)

val resolve : t option -> t
(** [resolve (Some e)] is [e]; [resolve None] is [default ()] — the one-line
    prologue of every [?engine] entry point. *)

val pool : t -> Nocap_parallel.Pool.t option
(** The engine's pool, or [None] for "default pool at use time". Designed
    to forward directly: [Pool.run ?pool:(Engine.pool e) ...]. *)

val config : t -> Config.t

val stream_budget_bytes : t -> int option
(** The effective prover memory budget: the explicit [create] argument if
    any, else [config.stream_budget_mb] scaled to bytes, else [None].
    [Some _] selects the streaming out-of-core prover paths; [None] means
    everything stays in RAM (the historical behavior). *)

val rng : seed:int64 -> ?rng:Zk_util.Rng.t -> t -> Zk_util.Rng.t
(** RNG precedence for an entry point: explicit argument, else the
    engine's, else a fresh [Rng.create seed] (the historical per-call
    default, so default-engine proofs are bit-stable). *)

val emit : t -> string -> float -> unit
(** Send one named measurement to the trace sink, if any. *)

val tune_gc : t -> unit
(** Apply the engine's GC policy to the process: minor heap sized from
    [config.gc_minor_mb] (default 16 MiB) and [space_overhead] 200 — the
    tuning the benchmarks always ran with. Deliberately explicit: library
    entry points never mutate process-global GC state on their own. *)

val finish_entry : t -> unit
(** Apply the arena policy at the end of a prove/verify entry point. *)
