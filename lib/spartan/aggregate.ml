module Gf = Zk_field.Gf
module Transcript = Zk_hash.Transcript
module Mle = Zk_poly.Mle
module Sparse = Zk_r1cs.Sparse
module R1cs = Zk_r1cs.R1cs
module Sumcheck = Zk_sumcheck.Sumcheck
module Orion = Zk_orion.Orion

type proof = {
  commitments : Orion.commitment array;
  reps : rep_proof array;
}

and rep_proof = {
  sc1 : Sumcheck.proof;
  claims_abc : (Gf.t * Gf.t * Gf.t) array;
  sc2 : Sumcheck.proof;
  vws : Gf.t array;
  w_opens : Orion.eval_proof array;
}

let start_transcript params inst ios =
  let t = Transcript.create "spartan-orion-batch" in
  Transcript.absorb_digest t "instance" (Spartan.instance_digest inst);
  Transcript.absorb_int t "repetitions" params.Spartan.repetitions;
  Transcript.absorb_int t "batch" (Array.length ios);
  Array.iter (Transcript.absorb_gf t "io") ios;
  t

(* comb for the batched first sumcheck over tables
   [eq; a_1; b_1; c_1; ...; a_k; b_k; c_k] with coefficients rho. *)
let comb1 rho v =
  let k = Array.length rho in
  let acc = ref Gf.zero in
  for i = 0 to k - 1 do
    let a = v.((3 * i) + 1) and b = v.((3 * i) + 2) and c = v.((3 * i) + 3) in
    acc := Gf.add !acc (Gf.mul rho.(i) (Gf.sub (Gf.mul a b) c))
  done;
  Gf.mul v.(0) !acc

let comb2 v = Gf.mul v.(0) v.(1)

let io_mle_eval io_live point =
  let eq = Mle.eq_table point in
  let acc = ref Gf.zero in
  Array.iteri (fun j v -> acc := Gf.add !acc (Gf.mul v eq.(j))) io_live;
  !acc

let prove ?engine ?rng params inst assignments =
  let engine = Zk_pcs.Engine.resolve engine in
  let rng = Zk_pcs.Engine.rng ~seed:0xA66_CAFEL ?rng engine in
  let k = Array.length assignments in
  if k = 0 then invalid_arg "Aggregate.prove: empty batch";
  Array.iter
    (fun asn ->
      if not (R1cs.satisfied inst asn) then
        invalid_arg "Aggregate.prove: unsatisfied assignment in batch")
    assignments;
  let ios = Array.map (R1cs.public_io inst) assignments in
  let transcript = start_transcript params inst ios in
  let l = inst.R1cs.log_size in
  let committed_and_cm =
    Array.map
      (fun asn -> Orion.commit ~engine params.Spartan.pcs rng asn.R1cs.w)
      assignments
  in
  Array.iter (fun (_, cm) -> Orion.absorb_commitment transcript cm) committed_and_cm;
  let zs = Array.map (R1cs.z inst) assignments in
  let az = Array.map (Sparse.spmv inst.R1cs.a) zs in
  let bz = Array.map (Sparse.spmv inst.R1cs.b) zs in
  let cz = Array.map (Sparse.spmv inst.R1cs.c) zs in
  let reps =
    Array.init params.Spartan.repetitions (fun _ ->
        let rho = Transcript.challenge_gf_vec transcript "rho" k in
        let tau = Transcript.challenge_gf_vec transcript "tau" l in
        let eq_tau = Mle.eq_table tau in
        let tables =
          Array.of_list
            (eq_tau
            :: List.concat
                 (List.init k (fun i -> [ az.(i); bz.(i); cz.(i) ])))
        in
        let r1 =
          Sumcheck.prove ~engine ~comb_mults:(2 * k) transcript ~degree:3
            ~tables ~comb:(comb1 rho) ~claim:Gf.zero
        in
        let rx = r1.Sumcheck.challenges in
        let claims_abc =
          Array.init k (fun i ->
              ( r1.Sumcheck.final_values.((3 * i) + 1),
                r1.Sumcheck.final_values.((3 * i) + 2),
                r1.Sumcheck.final_values.((3 * i) + 3) ))
        in
        Array.iter
          (fun (va, vb, vc) ->
            Transcript.absorb_gf transcript "claims-abc" [| va; vb; vc |])
          claims_abc;
        let r_abc = Transcript.challenge_gf_vec transcript "r-abc" 3 in
        let sigma = Transcript.challenge_gf_vec transcript "sigma" k in
        let claim2 =
          let acc = ref Gf.zero in
          Array.iteri
            (fun i (va, vb, vc) ->
              let combined =
                Gf.add
                  (Gf.mul r_abc.(0) va)
                  (Gf.add (Gf.mul r_abc.(1) vb) (Gf.mul r_abc.(2) vc))
              in
              acc := Gf.add !acc (Gf.mul sigma.(i) combined))
            claims_abc;
          !acc
        in
        (* The M-table is built once for the whole batch. *)
        let eq_rx = Mle.eq_table rx in
        let ta = Sparse.spmv_transpose inst.R1cs.a eq_rx in
        let tb = Sparse.spmv_transpose inst.R1cs.b eq_rx in
        let tc = Sparse.spmv_transpose inst.R1cs.c eq_rx in
        let m_table =
          Array.init (R1cs.size inst) (fun y ->
              Gf.add
                (Gf.mul r_abc.(0) ta.(y))
                (Gf.add (Gf.mul r_abc.(1) tb.(y)) (Gf.mul r_abc.(2) tc.(y))))
        in
        let z_comb =
          Array.init (R1cs.size inst) (fun y ->
              let acc = ref Gf.zero in
              for i = 0 to k - 1 do
                acc := Gf.add !acc (Gf.mul sigma.(i) zs.(i).(y))
              done;
              !acc)
        in
        let r2 =
          Sumcheck.prove ~engine ~comb_mults:1 transcript ~degree:2
            ~tables:[| m_table; z_comb |] ~comb:comb2 ~claim:claim2
        in
        let ry = r2.Sumcheck.challenges in
        let ry_rest = Array.sub ry 1 (l - 1) in
        let opens =
          Array.map
            (fun (committed, _) ->
              Orion.prove_eval ~engine params.Spartan.pcs committed transcript
                ry_rest)
            committed_and_cm
        in
        let vws = Array.map fst opens in
        Transcript.absorb_gf transcript "vws" vws;
        { sc1 = r1.Sumcheck.proof; claims_abc; sc2 = r2.Sumcheck.proof; vws;
          w_opens = Array.map snd opens })
  in
  Zk_pcs.Engine.finish_entry engine;
  { commitments = Array.map snd committed_and_cm; reps }

let verify ?engine params inst ~ios proof =
  let module E = Zk_pcs.Verify_error in
  let engine = Zk_pcs.Engine.resolve engine in
  let ( let* ) = Result.bind in
  let k = Array.length ios in
  let* () =
    if k = 0 then E.error E.Shape "empty batch"
    else if Array.length proof.commitments <> k then
      E.error E.Shape "commitment count mismatch"
    else if Array.length proof.reps <> params.Spartan.repetitions then
      E.error E.Shape "wrong number of repetitions"
    else Ok ()
  in
  let* () =
    if Array.for_all (fun io -> Array.length io >= 1 && Gf.equal io.(0) Gf.one) ios
    then Ok ()
    else E.error E.Params "every io must start with the constant 1"
  in
  let l = inst.R1cs.log_size in
  let* () =
    if l >= 1 then Ok ()
    else E.error E.Params "instance must have at least one variable"
  in
  let transcript = start_transcript params inst ios in
  Array.iter (Orion.absorb_commitment transcript) proof.commitments;
  let rec check_rep r =
    if r >= Array.length proof.reps then Ok ()
    else begin
      let rep = proof.reps.(r) in
      let* () =
        if Array.length rep.claims_abc = k && Array.length rep.vws = k
           && Array.length rep.w_opens = k
        then Ok ()
        else Zk_pcs.Verify_error.error Zk_pcs.Verify_error.Shape
               "per-instance component count mismatch"
      in
      let rho = Transcript.challenge_gf_vec transcript "rho" k in
      let tau = Transcript.challenge_gf_vec transcript "tau" l in
      let* v1 =
        Sumcheck.verify transcript ~degree:3 ~num_vars:l ~claim:Gf.zero rep.sc1
      in
      let rx = v1.Sumcheck.point in
      let eq_tau_rx = Mle.eq_point tau rx in
      let expected1 =
        let acc = ref Gf.zero in
        Array.iteri
          (fun i (va, vb, vc) ->
            acc := Gf.add !acc (Gf.mul rho.(i) (Gf.sub (Gf.mul va vb) vc)))
          rep.claims_abc;
        Gf.mul eq_tau_rx !acc
      in
      let* () =
        if Gf.equal expected1 v1.Sumcheck.value then Ok ()
        else
          Zk_pcs.Verify_error.errorf Zk_pcs.Verify_error.Sumcheck_mismatch
            "rep %d: batched sumcheck-1 mismatch" r
      in
      Array.iter
        (fun (va, vb, vc) ->
          Transcript.absorb_gf transcript "claims-abc" [| va; vb; vc |])
        rep.claims_abc;
      let r_abc = Transcript.challenge_gf_vec transcript "r-abc" 3 in
      let sigma = Transcript.challenge_gf_vec transcript "sigma" k in
      let claim2 =
        let acc = ref Gf.zero in
        Array.iteri
          (fun i (va, vb, vc) ->
            let combined =
              Gf.add
                (Gf.mul r_abc.(0) va)
                (Gf.add (Gf.mul r_abc.(1) vb) (Gf.mul r_abc.(2) vc))
            in
            acc := Gf.add !acc (Gf.mul sigma.(i) combined))
          rep.claims_abc;
        !acc
      in
      let* v2 =
        Sumcheck.verify transcript ~degree:2 ~num_vars:l ~claim:claim2 rep.sc2
      in
      let ry = v2.Sumcheck.point in
      (* One O(nnz) matrix evaluation serves the whole batch. *)
      let row_eq = Mle.eq_table rx and col_eq = Mle.eq_table ry in
      let ma = Sparse.mle_eval inst.R1cs.a ~row_eq ~col_eq in
      let mb = Sparse.mle_eval inst.R1cs.b ~row_eq ~col_eq in
      let mc = Sparse.mle_eval inst.R1cs.c ~row_eq ~col_eq in
      let m_at_ry =
        Gf.add (Gf.mul r_abc.(0) ma) (Gf.add (Gf.mul r_abc.(1) mb) (Gf.mul r_abc.(2) mc))
      in
      let ry_rest = Array.sub ry 1 (l - 1) in
      let z_comb_at_ry =
        let acc = ref Gf.zero in
        Array.iteri
          (fun i io ->
            let z_i =
              Gf.add
                (Gf.mul (Gf.sub Gf.one ry.(0)) rep.vws.(i))
                (Gf.mul ry.(0) (io_mle_eval io ry_rest))
            in
            acc := Gf.add !acc (Gf.mul sigma.(i) z_i))
          ios;
        !acc
      in
      let* () =
        if Gf.equal (Gf.mul m_at_ry z_comb_at_ry) v2.Sumcheck.value then Ok ()
        else
          Zk_pcs.Verify_error.errorf Zk_pcs.Verify_error.Sumcheck_mismatch
            "rep %d: batched sumcheck-2 mismatch" r
      in
      let rec check_open i =
        if i >= k then Ok ()
        else
          let* () =
            Orion.verify_eval ~engine params.Spartan.pcs proof.commitments.(i)
              transcript ry_rest rep.vws.(i) rep.w_opens.(i)
          in
          check_open (i + 1)
      in
      let* () = check_open 0 in
      Transcript.absorb_gf transcript "vws" rep.vws;
      check_rep (r + 1)
    end
  in
  check_rep 0

let proof_size_bytes params proof =
  let field = 8 and digest = 32 in
  let sumcheck_bytes (p : Sumcheck.proof) =
    Array.fold_left (fun acc g -> acc + (field * Array.length g)) 0 p.Sumcheck.round_polys
  in
  let rep_bytes rep =
    sumcheck_bytes rep.sc1
    + (3 * field * Array.length rep.claims_abc)
    + sumcheck_bytes rep.sc2
    + (field * Array.length rep.vws)
    + Array.fold_left
        (fun acc (i, o) ->
          acc + Orion.proof_size_bytes params.Spartan.pcs proof.commitments.(i) o)
        0
        (Array.mapi (fun i o -> (i, o)) rep.w_opens)
  in
  (digest * Array.length proof.commitments)
  + Array.fold_left (fun acc r -> acc + rep_bytes r) 0 proof.reps
