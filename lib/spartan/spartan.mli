(** The Spartan zk-SNARK — the scheme NoCap accelerates (Sec. II-A, Sec. V) —
    functorized over the polynomial commitment backend.

    Pipeline, following Fig. 2 and Fig. 4:

    + the witness half of the wire vector is committed with the PCS backend
      [P] (Orion's Reed-Solomon + Merkle scheme by default);
    + sumcheck #1 proves [sum_x eq(tau, x) * (Az(x) * Bz(x) - Cz(x)) = 0],
      reducing R1CS satisfiability to evaluation claims on Az~, Bz~, Cz~ at a
      random point [rx];
    + sumcheck #2 proves the random linear combination
      [sum_y (rA * A(rx,y) + rB * B(rx,y) + rC * C(rx,y)) * z(y)], reducing
      to one evaluation claim on [z~] at [ry];
    + [z~(ry)] splits into a public-input part the verifier computes itself
      and a witness part opened through the PCS.

    The verifier evaluates the matrix MLEs [A~(rx,ry)], [B~], [C~] directly
    from the sparse matrices (O(nnz) — Spartan's NIZK variant without the
    SPARK preprocessing commitment; see DESIGN.md). Soundness over the
    Goldilocks-64 field is amplified by running the IOP [repetitions] times
    (the paper uses 3, Sec. VII-A).

    {!Make} builds the SNARK over any {!Zk_pcs.Pcs.S} backend; the toplevel
    of this module is [Make (Zk_orion.Orion_pcs)], so existing call sites
    keep working and Orion-backend proof bytes are unchanged. *)

module Gf = Zk_field.Gf

(** Signature of an instantiated Spartan prover/verifier. *)
module type S = sig
  module P : Zk_pcs.Pcs.S
  (** The polynomial commitment backend this instance is built over. *)

  type params = {
    pcs : P.params;
    repetitions : int; (** 3 in the paper's 128-bit configuration *)
  }

  val default_params : params
  (** Backend defaults, 3 repetitions. *)

  val test_params : params
  (** 1 repetition, small backend parameters: fast configuration for unit
      tests. *)

  type rep_proof = {
    sc1 : Zk_sumcheck.Sumcheck.proof;
    va : Gf.t; (** Az~(rx) *)
    vb : Gf.t; (** Bz~(rx) *)
    vc : Gf.t; (** Cz~(rx) *)
    sc2 : Zk_sumcheck.Sumcheck.proof;
    vw : Gf.t; (** w~(ry minus the top variable) *)
    w_open : P.eval_proof;
  }

  type proof = { w_commitment : P.commitment; reps : rep_proof array }

  type prover_stats = {
    sumcheck_mults : int;
    sumcheck_adds : int;
    spmv_mults : int;
    transcript_hashes : int;
  }

  val prove :
    ?engine:Zk_pcs.Engine.t ->
    ?rng:Zk_util.Rng.t ->
    params ->
    Zk_r1cs.R1cs.instance ->
    Zk_r1cs.R1cs.assignment ->
    proof * prover_stats
  (** Produce a proof that the instance is satisfied by a witness whose public
      io the verifier will see. [rng] seeds the zk mask rows (it defaults to
      the engine's RNG, or a fixed seed); [engine] supplies the worker pool
      and trace sink — proof bytes are identical for every engine.
      @raise Invalid_argument if the assignment does not satisfy the
      instance, or if [params.pcs] is invalid. *)

  val verify :
    ?engine:Zk_pcs.Engine.t ->
    params ->
    Zk_r1cs.R1cs.instance ->
    io:Gf.t array ->
    proof ->
    (unit, Zk_pcs.Verify_error.t) result
  (** [verify params instance ~io proof]: [io] is the live public io prefix
      (constant 1 followed by public inputs), as returned by
      {!Zk_r1cs.R1cs.public_io}. The instance, params, and io are trusted
      (the verifier's own statement); the proof is not — any proof value,
      including one decoded from hostile bytes, yields a categorized
      [Error], never an exception. *)

  val proof_size_bytes : params -> proof -> int
  (** Serialized proof size (8 B per field element, 32 B per digest). *)

  val instance_digest : Zk_r1cs.R1cs.instance -> Zk_hash.Keccak.digest
  (** Binding digest of the constraint matrices; absorbed into the transcript
      by both parties so proofs are tied to a specific circuit. *)

  val magic : string
  (** 8-byte wire magic ["NCAP2\x00\x00\x00"]; followed by the backend's
      one-byte tag. *)

  val proof_to_bytes : proof -> bytes
  (** Canonical byte format: magic, backend tag byte, then little-endian u64
      field elements and lengths, raw 32-byte digests, length-prefixed
      arrays. *)

  val proof_of_bytes : bytes -> (proof, Zk_pcs.Verify_error.t) result
  (** Total decoding: malformed input yields a categorized [Error], never an
      exception; every length field is bounded against the remaining input,
      and trailing bytes after a complete proof are rejected. A blob written
      by a different backend (or a legacy untagged NCAP1 blob) is
      [Bad_header], naming the backend/tag in the detail. *)

  val serialized_size : proof -> int
  (** Exact byte length [proof_to_bytes] produces (payload plus framing). *)
end

module Make (P0 : Zk_pcs.Pcs.S) : S with module P = P0
(** Build the SNARK over a PCS backend. The Fiat-Shamir transcript label is
    ["spartan-" ^ P0.name], so distinct backends are domain-separated. *)

include S with module P = Zk_orion.Orion_pcs
(** The default instance, over Orion — byte-compatible with the pre-functor
    prover for every engine/domain configuration. *)

val backend_of_bytes : bytes -> (string, Zk_pcs.Verify_error.t) result
(** Sniff the header of a serialized proof and report which backend wrote it
    ([Ok "orion"], [Ok "fri"], ...) without decoding the payload. Legacy
    NCAP1 blobs report ["orion"]; unknown tags and bad magics are
    [Bad_header]. *)
