(** Batched proving of many assignments to the {e same} circuit.

    The Litmus workload (Sec. VII-B) proves many structurally identical
    transaction batches; proving them together amortizes almost everything
    that is not per-witness: one challenge schedule, one pair of sumchecks
    (the first runs over a random linear combination
    [eq(tau,x) * sum_i rho_i (Az_i Bz_i - Cz_i)], still degree 3; the second
    over [M(y) * sum_i sigma_i z_i(y)], whose M-table — the expensive
    transpose-SpMV — is built once instead of [k] times), and one O(nnz)
    matrix-MLE evaluation on the verifier. Only the Orion commitment and
    opening remain per-instance.

    Soundness: a batch proof convinces the verifier that {e every} assignment
    satisfies the circuit — if any single one does not, the random
    combination is nonzero with overwhelming probability and the sumcheck
    fails. *)

module Gf = Zk_field.Gf

type proof = {
  commitments : Zk_orion.Orion.commitment array; (** one per instance *)
  reps : rep_proof array;
}

and rep_proof = {
  sc1 : Zk_sumcheck.Sumcheck.proof;
  claims_abc : (Gf.t * Gf.t * Gf.t) array; (** (va, vb, vc) per instance *)
  sc2 : Zk_sumcheck.Sumcheck.proof;
  vws : Gf.t array; (** w_i~(ry_rest) per instance *)
  w_opens : Zk_orion.Orion.eval_proof array;
}

val prove :
  ?engine:Zk_pcs.Engine.t ->
  ?rng:Zk_util.Rng.t ->
  Spartan.params ->
  Zk_r1cs.R1cs.instance ->
  Zk_r1cs.R1cs.assignment array ->
  proof
(** @raise Invalid_argument if the batch is empty or any assignment fails to
    satisfy the instance. *)

val verify :
  ?engine:Zk_pcs.Engine.t ->
  Spartan.params ->
  Zk_r1cs.R1cs.instance ->
  ios:Gf.t array array ->
  proof ->
  (unit, Zk_pcs.Verify_error.t) result
(** [ios.(i)] is instance [i]'s live public io
    ({!Zk_r1cs.R1cs.public_io}). Total on arbitrary proofs: every failure
    is a categorized [Error], never an exception. *)

val proof_size_bytes : Spartan.params -> proof -> int
