module Gf = Zk_field.Gf
module Transcript = Zk_hash.Transcript
module Keccak = Zk_hash.Keccak
module Mle = Zk_poly.Mle
module Sparse = Zk_r1cs.Sparse
module R1cs = Zk_r1cs.R1cs
module Sumcheck = Zk_sumcheck.Sumcheck
module Engine = Zk_pcs.Engine
module Codec = Zk_pcs.Codec
module E = Zk_pcs.Verify_error
module Fv = Nocap_vec.Fv
module Spill = Nocap_vec.Spill
module Pool = Nocap_parallel.Pool

let magic = "NCAP2\x00\x00\x00"
let legacy_magic = "NCAP1\x00\x00\x00"

(* Registry of wire tags across all in-tree backends, for decode errors
   that name the backend a mismatched blob actually came from. *)
let backend_name_of_tag t =
  if Char.equal t Zk_orion.Orion_pcs.tag then Some Zk_orion.Orion_pcs.name
  else if Char.equal t Zk_orion.Fri_pcs.tag then Some Zk_orion.Fri_pcs.name
  else None

let backend_of_bytes data =
  let ( let* ) = Result.bind in
  let r = Codec.reader data in
  match Codec.expect_string r magic with
  | Error _ -> (
    match Codec.expect_string r legacy_magic with
    | Ok () -> Ok Zk_orion.Orion_pcs.name
    | Error _ -> E.error E.Bad_header "bad magic")
  | Ok () -> (
    let* t = Codec.get_byte r in
    match backend_name_of_tag t with
    | Some name -> Ok name
    | None -> E.errorf E.Bad_header "unknown backend tag 0x%02x" (Char.code t))

let instance_digest (inst : R1cs.instance) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "r1cs:%d:" inst.R1cs.log_size);
  let add_matrix tag m =
    Buffer.add_string buf tag;
    Seq.iter
      (fun (r, c, v) ->
        let b = Bytes.create 24 in
        Bytes.set_int64_le b 0 (Int64.of_int r);
        Bytes.set_int64_le b 8 (Int64.of_int c);
        Bytes.set_int64_le b 16 (Gf.to_int64 v);
        Buffer.add_bytes buf b)
      (Sparse.entries m)
  in
  add_matrix "A" inst.R1cs.a;
  add_matrix "B" inst.R1cs.b;
  add_matrix "C" inst.R1cs.c;
  Keccak.sha3_256 (Buffer.to_bytes buf)

(* The multilinear extension of the io half at a point over (L-1) variables,
   computed from the live io prefix only (everything else is zero). *)
let io_mle_eval io_live point =
  let eq = Mle.eq_table point in
  let acc = ref Gf.zero in
  Array.iteri (fun j v -> acc := Gf.add !acc (Gf.mul v eq.(j))) io_live;
  !acc

(* comb for sumcheck #1: eq * (az * bz - cz), degree 3. *)
let comb1 v = Gf.mul v.(0) (Gf.sub (Gf.mul v.(1) v.(2)) v.(3))

(* comb for sumcheck #2: m * z, degree 2. *)
let comb2 v = Gf.mul v.(0) v.(1)

module type S = sig
  module P : Zk_pcs.Pcs.S

  type params = { pcs : P.params; repetitions : int }

  val default_params : params
  val test_params : params

  type rep_proof = {
    sc1 : Zk_sumcheck.Sumcheck.proof;
    va : Gf.t;
    vb : Gf.t;
    vc : Gf.t;
    sc2 : Zk_sumcheck.Sumcheck.proof;
    vw : Gf.t;
    w_open : P.eval_proof;
  }

  type proof = { w_commitment : P.commitment; reps : rep_proof array }

  type prover_stats = {
    sumcheck_mults : int;
    sumcheck_adds : int;
    spmv_mults : int;
    transcript_hashes : int;
  }

  val prove :
    ?engine:Zk_pcs.Engine.t ->
    ?rng:Zk_util.Rng.t ->
    params ->
    Zk_r1cs.R1cs.instance ->
    Zk_r1cs.R1cs.assignment ->
    proof * prover_stats

  val verify :
    ?engine:Zk_pcs.Engine.t ->
    params ->
    Zk_r1cs.R1cs.instance ->
    io:Gf.t array ->
    proof ->
    (unit, Zk_pcs.Verify_error.t) result

  val proof_size_bytes : params -> proof -> int
  val instance_digest : Zk_r1cs.R1cs.instance -> Zk_hash.Keccak.digest
  val magic : string
  val proof_to_bytes : proof -> bytes
  val proof_of_bytes : bytes -> (proof, Zk_pcs.Verify_error.t) result
  val serialized_size : proof -> int
end

module Make (P0 : Zk_pcs.Pcs.S) = struct
  module P = P0

  type params = { pcs : P.params; repetitions : int }

  let default_params = { pcs = P.default_params; repetitions = 3 }
  let test_params = { pcs = P.test_params; repetitions = 1 }

  type rep_proof = {
    sc1 : Sumcheck.proof;
    va : Gf.t;
    vb : Gf.t;
    vc : Gf.t;
    sc2 : Sumcheck.proof;
    vw : Gf.t;
    w_open : P.eval_proof;
  }

  type proof = { w_commitment : P.commitment; reps : rep_proof array }

  type prover_stats = {
    sumcheck_mults : int;
    sumcheck_adds : int;
    spmv_mults : int;
    transcript_hashes : int;
  }

  let instance_digest = instance_digest

  (* "spartan-orion" for the default backend — the historical label, so
     Orion-backend transcripts (and proof bytes) are unchanged; other
     backends are domain-separated by their name. *)
  let start_transcript params inst io =
    let t = Transcript.create ("spartan-" ^ P.name) in
    Transcript.absorb_digest t "instance" (instance_digest inst);
    Transcript.absorb_int t "repetitions" params.repetitions;
    Transcript.absorb_gf t "io" io;
    t

  let prove_in_memory ~engine ~rng params inst asn =
    if not (R1cs.satisfied inst asn) then
      invalid_arg "Spartan.prove: assignment does not satisfy the instance";
    let io = R1cs.public_io inst asn in
    let transcript = start_transcript params inst io in
    let l = inst.R1cs.log_size in
    (* Commit to the witness half. *)
    let committed, w_commitment = P.commit ~engine params.pcs rng asn.R1cs.w in
    (* Cancellation or a worker crash mid-proof must still release the PCS
       working set (spill files); free_committed is idempotent, so this
       backstop composes with the deterministic free on the normal path. *)
    Fun.protect ~finally:(fun () -> P.free_committed committed) @@ fun () ->
    P.absorb_commitment transcript w_commitment;
    let zv = R1cs.z inst asn in
    let az = Sparse.spmv inst.R1cs.a zv in
    let bz = Sparse.spmv inst.R1cs.b zv in
    let cz = Sparse.spmv inst.R1cs.c zv in
    let spmv_mults = ref (R1cs.nnz inst) in
    let sc_mults = ref 0 and sc_adds = ref 0 in
    let reps =
      Array.init params.repetitions (fun _ ->
          (* --- Sumcheck #1 --- *)
          let tau = Transcript.challenge_gf_vec transcript "tau" l in
          let eq_tau = Mle.eq_table tau in
          let r1 =
            Sumcheck.prove ~engine ~comb_mults:2 transcript ~degree:3
              ~tables:[| eq_tau; az; bz; cz |]
              ~comb:comb1 ~claim:Gf.zero
          in
          sc_mults := !sc_mults + r1.Sumcheck.stats.Sumcheck.mults;
          sc_adds := !sc_adds + r1.Sumcheck.stats.Sumcheck.adds;
          let rx = r1.Sumcheck.challenges in
          let va = r1.Sumcheck.final_values.(1) in
          let vb = r1.Sumcheck.final_values.(2) in
          let vc = r1.Sumcheck.final_values.(3) in
          Transcript.absorb_gf transcript "claims-abc" [| va; vb; vc |];
          (* --- Sumcheck #2 --- *)
          let r_abc = Transcript.challenge_gf_vec transcript "r-abc" 3 in
          let claim2 =
            Gf.add
              (Gf.mul r_abc.(0) va)
              (Gf.add (Gf.mul r_abc.(1) vb) (Gf.mul r_abc.(2) vc))
          in
          let eq_rx = Mle.eq_table rx in
          let m_table =
            let ta = Sparse.spmv_transpose inst.R1cs.a eq_rx in
            let tb = Sparse.spmv_transpose inst.R1cs.b eq_rx in
            let tc = Sparse.spmv_transpose inst.R1cs.c eq_rx in
            spmv_mults := !spmv_mults + R1cs.nnz inst;
            Array.init (R1cs.size inst) (fun y ->
                Gf.add
                  (Gf.mul r_abc.(0) ta.(y))
                  (Gf.add (Gf.mul r_abc.(1) tb.(y)) (Gf.mul r_abc.(2) tc.(y))))
          in
          let r2 =
            Sumcheck.prove ~engine ~comb_mults:1 transcript ~degree:2
              ~tables:[| m_table; zv |] ~comb:comb2 ~claim:claim2
          in
          sc_mults := !sc_mults + r2.Sumcheck.stats.Sumcheck.mults;
          sc_adds := !sc_adds + r2.Sumcheck.stats.Sumcheck.adds;
          let ry = r2.Sumcheck.challenges in
          (* Open w~ at ry minus the top variable. *)
          let ry_rest = Array.sub ry 1 (l - 1) in
          let vw, w_open = P.open_at ~engine params.pcs committed transcript ry_rest in
          Transcript.absorb_gf transcript "vw" [| vw |];
          { sc1 = r1.Sumcheck.proof; va; vb; vc; sc2 = r2.Sumcheck.proof; vw; w_open })
    in
    P.free_committed committed;
    let stats =
      {
        sumcheck_mults = !sc_mults;
        sumcheck_adds = !sc_adds;
        spmv_mults = !spmv_mults;
        transcript_hashes = Transcript.hash_count transcript;
      }
    in
    Engine.emit engine "spartan/sumcheck_mults" (float_of_int stats.sumcheck_mults);
    Engine.emit engine "spartan/spmv_mults" (float_of_int stats.spmv_mults);
    Engine.emit engine "spartan/transcript_hashes"
      (float_of_int stats.transcript_hashes);
    Engine.finish_entry engine;
    ({ w_commitment; reps }, stats)

  (* The bounded-memory prover: same transcript traffic, same RNG draws,
     same arithmetic — so the proof bytes are identical to
     {!prove_in_memory} — but every full-length intermediate (Az/Bz/Cz,
     the eq tables, the M~ table, the sumcheck generations, the PCS
     working set) lives in spill files touched one block at a time. The
     only full-length residents are the caller-owned assignment and the
     flat 8-byte/element wire vector z. *)
  let prove_streaming ~engine ~rng ~budget params inst asn =
    let io = R1cs.public_io inst asn in
    let l = inst.R1cs.log_size in
    let n = R1cs.size inst in
    let block = max 1024 (budget / (8 * 8)) in
    (* z as a flat vector (validates the assignment shape like R1cs.z). *)
    let zfv = Fv.create n in
    R1cs.iter_z_blocks inst asn ~block (fun ~pos slice ->
        Fv.write_array slice ~src_pos:0 zfv ~dst_pos:pos ~len:(Array.length slice));
    let zf j = Fv.get zfv j in
    (* Row-blocked Az/Bz/Cz: each block is checked for satisfiability and
       spilled; the three dense vectors never coexist in RAM. Raises before
       any commitment work, like the in-memory path. *)
    let az = Spill.create ~tag:"spartan-az" ~spill:true n in
    let bz = Spill.create ~tag:"spartan-bz" ~spill:true n in
    let cz = Spill.create ~tag:"spartan-cz" ~spill:true n in
    (* Every exit — success, unsatisfiable assignment, cancellation, an
       injected I/O fault — releases the spilled vectors deterministically;
       Spill.free is idempotent so this composes with the normal-path
       frees below. *)
    Fun.protect
      ~finally:(fun () ->
        Spill.free az;
        Spill.free bz;
        Spill.free cz)
    @@ fun () ->
    let r = ref 0 in
    while !r < n do
      Pool.Cancel.check ();
      let hi = min n (!r + block) in
      let ab = Sparse.spmv_range inst.R1cs.a ~x:zf ~r_lo:!r ~r_hi:hi in
      let bb = Sparse.spmv_range inst.R1cs.b ~x:zf ~r_lo:!r ~r_hi:hi in
      let cb = Sparse.spmv_range inst.R1cs.c ~x:zf ~r_lo:!r ~r_hi:hi in
      for i = 0 to hi - !r - 1 do
        if not (Gf.equal (Gf.mul ab.(i) bb.(i)) cb.(i)) then
          invalid_arg "Spartan.prove: assignment does not satisfy the instance"
      done;
      Spill.write az ~pos:!r (Fv.of_array ab);
      Spill.write bz ~pos:!r (Fv.of_array bb);
      Spill.write cz ~pos:!r (Fv.of_array cb);
      r := hi
    done;
    let transcript = start_transcript params inst io in
    (* Commit to the witness half; the engine budget routes the backend to
       its own out-of-core commit. *)
    let committed, w_commitment = P.commit ~engine params.pcs rng asn.R1cs.w in
    Fun.protect ~finally:(fun () -> P.free_committed committed) @@ fun () ->
    P.absorb_commitment transcript w_commitment;
    let spmv_mults = ref (R1cs.nnz inst) in
    let sc_mults = ref 0 and sc_adds = ref 0 in
    let z_spill = Spill.of_fv zfv in
    (* Spilled eq table, generated block-by-block via the aligned-range
       factorization (bit-identical to Mle.eq_table). *)
    let spill_eq tag point =
      let len = 1 lsl Array.length point in
      let s = Spill.create ~tag ~spill:true len in
      let eb =
        let b = min block len in
        let p = ref 1 in
        while !p * 2 <= b do
          p := !p * 2
        done;
        !p
      in
      let pos = ref 0 in
      (try
         while !pos < len do
           Pool.Cancel.check ();
           Spill.write s ~pos:!pos
             (Fv.of_array (Mle.eq_table_range point ~lo:!pos ~len:eb));
           pos := !pos + eb
         done
       with e ->
         Spill.free s;
         raise e);
      s
    in
    let reps =
      Array.init params.repetitions (fun _ ->
          (* --- Sumcheck #1 --- *)
          let tau = Transcript.challenge_gf_vec transcript "tau" l in
          let eq_tau = spill_eq "spartan-eqtau" tau in
          let r1 =
            Fun.protect ~finally:(fun () -> Spill.free eq_tau) @@ fun () ->
            Sumcheck.prove_streaming ~engine ~comb_mults:2 ~budget_bytes:budget
              transcript ~degree:3
              ~tables:[| eq_tau; az; bz; cz |]
              ~comb:comb1 ~claim:Gf.zero
          in
          sc_mults := !sc_mults + r1.Sumcheck.stats.Sumcheck.mults;
          sc_adds := !sc_adds + r1.Sumcheck.stats.Sumcheck.adds;
          let rx = r1.Sumcheck.challenges in
          let va = r1.Sumcheck.final_values.(1) in
          let vb = r1.Sumcheck.final_values.(2) in
          let vc = r1.Sumcheck.final_values.(3) in
          Transcript.absorb_gf transcript "claims-abc" [| va; vb; vc |];
          (* --- Sumcheck #2 --- *)
          let r_abc = Transcript.challenge_gf_vec transcript "r-abc" 3 in
          let claim2 =
            Gf.add
              (Gf.mul r_abc.(0) va)
              (Gf.add (Gf.mul r_abc.(1) vb) (Gf.mul r_abc.(2) vc))
          in
          let eq_rx = spill_eq "spartan-eqrx" rx in
          (* Column-blocked M~ table: the transpose SpMV scans the matrices
             once per window (window-sized accumulator), reading eq_rx
             through a sliding spill window. *)
          let m_table = Spill.create ~tag:"spartan-m" ~spill:true n in
          let r2 =
            Fun.protect
              ~finally:(fun () ->
                Spill.free eq_rx;
                Spill.free m_table)
            @@ fun () ->
            let reader = Spill.Reader.create eq_rx in
            let y r = Spill.Reader.get reader r in
            let c = ref 0 in
            while !c < n do
              Pool.Cancel.check ();
              let hi = min n (!c + block) in
              let ta = Sparse.spmv_transpose_range inst.R1cs.a ~y ~c_lo:!c ~c_hi:hi in
              let tb = Sparse.spmv_transpose_range inst.R1cs.b ~y ~c_lo:!c ~c_hi:hi in
              let tc = Sparse.spmv_transpose_range inst.R1cs.c ~y ~c_lo:!c ~c_hi:hi in
              let blk =
                Array.init (hi - !c) (fun i ->
                    Gf.add
                      (Gf.mul r_abc.(0) ta.(i))
                      (Gf.add (Gf.mul r_abc.(1) tb.(i)) (Gf.mul r_abc.(2) tc.(i))))
              in
              Spill.write m_table ~pos:!c (Fv.of_array blk);
              c := hi
            done;
            spmv_mults := !spmv_mults + R1cs.nnz inst;
            (* eq_rx is only needed to build M~; free it before the second
               sumcheck so the two never coexist (the finally re-free is an
               idempotent no-op). *)
            Spill.free eq_rx;
            Sumcheck.prove_streaming ~engine ~comb_mults:1 ~budget_bytes:budget
              transcript ~degree:2
              ~tables:[| m_table; z_spill |]
              ~comb:comb2 ~claim:claim2
          in
          sc_mults := !sc_mults + r2.Sumcheck.stats.Sumcheck.mults;
          sc_adds := !sc_adds + r2.Sumcheck.stats.Sumcheck.adds;
          let ry = r2.Sumcheck.challenges in
          let ry_rest = Array.sub ry 1 (l - 1) in
          let vw, w_open = P.open_at ~engine params.pcs committed transcript ry_rest in
          Transcript.absorb_gf transcript "vw" [| vw |];
          { sc1 = r1.Sumcheck.proof; va; vb; vc; sc2 = r2.Sumcheck.proof; vw; w_open })
    in
    P.free_committed committed;
    Spill.free az;
    Spill.free bz;
    Spill.free cz;
    let stats : prover_stats =
      {
        sumcheck_mults = !sc_mults;
        sumcheck_adds = !sc_adds;
        spmv_mults = !spmv_mults;
        transcript_hashes = Transcript.hash_count transcript;
      }
    in
    Engine.emit engine "spartan/sumcheck_mults" (float_of_int stats.sumcheck_mults);
    Engine.emit engine "spartan/spmv_mults" (float_of_int stats.spmv_mults);
    Engine.emit engine "spartan/transcript_hashes"
      (float_of_int stats.transcript_hashes);
    Engine.finish_entry engine;
    ({ w_commitment; reps }, stats)

  let prove ?engine ?rng params inst asn =
    let engine = Engine.resolve engine in
    let rng = Engine.rng ~seed:0x5EED_CAFEL ?rng engine in
    match Engine.stream_budget_bytes engine with
    | None -> prove_in_memory ~engine ~rng params inst asn
    | Some budget -> prove_streaming ~engine ~rng ~budget params inst asn

  let verify ?engine params inst ~io proof =
    let engine = Engine.resolve engine in
    let ( let* ) = Result.bind in
    let* () =
      if Array.length proof.reps = params.repetitions then Ok ()
      else E.error E.Shape "wrong number of repetitions"
    in
    let* () =
      if Array.length io >= 1 && Gf.equal io.(0) Gf.one then Ok ()
      else E.error E.Params "io must start with the constant 1"
    in
    let l = inst.R1cs.log_size in
    let* () =
      if l >= 1 then Ok ()
      else E.error E.Params "instance must have at least one variable"
    in
    let transcript = start_transcript params inst io in
    P.absorb_commitment transcript proof.w_commitment;
    let rec check_rep k =
      if k >= Array.length proof.reps then Ok ()
      else begin
        let rep = proof.reps.(k) in
        let tau = Transcript.challenge_gf_vec transcript "tau" l in
        let* v1 =
          Sumcheck.verify transcript ~degree:3 ~num_vars:l ~claim:Gf.zero rep.sc1
        in
        let rx = v1.Sumcheck.point in
        (* eq(tau, rx) the verifier computes in O(L). *)
        let eq_tau_rx = Mle.eq_point tau rx in
        let expected1 = Gf.mul eq_tau_rx (Gf.sub (Gf.mul rep.va rep.vb) rep.vc) in
        let* () =
          if Gf.equal expected1 v1.Sumcheck.value then Ok ()
          else E.errorf E.Sumcheck_mismatch "rep %d: sumcheck-1 final claim mismatch" k
        in
        Transcript.absorb_gf transcript "claims-abc" [| rep.va; rep.vb; rep.vc |];
        let r_abc = Transcript.challenge_gf_vec transcript "r-abc" 3 in
        let claim2 =
          Gf.add
            (Gf.mul r_abc.(0) rep.va)
            (Gf.add (Gf.mul r_abc.(1) rep.vb) (Gf.mul r_abc.(2) rep.vc))
        in
        let* v2 =
          Sumcheck.verify transcript ~degree:2 ~num_vars:l ~claim:claim2 rep.sc2
        in
        let ry = v2.Sumcheck.point in
        (* M~(ry) = rA * A~(rx,ry) + rB * B~(rx,ry) + rC * C~(rx,ry), evaluated
           directly from the sparse matrices in O(nnz). *)
        let row_eq = Mle.eq_table rx and col_eq = Mle.eq_table ry in
        let ma = Sparse.mle_eval inst.R1cs.a ~row_eq ~col_eq in
        let mb = Sparse.mle_eval inst.R1cs.b ~row_eq ~col_eq in
        let mc = Sparse.mle_eval inst.R1cs.c ~row_eq ~col_eq in
        let m_at_ry =
          Gf.add
            (Gf.mul r_abc.(0) ma)
            (Gf.add (Gf.mul r_abc.(1) mb) (Gf.mul r_abc.(2) mc))
        in
        (* z~(ry) = (1 - ry_0) * w~(ry_rest) + ry_0 * io~(ry_rest). *)
        let ry_rest = Array.sub ry 1 (l - 1) in
        let io_eval = io_mle_eval io ry_rest in
        let z_at_ry =
          Gf.add (Gf.mul (Gf.sub Gf.one ry.(0)) rep.vw) (Gf.mul ry.(0) io_eval)
        in
        let* () =
          if Gf.equal (Gf.mul m_at_ry z_at_ry) v2.Sumcheck.value then Ok ()
          else E.errorf E.Sumcheck_mismatch "rep %d: sumcheck-2 final claim mismatch" k
        in
        (* PCS opening of w~ at ry_rest. *)
        let* () =
          P.verify ~engine params.pcs proof.w_commitment transcript ry_rest rep.vw
            rep.w_open
        in
        Transcript.absorb_gf transcript "vw" [| rep.vw |];
        check_rep (k + 1)
      end
    in
    let result = check_rep 0 in
    Engine.finish_entry engine;
    result

  let proof_size_bytes params proof =
    let field = 8 and digest = 32 in
    let sumcheck_bytes (p : Sumcheck.proof) =
      Array.fold_left
        (fun acc g -> acc + (field * Array.length g))
        0 p.Sumcheck.round_polys
    in
    let rep_bytes rep =
      sumcheck_bytes rep.sc1 + (3 * field) + sumcheck_bytes rep.sc2 + field
      + P.proof_size_bytes params.pcs proof.w_commitment rep.w_open
    in
    digest + Array.fold_left (fun acc r -> acc + rep_bytes r) 0 proof.reps

  (* --- serialization: NCAP2 header + backend tag byte, then the same
     payload layout the pre-functor Serialize module wrote --- *)

  let magic = magic

  let put_sumcheck buf (p : Sumcheck.proof) =
    Codec.put_int buf (Array.length p.Sumcheck.round_polys);
    Array.iter (Codec.put_gf_array buf) p.Sumcheck.round_polys

  let get_sumcheck r =
    let ( let* ) = Result.bind in
    let* round_polys = Codec.get_array r Codec.get_gf_array in
    Ok { Sumcheck.round_polys }

  let proof_to_bytes (p : proof) =
    let buf = Buffer.create 65536 in
    Buffer.add_string buf magic;
    Codec.put_byte buf P.tag;
    P.write_commitment buf p.w_commitment;
    Codec.put_int buf (Array.length p.reps);
    Array.iter
      (fun r ->
        put_sumcheck buf r.sc1;
        Codec.put_gf buf r.va;
        Codec.put_gf buf r.vb;
        Codec.put_gf buf r.vc;
        put_sumcheck buf r.sc2;
        Codec.put_gf buf r.vw;
        P.write_eval_proof buf r.w_open)
      p.reps;
    Buffer.to_bytes buf

  let serialized_size p = Bytes.length (proof_to_bytes p)

  let proof_of_bytes data =
    let ( let* ) = Result.bind in
    let r = Codec.reader data in
    match Codec.expect_string r magic with
    | Error _ -> (
      match Codec.expect_string r legacy_magic with
      | Ok () ->
        E.error E.Bad_header
          "legacy NCAP1 proof blob (no backend tag); re-serialize it with the \
           current version"
      | Error _ -> E.error E.Bad_header "bad magic")
    | Ok () ->
      let* t = Codec.get_byte r in
      if not (Char.equal t P.tag) then
        (match backend_name_of_tag t with
        | Some b ->
          E.errorf E.Bad_header
            "backend mismatch: proof blob carries backend %S (tag 0x%02x), this \
             decoder is %S"
            b (Char.code t) P.name
        | None -> E.errorf E.Bad_header "unknown backend tag 0x%02x" (Char.code t))
      else
        let* w_commitment = P.read_commitment r in
        let* reps =
          Codec.get_array r (fun r ->
              let* sc1 = get_sumcheck r in
              let* va = Codec.get_gf r in
              let* vb = Codec.get_gf r in
              let* vc = Codec.get_gf r in
              let* sc2 = get_sumcheck r in
              let* vw = Codec.get_gf r in
              let* w_open = P.read_eval_proof r in
              Ok { sc1; va; vb; vc; sc2; vw; w_open })
        in
        let* () = Codec.expect_end r in
        Ok { w_commitment; reps }
end

include Make (Zk_orion.Orion_pcs)
