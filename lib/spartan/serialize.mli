(** Binary serialization of Spartan proofs (default Orion backend).

    Proofs cross the wire in the paper's deployment (the 10 MB/s link of
    Table I), so the library provides a canonical byte format:
    an 8-byte magic, a one-byte backend tag, then little-endian u64 field
    elements and lengths, raw 32-byte digests, length-prefixed arrays.
    Decoding is total: malformed input yields [Error], never an exception,
    and decoders bound every length field against the remaining input.

    These are aliases for the default instance's codecs; a backend built
    with {!Spartan.Make} carries its own [proof_to_bytes] / [proof_of_bytes]
    with the same framing and its own tag byte. *)

val proof_to_bytes : Spartan.proof -> bytes

val proof_of_bytes : bytes -> (Spartan.proof, Zk_pcs.Verify_error.t) result

val serialized_size : Spartan.proof -> int
(** Exact byte length [proof_to_bytes] produces (payload plus framing). *)

val backend_of_bytes : bytes -> (string, Zk_pcs.Verify_error.t) result
(** Report which PCS backend wrote a serialized proof, from the header
    alone. *)
