let proof_to_bytes = Spartan.proof_to_bytes
let proof_of_bytes = Spartan.proof_of_bytes
let serialized_size = Spartan.serialized_size
let backend_of_bytes = Spartan.backend_of_bytes
