(* Fixed Domain pool with a single-slot task board.

   Submission publishes one task (a chunked index range) under [lock] and
   bumps [generation]; idle workers wake on [work_cond], claim chunks from
   the task's atomic cursor, and the participant that retires the last
   index marks the task finished and broadcasts [done_cond]. The submitter
   participates too, so a pool of size 1 degenerates to a plain loop and
   progress never depends on workers waking up at all. *)

type task = {
  body : int -> int -> unit; (* half-open chunk [lo, hi) *)
  n : int;
  chunk : int;
  next : int Atomic.t; (* next unclaimed chunk start *)
  remaining : int Atomic.t; (* indices not yet retired *)
  failed : bool Atomic.t;
  mutable exn : (exn * Printexc.raw_backtrace) option;
  task_lock : Mutex.t;
  done_cond : Condition.t;
  mutable finished : bool;
}

type t = {
  pool_size : int;
  mutable workers : unit Domain.t array;
  lock : Mutex.t;
  work_cond : Condition.t;
  submit_lock : Mutex.t; (* serializes top-level submissions *)
  mutable current : task option;
  mutable generation : int;
  mutable shutdown : bool;
}

let size p = p.pool_size

(* True while the current domain is executing chunks of some task; nested
   submissions from such a domain run serially instead of deadlocking on
   the single task slot. *)
let in_worker : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let record_exn task e bt =
  Mutex.lock task.task_lock;
  if task.exn = None then task.exn <- Some (e, bt);
  Mutex.unlock task.task_lock;
  Atomic.set task.failed true

let participate task =
  let flag = Domain.DLS.get in_worker in
  let was = !flag in
  flag := true;
  let continue = ref true in
  while !continue do
    let lo = Atomic.fetch_and_add task.next task.chunk in
    if lo >= task.n then continue := false
    else begin
      let hi = min (lo + task.chunk) task.n in
      (* After a failure, remaining chunks are drained without running the
         body: the submitter re-raises the first exception anyway. *)
      if not (Atomic.get task.failed) then begin
        try task.body lo hi
        with e -> record_exn task e (Printexc.get_raw_backtrace ())
      end;
      let old = Atomic.fetch_and_add task.remaining (lo - hi) in
      if old - (hi - lo) = 0 then begin
        Mutex.lock task.task_lock;
        task.finished <- true;
        Condition.broadcast task.done_cond;
        Mutex.unlock task.task_lock
      end
    end
  done;
  flag := was

let worker pool () =
  let last_gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.lock;
    while (not pool.shutdown) && pool.generation = !last_gen do
      Condition.wait pool.work_cond pool.lock
    done;
    if pool.shutdown then begin
      Mutex.unlock pool.lock;
      running := false
    end
    else begin
      last_gen := pool.generation;
      let t = pool.current in
      Mutex.unlock pool.lock;
      match t with Some task -> participate task | None -> ()
    end
  done

let clamp_domains d = max 1 (min 128 d)

let create ?domains () =
  let requested =
    match domains with
    | Some d -> d
    | None -> Domain.recommended_domain_count ()
  in
  let pool_size = clamp_domains requested in
  let pool =
    {
      pool_size;
      workers = [||];
      lock = Mutex.create ();
      work_cond = Condition.create ();
      submit_lock = Mutex.create ();
      current = None;
      generation = 0;
      shutdown = false;
    }
  in
  pool.workers <- Array.init (pool_size - 1) (fun _ -> Domain.spawn (worker pool));
  pool

let teardown pool =
  Mutex.lock pool.lock;
  let already = pool.shutdown in
  pool.shutdown <- true;
  Condition.broadcast pool.work_cond;
  Mutex.unlock pool.lock;
  if not already then Array.iter Domain.join pool.workers;
  pool.workers <- [||]

(* --- default pool ------------------------------------------------------ *)

let forced_default : int option ref = ref None

(* Lower-priority default installed by the engine layer (which owns all
   environment parsing); [forced_default] — set_default_domains and
   with_domains — still wins. *)
let baseline_default : int option ref = ref None

let default_domains () =
  match !forced_default with
  | Some d -> d
  | None -> (
    match !baseline_default with
    | Some d -> d
    | None -> clamp_domains (Domain.recommended_domain_count ()))

let default_pool : t option ref = ref None

let at_exit_installed = ref false

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
    let p = create ~domains:(default_domains ()) () in
    default_pool := Some p;
    if not !at_exit_installed then begin
      at_exit_installed := true;
      at_exit (fun () ->
          match !default_pool with
          | Some p ->
            default_pool := None;
            teardown p
          | None -> ())
    end;
    p

let set_default_domains d =
  (match !default_pool with
  | Some p ->
    default_pool := None;
    teardown p
  | None -> ());
  forced_default := Some (clamp_domains d)

let set_baseline_domains d =
  (* Only tear the pool down when the baseline is actually in charge; while
     a forced size is active (e.g. inside with_domains) the live pool stays
     untouched and the baseline takes effect after the force is released. *)
  (match (!default_pool, !forced_default) with
  | Some p, None ->
    default_pool := None;
    teardown p
  | _ -> ());
  baseline_default := Some (clamp_domains d)

let with_domains d f =
  let saved = !forced_default in
  set_default_domains d;
  Fun.protect
    ~finally:(fun () ->
      (match !default_pool with
      | Some p ->
        default_pool := None;
        teardown p
      | None -> ());
      forced_default := saved)
    f

(* --- submission --------------------------------------------------------- *)

let default_threshold = 32

let resolve_pool = function Some p -> p | None -> default ()

let run ?pool ?chunk ?(threshold = default_threshold) ~n body =
  if n > 0 then begin
    let serial () = body 0 n in
    if n <= max 1 threshold || !(Domain.DLS.get in_worker) then serial ()
    else begin
      let p = resolve_pool pool in
      if p.pool_size = 1 || p.shutdown then serial ()
      else begin
        let chunk =
          match chunk with
          | Some c -> max 1 c
          | None ->
            (* ~4 chunks per participant keeps dynamic claiming balanced
               without shredding the range. *)
            max 1 ((n + (4 * p.pool_size) - 1) / (4 * p.pool_size))
        in
        let task =
          {
            body;
            n;
            chunk;
            next = Atomic.make 0;
            remaining = Atomic.make n;
            failed = Atomic.make false;
            exn = None;
            task_lock = Mutex.create ();
            done_cond = Condition.create ();
            finished = false;
          }
        in
        Mutex.lock p.submit_lock;
        Mutex.lock p.lock;
        p.generation <- p.generation + 1;
        p.current <- Some task;
        Condition.broadcast p.work_cond;
        Mutex.unlock p.lock;
        participate task;
        Mutex.lock task.task_lock;
        while not task.finished do
          Condition.wait task.done_cond task.task_lock
        done;
        Mutex.unlock task.task_lock;
        Mutex.lock p.lock;
        p.current <- None;
        Mutex.unlock p.lock;
        Mutex.unlock p.submit_lock;
        match task.exn with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ()
      end
    end
  end

let parallel_for ?pool ?chunk ?threshold ~n f =
  run ?pool ?chunk ?threshold ~n (fun lo hi ->
      for i = lo to hi - 1 do
        f i
      done)

let parallel_init ?pool ?chunk ?threshold n f =
  if n <= 0 then [||]
  else begin
    let first = f 0 in
    let out = Array.make n first in
    run ?pool ?chunk ?threshold ~n:(n - 1) (fun lo hi ->
        for i = lo to hi - 1 do
          out.(i + 1) <- f (i + 1)
        done);
    out
  end

let parallel_map ?pool ?chunk ?threshold f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let first = f a.(0) in
    let out = Array.make n first in
    run ?pool ?chunk ?threshold ~n:(n - 1) (fun lo hi ->
        for i = lo to hi - 1 do
          out.(i + 1) <- f a.(i + 1)
        done);
    out
  end

let fold_chunks ?pool ?chunk ?threshold ~n ~init ~body ~combine () =
  if n <= 0 then init
  else begin
    (* Chunk geometry is a function of n (and the explicit chunk) only, so
       the combine order below is identical for every pool size. *)
    let chunk =
      match chunk with Some c -> max 1 c | None -> max 1 ((n + 63) / 64)
    in
    let nchunks = (n + chunk - 1) / chunk in
    let parts = Array.make nchunks None in
    run ?pool ~chunk:1 ?threshold ~n:nchunks (fun clo chi ->
        for c = clo to chi - 1 do
          let lo = c * chunk in
          let hi = min (lo + chunk) n in
          parts.(c) <- Some (body lo hi)
        done);
    Array.fold_left
      (fun acc part -> match part with Some v -> combine acc v | None -> acc)
      init parts
  end
