(* Work-stealing Domain pool.

   Submission statically slices [0, n) into one packed (lo, hi) range per
   participant, each held in a single atomic int. Owners CAS-claim [grain]
   indices from the bottom of their own range; participants that run dry
   CAS-steal the top half of a victim's range and install it as their new
   own range (Rayon-style splitting). Publication is an epoch counter:
   workers spin on it for a bounded budget, then park on a condition
   variable guarded by a parked-count handshake, so the submit hot path of
   a busy pipeline is one atomic increment — no mutex, no broadcast. The
   submitter participates too, so a pool of size 1 degenerates to a plain
   loop and progress never depends on workers waking up at all. *)

module Arena = Nocap_vec.Arena

(* --- packed ranges ------------------------------------------------------ *)

(* A half-open range [lo, hi) packed as (lo lsl 31) lor hi, both < 2^31.
   Empty iff lo >= hi. Within one job every index is claimed exactly once
   and installs only land in empty slots, so a non-empty packed value never
   repeats — CAS on the raw int is ABA-free. *)

let range_bits = 31
let range_mask = (1 lsl range_bits) - 1
let pack lo hi = (lo lsl range_bits) lor hi
let range_lo r = r lsr range_bits
let range_hi r = r land range_mask

(* Largest [n] a single job can cover; bigger loops run in segments. *)
let max_segment = range_mask

(* --- cooperative cancellation ------------------------------------------- *)

(* A cancel token is one atomic flag shared between a controller (a service
   watchdog, a signal handler) and the kernels doing work on its behalf.
   Kernels never poll the token directly: the ambient token travels with
   the submitting domain via DLS, is re-installed inside every worker chunk,
   and [check] raises {!Cancelled} at the next chunk boundary. Cancellation
   is therefore cooperative and prompt-at-grain-granularity: a claimed chunk
   always runs to completion, everything after it fast-drains through the
   pool's existing failure path. *)
module Cancel = struct
  type token = { flag : bool Atomic.t; mutable why : string }

  exception Cancelled of string

  let create () = { flag = Atomic.make false; why = "cancelled" }

  let cancel ?(reason = "cancelled") t =
    if not (Atomic.get t.flag) then begin
      (* Plain write published by the atomic set below; a second concurrent
         cancel can only race the informational string, never the flag. *)
      t.why <- reason;
      Atomic.set t.flag true
    end

  let is_cancelled t = Atomic.get t.flag
  let reason t = t.why

  let ambient : token option ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref None)

  let current () = !(Domain.DLS.get ambient)

  let with_token tok f =
    let r = Domain.DLS.get ambient in
    let saved = !r in
    r := Some tok;
    Fun.protect ~finally:(fun () -> r := saved) f

  let raise_if_cancelled t = if Atomic.get t.flag then raise (Cancelled t.why)

  let check () =
    match !(Domain.DLS.get ambient) with
    | Some t -> raise_if_cancelled t
    | None -> ()
end

(* --- jobs --------------------------------------------------------------- *)

type job = {
  body : int -> int -> unit; (* half-open chunk [lo, hi) *)
  cancel : Cancel.token option; (* submitter's ambient token, checked per chunk *)
  grain : int;
  slots : int Atomic.t array; (* one packed range per participant, strided *)
  remaining : int Atomic.t; (* indices not yet retired *)
  failed : bool Atomic.t;
  mutable exn : (exn * Printexc.raw_backtrace) option;
  exn_lock : Mutex.t;
  waiter : int Atomic.t; (* 1 while the submitter sleeps on completion *)
  done_lock : Mutex.t;
  done_cond : Condition.t;
}

(* Adjacent atomics share cache lines; striding the slot array keeps each
   participant's range ~64B from its neighbours' (atomic blocks are two
   words, allocated back to back). *)
let slot_stride = 4

let slot slots i = Array.unsafe_get slots (i * slot_stride)

type t = {
  pool_size : int;
  mutable workers : unit Domain.t array;
  epoch : int Atomic.t; (* bumped once per published job *)
  current : job option Atomic.t;
  parked : int Atomic.t; (* workers asleep on park_cond *)
  park_lock : Mutex.t;
  park_cond : Condition.t;
  submit_lock : Mutex.t; (* serializes top-level submissions *)
  shutdown : bool Atomic.t;
}

let size p = p.pool_size

(* --- spin policy -------------------------------------------------------- *)

(* cpu_relax iterations per microsecond of spin budget — deliberately
   conservative so a misconfigured budget overshoots rather than parks
   early. *)
let relax_per_us = 40

(* -1 = unset, use the built-in default: park immediately on single-core
   hosts (spinning there only steals cycles from whoever has the work),
   spin 20µs otherwise. *)
let spin_override = Atomic.make (-1)

let default_spin_us = if Domain.recommended_domain_count () <= 1 then 0 else 20

let spin_us () =
  let v = Atomic.get spin_override in
  if v < 0 then default_spin_us else v

let set_spin_us v = Atomic.set spin_override (if v < 0 then -1 else v)

let spin_iters () = spin_us () * relax_per_us

(* --- grain -------------------------------------------------------------- *)

(* One claimed chunk should amortize ~50µs of work: long enough that claim
   CASes and steal traffic vanish in the noise, short enough that a 4-way
   split still load-balances a millisecond-scale kernel. *)
let target_chunk_ns = 50_000

let grain_of_ns cost = max 1 (target_chunk_ns / max 1 cost)

(* Serial cutoff when the caller gave no cost hint. *)
let default_serial_cutoff = 64

(* True while the current domain is executing chunks of some task; nested
   submissions from such a domain run serially instead of deadlocking on
   the single job slot. *)
let in_worker : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

(* --- participation ------------------------------------------------------ *)

let record_exn job e bt =
  Mutex.lock job.exn_lock;
  if job.exn = None then job.exn <- Some (e, bt);
  Mutex.unlock job.exn_lock;
  Atomic.set job.failed true

(* Run one claimed chunk and retire its indices. The last retirer wakes the
   submitter only if it actually went to sleep (waiter handshake mirrors
   the park handshake; both are safe under OCaml's SC atomics). *)
let exec job lo hi =
  (if not (Atomic.get job.failed) then
     try
       match job.cancel with
       | Some tok ->
         Cancel.raise_if_cancelled tok;
         Arena.with_frame (fun () ->
             Cancel.with_token tok (fun () -> job.body lo hi))
       | None -> Arena.with_frame (fun () -> job.body lo hi)
     with e -> record_exn job e (Printexc.get_raw_backtrace ()));
  let old = Atomic.fetch_and_add job.remaining (lo - hi) in
  if old - (hi - lo) = 0 && Atomic.get job.waiter > 0 then begin
    Mutex.lock job.done_lock;
    Condition.broadcast job.done_cond;
    Mutex.unlock job.done_lock
  end

(* Claim up to [grain] indices from the bottom of our own range. Only
   thieves contend with the owner, so the CAS almost always lands first
   try. After a failure the whole range is claimed at once and drained
   without running the body — the submitter re-raises anyway. *)
let rec claim_own job me =
  let s = slot job.slots me in
  let r = Atomic.get s in
  let lo = range_lo r and hi = range_hi r in
  if lo >= hi then false
  else begin
    let take = if Atomic.get job.failed then hi - lo else min job.grain (hi - lo) in
    let mid = lo + take in
    if Atomic.compare_and_set s r (pack mid hi) then begin
      exec job lo mid;
      true
    end
    else claim_own job me
  end

(* Steal from a victim's range and install the spoils as our own range (our
   slot is empty whenever this runs). Big ranges split in half; ranges at or
   below one grain are taken whole — a static slice must never strand in
   the slot of a worker the OS hasn't scheduled yet, or the submitter could
   sleep forever on an oversubscribed host. *)
let try_steal job me victim =
  let s = slot job.slots victim in
  let r = Atomic.get s in
  let lo = range_lo r and hi = range_hi r in
  if lo >= hi then false
  else begin
    let mid = if hi - lo <= job.grain then lo else lo + ((hi - lo) / 2) in
    if Atomic.compare_and_set s r (pack lo mid) then begin
      Atomic.set (slot job.slots me) (pack mid hi);
      true
    end
    else false
  end

let steal_round job me nslots =
  let got = ref false in
  let v = ref (me + 1) in
  let tries = ref (nslots - 1) in
  while (not !got) && !tries > 0 do
    let victim = if !v >= nslots then !v - nslots else !v in
    if try_steal job me victim then got := true;
    incr v;
    decr tries
  done;
  !got

(* After this many consecutive empty scans a participant gives up on the
   job: every unretired index is then either inside another participant's
   running [exec] or in the slot of an active owner that will drain it, so
   there is nothing left to help with. The submitter then sleeps in
   [wait_done] (woken by the last retirer) instead of burning a core. *)
let steal_patience = 64

let participate job me nslots =
  let flag = Domain.DLS.get in_worker in
  let was = !flag in
  flag := true;
  let misses = ref 0 in
  let continue = ref true in
  while !continue do
    if claim_own job me then misses := 0
    else if Atomic.get job.remaining = 0 then continue := false
    else if nslots > 1 && steal_round job me nslots then misses := 0
    else begin
      incr misses;
      if !misses > steal_patience then continue := false
      else Domain.cpu_relax ()
    end
  done;
  flag := was

(* Submitter-side completion wait: spin briefly (the common case — workers
   are retiring their last chunk), then sleep under the waiter handshake.
   The last retirer reads [waiter] after writing [remaining]; we write
   [waiter] before re-reading [remaining], so under SC atomics at least one
   side always sees the other. *)
let wait_done job =
  if Atomic.get job.remaining > 0 then begin
    let budget = spin_iters () in
    let i = ref 0 in
    while !i < budget && Atomic.get job.remaining > 0 do
      Domain.cpu_relax ();
      incr i
    done;
    if Atomic.get job.remaining > 0 then begin
      Atomic.set job.waiter 1;
      Mutex.lock job.done_lock;
      while Atomic.get job.remaining > 0 do
        Condition.wait job.done_cond job.done_lock
      done;
      Mutex.unlock job.done_lock;
      Atomic.set job.waiter 0
    end
  end

(* --- workers ------------------------------------------------------------ *)

let worker pool me () =
  let last = ref (Atomic.get pool.epoch) in
  while not (Atomic.get pool.shutdown) do
    let e = Atomic.get pool.epoch in
    if e <> !last then begin
      last := e;
      match Atomic.get pool.current with
      | Some job -> participate job me pool.pool_size
      | None -> ()
    end
    else begin
      (* Spin-then-park. The parked count is written before re-checking the
         epoch under the lock; the submitter bumps the epoch before reading
         the parked count — so either we see the new epoch and skip the
         wait, or the submitter sees us parked and broadcasts. *)
      let budget = spin_iters () in
      let i = ref 0 in
      while !i < budget && Atomic.get pool.epoch = e && not (Atomic.get pool.shutdown) do
        Domain.cpu_relax ();
        incr i
      done;
      if Atomic.get pool.epoch = e && not (Atomic.get pool.shutdown) then begin
        Atomic.incr pool.parked;
        Mutex.lock pool.park_lock;
        while Atomic.get pool.epoch = e && not (Atomic.get pool.shutdown) do
          Condition.wait pool.park_cond pool.park_lock
        done;
        Mutex.unlock pool.park_lock;
        Atomic.decr pool.parked
      end
    end
  done

let clamp_domains d = max 1 (min 128 d)

let create ?domains () =
  let requested =
    match domains with
    | Some d -> d
    | None -> Domain.recommended_domain_count ()
  in
  let pool_size = clamp_domains requested in
  let pool =
    {
      pool_size;
      workers = [||];
      epoch = Atomic.make 0;
      current = Atomic.make None;
      parked = Atomic.make 0;
      park_lock = Mutex.create ();
      park_cond = Condition.create ();
      submit_lock = Mutex.create ();
      shutdown = Atomic.make false;
    }
  in
  pool.workers <- Array.init (pool_size - 1) (fun i -> Domain.spawn (worker pool (i + 1)));
  pool

let teardown pool =
  let already = Atomic.exchange pool.shutdown true in
  Mutex.lock pool.park_lock;
  Condition.broadcast pool.park_cond;
  Mutex.unlock pool.park_lock;
  if not already then Array.iter Domain.join pool.workers;
  pool.workers <- [||]

(* --- default pool ------------------------------------------------------ *)

let forced_default : int option ref = ref None

(* Lower-priority default installed by the engine layer (which owns all
   environment parsing); [forced_default] — set_default_domains and
   with_domains — still wins. *)
let baseline_default : int option ref = ref None

let default_domains () =
  match !forced_default with
  | Some d -> d
  | None -> (
    match !baseline_default with
    | Some d -> d
    | None -> clamp_domains (Domain.recommended_domain_count ()))

let default_pool : t option ref = ref None

let at_exit_installed = ref false

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
    let p = create ~domains:(default_domains ()) () in
    default_pool := Some p;
    if not !at_exit_installed then begin
      at_exit_installed := true;
      at_exit (fun () ->
          match !default_pool with
          | Some p ->
            default_pool := None;
            teardown p
          | None -> ())
    end;
    p

let set_default_domains d =
  (match !default_pool with
  | Some p ->
    default_pool := None;
    teardown p
  | None -> ());
  forced_default := Some (clamp_domains d)

let set_baseline_domains d =
  (* Only tear the pool down when the baseline is actually in charge; while
     a forced size is active (e.g. inside with_domains) the live pool stays
     untouched and the baseline takes effect after the force is released. *)
  (match (!default_pool, !forced_default) with
  | Some p, None ->
    default_pool := None;
    teardown p
  | _ -> ());
  baseline_default := Some (clamp_domains d)

let with_domains d f =
  let saved = !forced_default in
  set_default_domains d;
  Fun.protect
    ~finally:(fun () ->
      (match !default_pool with
      | Some p ->
        default_pool := None;
        teardown p
      | None -> ());
      forced_default := saved)
    f

(* --- submission --------------------------------------------------------- *)

let resolve_pool = function Some p -> p | None -> default ()

(* The serial fallback honours the ambient cancel token with the same
   chunk-boundary promptness as the pool path: with a token installed the
   loop runs in bounded slices and re-checks between them, so a size-1 pool
   or a nested call cannot outlive its deadline by a whole kernel. *)
let serial_cancel_slice = 4096

let serial_run body n =
  match Cancel.current () with
  | None -> Arena.with_frame (fun () -> body 0 n)
  | Some tok ->
    Cancel.raise_if_cancelled tok;
    let pos = ref 0 in
    while !pos < n do
      let hi = min n (!pos + serial_cancel_slice) in
      Arena.with_frame (fun () -> body !pos hi);
      pos := hi;
      Cancel.raise_if_cancelled tok
    done

(* One job over [0, n), n <= max_segment. Static slices seed the slots;
   stealing rebalances from there, so a slice that finishes early never
   idles while a neighbour lags. *)
let submit p grain ~n body =
  let nslots = p.pool_size in
  let slots =
    Array.init (nslots * slot_stride) (fun i ->
        if i mod slot_stride <> 0 then Atomic.make 0
        else begin
          let me = i / slot_stride in
          let lo = me * n / nslots and hi = (me + 1) * n / nslots in
          Atomic.make (pack lo hi)
        end)
  in
  let job =
    {
      body;
      cancel = Cancel.current ();
      grain;
      slots;
      remaining = Atomic.make n;
      failed = Atomic.make false;
      exn = None;
      exn_lock = Mutex.create ();
      waiter = Atomic.make 0;
      done_lock = Mutex.create ();
      done_cond = Condition.create ();
    }
  in
  Mutex.lock p.submit_lock;
  Atomic.set p.current (Some job);
  Atomic.incr p.epoch;
  (* Wake parked workers only when someone is actually parked: a hot
     pipeline of back-to-back submits keeps workers spinning and never
     touches the lock. *)
  if Atomic.get p.parked > 0 then begin
    Mutex.lock p.park_lock;
    Condition.broadcast p.park_cond;
    Mutex.unlock p.park_lock
  end;
  participate job 0 nslots;
  wait_done job;
  Atomic.set p.current None;
  Mutex.unlock p.submit_lock;
  match job.exn with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let run ?pool ?grain ~n body =
  if n > 0 then begin
    let cutoff = match grain with Some g -> 2 * max 1 g | None -> default_serial_cutoff in
    if n < cutoff || !(Domain.DLS.get in_worker) then serial_run body n
    else begin
      let p = resolve_pool pool in
      if p.pool_size = 1 || Atomic.get p.shutdown then serial_run body n
      else begin
        let grain =
          match grain with
          | Some g -> max 1 g
          | None -> max 1 (n / (16 * p.pool_size))
        in
        if n <= max_segment then submit p grain ~n body
        else begin
          (* Ranges pack into 31 bits; astronomically large loops run as a
             sequence of segment-local jobs. *)
          let seg = ref 0 in
          while !seg < n do
            let len = min max_segment (n - !seg) in
            let base = !seg in
            submit p grain ~n:len (fun lo hi -> body (base + lo) (base + hi));
            seg := !seg + len
          done
        end
      end
    end
  end

let parallel_for ?pool ?grain ~n f =
  run ?pool ?grain ~n (fun lo hi ->
      for i = lo to hi - 1 do
        f i
      done)

let parallel_init ?pool ?grain n f =
  if n <= 0 then [||]
  else begin
    let first = f 0 in
    let out = Array.make n first in
    run ?pool ?grain ~n:(n - 1) (fun lo hi ->
        for i = lo to hi - 1 do
          out.(i + 1) <- f (i + 1)
        done);
    out
  end

let parallel_map ?pool ?grain f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let first = f a.(0) in
    let out = Array.make n first in
    run ?pool ?grain ~n:(n - 1) (fun lo hi ->
        for i = lo to hi - 1 do
          out.(i + 1) <- f a.(i + 1)
        done);
    out
  end

let fold_chunks ?pool ?chunk ?grain ~n ~init ~body ~combine () =
  if n <= 0 then init
  else begin
    (* Chunk geometry is a function of n (and the explicit chunk) only, so
       the combine order below is identical for every pool size and grain. *)
    let chunk =
      match chunk with Some c -> max 1 c | None -> max 1 ((n + 63) / 64)
    in
    let nchunks = (n + chunk - 1) / chunk in
    let parts = Array.make nchunks None in
    let run_chunks clo chi =
      for c = clo to chi - 1 do
        Cancel.check ();
        let lo = c * chunk in
        let hi = min (lo + chunk) n in
        parts.(c) <- Some (body lo hi)
      done
    in
    (* Grain arrives in items; convert to whole chunks per claim. The serial
       crossover is checked in items too, before the chunk-count reduction,
       so a cost-calibrated grain means the same thing here as in run. *)
    (match grain with
    | Some g when n < 2 * max 1 g -> Arena.with_frame (fun () -> run_chunks 0 nchunks)
    | _ ->
      let grain_chunks = Option.map (fun g -> max 1 (g / chunk)) grain in
      run ?pool ?grain:grain_chunks ~n:nchunks run_chunks);
    Array.fold_left
      (fun acc part -> match part with Some v -> combine acc v | None -> acc)
      init parts
  end
