(** Work-stealing Domain pool for the prover hot paths.

    Persistent worker domains (sized from {!set_baseline_domains} — the
    engine layer installs [NOCAP_DOMAINS] there — or
    {!Domain.recommended_domain_count}) execute chunked index ranges on
    behalf of a submitting domain, which also participates. The pool is the
    software analogue of NoCap's vector lanes: every converted kernel
    (Merkle hashing, row-wise encoding, sumcheck rounds, Pippenger windows)
    is an embarrassingly parallel loop over disjoint output slots.

    {b Scheduling.} Submission statically slices [\[0, n)] into one packed
    lock-free range per participant; owners claim [grain] indices at a time
    from the bottom of their range, idle participants steal the top half of
    a victim's range (Rayon-style splitting), so imbalance self-corrects
    without a shared queue. The submit hot path is a single atomic epoch
    bump — parked workers are woken only when the parked count says someone
    is actually asleep, and workers spin ({!Domain.cpu_relax}) for a short
    budget before parking, so back-to-back kernel launches never touch a
    mutex. See DESIGN.md Sec. 12.

    {b Grain.} [?grain] is the per-claim chunk size, calibrated so one claim
    amortizes ≥ ~50µs of work ({!grain_of_ns} maps a per-item cost estimate
    to a grain). Inputs below the crossover ([n < 2 * grain]) run serially
    in the caller — dispatch is never paid where it cannot win.

    {b Arenas.} Every claimed chunk (and the serial fallback) runs inside
    {!Nocap_vec.Arena.with_frame}, so bodies may allocate domain-local
    scratch freely and never contend on a shared heap.

    {b Determinism contract.} Results are byte-identical for every domain
    count, including 1, because (a) all parallelised bodies write disjoint
    array slots or combine exact field/group elements, and (b)
    {!fold_chunks} fixes its chunk boundaries and combine order as a pure
    function of [n] and [chunk] — never of the pool size, the grain, or of
    scheduling. The serial fallback (pool of size 1, [n] below the
    crossover, or a nested call from inside a worker) runs the same chunk
    decomposition in order. *)

type t
(** A pool handle. The submitting domain counts towards the size, so a pool
    of size [k] spawns [k - 1] worker domains. *)

(** Cooperative cancellation tokens, checked at kernel chunk boundaries.

    A controller (service watchdog, signal handler, test harness) creates a
    token, the proving code runs under {!Cancel.with_token}, and every pool
    chunk — plus explicit {!Cancel.check} calls in streaming loops —
    re-raises {!Cancel.Cancelled} once the token trips. The token is
    ambient: {!with_token} installs it in domain-local storage, submission
    captures it into the job, and each worker chunk re-installs it, so
    nested kernels and the serial fallback observe the same token without
    threading it through every API. Cancellation is prompt at grain
    granularity — a claimed chunk finishes, the rest of the job fast-drains
    through the pool's failure path and the pool stays reusable. *)
module Cancel : sig
  type token

  exception Cancelled of string
  (** Raised (carrying the cancel reason) in the domain that owns the
      computation; workers never leak it. *)

  val create : unit -> token

  val cancel : ?reason:string -> token -> unit
  (** Trip the token. Idempotent; the first caller's [reason] (default
      ["cancelled"]) is the one reported. Safe from any domain and from
      signal handlers. *)

  val is_cancelled : token -> bool
  val reason : token -> string

  val with_token : token -> (unit -> 'a) -> 'a
  (** Run a thunk with the token installed as the current domain's ambient
      token (restored afterwards, exceptions included). *)

  val current : unit -> token option
  (** The ambient token of the calling domain, if any. *)

  val check : unit -> unit
  (** Raise [Cancelled] iff the ambient token is tripped; a cheap no-op
      otherwise. Streaming kernels call this at block boundaries. *)
end

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns a pool of the given total size (default:
    {!default_domains}[ ()]), clamped to [\[1, 128\]]. A pool of size 1
    spawns no domains and runs everything serially. *)

val size : t -> int

val teardown : t -> unit
(** Join all worker domains. The pool must not be used afterwards; calling
    [teardown] twice is harmless. *)

val default_domains : unit -> int
(** Size used for the shared default pool: the forced size if one is active
    ({!set_default_domains} / {!with_domains}), else the baseline from
    {!set_baseline_domains}, else [Domain.recommended_domain_count ()].
    This module reads no environment variables itself; the engine layer
    ([Zk_pcs.Engine.Config]) parses [NOCAP_DOMAINS] and installs it as the
    baseline. *)

val default : unit -> t
(** The shared default pool, created on first use and torn down via
    [at_exit]. All converted library hot paths submit here unless handed an
    explicit pool. *)

val set_default_domains : int -> unit
(** Tear down the current default pool (if any) and recreate it with the
    given size on next use. Intended for benchmarks and tests that sweep
    domain counts inside one process. *)

val set_baseline_domains : int -> unit
(** Install a low-priority default size, used only when no forced size is
    active. Tears down an unforced live default pool so the new size takes
    effect on next use; a forced pool (inside {!with_domains}) is left
    running and picks the baseline up once the force is released. *)

val with_domains : int -> (unit -> 'a) -> 'a
(** [with_domains k f] runs [f] with the default pool resized to [k],
    restoring the previous size afterwards (even on exceptions). *)

val set_spin_us : int -> unit
(** Spin budget (microseconds of {!Domain.cpu_relax}) an idle worker burns
    before parking on the OS, and the submitter burns before sleeping on
    job completion. [0] parks immediately — right for oversubscribed or
    single-core hosts. Negative values reset to the built-in default
    (0 when [Domain.recommended_domain_count () <= 1], else 20). The engine
    layer installs [NOCAP_SPIN_US] here. *)

val spin_us : unit -> int
(** The spin budget currently in effect. *)

val grain_of_ns : int -> int
(** [grain_of_ns cost] is the grain that makes one claimed chunk amortize
    ~50µs of work for a body costing [cost] nanoseconds per index:
    [max 1 (50_000 / max 1 cost)]. Kernels pass measured-once cost
    constants; see DESIGN.md Sec. 12 for the calibration table. *)

val run : ?pool:t -> ?grain:int -> n:int -> (int -> int -> unit) -> unit
(** [run ~grain ~n body] executes [body lo hi] over half-open chunks
    covering [\[0, n)]. Chunks are claimed and stolen dynamically, so
    [body] must only write state disjoint per index (or commute exactly).
    [grain] is the per-claim chunk length (default [max 1 (n / (16 * size))]
    with a serial cutoff of 64); [n < 2 * grain] short-circuits to
    [body 0 n] in the calling domain. Every chunk runs inside an
    {!Nocap_vec.Arena.with_frame}. The first exception raised by any
    participant is re-raised in the submitting domain after all chunks
    complete. Nested calls from inside a worker run serially. *)

val parallel_for : ?pool:t -> ?grain:int -> n:int -> (int -> unit) -> unit
(** Per-index variant of {!run}. *)

val parallel_init : ?pool:t -> ?grain:int -> int -> (int -> 'a) -> 'a array
(** Parallel [Array.init]. [f 0] runs first in the submitting domain (to
    seed the result array), the rest in parallel. *)

val parallel_map : ?pool:t -> ?grain:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map], same evaluation structure as {!parallel_init}. *)

val fold_chunks :
  ?pool:t ->
  ?chunk:int ->
  ?grain:int ->
  n:int ->
  init:'acc ->
  body:(int -> int -> 'part) ->
  combine:('acc -> 'part -> 'acc) ->
  unit ->
  'acc
(** Chunked parallel reduction: [body lo hi] produces a partial result per
    chunk; partials are combined {e in chunk order} starting from [init].
    Chunk boundaries depend only on [n] and [chunk] (default
    [max 1 (ceil (n / 64))]), so the reduction tree is identical for every
    domain count — this is what makes reductions over inexact operations
    deterministic too. [grain] is still in {e items}: participants claim
    [max 1 (grain / chunk)] chunks at a time, and [n < 2 * grain] falls
    back to a serial loop over the same chunk sequence. *)
