module type FIELD = sig
  type t

  val zero : t
  val one : t
  val equal : t -> t -> bool
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val inv : t -> t
  val of_int : int -> t
  val two_adicity : int
  val root_of_unity : int -> t
end

module type S = sig
  type elt
  type plan

  val plan : int -> plan
  val size : plan -> int
  val forward : plan -> elt array -> unit
  val inverse : plan -> elt array -> unit
  val forward_copy : plan -> elt array -> elt array
  val inverse_copy : plan -> elt array -> elt array
  val forward_rows : plan -> elt array array -> unit
  val four_step_forward : rows:int -> cols:int -> elt array -> elt array
  val butterfly_count : int -> int
end

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2_exact n =
  if not (is_pow2 n) then invalid_arg "Ntt: size must be a power of two";
  let rec go k m = if m = 1 then k else go (k + 1) (m lsr 1) in
  go 0 n

module Pool = Nocap_parallel.Pool

module Make (F : FIELD) : S with type elt = F.t = struct
  type elt = F.t

  type plan = {
    n : int;
    log_n : int;
    twiddles : F.t array; (* w^0 .. w^(n/2-1) for the primitive n-th root w *)
    inv_twiddles : F.t array;
    n_inv : F.t;
  }

  let plans : (int, plan) Hashtbl.t = Hashtbl.create 16

  (* Plans are demanded from worker domains (e.g. the expander code's
     base-case Reed-Solomon encodes inside a batched encode), so the cache
     needs a lock; a plan itself is immutable after construction. *)
  let plans_lock = Mutex.create ()

  let make_plan n =
    let log_n = log2_exact n in
    if log_n > F.two_adicity then invalid_arg "Ntt.plan: size exceeds 2-adicity";
    let w = F.root_of_unity log_n in
    let w_inv = F.inv w in
    let half = max 1 (n / 2) in
    let twiddles = Array.make half F.one in
    let inv_twiddles = Array.make half F.one in
    for i = 1 to half - 1 do
      twiddles.(i) <- F.mul twiddles.(i - 1) w;
      inv_twiddles.(i) <- F.mul inv_twiddles.(i - 1) w_inv
    done;
    { n; log_n; twiddles; inv_twiddles; n_inv = F.inv (F.of_int n) }

  let plan n =
    Mutex.lock plans_lock;
    match Hashtbl.find_opt plans n with
    | Some p ->
      Mutex.unlock plans_lock;
      p
    | None ->
      Mutex.unlock plans_lock;
      let p = make_plan n in
      Mutex.lock plans_lock;
      (* Another domain may have raced us; keep whichever landed first so
         every caller shares one plan per size. *)
      let p =
        match Hashtbl.find_opt plans n with
        | Some q -> q
        | None ->
          Hashtbl.add plans n p;
          p
      in
      Mutex.unlock plans_lock;
      p

  (* Four-step scale bases w^r (w the primitive (rows*cols)-th root), cached
     per shape: previously recomputed via [root_of_unity] + a serial power
     chain on every call. Same race-tolerant locking discipline as [plan]. *)
  let scale_tables : (int * int, F.t array) Hashtbl.t = Hashtbl.create 8

  let scale_lock = Mutex.create ()

  let make_scale_rows ~rows ~cols =
    let w = F.root_of_unity (log2_exact (rows * cols)) in
    let w_rows = Array.make rows F.one in
    for r = 1 to rows - 1 do
      w_rows.(r) <- F.mul w_rows.(r - 1) w
    done;
    w_rows

  let scale_rows ~rows ~cols =
    let key = (rows, cols) in
    Mutex.lock scale_lock;
    match Hashtbl.find_opt scale_tables key with
    | Some t ->
      Mutex.unlock scale_lock;
      t
    | None ->
      Mutex.unlock scale_lock;
      let t = make_scale_rows ~rows ~cols in
      Mutex.lock scale_lock;
      let t =
        match Hashtbl.find_opt scale_tables key with
        | Some u -> u
        | None ->
          Hashtbl.add scale_tables key t;
          t
      in
      Mutex.unlock scale_lock;
      t

  let size p = p.n

  let bit_reverse_permute a =
    let n = Array.length a in
    let log_n = log2_exact n in
    for i = 0 to n - 1 do
      (* Reverse the low log_n bits of i. *)
      let rec rev acc k x =
        if k = 0 then acc else rev ((acc lsl 1) lor (x land 1)) (k - 1) (x lsr 1)
      in
      let j = rev 0 log_n i in
      if j > i then begin
        let t = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- t
      end
    done

  (* Butterfly loop with unsafe accesses: the length check above pins
     [Array.length a = n]; inside, [k + j + half <= k + len - 1 < n] (the
     outer while stops at k = n) and [j * stride <= (half - 1) * n / len
     < n / 2], so every index is in bounds. *)
  let transform twiddles p a =
    let n = p.n in
    if Array.length a <> n then invalid_arg "Ntt: array length mismatch";
    bit_reverse_permute a;
    let len = ref 2 in
    while !len <= n do
      let half = !len / 2 in
      let stride = n / !len in
      let k = ref 0 in
      while !k < n do
        for j = 0 to half - 1 do
          let w = Array.unsafe_get twiddles (j * stride) in
          let u = Array.unsafe_get a (!k + j) in
          let t = F.mul w (Array.unsafe_get a (!k + j + half)) in
          Array.unsafe_set a (!k + j) (F.add u t);
          Array.unsafe_set a (!k + j + half) (F.sub u t)
        done;
        k := !k + !len
      done;
      len := !len * 2
    done

  let forward p a = transform p.twiddles p a

  let inverse p a =
    transform p.inv_twiddles p a;
    for i = 0 to p.n - 1 do
      a.(i) <- F.mul a.(i) p.n_inv
    done

  let forward_copy p a =
    let b = Array.copy a in
    forward p b;
    b

  let inverse_copy p a =
    let b = Array.copy a in
    inverse p b;
    b

  (* Pool grains from the butterfly count: a boxed butterfly costs ~25ns
     (more for Fr — grains only get coarser, which is safe), scale/copy
     passes ~20ns and ~5ns per element. *)
  let bf_ns = 25

  let ntt_grain m = Pool.grain_of_ns (max 1 (m / 2 * log2_exact m * bf_ns))

  (* Row-wise batch: each row is an independent in-place transform, the
     per-row decomposition both Orion's encoder and the four-step NTT
     parallelize over. Results are byte-identical for any domain count. *)
  let forward_rows p rows =
    Pool.parallel_for ~grain:(ntt_grain p.n) ~n:(Array.length rows) (fun r -> forward p rows.(r))

  let four_step_forward ~rows ~cols a =
    let n = rows * cols in
    if Array.length a <> n then invalid_arg "Ntt.four_step_forward: size";
    ignore (log2_exact n);
    ignore (log2_exact rows);
    ignore (log2_exact cols);
    let col_plan = plan rows and row_plan = plan cols in
    (* Step 1: NTT down each column (stride [cols] in the row-major layout).
       Columns are independent; each chunk gathers into its own scratch. *)
    let out = Array.copy a in
    Pool.run ~grain:(ntt_grain rows) ~n:cols (fun c_lo c_hi ->
        let col = Array.make rows F.zero in
        for c = c_lo to c_hi - 1 do
          for r = 0 to rows - 1 do
            col.(r) <- out.((r * cols) + c)
          done;
          forward col_plan col;
          for r = 0 to rows - 1 do
            out.((r * cols) + c) <- col.(r)
          done
        done);
    (* Step 2: scale entry (r, c) by w^(r*c). The per-row twiddle bases
       w^r come from the shared cache so row chunks start mid-sequence. *)
    let w_rows = scale_rows ~rows ~cols in
    Pool.run ~grain:(Pool.grain_of_ns (max 1 (cols * 20))) ~n:rows (fun r_lo r_hi ->
        for r = r_lo to r_hi - 1 do
          let w_r = w_rows.(r) in
          let f = ref F.one in
          for c = 0 to cols - 1 do
            out.((r * cols) + c) <- F.mul out.((r * cols) + c) !f;
            f := F.mul !f w_r
          done
        done);
    (* Step 3: NTT along each row. *)
    Pool.run ~grain:(ntt_grain cols) ~n:rows (fun r_lo r_hi ->
        let row = Array.make cols F.zero in
        for r = r_lo to r_hi - 1 do
          Array.blit out (r * cols) row 0 cols;
          forward row_plan row;
          Array.blit row 0 out (r * cols) cols
        done);
    (* Step 4: transpose, so that output index k = c * rows + r holds
       X_k with k = c * rows + r, matching the flat transform's order. *)
    let res = Array.make n F.zero in
    Pool.run ~grain:(Pool.grain_of_ns (max 1 (cols * 5))) ~n:rows (fun r_lo r_hi ->
        for r = r_lo to r_hi - 1 do
          for c = 0 to cols - 1 do
            res.((c * rows) + r) <- out.((r * cols) + c)
          done
        done);
    res

  let butterfly_count n = n / 2 * log2_exact n
end

module Gf_ntt = Make (Zk_field.Gf)

module Fr_ntt = Make (struct
  include Zk_field.Fr_bls
end)

(* --- Unboxed Goldilocks NTT over flat Fv buffers ------------------------

   Same radix-2 algorithm as [Gf_ntt] (which stays as the boxed correctness
   oracle), but data and twiddles live in Bigarray-backed [Fv.t] vectors:
   every butterfly runs on unboxed int64 with zero heap traffic (in release
   builds, where cross-module [@inline] is effective — see README). *)

module Fv = Nocap_vec.Fv
module Arena = Nocap_vec.Arena
module Gf = Zk_field.Gf
module Native = Nocap_native.Native

(* Shared Goldilocks twiddle tables, keyed by log2 size and built lazily
   under a double-checked mutex (plans are demanded from worker domains).
   One [tables] per size feeds both the OCaml butterflies and the native C
   kernels — the C side reads the very same Fv buffers, so the two paths
   cannot drift — and the four-step scale bases live here too instead of
   being regrown via [Gf.pow] chains on every call. *)
module Gf_twiddles = struct
  type tables = {
    pow : Fv.t; (* w^0 .. w^(n/2-1) for the primitive n-th root w *)
    inv_pow : Fv.t;
    n_inv : Gf.t;
  }

  let cache : (int, tables) Hashtbl.t = Hashtbl.create 16

  let lock = Mutex.create ()

  let make log_n =
    if log_n > Gf.two_adicity then invalid_arg "Ntt.Gf_fv.plan: size exceeds 2-adicity";
    let n = 1 lsl log_n in
    let w = Gf.root_of_unity log_n in
    let w_inv = Gf.inv w in
    let half = max 1 (n / 2) in
    let pow = Fv.create half in
    let inv_pow = Fv.create half in
    Fv.set pow 0 Gf.one;
    Fv.set inv_pow 0 Gf.one;
    for i = 1 to half - 1 do
      Fv.set pow i (Gf.mul (Fv.get pow (i - 1)) w);
      Fv.set inv_pow i (Gf.mul (Fv.get inv_pow (i - 1)) w_inv)
    done;
    { pow; inv_pow; n_inv = Gf.inv (Gf.of_int n) }

  let get log_n =
    Mutex.lock lock;
    match Hashtbl.find_opt cache log_n with
    | Some t ->
      Mutex.unlock lock;
      t
    | None ->
      Mutex.unlock lock;
      let t = make log_n in
      Mutex.lock lock;
      let t =
        match Hashtbl.find_opt cache log_n with
        | Some u -> u
        | None ->
          Hashtbl.add cache log_n t;
          t
      in
      Mutex.unlock lock;
      t

  (* Four-step scale bases w^r, cached per (rows, cols) shape. *)
  let scale_cache : (int * int, Fv.t) Hashtbl.t = Hashtbl.create 8

  let scale_lock = Mutex.create ()

  let make_scale_rows ~rows ~cols =
    let w = Gf.root_of_unity (log2_exact (rows * cols)) in
    let w_rows = Fv.create rows in
    Fv.set w_rows 0 Gf.one;
    for r = 1 to rows - 1 do
      Fv.set w_rows r (Gf.mul (Fv.get w_rows (r - 1)) w)
    done;
    w_rows

  let scale_rows ~rows ~cols =
    let key = (rows, cols) in
    Mutex.lock scale_lock;
    match Hashtbl.find_opt scale_cache key with
    | Some t ->
      Mutex.unlock scale_lock;
      t
    | None ->
      Mutex.unlock scale_lock;
      let t = make_scale_rows ~rows ~cols in
      Mutex.lock scale_lock;
      let t =
        match Hashtbl.find_opt scale_cache key with
        | Some u -> u
        | None ->
          Hashtbl.add scale_cache key t;
          t
      in
      Mutex.unlock scale_lock;
      t
end

module Gf_fv = struct
  type plan = {
    n : int;
    log_n : int;
    twiddles : Fv.t; (* w^0 .. w^(n/2-1) *)
    inv_twiddles : Fv.t;
    n_inv : Gf.t;
  }

  let plan n =
    let log_n = log2_exact n in
    let t = Gf_twiddles.get log_n in
    { n; log_n; twiddles = t.Gf_twiddles.pow; inv_twiddles = t.Gf_twiddles.inv_pow;
      n_inv = t.Gf_twiddles.n_inv }

  let size p = p.n

  let twiddles p = p.twiddles
  let inv_twiddles p = p.inv_twiddles
  let n_inv p = p.n_inv

  (* Imperative bit-reversal (no helper closure, so the loop body stays
     allocation-free). *)
  let bit_reverse_permute log_n (a : Fv.t) =
    let n = 1 lsl log_n in
    for i = 0 to n - 1 do
      let j = ref 0 and x = ref i in
      for _ = 1 to log_n do
        j := (!j lsl 1) lor (!x land 1);
        x := !x lsr 1
      done;
      let j = !j in
      if j > i then begin
        let t = Fv.unsafe_get a i in
        Fv.unsafe_set a i (Fv.unsafe_get a j);
        Fv.unsafe_set a j t
      end
    done

  (* Bounds as in [Gf_ntt.transform]: the length check pins the buffer size
     and every index below is < n, so unsafe accesses are in bounds. *)
  let transform (twiddles : Fv.t) p (a : Fv.t) =
    let n = p.n in
    if Fv.length a <> n then invalid_arg "Ntt.Gf_fv: length mismatch";
    bit_reverse_permute p.log_n a;
    let len = ref 2 in
    while !len <= n do
      let half = !len / 2 in
      let stride = n / !len in
      let k = ref 0 in
      while !k < n do
        for j = 0 to half - 1 do
          let w = Fv.unsafe_get twiddles (j * stride) in
          let u = Fv.unsafe_get a (!k + j) in
          let t = Gf.mul w (Fv.unsafe_get a (!k + j + half)) in
          Fv.unsafe_set a (!k + j) (Gf.add u t);
          Fv.unsafe_set a (!k + j + half) (Gf.sub u t)
        done;
        k := !k + !len
      done;
      len := !len * 2
    done

  (* Native dispatch is per transform, not per butterfly: the C kernel runs
     the same bit-reverse + butterfly schedule against the same shared
     twiddle table, so outputs are bit-identical to [transform]. *)
  let forward p a =
    if Native.on () then begin
      if Fv.length a <> p.n then invalid_arg "Ntt.Gf_fv: length mismatch";
      Native.ntt_forward a p.twiddles
    end
    else transform p.twiddles p a

  let inverse p a =
    if Native.on () then begin
      if Fv.length a <> p.n then invalid_arg "Ntt.Gf_fv: length mismatch";
      Native.ntt_inverse a p.inv_twiddles p.n_inv
    end
    else begin
      transform p.inv_twiddles p a;
      let n_inv = p.n_inv in
      for i = 0 to p.n - 1 do
        Fv.unsafe_set a i (Gf.mul (Fv.unsafe_get a i) n_inv)
      done
    end

  let forward_copy p a =
    let b = Fv.copy a in
    forward p b;
    b

  let inverse_copy p a =
    let b = Fv.copy a in
    inverse p b;
    b

  (* Unboxed butterflies run ~3x cheaper than the boxed oracle's; the C
     kernels cut another ~3x, so chunk cost is mode-dependent (coarser
     grains under native — re-measured in BENCH_native.json). *)
  let bf_ns () = if Native.on () then 3 else 8

  let ntt_grain m = Pool.grain_of_ns (max 1 (m / 2 * log2_exact m * bf_ns ()))

  (* Rows live back to back in one flat buffer of [rows * size p] elements;
     each row is an independent in-place transform. *)
  let forward_rows_flat p ~rows (flat : Fv.t) =
    let n = size p in
    if Fv.length flat <> rows * n then invalid_arg "Ntt.Gf_fv.forward_rows_flat: size";
    Pool.parallel_for ~grain:(ntt_grain n) ~n:rows (fun r ->
        forward p (Fv.sub_view flat ~pos:(r * n) ~len:n))

  (* Four-step decomposition over a flat buffer; mirrors
     [Gf_ntt.four_step_forward] pass for pass (same operation order, so the
     result is bit-identical to the oracle), with column/row scratch drawn
     from the per-domain arena. *)
  let four_step_forward ~rows ~cols (a : Fv.t) : Fv.t =
    let n = rows * cols in
    if Fv.length a <> n then invalid_arg "Ntt.Gf_fv.four_step_forward: size";
    ignore (log2_exact n);
    ignore (log2_exact rows);
    ignore (log2_exact cols);
    let col_plan = plan rows and row_plan = plan cols in
    let out = Fv.copy a in
    (* Step 1: column NTTs (stride [cols]); each chunk gathers into arena
       scratch owned by the executing domain. *)
    Pool.run ~grain:(ntt_grain rows) ~n:cols (fun c_lo c_hi ->
        Arena.with_frame (fun () ->
            let col = Arena.alloc rows in
            for c = c_lo to c_hi - 1 do
              for r = 0 to rows - 1 do
                Fv.unsafe_set col r (Fv.unsafe_get out ((r * cols) + c))
              done;
              forward col_plan col;
              for r = 0 to rows - 1 do
                Fv.unsafe_set out ((r * cols) + c) (Fv.unsafe_get col r)
              done
            done));
    (* Step 2: twiddle scale by w^(r*c), per-row bases from the shared
       cache (the running power f stays a serial chain within each row, so
       chunked rows start mid-sequence without recomputation). *)
    let w_rows = Gf_twiddles.scale_rows ~rows ~cols in
    Pool.run ~grain:(Pool.grain_of_ns (max 1 (cols * 6))) ~n:rows (fun r_lo r_hi ->
        for r = r_lo to r_hi - 1 do
          let w_r = Fv.unsafe_get w_rows r in
          let f = ref Gf.one in
          for c = 0 to cols - 1 do
            Fv.unsafe_set out ((r * cols) + c) (Gf.mul (Fv.unsafe_get out ((r * cols) + c)) !f);
            f := Gf.mul !f w_r
          done
        done);
    (* Step 3: row NTTs, in place (rows are contiguous). *)
    Pool.run ~grain:(ntt_grain cols) ~n:rows (fun r_lo r_hi ->
        for r = r_lo to r_hi - 1 do
          forward row_plan (Fv.sub_view out ~pos:(r * cols) ~len:cols)
        done);
    (* Step 4: transpose into the flat transform's output order. *)
    let res = Fv.create n in
    Pool.run ~grain:(Pool.grain_of_ns (max 1 (cols * 4))) ~n:rows (fun r_lo r_hi ->
        for r = r_lo to r_hi - 1 do
          for c = 0 to cols - 1 do
            Fv.unsafe_set res ((c * rows) + r) (Fv.unsafe_get out ((r * cols) + c))
          done
        done);
    res
end
