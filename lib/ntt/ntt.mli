(** Number-theoretic transforms.

    The functor works over any field with enough 2-adicity; it is instantiated
    over Goldilocks-64 ({!Gf_ntt}, the transform NoCap's NTT FU performs) and
    over the BLS12-381 scalar field ({!Fr_ntt}) for the Groth16 baseline's QAP
    arithmetic. *)

module type FIELD = sig
  type t

  val zero : t
  val one : t
  val equal : t -> t -> bool
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val inv : t -> t
  val of_int : int -> t
  val two_adicity : int
  val root_of_unity : int -> t
end

module type S = sig
  type elt

  type plan
  (** Precomputed twiddle factors for one transform size. *)

  val plan : int -> plan
  (** [plan n] for a power-of-two [n] up to [2^two_adicity]. Plans are
      cached. *)

  val size : plan -> int

  val forward : plan -> elt array -> unit
  (** In-place forward NTT (natural order in, natural order out). *)

  val inverse : plan -> elt array -> unit
  (** In-place inverse NTT; [inverse p (forward p a)] is the identity. *)

  val forward_copy : plan -> elt array -> elt array
  val inverse_copy : plan -> elt array -> elt array

  val forward_rows : plan -> elt array array -> unit
  (** In-place {!forward} on each row, split across the
      {!Nocap_parallel.Pool} domains. Byte-identical to a serial loop for
      every domain count. *)

  val four_step_forward : rows:int -> cols:int -> elt array -> elt array
  (** Bailey's four-step NTT of a [rows * cols] array viewed as a row-major
      matrix: column transforms, twiddle scaling, row transforms, transpose.
      This is the decomposition NoCap's 64-lane NTT FU uses for transforms
      larger than 2^12 (Sec. V-A); the result equals {!forward} of the flat
      array. *)

  val butterfly_count : int -> int
  (** [butterfly_count n] = [n/2 * log2 n]: work metric used by the
      performance model. *)
end

module Make (F : FIELD) : S with type elt = F.t

module Gf_ntt : S with type elt = Zk_field.Gf.t

module Fr_ntt : S with type elt = Zk_field.Fr_bls.t

(** Shared Goldilocks twiddle tables, built lazily per log2 size under a
    Domain-safe double-checked mutex and consumed by both the OCaml
    butterflies and the native C kernels (which read the very same [Fv]
    buffers, so the two paths cannot drift). *)
module Gf_twiddles : sig
  type tables = {
    pow : Nocap_vec.Fv.t;  (** w^0 .. w^(n/2-1) for the primitive n-th root *)
    inv_pow : Nocap_vec.Fv.t;
    n_inv : Zk_field.Gf.t;
  }

  val get : int -> tables
  (** [get log_n]; cached, safe to demand from any domain. *)

  val scale_rows : rows:int -> cols:int -> Nocap_vec.Fv.t
  (** Four-step scale bases w^0..w^(rows-1) for the primitive
      (rows*cols)-th root, cached per shape. *)
end

(** Unboxed Goldilocks NTT over flat {!Nocap_vec.Fv} buffers: the same
    radix-2 transform as {!Gf_ntt} (which remains the boxed correctness
    oracle), with data and twiddles in Bigarray-backed vectors so every
    butterfly runs on unboxed int64 without heap allocation. When
    {!Nocap_native.Native.on} the butterfly passes run in the C kernel
    layer against the same twiddle tables. Results are bit-identical to
    {!Gf_ntt} on the same input in every mode. *)
module Gf_fv : sig
  type plan

  val plan : int -> plan
  (** Cached ({!Gf_twiddles}), safe to demand from any domain. *)

  val size : plan -> int

  val twiddles : plan -> Nocap_vec.Fv.t
  (** The shared forward twiddle table (read-only by convention); exposed
      for the native kernels and the equivalence tests. *)

  val inv_twiddles : plan -> Nocap_vec.Fv.t

  val n_inv : plan -> Zk_field.Gf.t

  val forward : plan -> Nocap_vec.Fv.t -> unit
  (** In-place forward NTT. *)

  val inverse : plan -> Nocap_vec.Fv.t -> unit

  val forward_copy : plan -> Nocap_vec.Fv.t -> Nocap_vec.Fv.t
  val inverse_copy : plan -> Nocap_vec.Fv.t -> Nocap_vec.Fv.t

  val forward_rows_flat : plan -> rows:int -> Nocap_vec.Fv.t -> unit
  (** [forward_rows_flat p ~rows flat] transforms each of the [rows]
      contiguous rows of the [rows * size p] flat buffer in place, split
      across the {!Nocap_parallel.Pool} domains. *)

  val four_step_forward : rows:int -> cols:int -> Nocap_vec.Fv.t -> Nocap_vec.Fv.t
  (** Bailey four-step NTT of a flat [rows * cols] buffer; equals
      {!forward} of the flat vector (and {!Gf_ntt.four_step_forward} of the
      boxed copy). Column/row scratch comes from the per-domain
      {!Nocap_vec.Arena}. *)
end
