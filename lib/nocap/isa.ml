type vreg = int

type instr =
  | Vadd of vreg * vreg * vreg
  | Vsub of vreg * vreg * vreg
  | Vmul of vreg * vreg * vreg
  | Vntt of { dst : vreg; src : vreg; inverse : bool }
  | Vntt_tiled of { dst : vreg; src : vreg; tile : int; inverse : bool }
  | Vhash of vreg * vreg * vreg
  | Vshuffle of vreg * vreg * int array
  | Vrotate of vreg * vreg * int
  | Vinterleave of vreg * vreg * int
  | Vsplat of vreg * Zk_field.Gf.t
  | Vload of vreg * int
  | Vstore of int * vreg
  | Delay of int

type program = instr list

let which_fu = function
  | Vadd _ | Vsub _ -> Some Simulator.Add
  | Vmul _ -> Some Simulator.Mul
  | Vntt _ | Vntt_tiled _ -> Some Simulator.Ntt
  | Vhash _ -> Some Simulator.Hash
  | Vshuffle _ | Vrotate _ | Vinterleave _ -> Some Simulator.Shuffle
  | Vload _ | Vstore _ -> Some Simulator.Hbm
  | Vsplat _ | Delay _ -> None

let reads = function
  | Vadd (_, a, b) | Vsub (_, a, b) | Vmul (_, a, b) | Vhash (_, a, b) -> [ a; b ]
  | Vntt { src; _ } | Vntt_tiled { src; _ } -> [ src ]
  | Vshuffle (_, s, _) | Vrotate (_, s, _) | Vinterleave (_, s, _) -> [ s ]
  | Vstore (_, s) -> [ s ]
  | Vsplat _ | Vload _ | Delay _ -> []

let writes = function
  | Vadd (d, _, _)
  | Vsub (d, _, _)
  | Vmul (d, _, _)
  | Vhash (d, _, _)
  | Vshuffle (d, _, _)
  | Vrotate (d, _, _)
  | Vinterleave (d, _, _)
  | Vsplat (d, _)
  | Vload (d, _) ->
    Some d
  | Vntt { dst; _ } | Vntt_tiled { dst; _ } -> Some dst
  | Vstore _ | Delay _ -> None

let instr_name = function
  | Vadd _ -> "Vadd"
  | Vsub _ -> "Vsub"
  | Vmul _ -> "Vmul"
  | Vntt _ -> "Vntt"
  | Vntt_tiled _ -> "Vntt_tiled"
  | Vhash _ -> "Vhash"
  | Vshuffle _ -> "Vshuffle"
  | Vrotate _ -> "Vrotate"
  | Vinterleave _ -> "Vinterleave"
  | Vsplat _ -> "Vsplat"
  | Vload _ -> "Vload"
  | Vstore _ -> "Vstore"
  | Delay _ -> "Delay"

let describe = function
  | Vadd (d, a, b) -> Printf.sprintf "Vadd r%d, r%d, r%d" d a b
  | Vsub (d, a, b) -> Printf.sprintf "Vsub r%d, r%d, r%d" d a b
  | Vmul (d, a, b) -> Printf.sprintf "Vmul r%d, r%d, r%d" d a b
  | Vntt { dst; src; inverse } ->
    Printf.sprintf "Vntt%s r%d, r%d" (if inverse then "-inv" else "") dst src
  | Vntt_tiled { dst; src; tile; inverse } ->
    Printf.sprintf "Vntt_tiled%s r%d, r%d, tile=%d"
      (if inverse then "-inv" else "")
      dst src tile
  | Vhash (d, a, b) -> Printf.sprintf "Vhash r%d, r%d, r%d" d a b
  | Vshuffle (d, s, perm) ->
    Printf.sprintf "Vshuffle r%d, r%d, perm[%d]" d s (Array.length perm)
  | Vrotate (d, s, n) -> Printf.sprintf "Vrotate r%d, r%d, %d" d s n
  | Vinterleave (d, s, g) -> Printf.sprintf "Vinterleave r%d, r%d, group=%d" d s g
  | Vsplat (d, x) -> Printf.sprintf "Vsplat r%d, %s" d (Zk_field.Gf.to_string x)
  | Vload (d, slot) -> Printf.sprintf "Vload r%d, m%d" d slot
  | Vstore (slot, s) -> Printf.sprintf "Vstore m%d, r%d" slot s
  | Delay n -> Printf.sprintf "Delay %d" n

let interleave_perm ~len ~group =
  let chunk = 1 lsl group in
  if len mod (2 * chunk) <> 0 then invalid_arg "Isa.interleave_perm";
  let chunks = len / chunk in
  let perm = Array.make len 0 in
  for c = 0 to chunks - 1 do
    (* Destination chunk: even source chunks pack into the first half,
       odd ones into the second. *)
    let dst_chunk = if c land 1 = 0 then c / 2 else (chunks / 2) + (c / 2) in
    for i = 0 to chunk - 1 do
      perm.((dst_chunk * chunk) + i) <- (c * chunk) + i
    done
  done;
  (* perm maps destination index -> source index. *)
  perm
