module Gf = Zk_field.Gf
module Ntt = Zk_ntt.Ntt.Gf_ntt
module Keccak = Zk_hash.Keccak

type t = {
  k : int;
  regs : Gf.t array array;
  mem : Gf.t array array;
}

let create ~vector_len ~num_regs ~mem_slots =
  if vector_len < 4 || vector_len land (vector_len - 1) <> 0 then
    invalid_arg "Vm.create: vector_len must be a power of two >= 4";
  {
    k = vector_len;
    regs = Array.init num_regs (fun _ -> Array.make vector_len Gf.zero);
    mem = Array.init mem_slots (fun _ -> Array.make vector_len Gf.zero);
  }

let vector_len t = t.k

let write_mem t slot v =
  if Array.length v <> t.k then invalid_arg "Vm.write_mem: length";
  t.mem.(slot) <- Array.copy v

let read_mem t slot = Array.copy t.mem.(slot)

let read_reg t r = Array.copy t.regs.(r)

let write_reg t r v =
  if r < 0 || r >= Array.length t.regs then invalid_arg "Vm.write_reg: bad register";
  if Array.length v <> t.k then invalid_arg "Vm.write_reg: length";
  t.regs.(r) <- Array.copy v

let exec_one t instr =
  let reg r =
    if r < 0 || r >= Array.length t.regs then invalid_arg "Vm: bad register";
    t.regs.(r)
  in
  match (instr : Isa.instr) with
  | Isa.Vadd (d, a, b) ->
    let va = reg a and vb = reg b in
    t.regs.(d) <- Array.init t.k (fun i -> Gf.add va.(i) vb.(i))
  | Isa.Vsub (d, a, b) ->
    let va = reg a and vb = reg b in
    t.regs.(d) <- Array.init t.k (fun i -> Gf.sub va.(i) vb.(i))
  | Isa.Vmul (d, a, b) ->
    let va = reg a and vb = reg b in
    t.regs.(d) <- Array.init t.k (fun i -> Gf.mul va.(i) vb.(i))
  | Isa.Vntt { dst; src; inverse } ->
    let v = Array.copy (reg src) in
    let plan = Ntt.plan t.k in
    if inverse then Ntt.inverse plan v else Ntt.forward plan v;
    t.regs.(dst) <- v
  | Isa.Vntt_tiled { dst; src; tile; inverse } ->
    if tile < 2 || t.k mod tile <> 0 then invalid_arg "Vm: bad tile size";
    let v = Array.copy (reg src) in
    let plan = Ntt.plan tile in
    let chunk = Array.make tile Gf.zero in
    for c = 0 to (t.k / tile) - 1 do
      Array.blit v (c * tile) chunk 0 tile;
      if inverse then Ntt.inverse plan chunk else Ntt.forward plan chunk;
      Array.blit chunk 0 v (c * tile) tile
    done;
    t.regs.(dst) <- v
  | Isa.Vhash (d, a, b) ->
    let va = reg a and vb = reg b in
    let out = Array.make t.k Gf.zero in
    for g = 0 to (t.k / 4) - 1 do
      let pack v =
        let bytes = Bytes.create 32 in
        for i = 0 to 3 do
          Bytes.set_int64_le bytes (8 * i) (Gf.to_int64 v.((4 * g) + i))
        done;
        Bytes.unsafe_to_string bytes
      in
      let digest = Keccak.hash2 (pack va) (pack vb) in
      let words = Keccak.digest_to_gf digest in
      Array.blit words 0 out (4 * g) 4
    done;
    t.regs.(d) <- out
  | Isa.Vshuffle (d, s, perm) ->
    if Array.length perm <> t.k then invalid_arg "Vm: permutation length";
    let v = reg s in
    t.regs.(d) <- Array.init t.k (fun i -> v.(perm.(i)))
  | Isa.Vrotate (d, s, n) ->
    let v = reg s in
    t.regs.(d) <- Array.init t.k (fun i -> v.((i + n) mod t.k))
  | Isa.Vinterleave (d, s, g) ->
    let perm = Isa.interleave_perm ~len:t.k ~group:g in
    let v = reg s in
    t.regs.(d) <- Array.init t.k (fun i -> v.(perm.(i)))
  | Isa.Vsplat (d, x) -> t.regs.(d) <- Array.make t.k x
  | Isa.Vload (d, slot) ->
    if slot < 0 || slot >= Array.length t.mem then invalid_arg "Vm: bad memory slot";
    t.regs.(d) <- Array.copy t.mem.(slot)
  | Isa.Vstore (slot, s) ->
    if slot < 0 || slot >= Array.length t.mem then invalid_arg "Vm: bad memory slot";
    t.mem.(slot) <- Array.copy (reg s)
  | Isa.Delay _ -> ()

let exec t program =
  List.iteri
    (fun i instr ->
      try exec_one t instr
      with Invalid_argument msg ->
        invalid_arg
          (Printf.sprintf "Vm.exec: instruction %d (%s): %s" i (Isa.instr_name instr)
             msg))
    program
