(** Multilinear extensions (MLEs).

    A table of [2^L] field elements is viewed as the evaluations of an
    [L]-variate multilinear polynomial on the Boolean hypercube (Sec. V-A:
    "the element in index i is the evaluation ... where the L variables
    correspond to the bit pattern of i").

    Variable-ordering convention used throughout this library: variable 1 is
    the {e most significant} bit of the index. [fold_top] binds variable 1
    first, which matches the paper's sumcheck DP (Listing 1) where round [i]
    halves the array. *)

type point = Zk_field.Gf.t array
(** A point in F^L: challenges (r_1, ..., r_L), variable 1 first. *)

val num_vars : 'a array -> int
(** [log2] of the table length. @raise Invalid_argument if not a power of 2. *)

val fold_top : Zk_field.Gf.t array -> Zk_field.Gf.t -> Zk_field.Gf.t array
(** [fold_top a r] binds the top variable to [r]:
    [a'.(b) = (1 - r) * a.(b) + r * a.(b + n/2)]. The output has half the
    length. *)

val fold_top_in_place :
  Zk_field.Gf.t array -> len:int -> Zk_field.Gf.t -> int
(** In-place variant used by the sumcheck prover: folds the first [len]
    entries and returns the new live length [len/2]. Avoids reallocating the
    DP array every round. *)

val eval : Zk_field.Gf.t array -> point -> Zk_field.Gf.t
(** Evaluate the MLE of a table at an arbitrary point. *)

val eq_table : point -> Zk_field.Gf.t array
(** [eq_table r] tabulates [eq(r, b)] for all [2^L] Boolean [b]:
    the Lagrange-basis vector such that
    [eval a r = sum_b a.(b) * (eq_table r).(b)]. *)

val eq_table_range : point -> lo:int -> len:int -> Zk_field.Gf.t array
(** The [lo, lo+len) block of {!eq_table} without materializing the full
    table: [len] must be a positive power of two and [lo] a multiple of
    [len] (aligned blocks). Because the table's doubling chain factors
    exactly over Goldilocks, each block entry is bit-identical to the full
    table's — the streaming prover depends on this. *)

val eq_point : point -> point -> Zk_field.Gf.t
(** [eq_point r s] = [prod_i (r_i * s_i + (1 - r_i) * (1 - s_i))]. *)

val eval_of_index : int -> int -> point
(** [eval_of_index l i] is the Boolean point of length [l] whose bits are the
    binary expansion of [i] (variable 1 = most significant bit). *)
