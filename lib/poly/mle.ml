module Gf = Zk_field.Gf

type point = Gf.t array

let num_vars a =
  let n = Array.length a in
  if n = 0 || n land (n - 1) <> 0 then invalid_arg "Mle: table must be a power of two";
  let rec go k m = if m = 1 then k else go (k + 1) (m lsr 1) in
  go 0 n

let fold_top a r =
  let n = Array.length a in
  if n < 2 then invalid_arg "Mle.fold_top";
  let half = n / 2 in
  Array.init half (fun b ->
      Gf.add a.(b) (Gf.mul r (Gf.sub a.(b + half) a.(b))))

let fold_top_in_place a ~len r =
  if len < 2 || len > Array.length a then invalid_arg "Mle.fold_top_in_place";
  let half = len / 2 in
  for b = 0 to half - 1 do
    a.(b) <- Gf.add a.(b) (Gf.mul r (Gf.sub a.(b + half) a.(b)))
  done;
  half

let eval a point =
  let l = num_vars a in
  if Array.length point <> l then invalid_arg "Mle.eval: dimension mismatch";
  let cur = ref (Array.copy a) in
  Array.iter (fun r -> cur := fold_top !cur r) point;
  (!cur).(0)

let eq_table point =
  let l = Array.length point in
  let table = Array.make (1 lsl l) Gf.one in
  let size = ref 1 in
  (* Each new variable becomes the low bit, so after processing all L
     variables, variable i sits at bit position (L - i): variable 1 is the
     most significant bit, as required. *)
  for i = 0 to l - 1 do
    let r = point.(i) in
    for b = !size - 1 downto 0 do
      let v = table.(b) in
      let hi = Gf.mul v r in
      table.((2 * b) + 1) <- hi;
      table.(2 * b) <- Gf.sub v hi
    done;
    size := 2 * !size
  done;
  table

(* Blocked eq_table for the streaming prover: entries [lo, lo+len) only.
   The doubling chain above factors exactly — for an aligned power-of-two
   block, every entry is (product over the high variables at the block's
   fixed bits) * (eq_table of the low variables). Goldilocks arithmetic is
   exact, so the factored form is bit-identical to the full table's
   entries, which is what keeps streamed proofs byte-equal. *)
let eq_table_range point ~lo ~len =
  let l = Array.length point in
  let n = 1 lsl l in
  if len <= 0 || len land (len - 1) <> 0 then
    invalid_arg "Mle.eq_table_range: len must be a positive power of two";
  if len > n || lo mod len <> 0 || lo < 0 || lo + len > n then
    invalid_arg "Mle.eq_table_range: block must be aligned and in range";
  let rec log2 m = if m = 1 then 0 else 1 + log2 (m lsr 1) in
  let k = l - log2 len in
  let m = lo / len in
  let prefix = ref Gf.one in
  for i = 0 to k - 1 do
    let f =
      if (m lsr (k - 1 - i)) land 1 = 1 then point.(i)
      else Gf.sub Gf.one point.(i)
    in
    prefix := Gf.mul !prefix f
  done;
  let suffix = eq_table (Array.sub point k (l - k)) in
  let p = !prefix in
  Array.map (fun s -> Gf.mul p s) suffix

let eq_point r s =
  let l = Array.length r in
  if Array.length s <> l then invalid_arg "Mle.eq_point";
  let acc = ref Gf.one in
  for i = 0 to l - 1 do
    let term =
      Gf.add (Gf.mul r.(i) s.(i)) (Gf.mul (Gf.sub Gf.one r.(i)) (Gf.sub Gf.one s.(i)))
    in
    acc := Gf.mul !acc term
  done;
  !acc

let eval_of_index l i =
  Array.init l (fun j -> if (i lsr (l - 1 - j)) land 1 = 1 then Gf.one else Gf.zero)
