module Fr = Zk_field.Fr_bls
module Limbs = Zk_field.Limbs

let naive scalars points =
  if Array.length scalars <> Array.length points then invalid_arg "Msm.naive: lengths";
  let acc = ref G1.infinity in
  Array.iteri (fun i s -> acc := G1.add !acc (G1.scalar_mul s points.(i))) scalars;
  !acc

let window_for n =
  let rec log2 k m = if m <= 1 then k else log2 (k + 1) (m / 2) in
  min 16 (max 2 (log2 0 n - 2))

let scalar_bits = 255

(* Extract the [window]-bit digit of a scalar starting at bit [lo]. *)
let digit limbs lo window =
  let v = ref 0 in
  for b = window - 1 downto 0 do
    let bit = if Limbs.bit limbs (lo + b) then 1 else 0 in
    v := (!v lsl 1) lor bit
  done;
  !v

(* Per-window bucket accumulation + running-sum reduction: the O(n) part
   of Pippenger, independent across windows. *)
let window_sum limbs points n c w =
  let buckets = Array.make ((1 lsl c) - 1) G1.infinity in
  for i = 0 to n - 1 do
    let d = digit limbs.(i) (w * c) c in
    if d > 0 then buckets.(d - 1) <- G1.add buckets.(d - 1) points.(i)
  done;
  (* Running-sum reduction: sum_d d * bucket_d with 2 * |buckets| adds. *)
  let running = ref G1.infinity and windowed = ref G1.infinity in
  for d = Array.length buckets - 1 downto 0 do
    running := G1.add !running buckets.(d);
    windowed := G1.add !windowed !running
  done;
  !windowed

(* Combine the per-window sums most-significant first, shifting by one
   window (c doublings) between additions. *)
let combine_windows windowed c =
  let acc = ref G1.infinity in
  for w = Array.length windowed - 1 downto 0 do
    if not (G1.is_infinity !acc) then
      for _ = 1 to c do
        acc := G1.double !acc
      done;
    acc := G1.add !acc windowed.(w)
  done;
  !acc

let pippenger_serial ?window scalars points =
  let n = Array.length scalars in
  if n <> Array.length points then invalid_arg "Msm.pippenger: lengths";
  if n = 0 then G1.infinity
  else begin
    let c = match window with Some c -> c | None -> window_for n in
    let num_windows = (scalar_bits + c - 1) / c in
    let limbs = Array.map Fr.to_limbs scalars in
    combine_windows (Array.init num_windows (window_sum limbs points n c)) c
  end

let pippenger ?window scalars points =
  let n = Array.length scalars in
  if n <> Array.length points then invalid_arg "Msm.pippenger: lengths";
  if n = 0 then G1.infinity
  else begin
    let c = match window with Some c -> c | None -> window_for n in
    let num_windows = (scalar_bits + c - 1) / c in
    let limbs = Array.map Fr.to_limbs scalars in
    (* Windows accumulate in parallel (each owns its buckets); the serial
       combine applies the shift-and-add in the fixed most-significant-first
       order, so the result is the exact group element {!pippenger_serial}
       computes. *)
    let windowed =
      (* One window costs ~(n + 2*2^c) point adds at ~1.5µs each; the grain
         folds whole windows per claim, and small MSMs (where even all
         windows together cannot amortize a dispatch) fall back to serial
         via the crossover. *)
      let window_ns = max 1 ((n + (2 * (1 lsl c)) + c) * 1_500) in
      Nocap_parallel.Pool.parallel_init
        ~grain:(Nocap_parallel.Pool.grain_of_ns window_ns) num_windows
        (window_sum limbs points n c)
    in
    combine_windows windowed c
  end

let point_adds_estimate ~n ~window =
  let num_windows = (scalar_bits + window - 1) / window in
  (* Per window: n bucket insertions + 2 * 2^window reduction adds, plus the
     window shift doublings. *)
  num_windows * (n + (2 * (1 lsl window)) + window)
