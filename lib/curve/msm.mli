(** Multi-scalar multiplication: [sum_i scalars.(i) * points.(i)].

    MSM dominates Groth16 proof generation — it is the kernel PipeZK's
    dedicated pipelines accelerate (Sec. III, Sec. IX-A). {!pippenger}
    implements the bucket method; {!naive} is the reference for tests. *)

module Fr = Zk_field.Fr_bls

val naive : Fr.t array -> G1.t array -> G1.t
(** Independent scalar multiplications, summed. O(n * 256) doublings. *)

val pippenger : ?window:int -> Fr.t array -> G1.t array -> G1.t
(** Bucket-method MSM. [window] defaults to a size tuned to the input length
    (roughly [log2 n - 2], clamped to [\[2, 16\]]). Per-window bucket
    accumulation runs across the {!Nocap_parallel.Pool} domains; the result
    equals {!pippenger_serial} exactly for every domain count. *)

val pippenger_serial : ?window:int -> Fr.t array -> G1.t array -> G1.t
(** Single-domain reference implementation (the parallel/serial equivalence
    oracle). *)

val window_for : int -> int
(** The default window size chosen for [n] points. *)

val point_adds_estimate : n:int -> window:int -> int
(** Estimated number of group additions Pippenger performs — feeds the
    Groth16/PipeZK cost model. *)
