module Gf = Zk_field.Gf
module Transcript = Zk_hash.Transcript
module Mle = Zk_poly.Mle
module Dense = Zk_poly.Dense
module Pool = Nocap_parallel.Pool
module Fv = Nocap_vec.Fv

type proof = { round_polys : Gf.t array array }

type stats = { rounds : int; mults : int; adds : int }

type prover_result = {
  proof : proof;
  challenges : Gf.t array;
  final_values : Gf.t array;
  stats : stats;
}

type verifier_result = { point : Gf.t array; value : Gf.t }

let log2_exact n =
  if n <= 0 || n land (n - 1) <> 0 then invalid_arg "Sumcheck: table size must be a power of two";
  let rec go k m = if m = 1 then k else go (k + 1) (m lsr 1) in
  go 0 n

(* Boxed reference prover: byte-identical proofs to {!prove}, kept as the
   correctness oracle for the unboxed table path below. *)
let prove_arrays ?engine ?(comb_mults = 0) transcript ~degree ~tables ~comb ~claim =
  let pool = Option.bind engine Zk_pcs.Engine.pool in
  let k = Array.length tables in
  if k = 0 then invalid_arg "Sumcheck.prove: no tables";
  let n = Array.length tables.(0) in
  let num_vars = log2_exact n in
  Array.iter
    (fun t -> if Array.length t <> n then invalid_arg "Sumcheck.prove: table size mismatch")
    tables;
  Transcript.absorb_int transcript "sumcheck/num_vars" num_vars;
  Transcript.absorb_int transcript "sumcheck/degree" degree;
  Transcript.absorb_gf transcript "sumcheck/claim" [| claim |];
  let tables = Array.map Array.copy tables in
  let len = ref n in
  let mults = ref 0 and adds = ref 0 in
  let round_polys = Array.make num_vars [||] in
  let challenges = Array.make num_vars Gf.zero in
  for round = 0 to num_vars - 1 do
    let half = !len / 2 in
    (* Round polynomial g(t) at t = 0..degree. For each b, each table
       restricted to the top variable is the line lo + t*(hi - lo); we walk t
       by repeated addition of the delta, avoiding multiplications.

       The b-range splits into chunks evaluated in parallel, each producing
       a partial g; partials are added back in chunk order (and Gf addition
       is exact), so g is byte-identical for every domain count. *)
    let eval_chunk lo_b hi_b =
      let g = Array.make (degree + 1) Gf.zero in
      let vals = Array.make k Gf.zero in
      let deltas = Array.make k Gf.zero in
      for b = lo_b to hi_b - 1 do
        for j = 0 to k - 1 do
          let lo = tables.(j).(b) and hi = tables.(j).(b + half) in
          vals.(j) <- lo;
          deltas.(j) <- Gf.sub hi lo
        done;
        for t = 0 to degree do
          if t > 0 then
            for j = 0 to k - 1 do
              vals.(j) <- Gf.add vals.(j) deltas.(j)
            done;
          g.(t) <- Gf.add g.(t) (comb vals)
        done
      done;
      g
    in
    let g =
      Pool.fold_chunks ?pool ~chunk:1024
        (* One index evaluates the combiner at degree+1 points; the fixed
           chunk:1024 pins the combine order for every grain. *)
        ~grain:(Pool.grain_of_ns (max 1 ((degree + 1) * (comb_mults + k) * 20)))
        ~n:half
        ~init:(Array.make (degree + 1) Gf.zero)
        ~body:eval_chunk
        ~combine:(fun acc part ->
          for t = 0 to degree do
            acc.(t) <- Gf.add acc.(t) part.(t)
          done;
          acc)
        ()
    in
    adds := !adds + (half * (degree + 1) * (k + 1));
    mults := !mults + (half * (degree + 1) * comb_mults);
    round_polys.(round) <- g;
    Transcript.absorb_gf transcript "sumcheck/round" g;
    let r = Transcript.challenge_gf transcript "sumcheck/challenge" in
    challenges.(round) <- r;
    (* Fold every table: T(b) <- T(b) + r * (T(b + half) - T(b)); writes to
       b < half are disjoint from the reads at b + half. *)
    for j = 0 to k - 1 do
      let t = tables.(j) in
      Pool.run ?pool ~grain:(Pool.grain_of_ns 15) ~n:half (fun lo hi ->
          for b = lo to hi - 1 do
            t.(b) <- Gf.add t.(b) (Gf.mul r (Gf.sub t.(b + half) t.(b)))
          done)
    done;
    mults := !mults + (k * half);
    adds := !adds + (2 * k * half);
    len := half
  done;
  let final_values = Array.map (fun t -> t.(0)) tables in
  {
    proof = { round_polys };
    challenges;
    final_values;
    stats = { rounds = num_vars; mults = !mults; adds = !adds };
  }

(* The in-memory round loop over unboxed tables, shared between {!prove}
   (round0 = 0) and the tail of {!prove_streaming} (round0 = the round at
   which the shrinking tables first fit the budget). Runs rounds
   [round0, num_vars), reading tables of current length [len0] in place. *)
let run_rounds ?pool ~comb_mults ~transcript ~degree ~comb ~tabs ~num_vars ~round0
    ~len0 ~mults ~adds ~round_polys ~challenges () =
  let k = Array.length tabs in
  let len = ref len0 in
  for round = round0 to num_vars - 1 do
    Pool.Cancel.check ();
    let half = !len / 2 in
    let eval_chunk lo_b hi_b =
      let g = Array.make (degree + 1) Gf.zero in
      let vals = Array.make k Gf.zero in
      let deltas = Array.make k Gf.zero in
      for b = lo_b to hi_b - 1 do
        for j = 0 to k - 1 do
          let tj = Array.unsafe_get tabs j in
          let lo = Fv.unsafe_get tj b and hi = Fv.unsafe_get tj (b + half) in
          vals.(j) <- lo;
          deltas.(j) <- Gf.sub hi lo
        done;
        for t = 0 to degree do
          if t > 0 then
            for j = 0 to k - 1 do
              vals.(j) <- Gf.add vals.(j) deltas.(j)
            done;
          g.(t) <- Gf.add g.(t) (comb vals)
        done
      done;
      g
    in
    let g =
      Pool.fold_chunks ?pool ~chunk:1024
        (* One index evaluates the combiner at degree+1 points; the fixed
           chunk:1024 pins the combine order for every grain. *)
        ~grain:(Pool.grain_of_ns (max 1 ((degree + 1) * (comb_mults + k) * 20)))
        ~n:half
        ~init:(Array.make (degree + 1) Gf.zero)
        ~body:eval_chunk
        ~combine:(fun acc part ->
          for t = 0 to degree do
            acc.(t) <- Gf.add acc.(t) part.(t)
          done;
          acc)
        ()
    in
    adds := !adds + (half * (degree + 1) * (k + 1));
    mults := !mults + (half * (degree + 1) * comb_mults);
    round_polys.(round) <- g;
    Transcript.absorb_gf transcript "sumcheck/round" g;
    let r = Transcript.challenge_gf transcript "sumcheck/challenge" in
    challenges.(round) <- r;
    for j = 0 to k - 1 do
      let t = tabs.(j) in
      Pool.run ?pool ~grain:(Pool.grain_of_ns 15) ~n:half (fun lo hi ->
          for b = lo to hi - 1 do
            let x = Fv.unsafe_get t b in
            Fv.unsafe_set t b (Gf.add x (Gf.mul r (Gf.sub (Fv.unsafe_get t (b + half)) x)))
          done)
    done;
    mults := !mults + (k * half);
    adds := !adds + (2 * k * half);
    len := half
  done

(* Production prover: one copy of each table into an unboxed flat vector,
   then every round reads/writes flat int64. The round-polynomial chunking,
   combine order, and field arithmetic are identical to {!prove_arrays}, so
   the transcript — and therefore the proof bytes and challenges — are
   byte-identical. The fold loop
   [T(b) <- T(b) + r * (T(b + half) - T(b))] runs without heap allocation;
   the evaluation loop still stages [vals]/[deltas] in k-element boxed
   arrays because [comb] consumes a [Gf.t array]. *)
let prove ?engine ?(comb_mults = 0) transcript ~degree ~tables ~comb ~claim =
  let pool = Option.bind engine Zk_pcs.Engine.pool in
  let k = Array.length tables in
  if k = 0 then invalid_arg "Sumcheck.prove: no tables";
  let n = Array.length tables.(0) in
  let num_vars = log2_exact n in
  Array.iter
    (fun t -> if Array.length t <> n then invalid_arg "Sumcheck.prove: table size mismatch")
    tables;
  Transcript.absorb_int transcript "sumcheck/num_vars" num_vars;
  Transcript.absorb_int transcript "sumcheck/degree" degree;
  Transcript.absorb_gf transcript "sumcheck/claim" [| claim |];
  let tabs = Array.map Fv.of_array tables in
  let mults = ref 0 and adds = ref 0 in
  let round_polys = Array.make num_vars [||] in
  let challenges = Array.make num_vars Gf.zero in
  run_rounds ?pool ~comb_mults ~transcript ~degree ~comb ~tabs ~num_vars ~round0:0
    ~len0:n ~mults ~adds ~round_polys ~challenges ();
  let final_values = Array.map (fun t -> Fv.get t 0) tabs in
  {
    proof = { round_polys };
    challenges;
    final_values;
    stats = { rounds = num_vars; mults = !mults; adds = !adds };
  }

module Spill = Nocap_vec.Spill

(* Bounded-memory prover over spillable tables (the ISSUE 9 tentpole).

   The in-memory prover folds each table in place, so after round j it
   holds the length-(n >> j) generation of every table. The streaming
   prover never stores any folded generation: after j rounds with
   challenges r_0..r_{j-1}, the current table is a weighted sum of strided
   slices of the ORIGINAL table,

     T_j(b) = sum_{m < 2^j} w_j(m) * T_0(m * (n >> j) + b),

   where w_j = Mle.eq_table [r_0..r_{j-1}] — the same doubling recurrence
   the fold applies, factored out (the recompute-halves / two-pass trick).
   Each streamed round therefore reads every original table once, in
   budget-sized blocks, and accumulates T_j values on the fly; nothing but
   O(block) scratch and the 2^j weight vector stays resident. Goldilocks
   arithmetic is exact, so the recomputed values — and hence every round
   polynomial, challenge, and final value — are bit-identical to the
   in-memory prover's.

   As the residual table length n >> j shrinks, it eventually fits half
   the budget; at that point the tables are materialized into RAM once and
   {!run_rounds} finishes with the standard loop, which also pins the
   tail's Pool chunking to the in-memory prover's exactly.

   [stats] mirrors the in-memory formulas round for round (it reports the
   protocol's arithmetic, not the recomputation overhead), so whole-record
   equality against {!prove} holds. *)
let prove_streaming ?engine ?(comb_mults = 0) ~budget_bytes transcript ~degree ~tables
    ~comb ~claim =
  let pool = Option.bind engine Zk_pcs.Engine.pool in
  if budget_bytes <= 0 then invalid_arg "Sumcheck.prove_streaming: budget must be positive";
  let k = Array.length tables in
  if k = 0 then invalid_arg "Sumcheck.prove: no tables";
  let n = Spill.length tables.(0) in
  let num_vars = log2_exact n in
  Array.iter
    (fun t ->
      if Spill.length t <> n then invalid_arg "Sumcheck.prove: table size mismatch")
    tables;
  Transcript.absorb_int transcript "sumcheck/num_vars" num_vars;
  Transcript.absorb_int transcript "sumcheck/degree" degree;
  Transcript.absorb_gf transcript "sumcheck/claim" [| claim |];
  let mults = ref 0 and adds = ref 0 in
  let round_polys = Array.make num_vars [||] in
  let challenges = Array.make num_vars Gf.zero in
  (* Residual tables fit the materialization half of the budget when
     k * (n >> j) * 8 <= budget / 2. *)
  let fits len = k * len * 8 <= budget_bytes / 2 || len <= 1 in
  (* Streamed-round scratch: per table an accumulator pair (lo/hi) plus a
     read buffer, all block-sized — 3k + slack vectors of 8 bytes/elem. *)
  let block =
    let b = max 256 (budget_bytes / (8 * ((3 * k) + 2))) in
    min b (max 1 (n / 2))
  in
  let buf = Fv.create block in
  let acc_lo = Array.init k (fun _ -> Fv.create block) in
  let acc_hi = Array.init k (fun _ -> Fv.create block) in
  (* Accumulate T_round(pos .. pos+len) into [dst] for table [tj], given
     the eq-weights of the challenges so far. *)
  let recompute ~w ~stride tj dst ~pos ~len =
    let dstv = Fv.sub_view dst ~pos:0 ~len in
    Fv.zero dstv;
    let bufv = Fv.sub_view buf ~pos:0 ~len in
    for m = 0 to Array.length w - 1 do
      Spill.read tj ~pos:((m * stride) + pos) bufv;
      Fv.axpy_into ~dst:dstv w.(m) bufv
    done
  in
  let round = ref 0 in
  while not (fits (n lsr !round)) do
    let j = !round in
    let stride = n lsr j in
    let half = stride / 2 in
    let w = Mle.eq_table (Array.sub challenges 0 j) in
    let g = Array.make (degree + 1) Gf.zero in
    let vals = Array.make k Gf.zero in
    let deltas = Array.make k Gf.zero in
    let pos = ref 0 in
    while !pos < half do
      Pool.Cancel.check ();
      let len = min block (half - !pos) in
      for t = 0 to k - 1 do
        recompute ~w ~stride tables.(t) acc_lo.(t) ~pos:!pos ~len;
        recompute ~w ~stride tables.(t) acc_hi.(t) ~pos:(!pos + half) ~len
      done;
      for b = 0 to len - 1 do
        for t = 0 to k - 1 do
          let lo = Fv.unsafe_get acc_lo.(t) b and hi = Fv.unsafe_get acc_hi.(t) b in
          vals.(t) <- lo;
          deltas.(t) <- Gf.sub hi lo
        done;
        for t = 0 to degree do
          if t > 0 then
            for j = 0 to k - 1 do
              vals.(j) <- Gf.add vals.(j) deltas.(j)
            done;
          g.(t) <- Gf.add g.(t) (comb vals)
        done
      done;
      pos := !pos + len
    done;
    (* Same per-round accounting as the in-memory prover (protocol
       arithmetic, not recomputation overhead), so stats match. *)
    adds := !adds + (half * (degree + 1) * (k + 1));
    mults := !mults + (half * (degree + 1) * comb_mults);
    round_polys.(j) <- g;
    Transcript.absorb_gf transcript "sumcheck/round" g;
    let r = Transcript.challenge_gf transcript "sumcheck/challenge" in
    challenges.(j) <- r;
    mults := !mults + (k * half);
    adds := !adds + (2 * k * half);
    incr round
  done;
  (* Materialize the residual generation into RAM once and finish with the
     standard in-memory loop — identical chunking from here on. *)
  let round0 = !round in
  let stride = n lsr round0 in
  let w = Mle.eq_table (Array.sub challenges 0 round0) in
  let tabs =
    Array.map
      (fun tj ->
        let dst = Fv.create stride in
        let pos = ref 0 in
        while !pos < stride do
          Pool.Cancel.check ();
          let len = min block (stride - !pos) in
          let dstv = Fv.sub_view dst ~pos:!pos ~len in
          Fv.zero dstv;
          let bufv = Fv.sub_view buf ~pos:0 ~len in
          for m = 0 to Array.length w - 1 do
            Spill.read tj ~pos:((m * stride) + !pos) bufv;
            Fv.axpy_into ~dst:dstv w.(m) bufv
          done;
          pos := !pos + len
        done;
        dst)
      tables
  in
  run_rounds ?pool ~comb_mults ~transcript ~degree ~comb ~tabs ~num_vars ~round0
    ~len0:stride ~mults ~adds ~round_polys ~challenges ();
  let final_values = Array.map (fun t -> Fv.get t 0) tabs in
  {
    proof = { round_polys };
    challenges;
    final_values;
    stats = { rounds = num_vars; mults = !mults; adds = !adds };
  }

module E = Zk_pcs.Verify_error

let verify transcript ~degree ~num_vars ~claim proof =
  if degree < 1 || num_vars < 0 then
    E.errorf E.Params "invalid sumcheck shape (degree %d, %d vars)" degree num_vars
  else if Array.length proof.round_polys <> num_vars then
    E.error E.Shape "wrong number of rounds"
  else begin
    Transcript.absorb_int transcript "sumcheck/num_vars" num_vars;
    Transcript.absorb_int transcript "sumcheck/degree" degree;
    Transcript.absorb_gf transcript "sumcheck/claim" [| claim |];
    let expected = ref claim in
    let point = Array.make num_vars Gf.zero in
    let rec go round =
      if round = num_vars then Ok { point; value = !expected }
      else begin
        let g = proof.round_polys.(round) in
        if Array.length g <> degree + 1 then
          E.errorf E.Shape "round %d: wrong degree" round
        else if not (Gf.equal (Gf.add g.(0) g.(1)) !expected) then
          E.errorf E.Sumcheck_mismatch "round %d: g(0) + g(1) mismatch" round
        else begin
          Transcript.absorb_gf transcript "sumcheck/round" g;
          let r = Transcript.challenge_gf transcript "sumcheck/challenge" in
          point.(round) <- r;
          expected := Dense.interpolate_eval_small g r;
          go (round + 1)
        end
      end
    in
    go 0
  end
