(** The sumcheck protocol (Listing 1 of the paper, generalized to products of
    multilinear tables).

    The prover convinces the verifier that
    [sum_{b in {0,1}^L} comb(T_1(b), ..., T_k(b)) = claim], where each [T_j]
    is a multilinear table of size [2^L] and [comb] is a polynomial of total
    degree at most [degree] in its arguments.

    Each of the [L] rounds the prover sends the round polynomial
    [g_i(t) = sum_b comb(...)] restricted to the current top variable,
    tabulated at [t = 0..degree]; the verifier checks
    [g_i(0) + g_i(1) = previous claim], derives the Fiat-Shamir challenge
    [r_i], and reduces to the claim [g_i(r_i)]. After all rounds the claim
    must equal [comb] of the tables' multilinear evaluations at [r], which the
    caller ties to commitment openings.

    This is the dominant task in Spartan+Orion (~70% of runtime, Fig. 6); the
    [stats] record feeds the NoCap performance model. *)

module Gf = Zk_field.Gf

type proof = { round_polys : Gf.t array array }
(** [round_polys.(i)] has [degree + 1] evaluations of [g_i] at [0..degree]. *)

type stats = {
  rounds : int;
  mults : int; (** field multiplications performed by the prover *)
  adds : int; (** field additions performed by the prover *)
}

type prover_result = {
  proof : proof;
  challenges : Gf.t array; (** the random point r, one entry per round *)
  final_values : Gf.t array; (** each table folded down to its MLE at r *)
  stats : stats;
}

val prove :
  ?engine:Zk_pcs.Engine.t ->
  ?comb_mults:int ->
  Zk_hash.Transcript.t ->
  degree:int ->
  tables:Gf.t array array ->
  comb:(Gf.t array -> Gf.t) ->
  claim:Gf.t ->
  prover_result
(** Runs the prover. [tables] are not mutated (they are copied once — into
    unboxed {!Nocap_vec.Fv} vectors, so every round evaluation and table
    fold runs over flat int64). [comb] receives one value per table;
    [comb_mults] is the number of field multiplications one [comb] call
    performs (default 0), so [stats] can account for them. The claim is
    absorbed into the transcript, so prover and verifier bind to it.
    [engine] supplies the worker pool for round evaluation and folds; the
    proof is byte-identical for every engine. *)

val prove_streaming :
  ?engine:Zk_pcs.Engine.t ->
  ?comb_mults:int ->
  budget_bytes:int ->
  Zk_hash.Transcript.t ->
  degree:int ->
  tables:Nocap_vec.Spill.t array ->
  comb:(Gf.t array -> Gf.t) ->
  claim:Gf.t ->
  prover_result
(** Bounded-memory prover over spillable tables (recompute-halves): no
    folded table generation is ever stored. After j rounds the current
    table is recomputed on the fly as an eq-weighted sum of strided slices
    of the original, read in budget-sized blocks; once the shrinking
    residual fits half the budget, the tables are materialized into RAM
    and the standard loop finishes. Each streamed round costs one full
    pass over the original tables. The result — proof bytes, challenges,
    final values, stats — is identical to {!prove} on the same data for
    every budget; the in-memory prover is the oracle the equivalence tests
    pin this against. [tables] are read, never written; the caller frees
    them. @raise Invalid_argument if [budget_bytes <= 0]. *)

val prove_arrays :
  ?engine:Zk_pcs.Engine.t ->
  ?comb_mults:int ->
  Zk_hash.Transcript.t ->
  degree:int ->
  tables:Gf.t array array ->
  comb:(Gf.t array -> Gf.t) ->
  claim:Gf.t ->
  prover_result
(** Boxed-array reference implementation of {!prove}: same chunking, same
    combine order, same arithmetic, byte-identical proof and challenges.
    Kept as the correctness oracle the equivalence tests compare against. *)

type verifier_result = {
  point : Gf.t array;
  value : Gf.t; (** the reduced claim comb(T_1(r), ..., T_k(r)) must equal *)
}

val verify :
  Zk_hash.Transcript.t ->
  degree:int ->
  num_vars:int ->
  claim:Gf.t ->
  proof ->
  (verifier_result, Zk_pcs.Verify_error.t) result
(** Replays the rounds, checking [g_i(0) + g_i(1)] against the running claim.
    The caller must still check [result.value] against oracle evaluations of
    the tables at [result.point]. Total on arbitrary proofs: a wrong round
    count or round-polynomial degree is [Shape], a failed running-claim
    check is [Sumcheck_mismatch], and [degree < 1] is [Params] (a degree-0
    round polynomial could not even be length-checked against [g(1)]). *)
