module Gf = Zk_field.Gf
module Transcript = Zk_hash.Transcript
module Mle = Zk_poly.Mle

type proof = {
  layer_claims : (Gf.t * Gf.t) array;
  sumchecks : Sumcheck.proof array;
}

type reduced_claim = { point : Gf.t array; value : Gf.t }

let log2_exact n =
  if n <= 0 || n land (n - 1) <> 0 then
    invalid_arg "Grand_product: size must be a power of two";
  let rec go k m = if m = 1 then k else go (k + 1) (m lsr 1) in
  go 0 n

let comb v = Gf.mul v.(0) (Gf.mul v.(1) v.(2))

let prove transcript v =
  let n = Array.length v in
  let l = log2_exact n in
  (* Build the product tree bottom-up: layers.(i) has 2^(l-i) entries. *)
  let layers = Array.make (l + 1) v in
  for i = 1 to l do
    let prev = layers.(i - 1) in
    layers.(i) <-
      Array.init (Array.length prev / 2) (fun y -> Gf.mul prev.(2 * y) prev.((2 * y) + 1))
  done;
  let product = layers.(l).(0) in
  Transcript.absorb_int transcript "gp/num_vars" l;
  Transcript.absorb_gf transcript "gp/product" [| product |];
  let layer_claims = Array.make l (Gf.zero, Gf.zero) in
  let sumchecks = Array.make l { Sumcheck.round_polys = [||] } in
  let r = ref [||] in
  let claim = ref product in
  (* Descend from the root: tie P_k(r) to the layer below. *)
  for k = l downto 1 do
    let below = layers.(k - 1) in
    let half = Array.length below / 2 in
    let evens = Array.init half (fun y -> below.(2 * y)) in
    let odds = Array.init half (fun y -> below.((2 * y) + 1)) in
    let eq = Mle.eq_table !r in
    let res =
      Sumcheck.prove ~comb_mults:2 transcript ~degree:3 ~tables:[| eq; evens; odds |]
        ~comb ~claim:!claim
    in
    let p0 = res.Sumcheck.final_values.(1) and p1 = res.Sumcheck.final_values.(2) in
    layer_claims.(l - k) <- (p0, p1);
    sumchecks.(l - k) <- res.Sumcheck.proof;
    Transcript.absorb_gf transcript "gp/halves" [| p0; p1 |];
    let tau = Transcript.challenge_gf transcript "gp/tau" in
    (* P_{k-1}(rho, tau): the two half-claims are the endpoints of a line in
       the last variable. *)
    claim := Gf.add p0 (Gf.mul tau (Gf.sub p1 p0));
    r := Array.append res.Sumcheck.challenges [| tau |]
  done;
  (product, { layer_claims; sumchecks }, { point = !r; value = !claim })

let verify transcript ~num_vars ~product proof =
  let module E = Zk_pcs.Verify_error in
  let ( let* ) = Result.bind in
  let l = num_vars in
  let* () =
    if Array.length proof.layer_claims = l && Array.length proof.sumchecks = l then Ok ()
    else E.error E.Shape "wrong number of layers"
  in
  Transcript.absorb_int transcript "gp/num_vars" l;
  Transcript.absorb_gf transcript "gp/product" [| product |];
  let r = ref [||] in
  let claim = ref product in
  let rec descend step =
    if step >= l then Ok { point = !r; value = !claim }
    else begin
      let* res =
        Sumcheck.verify transcript ~degree:3 ~num_vars:step ~claim:!claim
          proof.sumchecks.(step)
      in
      let p0, p1 = proof.layer_claims.(step) in
      (* The reduced sumcheck value must equal eq(r, rho) * p0 * p1. *)
      let eq = Mle.eq_point !r res.Sumcheck.point in
      let* () =
        if Gf.equal res.Sumcheck.value (Gf.mul eq (Gf.mul p0 p1)) then Ok ()
        else
          Zk_pcs.Verify_error.errorf Zk_pcs.Verify_error.Sumcheck_mismatch
            "layer %d: half-claims inconsistent" step
      in
      Transcript.absorb_gf transcript "gp/halves" [| p0; p1 |];
      let tau = Transcript.challenge_gf transcript "gp/tau" in
      claim := Gf.add p0 (Gf.mul tau (Gf.sub p1 p0));
      r := Array.append res.Sumcheck.point [| tau |];
      descend (step + 1)
    end
  in
  descend 0
