(** The grand-product argument (Thaler'13 / Quarks): prove that the product
    of a committed vector's entries equals a claimed value, in a logarithmic
    number of sumcheck rounds.

    This is the protocol core of Spartan's SPARK sparse-matrix commitment
    (the component whose multiset-hash instantiations the paper runs 4 times,
    Sec. VII-A): offline memory checking reduces to comparing grand products
    of the multiset fingerprints, and each grand product is proven with this
    argument.

    Construction: a binary product tree [P_0 = v], [P_{i+1}(y) =
    P_i(y,0) * P_i(y,1)]; each layer is tied to the next by the sumcheck
    [P_{i+1}(r) = sum_y eq(r,y) * P_i(y,0) * P_i(y,1)], whose end reduces to
    two evaluations of [P_i] differing only in the last variable — a degree-1
    restriction the verifier collapses with one more challenge. The chain
    bottoms out at a single evaluation claim on [v] itself, which the caller
    discharges against its polynomial commitment. *)

module Gf = Zk_field.Gf

type proof = {
  layer_claims : (Gf.t * Gf.t) array;
      (** per layer, the two half-evaluations (p0, p1) the sumcheck reduces
          to *)
  sumchecks : Sumcheck.proof array;
}

type reduced_claim = {
  point : Gf.t array; (** evaluation point on the input vector's MLE *)
  value : Gf.t;
}

val prove :
  Zk_hash.Transcript.t -> Gf.t array -> Gf.t * proof * reduced_claim
(** [prove t v] for a power-of-two vector [v] returns the product, the proof,
    and the final claim [v~(point) = value] the caller must still tie to a
    commitment of [v]. *)

val verify :
  Zk_hash.Transcript.t ->
  num_vars:int ->
  product:Gf.t ->
  proof ->
  (reduced_claim, Zk_pcs.Verify_error.t) result
(** Replays the layer chain; on success returns the reduced claim for the
    caller's commitment opening. Total on arbitrary proofs. *)
