(** The Orion polynomial commitment scheme in its accelerator-friendly
    configuration (Sec. II, Sec. VII-A): Reed-Solomon codes at blowup 4
    (the Shockwave substitution), 128-row matrices, 189 column queries, and
    4 random-combination proximity tests.

    To commit to a multilinear polynomial with [2^L] coefficients, the prover
    arranges the coefficient table into a [rows x cols] matrix, encodes every
    row, hashes each codeword column into a Merkle leaf, and publishes the
    root. An evaluation proof at point [q = (q_row, q_col)] sends the
    combination [u = eq(q_row)^T W] plus masked random combinations for
    proximity, and answers [189] column queries with Merkle openings; the
    verifier re-encodes the combinations and spot-checks them column-wise, so
    its work is [O(cols log cols + queries * rows)] instead of [O(2^L)].

    When [zk] is set, each proximity combination is additively masked by a
    committed random row, hiding the witness rows (the paper's masking
    polynomial, Sec. VII-A). The evaluation combination itself follows the
    non-hiding Brakedown/Shockwave variant — full hiding needs Orion's
    recursive inner proof, which this reproduction substitutes away (see
    DESIGN.md). *)

module Gf = Zk_field.Gf

type params = {
  rows : int; (** data rows in the matrix; 128 in the paper *)
  code : Zk_ecc.Linear_code.t;
  proximity_count : int; (** random combinations for the proximity test; 4 *)
  zk : bool;
}

val default_params : params
(** rows = 128, Reed-Solomon blowup 4, 4 proximity vectors, zk masking on. *)

type param_error =
  | Rows_not_positive of int
  | Rows_not_power_of_two of int
  | Proximity_count_not_positive of int
  | Code_rate_insane of { code : string; blowup : int }

val validate_params : params -> (unit, param_error) result
(** Structural sanity of a parameter set: [rows] a positive power of two,
    at least one proximity combination, a code blowup in [2, 64]. Checked
    by {!commit} before any work happens, so a bad configuration fails at
    construction with a structured error instead of deep inside the
    encoder. *)

val param_error_to_string : param_error -> string

type commitment = {
  root : Zk_merkle.Merkle.digest;
  num_vars : int;
  mat_rows : int; (** data rows actually used (min rows (2^num_vars)) *)
  mat_cols : int;
}

type committed
(** Prover-side state: the coefficient matrix, its encoding, mask rows, and
    the Merkle tree. *)

type eval_proof = {
  u : Gf.t array; (** eq(q_row)^T W, length mat_cols *)
  proximity : Gf.t array array; (** masked random row-combinations *)
  columns : (int * Gf.t array * Zk_merkle.Merkle.digest list) array;
      (** queried codeword columns with authentication paths *)
}

val commit :
  ?engine:Zk_pcs.Engine.t -> params -> Zk_util.Rng.t -> Gf.t array -> committed * commitment
(** [commit params rng table] commits to the multilinear polynomial whose
    evaluation table is [table] (power-of-two length). [rng] draws the zk
    mask rows (unused when [params.zk] is false); the draw order is fixed,
    so the commitment does not depend on the engine. When the engine
    carries a stream budget ({!Zk_pcs.Engine.stream_budget_bytes}), the
    commit runs out-of-core: the encoded matrix is never materialized and
    the un-encoded rows spill to a temp file — commitment and all
    subsequent proof bytes are identical either way.
    @raise Invalid_argument if {!validate_params} rejects [params]. *)

val commit_stream :
  ?engine:Zk_pcs.Engine.t ->
  params ->
  Zk_util.Rng.t ->
  num_vars:int ->
  read:(pos:int -> Nocap_vec.Fv.t -> unit) ->
  budget_bytes:int ->
  committed * commitment
(** The streaming commit over a flat-element producer: [read ~pos dst]
    fills [dst] with elements [pos, pos + length dst) of the (row-major)
    table, so callers can commit to data that never exists in RAM at once
    (chunked witness generation, generators). Peak residency is one
    budget-sized row block plus the column-sponge bank and the Merkle
    tree. Byte-identical to {!commit} on the same table. *)

val free_committed : committed -> unit
(** Release the spill file behind a streamed commitment (no-op for dense).
    Idempotent; also run by a GC finalizer as a backstop. *)

val prove_eval :
  ?engine:Zk_pcs.Engine.t ->
  params ->
  committed ->
  Zk_hash.Transcript.t ->
  Gf.t array ->
  Gf.t * eval_proof
(** [prove_eval params cm transcript point] opens the polynomial at [point]
    (length [num_vars]), returning the value and the proof. The commitment
    must have been absorbed by the caller via {!absorb_commitment}. The
    engine supplies the worker pool for row combinations and column
    openings (proof bytes are identical for every pool). *)

val max_num_vars : int
(** Largest [num_vars] a wire commitment may claim (32; paper scale tops out
    near 2^26). Bounding it keeps every size the verifier derives from an
    attacker-controlled commitment in range. *)

val validate_commitment : params -> commitment -> (unit, Zk_pcs.Verify_error.t) result
(** Pin an untrusted commitment to the matrix layout [commit] would have
    produced under these params: digest length, [num_vars] within
    [0, max_num_vars], and [mat_rows]/[mat_cols] equal to the derived
    layout. Run by {!verify_eval} before any size is trusted. *)

val verify_eval :
  ?engine:Zk_pcs.Engine.t ->
  params ->
  commitment ->
  Zk_hash.Transcript.t ->
  Gf.t array ->
  Gf.t ->
  eval_proof ->
  (unit, Zk_pcs.Verify_error.t) result
(** Verifies that the committed polynomial evaluates to the claimed value at
    the point. The transcript must mirror the prover's. Total on arbitrary
    commitments and proofs (e.g. decoded from hostile bytes): every failure
    is a categorized [Error], never an exception. *)

val absorb_commitment : Zk_hash.Transcript.t -> commitment -> unit

val proof_size_bytes : params -> commitment -> eval_proof -> int
(** Serialized size: 8 bytes per field element, 32 per digest, 8 per column
    index — the proof-size accounting behind Table III. *)

val split_point : commitment -> Gf.t array -> Gf.t array * Gf.t array
(** Split an evaluation point into (row part, column part) per the matrix
    layout. *)
