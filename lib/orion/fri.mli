(** FRI (Fast Reed-Solomon IOP of Proximity) — the low-degree test behind
    STARKs, one of the hash-based protocol families NoCap's programmability
    covers (Sec. IV-E; the paper cites FRI as [81] and STARKs as [62]).

    The prover commits (via SHA3 Merkle trees) to a polynomial's evaluations
    over a multiplicative coset domain of size [blowup * degree_bound], then
    repeatedly folds even/odd parts with transcript challenges, halving the
    domain until a constant remains. The verifier spot-checks each fold at
    random positions:
    [f_{i+1}(x^2) = (f_i(x) + f_i(-x)) / 2 + beta * (f_i(x) - f_i(-x)) / (2x)]
    and accepts only if the final layer is the claimed constant.

    Every primitive here is a NoCap FU operation: NTTs to evaluate, SHA3 to
    commit, element-wise arithmetic to fold — which is the generality point
    this module exists to demonstrate (its kernels are benchmarked alongside
    Orion's in [bench/main.exe]). *)

module Gf = Zk_field.Gf

type params = {
  blowup_log2 : int; (** domain = 2^blowup_log2 * degree bound; 2 here *)
  num_queries : int; (** spot checks per fold; 30 at blowup 4 ~ 60-bit LDT *)
}

val default_params : params

type proof = {
  layer_roots : Zk_merkle.Merkle.digest array; (** one per fold layer *)
  final_constant : Gf.t;
  queries : query array;
}

and query = {
  position : int;
  layers : (Gf.t * Gf.t * Zk_merkle.Merkle.digest list * Zk_merkle.Merkle.digest list) array;
      (** per layer: f(x), f(-x) and their authentication paths *)
}

val prove :
  ?shift:Gf.t ->
  params ->
  Zk_hash.Transcript.t ->
  Gf.t array ->
  proof
(** [prove params t coeffs] commits to the polynomial with coefficient vector
    [coeffs] (power-of-two length = the degree bound) and proves it is within
    degree. [shift] evaluates over the coset [shift * <w>] instead of the
    plain subgroup — STARKs need this so constraint quotients are defined
    everywhere on the evaluation domain ({!Stark}). *)

val verify :
  ?shift:Gf.t ->
  params ->
  Zk_hash.Transcript.t ->
  degree_bound:int ->
  proof ->
  (unit, string) result

val proof_size_bytes : proof -> int

(** {2 Shared folding machinery}

    Reused by {!Fri_pcs}, which interleaves these codeword folds with a
    sumcheck to turn the low-degree test into a multilinear PCS. *)

val commit_layer : Gf.t array -> Zk_merkle.Merkle.tree
(** Merkle tree over an evaluation layer, co-locating [f(x)] and [f(-x)]:
    leaf [j] commits to [(E.(j), E.(j + half))]. *)

val fold : shift:Gf.t -> Gf.t array -> Gf.t -> Gf.t array
(** [fold ~shift evals beta] halves the layer:
    [out.(j) = (E.(j) + E.(j+half)) / 2 + beta * (E.(j) - E.(j+half)) / (2x_j)]
    where [x_j = shift * w^j]. On the coefficient side this is
    [c'_i = c_{2i} + beta * c_{2i+1}] — it binds monomial bit 0. *)
