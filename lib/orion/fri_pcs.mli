(** A multilinear PCS built from the {!Fri} low-degree-test machinery — the
    NTT-heavy end of the PCS design space ("When Proofs Meet Hardware"
    contrasts it with sumcheck-friendly codes like Orion's), wired in as
    the second {!Zk_pcs.Pcs.S} backend so the Spartan functor exercises
    both.

    [commit] maps the hypercube evaluation table to univariate monomial
    coefficients (Mobius transform + bit reversal, arranging variable [j]
    at monomial bit [j - 1]), low-degree-extends them with an NTT at rate
    [2^-blowup_log2], and Merkle-commits the codeword. [open_at] proves
    [v = sum_b f(b) eq(q, b)] with a basefold-style argument: a degree-2
    sumcheck over [f] and [eq(q)] whose per-round challenge also
    even/odd-folds the codeword, so after the last round the codeword is
    the constant [f~(r)] and spot checks against the committed layers are
    all that is left to verify.

    Unlike Orion's zk configuration this backend draws no hiding masks
    (the [rng] passed to [commit] is unused): openings leak information
    about the polynomial beyond the evaluation, so it is a performance /
    design-space backend, not a zero-knowledge one. *)

type params = {
  blowup_log2 : int; (** rate = 2^-blowup_log2; 2 by default *)
  num_queries : int; (** fold spot-checks; 30 by default *)
}

type param_error = Blowup_out_of_range of int | Queries_not_positive of int

type commitment = { root : Zk_merkle.Merkle.digest; num_vars : int }

type eval_proof = {
  round_polys : Zk_field.Gf.t array array;
      (** one degree-2 round polynomial (3 evaluations) per variable *)
  layer_roots : Zk_merkle.Merkle.digest array;
      (** roots of the folded codeword layers 1..num_vars *)
  final_constant : Zk_field.Gf.t;
  queries : (int * (Zk_field.Gf.t * Zk_field.Gf.t * Zk_merkle.Merkle.digest list) array) array;
      (** spot checks: layer-0 position, then per layer the even/odd pair
          with its authentication path *)
}
(** Transparent like {!Orion_pcs}'s types, so typed fault injection (and any
    other structural consumer) can build corrupted proofs field-by-field
    instead of patching wire bytes blind. *)

include
  Zk_pcs.Pcs.S
    with type params := params
     and type param_error := param_error
     and type commitment := commitment
     and type eval_proof := eval_proof
