(** {!Orion} packaged as a {!Zk_pcs.Pcs.S} backend — the sumcheck-friendly
    end of the PCS design space, and the scheme the paper's accelerator is
    sized for.

    All types are transparently equal to {!Orion}'s, so code written
    against the concrete Orion API (e.g. [proof.w_commitment.Orion.root])
    keeps working on the default Spartan instantiation. *)

include
  Zk_pcs.Pcs.S
    with type params = Orion.params
     and type param_error = Orion.param_error
     and type committed = Orion.committed
     and type commitment = Orion.commitment
     and type eval_proof = Orion.eval_proof
