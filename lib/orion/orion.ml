module Gf = Zk_field.Gf
module Mle = Zk_poly.Mle
module Merkle = Zk_merkle.Merkle
module Keccak = Zk_hash.Keccak
module Transcript = Zk_hash.Transcript
module Pool = Nocap_parallel.Pool
module Fv = Nocap_vec.Fv
module Spill = Nocap_vec.Spill

type params = {
  rows : int;
  code : Zk_ecc.Linear_code.t;
  proximity_count : int;
  zk : bool;
}

let default_params =
  { rows = 128; code = (module Zk_ecc.Reed_solomon); proximity_count = 4; zk = true }

type param_error =
  | Rows_not_positive of int
  | Rows_not_power_of_two of int
  | Proximity_count_not_positive of int
  | Code_rate_insane of { code : string; blowup : int }

let param_error_to_string = function
  | Rows_not_positive r -> Printf.sprintf "rows must be positive, got %d" r
  | Rows_not_power_of_two r -> Printf.sprintf "rows must be a power of two, got %d" r
  | Proximity_count_not_positive c ->
    Printf.sprintf "proximity_count must be >= 1, got %d" c
  | Code_rate_insane { code; blowup } ->
    Printf.sprintf "code %s has insane rate: blowup %d outside [2, 64]" code blowup

let validate_params params =
  let module Code = (val params.code : Zk_ecc.Linear_code.S) in
  if params.rows <= 0 then Error (Rows_not_positive params.rows)
  else if params.rows land (params.rows - 1) <> 0 then
    Error (Rows_not_power_of_two params.rows)
  else if params.proximity_count < 1 then
    Error (Proximity_count_not_positive params.proximity_count)
  else if Code.blowup < 2 || Code.blowup > 64 then
    Error (Code_rate_insane { code = Code.name; blowup = Code.blowup })
  else Ok ()

type commitment = {
  root : Merkle.digest;
  num_vars : int;
  mat_rows : int;
  mat_cols : int;
}

(* Prover-side state is kept unboxed: each matrix is one row-major flat
   vector, so row combinations and column openings stream over contiguous
   (or fixed-stride) int64 instead of chasing a pointer per element.

   The backing store depends on how the commitment was built. The dense
   (in-memory) commit keeps the data matrix and the full encoded matrix
   resident — openings are strided reads. The streamed commit (engine
   budget set) keeps only the un-encoded rows (data then masks), in a
   spill file: the encoded matrix — the blowup-times-larger object — is
   never materialized, and openings re-encode every row block on demand,
   gathering just the queried codeword positions. Either way the column
   sponges and Merkle tree see identical bytes, so the commitment roots
   and proofs agree bit for bit. *)
type store =
  | Dense of { matrix : Fv.t; encoded : Fv.t }
  | Streamed of { all_rows : Spill.t; row_block : int }

type committed = {
  c_params : params;
  c_commitment : commitment;
  masks : Fv.t; (* proximity_count x mat_cols mask rows (length 0 if not zk) *)
  enc_rows : int; (* data rows + mask rows *)
  store : store;
  tree : Merkle.tree;
}

type eval_proof = {
  u : Gf.t array;
  proximity : Gf.t array array;
  columns : (int * Gf.t array * Merkle.digest list) array;
}

let log2_exact n =
  if n <= 0 || n land (n - 1) <> 0 then invalid_arg "Orion: size must be a power of two";
  let rec go k m = if m = 1 then k else go (k + 1) (m lsr 1) in
  go 0 n

let layout params table =
  let n = Array.length table in
  let _ = log2_exact n in
  let rows = min params.rows n in
  let cols = n / rows in
  (rows, cols)

(* Rows per pipeline stage: two full sponge blocks, so every absorbed block
   but the last lands on a permutation boundary. *)
let pipeline_block = 2 * Keccak.rate_lanes

(* Streamed commit: encode row-block k while absorbing row-block k-1 into
   the per-column sponges, so the Merkle leaf hashing overlaps the encoder
   instead of waiting for the full codeword matrix. Stage k is one fused
   pool job whose index space mixes encode rows and absorb columns: each
   row is weighted [w] virtual units (its cost relative to one column
   absorb) so the work-stealing grain sees a uniform cost per index. The
   result is byte-identical to encode-everything-then-hash: rows still
   stream into each column sponge in order, and the encoded matrix is still
   fully materialized (column openings read it in prove_eval). *)
let commit_dense ?engine params rng table =
  (match validate_params params with
  | Ok () -> ()
  | Error e -> invalid_arg ("Orion.commit: " ^ param_error_to_string e));
  let pool = Option.bind engine Zk_pcs.Engine.pool in
  let module Code = (val params.code : Zk_ecc.Linear_code.S) in
  let rows, cols = layout params table in
  (* The row-major matrix of a flat table is the table itself. *)
  let matrix = Fv.of_array table in
  let mask_rows = if params.zk then params.proximity_count else 0 in
  let masks = Fv.create (mask_rows * cols) in
  (* Same draw order as the boxed path: mask rows in order, each row left to
     right, one [Gf.random] per cell. *)
  for i = 0 to (mask_rows * cols) - 1 do
    Fv.unsafe_set masks i (Gf.random rng)
  done;
  let enc_rows = rows + mask_rows in
  let all_rows = Fv.create (enc_rows * cols) in
  Fv.blit ~src:matrix ~src_pos:0 ~dst:all_rows ~dst_pos:0 ~len:(rows * cols);
  Fv.blit ~src:masks ~src_pos:0 ~dst:all_rows ~dst_pos:(rows * cols) ~len:(mask_rows * cols);
  let code_len = Code.blowup * cols in
  let encoded = Fv.create (enc_rows * code_len) in
  let col_hash = Keccak.Col_hash.create code_len in
  let leaves = Array.make code_len "" in
  let row_ns = Code.row_encode_ns ~cols in
  let encode_row r =
    Code.encode_row_into
      ~src:(Fv.sub_view all_rows ~pos:(r * cols) ~len:cols)
      ~dst:(Fv.sub_view encoded ~pos:(r * code_len) ~len:code_len)
  in
  let nblocks = (enc_rows + pipeline_block - 1) / pipeline_block in
  (* Stage k encodes block k (if any) and absorbs block k-1 (if any); the
     stage after the last encode also finalizes the column sponges. *)
  for k = 0 to nblocks do
    let e_lo = k * pipeline_block in
    let rn = max 0 (min ((k + 1) * pipeline_block) enc_rows - e_lo) in
    let a_lo = (k - 1) * pipeline_block in
    let a_hi = min (k * pipeline_block) enc_rows in
    let last = k = nblocks in
    if k = 0 then
      Pool.run ?pool ~grain:(Pool.grain_of_ns row_ns) ~n:rn (fun lo hi ->
          for r = lo to hi - 1 do
            encode_row (e_lo + r)
          done)
    else begin
      let col_ns =
        max 1 (((a_hi - a_lo + Keccak.rate_lanes - 1) / Keccak.rate_lanes) * Keccak.block_ns ())
      in
      let absorb_cols c_lo c_hi =
        Keccak.Col_hash.absorb col_hash encoded ~row_stride:code_len ~r_lo:a_lo ~r_hi:a_hi
          ~c_lo ~c_hi;
        if last then Keccak.Col_hash.finalize col_hash ~total_rows:enc_rows ~c_lo ~c_hi leaves
      in
      let grain = Pool.grain_of_ns col_ns in
      if rn = 0 then Pool.run ?pool ~grain ~n:code_len (fun lo hi -> absorb_cols lo hi)
      else begin
        let w = max 1 (row_ns / col_ns) in
        let encode_hi = rn * w in
        Pool.run ?pool ~grain ~n:(encode_hi + code_len) (fun lo hi ->
            (* Row r's marker is virtual index r * w; a chunk encodes the
               rows whose markers it covers, so each row runs exactly once
               and a chunk's true cost tracks its virtual length. *)
            (if lo < encode_hi then begin
               let h = min hi encode_hi in
               for r = (lo + w - 1) / w to (h - 1) / w do
                 encode_row (e_lo + r)
               done
             end);
            if hi > encode_hi then absorb_cols (max 0 (lo - encode_hi)) (hi - encode_hi))
      end
    end
  done;
  let tree = Merkle.build leaves in
  let commitment =
    { root = Merkle.root tree; num_vars = log2_exact (Array.length table); mat_rows = rows; mat_cols = cols }
  in
  ( {
      c_params = params;
      c_commitment = commitment;
      masks;
      enc_rows;
      store = Dense { matrix; encoded };
      tree;
    },
    commitment )

(* Streaming commit over a flat-element producer: [read ~pos dst] must fill
   [dst] with elements [pos, pos + length dst) of the table (row-major
   [rows * cols], like the flat table itself). Nothing bigger than a
   budget-sized row block, the per-column sponge bank (200 bytes/column)
   and the Merkle tree is ever resident; the un-encoded rows go to a spill
   file for the opening phase. Mask rows are drawn from [rng] in exactly
   the dense order, rows stream into each column sponge in the same order
   (block-local absorb indices stay lane-aligned because blocks are
   multiples of [pipeline_block] = 2 sponge blocks), and the Merkle
   builder hashes the same leaf set — so the root and every subsequent
   proof byte match {!commit_dense} on the same data. *)
let commit_stream ?engine params rng ~num_vars ~read ~budget_bytes =
  (match validate_params params with
  | Ok () -> ()
  | Error e -> invalid_arg ("Orion.commit: " ^ param_error_to_string e));
  if num_vars < 0 || num_vars > 62 then invalid_arg "Orion.commit_stream: num_vars";
  let pool = Option.bind engine Zk_pcs.Engine.pool in
  let module Code = (val params.code : Zk_ecc.Linear_code.S) in
  let n = 1 lsl num_vars in
  let rows = min params.rows n in
  let cols = n / rows in
  let code_len = Code.blowup * cols in
  let mask_rows = if params.zk then params.proximity_count else 0 in
  let masks = Fv.create (mask_rows * cols) in
  for i = 0 to (mask_rows * cols) - 1 do
    Fv.unsafe_set masks i (Gf.random rng)
  done;
  let enc_rows = rows + mask_rows in
  (* Row block sized so the un-encoded and encoded staging buffers together
     fit ~half the budget, rounded to whole pipeline blocks so every block
     boundary is a permutation boundary (keeps block-local absorb indices
     congruent to absolute ones mod the sponge rate). *)
  let row_block =
    let by_budget = budget_bytes / 2 / (8 * (cols + code_len)) in
    let blocks = max 1 (by_budget / pipeline_block) in
    min (blocks * pipeline_block) (((enc_rows + pipeline_block - 1) / pipeline_block) * pipeline_block)
  in
  let all_rows = Spill.create ~tag:"orion-rows" ~spill:true (enc_rows * cols) in
  (* Cancellation or an injected I/O fault mid-commit must not strand the
     staging spill until a major GC: free it on any non-success exit (the
     finalizer stays as backstop only). *)
  let staged_ok = ref false in
  Fun.protect ~finally:(fun () -> if not !staged_ok then Spill.free all_rows)
  @@ fun () ->
  let src_buf = Fv.create (row_block * cols) in
  (* Stage the data rows into the spill file... *)
  let pos = ref 0 in
  while !pos < rows * cols do
    Pool.Cancel.check ();
    let len = min (row_block * cols) ((rows * cols) - !pos) in
    let v = Fv.sub_view src_buf ~pos:0 ~len in
    read ~pos:!pos v;
    Spill.write all_rows ~pos:!pos v;
    pos := !pos + len
  done;
  (* ...then the mask rows after them, same layout as the dense path. *)
  if mask_rows > 0 then Spill.write all_rows ~pos:(rows * cols) masks;
  let col_hash = Keccak.Col_hash.create code_len in
  let enc_buf = Fv.create (row_block * code_len) in
  let row_ns = Code.row_encode_ns ~cols in
  let nblocks = (enc_rows + row_block - 1) / row_block in
  for k = 0 to nblocks - 1 do
    Pool.Cancel.check ();
    let r_lo = k * row_block in
    let bh = min row_block (enc_rows - r_lo) in
    Spill.read all_rows ~pos:(r_lo * cols) (Fv.sub_view src_buf ~pos:0 ~len:(bh * cols));
    Pool.run ?pool ~grain:(Pool.grain_of_ns row_ns) ~n:bh (fun lo hi ->
        for r = lo to hi - 1 do
          Code.encode_row_into
            ~src:(Fv.sub_view src_buf ~pos:(r * cols) ~len:cols)
            ~dst:(Fv.sub_view enc_buf ~pos:(r * code_len) ~len:code_len)
        done);
    let col_ns =
      max 1 (((bh + Keccak.rate_lanes - 1) / Keccak.rate_lanes) * Keccak.block_ns ())
    in
    Pool.run ?pool ~grain:(Pool.grain_of_ns col_ns) ~n:code_len (fun c_lo c_hi ->
        (* Block-local row indices: r_lo is a multiple of the sponge rate,
           so [r mod rate_lanes] — the only thing absorb derives from the
           row index — matches the absolute row's. *)
        Keccak.Col_hash.absorb col_hash enc_buf ~row_stride:code_len ~r_lo:0 ~r_hi:bh
          ~c_lo ~c_hi)
  done;
  let leaves = Array.make code_len "" in
  Pool.run ?pool
    ~grain:(Pool.grain_of_ns (max 1 (Keccak.block_ns ())))
    ~n:code_len
    (fun c_lo c_hi ->
      Keccak.Col_hash.finalize col_hash ~total_rows:enc_rows ~c_lo ~c_hi leaves);
  let builder = Merkle.Builder.create code_len in
  Merkle.Builder.add builder leaves;
  let tree = Merkle.Builder.finish builder in
  let commitment =
    { root = Merkle.root tree; num_vars; mat_rows = rows; mat_cols = cols }
  in
  staged_ok := true;
  ( {
      c_params = params;
      c_commitment = commitment;
      masks;
      enc_rows;
      store = Streamed { all_rows; row_block };
      tree;
    },
    commitment )

(* The PCS entry point: the engine's stream budget selects the backing
   store. Both stores yield byte-identical commitments and proofs. *)
let commit ?engine params rng table =
  match Option.bind engine Zk_pcs.Engine.stream_budget_bytes with
  | None -> commit_dense ?engine params rng table
  | Some budget_bytes ->
    commit_stream ?engine params rng
      ~num_vars:(log2_exact (Array.length table))
      ~read:(fun ~pos dst -> Fv.write_array table ~src_pos:pos dst ~dst_pos:0 ~len:(Fv.length dst))
      ~budget_bytes

let free_committed c =
  match c.store with Dense _ -> () | Streamed { all_rows; _ } -> Spill.free all_rows

let absorb_commitment transcript (cm : commitment) =
  Transcript.absorb_digest transcript "orion/root" cm.root;
  Transcript.absorb_int transcript "orion/num_vars" cm.num_vars;
  Transcript.absorb_int transcript "orion/rows" cm.mat_rows

let split_point (cm : commitment) point =
  if Array.length point <> cm.num_vars then invalid_arg "Orion.split_point: dimension";
  let log_rows = log2_exact cm.mat_rows in
  (Array.sub point 0 log_rows, Array.sub point log_rows (cm.num_vars - log_rows))

(* combo coeffs^T M over a row-major flat matrix. Column chunks are
   independent, and within a column the accumulation order over rows is the
   serial one, so the combination is byte-identical for every domain count.
   The accumulator is a flat vector too: the loop body is pure unboxed
   int64, and only the final result is materialized as a boxed array for
   the (public) proof record. *)
let row_combination ?pool coeffs (mat : Fv.t) cols =
  let nrows = Array.length coeffs in
  let out = Fv.create cols in
  Fv.zero out;
  (* One output column costs [nrows] unboxed mul+adds, ~12ns each. *)
  Pool.run ?pool ~grain:(Pool.grain_of_ns (max 1 (nrows * 12))) ~n:cols (fun lo hi ->
      for r = 0 to nrows - 1 do
        let coeff = Array.unsafe_get coeffs r in
        let base = r * cols in
        for j = lo to hi - 1 do
          Fv.unsafe_set out j
            (Gf.add (Fv.unsafe_get out j) (Gf.mul coeff (Fv.unsafe_get mat (base + j))))
        done
      done);
  Fv.to_array out

let code_length params (cm : commitment) =
  let module Code = (val params.code : Zk_ecc.Linear_code.S) in
  Code.blowup * cm.mat_cols

(* coeffs^T over the DATA rows of a streamed store: row blocks are read
   back from the spill file and accumulated with axpy. Field arithmetic is
   exact, so the blocked accumulation equals the dense one bit for bit. *)
let row_combination_streamed coeffs all_rows ~row_block ~cols =
  let nrows = Array.length coeffs in
  let out = Fv.create cols in
  Fv.zero out;
  let buf = Fv.create (row_block * cols) in
  let r = ref 0 in
  while !r < nrows do
    let bh = min row_block (nrows - !r) in
    Spill.read all_rows ~pos:(!r * cols) (Fv.sub_view buf ~pos:0 ~len:(bh * cols));
    for i = 0 to bh - 1 do
      Fv.axpy_into ~dst:out coeffs.(!r + i) (Fv.sub_view buf ~pos:(i * cols) ~len:cols)
    done;
    r := !r + bh
  done;
  Fv.to_array out

let row_combination_store ?pool committed coeffs ~cols =
  match committed.store with
  | Dense { matrix; _ } -> row_combination ?pool coeffs matrix cols
  | Streamed { all_rows; row_block } ->
    row_combination_streamed coeffs all_rows ~row_block ~cols

(* Column openings from a streamed store: one more streaming re-encode
   pass over the spilled rows, gathering only the queried codeword
   positions — the whole point of never materializing the encoded matrix.
   The encoder is deterministic, so gathered values equal the dense
   store's strided reads. *)
let gather_columns_streamed ?pool committed ~all_rows ~row_block ~cols ~code_len indices =
  let module Code = (val committed.c_params.code : Zk_ecc.Linear_code.S) in
  let nq = Array.length indices in
  let enc_rows = committed.enc_rows in
  let col_vals = Array.init nq (fun _ -> Array.make enc_rows Gf.zero) in
  let src_buf = Fv.create (row_block * cols) in
  let enc_buf = Fv.create (row_block * code_len) in
  let row_ns = Code.row_encode_ns ~cols in
  let r_lo = ref 0 in
  while !r_lo < enc_rows do
    let bh = min row_block (enc_rows - !r_lo) in
    Spill.read all_rows ~pos:(!r_lo * cols) (Fv.sub_view src_buf ~pos:0 ~len:(bh * cols));
    Pool.run ?pool ~grain:(Pool.grain_of_ns row_ns) ~n:bh (fun lo hi ->
        for r = lo to hi - 1 do
          Code.encode_row_into
            ~src:(Fv.sub_view src_buf ~pos:(r * cols) ~len:cols)
            ~dst:(Fv.sub_view enc_buf ~pos:(r * code_len) ~len:code_len)
        done);
    for q = 0 to nq - 1 do
      let j = indices.(q) in
      let dst = col_vals.(q) in
      for r = 0 to bh - 1 do
        dst.(!r_lo + r) <- Fv.get enc_buf ((r * code_len) + j)
      done
    done;
    r_lo := !r_lo + bh
  done;
  Array.init nq (fun q -> (indices.(q), col_vals.(q), Merkle.path committed.tree indices.(q)))

let prove_eval ?engine params committed transcript point =
  let pool = Option.bind engine Zk_pcs.Engine.pool in
  let cm = committed.c_commitment in
  let module Code = (val params.code : Zk_ecc.Linear_code.S) in
  let cols = cm.mat_cols in
  let q_row, q_col = split_point cm point in
  Transcript.absorb_gf transcript "orion/point" point;
  (* Proximity test: random combinations of the data rows, each masked by its
     own committed random row so that nothing about the witness leaks. *)
  let proximity =
    Array.init params.proximity_count (fun i ->
        let rho = Transcript.challenge_gf_vec transcript "orion/rho" cm.mat_rows in
        let v = row_combination_store ?pool committed rho ~cols in
        let v =
          if params.zk then
            Array.mapi (fun j x -> Gf.add x (Fv.get committed.masks ((i * cols) + j))) v
          else v
        in
        Transcript.absorb_gf transcript "orion/proximity" v;
        v)
  in
  (* Consistency: the eq(q_row) combination, whose inner product with
     eq(q_col) is the evaluation. *)
  let eq_row = Mle.eq_table q_row in
  let u = row_combination_store ?pool committed eq_row ~cols in
  Transcript.absorb_gf transcript "orion/u" u;
  (* Column queries over the codeword domain. *)
  let bound = code_length params cm in
  let indices =
    Transcript.challenge_indices transcript "orion/columns" ~bound ~count:Code.query_count
  in
  let columns =
    match committed.store with
    | Dense { encoded; _ } ->
      (* Proximity-test column openings: each query reads the (immutable)
         encoded matrix and tree independently; a column is a
         stride-[bound] walk of the flat encoding. One opening gathers
         [enc_rows] strided elements and walks a Merkle path (~1µs of
         hashing-free pointer work). *)
      Pool.parallel_map ?pool
        ~grain:(Pool.grain_of_ns (max 1 ((committed.enc_rows * 10) + 1_000)))
        (fun j ->
          let col =
            Array.init committed.enc_rows (fun r -> Fv.get encoded ((r * bound) + j))
          in
          (j, col, Merkle.path committed.tree j))
        indices
    | Streamed { all_rows; row_block } ->
      gather_columns_streamed ?pool committed ~all_rows ~row_block ~cols
        ~code_len:bound indices
  in
  let eq_col = Mle.eq_table q_col in
  let value = ref Gf.zero in
  for j = 0 to cols - 1 do
    value := Gf.add !value (Gf.mul u.(j) eq_col.(j))
  done;
  (!value, { u; proximity; columns })

module E = Zk_pcs.Verify_error

(* Largest table size any configuration here addresses (paper scale tops out
   around 2^26); a decoded num_vars beyond this is hostile, and bounding it
   keeps every size derived from a wire commitment within range. *)
let max_num_vars = 32

(* A commitment that reached the verifier over the wire is
   attacker-controlled: before any size is derived from it, pin the matrix
   layout to the one [commit] would have produced under these params. After
   this check, [mat_rows] is a power of two with [log2 mat_rows <= num_vars],
   [mat_cols >= 1], and the codeword bound is positive — the facts the rest
   of [verify_eval] relies on to stay exception-free. *)
let validate_commitment params (cm : commitment) =
  let ( let* ) = Result.bind in
  let* () =
    match validate_params params with
    | Ok () -> Ok ()
    | Error e -> E.error E.Params (param_error_to_string e)
  in
  if String.length cm.root <> 32 then
    E.errorf E.Shape "commitment root has %d bytes, wanted 32" (String.length cm.root)
  else if cm.num_vars < 0 || cm.num_vars > max_num_vars then
    E.errorf E.Params "num_vars %d outside [0, %d]" cm.num_vars max_num_vars
  else begin
    let n = 1 lsl cm.num_vars in
    let rows = min params.rows n in
    if cm.mat_rows <> rows then
      E.errorf E.Params "mat_rows %d inconsistent with layout (wanted %d)" cm.mat_rows rows
    else if cm.mat_cols <> n / rows then
      E.errorf E.Params "mat_cols %d inconsistent with layout (wanted %d)" cm.mat_cols
        (n / rows)
    else Ok ()
  end

let verify_eval ?engine params (cm : commitment) transcript point value proof =
  ignore (engine : Zk_pcs.Engine.t option);
  let module Code = (val params.code : Zk_ecc.Linear_code.S) in
  let ( let* ) = Result.bind in
  let* () = validate_commitment params cm in
  let cols = cm.mat_cols in
  let* () =
    if Array.length point <> cm.num_vars then E.error E.Params "point dimension mismatch"
    else Ok ()
  in
  let q_row, q_col = split_point cm point in
  Transcript.absorb_gf transcript "orion/point" point;
  (* Recreate the proximity challenges in transcript order. *)
  let* rhos =
    if Array.length proof.proximity <> params.proximity_count then
      E.error E.Shape "wrong number of proximity vectors"
    else if Array.exists (fun v -> Array.length v <> cols) proof.proximity then
      E.error E.Shape "proximity vector has wrong length"
    else
      Ok
        (Array.map
           (fun v ->
             let rho = Transcript.challenge_gf_vec transcript "orion/rho" cm.mat_rows in
             Transcript.absorb_gf transcript "orion/proximity" v;
             rho)
           proof.proximity)
  in
  let* () =
    if Array.length proof.u = cols then Ok () else E.error E.Shape "u has wrong length"
  in
  Transcript.absorb_gf transcript "orion/u" proof.u;
  let bound = code_length params cm in
  let indices =
    Transcript.challenge_indices transcript "orion/columns" ~bound ~count:Code.query_count
  in
  let* () =
    if Array.length proof.columns = Code.query_count then Ok ()
    else E.error E.Shape "wrong number of column openings"
  in
  (* The verifier encodes the claimed combinations itself (O(cols log cols)). *)
  let encoded_u = Code.encode proof.u in
  let encoded_prox = Array.map Code.encode proof.proximity in
  let eq_row = Mle.eq_table q_row in
  let expected_rows = cm.mat_rows + if params.zk then params.proximity_count else 0 in
  let check_column k =
    let j, col, path = proof.columns.(k) in
    if j <> indices.(k) then E.errorf E.Consistency "column %d: index mismatch" k
    else if Array.length col <> expected_rows then
      E.errorf E.Shape "column %d: wrong height" k
    else begin
      match
        Merkle.check_path ~root:cm.root ~index:j ~leaf:(Merkle.leaf_of_column col) ~path
      with
      | Error reason -> E.errorf E.Merkle_mismatch "column %d: %s" k reason
      | Ok () ->
        (* Consistency of u with the committed data rows at this column. *)
        let dot coeffs =
          let acc = ref Gf.zero in
          Array.iteri (fun r c -> acc := Gf.add !acc (Gf.mul c col.(r))) coeffs;
          !acc
        in
        if not (Gf.equal encoded_u.(j) (dot eq_row)) then
          E.errorf E.Consistency "column %d: u consistency failed" k
        else begin
          (* Proximity combinations, each shifted by its mask row. *)
          let rec prox i =
            if i >= params.proximity_count then Ok ()
            else begin
              let expected = dot rhos.(i) in
              let expected =
                if params.zk then Gf.add expected col.(cm.mat_rows + i) else expected
              in
              if Gf.equal encoded_prox.(i).(j) expected then prox (i + 1)
              else E.errorf E.Consistency "column %d: proximity %d failed" k i
            end
          in
          prox 0
        end
    end
  in
  let rec all k =
    if k >= Array.length proof.columns then Ok ()
    else
      let* () = check_column k in
      all (k + 1)
  in
  let* () = all 0 in
  (* Finally the claimed evaluation. *)
  let eq_col = Mle.eq_table q_col in
  let v = ref Gf.zero in
  for j = 0 to cols - 1 do
    v := Gf.add !v (Gf.mul proof.u.(j) eq_col.(j))
  done;
  if Gf.equal !v value then Ok () else E.error E.Consistency "evaluation mismatch"

let proof_size_bytes params (cm : commitment) proof =
  let field_bytes = 8 and digest_bytes = 32 and index_bytes = 8 in
  let u_bytes = field_bytes * Array.length proof.u in
  let prox_bytes =
    Array.fold_left (fun acc v -> acc + (field_bytes * Array.length v)) 0 proof.proximity
  in
  let col_bytes =
    Array.fold_left
      (fun acc (_, col, path) ->
        acc + index_bytes + (field_bytes * Array.length col)
        + (digest_bytes * List.length path))
      0 proof.columns
  in
  ignore params;
  ignore cm;
  u_bytes + prox_bytes + col_bytes
