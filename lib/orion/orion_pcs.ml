module Gf = Zk_field.Gf
module Codec = Zk_pcs.Codec

let name = "orion"
let tag = '\001'

type params = Orion.params

let default_params = Orion.default_params
let test_params = { Orion.default_params with Orion.rows = 8 }

type param_error = Orion.param_error

let validate_params = Orion.validate_params
let param_error_to_string = Orion.param_error_to_string

type committed = Orion.committed
type commitment = Orion.commitment
type eval_proof = Orion.eval_proof

let commit = Orion.commit
let absorb_commitment = Orion.absorb_commitment
let commitment_num_vars (cm : commitment) = cm.Orion.num_vars
let open_at = Orion.prove_eval
let free_committed = Orion.free_committed
let verify = Orion.verify_eval
let proof_size_bytes = Orion.proof_size_bytes

let stats params (cm : commitment) (proof : eval_proof) =
  {
    Zk_pcs.Pcs.backend = name;
    num_vars = cm.Orion.num_vars;
    commitment_bytes = 32;
    proof_bytes = proof_size_bytes params cm proof;
    queries = Array.length proof.Orion.columns;
  }

(* --- byte forms (layout shared with the pre-functor Serialize module, so
   Orion-backend proof blobs stay byte-compatible modulo the header) --- *)

let write_commitment buf (cm : commitment) =
  Codec.put_digest buf cm.Orion.root;
  Codec.put_int buf cm.Orion.num_vars;
  Codec.put_int buf cm.Orion.mat_rows;
  Codec.put_int buf cm.Orion.mat_cols

let read_commitment r =
  let ( let* ) = Result.bind in
  let* root = Codec.get_digest r in
  let* num_vars = Codec.get_len r in
  let* mat_rows = Codec.get_len r in
  let* mat_cols = Codec.get_len r in
  Ok { Orion.root; num_vars; mat_rows; mat_cols }

let write_eval_proof buf (p : eval_proof) =
  Codec.put_gf_array buf p.Orion.u;
  Codec.put_int buf (Array.length p.Orion.proximity);
  Array.iter (Codec.put_gf_array buf) p.Orion.proximity;
  Codec.put_int buf (Array.length p.Orion.columns);
  Array.iter
    (fun (j, col, path) ->
      Codec.put_int buf j;
      Codec.put_gf_array buf col;
      Codec.put_int buf (List.length path);
      List.iter (Codec.put_digest buf) path)
    p.Orion.columns

let read_eval_proof r =
  let ( let* ) = Result.bind in
  let* u = Codec.get_gf_array r in
  let* proximity = Codec.get_array r Codec.get_gf_array in
  let* columns =
    Codec.get_array r (fun r ->
        let* j = Codec.get_len r in
        let* col = Codec.get_gf_array r in
        let* path = Codec.get_list r Codec.get_digest in
        Ok (j, col, path))
  in
  Ok { Orion.u; proximity; columns }
