module Gf = Zk_field.Gf
module Mle = Zk_poly.Mle
module Dense = Zk_poly.Dense
module Merkle = Zk_merkle.Merkle
module Transcript = Zk_hash.Transcript
module Ntt = Zk_ntt.Ntt.Gf_ntt
module Ntt_fv = Zk_ntt.Ntt.Gf_fv
module Pool = Nocap_parallel.Pool
module Codec = Zk_pcs.Codec
module Fv = Nocap_vec.Fv
module Spill = Nocap_vec.Spill

let name = "fri"
let tag = '\002'

type params = { blowup_log2 : int; num_queries : int }

let default_params = { blowup_log2 = 2; num_queries = 30 }
let test_params = { blowup_log2 = 2; num_queries = 12 }

type param_error = Blowup_out_of_range of int | Queries_not_positive of int

let validate_params p =
  if p.blowup_log2 < 1 || p.blowup_log2 > 8 then Error (Blowup_out_of_range p.blowup_log2)
  else if p.num_queries < 1 then Error (Queries_not_positive p.num_queries)
  else Ok ()

let param_error_to_string = function
  | Blowup_out_of_range b -> Printf.sprintf "blowup_log2 %d outside [1, 8]" b
  | Queries_not_positive q -> Printf.sprintf "num_queries must be >= 1, got %d" q

type commitment = { root : Merkle.digest; num_vars : int }

(* Prover-side opening state. Dense keeps the table and layer-0 codeword
   resident; Streamed (engine budget set) holds both in spill files and
   the opening runs the sumcheck/fold pyramid out of core. The codeword
   pyramid — sum over layers of 2^i — is the dominant in-memory object of
   an opening, and it is what streaming eliminates; the per-layer Merkle
   trees stay resident (openings need sibling paths), as does the NTT of
   the streaming COMMIT (flat, 8 bytes/element) — a documented limit of
   this backend's out-of-core support. *)
type store =
  | Dense of {
      table : Gf.t array; (* multilinear evaluations, length 2^num_vars *)
      evals : Gf.t array; (* layer-0 codeword, size 2^num_vars * blowup *)
    }
  | Streamed of { s_table : Spill.t; s_evals : Spill.t; budget : int }

type committed = { c_commitment : commitment; store : store; tree : Merkle.tree }

type eval_proof = {
  round_polys : Gf.t array array; (* one degree-2 polynomial (3 evals) per variable *)
  layer_roots : Merkle.digest array; (* roots of the folded layers 1..num_vars *)
  final_constant : Gf.t;
  queries : (int * (Gf.t * Gf.t * Merkle.digest list) array) array;
}

let log2_exact n =
  if n <= 0 || n land (n - 1) <> 0 then invalid_arg "Fri_pcs: size must be a power of two";
  let rec go k m = if m = 1 then k else go (k + 1) (m lsr 1) in
  go 0 n

(* Hypercube evaluations -> univariate coefficients, arranged so that
   monomial bit [j - 1] carries variable [j] (the j-th variable the
   sumcheck binds; variable 1 is the MSB of the evaluation index). With
   that arrangement {!Fri.fold}'s coefficient action
   [c'_i = c_{2i} + r * c_{2i+1}] is exactly "substitute the round
   challenge for the variable the sumcheck just bound", so one challenge
   drives both the sumcheck tables and the codeword. *)
let monomial_coeffs table =
  let n = Array.length table in
  let l = log2_exact n in
  let c = Array.copy table in
  (* Evaluations to multilinear monomial coefficients, one variable (index
     bit) at a time: (f(0), f(1)) |-> (f(0), f(1) - f(0)). *)
  let stride = ref 1 in
  while !stride < n do
    let s = !stride in
    let block = 2 * s in
    let i = ref 0 in
    while !i < n do
      for j = !i to !i + s - 1 do
        c.(j + s) <- Gf.sub c.(j + s) c.(j)
      done;
      i := !i + block
    done;
    stride := block
  done;
  if l = 0 then c
  else begin
    (* Bit-reverse: variable j lives at evaluation-index bit (l - j), and
       must land at monomial bit (j - 1). *)
    let rev m =
      let acc = ref 0 and m = ref m in
      for _ = 1 to l do
        acc := (!acc lsl 1) lor (!m land 1);
        m := !m lsr 1
      done;
      !acc
    in
    Array.init n (fun m -> c.(rev m))
  end

(* Chunked {!Fri.commit_layer} over a spillable codeword, fed through the
   incremental Merkle builder: leaf j pairs positions j and j + half, read
   in blocks. Same leaf bytes, same tree. *)
let commit_layer_spill ev ~block =
  let n = Spill.length ev in
  let half = n / 2 in
  let builder = Merkle.Builder.create half in
  let lo = Fv.create (min block half) and hi = Fv.create (min block half) in
  let j = ref 0 in
  while !j < half do
    Pool.Cancel.check ();
    let bl = min (Fv.length lo) (half - !j) in
    Spill.read ev ~pos:!j (Fv.sub_view lo ~pos:0 ~len:bl);
    Spill.read ev ~pos:(!j + half) (Fv.sub_view hi ~pos:0 ~len:bl);
    let leaves =
      Array.init bl (fun i -> Merkle.leaf_of_column [| Fv.get lo i; Fv.get hi i |])
    in
    Merkle.Builder.add builder leaves;
    j := !j + bl
  done;
  Merkle.Builder.finish builder

(* Copy a boxed table into a fresh spill file, block by block (the staging
   buffer stays budget-sized). *)
let spill_of_array ?tag arr ~block =
  let n = Array.length arr in
  let s = Spill.create ?tag ~spill:true n in
  try
    let buf = Fv.create (min block (max 1 n)) in
    let pos = ref 0 in
    while !pos < n do
      Pool.Cancel.check ();
      let len = min (Fv.length buf) (n - !pos) in
      let v = Fv.sub_view buf ~pos:0 ~len in
      Fv.write_array arr ~src_pos:!pos v ~dst_pos:0 ~len;
      Spill.write s ~pos:!pos v;
      pos := !pos + len
    done;
    s
  with e ->
    Spill.free s;
    raise e

let block_of_budget budget =
  (* Six block-sized staging vectors live at once in the opening loop
     (lo/hi per table plus output); keep them inside half the budget. *)
  max 1024 (budget / 2 / (8 * 6))

let commit ?engine params rng table =
  (match validate_params params with
  | Ok () -> ()
  | Error e -> invalid_arg ("Fri_pcs.commit: " ^ param_error_to_string e));
  ignore (rng : Zk_util.Rng.t); (* non-hiding backend: no masks to draw *)
  let n = Array.length table in
  let num_vars = log2_exact n in
  let domain = n lsl params.blowup_log2 in
  match Option.bind engine Zk_pcs.Engine.stream_budget_bytes with
  | None ->
    let coeffs = monomial_coeffs table in
    let evals = Array.make domain Gf.zero in
    Array.blit coeffs 0 evals 0 n;
    Ntt.forward (Ntt.plan domain) evals;
    let tree = Fri.commit_layer evals in
    let c_commitment = { root = Merkle.root tree; num_vars } in
    ({ c_commitment; store = Dense { table = Array.copy table; evals }; tree }, c_commitment)
  | Some budget ->
    (* Streaming store. The NTT itself still runs in RAM — over the flat
       8-byte/element vector rather than boxed Gf, but O(domain) resident
       all the same (documented limit); the win is downstream: the
       codeword and table spill, and the opening's fold pyramid never
       materializes. Field values are identical to the boxed NTT, so the
       root and proof bytes match the dense store's. *)
    let block = block_of_budget budget in
    let coeffs = monomial_coeffs table in
    let evals_fv = Fv.create domain in
    Fv.zero evals_fv;
    Fv.write_array coeffs ~src_pos:0 evals_fv ~dst_pos:0 ~len:n;
    Ntt_fv.forward (Ntt_fv.plan domain) evals_fv;
    let s_evals = Spill.create ~tag:"fri-evals" ~spill:true domain in
    (* Free the partially-built spills on cancellation / injected I/O
       faults instead of waiting for the GC backstop. *)
    let tree, s_table =
      try
        let pos = ref 0 in
        while !pos < domain do
          Pool.Cancel.check ();
          let len = min block (domain - !pos) in
          Spill.write s_evals ~pos:!pos (Fv.sub_view evals_fv ~pos:!pos ~len);
          pos := !pos + len
        done;
        let tree = commit_layer_spill s_evals ~block in
        let s_table = spill_of_array ~tag:"fri-table" table ~block in
        (tree, s_table)
      with e ->
        Spill.free s_evals;
        raise e
    in
    let c_commitment = { root = Merkle.root tree; num_vars } in
    ({ c_commitment; store = Streamed { s_table; s_evals; budget }; tree }, c_commitment)

let free_committed c =
  match c.store with
  | Dense _ -> ()
  | Streamed { s_table; s_evals; _ } ->
    Spill.free s_table;
    Spill.free s_evals

let absorb_commitment transcript (cm : commitment) =
  Transcript.absorb_digest transcript "fripcs/root" cm.root;
  Transcript.absorb_int transcript "fripcs/num_vars" cm.num_vars

let commitment_num_vars (cm : commitment) = cm.num_vars

(* The opening argument is a basefold-style interleaving: the claim
   [v = sum_b f(b) * eq(q, b)] runs through a degree-2 sumcheck over the
   tables [A = f] and [E = eq(q)], and each round's challenge [r_i] also
   folds the committed codeword, which keeps the codeword in sync as the
   coefficient vector of [f(r_1..r_i, .)]. After the last round the
   codeword is the constant [f~(r)], so the verifier can close the
   sumcheck with [f~(r) * eq~(q, r)] and needs only FRI-style spot checks
   (no second commitment, no trusted evaluation). *)
let open_at_dense ?engine params committed ~table ~evals transcript point =
  let pool = Option.bind engine Zk_pcs.Engine.pool in
  let cm = committed.c_commitment in
  let l = cm.num_vars in
  if Array.length point <> l then invalid_arg "Fri_pcs.open_at: point dimension";
  let n = Array.length table in
  Transcript.absorb_gf transcript "fripcs/point" point;
  let a = Array.copy table in
  let e = Mle.eq_table point in
  let value =
    let acc = ref Gf.zero in
    for b = 0 to n - 1 do
      acc := Gf.add !acc (Gf.mul a.(b) e.(b))
    done;
    !acc
  in
  Transcript.absorb_gf transcript "fripcs/value" [| value |];
  let round_polys = Array.make l [||] in
  let challenges = Array.make l Gf.zero in
  let layers = ref [ evals ] in
  let trees = ref [ committed.tree ] in
  let len = ref n in
  for round = 0 to l - 1 do
    let half = !len / 2 in
    (* Round polynomial g(t) = sum_b A_t(b) * E_t(b) with the top variable
       pinned to t, tabulated at t = 0, 1, 2. *)
    let g = Array.make 3 Gf.zero in
    for b = 0 to half - 1 do
      let a0 = a.(b) and a1 = a.(b + half) in
      let e0 = e.(b) and e1 = e.(b + half) in
      let da = Gf.sub a1 a0 and de = Gf.sub e1 e0 in
      g.(0) <- Gf.add g.(0) (Gf.mul a0 e0);
      g.(1) <- Gf.add g.(1) (Gf.mul a1 e1);
      g.(2) <- Gf.add g.(2) (Gf.mul (Gf.add a1 da) (Gf.add e1 de))
    done;
    round_polys.(round) <- g;
    Transcript.absorb_gf transcript "fripcs/round" g;
    let r = Transcript.challenge_gf transcript "fripcs/r" in
    challenges.(round) <- r;
    (* Bind the top variable of both tables... *)
    for b = 0 to half - 1 do
      a.(b) <- Gf.add a.(b) (Gf.mul r (Gf.sub a.(b + half) a.(b)));
      e.(b) <- Gf.add e.(b) (Gf.mul r (Gf.sub e.(b + half) e.(b)))
    done;
    len := half;
    (* ...and fold the codeword with the same challenge. *)
    let next = Fri.fold ~shift:Gf.one (List.hd !layers) r in
    layers := next :: !layers;
    let tree = Fri.commit_layer next in
    trees := tree :: !trees;
    Transcript.absorb_digest transcript "fripcs/layer" (Merkle.root tree)
  done;
  let layers = Array.of_list (List.rev !layers) in
  let trees = Array.of_list (List.rev !trees) in
  let final_constant = layers.(l).(0) in
  Transcript.absorb_gf transcript "fripcs/final" [| final_constant |];
  let domain = Array.length evals in
  let positions =
    Transcript.challenge_indices transcript "fripcs/queries" ~bound:(domain / 2)
      ~count:params.num_queries
  in
  let queries =
    (* One query opens a pair + Merkle path per layer, ~2µs per layer. *)
    Pool.parallel_map ?pool
      ~grain:(Nocap_parallel.Pool.grain_of_ns (max 1 (Array.length layers * 2_000)))
      (fun position ->
        let opened =
          Array.mapi
            (fun i layer ->
              let half = Array.length layer / 2 in
              let pos = position mod half in
              (layer.(pos), layer.(pos + half), Merkle.path trees.(i) pos))
            layers
        in
        (position, opened))
      positions
  in
  ( value,
    {
      round_polys;
      layer_roots = Array.init l (fun i -> Merkle.root trees.(i + 1));
      final_constant;
      queries;
    } )

(* The same interleaved sumcheck/fold, out of core: the tables [a]/[e] and
   every codeword layer live in spill files, touched one budget-sized block
   at a time. Accumulation order, fold arithmetic, and transcript traffic
   are element-for-element those of {!open_at_dense} — Goldilocks ops are
   exact and canonical, so value equality is bit equality and the proof
   bytes match. Block-start twiddles come from [Gf.pow] instead of the
   dense running product; same field element, same bits. *)
let open_at_streamed params committed ~s_table ~s_evals ~budget transcript point =
  let cm = committed.c_commitment in
  let l = cm.num_vars in
  if Array.length point <> l then invalid_arg "Fri_pcs.open_at: point dimension";
  let n = Spill.length s_table in
  let domain = Spill.length s_evals in
  let block = block_of_budget budget in
  (* Back a fresh working vector with a file only when it would bite into
     the budget; small tails stay in RAM (reads/writes are uniform). *)
  let fresh tag len = Spill.create ~tag ~spill:(len * 8 > budget / 4) len in
  Transcript.absorb_gf transcript "fripcs/point" point;
  (* Working copies: a = table, e = eq(point), both spilled. The eq table is
     generated directly into blocks via the aligned-range factorization. *)
  let a = fresh "fri-open-a" n in
  let buf = Fv.create (min block n) in
  let pos = ref 0 in
  while !pos < n do
    let len = min (Fv.length buf) (n - !pos) in
    let v = Fv.sub_view buf ~pos:0 ~len in
    Spill.read s_table ~pos:!pos v;
    Spill.write a ~pos:!pos v;
    pos := !pos + len
  done;
  let e = fresh "fri-open-e" n in
  let eblock =
    (* largest power of two <= min block n, so every range is aligned *)
    let b = min block n in
    let p = ref 1 in
    while !p * 2 <= b do p := !p * 2 done;
    !p
  in
  let pos = ref 0 in
  while !pos < n do
    let chunk = Mle.eq_table_range point ~lo:!pos ~len:eblock in
    Spill.write e ~pos:!pos (Fv.of_array chunk);
    pos := !pos + eblock
  done;
  let value =
    let acc = ref Gf.zero in
    let ab = Fv.create (min block n) and eb = Fv.create (min block n) in
    let pos = ref 0 in
    while !pos < n do
      let len = min (Fv.length ab) (n - !pos) in
      let av = Fv.sub_view ab ~pos:0 ~len and ev = Fv.sub_view eb ~pos:0 ~len in
      Spill.read a ~pos:!pos av;
      Spill.read e ~pos:!pos ev;
      for i = 0 to len - 1 do
        acc := Gf.add !acc (Gf.mul (Fv.get av i) (Fv.get ev i))
      done;
      pos := !pos + len
    done;
    !acc
  in
  Transcript.absorb_gf transcript "fripcs/value" [| value |];
  let round_polys = Array.make l [||] in
  let challenges = Array.make l Gf.zero in
  let layers = ref [ s_evals ] in
  let trees = ref [ committed.tree ] in
  let a = ref a and e = ref e in
  let len = ref n in
  let bsz = max 1 (min block (max (n / 2) (domain / 2))) in
  let alo = Fv.create bsz and ahi = Fv.create bsz in
  let elo = Fv.create bsz and ehi = Fv.create bsz in
  let inv2 = Gf.inv Gf.two in
  for round = 0 to l - 1 do
    let half = !len / 2 in
    (* Pass 1: the round polynomial, same b = 0 .. half-1 order. *)
    let g = Array.make 3 Gf.zero in
    let b = ref 0 in
    while !b < half do
      let bl = min bsz (half - !b) in
      let alv = Fv.sub_view alo ~pos:0 ~len:bl and ahv = Fv.sub_view ahi ~pos:0 ~len:bl in
      let elv = Fv.sub_view elo ~pos:0 ~len:bl and ehv = Fv.sub_view ehi ~pos:0 ~len:bl in
      Spill.read !a ~pos:!b alv;
      Spill.read !a ~pos:(!b + half) ahv;
      Spill.read !e ~pos:!b elv;
      Spill.read !e ~pos:(!b + half) ehv;
      for i = 0 to bl - 1 do
        let a0 = Fv.get alv i and a1 = Fv.get ahv i in
        let e0 = Fv.get elv i and e1 = Fv.get ehv i in
        let da = Gf.sub a1 a0 and de = Gf.sub e1 e0 in
        g.(0) <- Gf.add g.(0) (Gf.mul a0 e0);
        g.(1) <- Gf.add g.(1) (Gf.mul a1 e1);
        g.(2) <- Gf.add g.(2) (Gf.mul (Gf.add a1 da) (Gf.add e1 de))
      done;
      b := !b + bl
    done;
    round_polys.(round) <- g;
    Transcript.absorb_gf transcript "fripcs/round" g;
    let r = Transcript.challenge_gf transcript "fripcs/r" in
    challenges.(round) <- r;
    (* Pass 2: bind the top variable of both tables into fresh spills. *)
    let a' = fresh "fri-open-a" half and e' = fresh "fri-open-e" half in
    let b = ref 0 in
    while !b < half do
      let bl = min bsz (half - !b) in
      let alv = Fv.sub_view alo ~pos:0 ~len:bl and ahv = Fv.sub_view ahi ~pos:0 ~len:bl in
      let elv = Fv.sub_view elo ~pos:0 ~len:bl and ehv = Fv.sub_view ehi ~pos:0 ~len:bl in
      Spill.read !a ~pos:!b alv;
      Spill.read !a ~pos:(!b + half) ahv;
      Spill.read !e ~pos:!b elv;
      Spill.read !e ~pos:(!b + half) ehv;
      for i = 0 to bl - 1 do
        let a0 = Fv.get alv i and e0 = Fv.get elv i in
        Fv.set alv i (Gf.add a0 (Gf.mul r (Gf.sub (Fv.get ahv i) a0)));
        Fv.set elv i (Gf.add e0 (Gf.mul r (Gf.sub (Fv.get ehv i) e0)))
      done;
      Spill.write a' ~pos:!b alv;
      Spill.write e' ~pos:!b elv;
      b := !b + bl
    done;
    Spill.free !a;
    Spill.free !e;
    a := a';
    e := e';
    len := half;
    (* ...and fold the codeword with the same challenge, blockwise. *)
    let cw = List.hd !layers in
    let cw_len = Spill.length cw in
    let cw_half = cw_len / 2 in
    let w = Gf.root_of_unity (log2_exact cw_len) in
    let next = fresh "fri-layer" cw_half in
    let j = ref 0 in
    while !j < cw_half do
      let bl = min bsz (cw_half - !j) in
      let alv = Fv.sub_view alo ~pos:0 ~len:bl and ahv = Fv.sub_view ahi ~pos:0 ~len:bl in
      Spill.read cw ~pos:!j alv;
      Spill.read cw ~pos:(!j + cw_half) ahv;
      let x = ref (Gf.pow w (Int64.of_int !j)) in
      for i = 0 to bl - 1 do
        let av = Fv.get alv i and bv = Fv.get ahv i in
        let even = Gf.mul inv2 (Gf.add av bv) in
        let odd = Gf.mul inv2 (Gf.mul (Gf.sub av bv) (Gf.inv !x)) in
        Fv.set alv i (Gf.add even (Gf.mul r odd));
        x := Gf.mul !x w
      done;
      Spill.write next ~pos:!j alv;
      j := !j + bl
    done;
    layers := next :: !layers;
    let tree = commit_layer_spill next ~block in
    trees := tree :: !trees;
    Transcript.absorb_digest transcript "fripcs/layer" (Merkle.root tree)
  done;
  let layer_arr = Array.of_list (List.rev !layers) in
  let trees = Array.of_list (List.rev !trees) in
  let final_constant = Spill.get layer_arr.(l) 0 in
  Transcript.absorb_gf transcript "fripcs/final" [| final_constant |];
  let positions =
    Transcript.challenge_indices transcript "fripcs/queries" ~bound:(domain / 2)
      ~count:params.num_queries
  in
  let queries =
    Array.map
      (fun position ->
        let opened =
          Array.mapi
            (fun i layer ->
              let half = Spill.length layer / 2 in
              let pos = position mod half in
              (Spill.get layer pos, Spill.get layer (pos + half), Merkle.path trees.(i) pos))
            layer_arr
        in
        (position, opened))
      positions
  in
  (* Release the opening's temporaries; layer 0 is the committed codeword
     and stays alive until [free_committed]. *)
  Spill.free !a;
  Spill.free !e;
  for i = 1 to l do
    Spill.free layer_arr.(i)
  done;
  ( value,
    {
      round_polys;
      layer_roots = Array.init l (fun i -> Merkle.root trees.(i + 1));
      final_constant;
      queries;
    } )

let open_at ?engine params committed transcript point =
  match committed.store with
  | Dense { table; evals } -> open_at_dense ?engine params committed ~table ~evals transcript point
  | Streamed { s_table; s_evals; budget } ->
    open_at_streamed params committed ~s_table ~s_evals ~budget transcript point

module E = Zk_pcs.Verify_error

(* The evaluation domain is a power-of-two subgroup of the Goldilocks
   multiplicative group, whose 2-adicity is 32: a wire commitment claiming
   more variables than the domain can hold is hostile, and bounding it here
   keeps [1 lsl (l + blowup_log2)] and [root_of_unity] in range. *)
let max_domain_log2 = 32

let validate_commitment params (cm : commitment) =
  let ( let* ) = Result.bind in
  let* () =
    match validate_params params with
    | Ok () -> Ok ()
    | Error e -> E.error E.Params (param_error_to_string e)
  in
  if String.length cm.root <> 32 then
    E.errorf E.Shape "commitment root has %d bytes, wanted 32" (String.length cm.root)
  else if cm.num_vars < 0 || cm.num_vars + params.blowup_log2 > max_domain_log2 then
    E.errorf E.Params "num_vars %d outside [0, %d]" cm.num_vars
      (max_domain_log2 - params.blowup_log2)
  else Ok ()

let verify ?engine params (cm : commitment) transcript point value proof =
  ignore (engine : Zk_pcs.Engine.t option);
  let ( let* ) = Result.bind in
  let* () = validate_commitment params cm in
  let l = cm.num_vars in
  let* () =
    if Array.length point = l then Ok () else E.error E.Params "point dimension mismatch"
  in
  let* () =
    if Array.length proof.round_polys = l then Ok ()
    else E.error E.Shape "wrong number of sumcheck rounds"
  in
  let* () =
    if Array.length proof.layer_roots = l then Ok ()
    else E.error E.Shape "wrong number of fold layers"
  in
  Transcript.absorb_gf transcript "fripcs/point" point;
  Transcript.absorb_gf transcript "fripcs/value" [| value |];
  let challenges = Array.make l Gf.zero in
  let expected = ref value in
  let* () =
    let rec round i =
      if i = l then Ok ()
      else begin
        let g = proof.round_polys.(i) in
        if Array.length g <> 3 then E.errorf E.Shape "round %d: wrong degree" i
        else if not (Gf.equal (Gf.add g.(0) g.(1)) !expected) then
          E.errorf E.Sumcheck_mismatch "round %d: g(0) + g(1) does not match the claim" i
        else begin
          Transcript.absorb_gf transcript "fripcs/round" g;
          let r = Transcript.challenge_gf transcript "fripcs/r" in
          challenges.(i) <- r;
          expected := Dense.interpolate_eval_small g r;
          Transcript.absorb_digest transcript "fripcs/layer" proof.layer_roots.(i);
          round (i + 1)
        end
      end
    in
    round 0
  in
  Transcript.absorb_gf transcript "fripcs/final" [| proof.final_constant |];
  (* The folded codeword constant is f~(r); it must close the sumcheck. *)
  let* () =
    if Gf.equal !expected (Gf.mul proof.final_constant (Mle.eq_point point challenges))
    then Ok ()
    else E.error E.Sumcheck_mismatch "final claim does not match the folded constant"
  in
  let domain = 1 lsl (l + params.blowup_log2) in
  let positions =
    Transcript.challenge_indices transcript "fripcs/queries" ~bound:(domain / 2)
      ~count:params.num_queries
  in
  let* () =
    if Array.length proof.queries = params.num_queries then Ok ()
    else E.error E.Shape "wrong number of queries"
  in
  let roots = Array.append [| cm.root |] proof.layer_roots in
  let inv2 = Gf.inv Gf.two in
  let rec check_query qi =
    if qi >= Array.length proof.queries then Ok ()
    else begin
      let position, opened = proof.queries.(qi) in
      if position <> positions.(qi) then E.errorf E.Consistency "query %d: position mismatch" qi
      else if Array.length opened <> l + 1 then E.errorf E.Shape "query %d: layer count" qi
      else begin
        (* Walk the fold chain exactly as in {!Fri.verify} (plain subgroup:
           the shift is 1 at every layer). *)
        let rec walk i layer_size j exp =
          let half = layer_size / 2 in
          let leaf_pos = j mod half in
          let av, bv, path = opened.(i) in
          let leaf = Merkle.leaf_of_column [| av; bv |] in
          match Merkle.check_path ~root:roots.(i) ~index:leaf_pos ~leaf ~path with
          | Error reason -> E.errorf E.Merkle_mismatch "query %d layer %d: %s" qi i reason
          | Ok () ->
            let value_at_j = if j >= half then bv else av in
            let consistent =
              match exp with None -> true | Some v -> Gf.equal v value_at_j
            in
            if not consistent then
              E.errorf E.Consistency "query %d layer %d: fold mismatch" qi i
            else if i = l then
              if Gf.equal av proof.final_constant && Gf.equal bv proof.final_constant
              then Ok ()
              else E.errorf E.Consistency "query %d: final layer not constant" qi
            else begin
              let w = Gf.root_of_unity (log2_exact layer_size) in
              let x = Gf.pow w (Int64.of_int leaf_pos) in
              let even = Gf.mul inv2 (Gf.add av bv) in
              let odd = Gf.mul inv2 (Gf.mul (Gf.sub av bv) (Gf.inv x)) in
              let next = Gf.add even (Gf.mul challenges.(i) odd) in
              walk (i + 1) half leaf_pos (Some next)
            end
        in
        match walk 0 domain position None with
        | Error e -> Error e
        | Ok () -> check_query (qi + 1)
      end
    end
  in
  check_query 0

let proof_size_bytes params (cm : commitment) proof =
  ignore params;
  ignore cm;
  let field = 8 and digest = 32 and index = 8 in
  let round_bytes =
    Array.fold_left (fun acc g -> acc + (field * Array.length g)) 0 proof.round_polys
  in
  let query_bytes =
    Array.fold_left
      (fun acc (_, opened) ->
        acc + index
        + Array.fold_left
            (fun acc (_, _, path) -> acc + (2 * field) + (digest * List.length path))
            0 opened)
      0 proof.queries
  in
  round_bytes + (digest * Array.length proof.layer_roots) + field + query_bytes

let stats params (cm : commitment) proof =
  {
    Zk_pcs.Pcs.backend = name;
    num_vars = cm.num_vars;
    commitment_bytes = 32;
    proof_bytes = proof_size_bytes params cm proof;
    queries = Array.length proof.queries;
  }

(* --- byte forms --- *)

let write_commitment buf (cm : commitment) =
  Codec.put_digest buf cm.root;
  Codec.put_int buf cm.num_vars

let read_commitment r =
  let ( let* ) = Result.bind in
  let* root = Codec.get_digest r in
  let* num_vars = Codec.get_len r in
  Ok { root; num_vars }

let write_eval_proof buf p =
  Codec.put_int buf (Array.length p.round_polys);
  Array.iter (Codec.put_gf_array buf) p.round_polys;
  Codec.put_int buf (Array.length p.layer_roots);
  Array.iter (Codec.put_digest buf) p.layer_roots;
  Codec.put_gf buf p.final_constant;
  Codec.put_int buf (Array.length p.queries);
  Array.iter
    (fun (position, opened) ->
      Codec.put_int buf position;
      Codec.put_int buf (Array.length opened);
      Array.iter
        (fun (a, b, path) ->
          Codec.put_gf buf a;
          Codec.put_gf buf b;
          Codec.put_int buf (List.length path);
          List.iter (Codec.put_digest buf) path)
        opened)
    p.queries

let read_eval_proof r =
  let ( let* ) = Result.bind in
  let* round_polys = Codec.get_array r Codec.get_gf_array in
  let* layer_roots = Codec.get_array r Codec.get_digest in
  let* final_constant = Codec.get_gf r in
  let* queries =
    Codec.get_array r (fun r ->
        let* position = Codec.get_len r in
        let* opened =
          Codec.get_array r (fun r ->
              let* a = Codec.get_gf r in
              let* b = Codec.get_gf r in
              let* path = Codec.get_list r Codec.get_digest in
              Ok (a, b, path))
        in
        Ok (position, opened))
  in
  Ok { round_polys; layer_roots; final_constant; queries }
