(* Long-running proving-service runtime over Engine.t: bounded job queue,
   runner domains, a watchdog enforcing deadlines and backoff, retry with
   exponential backoff + deterministic jitter, demotion to the streaming
   prover under a memory budget, and graceful drain. DESIGN.md Sec. 15.

   Concurrency model: every piece of scheduler state lives under one mutex
   [lock] with two conditions — [work] (runners sleep here for ready jobs)
   and [done_c] (awaiters and drainers sleep here for outcomes). Proving
   itself runs outside the lock on runner *domains* (never systhreads: the
   kernel layer keeps per-domain arena scratch in DLS, which OS threads on
   one domain would interleave and corrupt). Asynchronous controllers —
   the watchdog, [cancel], signal handlers — never interact with a running
   attempt except through its cooperative Pool.Cancel token, so a stuck or
   crashing job can only ever fail itself. *)

module Pool = Nocap_parallel.Pool
module Engine = Zk_pcs.Engine
module Spill = Nocap_vec.Spill
module R1cs = Zk_r1cs.R1cs
module Rng = Zk_util.Rng
module Benchmarks = Zk_workloads.Benchmarks
module Synthetic = Zk_workloads.Synthetic
module Spartan = Zk_spartan.Spartan

(* --- requests ----------------------------------------------------------- *)

type kind = Prove | Verify of bytes

type request = {
  tenant : string;
  workload : string;
  scale : int;
  kind : kind;
  deadline_s : float option;
}

type outcome =
  | Proof of { bytes : bytes; attempts : int; streamed : bool; elapsed_s : float }
  | Verified of { attempts : int; elapsed_s : float }
  | Failed of { error : Job_error.t; attempts : int }

(* --- workload registry -------------------------------------------------- *)

(* Tenant-facing workload names resolve to the shipped circuit generators.
   Generation is a pure function of (workload, scale) — the synthetic seed
   is derived from the scale — so a retried or offline re-run of the same
   request builds the identical instance, which is what makes proof bytes
   comparable across attempts and against the offline prover. *)

let bench_scale_cap = 64
let synthetic_cap = 1 lsl 15

let workloads () =
  List.map (fun b -> b.Benchmarks.name) Benchmarks.all @ [ "synthetic" ]

let generate_workload ~workload ~scale =
  let invalid fmt = Printf.ksprintf (fun m -> Error (Job_error.Invalid_input m)) fmt in
  if scale <= 0 then invalid "scale must be positive, got %d" scale
  else
    match String.lowercase_ascii workload with
    | "synthetic" ->
      if scale > synthetic_cap then
        invalid "synthetic scale %d exceeds cap %d" scale synthetic_cap
      else begin
        try
          Ok
            (Synthetic.circuit ~n_constraints:scale ~public_seed:true
               ~seed:(Int64.of_int (0x5EED + scale)) ())
        with e -> invalid "synthetic generator: %s" (Printexc.to_string e)
      end
    | name -> (
      match Benchmarks.find name with
      | exception Not_found -> invalid "unknown workload %S" workload
      | b ->
        if scale > bench_scale_cap then
          invalid "%s scale %d exceeds cap %d" name scale bench_scale_cap
        else begin
          try Ok (b.Benchmarks.generate scale)
          with e -> invalid "%s generator: %s" name (Printexc.to_string e)
        end)

(* --- configuration ------------------------------------------------------ *)

type config = {
  capacity : int;
  runners : int;
  max_retries : int;
  backoff_base_s : float;
  backoff_max_s : float;
  default_deadline_s : float option;
  mem_budget_bytes : int option;
  params : Spartan.params;
  seed : int64;
  tick_s : float;
}

let default_config =
  {
    capacity = 64;
    runners = 2;
    max_retries = 2;
    backoff_base_s = 0.01;
    backoff_max_s = 0.5;
    default_deadline_s = None;
    mem_budget_bytes = None;
    params = Spartan.default_params;
    seed = 0x5EC7_1CE5L;
    tick_s = 0.002;
  }

(* --- jobs --------------------------------------------------------------- *)

type state = Queued | Running | Backoff | Finished

type job = {
  id : int;
  req : request;
  (* The generated circuit; [Some] from admission until the job finishes,
     then dropped so retained outcomes don't pin instance + assignment. *)
  mutable data : (R1cs.instance * R1cs.assignment) option;
  submitted_at : float;
  deadline_at : float; (* absolute; infinity when the job has no deadline *)
  rel_deadline : float; (* the relative deadline, for the error payload *)
  mutable state : state;
  mutable attempts : int;
  mutable not_before : float; (* backoff gate *)
  mutable token : Pool.Cancel.token option; (* set while Running *)
  mutable user_cancelled : bool;
  mutable streamed : bool; (* demoted to the streaming prover *)
  mutable outcome : outcome option;
}

type stats = {
  submitted : int;
  completed : int;
  failed : int;
  rejected : int;
  invalid : int;
  retries : int;
  timeouts : int;
  cancelled : int;
  demoted : int;
  crashes : int;
  io_failures : int;
}

type fault_hook = stage:string -> job_id:int -> attempt:int -> unit

type t = {
  cfg : config;
  engine : Engine.t;
  stream_engine : Engine.t option; (* demotion target, if a budget is set *)
  fault_hook : fault_hook option;
  lock : Mutex.t;
  work : Condition.t;
  done_c : Condition.t;
  ready : int Queue.t;
  mutable backoff_ids : int list;
  jobs : (int, job) Hashtbl.t;
  mutable next_id : int;
  mutable unfinished : int; (* admitted jobs not yet Finished; admission cap *)
  mutable draining : bool;
  drain_flag : bool Atomic.t; (* set from signal handlers, polled by watchdog *)
  mutable drain_kill_at : float option;
  mutable stopped : bool;
  mutable runners_live : int;
  mutable domains : unit Domain.t list;
  mutable s_submitted : int;
  mutable s_completed : int;
  mutable s_failed : int;
  mutable s_rejected : int;
  mutable s_invalid : int;
  mutable s_retries : int;
  mutable s_timeouts : int;
  mutable s_cancelled : int;
  mutable s_demoted : int;
  mutable s_crashes : int;
  mutable s_io_failures : int;
}

let stats_locked t =
  {
    submitted = t.s_submitted;
    completed = t.s_completed;
    failed = t.s_failed;
    rejected = t.s_rejected;
    invalid = t.s_invalid;
    retries = t.s_retries;
    timeouts = t.s_timeouts;
    cancelled = t.s_cancelled;
    demoted = t.s_demoted;
    crashes = t.s_crashes;
    io_failures = t.s_io_failures;
  }

let stats t =
  Mutex.lock t.lock;
  let s = stats_locked t in
  Mutex.unlock t.lock;
  s

(* --- scheduler internals (all with t.lock held) ------------------------- *)

(* Give back one admission slot and wake whoever may be waiting on it:
   awaiters/drainers parked on [done_c], and — when the last slot of a
   drain frees — runners parked on [work] (they exit on [draining &&
   unfinished = 0]). Every decrement of [unfinished] must go through
   here: the submit error paths release slots that never became jobs,
   and a drainer blocked on [done_c] would otherwise sleep forever if
   such a release is the one that brings [unfinished] to 0. *)
let release_slot_locked t =
  t.unfinished <- t.unfinished - 1;
  Condition.broadcast t.done_c;
  if t.draining && t.unfinished = 0 then Condition.broadcast t.work

let finish_locked t job outcome =
  if job.state <> Finished then begin
    job.state <- Finished;
    job.token <- None;
    job.outcome <- Some outcome;
    (* The circuit is dead weight once the outcome exists: drop it so a
       finished-but-not-yet-forgotten job retains only its outcome, not
       the full instance + assignment. *)
    job.data <- None;
    (match outcome with
    | Proof _ | Verified _ -> t.s_completed <- t.s_completed + 1
    | Failed _ -> t.s_failed <- t.s_failed + 1);
    release_slot_locked t
  end

let fail_deadline_locked t job =
  t.s_timeouts <- t.s_timeouts + 1;
  finish_locked t job
    (Failed
       {
         error = Job_error.Deadline_exceeded job.rel_deadline;
         attempts = job.attempts;
       })

let rec pop_ready_locked t =
  if Queue.is_empty t.ready then None
  else begin
    let id = Queue.pop t.ready in
    (* Entries are removed lazily: a queued job that was cancelled or
       deadline-expired is already Finished and its id just gets skipped. *)
    match Hashtbl.find_opt t.jobs id with
    | Some j when j.state = Queued -> Some j
    | _ -> pop_ready_locked t
  end

(* Exponential backoff with deterministic jitter: delay for attempt k is
   base * 2^(k-1) capped at max, scaled by a factor in [0.75, 1.25) drawn
   from an Rng seeded by (service seed, job id, attempt) — reproducible
   across runs, decorrelated across jobs. *)
let backoff_delay t job =
  let exp = min (job.attempts - 1) 16 in
  let d = t.cfg.backoff_base_s *. Float.of_int (1 lsl exp) in
  let d = Float.min d t.cfg.backoff_max_s in
  let r =
    Rng.create
      (Int64.add t.cfg.seed (Int64.of_int ((job.id * 8191) + job.attempts)))
  in
  d *. (0.75 +. (0.5 *. Rng.float r))

(* --- the attempt body (runs outside the lock) --------------------------- *)

let attempt_body t job ~inst ~asn tok attempt =
  (match t.fault_hook with
  | Some h -> h ~stage:"attempt" ~job_id:job.id ~attempt
  | None -> ());
  let engine =
    match t.stream_engine with
    | Some se when job.streamed -> se
    | _ -> t.engine
  in
  Pool.Cancel.with_token tok @@ fun () ->
  match job.req.kind with
  | Prove ->
    let proof, _stats = Spartan.prove ~engine t.cfg.params inst asn in
    Ok (Some (Spartan.proof_to_bytes proof))
  | Verify blob -> (
    match Spartan.proof_of_bytes blob with
    | Error e -> Error (Job_error.Verify_rejected e)
    | Ok proof -> (
      let io = R1cs.public_io inst asn in
      match Spartan.verify ~engine t.cfg.params inst ~io proof with
      | Ok () -> Ok None
      | Error e -> Error (Job_error.Verify_rejected e)))

(* Runs one attempt of [job]. Called and returns with t.lock held. *)
let run_attempt t job =
  let now = Unix.gettimeofday () in
  if job.user_cancelled then begin
    t.s_cancelled <- t.s_cancelled + 1;
    finish_locked t job
      (Failed
         { error = Job_error.Cancelled "cancelled by client"; attempts = job.attempts })
  end
  else if now > job.deadline_at then fail_deadline_locked t job
  else begin
    let inst, asn =
      match job.data with
      | Some d -> d
      | None -> assert false (* only Finished jobs drop their circuit *)
    in
    (* Demotion decision: a job whose in-memory working set would blow the
       configured budget runs on the streaming engine instead of dying.
       The estimate is the prover's resident factor (~6 full-length tables
       of 8 bytes/element) over the instance size. *)
    (match t.cfg.mem_budget_bytes with
    | Some budget when (not job.streamed) && 48 * R1cs.size inst > budget ->
      job.streamed <- true;
      t.s_demoted <- t.s_demoted + 1
    | _ -> ());
    let tok = Pool.Cancel.create () in
    job.token <- Some tok;
    job.state <- Running;
    job.attempts <- job.attempts + 1;
    let attempt = job.attempts in
    Mutex.unlock t.lock;
    let result =
      try attempt_body t job ~inst ~asn tok attempt
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        Error (Job_error.of_exn e bt)
    in
    Mutex.lock t.lock;
    job.token <- None;
    let now = Unix.gettimeofday () in
    let elapsed = now -. job.submitted_at in
    match result with
    | Ok payload ->
      (* A result that limps in after the deadline still counts as late:
         the tenant was promised a bound, not a proof. *)
      if now > job.deadline_at then fail_deadline_locked t job
      else begin
        match payload with
        | Some bytes ->
          finish_locked t job
            (Proof { bytes; attempts = job.attempts; streamed = job.streamed; elapsed_s = elapsed })
        | None ->
          finish_locked t job (Verified { attempts = job.attempts; elapsed_s = elapsed })
      end
    | Error err ->
      (* Refine a cooperative cancel: only the scheduler knows which
         controller tripped the token. *)
      let err =
        match err with
        | Job_error.Cancelled _ when job.user_cancelled -> err
        | Job_error.Cancelled _ when now > job.deadline_at ->
          Job_error.Deadline_exceeded job.rel_deadline
        | Job_error.Cancelled "draining" -> Job_error.Draining
        | e -> e
      in
      (match err with
      | Job_error.Worker_crash _ -> t.s_crashes <- t.s_crashes + 1
      | Job_error.Io_failure _ -> t.s_io_failures <- t.s_io_failures + 1
      | _ -> ());
      let retry =
        Job_error.retryable err
        && job.attempts <= t.cfg.max_retries
        && (not job.user_cancelled)
        && (not t.draining) && (not t.stopped)
        && now <= job.deadline_at
      in
      if retry then begin
        t.s_retries <- t.s_retries + 1;
        job.state <- Backoff;
        job.not_before <- now +. backoff_delay t job;
        t.backoff_ids <- job.id :: t.backoff_ids
      end
      else begin
        (match err with
        | Job_error.Deadline_exceeded _ -> t.s_timeouts <- t.s_timeouts + 1
        | Job_error.Cancelled _ -> t.s_cancelled <- t.s_cancelled + 1
        | _ -> ());
        finish_locked t job (Failed { error = err; attempts = job.attempts })
      end
  end

(* --- runner and watchdog domains ---------------------------------------- *)

let runner t () =
  Mutex.lock t.lock;
  let continue = ref true in
  while !continue do
    match pop_ready_locked t with
    | Some job -> run_attempt t job
    | None ->
      if t.stopped || (t.draining && t.unfinished = 0) then continue := false
      else Condition.wait t.work t.lock
  done;
  t.runners_live <- t.runners_live - 1;
  Condition.broadcast t.done_c;
  Mutex.unlock t.lock

let begin_drain_locked t =
  if not t.draining then begin
    t.draining <- true;
    Condition.broadcast t.work;
    Condition.broadcast t.done_c
  end

(* Shed every job that is not actively running; cancel the ones that are. *)
let shed_locked t =
  Hashtbl.iter
    (fun _ j ->
      match j.state with
      | Running -> (
        match j.token with
        | Some tok -> Pool.Cancel.cancel ~reason:"draining" tok
        | None -> ())
      | Queued | Backoff ->
        finish_locked t j (Failed { error = Job_error.Draining; attempts = j.attempts })
      | Finished -> ())
    t.jobs;
  t.backoff_ids <- []

let watchdog t () =
  Mutex.lock t.lock;
  while not t.stopped do
    Mutex.unlock t.lock;
    Unix.sleepf t.cfg.tick_s;
    Mutex.lock t.lock;
    if not t.stopped then begin
      let now = Unix.gettimeofday () in
      if Atomic.get t.drain_flag then begin_drain_locked t;
      (* Backoff bookkeeping: expire deadlines, release due retries. *)
      let keep =
        List.filter
          (fun id ->
            match Hashtbl.find_opt t.jobs id with
            | None -> false
            | Some j ->
              if j.state <> Backoff then false
              else if now > j.deadline_at then begin
                fail_deadline_locked t j;
                false
              end
              else if j.not_before <= now then begin
                j.state <- Queued;
                Queue.push j.id t.ready;
                Condition.broadcast t.work;
                false
              end
              else true)
          t.backoff_ids
      in
      t.backoff_ids <- keep;
      (* Deadline enforcement: queued jobs fail in place, running jobs get
         their token tripped and fail at the next kernel chunk boundary. *)
      Hashtbl.iter
        (fun _ j ->
          if now > j.deadline_at then
            match j.state with
            | Running -> (
              match j.token with
              | Some tok -> Pool.Cancel.cancel ~reason:"deadline" tok
              | None -> ())
            | Queued -> fail_deadline_locked t j
            | Backoff | Finished -> ())
        t.jobs;
      match t.drain_kill_at with
      | Some at when now > at ->
        t.drain_kill_at <- None;
        shed_locked t
      | _ -> ()
    end
  done;
  Mutex.unlock t.lock

(* --- public API --------------------------------------------------------- *)

let create ?engine ?fault_hook ?(config = default_config) () =
  if config.capacity < 1 then invalid_arg "Serve.create: capacity must be >= 1";
  if config.runners < 1 then invalid_arg "Serve.create: runners must be >= 1";
  if config.max_retries < 0 then invalid_arg "Serve.create: max_retries must be >= 0";
  if config.tick_s <= 0. then invalid_arg "Serve.create: tick_s must be positive";
  if config.backoff_base_s < 0. || config.backoff_max_s < 0. then
    invalid_arg "Serve.create: backoff must be non-negative";
  let engine = match engine with Some e -> e | None -> Engine.default () in
  (* Spill hygiene holds from startup, before the first job ever spills. *)
  Spill.install_signal_handlers ();
  let stream_engine =
    Option.map
      (fun budget ->
        Engine.create
          ?pool:(Engine.pool engine)
          ~config:(Engine.config engine)
          ~stream_budget_bytes:(max 65536 (budget / 4))
          ())
      config.mem_budget_bytes
  in
  let t =
    {
      cfg = config;
      engine;
      stream_engine;
      fault_hook;
      lock = Mutex.create ();
      work = Condition.create ();
      done_c = Condition.create ();
      ready = Queue.create ();
      backoff_ids = [];
      jobs = Hashtbl.create 64;
      next_id = 0;
      unfinished = 0;
      draining = false;
      drain_flag = Atomic.make false;
      drain_kill_at = None;
      stopped = false;
      runners_live = config.runners;
      domains = [];
      s_submitted = 0;
      s_completed = 0;
      s_failed = 0;
      s_rejected = 0;
      s_invalid = 0;
      s_retries = 0;
      s_timeouts = 0;
      s_cancelled = 0;
      s_demoted = 0;
      s_crashes = 0;
      s_io_failures = 0;
    }
  in
  let runners = List.init config.runners (fun _ -> Domain.spawn (runner t)) in
  let wd = Domain.spawn (watchdog t) in
  t.domains <- wd :: runners;
  t

let submit t req =
  (* Admission control first — capacity is reserved before the (possibly
     expensive) circuit generation, so a burst cannot overshoot the queue
     bound while generators are running. *)
  Mutex.lock t.lock;
  if t.stopped || t.draining then begin
    Mutex.unlock t.lock;
    Error Job_error.Draining
  end
  else if t.unfinished >= t.cfg.capacity then begin
    t.s_rejected <- t.s_rejected + 1;
    Mutex.unlock t.lock;
    Error (Job_error.Queue_full t.cfg.capacity)
  end
  else begin
    t.unfinished <- t.unfinished + 1;
    let id = t.next_id in
    t.next_id <- id + 1;
    Mutex.unlock t.lock;
    (* Generate on the submitting thread: admission-time validation of
       malformed tenant input, and no lazy circuit state ever crosses a
       domain boundary. *)
    match generate_workload ~workload:req.workload ~scale:req.scale with
    | Error e ->
      Mutex.lock t.lock;
      t.s_invalid <- t.s_invalid + 1;
      release_slot_locked t;
      Mutex.unlock t.lock;
      Error e
    | Ok (inst, asn) ->
      let now = Unix.gettimeofday () in
      let rel =
        match req.deadline_s with
        | Some d -> d
        | None -> Option.value t.cfg.default_deadline_s ~default:infinity
      in
      let job =
        {
          id;
          req;
          data = Some (inst, asn);
          submitted_at = now;
          deadline_at = (if rel = infinity then infinity else now +. rel);
          rel_deadline = rel;
          state = Queued;
          attempts = 0;
          not_before = 0.;
          token = None;
          user_cancelled = false;
          streamed = false;
          outcome = None;
        }
      in
      Mutex.lock t.lock;
      if t.stopped || t.draining then begin
        (* Drain raced the generation; shed rather than enqueue. *)
        release_slot_locked t;
        Mutex.unlock t.lock;
        Error Job_error.Draining
      end
      else begin
        Hashtbl.replace t.jobs id job;
        Queue.push id t.ready;
        t.s_submitted <- t.s_submitted + 1;
        Condition.signal t.work;
        Mutex.unlock t.lock;
        Ok id
      end
  end

let peek t id =
  Mutex.lock t.lock;
  let o = Option.bind (Hashtbl.find_opt t.jobs id) (fun j -> j.outcome) in
  Mutex.unlock t.lock;
  o

let await t id =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.jobs id with
  | None ->
    Mutex.unlock t.lock;
    invalid_arg (Printf.sprintf "Serve.await: unknown job %d" id)
  | Some j ->
    while j.outcome = None do
      Condition.wait t.done_c t.lock
    done;
    let o = Option.get j.outcome in
    Mutex.unlock t.lock;
    o

let cancel ?(reason = "cancelled by client") t id =
  Mutex.lock t.lock;
  let cancelled =
    match Hashtbl.find_opt t.jobs id with
    | None -> false
    | Some j -> (
      match j.state with
      | Finished -> false
      | Running ->
        j.user_cancelled <- true;
        (match j.token with
        | Some tok -> Pool.Cancel.cancel ~reason tok
        | None -> ());
        true
      | Queued | Backoff ->
        j.user_cancelled <- true;
        t.s_cancelled <- t.s_cancelled + 1;
        finish_locked t j
          (Failed { error = Job_error.Cancelled reason; attempts = j.attempts });
        true)
  in
  Mutex.unlock t.lock;
  cancelled

let forget t id =
  Mutex.lock t.lock;
  (match Hashtbl.find_opt t.jobs id with
  | Some j when j.state = Finished -> Hashtbl.remove t.jobs id
  | _ -> ());
  Mutex.unlock t.lock

let request_drain t = Atomic.set t.drain_flag true

(* First SIGTERM/SIGINT: graceful — flip the drain flag for the watchdog.
   Any further signal means the drain is stuck (e.g. a job that never
   reaches a cancel check), so escalate: run the saved handler chain —
   which includes Spill's leftover sweep — then restore the default
   disposition and re-raise, so operators can always force-exit through
   the sweep path instead of resorting to SIGKILL (which would skip it). *)
let handle_signals t =
  let sig_count = Atomic.make 0 in
  let saved =
    List.filter_map
      (fun signo ->
        try
          let prev = ref Sys.Signal_default in
          let handler s =
            if Atomic.fetch_and_add sig_count 1 = 0 then request_drain t
            else begin
              (match !prev with
              | Sys.Signal_handle f -> ( try f s with _ -> ())
              | Sys.Signal_ignore | Sys.Signal_default -> Spill.sweep_leftovers ());
              (try Sys.set_signal signo Sys.Signal_default
               with Invalid_argument _ | Sys_error _ -> ());
              (try Unix.kill (Unix.getpid ()) signo
               with Unix.Unix_error _ -> exit 1)
            end
          in
          let p = Sys.signal signo (Sys.Signal_handle handler) in
          prev := p;
          Some (signo, p)
        with Invalid_argument _ | Sys_error _ -> None)
      [ Sys.sigterm; Sys.sigint ]
  in
  fun () ->
    List.iter
      (fun (signo, prev) ->
        try Sys.set_signal signo prev with Invalid_argument _ | Sys_error _ -> ())
      saved

let drain ?grace_s t =
  Mutex.lock t.lock;
  begin_drain_locked t;
  (match grace_s with
  | Some g -> t.drain_kill_at <- Some (Unix.gettimeofday () +. g)
  | None -> ());
  while t.unfinished > 0 do
    Condition.wait t.done_c t.lock
  done;
  Mutex.unlock t.lock

let shutdown ?grace_s t =
  drain ?grace_s t;
  Mutex.lock t.lock;
  t.stopped <- true;
  Condition.broadcast t.work;
  Condition.broadcast t.done_c;
  let s = stats_locked t in
  Mutex.unlock t.lock;
  List.iter Domain.join t.domains;
  t.domains <- [];
  (* Sweep any spill state that escaped deterministic frees (there should
     be none; the finalizer backstop catches pathological paths) so the
     post-shutdown [Spill.live_files] check is meaningful. *)
  Gc.full_major ();
  s

let draining t =
  Mutex.lock t.lock;
  let d = t.draining in
  Mutex.unlock t.lock;
  d
