(** Failure taxonomy for proving-service jobs (DESIGN.md Sec. 15).

    Extends the PR 5 verification taxonomy upward: {!Zk_pcs.Verify_error}
    categorizes {e why a proof was rejected}; this type categorizes {e why
    a job did not produce one}. The operational split is {!retryable} —
    transient faults the scheduler re-runs with backoff — versus permanent
    failures reported to the tenant immediately. *)

type t =
  | Queue_full of int
      (** Admission control refused the job; payload is the configured
          capacity. Permanent from the service's perspective — the {e
          client} may resubmit later. *)
  | Invalid_input of string
      (** Malformed tenant request: unknown workload, non-positive or
          oversized scale, a generator that rejected the parameters. *)
  | Deadline_exceeded of float
      (** The job's deadline (payload, in seconds) passed — while queued,
          in backoff, or mid-kernel (cooperative cancel at the next chunk
          boundary). *)
  | Cancelled of string  (** Cancelled by the client; payload is the reason. *)
  | Worker_crash of { message : string; backtrace : string }
      (** An exception escaped the prover on a worker. Isolated to this
          job — the pool and other jobs are unaffected — and retryable. *)
  | Io_failure of string
      (** Spill/temp-file I/O failed ([EIO], [ENOSPC], ...). Retryable:
          the retry re-commits from scratch on fresh files. *)
  | Resource_exhausted of string
      (** [Out_of_memory] / [Stack_overflow]. Retryable — the retry may be
          demoted to the streaming prover. *)
  | Verify_rejected of Zk_pcs.Verify_error.t
      (** A verify job's proof failed, keeping its PR 5 category. *)
  | Draining  (** The service is shutting down and shed this job. *)

val retryable : t -> bool

val name : t -> string
(** Stable snake-case identifier ("queue_full", "worker_crash", ...): the
    bucket key in BENCH_serve.json and the token the CLI prints. *)

val exit_code : t -> int
(** Distinct process exit code per constructor, documented in the README:
    50 = queue_full, 51 = invalid_input, 52 = deadline_exceeded,
    53 = cancelled, 54 = worker_crash, 55 = io_failure,
    56 = resource_exhausted, 57 = draining; [Verify_rejected] reuses the
    verify category's own 10-17 code. *)

val to_string : t -> string
(** ["<name>: <detail>"]. *)

val of_exn : exn -> Printexc.raw_backtrace -> t
(** Classify an exception that escaped a job attempt:
    {!Nocap_parallel.Pool.Cancel.Cancelled} → [Cancelled] (the scheduler
    refines it to deadline/client/drain), [Unix_error]/[Sys_error] →
    [Io_failure], [Out_of_memory]/[Stack_overflow] → [Resource_exhausted],
    anything else → [Worker_crash] with its backtrace. *)
