(** Fault-tolerant proving-service runtime (DESIGN.md Sec. 15).

    Turns the one-shot prover into a long-running multi-tenant service
    over {!Zk_pcs.Engine.t}: a bounded job queue with reject-on-overflow
    admission control, per-job deadlines enforced by a watchdog through
    cooperative {!Nocap_parallel.Pool.Cancel} tokens, retry with
    exponential backoff + deterministic jitter for transient faults
    (classified by {!Job_error}), crash isolation (an exception in one
    job fails only that job — the pool and its sibling jobs are
    untouched), demotion to the PR 9 streaming prover under a memory
    budget, and graceful drain on SIGTERM/SIGINT.

    {b Determinism.} Job execution is a pure function of the request:
    circuit generation derives from (workload, scale), and the prover's
    RNG is the engine-seeded default — so a retried attempt, a demoted
    attempt, and an offline {!Zk_spartan.Spartan.prove} of the same
    request all produce byte-identical proofs.

    {b Threads.} Runners are {e domains}, not systhreads: the kernel
    layer keeps per-domain arena scratch in domain-local storage, which
    OS threads sharing one domain would interleave. All runners submit
    into the shared {!Nocap_parallel.Pool}; its submit lock serializes
    kernel launches while small jobs bypass it entirely on the serial
    path. *)

type kind =
  | Prove  (** generate the circuit, prove, return proof bytes *)
  | Verify of bytes
      (** generate the circuit, decode + verify the supplied proof blob *)

type request = {
  tenant : string;  (** reporting label only; no per-tenant quotas yet *)
  workload : string;  (** a {!workloads} name, case-insensitive *)
  scale : int;  (** generator scale (blocks / bids / constraint count) *)
  kind : kind;
  deadline_s : float option;
      (** relative deadline; [None] uses the config default (or none) *)
}

type outcome =
  | Proof of { bytes : bytes; attempts : int; streamed : bool; elapsed_s : float }
  | Verified of { attempts : int; elapsed_s : float }
  | Failed of { error : Job_error.t; attempts : int }

type config = {
  capacity : int;  (** max admitted-but-unfinished jobs; overflow rejects *)
  runners : int;  (** prover domains *)
  max_retries : int;  (** extra attempts for retryable failures *)
  backoff_base_s : float;  (** first retry delay *)
  backoff_max_s : float;  (** backoff cap *)
  default_deadline_s : float option;  (** applied when a request has none *)
  mem_budget_bytes : int option;
      (** jobs whose in-memory working-set estimate exceeds this are
          demoted to the streaming prover instead of running hot *)
  params : Zk_spartan.Spartan.params;  (** SNARK parameters for all jobs *)
  seed : int64;  (** jitter seed; never affects proof bytes *)
  tick_s : float;  (** watchdog period (deadline/backoff granularity) *)
}

val default_config : config
(** capacity 64, 2 runners, 2 retries, 10ms..500ms backoff, no default
    deadline, no memory budget, [Spartan.default_params], 2ms tick. *)

type stats = {
  submitted : int;  (** admitted into the queue *)
  completed : int;  (** finished with [Proof] or [Verified] *)
  failed : int;  (** finished with [Failed] *)
  rejected : int;  (** refused at admission: queue full *)
  invalid : int;  (** refused at admission: malformed request *)
  retries : int;  (** attempts re-queued after a transient fault *)
  timeouts : int;  (** jobs that failed with [Deadline_exceeded] *)
  cancelled : int;  (** jobs that failed with [Cancelled] *)
  demoted : int;  (** jobs demoted to the streaming prover *)
  crashes : int;  (** worker exceptions captured (including retried ones) *)
  io_failures : int;  (** I/O faults captured (including retried ones) *)
}

type fault_hook = stage:string -> job_id:int -> attempt:int -> unit
(** Fault-injection seam ({!Nocap_faults}' [Runtime_faults] builds these):
    called at stage ["attempt"] on the runner domain just before proving;
    it may raise (simulating a worker crash) or sleep (simulating a slow
    job that blows its deadline). Testing only. *)

type t

val create : ?engine:Zk_pcs.Engine.t -> ?fault_hook:fault_hook -> ?config:config -> unit -> t
(** Start the service: spawns [config.runners] runner domains plus a
    watchdog domain, and installs the {!Nocap_vec.Spill} signal-sweep
    handlers so spill hygiene holds from startup. The engine defaults to
    {!Zk_pcs.Engine.default}. @raise Invalid_argument on a nonsensical
    config. *)

val workloads : unit -> string list
(** Tenant-facing workload names: the Table III benchmarks plus
    ["synthetic"] (scale = constraint count). *)

val generate_workload :
  workload:string ->
  scale:int ->
  (Zk_r1cs.R1cs.instance * Zk_r1cs.R1cs.assignment, Job_error.t) result
(** The deterministic request → circuit mapping used by {!submit}; exposed
    so offline byte-identity checks can rebuild the exact instance. *)

val submit : t -> request -> (int, Job_error.t) result
(** Admit a job, returning its id. [Error] cases: [Queue_full] (capacity
    reached — backpressure, client should retry later), [Invalid_input]
    (malformed request, rejected at admission), [Draining] (shutdown in
    progress). Capacity is reserved before circuit generation, so a burst
    cannot overshoot the bound. *)

val await : t -> int -> outcome
(** Block until the job finishes. @raise Invalid_argument on an id
    {!submit} never returned (or already {!forget}ted). *)

val peek : t -> int -> outcome option
(** Non-blocking {!await}. *)

val cancel : ?reason:string -> t -> int -> bool
(** Cancel a job: queued/backoff jobs fail immediately with [Cancelled];
    a running job's cancel token is tripped and it fails at the next
    kernel chunk boundary. Returns [false] if the job already finished
    (or is unknown). *)

val forget : t -> int -> unit
(** Drop a finished job's record from the table. The circuit (instance +
    assignment) is already released the moment a job finishes; [forget]
    frees the remaining outcome (proof bytes / error) — call it once the
    outcome has been consumed so long-lived services don't accumulate
    finished-job records. *)

val request_drain : t -> unit
(** Async-signal-safe drain trigger: flips an atomic flag the watchdog
    picks up within one tick. *)

val handle_signals : t -> unit -> unit
(** Install SIGTERM/SIGINT handlers layered over the {!Nocap_vec.Spill}
    sweep handlers: the first signal calls {!request_drain} (graceful);
    any further signal assumes the drain is stuck and force-exits —
    chaining to the saved handlers (so the spill sweep still runs), then
    restoring the default disposition and re-raising, so the process is
    never only killable by SIGKILL. Returns a restorer for the previous
    handlers. *)

val drain : ?grace_s:float -> t -> unit
(** Stop admitting ([submit] returns [Draining]) and wait for every
    admitted job to finish. With [grace_s], jobs still unfinished after
    the grace period are shed: queued/backoff jobs fail with [Draining],
    running jobs are cancelled at the next chunk boundary. *)

val shutdown : ?grace_s:float -> t -> stats
(** {!drain}, then stop and join all service domains and run a major GC
    (so any backstop spill finalizers fire before the caller checks
    {!Nocap_vec.Spill.live_files}). Returns the final counters. The
    handle must not be used afterwards. *)

val draining : t -> bool

val stats : t -> stats
(** Snapshot of the running counters. *)
