(* Failure taxonomy for proving-service jobs.

   The split that matters operationally is retryable vs permanent:
   transient faults (a crashed worker, a failed spill write, memory
   exhaustion) are worth re-running with backoff, while everything the
   tenant controls (bad input, blown deadline, a proof the verifier
   rejects) or the operator controls (queue capacity, drain) fails
   immediately. Verifier rejections keep their PR 5 category so the
   exit-code surface stays one table. *)

module E = Zk_pcs.Verify_error

type t =
  | Queue_full of int  (** admission refused; payload is the capacity *)
  | Invalid_input of string
  | Deadline_exceeded of float  (** payload: the job's deadline, seconds *)
  | Cancelled of string
  | Worker_crash of { message : string; backtrace : string }
  | Io_failure of string
  | Resource_exhausted of string
  | Verify_rejected of E.t
  | Draining

let retryable = function
  | Worker_crash _ | Io_failure _ | Resource_exhausted _ -> true
  | Queue_full _ | Invalid_input _ | Deadline_exceeded _ | Cancelled _
  | Verify_rejected _ | Draining ->
    false

let name = function
  | Queue_full _ -> "queue_full"
  | Invalid_input _ -> "invalid_input"
  | Deadline_exceeded _ -> "deadline_exceeded"
  | Cancelled _ -> "cancelled"
  | Worker_crash _ -> "worker_crash"
  | Io_failure _ -> "io_failure"
  | Resource_exhausted _ -> "resource_exhausted"
  | Verify_rejected _ -> "verify_rejected"
  | Draining -> "draining"

(* 50+ keeps clear of verify's 10-17 and diag's 20-41; a rejected
   verification reuses the verify category's own code so scripts keep one
   mapping for "why did the verifier say no". *)
let exit_code = function
  | Queue_full _ -> 50
  | Invalid_input _ -> 51
  | Deadline_exceeded _ -> 52
  | Cancelled _ -> 53
  | Worker_crash _ -> 54
  | Io_failure _ -> 55
  | Resource_exhausted _ -> 56
  | Draining -> 57
  | Verify_rejected e -> E.exit_code e.E.category

let to_string = function
  | Queue_full cap -> Printf.sprintf "queue_full: queue at capacity (%d)" cap
  | Invalid_input msg -> "invalid_input: " ^ msg
  | Deadline_exceeded d -> Printf.sprintf "deadline_exceeded: deadline %.3fs" d
  | Cancelled reason -> "cancelled: " ^ reason
  | Worker_crash { message; _ } -> "worker_crash: " ^ message
  | Io_failure msg -> "io_failure: " ^ msg
  | Resource_exhausted msg -> "resource_exhausted: " ^ msg
  | Verify_rejected e -> "verify_rejected: " ^ E.to_string e
  | Draining -> "draining: service is draining"

(* Classify an escaped exception from a job attempt. Cancellation comes
   back as [Cancelled] and is refined by the scheduler (deadline vs client
   vs drain — only it knows which controller tripped the token); I/O and
   memory faults are transient; anything else is an isolated worker crash,
   captured with its backtrace and retried. *)
let of_exn e bt =
  match e with
  | Nocap_parallel.Pool.Cancel.Cancelled reason -> Cancelled reason
  | Unix.Unix_error (err, fn, arg) ->
    Io_failure
      (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message err))
  | Sys_error msg -> Io_failure msg
  | Out_of_memory -> Resource_exhausted "out of memory"
  | Stack_overflow -> Resource_exhausted "stack overflow"
  | e ->
    Worker_crash
      {
        message = Printexc.to_string e;
        backtrace = Printexc.raw_backtrace_to_string bt;
      }
