(** Verifiable ML inference as an R1CS circuit (Sec. I's zkCNN-style use
    case, mirroring [examples/ml_inference.ml]): a fixed-point two-layer
    perceptron with secret range-checked weights, a public input vector, and
    a public predicted class the circuit proves is the argmax of the logits.

    Lives in the workload library (not only in the example) so the circuit
    static-analysis corpus ({!Nocap_analysis.Circuit_corpus}) and the
    structure reports cover the ML workload. *)

val bias : int
(** Per-neuron centring bias applied before the ReLU. *)

val reference : w1:int array array -> w2:int array array -> int array -> int
(** Software inference: returns the predicted class index. *)

val build :
  Zk_r1cs.Builder.t ->
  w1:int array array ->
  w2:int array array ->
  x:int array ->
  predicted:int ->
  unit
(** Append the perceptron to a builder: weights as witnesses (4-bit
    range-checked), input vector and claimed class as public inputs, with
    argmax assertions tying the claim to the logits. *)

val circuit :
  ?input_dim:int ->
  ?hidden_dim:int ->
  ?classes:int ->
  seed:int64 ->
  unit ->
  Zk_r1cs.R1cs.instance * Zk_r1cs.R1cs.assignment
(** A complete random instance (defaults match the example: 8-d input,
    6 hidden neurons, 3 classes). *)
