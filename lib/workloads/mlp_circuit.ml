module Gf = Zk_field.Gf
module Builder = Zk_r1cs.Builder
module Gadgets = Zk_r1cs.Gadgets
module Rng = Zk_util.Rng

(* Mirrors examples/ml_inference.ml: a fixed-point two-layer perceptron with
   secret weights, public input vector and public predicted class. Kept here
   (rather than only inline in the example) so the circuit static-analysis
   corpus and the structure reports cover the ML workload too. *)

let bias = 8 * 128 * 4

let reference ~w1 ~w2 x =
  let layer weights v =
    Array.map
      (fun row ->
        let acc = ref 0 in
        Array.iteri (fun i wi -> acc := !acc + (wi * v.(i))) row;
        max 0 (!acc - bias))
      weights
  in
  let logits = layer w2 (layer w1 x) in
  let best = ref 0 in
  Array.iteri (fun i v -> if v > logits.(!best) then best := i) logits;
  !best

(* One neuron: ReLU(w . v - bias) with the comparison gadget; [width] bounds
   the pre-activation magnitude so less_than's bit decomposition is sound. *)
let neuron b ~width weights v =
  let acc =
    Gadgets.add_lc b
      (Array.to_list (Array.map2 (fun w x -> (Gadgets.mul b w x, Gf.one)) weights v))
  in
  let bias_w = Gadgets.add_lc b (Builder.lc_const (Gf.of_int bias)) in
  let keep = Gadgets.less_than b ~width bias_w acc in
  (* keep = [bias < acc]; output keep ? acc - bias : 0. *)
  let diff =
    Gadgets.add_lc b
      (Builder.lc_add (Builder.lc_var acc) (Builder.lc_const (Gf.neg (Gf.of_int bias))))
  in
  let zero = Gadgets.add_lc b [] in
  Gadgets.select b ~cond:keep diff zero

let build b ~w1 ~w2 ~x ~predicted =
  let alloc_weights m =
    Array.map
      (Array.map (fun w ->
           let v = Builder.witness b (Gf.of_int w) in
           (* Range-check the secret weights: unchecked wide weights would
              let a malicious prover overflow the fixed-point accumulators. *)
           ignore (Gadgets.bits_of b ~width:4 v);
           v))
      m
  in
  let vw1 = alloc_weights w1 and vw2 = alloc_weights w2 in
  let vx = Array.map (fun v -> Builder.input b (Gf.of_int v)) x in
  let hidden = Array.map (fun row -> neuron b ~width:16 row vx) vw1 in
  let logits = Array.map (fun row -> neuron b ~width:24 row hidden) vw2 in
  (* The claimed class is public; assert logits.(predicted) >= logits.(j)
     for every j (ties resolved in the winner's favour). *)
  Array.iteri
    (fun j lj ->
      if j <> predicted then begin
        let lt = Gadgets.less_than b ~width:24 logits.(predicted) lj in
        Gadgets.assert_equal b (Builder.lc_var lt) []
      end)
    logits;
  (* Tie the claimed class into the statement: the argmax assertions above
     are specialized to [predicted], so the public input must equal it — an
     untied input would be a declared-but-unbound part of the statement
     (Circuit_lint's unused-public-input warning). *)
  let io_pred = Builder.input b (Gf.of_int predicted) in
  Gadgets.assert_equal b (Builder.lc_var io_pred)
    (Builder.lc_const (Gf.of_int predicted))

let circuit ?(input_dim = 8) ?(hidden_dim = 6) ?(classes = 3) ~seed () =
  let rng = Rng.create seed in
  let w1 =
    Array.init hidden_dim (fun _ -> Array.init input_dim (fun _ -> Rng.int rng 16))
  in
  let w2 =
    Array.init classes (fun _ -> Array.init hidden_dim (fun _ -> Rng.int rng 16))
  in
  let x = Array.init input_dim (fun _ -> Rng.int rng 256) in
  let predicted = reference ~w1 ~w2 x in
  let b = Builder.create () in
  build b ~w1 ~w2 ~x ~predicted;
  Builder.finalize b
