(** Structure-matched synthetic circuits for performance runs at sizes where
    assembling a real gadget circuit is infeasible.

    The generator emits satisfiable constraint chains whose matrices have the
    two properties the paper's SpMV mapping exploits (Sec. V-A): O(1)
    nonzeros per row and limited bandwidth (nonzeros clustered near the
    diagonal). Row density is tunable to match a target benchmark's density
    factor. *)

val circuit :
  n_constraints:int ->
  ?band:int ->
  ?row_nnz:int ->
  ?public_seed:bool ->
  seed:int64 ->
  unit ->
  Zk_r1cs.R1cs.instance * Zk_r1cs.R1cs.assignment
(** [band] (default 64) bounds how far a constraint reaches back into the
    witness; [row_nnz] (default 2) sets the A-row density.

    [public_seed] (default false) pins the chain's seed wire to a public
    input with one extra constraint (emitted first, so the A matrix stays
    band-limited). Without it the seed wire is a free witness — the whole
    chain slides with it — which {!Nocap_analysis.Circuit_lint} reports as
    an under-constrained signal. The default is kept for byte-compatibility
    with the pinned golden proofs; the analysis corpus and benches lint the
    [public_seed:true] variant. *)
