module Gf = Zk_field.Gf
module Builder = Zk_r1cs.Builder
module Rng = Zk_util.Rng

let circuit ~n_constraints ?(band = 64) ?(row_nnz = 2) ?(public_seed = false) ~seed () =
  if n_constraints < 1 then invalid_arg "Synthetic.circuit";
  let rng = Rng.create seed in
  let b = Builder.create () in
  let w0 = Builder.witness b (Gf.of_int (2 + Rng.int rng 1000)) in
  (* With [public_seed] the chain's seed wire is pinned to a public input
     (row 0, band 0 on the A matrix), so the witness is determined by the io
     and the circuit lints clean; the legacy default leaves w0 a free choice
     — a genuine residual degree of freedom that Circuit_lint flags. *)
  if public_seed then begin
    let io = Builder.input b (Builder.value b w0) in
    Builder.constrain b (Builder.lc_var w0) (Builder.lc_var Builder.one)
      (Builder.lc_var io)
  end;
  let pool = ref [| w0 |] in
  let pool_len = ref 1 in
  let grow = Array.make (max 16 (n_constraints + 1)) !pool.(0) in
  grow.(0) <- !pool.(0);
  pool := grow;
  let pick () =
    let lo = max 0 (!pool_len - band) in
    !pool.(lo + Rng.int rng (!pool_len - lo))
  in
  for _ = 1 to n_constraints do
    (* (sum of row_nnz recent wires) * recent wire = new wire. *)
    let lhs =
      List.init row_nnz (fun _ -> (pick (), Gf.of_int (1 + Rng.int rng 7)))
    in
    let rhs = pick () in
    let value = Gf.mul (Builder.lc_value b lhs) (Builder.value b rhs) in
    let out = Builder.witness b value in
    Builder.constrain b lhs (Builder.lc_var rhs) (Builder.lc_var out);
    !pool.(!pool_len) <- out;
    incr pool_len
  done;
  Builder.finalize b
