(** Reusable R1CS gadgets over the {!Builder} DSL: arithmetic, Boolean logic,
    bit decomposition, comparisons and multiplexing. The workload circuits
    (AES/SHA/RSA/Auction/Litmus, Sec. VII-B) are assembled from these. *)

open Builder

val add : t -> var -> var -> var
(** Materialized sum (one constraint). Prefer raw [lc]s when the sum feeds a
    multiplication anyway. *)

val add_lc : t -> lc -> var
(** Materialize an arbitrary linear combination as a wire. *)

val mul : t -> var -> var -> var

val mul_lc : t -> lc -> lc -> var

val assert_equal : t -> lc -> lc -> unit

val assert_bool : t -> var -> unit
(** Constrain [v * (v - 1) = 0]. *)

val bits_of : t -> width:int -> var -> var array
(** Decompose into [width] Boolean wires, little-endian, and constrain the
    packing [sum 2^i b_i = v]. The value must fit in [width] bits (and
    [width <= 63]). *)

val pack : t -> var array -> var
(** Inverse of {!bits_of} (little-endian). *)

val bxor : t -> var -> var -> var
(** XOR of Boolean wires: [a + b - 2ab]. *)

val band : t -> var -> var -> var
val bor : t -> var -> var -> var
val bnot : t -> var -> var

val select : t -> cond:var -> var -> var -> var
(** [select ~cond x y] is [x] if [cond = 1] else [y] ([cond] Boolean). *)

val is_zero : t -> var -> var
(** Boolean wire that is 1 iff the input is 0 (inverse-hint gadget, three
    constraints). The inverse hint is itself pinned ([isz * inv = 0]) so the
    gadget introduces no under-constrained signal when the input is zero —
    see {!Nocap_analysis.Circuit_lint}. *)

val equal : t -> var -> var -> var
(** Boolean equality test. *)

val less_than : t -> width:int -> var -> var -> var
(** [less_than ~width a b] is the Boolean [a < b]; both inputs must already be
    constrained to [width] bits ([width <= 62]). *)

val xor_word : t -> var array -> var array -> var array
(** Bitwise XOR of equal-length bit vectors. *)

val rotl_word : var array -> int -> var array
(** Rotate a bit vector left (free: just re-indexing wires). *)

val const_word : t -> width:int -> int64 -> var array
(** Bits of a compile-time constant (allocated as constrained wires). *)

val divmod : t -> width:int -> var -> int -> var * var
(** [divmod t ~width a n] for a compile-time positive divisor [n] returns
    witnessed [(quotient, remainder)] with [a = q * n + r], [r < n] and
    [q < 2^width] enforced. The dividend must fit [2 * width] bits. *)

val assert_nonzero : t -> var -> unit
(** Constrain a wire to be invertible (one constraint, inverse hint). *)
