(** Sparse matrices in compressed-sparse-row form, and the SpMV task of
    Sec. V-A. The R1CS matrices A, B, C are "limited-bandwidth" — most
    nonzeros sit near the diagonal — which is what lets NoCap stream them with
    good vector reuse; {!bandwidth_profile} measures that property so the
    performance model can exploit it. *)

type t = private {
  nrows : int;
  ncols : int;
  row_ptr : int array; (* length nrows + 1 *)
  col_idx : int array;
  values : Zk_field.Gf.t array;
}

val of_entries : nrows:int -> ncols:int -> (int * int * Zk_field.Gf.t) list -> t
(** Build from (row, col, value) triples. Duplicate (row, col) entries are
    summed; zero values are dropped. *)

val nnz : t -> int

val spmv : t -> Zk_field.Gf.t array -> Zk_field.Gf.t array
(** [spmv m x] is [m * x]. @raise Invalid_argument on dimension mismatch. *)

val spmv_transpose : t -> Zk_field.Gf.t array -> Zk_field.Gf.t array
(** [spmv_transpose m y] is [m^T * y] — used to build the second-sumcheck
    table [M(y) = sum_i eq(rx,i) M_{i,y}] without materializing M^T. *)

val spmv_range :
  t -> x:(int -> Zk_field.Gf.t) -> r_lo:int -> r_hi:int -> Zk_field.Gf.t array
(** Rows [r_lo, r_hi) of [m * x], with [x] supplied by an accessor (e.g. a
    spill-file window) — the streaming prover's row-blocked SpMV.
    Bit-identical to the same slice of {!spmv}. *)

val spmv_transpose_range :
  t -> y:(int -> Zk_field.Gf.t) -> c_lo:int -> c_hi:int -> Zk_field.Gf.t array
(** Columns [c_lo, c_hi) of [m^T * y]. Scans every row per window ([y] is
    called once per row, ascending), so a full blocked transpose costs
    [nblocks * nnz]; the scatter accumulator stays window-sized.
    Bit-identical to the same slice of {!spmv_transpose}. *)

val entries : t -> (int * int * Zk_field.Gf.t) Seq.t
(** All nonzero entries in row-major order. *)

val mle_eval : t -> row_eq:Zk_field.Gf.t array -> col_eq:Zk_field.Gf.t array -> Zk_field.Gf.t
(** [mle_eval m ~row_eq ~col_eq] = [sum_{(i,j,v)} v * row_eq.(i) * col_eq.(j)]
    — the matrix MLE evaluated at a point, given precomputed eq tables
    ({!Zk_poly.Mle.eq_table}). This is how the Spartan verifier evaluates
    A(rx, ry), B(rx, ry), C(rx, ry) in O(nnz). *)

val bandwidth_profile : t -> int * float
(** [(max_band, mean_band)] where band is [abs (col - row)] over nonzeros. *)

val pad_to : t -> nrows:int -> ncols:int -> t
(** Embed into a larger zero matrix (dimensions must not shrink). *)
