(** Rank-1 constraint systems (Sec. II-B).

    An instance is three square sparse matrices A, B, C of side [2^log_size]
    such that the circuit is satisfied iff [(Az) o (Bz) = Cz] (elementwise),
    where [z] is the wire-value vector.

    Layout (Spartan's convention): [z = w || io], each half of length
    [2^(log_size - 1)]; [io.(0)] is the constant 1, followed by the public
    inputs, zero-padded. The split lets the multilinear extension of [z]
    decompose as [(1 - y_1) * w~(rest) + y_1 * io~(rest)], so the verifier
    only needs a commitment opening for the witness half. *)

type instance = private {
  a : Sparse.t;
  b : Sparse.t;
  c : Sparse.t;
  log_size : int; (* matrices are 2^log_size x 2^log_size, >= 1 *)
  num_constraints : int; (* real constraint rows *)
  num_witness : int; (* live entries of w *)
  num_io : int; (* live entries of io, including the constant 1 *)
}

type assignment = { w : Zk_field.Gf.t array; io : Zk_field.Gf.t array }
(** Both halves have length [2^(log_size - 1)]; [io.(0) = 1]. *)

val make :
  a:Sparse.t ->
  b:Sparse.t ->
  c:Sparse.t ->
  log_size:int ->
  num_constraints:int ->
  num_witness:int ->
  num_io:int ->
  instance
(** Validates dimensions. The matrices must already be [2^log_size] square. *)

val size : instance -> int
(** [2^log_size]. *)

val z : instance -> assignment -> Zk_field.Gf.t array
(** The full wire vector [w || io]. *)

val z_block : instance -> assignment -> pos:int -> len:int -> Zk_field.Gf.t array
(** The [pos, pos+len) slice of {!z} without materializing the full wire
    vector (same validation). *)

val iter_z_blocks :
  instance ->
  assignment ->
  block:int ->
  (pos:int -> Zk_field.Gf.t array -> unit) ->
  unit
(** Chunked witness emission for the streaming prover: call [f ~pos slice]
    over consecutive [block]-sized slices of {!z} (last one may be short),
    so the wire vector can be written straight to a spill file. *)

val satisfied : instance -> assignment -> bool
(** Check [(Az) o (Bz) = Cz]. *)

val public_io : instance -> assignment -> Zk_field.Gf.t array
(** The live io prefix (constant 1 and public inputs) — what the verifier
    sees. *)

val nnz : instance -> int
(** Total nonzeros across A, B, C. *)
