module Gf = Zk_field.Gf

type instance = {
  a : Sparse.t;
  b : Sparse.t;
  c : Sparse.t;
  log_size : int;
  num_constraints : int;
  num_witness : int;
  num_io : int;
}

type assignment = { w : Gf.t array; io : Gf.t array }

let make ~a ~b ~c ~log_size ~num_constraints ~num_witness ~num_io =
  if log_size < 1 then invalid_arg "R1cs.make: log_size must be >= 1";
  let n = 1 lsl log_size in
  let check (m : Sparse.t) name =
    if m.Sparse.nrows <> n || m.Sparse.ncols <> n then
      invalid_arg (Printf.sprintf "R1cs.make: %s must be %dx%d" name n n)
  in
  check a "A";
  check b "B";
  check c "C";
  let half = n / 2 in
  if num_constraints > n || num_witness > half || num_io > half || num_io < 1 then
    invalid_arg "R1cs.make: counts out of range";
  { a; b; c; log_size; num_constraints; num_witness; num_io }

let size inst = 1 lsl inst.log_size

let z inst asn =
  let half = size inst / 2 in
  if Array.length asn.w <> half || Array.length asn.io <> half then
    invalid_arg "R1cs.z: assignment halves must be 2^(log_size-1)";
  if not (Gf.equal asn.io.(0) Gf.one) then invalid_arg "R1cs.z: io.(0) must be 1";
  Array.append asn.w asn.io

(* Chunked witness emission for the streaming prover: the same validation
   as [z], but the wire vector is produced in [block]-sized pieces instead
   of one 2^log_size array, so the caller can write each piece straight to
   a spill file. *)
let check_assignment inst asn =
  let half = size inst / 2 in
  if Array.length asn.w <> half || Array.length asn.io <> half then
    invalid_arg "R1cs.z: assignment halves must be 2^(log_size-1)";
  if not (Gf.equal asn.io.(0) Gf.one) then invalid_arg "R1cs.z: io.(0) must be 1"

let z_block inst asn ~pos ~len =
  check_assignment inst asn;
  let n = size inst in
  let half = n / 2 in
  if pos < 0 || len < 0 || pos + len > n then invalid_arg "R1cs.z_block: out of range";
  Array.init len (fun i ->
      let j = pos + i in
      if j < half then asn.w.(j) else asn.io.(j - half))

let iter_z_blocks inst asn ~block f =
  if block <= 0 then invalid_arg "R1cs.iter_z_blocks: block must be positive";
  check_assignment inst asn;
  let n = size inst in
  let pos = ref 0 in
  while !pos < n do
    let len = min block (n - !pos) in
    f ~pos:!pos (z_block inst asn ~pos:!pos ~len);
    pos := !pos + len
  done

let satisfied inst asn =
  let zv = z inst asn in
  let az = Sparse.spmv inst.a zv
  and bz = Sparse.spmv inst.b zv
  and cz = Sparse.spmv inst.c zv in
  let ok = ref true in
  for i = 0 to size inst - 1 do
    if not (Gf.equal (Gf.mul az.(i) bz.(i)) cz.(i)) then ok := false
  done;
  !ok

let public_io inst asn = Array.sub asn.io 0 inst.num_io

let nnz inst = Sparse.nnz inst.a + Sparse.nnz inst.b + Sparse.nnz inst.c
