module Gf = Zk_field.Gf

type t = {
  nrows : int;
  ncols : int;
  row_ptr : int array;
  col_idx : int array;
  values : Gf.t array;
}

let of_entries ~nrows ~ncols entries =
  List.iter
    (fun (r, c, _) ->
      if r < 0 || r >= nrows || c < 0 || c >= ncols then
        invalid_arg "Sparse.of_entries: entry out of bounds")
    entries;
  (* Sort row-major, then merge duplicates and drop zeros. *)
  let sorted =
    List.sort
      (fun (r1, c1, _) (r2, c2, _) -> if r1 <> r2 then Int.compare r1 r2 else Int.compare c1 c2)
      entries
  in
  let merged =
    List.fold_left
      (fun acc (r, c, v) ->
        match acc with
        | (r', c', v') :: rest when r = r' && c = c' -> (r, c, Gf.add v v') :: rest
        | _ -> (r, c, v) :: acc)
      [] sorted
    |> List.filter (fun (_, _, v) -> not (Gf.equal v Gf.zero))
    |> List.rev
  in
  let n = List.length merged in
  let row_ptr = Array.make (nrows + 1) 0 in
  let col_idx = Array.make n 0 in
  let values = Array.make n Gf.zero in
  List.iteri
    (fun k (r, c, v) ->
      row_ptr.(r + 1) <- row_ptr.(r + 1) + 1;
      col_idx.(k) <- c;
      values.(k) <- v)
    merged;
  for r = 1 to nrows do
    row_ptr.(r) <- row_ptr.(r) + row_ptr.(r - 1)
  done;
  { nrows; ncols; row_ptr; col_idx; values }

let nnz m = Array.length m.values

let spmv m x =
  if Array.length x <> m.ncols then invalid_arg "Sparse.spmv: dimension mismatch";
  Array.init m.nrows (fun r ->
      let acc = ref Gf.zero in
      for k = m.row_ptr.(r) to m.row_ptr.(r + 1) - 1 do
        acc := Gf.add !acc (Gf.mul m.values.(k) x.(m.col_idx.(k)))
      done;
      !acc)

let spmv_transpose m y =
  if Array.length y <> m.nrows then invalid_arg "Sparse.spmv_transpose: dimension mismatch";
  let out = Array.make m.ncols Gf.zero in
  for r = 0 to m.nrows - 1 do
    let yr = y.(r) in
    if not (Gf.equal yr Gf.zero) then
      for k = m.row_ptr.(r) to m.row_ptr.(r + 1) - 1 do
        let c = m.col_idx.(k) in
        out.(c) <- Gf.add out.(c) (Gf.mul m.values.(k) yr)
      done
  done;
  out

(* Streaming variants for the out-of-core prover: the vector comes in
   through an accessor so the caller can serve it from a spill-file window
   instead of a resident array, and only a row/column window of the result
   is produced. Field arithmetic is exact, so windowed results are
   bit-identical to the corresponding slice of spmv/spmv_transpose. *)

let spmv_range m ~x ~r_lo ~r_hi =
  if r_lo < 0 || r_hi > m.nrows || r_lo > r_hi then
    invalid_arg "Sparse.spmv_range: row window out of range";
  Array.init (r_hi - r_lo) (fun i ->
      let r = r_lo + i in
      let acc = ref Gf.zero in
      for k = m.row_ptr.(r) to m.row_ptr.(r + 1) - 1 do
        acc := Gf.add !acc (Gf.mul m.values.(k) (x m.col_idx.(k)))
      done;
      !acc)

let spmv_transpose_range m ~y ~c_lo ~c_hi =
  if c_lo < 0 || c_hi > m.ncols || c_lo > c_hi then
    invalid_arg "Sparse.spmv_transpose_range: column window out of range";
  (* One full row scan per column window — cost nblocks * nnz overall, the
     price of bounding the scatter accumulator to the window. [y] is
     called once per row in ascending order (sequential-reader friendly). *)
  let out = Array.make (c_hi - c_lo) Gf.zero in
  for r = 0 to m.nrows - 1 do
    let yr = y r in
    if not (Gf.equal yr Gf.zero) then
      for k = m.row_ptr.(r) to m.row_ptr.(r + 1) - 1 do
        let c = m.col_idx.(k) in
        if c >= c_lo && c < c_hi then
          out.(c - c_lo) <- Gf.add out.(c - c_lo) (Gf.mul m.values.(k) yr)
      done
  done;
  out

let entries m =
  let n = nnz m in
  let rec row_of r k = if m.row_ptr.(r + 1) > k then r else row_of (r + 1) k in
  let rec seq r k () =
    if k >= n then Seq.Nil
    else begin
      let r = row_of r k in
      Seq.Cons ((r, m.col_idx.(k), m.values.(k)), seq r (k + 1))
    end
  in
  seq 0 0

let mle_eval m ~row_eq ~col_eq =
  if Array.length row_eq < m.nrows || Array.length col_eq < m.ncols then
    invalid_arg "Sparse.mle_eval: eq tables too small";
  let acc = ref Gf.zero in
  for r = 0 to m.nrows - 1 do
    for k = m.row_ptr.(r) to m.row_ptr.(r + 1) - 1 do
      acc := Gf.add !acc (Gf.mul m.values.(k) (Gf.mul row_eq.(r) col_eq.(m.col_idx.(k))))
    done
  done;
  !acc

let bandwidth_profile m =
  let n = nnz m in
  if n = 0 then (0, 0.0)
  else begin
    let max_band = ref 0 and sum = ref 0 in
    for r = 0 to m.nrows - 1 do
      for k = m.row_ptr.(r) to m.row_ptr.(r + 1) - 1 do
        let band = abs (m.col_idx.(k) - r) in
        if band > !max_band then max_band := band;
        sum := !sum + band
      done
    done;
    (!max_band, float_of_int !sum /. float_of_int n)
  end

let pad_to m ~nrows ~ncols =
  if nrows < m.nrows || ncols < m.ncols then invalid_arg "Sparse.pad_to: shrinking";
  let row_ptr = Array.make (nrows + 1) 0 in
  Array.blit m.row_ptr 0 row_ptr 0 (m.nrows + 1);
  for r = m.nrows + 1 to nrows do
    row_ptr.(r) <- row_ptr.(m.nrows)
  done;
  { nrows; ncols; row_ptr; col_idx = m.col_idx; values = m.values }
