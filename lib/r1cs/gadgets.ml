module Gf = Zk_field.Gf
open Builder

let add t x y =
  let s = witness t (Gf.add (value t x) (value t y)) in
  constrain t (lc_add (lc_var x) (lc_var y)) (lc_var one) (lc_var s);
  s

let add_lc t lc =
  let s = witness t (lc_value t lc) in
  constrain t lc (lc_var one) (lc_var s);
  s

let mul t x y =
  let z = witness t (Gf.mul (value t x) (value t y)) in
  constrain t (lc_var x) (lc_var y) (lc_var z);
  z

let mul_lc t a b =
  let z = witness t (Gf.mul (lc_value t a) (lc_value t b)) in
  constrain t a b (lc_var z);
  z

let assert_equal t a b = constrain t a (lc_var one) b

let assert_bool t v =
  constrain t (lc_var v) (lc_add (lc_var v) (lc_const (Gf.neg Gf.one))) []

let bits_of t ~width v =
  if width < 1 || width > 63 then invalid_arg "Gadgets.bits_of: width";
  let x = Gf.to_int64 (value t v) in
  if width < 63 && Int64.unsigned_compare x (Int64.shift_left 1L width) >= 0 then
    invalid_arg "Gadgets.bits_of: value does not fit";
  let bits =
    Array.init width (fun i ->
        let bit = Int64.logand (Int64.shift_right_logical x i) 1L in
        witness t (Gf.of_int64 bit))
  in
  Array.iter (assert_bool t) bits;
  let packing =
    Array.to_list bits
    |> List.mapi (fun i b -> (b, Gf.of_int64 (Int64.shift_left 1L i)))
  in
  assert_equal t packing (lc_var v);
  bits

let pack t bits =
  let lc =
    Array.to_list bits
    |> List.mapi (fun i b -> (b, Gf.of_int64 (Int64.shift_left 1L i)))
  in
  add_lc t lc

let bxor t a b =
  (* x = a + b - 2ab, via the single constraint (2a) * b = a + b - x. *)
  let va = value t a and vb = value t b in
  let x = witness t (Gf.sub (Gf.add va vb) (Gf.mul Gf.two (Gf.mul va vb))) in
  constrain t
    (lc_scale Gf.two (lc_var a))
    (lc_var b)
    (lc_add (lc_add (lc_var a) (lc_var b)) (lc_scale (Gf.neg Gf.one) (lc_var x)));
  x

let band t a b = mul t a b

let bor t a b =
  let va = value t a and vb = value t b in
  let x = witness t (Gf.sub (Gf.add va vb) (Gf.mul va vb)) in
  constrain t (lc_var a) (lc_var b)
    (lc_add (lc_add (lc_var a) (lc_var b)) (lc_scale (Gf.neg Gf.one) (lc_var x)));
  x

let bnot t a =
  let x = witness t (Gf.sub Gf.one (value t a)) in
  assert_equal t (lc_add (lc_const Gf.one) (lc_scale (Gf.neg Gf.one) (lc_var a))) (lc_var x);
  x

let select t ~cond x y =
  (* s = y + cond * (x - y). *)
  let vc = value t cond in
  let s =
    witness t (Gf.add (value t y) (Gf.mul vc (Gf.sub (value t x) (value t y))))
  in
  constrain t (lc_var cond)
    (lc_add (lc_var x) (lc_scale (Gf.neg Gf.one) (lc_var y)))
    (lc_add (lc_var s) (lc_scale (Gf.neg Gf.one) (lc_var y)));
  s

let is_zero t v =
  let x = value t v in
  let isz = witness t (if Gf.equal x Gf.zero then Gf.one else Gf.zero) in
  let inv = witness t (if Gf.equal x Gf.zero then Gf.zero else Gf.inv x) in
  (* v * inv = 1 - isz  and  v * isz = 0 force isz = [v = 0]. The third
     constraint isz * inv = 0 pins inv itself: with only the first two, inv
     is a free wire whenever v = 0 (its coefficient v in the first row
     vanishes), which the circuit lint's rank probe flags as an
     under-constrained signal. When v <> 0 the first row forces
     inv = 1/v and the new row is vacuous; when v = 0, isz = 1 forces
     inv = 0. *)
  constrain t (lc_var v) (lc_var inv)
    (lc_add (lc_const Gf.one) (lc_scale (Gf.neg Gf.one) (lc_var isz)));
  constrain t (lc_var v) (lc_var isz) [];
  constrain t (lc_var isz) (lc_var inv) [];
  isz

let equal t a b =
  let d = add_lc t (lc_add (lc_var a) (lc_scale (Gf.neg Gf.one) (lc_var b))) in
  is_zero t d

let less_than t ~width a b =
  if width > 62 then invalid_arg "Gadgets.less_than: width";
  (* d = a - b + 2^width sits in [1, 2^(width+1)); its top bit is [a >= b]. *)
  let shift = Gf.of_int64 (Int64.shift_left 1L width) in
  let d =
    add_lc t
      (lc_add
         (lc_add (lc_var a) (lc_scale (Gf.neg Gf.one) (lc_var b)))
         (lc_const shift))
  in
  let bits = bits_of t ~width:(width + 1) d in
  bnot t bits.(width)

let xor_word t a b =
  if Array.length a <> Array.length b then invalid_arg "Gadgets.xor_word";
  Array.map2 (fun x y -> bxor t x y) a b

let rotl_word bits k =
  let n = Array.length bits in
  Array.init n (fun i -> bits.((i - k + n) mod n))

let const_word t ~width v =
  Array.init width (fun i ->
      let bit = Int64.logand (Int64.shift_right_logical v i) 1L in
      let w = witness t (Gf.of_int64 bit) in
      assert_equal t (lc_const (Gf.of_int64 bit)) (lc_var w);
      w)

let divmod t ~width a n =
  if n <= 0 then invalid_arg "Gadgets.divmod: divisor";
  if width < 1 || width > 30 then invalid_arg "Gadgets.divmod: width";
  let va = Int64.to_int (Gf.to_int64 (value t a)) in
  let q = witness t (Gf.of_int (va / n)) in
  let r = witness t (Gf.of_int (va mod n)) in
  assert_equal t
    (lc_add (lc_scale (Gf.of_int n) (lc_var q)) (lc_var r))
    (lc_var a);
  ignore (bits_of t ~width q);
  ignore (bits_of t ~width r);
  let bound = add_lc t (lc_const (Gf.of_int n)) in
  let lt = less_than t ~width r bound in
  assert_equal t (lc_var lt) (lc_const Gf.one);
  (q, r)

let assert_nonzero t v =
  let x = value t v in
  if Gf.equal x Gf.zero then invalid_arg "Gadgets.assert_nonzero: zero value";
  let inv = witness t (Gf.inv x) in
  constrain t (lc_var v) (lc_var inv) (lc_const Gf.one)
