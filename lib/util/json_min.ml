(* Minimal JSON representation, parser, and accessors shared by the bench
   emitters (BENCH_parallel.json, BENCH_memory.json, BENCH_analysis.json)
   and the Diag machine-readable output. Each producer builds its document
   with printf, then round-trips it through [parse_json] and validates its
   own schema before exiting — so a malformed report fails the producing
   run instead of landing in the repo. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/') ->
          Buffer.add_char b (Option.get (peek ()));
          advance ()
        | Some 'n' -> Buffer.add_char b '\n'; advance ()
        | Some 't' -> Buffer.add_char b '\t'; advance ()
        | _ -> fail "unsupported escape");
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Obj [])
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); List [])
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' ->
      if !pos + 4 <= len && String.sub s !pos 4 = "true" then (pos := !pos + 4; Bool true)
      else fail "bad literal"
    | Some 'f' ->
      if !pos + 5 <= len && String.sub s !pos 5 = "false" then (pos := !pos + 5; Bool false)
      else fail "bad literal"
    | Some 'n' ->
      if !pos + 4 <= len && String.sub s !pos 4 = "null" then (pos := !pos + 4; Null)
      else fail "bad literal"
    | Some _ ->
      let start = !pos in
      let is_num_char c =
        (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while (match peek () with Some c when is_num_char c -> true | _ -> false) do
        advance ()
      done;
      if !pos = start then fail "unexpected character";
      (match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number")
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let field obj key =
  match obj with
  | Obj kvs -> (
    match List.assoc_opt key kvs with
    | Some v -> v
    | None -> raise (Bad_json (Printf.sprintf "missing key %S" key)))
  | _ -> raise (Bad_json (Printf.sprintf "expected object holding %S" key))

let as_num = function Num f -> f | _ -> raise (Bad_json "expected number")

(* Integral fields (domain counts, sizes, grains): reject 3.5 where the
   schema means 3. *)
let as_int j =
  let f = as_num j in
  let i = int_of_float f in
  if float_of_int i <> f then raise (Bad_json "expected integer");
  i
let as_str = function Str s -> s | _ -> raise (Bad_json "expected string")
let as_list = function List l -> l | _ -> raise (Bad_json "expected array")
let as_bool = function Bool b -> b | _ -> raise (Bad_json "expected bool")
