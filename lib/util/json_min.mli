(** Minimal JSON representation, parser, and accessors.

    Originally private to the bench emitters (BENCH_parallel.json and
    friends), now shared with {!Nocap_analysis.Diag}'s machine-readable
    output: every producer builds its document with printf, then round-trips
    it through {!parse_json} and validates its own schema before exiting —
    so a malformed report fails the producing run instead of landing in the
    repo. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Bad_json of string

val parse_json : string -> json
(** @raise Bad_json on malformed input (with the offending offset). *)

val field : json -> string -> json
(** Object member access. @raise Bad_json when missing or not an object. *)

val as_num : json -> float

val as_int : json -> int
(** {!as_num} restricted to integral values.
    @raise Bad_json on fractional numbers. *)

val as_str : json -> string
val as_list : json -> json list
val as_bool : json -> bool
