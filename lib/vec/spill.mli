(** Spillable flat vectors: [Fv] blocks backed by RAM or a temp file.

    The streaming prover works over vectors that may not fit the configured
    memory budget ([Engine.Config.stream_budget_mb]). A [Spill.t] is the
    backing-store decision made explicit: [spill:false] wraps a plain
    {!Fv.t}; [spill:true] stores the elements in an unlinked temp file and
    keeps only an I/O staging buffer resident. Producers and consumers move
    data in [Fv] blocks ({!write}/{!read}), so the hot loops above this
    layer are identical for both backings.

    Layout contract: a spilled vector stores the same canonical 8-byte
    little-endian Gf images an [Fv.t] holds in RAM, so round-tripping
    through a file is bit-exact and backing choice can never change proof
    bytes.

    {b I/O model.} Explicit positioned read/write (seek + copy through a
    [Bytes] stage), deliberately not [mmap]: mapped pages are resident
    pages, and the whole point of spilling is a peak-RSS bound the kernel
    can verify (VmHWM). Each file carries a mutex so concurrent block
    transfers are safe, but the intended pattern is single-submitter:
    domains compute into RAM blocks, the submitting thread does the I/O.

    {b Temp-file hygiene.} Files are created by [Filename.temp_file] with a
    [.nocap-spill] suffix and unlinked immediately after opening where the
    OS allows, so even SIGKILL leaks no namespace entry. A registry plus an
    [at_exit] sweep removes any path that could not be unlinked eagerly;
    the first spilled [create] also installs SIGTERM/SIGINT handlers that
    run the same sweep and then chain to the previously installed handler
    (or re-deliver the default disposition), so killed service processes
    never leak spill bytes either. *)

module Gf = Zk_field.Gf

type t

val create : ?tag:string -> spill:bool -> int -> t
(** [create ~spill n] makes a length-[n] vector, zero-filled. [tag] names
    the temp file (debugging; default ["spill"]). *)

val of_fv : Fv.t -> t
(** Zero-copy RAM-backed wrap; the [Fv.t] is shared, not copied. *)

val length : t -> int

val is_spilled : t -> bool

val write : t -> pos:int -> Fv.t -> unit
(** Store [Fv.length src] elements at [pos]. *)

val read : t -> pos:int -> Fv.t -> unit
(** Load [Fv.length dst] elements from [pos]. *)

val get : t -> int -> Gf.t
(** Point read. O(1) in RAM; one tiny pread when spilled — use {!Reader}
    for scans. *)

val as_fv : t -> Fv.t
(** The underlying [Fv.t] of a RAM-backed vector (shared, not copied).
    @raise Invalid_argument if spilled. *)

val to_fv : t -> Fv.t
(** Materialize the full contents into a fresh [Fv.t] (copies). *)

val free : t -> unit
(** Release the backing file (close fd, drop registry entry). Idempotent;
    a RAM-backed free is a no-op. Reads after [free] raise. Spilled
    vectors are also freed by a GC finalizer as a backstop, but provers
    free deterministically so fds don't accumulate until a major GC. *)

val spilled_bytes_total : unit -> int
(** Cumulative bytes ever written to spill files by this process (a
    monotonic counter benches report as "spill traffic"). *)

val live_files : unit -> int
(** Spill files currently open. *)

val reset_counters : unit -> unit
(** Zero {!spilled_bytes_total} (for per-section bench accounting);
    [live_files] is live state and is not affected. *)

val sweep_leftovers : unit -> unit
(** Best-effort removal of every registered leftover path. Runs via
    [at_exit] and from the SIGTERM/SIGINT handlers; safe to call from a
    signal handler — if the registry lock is contended the sweep is
    skipped rather than risking a concurrent-iteration crash or a
    self-deadlock. Normally a no-op — unlink-after-open leaves nothing
    behind on POSIX systems. *)

val install_signal_handlers : unit -> unit
(** Install the SIGTERM/SIGINT sweep-then-chain handlers now (idempotent).
    Called automatically by the first spilled {!create}; long-running
    services call it at startup so the guarantee holds before any spill
    exists. Handlers installed {e after} this call (e.g. a service's
    graceful-drain handler) take precedence and may chain back. *)

val set_io_fault_hook : (string -> unit) option -> unit
(** Fault-injection seam: the hook is called with ["read"] or ["write"]
    before every file-backed transfer, on the domain doing the I/O, and
    may raise (e.g. [Unix.Unix_error (EIO, _, _)]) to simulate disk
    failure — the staging mutex is released on the way out. [None]
    disarms. Testing only; never set in production paths. *)

(** Sequential read window over a spill vector: [get] near-misses reload a
    fixed-size window starting at the requested index, so ascending scans
    cost one pass of block I/O while staying O(window) resident. *)
module Reader : sig
  type spill := t
  type t

  val create : ?window:int -> spill -> t
  (** [window] is in elements (default 16384 = 128 KiB); RAM-backed
      sources ignore it and read directly. *)

  val get : t -> int -> Gf.t
end
