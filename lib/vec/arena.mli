(** Per-domain grow-only scratch arenas.

    Each domain keeps one grow-only {!Fv.t} buffer in domain-local storage
    and hands out watermark-bumped views of it, so hot paths get short-lived
    scratch vectors without a malloc + custom block per call.

    Ownership rules (also in DESIGN.md Sec. 7):
    - a view returned by {!alloc} is valid until the enclosing {!with_frame}
      returns; library entry points must wrap their scratch use in
      {!with_frame} so callers compose;
    - never return or store a view beyond the frame — copy into a fresh
      [Fv.create] / [Gf.t array] instead;
    - live allocations never alias, and every domain has its own arena, so
      parallel chunks may allocate freely. *)

val alloc : int -> Fv.t
(** Contents uninitialized. *)

val alloc_zero : int -> Fv.t

val with_frame : (unit -> 'a) -> 'a
(** Runs [f] with a fresh watermark; scratch allocated inside is reclaimed
    (logically) when the frame returns. Exception-safe. *)

val reset : unit -> unit
(** Drop this domain's watermark to 0. Only safe when no views are live. *)

val capacity : unit -> int
val used : unit -> int
