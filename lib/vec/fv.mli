(** Unboxed flat vectors of Goldilocks elements.

    A [Gf.t array] stores one boxed Int64 block per element, so every write
    in a hot loop allocates. [Fv.t] is a C-layout [Bigarray.Array1] of
    int64: elements are 8 contiguous bytes and — with the [@inline] Gf
    primitives — whole loop iterations run without touching the OCaml heap.

    Layout contract: an [Fv.t] always holds canonical Gf values (< p),
    bit-identical to [Gf.to_int64], so conversion to/from [Gf.t array] is a
    pure copy and array-backed oracles must agree element-for-element. *)

module Gf = Zk_field.Gf

type t = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> t
(** Contents uninitialized. *)

val length : t -> int

val unsafe_get : t -> int -> Gf.t
val unsafe_set : t -> int -> Gf.t -> unit
val get : t -> int -> Gf.t
val set : t -> int -> Gf.t -> unit

val fill : t -> Gf.t -> unit

val zero : t -> unit

val sub_view : t -> pos:int -> len:int -> t
(** Shares storage with the parent (no copy). *)

val blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit
val copy : t -> t

val of_array : Gf.t array -> t
val to_array : t -> Gf.t array

val write_array : Gf.t array -> src_pos:int -> t -> dst_pos:int -> len:int -> unit
val read_array : t -> src_pos:int -> Gf.t array -> dst_pos:int -> len:int -> unit

val equal : t -> t -> bool

(** {1 Allocation-free elementwise kernels}

    Each checks lengths once, then runs an unsafe loop. [dst] may alias an
    input (the loops are elementwise). *)

val add_into : dst:t -> t -> t -> unit
val sub_into : dst:t -> t -> t -> unit
val mul_into : dst:t -> t -> t -> unit

val scale_into : dst:t -> t -> Gf.t -> unit
(** [scale_into ~dst a c]: [dst.(i) <- c * a.(i)]. *)

val axpy_into : dst:t -> Gf.t -> t -> unit
(** [axpy_into ~dst c src]: [dst.(i) <- dst.(i) + c * src.(i)] — the inner
    loop of Orion's row combination. *)

val map_into : dst:t -> (Gf.t -> Gf.t) -> t -> unit

val fold : ('a -> Gf.t -> 'a) -> 'a -> t -> 'a

val sum : t -> Gf.t
(** Closure-free [fold Gf.add Gf.zero]. *)
