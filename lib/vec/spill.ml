module Gf = Zk_field.Gf
module A1 = Bigarray.Array1

(* Registry of spill files that still have a visible path (unlink-after-open
   failed, e.g. an OS without POSIX unlink semantics on open files). The
   at_exit sweep removes whatever is left; normally it is empty. *)
let leftover_paths : (int, string) Hashtbl.t = Hashtbl.create 8
let registry_mutex = Mutex.create ()
let next_id = ref 0
let live_files_count = ref 0
let spilled_total = ref 0

(* Best-effort removal of every leftover path. Callable from at_exit and
   from signal handlers: a handler can interrupt a thread that already
   holds [registry_mutex], so we only try_lock — and when that fails we
   skip the sweep entirely rather than iterate a Hashtbl another domain
   is mutating (OCaml Hashtbl is not safe under concurrent mutation; an
   unlocked iteration can raise or spin, not just race benignly). The
   table is normally empty anyway: unlink-after-open leaves nothing to
   sweep, and the mutex is only ever held for a few instructions. *)
let sweep_leftovers () =
  if Mutex.try_lock registry_mutex then begin
    Hashtbl.iter (fun _ path -> try Sys.remove path with Sys_error _ -> ()) leftover_paths;
    Hashtbl.reset leftover_paths;
    Mutex.unlock registry_mutex
  end

let () = at_exit sweep_leftovers

(* SIGTERM/SIGINT also sweep, then chain to whatever handler was installed
   before us — so a killed service process never leaks *.nocap-spill bytes
   even though at_exit does not run on fatal signals. Chaining to
   Signal_default restores the default disposition and re-delivers, so the
   exit status still says "killed by signal". *)
let signal_handlers_installed = ref false

let install_signal_handlers () =
  if not !signal_handlers_installed then begin
    signal_handlers_installed := true;
    List.iter
      (fun signo ->
        let prev = ref Sys.Signal_default in
        let handler s =
          sweep_leftovers ();
          match !prev with
          | Sys.Signal_handle f -> f s
          | Sys.Signal_ignore -> ()
          | Sys.Signal_default ->
            (try Sys.set_signal signo Sys.Signal_default
             with Invalid_argument _ | Sys_error _ -> ());
            (try Unix.kill (Unix.getpid ()) signo
             with Unix.Unix_error _ -> exit 1)
        in
        try prev := Sys.signal signo (Sys.Signal_handle handler)
        with Invalid_argument _ | Sys_error _ -> ())
      [ Sys.sigterm; Sys.sigint ]
  end

(* Fault-injection seam for the runtime-faults harness: called (with "read"
   or "write") before every file-backed I/O, from the domain performing the
   I/O. A hook simulates disk failure by raising, e.g.
   [Unix.Unix_error (EIO, ...)]; the exception propagates to the caller
   with the staging mutex released. Not for production use. *)
let io_fault_hook : (string -> unit) option ref = ref None
let set_io_fault_hook h = io_fault_hook := h

let io_fault_point op =
  match !io_fault_hook with Some h -> h op | None -> ()

type file = {
  id : int;
  fd : Unix.file_descr;
  mutable stage : Bytes.t;
  io : Mutex.t;
  mutable freed : bool;
}

type backing = Ram of Fv.t | File of file

type t = { len : int; backing : backing }

let length t = t.len

let is_spilled t = match t.backing with Ram _ -> false | File _ -> true

let free_file f =
  Mutex.lock f.io;
  if not f.freed then begin
    f.freed <- true;
    (try Unix.close f.fd with Unix.Unix_error _ -> ());
    f.stage <- Bytes.empty;
    Mutex.lock registry_mutex;
    (match Hashtbl.find_opt leftover_paths f.id with
    | Some path ->
      (try Sys.remove path with Sys_error _ -> ());
      Hashtbl.remove leftover_paths f.id
    | None -> ());
    decr live_files_count;
    Mutex.unlock registry_mutex
  end;
  Mutex.unlock f.io

let free t = match t.backing with Ram _ -> () | File f -> free_file f

let ensure_stage f nbytes =
  if Bytes.length f.stage < nbytes then f.stage <- Bytes.create nbytes

let really_write fd buf len =
  let off = ref 0 in
  while !off < len do
    let n = Unix.write fd buf !off (len - !off) in
    if n <= 0 then failwith "Spill: short write";
    off := !off + n
  done

let really_read fd buf len =
  let off = ref 0 in
  while !off < len do
    let n = Unix.read fd buf !off (len - !off) in
    if n <= 0 then failwith "Spill: short read (truncated spill file)";
    off := !off + n
  done

let check_range t ~pos ~n op =
  if pos < 0 || n < 0 || pos + n > t.len then
    invalid_arg
      (Printf.sprintf "Spill.%s: range [%d, %d) outside [0, %d)" op pos (pos + n) t.len)

let write t ~pos src =
  let n = Fv.length src in
  check_range t ~pos ~n "write";
  match t.backing with
  | Ram fv -> Fv.blit ~src ~src_pos:0 ~dst:fv ~dst_pos:pos ~len:n
  | File f ->
    Mutex.lock f.io;
    Fun.protect ~finally:(fun () -> Mutex.unlock f.io) @@ fun () ->
    if f.freed then invalid_arg "Spill.write: vector already freed";
    io_fault_point "write";
    let nbytes = n * 8 in
    ensure_stage f nbytes;
    for i = 0 to n - 1 do
      Bytes.set_int64_le f.stage (i * 8) (A1.unsafe_get src i)
    done;
    ignore (Unix.lseek f.fd (pos * 8) Unix.SEEK_SET);
    really_write f.fd f.stage nbytes;
    spilled_total := !spilled_total + nbytes

let read t ~pos dst =
  let n = Fv.length dst in
  check_range t ~pos ~n "read";
  match t.backing with
  | Ram fv -> Fv.blit ~src:fv ~src_pos:pos ~dst ~dst_pos:0 ~len:n
  | File f ->
    Mutex.lock f.io;
    Fun.protect ~finally:(fun () -> Mutex.unlock f.io) @@ fun () ->
    if f.freed then invalid_arg "Spill.read: vector already freed";
    io_fault_point "read";
    let nbytes = n * 8 in
    ensure_stage f nbytes;
    ignore (Unix.lseek f.fd (pos * 8) Unix.SEEK_SET);
    really_read f.fd f.stage nbytes;
    for i = 0 to n - 1 do
      A1.unsafe_set dst i (Bytes.get_int64_le f.stage (i * 8))
    done

let get t i =
  match t.backing with
  | Ram fv -> Fv.get fv i
  | File _ ->
    let one = Fv.create 1 in
    read t ~pos:i one;
    Fv.unsafe_get one 0

let as_fv t =
  match t.backing with
  | Ram fv -> fv
  | File _ -> invalid_arg "Spill.as_fv: vector is file-spilled"

let to_fv t =
  let out = Fv.create t.len in
  read t ~pos:0 out;
  out

let of_fv fv = { len = Fv.length fv; backing = Ram fv }

let create ?(tag = "spill") ~spill n =
  if n < 0 then invalid_arg "Spill.create: negative length";
  if not spill then begin
    let fv = Fv.create n in
    Fv.zero fv;
    of_fv fv
  end
  else begin
    install_signal_handlers ();
    let path = Filename.temp_file ("nocap-" ^ tag ^ "-") ".nocap-spill" in
    let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CLOEXEC ] 0o600 in
    Mutex.lock registry_mutex;
    let id = !next_id in
    incr next_id;
    incr live_files_count;
    Mutex.unlock registry_mutex;
    (* Unlink-after-open: the data stays reachable through the fd but the
       path is gone, so no exit mode can leak a namespace entry. If the OS
       refuses, remember the path for [free] / the at_exit sweep. *)
    (match try Sys.remove path; true with Sys_error _ -> false with
    | true -> ()
    | false ->
      Mutex.lock registry_mutex;
      Hashtbl.replace leftover_paths id path;
      Mutex.unlock registry_mutex);
    Unix.ftruncate fd (n * 8);
    let f = { id; fd; stage = Bytes.empty; io = Mutex.create (); freed = false } in
    let t = { len = n; backing = File f } in
    (* Backstop only — provers free deterministically. *)
    Gc.finalise (fun t -> free t) t;
    t
  end

let spilled_bytes_total () = !spilled_total
let live_files () = !live_files_count
let reset_counters () = spilled_total := 0

module Reader = struct
  type spill = t

  type t = {
    src : spill;
    buf : Fv.t; (* empty for RAM sources *)
    mutable lo : int; (* first element cached in buf *)
    mutable n : int; (* valid elements in buf *)
  }

  let create ?(window = 16384) src =
    match src.backing with
    | Ram _ -> { src; buf = Fv.create 0; lo = 0; n = 0 }
    | File _ ->
      let window = max 1 (min window src.len) in
      { src; buf = Fv.create (max 1 window); lo = 0; n = 0 }

  let get r i =
    match r.src.backing with
    | Ram fv -> Fv.get fv i
    | File _ ->
      if i < r.lo || i >= r.lo + r.n then begin
        let window = Fv.length r.buf in
        let lo = min i (max 0 (length r.src - window)) in
        let n = min window (length r.src - lo) in
        read r.src ~pos:lo (Fv.sub_view r.buf ~pos:0 ~len:n);
        r.lo <- lo;
        r.n <- n
      end;
      Fv.unsafe_get r.buf (i - r.lo)
end
