(* Per-domain grow-only scratch arenas.

   The prover's inner loops need short-lived vectors (NTT column gathers,
   expander compression stages, row-combination accumulators). Allocating a
   fresh Bigarray per call would put a malloc + custom block on every hot
   path, so each domain keeps one grow-only buffer in domain-local storage
   and hands out watermark-bumped views of it.

   Ownership rules (also in DESIGN.md Sec. 7):
   - [alloc n] returns a view valid until the enclosing [with_frame]
     returns. Code that allocates outside any frame owns the scratch until
     the next [reset]; library entry points must wrap their use in
     [with_frame] so callers compose.
   - A view must never be returned to a caller or stored beyond the frame;
     copy into a fresh [Fv.create] / [Gf.t array] instead.
   - Views are handed out from a single per-domain buffer, so two live
     allocations never alias; worker domains each have their own arena, so
     parallel chunks may allocate freely.
   - Contents are uninitialized ([alloc]) unless [alloc_zero] is used.

   When the buffer is too small the arena allocates a bigger one and
   abandons the old: outstanding views keep the old Bigarray alive via
   their own references, so growth never invalidates live scratch. *)

type arena = { mutable buf : Fv.t; mutable used : int }

let key : arena Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { buf = Fv.create 0; used = 0 })

let alloc n =
  if n < 0 then invalid_arg "Arena.alloc";
  let a = Domain.DLS.get key in
  let cap = Fv.length a.buf in
  if a.used + n > cap then begin
    let fresh = max n (max 1024 (2 * cap)) in
    a.buf <- Fv.create fresh;
    a.used <- 0
  end;
  let view = Fv.sub_view a.buf ~pos:a.used ~len:n in
  a.used <- a.used + n;
  view

let alloc_zero n =
  let v = alloc n in
  Fv.zero v;
  v

let with_frame f =
  let a = Domain.DLS.get key in
  let saved_buf = a.buf and saved_used = a.used in
  Fun.protect
    ~finally:(fun () ->
      (* If the frame grew into a new buffer, keep the bigger one (watermark
         0: the outer frame's live views pin the old buffer themselves). *)
      if a.buf == saved_buf then a.used <- saved_used else a.used <- 0)
    f

let reset () =
  let a = Domain.DLS.get key in
  a.used <- 0

let capacity () = Fv.length (Domain.DLS.get key).buf

let used () = (Domain.DLS.get key).used
