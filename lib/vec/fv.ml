(* Unboxed flat vectors of Goldilocks elements.

   [Gf.t array] stores one *boxed* Int64 block per element: every read
   chases a pointer and every write allocates a fresh 3-word box, which is
   exactly the access pattern the prover hot loops (butterflies, row
   combinations, sumcheck folds) execute billions of times. [Fv.t] is the
   unboxed alternative: a C-layout [Bigarray.Array1] of int64, so elements
   are 8 contiguous bytes, reads land in cache lines, and — because the Gf
   primitives are [@inline] — a whole loop iteration runs without touching
   the OCaml heap.

   Layout contract: an [Fv.t] always holds *canonical* Gf values (< p),
   bit-identical to what [Gf.to_int64] returns, so converting between an
   [Fv.t] and a [Gf.t array] is a pure copy and every array-backed oracle
   must agree element-for-element. *)

module Gf = Zk_field.Gf

type t = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

let create n : t = Bigarray.Array1.create Bigarray.Int64 Bigarray.C_layout n

let length (v : t) = Bigarray.Array1.dim v

let[@inline] unsafe_get (v : t) i : Gf.t = Bigarray.Array1.unsafe_get v i
let[@inline] unsafe_set (v : t) i (x : Gf.t) = Bigarray.Array1.unsafe_set v i x

let[@inline] get (v : t) i : Gf.t = Bigarray.Array1.get v i
let[@inline] set (v : t) i (x : Gf.t) = Bigarray.Array1.set v i x

let fill (v : t) (x : Gf.t) = Bigarray.Array1.fill v x

let zero (v : t) = Bigarray.Array1.fill v 0L

(* A sub-view shares storage with its parent (no copy); the parent stays
   alive for as long as any view of it does. *)
let sub_view (v : t) ~pos ~len : t = Bigarray.Array1.sub v pos len

let blit ~src ~src_pos ~dst ~dst_pos ~len =
  if len > 0 then
    Bigarray.Array1.blit
      (Bigarray.Array1.sub src src_pos len)
      (Bigarray.Array1.sub dst dst_pos len)

let copy (v : t) : t =
  let out = create (length v) in
  if length v > 0 then Bigarray.Array1.blit v out;
  out

let of_array (a : Gf.t array) : t =
  let n = Array.length a in
  let v = create n in
  for i = 0 to n - 1 do
    unsafe_set v i (Array.unsafe_get a i)
  done;
  v

let to_array (v : t) : Gf.t array =
  Array.init (length v) (fun i -> unsafe_get v i)

let write_array (src : Gf.t array) ~src_pos (dst : t) ~dst_pos ~len =
  for i = 0 to len - 1 do
    set dst (dst_pos + i) src.(src_pos + i)
  done

let read_array (src : t) ~src_pos (dst : Gf.t array) ~dst_pos ~len =
  for i = 0 to len - 1 do
    dst.(dst_pos + i) <- get src (src_pos + i)
  done

let equal (a : t) (b : t) =
  length a = length b
  &&
  let rec go i = i >= length a || (Int64.equal (unsafe_get a i) (unsafe_get b i) && go (i + 1)) in
  go 0

(* --- allocation-free elementwise kernels -------------------------------- *)

(* Each kernel checks bounds once, then either calls the bit-exact C kernel
   (Native.on — the branch is per call, not per element) or runs the unsafe
   OCaml loop; with the [@inline] Gf ops the loop body compiles to
   straight-line unboxed int64 code. [dst] may alias [a] or [b] (the loops
   are elementwise; the C kernels preserve this). *)

module Native = Nocap_native.Native

let check2 name dst a =
  if length dst <> length a then invalid_arg name

let check3 name dst a b =
  if length dst <> length a || length a <> length b then invalid_arg name

let add_into ~dst a b =
  check3 "Fv.add_into" dst a b;
  if Native.on () then Native.fv_add dst a b
  else
    for i = 0 to length dst - 1 do
      unsafe_set dst i (Gf.add (unsafe_get a i) (unsafe_get b i))
    done

let sub_into ~dst a b =
  check3 "Fv.sub_into" dst a b;
  if Native.on () then Native.fv_sub dst a b
  else
    for i = 0 to length dst - 1 do
      unsafe_set dst i (Gf.sub (unsafe_get a i) (unsafe_get b i))
    done

let mul_into ~dst a b =
  check3 "Fv.mul_into" dst a b;
  if Native.on () then Native.fv_mul dst a b
  else
    for i = 0 to length dst - 1 do
      unsafe_set dst i (Gf.mul (unsafe_get a i) (unsafe_get b i))
    done

let scale_into ~dst a c =
  check2 "Fv.scale_into" dst a;
  if Native.on () then Native.fv_scale dst a c
  else
    for i = 0 to length dst - 1 do
      unsafe_set dst i (Gf.mul c (unsafe_get a i))
    done

(* dst <- dst + c * src : the inner loop of Orion's row combination. *)
let axpy_into ~dst c src =
  check2 "Fv.axpy_into" dst src;
  if Native.on () then Native.fv_axpy dst c src
  else
    for i = 0 to length dst - 1 do
      unsafe_set dst i (Gf.add (unsafe_get dst i) (Gf.mul c (unsafe_get src i)))
    done

let map_into ~dst f a =
  check2 "Fv.map_into" dst a;
  for i = 0 to length dst - 1 do
    unsafe_set dst i (f (unsafe_get a i))
  done

let fold f init (v : t) =
  let acc = ref init in
  for i = 0 to length v - 1 do
    acc := f !acc (unsafe_get v i)
  done;
  !acc

(* Gf sum without a closure: the common fold, allocation-free. *)
let sum (v : t) =
  let acc = ref Gf.zero in
  for i = 0 to length v - 1 do
    acc := Gf.add !acc (unsafe_get v i)
  done;
  !acc
