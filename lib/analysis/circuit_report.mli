(** Circuit structure reports: the shape facts NoCap's performance model
    depends on, measured per workload.

    The paper's SpMV mapping (Sec. V-A) assumes the R1CS matrices have O(1)
    nonzeros per row and limited bandwidth. This module computes those
    distributions — per-matrix row density, bandwidth profile and locality,
    plus the variable fan-out — so {!Zk_perf.Structure} can cross-check the
    density factors the simulator uses against measured circuits, and the
    [analysis] bench can ship them as [BENCH_analysis.json]. *)

type matrix_stats = {
  nnz : int;
  rows_nonempty : int;
  row_nnz_max : int;
  row_nnz_mean : float;  (** over the real constraint rows *)
  band_max : int;
  band_mean : float;
  band_within_64 : float;  (** fraction of nonzeros with [|col - row| <= 64] *)
}

type fanout_stats = {
  live_vars : int;  (** live witness + live io columns *)
  unused_vars : int;  (** live columns with zero occurrences *)
  fanout_max : int;
  fanout_mean : float;  (** occurrences across A, B, C per live column *)
}

type t = {
  name : string;
  log_size : int;
  num_constraints : int;
  num_witness : int;
  num_io : int;
  total_nnz : int;
  density_factor : float;  (** total nonzeros per constraint row *)
  a : matrix_stats;
  b : matrix_stats;
  c : matrix_stats;
  fanout : fanout_stats;
}

val of_instance : ?name:string -> Zk_r1cs.R1cs.instance -> t

val summary : t -> string
(** One human-readable line. *)

val to_json : t -> string
(** One JSON object (no trailing newline) — the [circuits] array element of
    the [nocap-bench-analysis/v1] schema. *)
