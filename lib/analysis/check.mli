(** Independent checker for {!Nocap_model.Schedule.schedule}s.

    {!Nocap_model.Schedule.run} is the compiler pass the statically scheduled
    hardware trusts blindly; this module re-derives the dependence graph
    straight from {!Nocap_model.Isa.reads} / {!Nocap_model.Isa.writes} and
    verifies a schedule against it without reusing the scheduler's own
    bookkeeping. Rules (by stable name):

    - [length-mismatch] / [instr-mismatch] (error): the slots do not list the
      program's instructions in program order.
    - [negative-issue] (error): an instruction issues before cycle 0.
    - [raw-hazard] (error): a consumer issues before the [finish] of the
      latest producer of one of its source registers — the no-interlock
      violation that silently computes with stale values.
    - [finish-mismatch] (error): [finish <> issue + latency] for the
      configuration's occupancy and pipeline-depth model.
    - [fu-overlap] (error): a functional unit accepts an instruction while
      still consuming a previous one (issues closer together than
      {!Nocap_model.Schedule.occupancy} allows).
    - [fu-busy-mismatch] (error): the recorded [fu_busy] totals disagree with
      the occupancy sum of the slots.
    - [makespan-mismatch] (error): [makespan] is not the maximum [finish].

    The report also carries the quantities a schedule reviewer wants next to
    the verdict: per-FU utilization over the makespan, and the
    data-dependence critical path (the latency lower bound on any legal
    schedule for this program). *)

type report = {
  diags : Diag.t list;
  makespan : int;  (** copied from the schedule under test *)
  critical_path : int;
      (** longest register dependence chain, in cycles of summed latency —
          no schedule of this program on this configuration can finish
          earlier *)
  critical_path_indices : int list;
      (** instruction indices of one longest chain, in program order *)
  fu_utilization : (Nocap_model.Simulator.resource * float) list;
      (** occupancy-busy fraction of the makespan, per FU used *)
}

val check :
  Nocap_model.Config.t ->
  vector_len:int ->
  Nocap_model.Isa.program ->
  Nocap_model.Schedule.schedule ->
  report
(** Never raises. A schedule produced by {!Nocap_model.Schedule.run} on the
    same configuration, vector length, and program checks clean. *)

val is_clean : report -> bool

val summary : report -> string
