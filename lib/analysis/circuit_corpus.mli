(** The shipped workload circuits, named, at analysis-feasible scales.

    This is {!Circuit_lint}'s acceptance surface: every entry lints clean
    (the regression suite enforces it), and the mutation oracle must trip on
    every weakened variant of every entry. [nocap-cli circuit-lint --all]
    and the [analysis] bench iterate the same list. *)

type entry = {
  name : string;  (** stable CLI / corpus-file name, e.g. ["aes128"] *)
  description : string;
  generate : scale:int -> Zk_r1cs.R1cs.instance * Zk_r1cs.R1cs.assignment;
      (** deterministic; [scale] multiplies the base workload size
          (blocks, instances, bids, ...), [scale:1] is the test size *)
}

val entries : entry list
val names : string list
val find : string -> entry option

val litmus_transactions :
  rows:int -> Zk_workloads.Litmus_circuit.transaction list
(** The corpus's write-once transaction batch: overwritten writes leave the
    first written value a free witness (which the linter flags), so the
    clean corpus writes each row at most once. *)
