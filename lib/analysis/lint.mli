(** Static program linter for {!Nocap_model.Isa.program}s.

    NoCap is statically scheduled (Sec. IV-A of the paper): there is no
    hardware interlock, so a kernel generator that emits a read of a
    never-written register, an out-of-range shuffle, or a tile the NTT FU
    cannot form silently produces wrong values or wrong timing. [lint] checks
    every generated program before the {!Nocap_model.Vm}, the
    {!Nocap_model.Schedule} scheduler, or the report tables trust it.

    Rules (by stable name):
    - [bad-vector-len] (error, program-level): [vector_len] is not a power of
      two >= 4 — no FU or {!Nocap_model.Vm.create} accepts it.
    - [bad-register] (error): a register operand is negative or outside the
      [num_regs] budget when one is given.
    - [uninitialized-read] (error): a register is read before any
      instruction writes it (register-file contents are undefined to the
      program; only memory slots are host-initialized).
    - [dead-write] (warning): a register write that no later instruction
      reads before it is overwritten or the program ends.
    - [bad-slot] (error): a memory-slot operand is negative or outside the
      [mem_slots] bound when one is given.
    - [dead-store] (warning): a [Vstore] overwritten by a later [Vstore] to
      the same slot with no intervening [Vload].
    - [input-output-alias] (warning): a [Vstore] to a slot the program
      earlier treated as an input (loaded before any store) — legal on the
      VM but it destroys the host's input and makes the program non-reusable.
    - [bad-permutation] (error): a [Vshuffle] permutation whose length is not
      [vector_len] or with an entry outside [0, vector_len).
    - [non-bijective-shuffle] (warning): an in-range shuffle that repeats a
      source lane — a gather, not a permutation. The SpMV compiler emits
      these deliberately (one operand per destination lane), so this is
      advisory.
    - [bad-rotate] (error): negative rotation amount (the VM faults);
      [rotate-wraps] (warning): amount >= [vector_len] (reduced mod [k]).
    - [bad-interleave] (error): group size such that [vector_len] is not a
      multiple of twice the [2^group]-element chunk.
    - [bad-tile] (error): a [Vntt_tiled] tile that is < 2, not a power of
      two, or does not divide [vector_len].
    - [bad-delay] (error): negative delay.

    A report is {e clean} when it has no [Error]-severity diagnostics;
    warnings are advisory. *)

type pressure = {
  max_reg : int;  (** highest register index referenced; -1 if none *)
  regs_used : int;  (** distinct registers referenced *)
  peak_live : int;  (** maximum simultaneously live registers *)
  peak_live_index : int;
      (** instruction index where the peak is live-in; -1 if no registers *)
}

type report = {
  diags : Diag.t list;  (** in instruction order *)
  pressure : pressure;
  input_slots : int list;
      (** slots loaded before any store — the host must fill these *)
  output_slots : int list;  (** slots the program stores to *)
  instr_count : int;
}

val lint :
  ?num_regs:int -> ?mem_slots:int -> vector_len:int -> Nocap_model.Isa.program -> report
(** Never raises; malformed programs yield [Error] diagnostics. [num_regs]
    and [mem_slots], when given, bound the register file and memory exactly
    as {!Nocap_model.Vm.create} would. *)

val is_clean : report -> bool
(** No errors (warnings allowed). *)

val min_registers : report -> int
(** Registers a VM needs to run the program: [max_reg + 1]. *)

val min_mem_slots : Nocap_model.Isa.program -> int
(** Memory slots a VM needs: highest slot referenced + 1. *)

val summary : report -> string
(** Multi-line human-readable report: diagnostics, pressure, slot map. *)
