module Gf = Zk_field.Gf
module R1cs = Zk_r1cs.R1cs
module Sparse = Zk_r1cs.Sparse
module Rng = Zk_util.Rng

(* Constraint-weakening mutation operators. Every operator preserves
   satisfiability under the honest assignment — the mutant accepts at least
   everything the original accepted — and is constructed so that a specific
   lint rule must fire on it. That makes "the linter catches every mutant"
   an invariant testable by exhaustive replay rather than a statistical
   claim: a silent accept is a linter bug, full stop. *)

type op =
  | Drop_row of int  (** empty constraint row [r] entirely *)
  | Detach_var of int
      (** fold every occurrence of witness column [v] into the constant-one
          column at its honest value, leaving [v] unreferenced *)
  | Dup_row of int * int  (** overwrite row [dst] with an exact copy of [src] *)
  | Scale_row of int * int * int
      (** overwrite row [dst] with [(alpha*A_src, B_src, alpha*C_src)] *)
  | Merge_rows of int * int
      (** combine two linear rows (B a multiple of the one column) into a
          single [0 = C'z] row at the first index, emptying the second *)

let op_name = function
  | Drop_row _ -> "drop-row"
  | Detach_var _ -> "detach-var"
  | Dup_row _ -> "dup-row"
  | Scale_row _ -> "scale-row"
  | Merge_rows _ -> "merge-rows"

(* The rule each operator is guaranteed to trip on a clean circuit. *)
let expected_rule = function
  | Drop_row _ -> "trivial-constraint"
  | Detach_var _ -> "unconstrained-variable"
  | Dup_row _ -> "duplicate-constraint"
  | Scale_row _ -> "redundant-constraint"
  | Merge_rows _ -> "trivial-constraint"

let op_to_string = function
  | Drop_row r -> Printf.sprintf "drop:%d" r
  | Detach_var v -> Printf.sprintf "detach:%d" v
  | Dup_row (src, dst) -> Printf.sprintf "dup:%d>%d" src dst
  | Scale_row (src, dst, alpha) -> Printf.sprintf "scale:%d>%d*%d" src dst alpha
  | Merge_rows (i, j) -> Printf.sprintf "merge:%d+%d" i j

let op_of_string s =
  let fail () = invalid_arg ("Circuit_mutate.op_of_string: " ^ s) in
  match String.index_opt s ':' with
  | None -> fail ()
  | Some k -> (
    let kind = String.sub s 0 k in
    let rest = String.sub s (k + 1) (String.length s - k - 1) in
    let two sep =
      match String.split_on_char sep rest with
      | [ a; b ] -> (int_of_string a, int_of_string b)
      | _ -> fail ()
    in
    match kind with
    | "drop" -> Drop_row (int_of_string rest)
    | "detach" -> Detach_var (int_of_string rest)
    | "dup" ->
      let a, b = two '>' in
      Dup_row (a, b)
    | "scale" -> (
      match String.split_on_char '>' rest with
      | [ a; rest' ] -> (
        match String.split_on_char '*' rest' with
        | [ b; al ] -> Scale_row (int_of_string a, int_of_string b, int_of_string al)
        | _ -> fail ())
      | _ -> fail ())
    | "merge" ->
      let a, b = two '+' in
      Merge_rows (a, b)
    | _ -> fail ())

(* --- row predicates ------------------------------------------------------ *)

let row_entries m r =
  Seq.fold_left
    (fun acc (r', c, v) -> if r' = r then (c, v) :: acc else acc)
    [] (Sparse.entries m)
  |> List.rev

let row_empty m r = row_entries m r = []

(* A "trivial" row in the Circuit_lint sense never constrains anything;
   copying or scaling it produces no duplicate finding, so the duplication
   operators refuse such sources. *)
let row_nontrivial inst r =
  not
    (row_empty inst.R1cs.c r
    && (row_empty inst.R1cs.a r || row_empty inst.R1cs.b r))

(* A linear row: B is a (nonzero) multiple of the constant-one column, so
   the constraint reads [beta * (A_r z) = C_r z]. *)
let linear_row inst ~one_col r =
  match row_entries inst.R1cs.b r with
  | [] -> false
  | l -> List.for_all (fun (c, _) -> c = one_col) l

(* --- application --------------------------------------------------------- *)

let rebuild (inst : R1cs.instance) ~a ~b ~c =
  let n = R1cs.size inst in
  R1cs.make
    ~a:(Sparse.of_entries ~nrows:n ~ncols:n a)
    ~b:(Sparse.of_entries ~nrows:n ~ncols:n b)
    ~c:(Sparse.of_entries ~nrows:n ~ncols:n c)
    ~log_size:inst.log_size ~num_constraints:inst.num_constraints
    ~num_witness:inst.num_witness ~num_io:inst.num_io

let entries m = List.of_seq (Sparse.entries m)

let apply (inst : R1cs.instance) (asgn : R1cs.assignment) op =
  let nc = inst.num_constraints in
  let one_col = R1cs.size inst / 2 in
  let drop_row r l = List.filter (fun (r', _, _) -> r' <> r) l in
  let copy_row ~src ~dst ?(scale = Gf.one) l =
    List.filter_map
      (fun (r, c, v) -> if r = src then Some (dst, c, Gf.mul scale v) else None)
      l
  in
  match op with
  | Drop_row r ->
    if r < 0 || r >= nc then None
    else
      Some
        (rebuild inst
           ~a:(drop_row r (entries inst.a))
           ~b:(drop_row r (entries inst.b))
           ~c:(drop_row r (entries inst.c)))
  | Detach_var v ->
    if v < 0 || v >= inst.num_witness then None
    else
      let zv = asgn.w.(v) in
      let fold l =
        List.map
          (fun (r, c, k) ->
            if c = v then (r, one_col, Gf.mul k zv) else (r, c, k))
          l
      in
      let occurs =
        List.exists (fun (_, c, _) -> c = v) (entries inst.a)
        || List.exists (fun (_, c, _) -> c = v) (entries inst.b)
        || List.exists (fun (_, c, _) -> c = v) (entries inst.c)
      in
      if not occurs then None
      else
        Some
          (rebuild inst
             ~a:(fold (entries inst.a))
             ~b:(fold (entries inst.b))
             ~c:(fold (entries inst.c)))
  | Dup_row (src, dst) ->
    if src < 0 || src >= nc || dst < 0 || dst >= nc || src = dst then None
    else if not (row_nontrivial inst src) then None
    else
      let tr l = drop_row dst l @ copy_row ~src ~dst l in
      Some
        (rebuild inst ~a:(tr (entries inst.a)) ~b:(tr (entries inst.b))
           ~c:(tr (entries inst.c)))
  | Scale_row (src, dst, alpha) ->
    if src < 0 || src >= nc || dst < 0 || dst >= nc || src = dst then None
    else if alpha <= 1 then None
    else if not (row_nontrivial inst src) then None
    else
      let k = Gf.of_int alpha in
      let scaled l = drop_row dst l @ copy_row ~src ~dst ~scale:k l in
      let copied l = drop_row dst l @ copy_row ~src ~dst l in
      Some
        (rebuild inst
           ~a:(scaled (entries inst.a))
           ~b:(copied (entries inst.b))
           ~c:(scaled (entries inst.c)))
  | Merge_rows (i, j) ->
    if i < 0 || i >= nc || j < 0 || j >= nc || i = j then None
    else if not (linear_row inst ~one_col i && linear_row inst ~one_col j) then
      None
    else
      (* Row r with B = beta * one reads [beta * (A_r z) = C_r z], i.e. the
         linear form L_r = beta*A_r - C_r vanishes on z. Replace row i by
         [0 = (L_i + L_j) z] and empty row j: both constraints hold on every
         original solution, row j is now trivially 0 = 0. *)
      let beta r =
        List.fold_left
          (fun acc (c, v) -> if c = one_col then Gf.add acc v else acc)
          Gf.zero (row_entries inst.b r)
      in
      let linear_form r =
        let tbl = Hashtbl.create 8 in
        let add c v =
          let cur = try Hashtbl.find tbl c with Not_found -> Gf.zero in
          Hashtbl.replace tbl c (Gf.add cur v)
        in
        let br = beta r in
        List.iter (fun (c, v) -> add c (Gf.mul br v)) (row_entries inst.a r);
        List.iter (fun (c, v) -> add c (Gf.neg v)) (row_entries inst.c r);
        tbl
      in
      let combined = linear_form i in
      Hashtbl.iter
        (fun c v ->
          let cur = try Hashtbl.find combined c with Not_found -> Gf.zero in
          Hashtbl.replace combined c (Gf.add cur v))
        (linear_form j);
      let c_row =
        Hashtbl.fold (fun c v acc -> (i, c, v) :: acc) combined []
      in
      let strip l = List.filter (fun (r, _, _) -> r <> i && r <> j) l in
      Some
        (rebuild inst ~a:(strip (entries inst.a)) ~b:(strip (entries inst.b))
           ~c:(strip (entries inst.c) @ c_row))

(* --- random generation --------------------------------------------------- *)

let random rng (inst : R1cs.instance) (asgn : R1cs.assignment) =
  let nc = inst.num_constraints in
  if nc = 0 then None
  else
    let one_col = R1cs.size inst / 2 in
    let pick_row () = Rng.int rng nc in
    let pick_other r =
      if nc < 2 then None
      else
        let j = Rng.int rng (nc - 1) in
        Some (if j >= r then j + 1 else j)
    in
    (* One-pass scans, computed at most once per call: witness columns that
       actually occur (detaching a dead column would be a no-op mutant — a
       silent accept by construction, not a linter win) and the rows whose B
       side is a multiple of the one column (Merge_rows candidates). *)
    let occurring_witness =
      lazy
        (let occ = Array.make (max inst.num_witness 1) false in
         let note m =
           Seq.iter
             (fun (_, c, _) -> if c < inst.num_witness then occ.(c) <- true)
             (Sparse.entries m)
         in
         note inst.a;
         note inst.b;
         note inst.c;
         let l = ref [] in
         for v = inst.num_witness - 1 downto 0 do
           if occ.(v) then l := v :: !l
         done;
         Array.of_list !l)
    in
    let linear_rows =
      lazy
        (let has_b = Array.make nc false in
         let nonlin = Array.make nc false in
         Seq.iter
           (fun (r, c, _) ->
             if r < nc then begin
               has_b.(r) <- true;
               if c <> one_col then nonlin.(r) <- true
             end)
           (Sparse.entries inst.b);
         let l = ref [] in
         for r = nc - 1 downto 0 do
           if has_b.(r) && not nonlin.(r) then l := r :: !l
         done;
         Array.of_list !l)
    in
    let gen () =
      match Rng.int rng 5 with
      | 0 -> Some (Drop_row (pick_row ()))
      | 1 -> (
        match Lazy.force occurring_witness with
        | [||] -> None
        | vs -> Some (Detach_var vs.(Rng.int rng (Array.length vs))))
      | 2 ->
        let src = pick_row () in
        Option.map (fun dst -> Dup_row (src, dst)) (pick_other src)
      | 3 ->
        let src = pick_row () in
        Option.map
          (fun dst -> Scale_row (src, dst, 2 + Rng.int rng 8))
          (pick_other src)
      | _ -> (
        match Lazy.force linear_rows with
        | rows when Array.length rows >= 2 ->
          let i = rows.(Rng.int rng (Array.length rows)) in
          let j = ref i in
          while !j = i do
            j := rows.(Rng.int rng (Array.length rows))
          done;
          Some (Merge_rows (i, !j))
        | _ -> None)
    in
    (* A few retries: some operators are inapplicable on some circuits. *)
    let rec attempt k =
      if k = 0 then None
      else
        match gen () with
        | None -> attempt (k - 1)
        | Some op -> (
          match apply inst asgn op with
          | None -> attempt (k - 1)
          | Some mutant -> Some (op, mutant))
    in
    attempt 16

let sweep ~seed ~count (inst : R1cs.instance) (asgn : R1cs.assignment) =
  let rng = Rng.create seed in
  let out = ref [] in
  for _ = 1 to count do
    match random rng inst asgn with
    | Some m -> out := m :: !out
    | None -> ()
  done;
  List.rev !out
