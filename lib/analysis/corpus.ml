module Isa = Nocap_model.Isa
module Schedule = Nocap_model.Schedule
module Kernels = Nocap_model.Kernels
module Spmv_compile = Nocap_model.Spmv_compile

type entry = {
  name : string;
  vector_len : int;
  program : Isa.program;
  num_regs : int;
  mem_slots : int;
}

type verdict = {
  entry : entry;
  lint : Lint.report;
  schedule : Schedule.schedule;
  check : Check.report;
}

let of_program ~name ~vector_len program =
  let max_reg =
    List.fold_left
      (fun acc instr ->
        let acc = List.fold_left max acc (Isa.reads instr) in
        match Isa.writes instr with Some d -> max acc d | None -> acc)
      (-1) program
  in
  {
    name;
    vector_len;
    program;
    num_regs = max_reg + 1;
    mem_slots = Lint.min_mem_slots program;
  }

let of_spmv ~name ~vector_len m =
  let sched = Spmv_compile.compile ~vector_len m in
  of_program ~name ~vector_len sched.Spmv_compile.program

let kernels ~vector_len =
  if vector_len < 8 || vector_len land (vector_len - 1) <> 0 then
    invalid_arg "Corpus.kernels: vector_len must be a power of two >= 8";
  let k = vector_len in
  let log_k =
    let rec go a m = if m <= 1 then a else go (a + 1) (m / 2) in
    go 0 k
  in
  let cols = 1 lsl (log_k / 2) in
  let rows = k / cols in
  let four_step, _twiddles = Kernels.four_step_ntt ~rows ~cols in
  let reduce_add =
    (Isa.Vload (0, 0) :: Kernels.reduce_add_program ~vector_len:k ~src:0 ~scratch:1)
    @ [ Isa.Vstore (1, 0) ]
  in
  [
    of_program ~name:"elementwise-mul" ~vector_len:k
      Kernels.elementwise_mul.Kernels.program;
    of_program ~name:"sumcheck-round" ~vector_len:k
      (Kernels.sumcheck_round ~vector_len:k).Kernels.program;
    of_program ~name:"merkle-level" ~vector_len:k
      (Kernels.merkle_level ~vector_len:k).Kernels.program;
    of_program ~name:"poly-mul-cyclic" ~vector_len:k
      Kernels.poly_mul_cyclic.Kernels.program;
    of_program ~name:"reduce-add" ~vector_len:k reduce_add;
    of_program
      ~name:(Printf.sprintf "four-step-ntt-%dx%d" rows cols)
      ~vector_len:k four_step.Kernels.program;
  ]

let verify config entry =
  let lint =
    Lint.lint ~num_regs:entry.num_regs ~mem_slots:entry.mem_slots
      ~vector_len:entry.vector_len entry.program
  in
  let schedule = Schedule.run config ~vector_len:entry.vector_len entry.program in
  let check = Check.check config ~vector_len:entry.vector_len entry.program schedule in
  { entry; lint; schedule; check }

let verify_all config entries = List.map (verify config) entries

let clean v = Lint.is_clean v.lint && Check.is_clean v.check

let summary v =
  Printf.sprintf "%s (k=%d):\n  lint: %s\n  schedule: %s" v.entry.name
    v.entry.vector_len (Lint.summary v.lint) (Check.summary v.check)
