(** Constraint-weakening mutation operators: the adversarial oracle for
    {!Circuit_lint}.

    Every operator produces a mutant that the honest assignment still
    satisfies (a true weakening — the mutant accepts at least everything the
    original accepted) and is constructed so that a specific lint rule must
    fire on it ({!expected_rule}). The regression suite replays a pinned
    corpus of (circuit, operator) pairs and a seeded random sweep, asserting
    zero silent accepts: the expected rule appears in the lint report of
    every mutant. *)

type op =
  | Drop_row of int  (** empty constraint row [r] entirely *)
  | Detach_var of int
      (** fold every occurrence of witness column [v] into the constant-one
          column at its honest value, leaving [v] unreferenced *)
  | Dup_row of int * int  (** overwrite row [dst] with an exact copy of [src] *)
  | Scale_row of int * int * int
      (** overwrite row [dst] with [(alpha*A_src, B_src, alpha*C_src)],
          [alpha >= 2] *)
  | Merge_rows of int * int
      (** combine two linear rows (B a multiple of the one column) into a
          single [0 = C'z] row at the first index, emptying the second *)

val op_name : op -> string
val expected_rule : op -> string
(** The {!Circuit_lint} rule guaranteed to fire on the mutant of a clean
    circuit: [trivial-constraint] for {!Drop_row}/{!Merge_rows},
    [unconstrained-variable] for {!Detach_var}, [duplicate-constraint] for
    {!Dup_row}, [redundant-constraint] for {!Scale_row}. *)

val op_to_string : op -> string
(** Compact stable form (["drop:12"], ["scale:3>17*5"], ...) used by the
    pinned corpus file. *)

val op_of_string : string -> op
(** Inverse of {!op_to_string}. @raise Invalid_argument on malformed input. *)

val apply :
  Zk_r1cs.R1cs.instance ->
  Zk_r1cs.R1cs.assignment ->
  op ->
  Zk_r1cs.R1cs.instance option
(** Apply one operator. [None] when the operator's preconditions fail (row
    out of range, trivial source row, detached column never occurs, ...) —
    preconditions under which the mutant could equal the original. The
    assignment is only read (for {!Detach_var}'s folded constant); mutants
    keep the original assignment. *)

val random :
  Zk_util.Rng.t ->
  Zk_r1cs.R1cs.instance ->
  Zk_r1cs.R1cs.assignment ->
  (op * Zk_r1cs.R1cs.instance) option
(** One random applicable mutation, or [None] if sixteen draws found none
    (tiny or degenerate circuits). *)

val sweep :
  seed:int64 ->
  count:int ->
  Zk_r1cs.R1cs.instance ->
  Zk_r1cs.R1cs.assignment ->
  (op * Zk_r1cs.R1cs.instance) list
(** [count] seeded draws of {!random} (inapplicable draws are skipped, so
    the result may be shorter than [count] on degenerate circuits). *)
