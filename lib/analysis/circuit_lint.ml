module Gf = Zk_field.Gf
module R1cs = Zk_r1cs.R1cs
module Sparse = Zk_r1cs.Sparse

(* Static soundness analysis of R1CS instances (DESIGN.md Sec. 10).

   The central question is whether the io (public inputs) pins down the
   witness. We answer it in two stages over the honest assignment:

   1. Unit propagation: seed the known set with the io half, then repeatedly
      find a constraint row whose residual is linear in exactly one unknown
      with a nonzero net coefficient, and pin that unknown. This walks the
      "wire order" of builder-produced circuits almost linearly.

   2. Jacobian rank probe: whatever propagation leaves (typically bit wires
      whose booleanity rows are bilinear in themselves) is handed to a sparse
      Gaussian elimination over the Jacobian of the constraint map at the
      honest point. Free (non-pivot) columns are genuine first-order degrees
      of freedom: we construct the tangent nullspace vector and verify it
      against every leftover row before reporting. The probe is local — see
      the .mli and DESIGN.md for the soundness caveats. *)

type row_entry = (int * Gf.t) list
(* (column, coefficient) pairs of one matrix row, sorted by ascending column. *)

type verdict = {
  diags : Diag.t list;
  num_rows : int;
  num_vars : int;  (** live witness + io columns *)
  propagated : int;  (** witness vars pinned by unit propagation *)
  probe_unknowns : int;  (** vars handed to the rank probe *)
  probe_free : int;  (** residual degrees of freedom the probe confirmed *)
  probe_ops : int;  (** field operations spent in the elimination *)
}

let default_probe_budget = 50_000_000
let default_max_reports = 8

(* --- row extraction ------------------------------------------------------ *)

let rows_of_matrix (m : Sparse.t) ~num_rows : row_entry array =
  let rows = Array.make num_rows [] in
  Seq.iter
    (fun (r, c, v) -> if r < num_rows then rows.(r) <- (c, v) :: rows.(r))
    (Sparse.entries m);
  (* CSR entries arrive row-major; within a row we sort by column so that
     canonical forms and merges are deterministic. *)
  Array.map (fun l -> List.sort (fun (c1, _) (c2, _) -> compare c1 c2) (List.rev l)) rows

(* --- report capping ------------------------------------------------------ *)

(* Collect diagnostics per rule, emitting at most [max_reports] concrete
   findings and one aggregate line for the rest: a pathological circuit
   should produce a readable report, not num_vars lines of output. *)
type sink = {
  mutable out : Diag.t list;  (* reverse order *)
  counts : (string, int) Hashtbl.t;
  max_reports : int;
}

let sink max_reports = { out = []; counts = Hashtbl.create 16; max_reports }

let emit sink d =
  let n = try Hashtbl.find sink.counts d.Diag.rule with Not_found -> 0 in
  Hashtbl.replace sink.counts d.Diag.rule (n + 1);
  if n < sink.max_reports then sink.out <- d :: sink.out

let drain sink =
  let aggregates =
    Hashtbl.fold
      (fun rule n acc ->
        if n > sink.max_reports then
          let severity =
            match List.find_opt (fun d -> d.Diag.rule = rule) sink.out with
            | Some d -> d.Diag.severity
            | None -> Diag.Warning
          in
          {
            Diag.severity;
            index = Diag.program_level;
            rule;
            message =
              Printf.sprintf "... and %d more %s findings (capped at %d)"
                (n - sink.max_reports) rule sink.max_reports;
          }
          :: acc
        else acc)
      sink.counts []
  in
  List.rev_append sink.out aggregates

(* --- the analysis -------------------------------------------------------- *)

let analyze ?(max_reports = default_max_reports)
    ?(probe_budget = default_probe_budget) (inst : R1cs.instance)
    (asgn : R1cs.assignment) =
  let n = R1cs.size inst in
  let half = n / 2 in
  let nc = inst.num_constraints in
  let z = R1cs.z inst asgn in
  let a_rows = rows_of_matrix inst.a ~num_rows:nc in
  let b_rows = rows_of_matrix inst.b ~num_rows:nc in
  let c_rows = rows_of_matrix inst.c ~num_rows:nc in
  let az = Sparse.spmv inst.a z and bz = Sparse.spmv inst.b z in
  let cz = Sparse.spmv inst.c z in
  let s = sink max_reports in

  (* Occurrence counts over the real constraint rows. *)
  let occurrences = Array.make n 0 in
  Array.iter
    (List.iter (fun (c, _) -> occurrences.(c) <- occurrences.(c) + 1))
    a_rows;
  Array.iter
    (List.iter (fun (c, _) -> occurrences.(c) <- occurrences.(c) + 1))
    b_rows;
  Array.iter
    (List.iter (fun (c, _) -> occurrences.(c) <- occurrences.(c) + 1))
    c_rows;

  (* unconstrained-variable: a live witness column no constraint mentions.
     The prover can set it to anything without the verifier noticing. *)
  for j = 0 to inst.num_witness - 1 do
    if occurrences.(j) = 0 then
      emit s
        (Diag.error ~index:j ~rule:"unconstrained-variable"
           (Printf.sprintf "witness column %d appears in no constraint" j))
  done;
  (* unused-public-input: a declared public input no constraint reads. Not a
     soundness hole (the io is fixed by the statement) but almost always a
     circuit bug: the statement does not say what the author thinks. *)
  for k = 1 to inst.num_io - 1 do
    if occurrences.(half + k) = 0 then
      emit s
        (Diag.warning ~index:(half + k) ~rule:"unused-public-input"
           (Printf.sprintf "public input %d (column %d) appears in no constraint"
              k (half + k)))
  done;

  (* Per-row lints. *)
  for r = 0 to nc - 1 do
    if not (Gf.equal (Gf.mul az.(r) bz.(r)) cz.(r)) then
      emit s
        (Diag.error ~index:r ~rule:"unsatisfied-constraint"
           (Printf.sprintf "(Az)(Bz) = %s but Cz = %s at row %d"
              (Gf.to_string (Gf.mul az.(r) bz.(r)))
              (Gf.to_string cz.(r))
              r));
    if c_rows.(r) = [] && (a_rows.(r) = [] || b_rows.(r) = []) then
      emit s
        (Diag.error ~index:r ~rule:"trivial-constraint"
           (Printf.sprintf
              "row %d is 0 = 0 for every assignment (C empty, product side \
               identically zero)"
              r))
  done;

  (* duplicate/redundant constraints, via canonical row forms. Scaling A by
     alpha and B by beta scales the product side by alpha*beta, so the family
     (alpha*A_r, beta*B_r, alpha*beta*C_r) all express the same constraint:
     normalize each side by its leading coefficient and C by the product. A
     row whose product side is identically zero (A or B empty) only says
     "0 = C z", so only C participates in its canonical form. *)
  let canonical r =
    let a = a_rows.(r) and b = b_rows.(r) and c = c_rows.(r) in
    if c = [] && (a = [] || b = []) then None (* trivial rows handled above *)
    else if a = [] || b = [] then
      let c0 = match c with (_, v) :: _ -> v | [] -> Gf.one in
      let inv = Gf.inv c0 in
      Some ("z", [], List.map (fun (j, v) -> (j, Gf.mul inv v)) c)
    else
      let lead l = match l with (_, v) :: _ -> v | [] -> Gf.one in
      let scale k l = List.map (fun (j, v) -> (j, Gf.mul k v)) l in
      let alpha = lead a and beta = lead b in
      let a' = scale (Gf.inv alpha) a and b' = scale (Gf.inv beta) b in
      let c' = scale (Gf.inv (Gf.mul alpha beta)) c in
      (* (Az)(Bz) is symmetric in A and B: order the pair canonically. *)
      let lo, hi = if compare a' b' <= 0 then (a', b') else (b', a') in
      Some ("p", lo, (-1, Gf.zero) :: hi @ ((-2, Gf.zero) :: c'))
  in
  let seen : (string * row_entry * row_entry, int) Hashtbl.t =
    Hashtbl.create (2 * nc)
  in
  for r = 0 to nc - 1 do
    match canonical r with
    | None -> ()
    | Some key -> (
      match Hashtbl.find_opt seen key with
      | None -> Hashtbl.add seen key r
      | Some first ->
        let exact =
          a_rows.(r) = a_rows.(first)
          && b_rows.(r) = b_rows.(first)
          && c_rows.(r) = c_rows.(first)
        in
        let rule =
          if exact then "duplicate-constraint" else "redundant-constraint"
        in
        emit s
          (Diag.warning ~index:r ~rule
             (Printf.sprintf "row %d %s row %d" r
                (if exact then "is an exact copy of"
                 else "is a scalar multiple of")
                first)))
  done;

  (* --- stage 1: unit propagation over the honest assignment ------------- *)
  let known = Array.make n false in
  let is_const = Array.make n false in
  (* Seed: the io half is fixed by the statement; io.(0) is the literal 1.
     Padding columns (dead witness slots, dead io slots) hold zero and are
     referenced by no constraint — mark them known constants so stray
     references cannot wedge the propagation. *)
  for j = half to n - 1 do
    known.(j) <- true
  done;
  is_const.(half) <- true;
  for j = inst.num_witness to half - 1 do
    known.(j) <- true;
    is_const.(j) <- true
  done;
  for j = half + inst.num_io to n - 1 do
    is_const.(j) <- true
  done;

  let col_rows = Array.make n [] in
  let note_col r (c, _) =
    match col_rows.(c) with
    | r' :: _ when r' = r -> ()
    | l -> col_rows.(c) <- r :: l
  in
  for r = 0 to nc - 1 do
    List.iter (note_col r) a_rows.(r);
    List.iter (note_col r) b_rows.(r);
    List.iter (note_col r) c_rows.(r)
  done;

  let propagated = ref 0 in
  let queue = Queue.create () in
  for r = 0 to nc - 1 do
    Queue.add r queue
  done;
  let queued = Array.make nc true in
  let requeue r =
    if not queued.(r) then begin
      queued.(r) <- true;
      Queue.add r queue
    end
  in
  (* Try to pin exactly one unknown from row [r]. The linear view: when one
     product side is fully known with value alpha, the row reads
     sum_j (alpha*other_j - c_j) z_j = 0 whose net coefficient on an unknown
     u must be nonzero and unique among unknowns for u to be determined. *)
  let side_known l = List.for_all (fun (j, _) -> known.(j)) l in
  let pin u value_const =
    known.(u) <- true;
    is_const.(u) <- value_const;
    incr propagated;
    List.iter requeue col_rows.(u)
  in
  let try_row r =
    let a = a_rows.(r) and b = b_rows.(r) and c = c_rows.(r) in
    let a_known = side_known a and b_known = side_known b in
    (* Net coefficients of the linearized row: alpha known-product-side value
       times the other side's coefficients, minus C's. *)
    let linear =
      if a_known && b_known then
        (* Only C can hold unknowns: az*bz = sum c_j z_j. *)
        Some (List.map (fun (j, v) -> (j, Gf.neg v)) c)
      else if a_known then
        Some
          (List.map (fun (j, v) -> (j, Gf.mul az.(r) v)) b
          @ List.map (fun (j, v) -> (j, Gf.neg v)) c)
      else if b_known then
        Some
          (List.map (fun (j, v) -> (j, Gf.mul bz.(r) v)) a
          @ List.map (fun (j, v) -> (j, Gf.neg v)) c)
      else None
    in
    match linear with
    | None -> false
    | Some terms ->
      (* Sum duplicate columns (a variable may sit on both B and C). *)
      let net = Hashtbl.create 8 in
      List.iter
        (fun (j, v) ->
          if not known.(j) then
            let cur = try Hashtbl.find net j with Not_found -> Gf.zero in
            Hashtbl.replace net j (Gf.add cur v))
        terms;
      let unknowns =
        Hashtbl.fold
          (fun j v acc -> if Gf.equal v Gf.zero then acc else (j, v) :: acc)
          net []
      in
      (match unknowns with
      | [ (u, _) ] ->
        let const =
          List.for_all (fun (j, _) -> j = u || is_const.(j)) a
          && List.for_all (fun (j, _) -> j = u || is_const.(j)) b
          && List.for_all (fun (j, _) -> j = u || is_const.(j)) c
        in
        pin u const;
        true
      | _ -> false)
  in
  while not (Queue.is_empty queue) do
    let r = Queue.pop queue in
    queued.(r) <- false;
    ignore (try_row r)
  done;

  (* constant-variable: pinned from rows whose every other wire was itself a
     constant — the value cannot depend on the statement, so the wire could
     be folded away at circuit-construction time. *)
  for j = 0 to inst.num_witness - 1 do
    if known.(j) && is_const.(j) then
      emit s
        (Diag.warning ~index:j ~rule:"constant-variable"
           (Printf.sprintf
              "witness column %d is the constant %s in every satisfying \
               assignment"
              j
              (Gf.to_string z.(j))))
  done;

  (* --- stage 2: Jacobian rank probe on the leftovers --------------------- *)
  (* Unknown live witness columns that do occur somewhere (pure
     no-occurrence columns were already reported as unconstrained). *)
  let unknowns = ref [] in
  for j = inst.num_witness - 1 downto 0 do
    if (not known.(j)) && occurrences.(j) > 0 then unknowns := j :: !unknowns
  done;
  let probe_unknowns = List.length !unknowns in
  let probe_free = ref 0 in
  let ops = ref 0 in
  if probe_unknowns > 0 then begin
    let is_unknown = Array.make n false in
    List.iter (fun j -> is_unknown.(j) <- true) !unknowns;
    (* Jacobian of r-th constraint f_r(z) = (A_r z)(B_r z) - C_r z at the
       honest point, restricted to unknown columns:
       df_r/dz_u = bz(r) * A_r[u] + az(r) * B_r[u] - C_r[u]. *)
    let probe_rows = ref [] in
    let jac_row r =
      let net = Hashtbl.create 8 in
      let addc j v =
        if is_unknown.(j) then
          let cur = try Hashtbl.find net j with Not_found -> Gf.zero in
          Hashtbl.replace net j (Gf.add cur v)
      in
      List.iter (fun (j, v) -> addc j (Gf.mul bz.(r) v)) a_rows.(r);
      List.iter (fun (j, v) -> addc j (Gf.mul az.(r) v)) b_rows.(r);
      List.iter (fun (j, v) -> addc j (Gf.neg v)) c_rows.(r);
      let l =
        Hashtbl.fold
          (fun j v acc -> if Gf.equal v Gf.zero then acc else (j, v) :: acc)
          net []
      in
      (* Descending column order: circuits allocate outputs after inputs, so
         leading-by-largest-column keeps the elimination near-triangular
         (booleanity rows are singleton pivots; no fill). *)
      List.sort (fun (c1, _) (c2, _) -> compare c2 c1) l
    in
    let touches_unknown r =
      List.exists (fun (j, _) -> is_unknown.(j)) a_rows.(r)
      || List.exists (fun (j, _) -> is_unknown.(j)) b_rows.(r)
      || List.exists (fun (j, _) -> is_unknown.(j)) c_rows.(r)
    in
    for r = 0 to nc - 1 do
      if touches_unknown r then
        match jac_row r with [] -> () | jr -> probe_rows := jr :: !probe_rows
    done;
    let probe_rows = List.rev !probe_rows in
    (* Incremental echelon form; pivots normalized to leading coefficient 1,
       keyed by leading (largest) column. *)
    let pivots : (int, row_entry) Hashtbl.t = Hashtbl.create 1024 in
    (* v - k*p over descending-sorted rows, dropping cancellations. *)
    let rec sub_scaled v k p =
      match (v, p) with
      | v, [] -> v
      | [], (j, pv) :: p' ->
        incr ops;
        (j, Gf.neg (Gf.mul k pv)) :: sub_scaled [] k p'
      | (jv, vv) :: v', (jp, pv) :: p' ->
        if jv > jp then (jv, vv) :: sub_scaled v' k p
        else if jp > jv then begin
          incr ops;
          (jp, Gf.neg (Gf.mul k pv)) :: sub_scaled v k p'
        end
        else begin
          incr ops;
          let nv = Gf.sub vv (Gf.mul k pv) in
          if Gf.equal nv Gf.zero then sub_scaled v' k p'
          else (jv, nv) :: sub_scaled v' k p'
        end
    in
    let overflow = ref false in
    let rec reduce v =
      if !ops > probe_budget then overflow := true
      else
        match v with
        | [] -> ()
        | (j, k) :: _ -> (
          match Hashtbl.find_opt pivots j with
          | Some p ->
            (* p's leading entry is (j, 1): the head cancels exactly. *)
            reduce (sub_scaled v k p)
          | None ->
            let inv = Gf.inv k in
            ops := !ops + List.length v;
            Hashtbl.replace pivots j
              (List.map (fun (c, x) -> (c, Gf.mul inv x)) v))
    in
    List.iter (fun v -> if not !overflow then reduce v) probe_rows;
    if !overflow then
      emit s
        (Diag.warning ~index:Diag.program_level ~rule:"probe-overflow"
           (Printf.sprintf
              "rank probe exceeded its %d-op budget with %d unknowns; \
               under-constrained detection incomplete"
              probe_budget probe_unknowns))
    else begin
      (* Free columns = unknowns that never became pivots. Each is a genuine
         first-order degree of freedom; exhibit the tangent direction and
         check it against every probe row before reporting. *)
      let free = List.filter (fun j -> not (Hashtbl.mem pivots j)) !unknowns in
      probe_free := List.length free;
      let verify_direction f =
        let delta = Hashtbl.create 64 in
        Hashtbl.replace delta f Gf.one;
        let dval j = try Hashtbl.find delta j with Not_found -> Gf.zero in
        (* Pivot rows lead with their largest column, so filling pivots in
           increasing column order is plain back-substitution. *)
        let pivot_cols =
          List.sort compare (Hashtbl.fold (fun j _ acc -> j :: acc) pivots [])
        in
        List.iter
          (fun j ->
            let row = Hashtbl.find pivots j in
            let rest =
              List.fold_left
                (fun acc (c, v) ->
                  if c = j then acc else Gf.add acc (Gf.mul v (dval c)))
                Gf.zero row
            in
            let v = Gf.neg rest in
            if not (Gf.equal v Gf.zero) then Hashtbl.replace delta j v)
          pivot_cols;
        List.for_all
          (fun row ->
            Gf.equal Gf.zero
              (List.fold_left
                 (fun acc (c, v) -> Gf.add acc (Gf.mul v (dval c)))
                 Gf.zero row))
          probe_rows
      in
      List.iter
        (fun f ->
          if verify_direction f then
            emit s
              (Diag.error ~index:f ~rule:"under-constrained-variable"
                 (Printf.sprintf
                    "witness column %d admits a verified tangent degree of \
                     freedom: perturbing it extends to a nearby satisfying \
                     assignment with the same public io"
                    f))
          else
            emit s
              (Diag.warning ~index:f ~rule:"probe-overflow"
                 (Printf.sprintf
                    "free column %d failed nullspace verification; probe \
                     result inconclusive"
                    f)))
        free
    end
  end;

  {
    diags = drain s;
    num_rows = nc;
    num_vars = inst.num_witness + inst.num_io;
    propagated = !propagated;
    probe_unknowns;
    probe_free = !probe_free;
    probe_ops = !ops;
  }

let lint ?max_reports ?probe_budget inst asgn =
  (analyze ?max_reports ?probe_budget inst asgn).diags

let is_clean v = Diag.is_clean v.diags

let summary v =
  Printf.sprintf
    "%d rows, %d vars: %d propagated, %d probed (%d free, %d ops), %d \
     errors, %d warnings"
    v.num_rows v.num_vars v.propagated v.probe_unknowns v.probe_free
    v.probe_ops
    (List.length (Diag.errors v.diags))
    (List.length (Diag.warnings v.diags))
