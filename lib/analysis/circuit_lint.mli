(** Static soundness analysis of R1CS instances: does the public io pin down
    the witness, and is every constraint row doing real work?

    The analysis runs over the honest assignment in two stages
    (DESIGN.md Sec. 10):

    + {b Unit propagation}: the known set is seeded with the io half;
      any row whose residual is linear in exactly one unknown with a
      nonzero net coefficient pins that unknown. Builder-produced circuits
      are near-triangular in wire order, so this resolves most of the
      witness in one sweep.
    + {b Jacobian rank probe}: leftovers (typically bit wires, bilinear in
      their own booleanity rows) go to a sparse Gaussian elimination of the
      constraint Jacobian at the honest point, leading by largest column.
      Free columns are first-order degrees of freedom; each is reported only
      after its tangent nullspace vector has been re-verified against every
      leftover Jacobian row.

    {b Soundness caveats} (see DESIGN.md Sec. 10.2): the probe is local and
    first-order. It certifies that a flagged variable really can move (no
    false positives after verification, up to first order), but a clean
    probe does not rule out discrete ambiguity — a second satisfying witness
    far from the honest one. Degenerate points where the Jacobian loses rank
    without a true degree of freedom (e.g. a constraint [x*x = 0] at
    [x = 0]) are reported as under-constrained even though [x] is uniquely
    zero; such non-reduced constraints do not occur in the shipped gadget
    library.

    Rules (fixed names, see {!Diag.error_rule_codes} for exit codes):
    errors [unconstrained-variable], [under-constrained-variable],
    [unsatisfied-constraint], [trivial-constraint]; warnings
    [duplicate-constraint], [redundant-constraint], [unused-public-input],
    [constant-variable], [probe-overflow]. Variable rules anchor
    {!Diag.t.index} to the z-vector column, row rules to the constraint
    row. *)

type verdict = {
  diags : Diag.t list;
  num_rows : int;
  num_vars : int;  (** live witness + io columns *)
  propagated : int;  (** witness vars pinned by unit propagation *)
  probe_unknowns : int;  (** vars handed to the rank probe *)
  probe_free : int;  (** residual degrees of freedom the probe confirmed *)
  probe_ops : int;  (** field operations spent in the elimination *)
}

val default_probe_budget : int
val default_max_reports : int

val analyze :
  ?max_reports:int ->
  ?probe_budget:int ->
  Zk_r1cs.R1cs.instance ->
  Zk_r1cs.R1cs.assignment ->
  verdict
(** Full analysis. [max_reports] (default {!default_max_reports}) caps the
    concrete findings per rule — overflow collapses into one aggregate
    diagnostic with the same rule name. [probe_budget] (default
    {!default_probe_budget}) bounds the field operations the rank probe may
    spend before giving up with a [probe-overflow] warning. *)

val lint :
  ?max_reports:int ->
  ?probe_budget:int ->
  Zk_r1cs.R1cs.instance ->
  Zk_r1cs.R1cs.assignment ->
  Diag.t list
(** Just the diagnostics of {!analyze}. *)

val is_clean : verdict -> bool
(** No error-severity diagnostics (warnings are advisory). *)

val summary : verdict -> string
(** One human-readable line with the verdict counters. *)
