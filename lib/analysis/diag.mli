(** Structured diagnostics shared by the {!Lint} program linter, the
    {!Check} schedule checker and the {!Circuit_lint} R1CS linter.

    Every finding is anchored to an index so that it can be cross-referenced
    with the analysed artifact: an instruction index for program/schedule
    findings (the same index {!Nocap_model.Vm.exec} failures report), a
    constraint-row index for per-row circuit findings, or a z-vector column
    for per-variable circuit findings. Analyses return diagnostics instead of
    raising: a broken artifact yields a report that names every violation,
    not just the first. *)

type severity = Error | Warning

type t = {
  severity : severity;
  index : int;
      (** instruction index / constraint row / z column, depending on the
          rule; {!program_level} for whole-artifact findings *)
  rule : string;  (** stable kebab-case rule name, e.g. ["uninitialized-read"] *)
  message : string;
}

val program_level : int
(** Sentinel index ([-1]) for diagnostics not tied to one instruction. *)

val error : index:int -> rule:string -> string -> t
val warning : index:int -> rule:string -> string -> t

val errors : t list -> t list
val warnings : t list -> t list

val is_clean : t list -> bool
(** No [Error]-severity diagnostics ([Warning]s are advisory: e.g. the SpMV
    compiler's gather shuffles are flagged but valid). *)

val has_rule : string -> t list -> bool
(** Is there a diagnostic with the given rule name? *)

val to_string : t -> string
(** ["error[uninitialized-read] at #3: ..."]. *)

val pp : Format.formatter -> t -> unit

(** {1 Exit codes}

    Scriptable contract shared by [nocap-cli lint] and
    [nocap-cli circuit-lint], mirroring the {!Verify_error} convention:
    [0] means no errors, and every error rule has a stable code starting at
    20 (see {!error_rule_codes}). Drivers print the winning rule name on
    stderr as the final line. Warnings never affect the exit code. *)

val error_rule_codes : (string * int) list
(** The full rule-name → exit-code table, in priority order (lower code =
    higher priority when several categories fire at once). *)

val rule_code : string -> int
(** Code for one error rule; unknown rules map to a reserved catch-all. *)

val exit_category : t list -> (string * int) option
(** The highest-priority error rule present, with its code; [None] when the
    diagnostics contain no errors. *)

val exit_code : t list -> int
(** [0] when {!is_clean}, else the code of {!exit_category}. *)

(** {1 Machine-readable JSON}

    A stable JSON envelope (schema id ["nocap-diag/v1"]) shared by both
    linters' [--format json] output, parseable with {!Zk_util.Json_min}. *)

val json_schema : string

val to_json : t -> string
(** One diagnostic as a single-line JSON object. *)

val list_to_json : t list -> string
(** The full report: [{"schema": ..., "exit_code": ..., "diags": [...]}]. *)

val list_of_json_string : string -> t list
(** Parse {!list_to_json} output back; raises {!Zk_util.Json_min.Bad_json}
    on schema mismatch or an [exit_code] inconsistent with the diags. *)
