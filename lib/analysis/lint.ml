module Isa = Nocap_model.Isa

type pressure = {
  max_reg : int;
  regs_used : int;
  peak_live : int;
  peak_live_index : int;
}

type report = {
  diags : Diag.t list;
  pressure : pressure;
  input_slots : int list;
  output_slots : int list;
  instr_count : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

(* Register operands valid enough to track through the dataflow analyses:
   negative indices are diagnosed and then ignored. *)
let valid_reg ?num_regs r =
  r >= 0 && match num_regs with None -> true | Some n -> r < n

let slot_of = function
  | Isa.Vload (_, slot) | Isa.Vstore (slot, _) -> Some slot
  | _ -> None

(* Per-instruction operand/shape rules (everything except the dataflow
   passes). Returns diagnostics in reverse order. *)
let check_operands ~vector_len ?num_regs ?mem_slots instrs =
  let k = vector_len in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let check_regs i instr =
    let bad r =
      if r < 0 then
        emit
          (Diag.error ~index:i ~rule:"bad-register"
             (Printf.sprintf "negative register r%d in %s" r (Isa.describe instr)))
      else
        match num_regs with
        | Some n when r >= n ->
          emit
            (Diag.error ~index:i ~rule:"bad-register"
               (Printf.sprintf "register r%d exceeds the %d-register budget in %s" r n
                  (Isa.describe instr)))
        | _ -> ()
    in
    List.iter bad (Isa.reads instr);
    match Isa.writes instr with Some d -> bad d | None -> ()
  in
  Array.iteri
    (fun i instr ->
      check_regs i instr;
      (match slot_of instr with
      | Some slot ->
        if slot < 0 then
          emit
            (Diag.error ~index:i ~rule:"bad-slot"
               (Printf.sprintf "negative memory slot m%d in %s" slot
                  (Isa.describe instr)))
        else (
          match mem_slots with
          | Some n when slot >= n ->
            emit
              (Diag.error ~index:i ~rule:"bad-slot"
                 (Printf.sprintf "memory slot m%d exceeds the %d-slot memory in %s"
                    slot n (Isa.describe instr)))
          | _ -> ())
      | None -> ());
      match instr with
      | Isa.Vshuffle (_, _, perm) ->
        if Array.length perm <> k then
          emit
            (Diag.error ~index:i ~rule:"bad-permutation"
               (Printf.sprintf "permutation length %d, vector length %d"
                  (Array.length perm) k))
        else begin
          let out_of_range = ref (-1) in
          let hit = Array.make k 0 in
          Array.iter
            (fun src ->
              if src < 0 || src >= k then (
                if !out_of_range < 0 then out_of_range := src)
              else hit.(src) <- hit.(src) + 1)
            perm;
          if !out_of_range >= 0 then
            emit
              (Diag.error ~index:i ~rule:"bad-permutation"
                 (Printf.sprintf "source index %d outside [0, %d)" !out_of_range k))
          else if Array.exists (fun c -> c <> 1) hit then
            emit
              (Diag.warning ~index:i ~rule:"non-bijective-shuffle"
                 "shuffle repeats source lanes (a gather, not a permutation)")
        end
      | Isa.Vrotate (_, _, n) ->
        if n < 0 then
          emit
            (Diag.error ~index:i ~rule:"bad-rotate"
               (Printf.sprintf "negative rotation amount %d" n))
        else if n >= k then
          emit
            (Diag.warning ~index:i ~rule:"rotate-wraps"
               (Printf.sprintf "rotation amount %d >= vector length %d (wraps)" n k))
      | Isa.Vinterleave (_, _, g) ->
        if g < 0 || g >= 30 || k mod (2 * (1 lsl g)) <> 0 then
          emit
            (Diag.error ~index:i ~rule:"bad-interleave"
               (Printf.sprintf
                  "group %d: vector length %d is not a multiple of 2 * 2^%d" g k g))
      | Isa.Vntt_tiled { tile; _ } ->
        if tile < 2 || not (is_power_of_two tile) || k mod tile <> 0 then
          emit
            (Diag.error ~index:i ~rule:"bad-tile"
               (Printf.sprintf
                  "tile %d must be a power of two >= 2 dividing vector length %d"
                  tile k))
      | Isa.Delay n ->
        if n < 0 then
          emit
            (Diag.error ~index:i ~rule:"bad-delay"
               (Printf.sprintf "negative delay %d" n))
      | _ -> ())
    instrs;
  !diags

(* Forward pass: def-before-use on registers, input/output slot discipline. *)
let check_dataflow ?num_regs instrs =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let written = Hashtbl.create 16 in
  (* slot -> state: `Input if first touched by a load, otherwise index of the
     last store and whether it has been loaded back since. *)
  let input_slots = ref [] in
  let stored_ever = Hashtbl.create 16 in
  let last_store = Hashtbl.create 16 in
  let outputs = Hashtbl.create 16 in
  Array.iteri
    (fun i instr ->
      List.iter
        (fun r ->
          if valid_reg ?num_regs r && not (Hashtbl.mem written r) then
            emit
              (Diag.error ~index:i ~rule:"uninitialized-read"
                 (Printf.sprintf "r%d read by %s before any write" r
                    (Isa.describe instr))))
        (Isa.reads instr);
      (match instr with
      | Isa.Vload (_, slot) when slot >= 0 ->
        if not (Hashtbl.mem stored_ever slot) && not (List.mem slot !input_slots)
        then input_slots := slot :: !input_slots;
        Hashtbl.remove last_store slot
      | Isa.Vstore (slot, _) when slot >= 0 ->
        (match Hashtbl.find_opt last_store slot with
        | Some j ->
          emit
            (Diag.warning ~index:j ~rule:"dead-store"
               (Printf.sprintf
                  "store to m%d is overwritten by instruction %d with no \
                   intervening load"
                  slot i))
        | None -> ());
        if List.mem slot !input_slots then
          emit
            (Diag.warning ~index:i ~rule:"input-output-alias"
               (Printf.sprintf "store overwrites input slot m%d" slot));
        Hashtbl.replace stored_ever slot ();
        Hashtbl.replace last_store slot i;
        Hashtbl.replace outputs slot ()
      | _ -> ());
      match Isa.writes instr with
      | Some d when valid_reg ?num_regs d -> Hashtbl.replace written d ()
      | _ -> ())
    instrs;
  let sorted tbl = Hashtbl.fold (fun s () acc -> s :: acc) tbl [] |> List.sort compare in
  (!diags, List.sort compare !input_slots, sorted outputs)

(* Backward liveness: dead writes and peak register pressure. *)
let check_liveness ?num_regs instrs =
  let n = Array.length instrs in
  let diags = ref [] in
  let live = Hashtbl.create 16 in
  let peak = ref 0 and peak_index = ref (-1) in
  for i = n - 1 downto 0 do
    let instr = instrs.(i) in
    (match Isa.writes instr with
    | Some d when valid_reg ?num_regs d ->
      if not (Hashtbl.mem live d) then
        diags :=
          Diag.warning ~index:i ~rule:"dead-write"
            (Printf.sprintf "value written to r%d by %s is never read" d
               (Isa.describe instr))
          :: !diags;
      Hashtbl.remove live d
    | _ -> ());
    List.iter
      (fun r -> if valid_reg ?num_regs r then Hashtbl.replace live r ())
      (Isa.reads instr);
    let sz = Hashtbl.length live in
    if sz > !peak then (
      peak := sz;
      peak_index := i)
  done;
  (!diags, !peak, !peak_index)

let measure_pressure ?num_regs instrs =
  let regs = Hashtbl.create 16 in
  let max_reg = ref (-1) in
  Array.iter
    (fun instr ->
      let touch r =
        if r >= 0 then begin
          Hashtbl.replace regs r ();
          if r > !max_reg then max_reg := r
        end
      in
      List.iter touch (Isa.reads instr);
      match Isa.writes instr with Some d -> touch d | None -> ())
    instrs;
  let dead_diags, peak_live, peak_live_index = check_liveness ?num_regs instrs in
  ( dead_diags,
    {
      max_reg = !max_reg;
      regs_used = Hashtbl.length regs;
      peak_live;
      peak_live_index;
    } )

let lint ?num_regs ?mem_slots ~vector_len program =
  let instrs = Array.of_list program in
  let global =
    if vector_len < 4 || not (is_power_of_two vector_len) then
      [
        Diag.error ~index:Diag.program_level ~rule:"bad-vector-len"
          (Printf.sprintf "vector length %d is not a power of two >= 4" vector_len);
      ]
    else []
  in
  let operand_diags = check_operands ~vector_len ?num_regs ?mem_slots instrs in
  let flow_diags, input_slots, output_slots = check_dataflow ?num_regs instrs in
  let dead_diags, pressure = measure_pressure ?num_regs instrs in
  let by_index (a : Diag.t) (b : Diag.t) = compare (a.Diag.index, a.Diag.rule) (b.Diag.index, b.Diag.rule) in
  let diags =
    global @ List.stable_sort by_index (operand_diags @ flow_diags @ dead_diags)
  in
  { diags; pressure; input_slots; output_slots; instr_count = Array.length instrs }

let is_clean r = Diag.is_clean r.diags

let min_registers r = r.pressure.max_reg + 1

let min_mem_slots program =
  List.fold_left
    (fun acc instr ->
      match slot_of instr with Some s when s >= 0 -> max acc (s + 1) | _ -> acc)
    0 program

let summary r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%d instructions, %d errors, %d warnings\n" r.instr_count
       (List.length (Diag.errors r.diags))
       (List.length (Diag.warnings r.diags)));
  List.iter (fun d -> Buffer.add_string b ("  " ^ Diag.to_string d ^ "\n")) r.diags;
  Buffer.add_string b
    (Printf.sprintf
       "  registers: %d used (max r%d), peak pressure %d live at #%d\n"
       r.pressure.regs_used r.pressure.max_reg r.pressure.peak_live
       r.pressure.peak_live_index);
  Buffer.add_string b
    (Printf.sprintf "  slots: inputs [%s], outputs [%s]"
       (String.concat "; " (List.map string_of_int r.input_slots))
       (String.concat "; " (List.map string_of_int r.output_slots)));
  Buffer.contents b
