(** The program corpus the analysis pass guards: every ISA program generator
    in the stack ({!Nocap_model.Kernels}, {!Nocap_model.Spmv_compile}),
    bundled with the VM sizing it needs, plus one-call verification that
    lints the program and checks its {!Nocap_model.Schedule.run} schedule.

    This is what the [nocap-cli lint] subcommand, the benchmark harness's
    [lint] report item, and the test suite all drive. *)

type entry = {
  name : string;
  vector_len : int;
  program : Nocap_model.Isa.program;
  num_regs : int;  (** register-file size the program needs *)
  mem_slots : int;  (** memory slots the program needs *)
}

type verdict = {
  entry : entry;
  lint : Lint.report;
  schedule : Nocap_model.Schedule.schedule;
  check : Check.report;
}

val of_program :
  name:string -> vector_len:int -> Nocap_model.Isa.program -> entry
(** Derive the VM sizing (registers, memory slots) from the program itself. *)

val of_spmv : name:string -> vector_len:int -> Zk_r1cs.Sparse.t -> entry
(** Compile the matrix with {!Nocap_model.Spmv_compile.compile} and wrap the
    resulting program. The matrix dimensions must be multiples of
    [vector_len]. *)

val kernels : vector_len:int -> entry list
(** Every {!Nocap_model.Kernels} generator at the given vector length:
    elementwise multiply, sumcheck round, Merkle level, cyclic polynomial
    product, the reduce-add tree (wrapped with a load and a store), and the
    four-step NTT on a [rows * cols = vector_len] split. Requires
    [vector_len >= 8] (the Merkle kernel hashes digest pairs of 8 lanes). *)

val verify : Nocap_model.Config.t -> entry -> verdict
(** Lint the program (against its own register/slot sizing), schedule it with
    {!Nocap_model.Schedule.run}, and check the schedule. *)

val verify_all : Nocap_model.Config.t -> entry list -> verdict list

val clean : verdict -> bool
(** Both the lint report and the schedule check are error-free. *)

val summary : verdict -> string
