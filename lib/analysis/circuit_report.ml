module R1cs = Zk_r1cs.R1cs
module Sparse = Zk_r1cs.Sparse

(* Structure reports: the shape facts the performance model consumes.
   NoCap's SpMV mapping (paper Sec. V-A) wins exactly when the R1CS matrices
   have O(1) nonzeros per row and limited bandwidth; this module measures
   both per shipped circuit so the claims in lib/perf rest on measured
   workload structure instead of assumed constants. *)

type matrix_stats = {
  nnz : int;
  rows_nonempty : int;
  row_nnz_max : int;
  row_nnz_mean : float;  (** over the real constraint rows *)
  band_max : int;
  band_mean : float;
  band_within_64 : float;  (** fraction of nonzeros with [|col - row| <= 64] *)
}

type fanout_stats = {
  live_vars : int;  (** live witness + live io columns *)
  unused_vars : int;  (** live columns with zero occurrences *)
  fanout_max : int;
  fanout_mean : float;  (** occurrences across A, B, C per live column *)
}

type t = {
  name : string;
  log_size : int;
  num_constraints : int;
  num_witness : int;
  num_io : int;
  total_nnz : int;
  density_factor : float;  (** total nonzeros per constraint row *)
  a : matrix_stats;
  b : matrix_stats;
  c : matrix_stats;
  fanout : fanout_stats;
}

let matrix_stats (m : Sparse.t) ~num_rows =
  let row_nnz = Array.make (max num_rows 1) 0 in
  let nnz = ref 0 in
  let in_band = ref 0 in
  Seq.iter
    (fun (r, c, _) ->
      incr nnz;
      if r < num_rows then row_nnz.(r) <- row_nnz.(r) + 1;
      if abs (c - r) <= 64 then incr in_band)
    (Sparse.entries m);
  let band_max, band_mean = Sparse.bandwidth_profile m in
  let nonempty = Array.fold_left (fun acc k -> if k > 0 then acc + 1 else acc) 0 row_nnz in
  let max_nnz = Array.fold_left max 0 row_nnz in
  {
    nnz = !nnz;
    rows_nonempty = nonempty;
    row_nnz_max = max_nnz;
    row_nnz_mean = (if num_rows = 0 then 0.0 else float_of_int !nnz /. float_of_int num_rows);
    band_max;
    band_mean;
    band_within_64 =
      (if !nnz = 0 then 1.0 else float_of_int !in_band /. float_of_int !nnz);
  }

let of_instance ?(name = "circuit") (inst : R1cs.instance) =
  let n = R1cs.size inst in
  let half = n / 2 in
  let nc = inst.num_constraints in
  let occ = Array.make n 0 in
  let count m =
    Seq.iter (fun (_, c, _) -> occ.(c) <- occ.(c) + 1) (Sparse.entries m)
  in
  count inst.a;
  count inst.b;
  count inst.c;
  let live_vars = inst.num_witness + inst.num_io in
  let total_occ = ref 0 and unused = ref 0 and fan_max = ref 0 in
  let visit j =
    total_occ := !total_occ + occ.(j);
    if occ.(j) = 0 then incr unused;
    if occ.(j) > !fan_max then fan_max := occ.(j)
  in
  for j = 0 to inst.num_witness - 1 do
    visit j
  done;
  for k = 0 to inst.num_io - 1 do
    visit (half + k)
  done;
  {
    name;
    log_size = inst.log_size;
    num_constraints = nc;
    num_witness = inst.num_witness;
    num_io = inst.num_io;
    total_nnz = R1cs.nnz inst;
    density_factor =
      (if nc = 0 then 0.0 else float_of_int (R1cs.nnz inst) /. float_of_int nc);
    a = matrix_stats inst.a ~num_rows:nc;
    b = matrix_stats inst.b ~num_rows:nc;
    c = matrix_stats inst.c ~num_rows:nc;
    fanout =
      {
        live_vars;
        unused_vars = !unused;
        fanout_max = !fan_max;
        fanout_mean =
          (if live_vars = 0 then 0.0
           else float_of_int !total_occ /. float_of_int live_vars);
      };
  }

let summary t =
  Printf.sprintf
    "%s: 2^%d, %d rows, %d wit + %d io, nnz %d (density %.2f), band max \
     %d/%d/%d, fanout max %d mean %.2f"
    t.name t.log_size t.num_constraints t.num_witness t.num_io t.total_nnz
    t.density_factor t.a.band_max t.b.band_max t.c.band_max t.fanout.fanout_max
    t.fanout.fanout_mean

let matrix_to_json m =
  Printf.sprintf
    {|{"nnz": %d, "rows_nonempty": %d, "row_nnz_max": %d, "row_nnz_mean": %.6f, "band_max": %d, "band_mean": %.6f, "band_within_64": %.6f}|}
    m.nnz m.rows_nonempty m.row_nnz_max m.row_nnz_mean m.band_max m.band_mean
    m.band_within_64

let to_json t =
  Printf.sprintf
    {|{"name": "%s", "log_size": %d, "num_constraints": %d, "num_witness": %d, "num_io": %d, "total_nnz": %d, "density_factor": %.6f, "a": %s, "b": %s, "c": %s, "fanout": {"live_vars": %d, "unused_vars": %d, "fanout_max": %d, "fanout_mean": %.6f}}|}
    t.name t.log_size t.num_constraints t.num_witness t.num_io t.total_nnz
    t.density_factor (matrix_to_json t.a) (matrix_to_json t.b)
    (matrix_to_json t.c) t.fanout.live_vars t.fanout.unused_vars
    t.fanout.fanout_max t.fanout.fanout_mean
