type severity = Error | Warning

type t = {
  severity : severity;
  index : int;
  rule : string;
  message : string;
}

let program_level = -1

let error ~index ~rule message = { severity = Error; index; rule; message }

let warning ~index ~rule message = { severity = Warning; index; rule; message }

let errors ds = List.filter (fun d -> d.severity = Error) ds

let warnings ds = List.filter (fun d -> d.severity = Warning) ds

let is_clean ds = errors ds = []

let has_rule rule ds = List.exists (fun d -> d.rule = rule) ds

let to_string d =
  let sev = match d.severity with Error -> "error" | Warning -> "warning" in
  let where =
    if d.index = program_level then "program" else Printf.sprintf "#%d" d.index
  in
  Printf.sprintf "%s[%s] at %s: %s" sev d.rule where d.message

let pp fmt d = Format.pp_print_string fmt (to_string d)

(* --- exit codes: one per error category, shared by both linters --------- *)

(* The scriptable contract (README "Linting" exit-code table), mirroring the
   Verify_error convention: 0 = clean, and each error rule maps to a stable
   code starting at 20. When several categories fire at once the
   highest-priority (lowest-numbered) one wins, and drivers print that rule
   name on stderr as the final line. Warnings never affect the exit code. *)
let error_rule_codes =
  [
    (* circuit linter (Circuit_lint) *)
    ("unconstrained-variable", 20);
    ("under-constrained-variable", 21);
    ("unsatisfied-constraint", 22);
    ("trivial-constraint", 23);
    (* ISA program linter (Lint) *)
    ("bad-vector-len", 24);
    ("bad-register", 25);
    ("uninitialized-read", 26);
    ("bad-slot", 27);
    ("bad-permutation", 28);
    ("bad-rotate", 29);
    ("bad-interleave", 30);
    ("bad-tile", 31);
    ("bad-delay", 32);
    (* schedule checker (Check) *)
    ("length-mismatch", 33);
    ("instr-mismatch", 34);
    ("negative-issue", 35);
    ("raw-hazard", 36);
    ("fu-overlap", 37);
    ("finish-mismatch", 38);
    ("fu-busy-mismatch", 39);
    ("makespan-mismatch", 40);
  ]

let unknown_rule_code = 41

let rule_code rule =
  match List.assoc_opt rule error_rule_codes with
  | Some c -> c
  | None -> unknown_rule_code

let exit_category ds =
  match errors ds with
  | [] -> None
  | errs ->
    let best =
      List.fold_left
        (fun acc d ->
          match acc with
          | Some (_, c) when c <= rule_code d.rule -> acc
          | _ -> Some (d.rule, rule_code d.rule))
        None errs
    in
    best

let exit_code ds = match exit_category ds with None -> 0 | Some (_, c) -> c

(* --- stable machine-readable JSON form ---------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let severity_name = function Error -> "error" | Warning -> "warning"

let severity_of_name = function
  | "error" -> Error
  | "warning" -> Warning
  | s -> raise (Zk_util.Json_min.Bad_json ("unknown severity " ^ s))

let to_json d =
  Printf.sprintf {|{"severity": "%s", "index": %d, "rule": "%s", "message": "%s"}|}
    (severity_name d.severity) d.index (json_escape d.rule) (json_escape d.message)

let json_schema = "nocap-diag/v1"

let list_to_json ds =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"schema\": %S,\n" json_schema);
  Buffer.add_string buf (Printf.sprintf "  \"exit_code\": %d,\n" (exit_code ds));
  Buffer.add_string buf "  \"diags\": [\n";
  List.iteri
    (fun i d ->
      Buffer.add_string buf "    ";
      Buffer.add_string buf (to_json d);
      Buffer.add_string buf (if i = List.length ds - 1 then "\n" else ",\n"))
    ds;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let of_json j =
  let open Zk_util.Json_min in
  {
    severity = severity_of_name (as_str (field j "severity"));
    index = int_of_float (as_num (field j "index"));
    rule = as_str (field j "rule");
    message = as_str (field j "message");
  }

let list_of_json_string s =
  let open Zk_util.Json_min in
  let j = parse_json s in
  if as_str (field j "schema") <> json_schema then
    raise (Bad_json "wrong diag schema id");
  let ds = List.map of_json (as_list (field j "diags")) in
  if int_of_float (as_num (field j "exit_code")) <> exit_code ds then
    raise (Bad_json "exit_code does not match diags");
  ds
