module R1cs = Zk_r1cs.R1cs

(* The shipped workload circuits, named, at analysis-feasible scales. This
   is the acceptance surface for Circuit_lint: every entry must lint clean
   (no error diagnostics), and the mutation oracle must trip on every
   weakened variant of every entry. The CLI's circuit-lint --all and the
   analysis bench iterate the same list, so a new workload added here is
   automatically covered by all three. *)

type entry = {
  name : string;
  description : string;
  generate : scale:int -> R1cs.instance * R1cs.assignment;
}

(* Litmus batches for the corpus write each row at most once: a write that
   is later overwritten leaves the first written value a free witness (the
   linter rightly flags it — see test_analysis's overwrite test), so the
   clean corpus avoids the pattern the same way a careful circuit author
   would. *)
let litmus_transactions ~rows =
  let open Zk_workloads.Litmus_circuit in
  List.init (rows / 4) (fun i ->
      {
        row_a = 4 * i;
        op_a = Write (11 + (7 * i));
        row_b = (4 * i) + 1;
        op_b = Read;
      })
  @ List.init (rows / 4) (fun i ->
        {
          row_a = (4 * i) + 2;
          op_a = Read;
          row_b = (4 * i) + 3;
          op_b = Write (13 + (5 * i));
        })

let entries =
  let open Zk_workloads in
  [
    {
      name = "aes128";
      description = "AES-128 encryption, key witnessed, blocks public";
      generate = (fun ~scale -> Aes128.circuit ~blocks:scale ~seed:7L ());
    };
    {
      name = "sha256";
      description = "SHA-256 compression with public digests";
      generate = (fun ~scale -> Sha256_circuit.circuit ~blocks:scale ~seed:7L ());
    };
    {
      name = "keccak";
      description = "Keccak-f permutation blocks";
      generate = (fun ~scale -> Keccak_circuit.circuit ~blocks:scale ~seed:7L ());
    };
    {
      name = "cipher";
      description = "toy SPN cipher blocks";
      generate = (fun ~scale -> Cipher.circuit ~blocks:(2 * scale) ~seed:7L ());
    };
    {
      name = "modexp";
      description = "bignum modular exponentiation instances";
      generate = (fun ~scale -> Modexp.circuit ~instances:(4 * scale) ~seed:7L ());
    };
    {
      name = "auction";
      description = "sealed-bid auction, winning price public";
      generate = (fun ~scale -> Auction_circuit.circuit ~bids:(8 * scale) ~seed:7L ());
    };
    {
      name = "ml_inference";
      description = "two-layer perceptron with argmax-verified class";
      generate =
        (fun ~scale ->
          Mlp_circuit.circuit ~input_dim:8 ~hidden_dim:(6 * scale) ~classes:3
            ~seed:7L ());
    };
    {
      name = "verifiable_db";
      description = "Litmus-style verifiable database transaction batch";
      generate =
        (fun ~scale ->
          let rows = 8 * scale in
          Litmus_circuit.circuit ~rows
            ~transactions:(litmus_transactions ~rows)
            ~seed:7L ());
    };
    {
      name = "synthetic";
      description = "structure-matched synthetic chain (public seed wire)";
      generate =
        (fun ~scale ->
          Synthetic.circuit ~n_constraints:(512 * scale) ~public_seed:true
            ~seed:7L ());
    };
  ]

let names = List.map (fun e -> e.name) entries

let find name = List.find_opt (fun e -> e.name = name) entries
