(** SHA3-256 Merkle trees (Sec. V-A "Merkle tree" task).

    Orion commits to an encoded matrix by hashing each codeword column into a
    leaf and Merkle-hashing the leaves; openings reveal a column together with
    its authentication path. *)

type digest = Zk_hash.Keccak.digest

type tree

val build : digest array -> tree
(** Build over the given leaf digests. The leaf count is padded to a power of
    two with a distinguished empty digest. Each level is hashed as one
    batched call split across the {!Nocap_parallel.Pool} domains; the tree
    is byte-identical to {!build_serial} for every domain count.
    @raise Invalid_argument on an empty leaf array. *)

val build_serial : digest array -> tree
(** Single-domain reference implementation of {!build} (the oracle the
    parallel/serial equivalence tests compare against). *)

val leaf_of_column : Zk_field.Gf.t array -> digest
(** Hash a column of field elements into a leaf (8 LE bytes per element, as
    the Hash FU packs vector lanes). *)

val leaves_of_columns : Zk_field.Gf.t array array -> digest array
(** Batched {!leaf_of_column} over independent columns, split across the
    pool domains. *)

val leaves_of_matrix : rows:int -> cols:int -> Nocap_vec.Fv.t -> digest array
(** Leaf digests for every column of a row-major [rows * cols] flat encoded
    matrix, read with stride [cols] straight out of the unboxed buffer.
    Equals {!leaves_of_columns} of the gathered columns. *)

(** Incremental tree construction for the streaming commit: leaf digests
    arrive in chunks as column sponges finalize, and internal nodes are
    hashed eagerly the moment both children exist. [finish] returns a tree
    byte-identical to {!build} over the same leaves (same pair hashing,
    same [empty_leaf] padding); only the hashing schedule differs. *)
module Builder : sig
  type t

  val create : int -> t
  (** [create n] expects exactly [n] real leaves.
      @raise Invalid_argument if [n <= 0]. *)

  val add : t -> digest array -> unit
  (** Append the next chunk of leaves, in leaf order.
      @raise Invalid_argument past [n] leaves. *)

  val finish : t -> tree
  (** Pad and finish. @raise Invalid_argument unless exactly [n] leaves
      were added. *)
end

val root : tree -> digest

val num_leaves : tree -> int
(** Number of real (unpadded) leaves. *)

val depth : tree -> int

val path : tree -> int -> digest list
(** Authentication path for leaf [i], bottom-up (sibling at each level). *)

val verify : root:digest -> index:int -> leaf:digest -> path:digest list -> bool
(** Check a leaf against a root. Total on arbitrary input. *)

val max_proof_depth : int
(** Longest authentication path [check_path] will walk (62): a longer path
    cannot belong to any addressable tree and is rejected before hashing. *)

val check_path :
  root:digest -> index:int -> leaf:digest -> path:digest list -> (unit, string) result
(** {!verify} with a reason on failure ("root mismatch", "path too long",
    ...). Total on arbitrary input: hostile indices, over-long paths, and
    wrong-length digests are rejected, never raised on. This layer reports
    plain strings so it stays independent of the PCS error taxonomy;
    callers wrap the reason in [Verify_error.Merkle_mismatch]. *)

val path_length : int -> int
(** [path_length n] is the authentication-path length for [n] leaves
    (= ceil(log2 n)); used by the proof-size model. *)
