module Keccak = Zk_hash.Keccak

type digest = Keccak.digest

type tree = {
  (* levels.(0) is the (padded) leaf level; the last level is [| root |]. *)
  levels : digest array array;
  real_leaves : int;
}

let empty_leaf = Keccak.sha3_256_string "nocap-repro/merkle-empty-leaf"

let next_pow2 n =
  let rec go k = if k >= n then k else go (2 * k) in
  go 1

let leaf_of_column col = Keccak.hash_gf col

let leaves_of_columns cols = Keccak.hash_gf_batch cols

(* Flat fast path: leaf j is the hash of column j of the row-major
   [rows * cols] matrix, absorbed with stride [cols] straight out of the
   Bigarray — no per-column gather, no boxed intermediate. *)
let leaves_of_matrix ~rows ~cols flat = Keccak.hash_matrix_cols ~rows ~cols flat

let build_with ~pairs leaves =
  let n = Array.length leaves in
  if n = 0 then invalid_arg "Merkle.build: empty";
  let padded = next_pow2 n in
  let level0 = Array.make padded empty_leaf in
  Array.blit leaves 0 level0 0 n;
  let rec go acc level =
    if Array.length level = 1 then List.rev (level :: acc)
    else go (level :: acc) (pairs level)
  in
  { levels = Array.of_list (go [] level0); real_leaves = n }

(* Serial oracle for the parallel build: same tree, one domain. *)
let build_serial leaves =
  build_with leaves ~pairs:(fun level ->
      Array.init
        (Array.length level / 2)
        (fun i -> Keccak.hash2 level.(2 * i) level.((2 * i) + 1)))

let build leaves = build_with leaves ~pairs:Keccak.hash2_pairs

(* Incremental builder for the streaming commit: leaves arrive in chunks
   (as column sponges finalize) and internal nodes are hashed eagerly as
   soon as both children exist, so no leaf chunk has to persist. Produces
   the same node set as [build] — pairs hashed with [Keccak.hash2],
   padding with [empty_leaf] — so roots and paths are byte-identical to
   the one-shot build; only the hashing schedule differs (serial cascade
   instead of the pool's batched levels). *)
module Builder = struct
  type t = {
    levels : digest array array;
    fill : int array; (* entries written so far at each level *)
    real : int;
    mutable added : int;
  }

  let create n =
    if n <= 0 then invalid_arg "Merkle.Builder.create: need at least one leaf";
    let padded = next_pow2 n in
    let rec depth_of k m = if m = 1 then k else depth_of (k + 1) (m / 2) in
    let depth = depth_of 0 padded in
    let levels = Array.init (depth + 1) (fun k -> Array.make (padded lsr k) empty_leaf) in
    { levels; fill = Array.make (depth + 1) 0; real = n; added = 0 }

  let rec push t k d =
    let i = t.fill.(k) in
    t.levels.(k).(i) <- d;
    t.fill.(k) <- i + 1;
    if i land 1 = 1 && k + 1 < Array.length t.levels then
      push t (k + 1) (Keccak.hash2 t.levels.(k).(i - 1) d)

  let add t leaves =
    let n = Array.length leaves in
    if t.added + n > t.real then invalid_arg "Merkle.Builder.add: too many leaves";
    for i = 0 to n - 1 do
      push t 0 leaves.(i)
    done;
    t.added <- t.added + n

  let finish t =
    if t.added <> t.real then
      invalid_arg
        (Printf.sprintf "Merkle.Builder.finish: %d of %d leaves added" t.added t.real);
    let padded = Array.length t.levels.(0) in
    for _ = t.fill.(0) to padded - 1 do
      push t 0 empty_leaf
    done;
    { levels = t.levels; real_leaves = t.real }
end

let root t = t.levels.(Array.length t.levels - 1).(0)

let num_leaves t = t.real_leaves

let depth t = Array.length t.levels - 1

let path t i =
  if i < 0 || i >= Array.length t.levels.(0) then invalid_arg "Merkle.path: index";
  let rec go level idx acc =
    if level >= Array.length t.levels - 1 then List.rev acc
    else begin
      let sibling = t.levels.(level).(idx lxor 1) in
      go (level + 1) (idx / 2) (sibling :: acc)
    end
  in
  go 0 i []

(* A path longer than this cannot belong to any addressable tree (leaf
   counts are OCaml ints); it only ever appears in hostile input, so bound
   the walk before hashing anything. *)
let max_proof_depth = 62

let check_path ~root ~index ~leaf ~path =
  if index < 0 then Error "negative leaf index"
  else if List.length path > max_proof_depth then Error "path too long"
  else if List.exists (fun d -> String.length d <> 32) path then
    Error "path digest has wrong length"
  else begin
    let rec go idx current = function
      | [] -> if String.equal current root then Ok () else Error "root mismatch"
      | sibling :: rest ->
        let parent =
          if idx land 1 = 0 then Keccak.hash2 current sibling
          else Keccak.hash2 sibling current
        in
        go (idx / 2) parent rest
    in
    go index leaf path
  end

let verify ~root ~index ~leaf ~path =
  Result.is_ok (check_path ~root ~index ~leaf ~path)

let path_length n =
  let rec go k m = if m >= n then k else go (k + 1) (2 * m) in
  go 0 1
