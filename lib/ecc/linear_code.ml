module type S = sig
  val name : string
  val blowup : int
  val encode : Zk_field.Gf.t array -> Zk_field.Gf.t array
  val encode_batch : Zk_field.Gf.t array array -> Zk_field.Gf.t array array
  val query_count : int
end

type t = (module S)
