module type S = sig
  val name : string
  val blowup : int
  val encode : Zk_field.Gf.t array -> Zk_field.Gf.t array
  val encode_batch : Zk_field.Gf.t array array -> Zk_field.Gf.t array array
  val encode_rows_fv : rows:int -> cols:int -> Nocap_vec.Fv.t -> Nocap_vec.Fv.t
  val query_count : int
end

type t = (module S)
