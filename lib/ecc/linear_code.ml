module type S = sig
  val name : string
  val blowup : int
  val encode : Zk_field.Gf.t array -> Zk_field.Gf.t array
  val encode_batch : Zk_field.Gf.t array array -> Zk_field.Gf.t array array
  val encode_rows_fv : rows:int -> cols:int -> Nocap_vec.Fv.t -> Nocap_vec.Fv.t

  val encode_row_into : src:Nocap_vec.Fv.t -> dst:Nocap_vec.Fv.t -> unit
  (** Encode one row in place: [src] is a length-[cols] message view, [dst]
      a length-[blowup * cols] codeword view ([dst] is fully overwritten).
      Bit-identical to the corresponding row of {!encode_rows_fv}; safe to
      call from pool workers (scratch is domain-local). The Orion commit
      pipeline streams rows through this instead of materializing encode
      output in one pass. *)

  val row_encode_ns : cols:int -> int
  (** Estimated cost of one {!encode_row_into} call in nanoseconds — the
      hint callers feed {!Nocap_parallel.Pool.grain_of_ns} and the commit
      pipeline uses to weight encode work against hash work. *)

  val query_count : int
end

type t = (module S)
