module Gf = Zk_field.Gf
module Ntt = Zk_ntt.Ntt.Gf_ntt

let name = "reed-solomon"

let blowup = 4

(* 189 column queries at blowup 4 reach 128-bit soundness for the proximity
   test (Sec. VII-A); the expander code needed 1,222. *)
let query_count = 189

let encode msg =
  let n = Array.length msg in
  if n = 0 || n land (n - 1) <> 0 then
    invalid_arg "Reed_solomon.encode: message length must be a power of two";
  let m = blowup * n in
  let buf = Array.make m Gf.zero in
  Array.blit msg 0 buf 0 n;
  Ntt.forward (Ntt.plan m) buf;
  buf

let encode_with_plan = encode

(* Row-wise encode: hoist the (lock-guarded) plan lookup out of the hot
   region, then one independent NTT per row across the pool. *)
let encode_batch rows =
  if Array.length rows = 0 then [||]
  else begin
    let n = Array.length rows.(0) in
    if n = 0 || n land (n - 1) <> 0 then
      invalid_arg "Reed_solomon.encode_batch: message length must be a power of two";
    Array.iter
      (fun row ->
        if Array.length row <> n then
          invalid_arg "Reed_solomon.encode_batch: ragged rows")
      rows;
    let m = blowup * n in
    let plan = Ntt.plan m in
    let out =
      (* Just allocate + blit per row here; the NTT below carries its own
         grain. *)
      Nocap_parallel.Pool.parallel_init
        ~grain:(Nocap_parallel.Pool.grain_of_ns (max 1 (m * 10)))
        (Array.length rows)
        (fun r ->
          let buf = Array.make m Gf.zero in
          Array.blit rows.(r) 0 buf 0 n;
          buf)
    in
    Ntt.forward_rows plan out;
    out
  end

(* One row: zero-extend the message view into the codeword view and NTT it
   in place. This is exactly what [encode_rows_fv] does per row, so the
   streaming commit pipeline produces bit-identical codewords. *)
let encode_row_into ~src ~dst =
  let n = Nocap_vec.Fv.length src in
  if n = 0 || n land (n - 1) <> 0 then
    invalid_arg "Reed_solomon.encode_row_into: message length must be a power of two";
  if Nocap_vec.Fv.length dst <> blowup * n then
    invalid_arg "Reed_solomon.encode_row_into: dst length <> blowup * src length";
  let module Nfv = Zk_ntt.Ntt.Gf_fv in
  let module Native = Nocap_native.Native in
  let plan = Nfv.plan (blowup * n) in
  if Native.on () then
    (* Fused copy + zero-pad + in-place NTT: one C call per row, no OCaml
       round trips between the prologue and the butterflies. *)
    Native.rs_encode_row src dst (Nfv.twiddles plan)
  else begin
    Nocap_vec.Fv.zero dst;
    Nocap_vec.Fv.blit ~src ~src_pos:0 ~dst ~dst_pos:0 ~len:n;
    Nfv.forward plan dst
  end

let log2 m =
  let rec go k x = if x <= 1 then k else go (k + 1) (x lsr 1) in
  go 0 m

(* Flat butterflies cost ~8ns (~3ns in the C kernel); the zero+blit
   prologue ~4ns (~1ns fused) per output. *)
let row_encode_ns ~cols =
  let m = blowup * cols in
  if Nocap_native.Native.on () then max 1 ((m / 2 * log2 m * 3) + m)
  else max 1 ((m / 2 * log2 m * 8) + (m * 4))

(* Unboxed row-wise encode: zero-extend every row inside one flat
   [rows * 4n] buffer, then run the in-place flat NTT across the pool. No
   boxed element is touched anywhere on this path. *)
let encode_rows_fv ~rows ~cols flat =
  if rows = 0 then Nocap_vec.Fv.create 0
  else begin
    if cols = 0 || cols land (cols - 1) <> 0 then
      invalid_arg "Reed_solomon.encode_rows_fv: message length must be a power of two";
    if rows < 0 || Nocap_vec.Fv.length flat <> rows * cols then
      invalid_arg "Reed_solomon.encode_rows_fv: flat length <> rows * cols";
    let m = blowup * cols in
    let out = Nocap_vec.Fv.create (rows * m) in
    Nocap_vec.Fv.zero out;
    for r = 0 to rows - 1 do
      Nocap_vec.Fv.blit ~src:flat ~src_pos:(r * cols) ~dst:out ~dst_pos:(r * m) ~len:cols
    done;
    let module Nfv = Zk_ntt.Ntt.Gf_fv in
    Nfv.forward_rows_flat (Nfv.plan m) ~rows out;
    out
  end

let codeword_at msg i =
  let n = Array.length msg in
  let m = blowup * n in
  if i < 0 || i >= m then invalid_arg "Reed_solomon.codeword_at";
  let log_m =
    let rec go k x = if x = 1 then k else go (k + 1) (x lsr 1) in
    go 0 m
  in
  let w = Gf.root_of_unity log_m in
  let x = Gf.pow w (Int64.of_int i) in
  (* Horner evaluation of the message polynomial at w^i. *)
  let acc = ref Gf.zero in
  for j = n - 1 downto 0 do
    acc := Gf.add (Gf.mul !acc x) msg.(j)
  done;
  !acc
