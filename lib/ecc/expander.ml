module Gf = Zk_field.Gf
module Rng = Zk_util.Rng

let name = "expander"

let blowup = 4

(* Expander codes at this rate need far more column queries than
   Reed-Solomon for the same soundness (Sec. VII-A). *)
let query_count = 1222

let base_size = 32

let degree = 8 (* nonzeros per row of each sparse graph matrix *)

let row_seed ~tag ~n ~row =
  Int64.add
    (Int64.mul (Int64.of_int n) 0x9E3779B97F4A7C15L)
    (Int64.add (Int64.mul (Int64.of_int row) 6364136223846793005L) (Int64.of_int tag))

(* A sparse row of a pseudo-random graph matrix: [degree] (column, coeff)
   pairs, derived deterministically from (tag, n, row) so that encoding is a
   fixed linear map per message size. *)
let sparse_row ~tag ~n ~cols ~row =
  let rng = Rng.create (row_seed ~tag ~n ~row) in
  Array.init degree (fun _ ->
      let col = Rng.int rng cols in
      let coeff = Gf.add Gf.one (Gf.of_int64 (Int64.rem (Rng.next rng) (Int64.sub Gf.p 1L))) in
      (col, coeff))

(* Each output symbol is an independent sparse dot product (the row
   derivation is a pure function of (tag, n, row)), so the gather loop
   splits across the pool; called from inside a batched encode it runs
   serially via the pool's nesting fallback. *)
(* One sparse row costs ~degree gathers of rng + mul/add, ~50ns each. *)
let graph_row_ns = degree * 50

let apply_graph ~tag ~rows x =
  let cols = Array.length x in
  Nocap_parallel.Pool.parallel_init
    ~grain:(Nocap_parallel.Pool.grain_of_ns graph_row_ns) rows
    (fun r ->
      let row = sparse_row ~tag ~n:cols ~cols ~row:r in
      Array.fold_left
        (fun acc (c, coeff) -> Gf.add acc (Gf.mul coeff x.(c)))
        Gf.zero row)

let rec encode msg =
  let n = Array.length msg in
  if n = 0 || n land (n - 1) <> 0 then
    invalid_arg "Expander.encode: message length must be a power of two";
  if n <= base_size then Reed_solomon.encode msg
  else begin
    (* Compress to n/2 through graph A, encode recursively (giving 2n), then
       expand the concatenation back through graph B to n more symbols:
       total n + 2n + n = 4n. The message is systematic in the codeword. *)
    let y = apply_graph ~tag:1 ~rows:(n / 2) msg in
    let z = encode y in
    let xz = Array.append msg z in
    let w = apply_graph ~tag:2 ~rows:n xz in
    Array.concat [ msg; z; w ]
  end

let rec random_accesses n =
  if n <= base_size then 0
  else
    (* degree gathers per row of A (n/2 rows) and of B (n rows). *)
    (degree * (n / 2)) + (degree * n) + random_accesses (n / 2)

(* A full message encode is dominated by its graph gathers plus the
   base-case RS encodes (~10ns per output symbol). *)
let row_encode_ns ~cols = max 1 ((random_accesses cols * 50) + (blowup * cols * 10))

(* Whole messages are independent; the recursion inside each message then
   runs serially on its worker domain. *)
let encode_batch rows =
  let grain =
    if Array.length rows = 0 then 1
    else Nocap_parallel.Pool.grain_of_ns (row_encode_ns ~cols:(Array.length rows.(0)))
  in
  Nocap_parallel.Pool.parallel_map ~grain encode rows

(* --- unboxed flat path --------------------------------------------------- *)

module Fv = Nocap_vec.Fv
module Arena = Nocap_vec.Arena

(* [apply_graph] over flat vectors. Same sparse rows, same Rng consumption
   order (column then coefficient, per entry ascending), same left-to-right
   accumulation — so results are bit-identical to the array path — but the
   per-row (column, coeff) pair array never materializes. *)
let apply_graph_fv ~tag (x : Fv.t) (dst : Fv.t) =
  let cols = Fv.length x in
  for r = 0 to Fv.length dst - 1 do
    let rng = Rng.create (row_seed ~tag ~n:cols ~row:r) in
    let acc = ref Gf.zero in
    for _ = 1 to degree do
      let c = Rng.int rng cols in
      let coeff = Gf.add Gf.one (Gf.of_int64 (Int64.rem (Rng.next rng) (Int64.sub Gf.p 1L))) in
      acc := Gf.add !acc (Gf.mul coeff (Fv.get x c))
    done;
    Fv.unsafe_set dst r !acc
  done

(* Encode [src] (length n) into [dst] (length 4n). The output layout
   [msg; z; w] makes the tag-2 input [msg ++ z] a contiguous prefix of
   [dst], so only the compressed intermediate [y] needs arena scratch. *)
let rec encode_fv_into (src : Fv.t) (dst : Fv.t) =
  let n = Fv.length src in
  if n <= base_size then begin
    (* Reed-Solomon base case: zero-extend and NTT in place. *)
    Fv.zero dst;
    Fv.blit ~src ~src_pos:0 ~dst ~dst_pos:0 ~len:n;
    let module Nfv = Zk_ntt.Ntt.Gf_fv in
    Nfv.forward (Nfv.plan (Fv.length dst)) dst
  end
  else begin
    Fv.blit ~src ~src_pos:0 ~dst ~dst_pos:0 ~len:n;
    let y = Arena.alloc (n / 2) in
    apply_graph_fv ~tag:1 src y;
    encode_fv_into y (Fv.sub_view dst ~pos:n ~len:(2 * n));
    apply_graph_fv ~tag:2
      (Fv.sub_view dst ~pos:0 ~len:(3 * n))
      (Fv.sub_view dst ~pos:(3 * n) ~len:n)
  end

(* One row through the recursive encoder, arena-framed so it is safe from
   any domain (and from serial callers). *)
let encode_row_into ~src ~dst =
  let n = Fv.length src in
  if n = 0 || n land (n - 1) <> 0 then
    invalid_arg "Expander.encode_row_into: message length must be a power of two";
  if Fv.length dst <> blowup * n then
    invalid_arg "Expander.encode_row_into: dst length <> blowup * src length";
  Arena.with_frame (fun () -> encode_fv_into src dst)

let encode_rows_fv ~rows ~cols flat =
  if rows = 0 then Fv.create 0
  else begin
    if cols = 0 || cols land (cols - 1) <> 0 then
      invalid_arg "Expander.encode_rows_fv: message length must be a power of two";
    if rows < 0 || Fv.length flat <> rows * cols then
      invalid_arg "Expander.encode_rows_fv: flat length <> rows * cols";
    let m = blowup * cols in
    let out = Fv.create (rows * m) in
    Nocap_parallel.Pool.parallel_for
      ~grain:(Nocap_parallel.Pool.grain_of_ns (row_encode_ns ~cols))
      ~n:rows
      (fun r ->
        Arena.with_frame (fun () ->
            encode_fv_into
              (Fv.sub_view flat ~pos:(r * cols) ~len:cols)
              (Fv.sub_view out ~pos:(r * m) ~len:m)));
    out
  end

let graph_bytes n =
  (* Each graph entry stores a column index (8 bytes) and coefficient
     (8 bytes). *)
  let rec entries n = if n <= base_size then 0 else (degree * (n / 2)) + (degree * n) + entries (n / 2) in
  16 * entries n
