module Gf = Zk_field.Gf
module Rng = Zk_util.Rng

let name = "expander"

let blowup = 4

(* Expander codes at this rate need far more column queries than
   Reed-Solomon for the same soundness (Sec. VII-A). *)
let query_count = 1222

let base_size = 32

let degree = 8 (* nonzeros per row of each sparse graph matrix *)

(* A sparse row of a pseudo-random graph matrix: [degree] (column, coeff)
   pairs, derived deterministically from (tag, n, row) so that encoding is a
   fixed linear map per message size. *)
let sparse_row ~tag ~n ~cols ~row =
  let seed =
    Int64.add
      (Int64.mul (Int64.of_int n) 0x9E3779B97F4A7C15L)
      (Int64.add (Int64.mul (Int64.of_int row) 6364136223846793005L) (Int64.of_int tag))
  in
  let rng = Rng.create seed in
  Array.init degree (fun _ ->
      let col = Rng.int rng cols in
      let coeff = Gf.add Gf.one (Gf.of_int64 (Int64.rem (Rng.next rng) (Int64.sub Gf.p 1L))) in
      (col, coeff))

(* Each output symbol is an independent sparse dot product (the row
   derivation is a pure function of (tag, n, row)), so the gather loop
   splits across the pool; called from inside a batched encode it runs
   serially via the pool's nesting fallback. *)
let apply_graph ~tag ~rows x =
  let cols = Array.length x in
  Nocap_parallel.Pool.parallel_init ~threshold:512 rows (fun r ->
      let row = sparse_row ~tag ~n:cols ~cols ~row:r in
      Array.fold_left
        (fun acc (c, coeff) -> Gf.add acc (Gf.mul coeff x.(c)))
        Gf.zero row)

let rec encode msg =
  let n = Array.length msg in
  if n = 0 || n land (n - 1) <> 0 then
    invalid_arg "Expander.encode: message length must be a power of two";
  if n <= base_size then Reed_solomon.encode msg
  else begin
    (* Compress to n/2 through graph A, encode recursively (giving 2n), then
       expand the concatenation back through graph B to n more symbols:
       total n + 2n + n = 4n. The message is systematic in the codeword. *)
    let y = apply_graph ~tag:1 ~rows:(n / 2) msg in
    let z = encode y in
    let xz = Array.append msg z in
    let w = apply_graph ~tag:2 ~rows:n xz in
    Array.concat [ msg; z; w ]
  end

(* Whole messages are independent; the recursion inside each message then
   runs serially on its worker domain. *)
let encode_batch rows = Nocap_parallel.Pool.parallel_map ~threshold:1 encode rows

let rec random_accesses n =
  if n <= base_size then 0
  else
    (* degree gathers per row of A (n/2 rows) and of B (n rows). *)
    (degree * (n / 2)) + (degree * n) + random_accesses (n / 2)

let graph_bytes n =
  (* Each graph entry stores a column index (8 bytes) and coefficient
     (8 bytes). *)
  let rec entries n = if n <= base_size then 0 else (degree * (n / 2)) + (degree * n) + entries (n / 2) in
  16 * entries n
