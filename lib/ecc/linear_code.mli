(** Common interface for the linear error-correcting codes used by the Orion
    polynomial commitment.

    A code maps an [n]-element message to a [blowup * n]-element codeword and
    is linear: [encode (m1 + m2) = encode m1 + encode m2], the property Orion
    exploits to let the verifier check random linear combinations of committed
    rows (Sec. V-A). *)

module type S = sig
  val name : string

  val blowup : int
  (** Codeword length divided by message length (4 in the paper's
      configuration). *)

  val encode : Zk_field.Gf.t array -> Zk_field.Gf.t array
  (** [encode msg] for a power-of-two message length. *)

  val encode_batch : Zk_field.Gf.t array array -> Zk_field.Gf.t array array
  (** Row-wise encoding of independent messages, split across the
      {!Nocap_parallel.Pool} domains — the matrix-row encode Orion's commit
      performs. Codewords are byte-identical to mapping {!encode} for every
      domain count. *)

  val encode_rows_fv : rows:int -> cols:int -> Nocap_vec.Fv.t -> Nocap_vec.Fv.t
  (** Unboxed {!encode_batch}: the input is a row-major [rows * cols] flat
      message matrix, the result the row-major [rows * (blowup * cols)] flat
      codeword matrix. Element-identical to {!encode_batch} of the unpacked
      rows for every domain count; scratch comes from the per-domain
      {!Nocap_vec.Arena}. *)

  val encode_row_into : src:Nocap_vec.Fv.t -> dst:Nocap_vec.Fv.t -> unit
  (** Encode one row in place: [src] is a length-[cols] message view, [dst]
      a length-[blowup * cols] codeword view, fully overwritten. Bit-identical
      to the corresponding row of {!encode_rows_fv}; safe to call from pool
      workers (scratch is domain-local). The Orion commit pipeline streams
      rows through this to overlap encoding with column hashing. *)

  val row_encode_ns : cols:int -> int
  (** Estimated cost of one {!encode_row_into} call in nanoseconds — the
      hint callers feed {!Nocap_parallel.Pool.grain_of_ns} and the commit
      pipeline uses to weight encode work against hash work. *)

  val query_count : int
  (** Number of codeword positions the verifier checks for 128-bit security
      (189 for Reed-Solomon at blowup 4; 1,222 for the expander code,
      Sec. VII-A). *)
end

type t = (module S)
