module Rng = Zk_util.Rng
module E = Zk_pcs.Verify_error

type target = {
  name : string;
  honest : bytes;
  verify : bytes -> (unit, E.t) result;
  structured : (string * (Rng.t -> bytes option)) list;
}

type verdict = Rejected of E.category | Accepted | Raised of string

let run_bytes target data =
  match target.verify data with
  | Ok () -> Accepted
  | Error e -> Rejected e.E.category
  | exception exn -> Raised (Printexc.to_string exn)

type report = {
  target_name : string;
  byte_mutants : int;
  structured_mutants : int;
  rejected : int;
  accepted : int;
  raised : int;
  honest_ok : bool;
  by_category : (string * int) list;
  by_op : (string * int) list;
  alarms : string list;
}

let clean r = r.accepted = 0 && r.raised = 0 && r.honest_ok

(* Mutable tally the sweep threads through; buckets are fixed up front so
   the report always lists every category/op, zeros included. *)
type tally = {
  mutable t_rejected : int;
  mutable t_accepted : int;
  mutable t_raised : int;
  mutable t_alarms : string list;
  cat_counts : int array;
  op_counts : (string * int ref) list;
}

let max_recorded_alarms = 20

let record tally ?op ~desc verdict =
  (match verdict with
  | Rejected c ->
    tally.t_rejected <- tally.t_rejected + 1;
    let rec idx i = function
      | [] -> assert false
      | c' :: rest -> if c' = c then i else idx (i + 1) rest
    in
    let i = idx 0 E.all_categories in
    tally.cat_counts.(i) <- tally.cat_counts.(i) + 1;
    Option.iter (fun o -> incr (List.assoc (Mutate.op_name o) tally.op_counts)) op
  | Accepted ->
    tally.t_accepted <- tally.t_accepted + 1;
    if List.length tally.t_alarms < max_recorded_alarms then
      tally.t_alarms <- (desc ^ ": ACCEPTED (soundness alarm)") :: tally.t_alarms
  | Raised msg ->
    tally.t_raised <- tally.t_raised + 1;
    if List.length tally.t_alarms < max_recorded_alarms then
      tally.t_alarms <- (desc ^ ": RAISED " ^ msg ^ " (robustness alarm)") :: tally.t_alarms)

let sweep ?(seed = 1L) ~byte_mutants ~structured_rounds target =
  let rng = Rng.create seed in
  let tally =
    {
      t_rejected = 0;
      t_accepted = 0;
      t_raised = 0;
      t_alarms = [];
      cat_counts = Array.make (List.length E.all_categories) 0;
      op_counts = List.map (fun o -> (Mutate.op_name o, ref 0)) Mutate.all_ops;
    }
  in
  let honest_ok = run_bytes target target.honest = Accepted in
  for i = 0 to byte_mutants - 1 do
    let op, mutant = Mutate.random rng target.honest in
    let desc =
      Printf.sprintf "%s byte mutant #%d (seed %Ld, op %s)" target.name i seed
        (Mutate.op_name op)
    in
    record tally ~op ~desc (run_bytes target mutant)
  done;
  let structured_count = ref 0 in
  for round = 0 to structured_rounds - 1 do
    List.iter
      (fun (mname, f) ->
        match f rng with
        | None -> ()
        | Some mutant ->
          incr structured_count;
          if Bytes.equal mutant target.honest then
            record tally
              ~desc:(Printf.sprintf "%s structured mutant %s" target.name mname)
              (Raised "mutator returned the honest bytes unchanged")
          else
            let desc =
              Printf.sprintf "%s structured mutant %s round %d (seed %Ld)" target.name
                mname round seed
            in
            record tally ~desc (run_bytes target mutant))
      target.structured
  done;
  {
    target_name = target.name;
    byte_mutants;
    structured_mutants = !structured_count;
    rejected = tally.t_rejected;
    accepted = tally.t_accepted;
    raised = tally.t_raised;
    honest_ok;
    by_category =
      List.mapi (fun i c -> (E.category_name c, tally.cat_counts.(i))) E.all_categories;
    by_op = List.map (fun (name, r) -> (name, !r)) tally.op_counts;
    alarms = List.rev tally.t_alarms;
  }

let pp_report fmt r =
  Format.fprintf fmt "target %s: %d byte + %d structured mutants, %d rejected"
    r.target_name r.byte_mutants r.structured_mutants r.rejected;
  Format.fprintf fmt ", %d accepted, %d raised, honest %s@\n" r.accepted r.raised
    (if r.honest_ok then "ok" else "REJECTED");
  Format.fprintf fmt "  by category:";
  List.iter (fun (c, n) -> if n > 0 then Format.fprintf fmt " %s=%d" c n) r.by_category;
  Format.fprintf fmt "@\n  by operator:";
  List.iter (fun (o, n) -> if n > 0 then Format.fprintf fmt " %s=%d" o n) r.by_op;
  Format.fprintf fmt "@\n";
  List.iter (fun a -> Format.fprintf fmt "  ALARM: %s@\n" a) r.alarms

(* --- corpus --- *)

let load_corpus_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let buf = Buffer.create 256 in
      (try
         while true do
           let line = input_line ic in
           let line =
             match String.index_opt line '#' with
             | Some i -> String.sub line 0 i
             | None -> line
           in
           let hex =
             String.concat ""
               (String.split_on_char ' ' (String.trim line)
               |> List.concat_map (String.split_on_char '\t'))
           in
           let n = String.length hex in
           if n mod 2 <> 0 then
             failwith (Printf.sprintf "%s: odd number of hex digits on a line" path);
           for i = 0 to (n / 2) - 1 do
             let pair = String.sub hex (2 * i) 2 in
             match int_of_string_opt ("0x" ^ pair) with
             | Some b -> Buffer.add_char buf (Char.chr b)
             | None -> failwith (Printf.sprintf "%s: bad hex byte %S" path pair)
           done
         done
       with End_of_file -> ());
      Bytes.of_string (Buffer.contents buf))

let replay_corpus target ~dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".hex")
  |> List.sort String.compare
  |> List.map (fun f ->
         let data = load_corpus_file (Filename.concat dir f) in
         (f, run_bytes target data))
