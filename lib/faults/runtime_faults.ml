(* Runtime fault injection for the proving service: deterministic worker
   crashes, spill I/O failures, artificially slow jobs, and malformed
   tenant requests. The selection is a pure function of (plan, job id /
   request index), so a fault-injected run is reproducible and the bench
   can predict exactly which jobs should have retried, timed out, or been
   rejected.

   Injection points:
   - worker crash / slow job: through [Serve]'s [fault_hook], called on
     the runner domain at each attempt start;
   - spill I/O: through [Spill.set_io_fault_hook], armed per runner
     domain (spill I/O follows the single-submitter pattern, so the
     domain that starts the attempt is the one that performs it). *)

module Spill = Nocap_vec.Spill

exception Injected_crash of int

type plan = {
  crash_every : int;
  io_fail_every : int;
  slow_every : int;
  slow_s : float;
  first_attempt_only : bool;
}

let none =
  {
    crash_every = 0;
    io_fail_every = 0;
    slow_every = 0;
    slow_s = 0.05;
    first_attempt_only = true;
  }

let default =
  { crash_every = 5; io_fail_every = 7; slow_every = 11; slow_s = 0.25; first_attempt_only = true }

let hits every id offset = every > 0 && id mod every = offset mod every

let crashes plan ~job_id = hits plan.crash_every job_id 1
let io_fails plan ~job_id = hits plan.io_fail_every job_id 3
let slows plan ~job_id = hits plan.slow_every job_id 5

(* --- spill I/O faults ---------------------------------------------------- *)

(* Per-domain countdown: the global Spill hook fires [Unix_error] when the
   calling domain's counter hits zero. Counters are re-armed (or cleared)
   at each attempt start, so a fault armed for a job that never spilled
   cannot leak into an unrelated later job on the same runner domain. *)
let io_countdown : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let io_hook_installed = ref false
let io_hook_lock = Mutex.create ()

let install_io_hook () =
  Mutex.lock io_hook_lock;
  if not !io_hook_installed then begin
    io_hook_installed := true;
    Spill.set_io_fault_hook
      (Some
         (fun op ->
           let r = Domain.DLS.get io_countdown in
           if !r > 0 then begin
             decr r;
             if !r = 0 then begin
               (* Alternate the two classic disk-failure modes. *)
               let err = if String.equal op "write" then Unix.ENOSPC else Unix.EIO in
               raise (Unix.Unix_error (err, "spill_" ^ op, "injected fault"))
             end
           end))
  end;
  Mutex.unlock io_hook_lock

let disarm_io_faults () =
  Mutex.lock io_hook_lock;
  io_hook_installed := false;
  Spill.set_io_fault_hook None;
  Mutex.unlock io_hook_lock

(* --- the Serve hook ------------------------------------------------------ *)

let hook plan : Nocap_serve.Serve.fault_hook =
 fun ~stage ~job_id ~attempt ->
  if String.equal stage "attempt" then begin
    (* Clear any stale armed I/O fault on this domain first. *)
    let r = Domain.DLS.get io_countdown in
    r := 0;
    let fires = (not plan.first_attempt_only) || attempt = 1 in
    if fires && slows plan ~job_id then Unix.sleepf plan.slow_s;
    if fires && io_fails plan ~job_id then begin
      install_io_hook ();
      (* Let a few transfers through so the fault lands mid-stream, past
         the cheap validation prologue. *)
      r := 3
    end;
    if fires && crashes plan ~job_id then raise (Injected_crash job_id)
  end

(* --- malformed tenant input ---------------------------------------------- *)

let malformed_request i : Nocap_serve.Serve.request =
  let open Nocap_serve.Serve in
  match i mod 3 with
  | 0 ->
    { tenant = "mallory"; workload = "no-such-workload"; scale = 4; kind = Prove;
      deadline_s = None }
  | 1 ->
    { tenant = "mallory"; workload = "synthetic"; scale = 0; kind = Prove;
      deadline_s = None }
  | _ ->
    { tenant = "mallory"; workload = "synthetic"; scale = max_int / 2; kind = Prove;
      deadline_s = None }
