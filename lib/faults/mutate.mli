(** Deterministic byte-level mutation operators for proof blobs.

    Each operator takes an {!Zk_util.Rng} stream and an input blob and
    produces a corrupted copy — the wire-level half of the fault-injection
    harness (structural, typed mutations live in {!Targets}). Operators are
    pure in the RNG: the same seed replays the same mutant, so every alarm
    the harness ever raises is reproducible from (seed, index) alone.

    Every operator guarantees its output differs from its input: when a
    draw happens to be a no-op (e.g. splicing a range onto itself), a bit
    flip is forced, so "mutant ≠ honest bytes" holds by construction and an
    [Ok] verdict on a mutant is always a soundness alarm. *)

type op =
  | Bit_flip  (** flip one random bit *)
  | Byte_set  (** overwrite one byte with a fresh value *)
  | Truncate  (** cut the blob short at a random offset *)
  | Extend  (** append 1-16 random bytes *)
  | Splice  (** copy a random range over another offset *)
  | Zero_run  (** zero a run of 1-32 bytes *)
  | Magic_tamper
      (** corrupt the 8-byte magic: a random header byte, or swap in the
          legacy [NCAP1] prefix *)
  | Tag_tamper  (** replace the backend tag byte (offset 8) *)

val all_ops : op list

val op_name : op -> string
(** Stable snake_case identifier, the per-operator bucket key in fuzz
    reports. *)

val pick : Zk_util.Rng.t -> op
(** Draw an operator uniformly. *)

val apply : Zk_util.Rng.t -> op -> bytes -> bytes
(** Apply one operator. The result is never equal to the input (a forced
    bit flip backs up any degenerate draw); the input is not modified.
    Requires a non-empty input. *)

val random : Zk_util.Rng.t -> bytes -> op * bytes
(** [pick] + [apply] in one step. *)
