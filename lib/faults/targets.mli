(** Fuzz targets for the in-tree proof backends.

    Each target fixes one statement (a small synthetic R1CS instance with a
    deterministic seed), proves it honestly once, and packages the proof
    bytes with a verification closure that replays the full untrusted
    pipeline: [proof_of_bytes] then [verify] against the regenerated
    statement. On top of the byte-level operators in {!Mutate}, every target
    carries typed structural mutators that decode the honest proof, corrupt
    one semantic field (a claimed evaluation, a round polynomial, a Merkle
    root or path, a query index), and re-serialize — corruptions a blind
    byte flipper is unlikely to synthesize, aimed at each check the verifier
    performs. *)

val orion : unit -> Fuzz.target
(** Spartan over the Orion PCS (the default backend). Structural mutators
    cover the Spartan layer (claimed evaluations, sumcheck round
    polynomials, repetition structure, sumcheck-1/2 transcript desync) and
    the Orion opening (commitment root, [u] combination, proximity rows,
    column indices, authentication paths). *)

val fri : unit -> Fuzz.target
(** Spartan over the FRI PCS. Structural mutators cover the same Spartan
    layer plus the FRI opening (layer roots, final constant, query
    positions and leaf values). *)

val all : unit -> Fuzz.target list
(** Both targets, Orion first. *)

val by_name : string -> Fuzz.target option
(** Look a target up by {!Fuzz.target.name} ("orion" or "fri"). *)
