(** The fault-injection harness: feed corrupted proofs to a verifier and
    assert it rejects every one of them with a structured error — never an
    exception, never an accept.

    A {!target} packages one backend's honest proof bytes, its
    bytes-to-verdict verification closure, and a list of named structural
    mutators (typed corruptions built by {!Targets}). The harness mutates at
    two layers: raw wire bytes through {!Mutate}, and decoded structure
    through the target's own mutators. Every mutant is guaranteed to differ
    from the honest bytes, and the decoders are injective (canonical field
    encodings, fixed framing, trailing-byte rejection), so a verdict of
    {!Accepted} is a soundness alarm and {!Raised} a robustness alarm —
    {!report} fails loudly on either.

    Sweeps are deterministic: (seed, mutant index) replays the exact mutant,
    and a pinned {!load_corpus_file} corpus replays historical crashers in
    [dune runtest]. *)

type target = {
  name : string;  (** backend label ("orion", "fri") *)
  honest : bytes;  (** a valid serialized proof for a fixed statement *)
  verify : bytes -> (unit, Zk_pcs.Verify_error.t) result;
      (** decode + full verification against the fixed statement *)
  structured : (string * (Zk_util.Rng.t -> bytes option)) list;
      (** named typed mutators: corrupt the decoded structure and
          re-serialize; [None] when inapplicable to this proof shape *)
}

type verdict =
  | Rejected of Zk_pcs.Verify_error.category  (** the only healthy outcome *)
  | Accepted  (** soundness alarm: a corrupted proof verified *)
  | Raised of string  (** robustness alarm: the verifier threw an exception *)

val run_bytes : target -> bytes -> verdict
(** Verify one blob, catching any exception into [Raised]. *)

type report = {
  target_name : string;
  byte_mutants : int;
  structured_mutants : int;
  rejected : int;
  accepted : int;  (** must be 0 *)
  raised : int;  (** must be 0 *)
  honest_ok : bool;  (** the unmutated proof still verifies *)
  by_category : (string * int) list;
      (** rejections bucketed by {!Zk_pcs.Verify_error.category_name}, in
          taxonomy order (all categories present, zero counts included) *)
  by_op : (string * int) list;
      (** byte-layer rejections bucketed by {!Mutate.op_name} *)
  alarms : string list;
      (** human description of each accepted/raised mutant, with the seed
          and index needed to replay it (capped at 20) *)
}

val clean : report -> bool
(** No accepts, no raises, honest proof verified. *)

val sweep : ?seed:int64 -> byte_mutants:int -> structured_rounds:int -> target -> report
(** Run [byte_mutants] random byte-level mutants plus [structured_rounds]
    passes over the target's structural mutators (one mutant per mutator
    per pass), all drawn from a single RNG stream seeded with [seed]
    (default 1). *)

val pp_report : Format.formatter -> report -> unit
(** Multi-line human summary (bucket table plus alarms). *)

val load_corpus_file : string -> bytes
(** Parse a corpus entry: lines of hex bytes, ['#'] comments and blank
    lines ignored, whitespace between hex pairs free-form.
    @raise Failure on a byte that is not two hex digits. *)

val replay_corpus : target -> dir:string -> (string * verdict) list
(** Run every [*.hex] file under [dir] (sorted) through the target. *)
