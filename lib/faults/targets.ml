module Gf = Zk_field.Gf
module Rng = Zk_util.Rng
module R1cs = Zk_r1cs.R1cs
module Synthetic = Zk_workloads.Synthetic
module Sumcheck = Zk_sumcheck.Sumcheck
module Spartan = Zk_spartan.Spartan
module O = Zk_orion.Orion
module Fp = Zk_orion.Fri_pcs
module Spartan_fri = Zk_spartan.Spartan.Make (Zk_orion.Fri_pcs)

(* All targets prove the same fixed statement; mutators must only ever see
   proofs whose honest form verifies against it. *)
let statement_seed = 7L
let prover_seed = 11L
let n_constraints = 200

let nudge rng x = Gf.add x (Gf.of_int (1 + Rng.int rng 1000))

let tamper_digest rng d =
  let b = Bytes.of_string d in
  let i = Rng.int rng (Bytes.length b) in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 + Rng.int rng 255)));
  Bytes.to_string b

module Build (S : Zk_spartan.Spartan.S) = struct
  (* Structural mutators start from a fresh decode of the honest bytes each
     draw, corrupt exactly one thing, and re-serialize; [reser] returns
     [Some] unconditionally so mutators read uniformly as [bytes option]. *)
  let target ~extra () =
    let inst, asn = Synthetic.circuit ~n_constraints ~seed:statement_seed () in
    let io = R1cs.public_io inst asn in
    let params = S.test_params in
    let proof, _stats = S.prove ~rng:(Rng.create prover_seed) params inst asn in
    let honest = S.proof_to_bytes proof in
    let verify data =
      Result.bind (S.proof_of_bytes data) (fun p -> S.verify params inst ~io p)
    in
    let decode () =
      match S.proof_of_bytes honest with
      | Ok p -> p
      | Error _ -> assert false (* honest bytes round-trip by construction *)
    in
    let reser p = Some (S.proof_to_bytes p) in
    let mut_rep name f =
      ( name,
        fun rng ->
          let p = decode () in
          let reps = Array.copy p.S.reps in
          if Array.length reps = 0 then None
          else begin
            let i = Rng.int rng (Array.length reps) in
            match f rng reps.(i) with
            | None -> None
            | Some rep ->
              reps.(i) <- rep;
              reser { p with S.reps = reps }
          end )
    in
    let perturb_poly rng (sc : Sumcheck.proof) =
      let rp = Array.map Array.copy sc.Sumcheck.round_polys in
      if Array.length rp = 0 then None
      else begin
        let i = Rng.int rng (Array.length rp) in
        if Array.length rp.(i) = 0 then None
        else begin
          let j = Rng.int rng (Array.length rp.(i)) in
          rp.(i).(j) <- nudge rng rp.(i).(j);
          Some { Sumcheck.round_polys = rp }
        end
      end
    in
    let generic =
      [
        mut_rep "nudge_va" (fun rng r -> Some { r with S.va = nudge rng r.S.va });
        mut_rep "nudge_vb" (fun rng r -> Some { r with S.vb = nudge rng r.S.vb });
        mut_rep "nudge_vc" (fun rng r -> Some { r with S.vc = nudge rng r.S.vc });
        mut_rep "nudge_vw" (fun rng r -> Some { r with S.vw = nudge rng r.S.vw });
        mut_rep "perturb_sc1_poly" (fun rng r ->
            Option.map (fun sc -> { r with S.sc1 = sc }) (perturb_poly rng r.S.sc1));
        mut_rep "perturb_sc2_poly" (fun rng r ->
            Option.map (fun sc -> { r with S.sc2 = sc }) (perturb_poly rng r.S.sc2));
        mut_rep "swap_sc1_rounds" (fun rng r ->
            let rp = Array.copy r.S.sc1.Sumcheck.round_polys in
            let n = Array.length rp in
            if n < 2 then None
            else begin
              let i = Rng.int rng n in
              let j = (i + 1 + Rng.int rng (n - 1)) mod n in
              if rp.(i) = rp.(j) then None
              else begin
                let t = rp.(i) in
                rp.(i) <- rp.(j);
                rp.(j) <- t;
                Some { r with S.sc1 = { Sumcheck.round_polys = rp } }
              end
            end);
        mut_rep "swap_sc1_sc2" (fun _rng r ->
            if r.S.sc1 = r.S.sc2 then None
            else Some { r with S.sc1 = r.S.sc2; sc2 = r.S.sc1 });
        mut_rep "drop_sc1_round" (fun _rng r ->
            let rp = r.S.sc1.Sumcheck.round_polys in
            let n = Array.length rp in
            if n = 0 then None
            else Some { r with S.sc1 = { Sumcheck.round_polys = Array.sub rp 0 (n - 1) } });
        ( "dup_rep",
          fun _rng ->
            let p = decode () in
            let reps = p.S.reps in
            if Array.length reps = 0 then None
            else reser { p with S.reps = Array.append reps [| reps.(0) |] } );
      ]
    in
    {
      Fuzz.name = S.P.name;
      honest;
      verify;
      structured = generic @ extra ~decode ~reser;
    }
end

(* --- Orion-specific structural corruption --- *)

let orion () =
  let module B = Build (Spartan) in
  B.target ()
    ~extra:(fun ~decode ~reser ->
      let with_commitment f rng =
        let p = decode () in
        match f rng p.Spartan.w_commitment with
        | None -> None
        | Some cm -> reser { p with Spartan.w_commitment = cm }
      in
      let with_open f rng =
        let p = decode () in
        let reps = Array.copy p.Spartan.reps in
        if Array.length reps = 0 then None
        else begin
          let r = reps.(0) in
          match f rng r.Spartan.w_open with
          | None -> None
          | Some wo ->
            reps.(0) <- { r with Spartan.w_open = wo };
            reser { p with Spartan.reps = reps }
        end
      in
      [
        ( "tamper_commit_root",
          with_commitment (fun rng cm ->
              Some { cm with O.root = tamper_digest rng cm.O.root }) );
        ( "bump_num_vars",
          with_commitment (fun _rng cm -> Some { cm with O.num_vars = cm.O.num_vars + 1 })
        );
        ( "edit_u",
          with_open (fun rng wo ->
              if Array.length wo.O.u = 0 then None
              else begin
                let u = Array.copy wo.O.u in
                let i = Rng.int rng (Array.length u) in
                u.(i) <- nudge rng u.(i);
                Some { wo with O.u = u }
              end) );
        ( "edit_proximity",
          with_open (fun rng wo ->
              if Array.length wo.O.proximity = 0 then None
              else begin
                let prox = Array.map Array.copy wo.O.proximity in
                let i = Rng.int rng (Array.length prox) in
                if Array.length prox.(i) = 0 then None
                else begin
                  let j = Rng.int rng (Array.length prox.(i)) in
                  prox.(i).(j) <- nudge rng prox.(i).(j);
                  Some { wo with O.proximity = prox }
                end
              end) );
        ( "tamper_column_index",
          with_open (fun rng wo ->
              if Array.length wo.O.columns = 0 then None
              else begin
                let cols = Array.copy wo.O.columns in
                let k = Rng.int rng (Array.length cols) in
                let j, col, path = cols.(k) in
                cols.(k) <- (j + 1, col, path);
                Some { wo with O.columns = cols }
              end) );
        ( "edit_column_value",
          with_open (fun rng wo ->
              if Array.length wo.O.columns = 0 then None
              else begin
                let cols = Array.copy wo.O.columns in
                let k = Rng.int rng (Array.length cols) in
                let j, col, path = cols.(k) in
                if Array.length col = 0 then None
                else begin
                  let col = Array.copy col in
                  let i = Rng.int rng (Array.length col) in
                  col.(i) <- nudge rng col.(i);
                  cols.(k) <- (j, col, path);
                  Some { wo with O.columns = cols }
                end
              end) );
        ( "tamper_column_path",
          with_open (fun rng wo ->
              if Array.length wo.O.columns = 0 then None
              else begin
                let cols = Array.copy wo.O.columns in
                let k = Rng.int rng (Array.length cols) in
                let j, col, path = cols.(k) in
                match path with
                | [] -> None
                | _ ->
                  let which = Rng.int rng (List.length path) in
                  let path =
                    List.mapi (fun i d -> if i = which then tamper_digest rng d else d) path
                  in
                  cols.(k) <- (j, col, path);
                  Some { wo with O.columns = cols }
              end) );
      ])

(* --- FRI-specific structural corruption --- *)

let fri () =
  let module B = Build (Spartan_fri) in
  B.target ()
    ~extra:(fun ~decode ~reser ->
      let with_commitment f rng =
        let p = decode () in
        match f rng p.Spartan_fri.w_commitment with
        | None -> None
        | Some cm -> reser { p with Spartan_fri.w_commitment = cm }
      in
      let with_open f rng =
        let p = decode () in
        let reps = Array.copy p.Spartan_fri.reps in
        if Array.length reps = 0 then None
        else begin
          let r = reps.(0) in
          match f rng r.Spartan_fri.w_open with
          | None -> None
          | Some wo ->
            reps.(0) <- { r with Spartan_fri.w_open = wo };
            reser { p with Spartan_fri.reps = reps }
        end
      in
      [
        ( "tamper_commit_root",
          with_commitment (fun rng cm ->
              Some { cm with Fp.root = tamper_digest rng cm.Fp.root }) );
        ( "bump_num_vars",
          with_commitment (fun _rng cm ->
              Some { cm with Fp.num_vars = cm.Fp.num_vars + 1 }) );
        ( "tamper_layer_root",
          with_open (fun rng wo ->
              if Array.length wo.Fp.layer_roots = 0 then None
              else begin
                let roots = Array.copy wo.Fp.layer_roots in
                let k = Rng.int rng (Array.length roots) in
                roots.(k) <- tamper_digest rng roots.(k);
                Some { wo with Fp.layer_roots = roots }
              end) );
        ( "nudge_final_constant",
          with_open (fun rng wo ->
              Some { wo with Fp.final_constant = nudge rng wo.Fp.final_constant }) );
        ( "perturb_fri_round_poly",
          with_open (fun rng wo ->
              if Array.length wo.Fp.round_polys = 0 then None
              else begin
                let rp = Array.map Array.copy wo.Fp.round_polys in
                let i = Rng.int rng (Array.length rp) in
                if Array.length rp.(i) = 0 then None
                else begin
                  let j = Rng.int rng (Array.length rp.(i)) in
                  rp.(i).(j) <- nudge rng rp.(i).(j);
                  Some { wo with Fp.round_polys = rp }
                end
              end) );
        ( "tamper_query_pos",
          with_open (fun rng wo ->
              if Array.length wo.Fp.queries = 0 then None
              else begin
                let qs = Array.copy wo.Fp.queries in
                let k = Rng.int rng (Array.length qs) in
                let pos, entries = qs.(k) in
                qs.(k) <- (pos lxor 1, entries);
                Some { wo with Fp.queries = qs }
              end) );
        ( "nudge_query_leaf",
          with_open (fun rng wo ->
              if Array.length wo.Fp.queries = 0 then None
              else begin
                let qs = Array.copy wo.Fp.queries in
                let k = Rng.int rng (Array.length qs) in
                let pos, entries = qs.(k) in
                if Array.length entries = 0 then None
                else begin
                  let entries = Array.copy entries in
                  let i = Rng.int rng (Array.length entries) in
                  let e0, e1, path = entries.(i) in
                  let e0, e1 =
                    if Rng.bool rng then (nudge rng e0, e1) else (e0, nudge rng e1)
                  in
                  entries.(i) <- (e0, e1, path);
                  qs.(k) <- (pos, entries);
                  Some { wo with Fp.queries = qs }
                end
              end) );
        ( "tamper_query_path",
          with_open (fun rng wo ->
              if Array.length wo.Fp.queries = 0 then None
              else begin
                let qs = Array.copy wo.Fp.queries in
                let k = Rng.int rng (Array.length qs) in
                let pos, entries = qs.(k) in
                if Array.length entries = 0 then None
                else begin
                  let entries = Array.copy entries in
                  let i = Rng.int rng (Array.length entries) in
                  let e0, e1, path = entries.(i) in
                  match path with
                  | [] -> None
                  | _ ->
                    let which = Rng.int rng (List.length path) in
                    let path =
                      List.mapi
                        (fun n d -> if n = which then tamper_digest rng d else d)
                        path
                    in
                    entries.(i) <- (e0, e1, path);
                    qs.(k) <- (pos, entries);
                    Some { wo with Fp.queries = qs }
                end
              end) );
      ])

let all () = [ orion (); fri () ]

let by_name name =
  match name with
  | "orion" -> Some (orion ())
  | "fri" -> Some (fri ())
  | _ -> None
