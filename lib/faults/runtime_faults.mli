(** Runtime fault injection for the proving service.

    Complements the {!Mutate}/{!Fuzz} proof-byte harness (which attacks
    the verifier) by attacking the {e service runtime}: injected worker
    crashes, spill I/O failures ([EIO]/[ENOSPC]), artificially slow jobs
    that blow their deadlines, and malformed tenant requests. Fault
    selection is a pure function of the plan and the job id, so runs are
    reproducible and the bench can assert which counters must be
    nonzero. *)

exception Injected_crash of int
(** Raised by the hook inside a designated job's attempt; payload is the
    job id. Classified by the service as a retryable [Worker_crash]. *)

type plan = {
  crash_every : int;  (** crash every k-th job id (0 = never) *)
  io_fail_every : int;  (** fail a spill transfer on every k-th job id *)
  slow_every : int;  (** sleep at attempt start on every k-th job id *)
  slow_s : float;  (** how long slow jobs sleep *)
  first_attempt_only : bool;
      (** inject only on attempt 1, so retried jobs then succeed —
          exercising the recover path rather than retry exhaustion *)
}

val none : plan
val default : plan
(** crash every 5th, I/O-fail every 7th, slow every 11th (offset phases),
    250ms sleep, first attempt only. *)

val crashes : plan -> job_id:int -> bool
val io_fails : plan -> job_id:int -> bool
val slows : plan -> job_id:int -> bool
(** Predicates the bench uses to predict which jobs were faulted. *)

val hook : plan -> Nocap_serve.Serve.fault_hook
(** The hook to pass to {!Nocap_serve.Serve.create}. Installs the global
    {!Nocap_vec.Spill} I/O fault hook on first use; I/O faults are armed
    per runner domain and cleared at every attempt start, so they cannot
    leak across jobs. *)

val disarm_io_faults : unit -> unit
(** Remove the global spill I/O hook (for test isolation). *)

val malformed_request : int -> Nocap_serve.Serve.request
(** Deterministic malformed tenant inputs (unknown workload, zero scale,
    absurd scale), cycling by index — all must be rejected at admission
    with [Invalid_input]. *)
