module Rng = Zk_util.Rng

type op =
  | Bit_flip
  | Byte_set
  | Truncate
  | Extend
  | Splice
  | Zero_run
  | Magic_tamper
  | Tag_tamper

let all_ops =
  [ Bit_flip; Byte_set; Truncate; Extend; Splice; Zero_run; Magic_tamper; Tag_tamper ]

let op_name = function
  | Bit_flip -> "bit_flip"
  | Byte_set -> "byte_set"
  | Truncate -> "truncate"
  | Extend -> "extend"
  | Splice -> "splice"
  | Zero_run -> "zero_run"
  | Magic_tamper -> "magic_tamper"
  | Tag_tamper -> "tag_tamper"

let pick rng = List.nth all_ops (Rng.int rng (List.length all_ops))

let flip_bit rng b =
  let i = Rng.int rng (Bytes.length b) in
  let bit = Rng.int rng 8 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
  b

let apply rng op data =
  if Bytes.length data = 0 then invalid_arg "Mutate.apply: empty input";
  let n = Bytes.length data in
  let out =
    match op with
    | Bit_flip -> flip_bit rng (Bytes.copy data)
    | Byte_set ->
      let b = Bytes.copy data in
      let i = Rng.int rng n in
      Bytes.set b i (Char.chr (Rng.int rng 256));
      b
    | Truncate -> Bytes.sub data 0 (Rng.int rng n)
    | Extend ->
      let extra = 1 + Rng.int rng 16 in
      let b = Bytes.create (n + extra) in
      Bytes.blit data 0 b 0 n;
      for i = n to n + extra - 1 do
        Bytes.set b i (Char.chr (Rng.int rng 256))
      done;
      b
    | Splice ->
      let b = Bytes.copy data in
      let len = 1 + Rng.int rng (min 32 n) in
      let src = Rng.int rng (n - len + 1) in
      let dst = Rng.int rng (n - len + 1) in
      Bytes.blit data src b dst len;
      b
    | Zero_run ->
      let b = Bytes.copy data in
      let len = 1 + Rng.int rng (min 32 n) in
      let pos = Rng.int rng (n - len + 1) in
      Bytes.fill b pos len '\000';
      b
    | Magic_tamper ->
      let b = Bytes.copy data in
      if Rng.bool rng && n >= 5 then Bytes.blit_string "NCAP1" 0 b 0 5
      else begin
        let i = Rng.int rng (min 8 n) in
        Bytes.set b i (Char.chr (Rng.int rng 256))
      end;
      b
    | Tag_tamper ->
      let b = Bytes.copy data in
      let i = min 8 (n - 1) in
      Bytes.set b i (Char.chr (Rng.int rng 256));
      b
  in
  (* The contract "mutant differs from the input" is what turns an [Ok]
     verdict into a soundness alarm; force it when a draw was a no-op. *)
  if Bytes.equal out data then
    if Bytes.length out = 0 then Bytes.of_string "\x00" else flip_bit rng out
  else out

let random rng data =
  let op = pick rng in
  (op, apply rng op data)
