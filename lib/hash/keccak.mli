(** SHA3-256 (FIPS 202) built on the Keccak-f[1600] permutation, implemented
    from scratch. This is the hash the paper's Hash FU implements at 1 KB/cycle
    (Sec. IV-B); every Merkle-tree node and Fiat-Shamir challenge in
    Spartan+Orion goes through it. *)

type digest = string
(** 32 bytes. *)

val digest_length : int
(** [32]. *)

val keccak_f1600 : int64 array -> unit
(** Apply the Keccak-f[1600] permutation in place to a 25-lane state.
    @raise Invalid_argument if the state is not 25 lanes. *)

val sha3_256 : bytes -> digest
(** SHA3-256 of arbitrary input. *)

val sha3_256_string : string -> digest

val hash2 : digest -> digest -> digest
(** The paper's Hash-FU compression: SHA3-256 of the concatenation of two
    256-bit values. Used for Merkle-tree interior nodes. *)

val hash_gf : Zk_field.Gf.t array -> digest
(** Hash a vector of field elements, each packed as 8 little-endian bytes
    (the Hash FU reinterprets groups of four 64-bit lanes as 256-bit
    inputs). *)

val hash_fv : Nocap_vec.Fv.t -> digest
(** {!hash_gf} over an unboxed flat vector; the digest equals
    [hash_gf (Fv.to_array v)]. Elements are absorbed lane-aligned straight
    from the Bigarray, with no intermediate byte buffer. *)

val hash_matrix_cols : rows:int -> cols:int -> Nocap_vec.Fv.t -> digest array
(** [hash_matrix_cols ~rows ~cols flat] hashes each column of the row-major
    [rows * cols] flat matrix — [hash_gf] of the gathered column, without
    gathering it. Columns split across the {!Nocap_parallel.Pool} domains;
    digests are byte-identical for every domain count.
    @raise Invalid_argument if [Fv.length flat <> rows * cols]. *)

val sha3_256_batch : bytes array -> digest array
(** Hash a batch of independent messages, split across the
    {!Nocap_parallel.Pool} domains. Digests are byte-identical to mapping
    {!sha3_256} for every domain count. *)

val hash2_pairs : digest array -> digest array
(** [hash2_pairs level] compresses adjacent pairs:
    [[| hash2 level.(0) level.(1); hash2 level.(2) level.(3); ... |]] —
    one Merkle level in a single batched call.
    @raise Invalid_argument on an empty or odd-length array. *)

val hash_gf_batch : Zk_field.Gf.t array array -> digest array
(** Batched {!hash_gf} over independent columns. *)

val to_hex : digest -> string

val digest_to_gf : digest -> Zk_field.Gf.t array
(** Interpret a digest as four field elements (each 8 LE bytes reduced
    mod p), matching how NoCap stores digests in vector lanes. *)
