(** SHA3-256 (FIPS 202) built on the Keccak-f[1600] permutation, implemented
    from scratch. This is the hash the paper's Hash FU implements at 1 KB/cycle
    (Sec. IV-B); every Merkle-tree node and Fiat-Shamir challenge in
    Spartan+Orion goes through it. *)

type digest = string
(** 32 bytes. *)

val digest_length : int
(** [32]. *)

val keccak_f1600 : int64 array -> unit
(** Apply the Keccak-f[1600] permutation in place to a 25-lane state.
    @raise Invalid_argument if the state is not 25 lanes. *)

val sha3_256 : bytes -> digest
(** SHA3-256 of arbitrary input. *)

val sha3_256_string : string -> digest

val hash2 : digest -> digest -> digest
(** The paper's Hash-FU compression: SHA3-256 of the concatenation of two
    256-bit values. Used for Merkle-tree interior nodes. *)

val hash_gf : Zk_field.Gf.t array -> digest
(** Hash a vector of field elements, each packed as 8 little-endian bytes
    (the Hash FU reinterprets groups of four 64-bit lanes as 256-bit
    inputs). *)

val hash_fv : Nocap_vec.Fv.t -> digest
(** {!hash_gf} over an unboxed flat vector; the digest equals
    [hash_gf (Fv.to_array v)]. Elements are absorbed lane-aligned straight
    from the Bigarray, with no intermediate byte buffer. *)

val hash_matrix_cols : rows:int -> cols:int -> Nocap_vec.Fv.t -> digest array
(** [hash_matrix_cols ~rows ~cols flat] hashes each column of the row-major
    [rows * cols] flat matrix — [hash_gf] of the gathered column, without
    gathering it. Columns split across the {!Nocap_parallel.Pool} domains;
    digests are byte-identical for every domain count.
    @raise Invalid_argument if [Fv.length flat <> rows * cols]. *)

val sha3_256_batch : bytes array -> digest array
(** Hash a batch of independent messages, split across the
    {!Nocap_parallel.Pool} domains. Digests are byte-identical to mapping
    {!sha3_256} for every domain count. *)

val hash2_pairs : digest array -> digest array
(** [hash2_pairs level] compresses adjacent pairs:
    [[| hash2 level.(0) level.(1); hash2 level.(2) level.(3); ... |]] —
    one Merkle level in a single batched call.
    @raise Invalid_argument on an empty or odd-length array. *)

val hash_gf_batch : Zk_field.Gf.t array array -> digest array
(** Batched {!hash_gf} over independent columns. *)

val rate_lanes : int
(** [17] — 64-bit lanes absorbed per SHA3-256 block. Row-block producers
    (the Orion commit pipeline) size their blocks in multiples of this so
    every {!Col_hash.absorb} call ends on a permutation boundary. *)

val block_ns : unit -> int
(** Calibrated cost of one Keccak-f[1600] permutation in this build
    (nanoseconds) — mode-dependent (the C permutation is ~4x cheaper than
    the OCaml one); the cost every batched entry point feeds
    {!Nocap_parallel.Pool.grain_of_ns}. *)

val batch_grain : msg_bytes:int -> int
(** Pool grain used by {!sha3_256_batch} for messages of the given length. *)

(** A bank of independent per-column sponges for hashing a row-major matrix
    incrementally: absorb row-blocks as they are produced, finalize once at
    the end. Digests are byte-identical to {!hash_matrix_cols} on the full
    matrix. Disjoint column ranges may be driven from different domains
    concurrently; rows must arrive in order within each column. *)
module Col_hash : sig
  type t

  val create : int -> t
  (** [create cols] — all sponges start empty. *)

  val absorb :
    t -> Nocap_vec.Fv.t -> row_stride:int -> r_lo:int -> r_hi:int -> c_lo:int -> c_hi:int -> unit
  (** Absorb element [(r, j)] = [flat.(r * row_stride + j)] for every row
      [r] in [\[r_lo, r_hi)] and column [j] in [\[c_lo, c_hi)]. *)

  val finalize : t -> total_rows:int -> c_lo:int -> c_hi:int -> digest array -> unit
  (** Pad, permute and squeeze columns [\[c_lo, c_hi)] into [out.(j)]. *)
end

val to_hex : digest -> string

val digest_to_gf : digest -> Zk_field.Gf.t array
(** Interpret a digest as four field elements (each 8 LE bytes reduced
    mod p), matching how NoCap stores digests in vector lanes. *)
