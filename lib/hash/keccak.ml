module Pool = Nocap_parallel.Pool

type digest = string

let digest_length = 32

let round_constants =
  [|
    0x0000000000000001L; 0x0000000000008082L; 0x800000000000808AL;
    0x8000000080008000L; 0x000000000000808BL; 0x0000000080000001L;
    0x8000000080008081L; 0x8000000000008009L; 0x000000000000008AL;
    0x0000000000000088L; 0x0000000080008009L; 0x000000008000000AL;
    0x000000008000808BL; 0x800000000000008BL; 0x8000000000008089L;
    0x8000000000008003L; 0x8000000000008002L; 0x8000000000000080L;
    0x000000000000800AL; 0x800000008000000AL; 0x8000000080008081L;
    0x8000000000008080L; 0x0000000080000001L; 0x8000000080008008L;
  |]

(* rho rotation offsets, indexed x + 5*y. *)
let rotations =
  [|
    0; 1; 62; 28; 27;
    36; 44; 6; 55; 20;
    3; 10; 43; 25; 39;
    41; 45; 15; 21; 8;
    18; 2; 61; 56; 14;
  |]

let[@inline] rotl64 x n =
  if n = 0 then x
  else Int64.logor (Int64.shift_left x n) (Int64.shift_right_logical x (64 - n))

(* The inner rounds use unsafe accesses: every index is x + 5*y (or a
   rho/pi permutation of one) with x, y in [0, 4] from the loop headers and
   the 25-lane length checked once on entry, so all indices lie in
   [0, 24]. *)
let keccak_f1600 st =
  if Array.length st <> 25 then invalid_arg "Keccak.keccak_f1600: need 25 lanes";
  let c = Array.make 5 0L in
  let b = Array.make 25 0L in
  for round = 0 to 23 do
    (* theta *)
    for x = 0 to 4 do
      Array.unsafe_set c x
        (Int64.logxor (Array.unsafe_get st x)
           (Int64.logxor
              (Array.unsafe_get st (x + 5))
              (Int64.logxor
                 (Array.unsafe_get st (x + 10))
                 (Int64.logxor (Array.unsafe_get st (x + 15)) (Array.unsafe_get st (x + 20))))))
    done;
    for x = 0 to 4 do
      let d =
        Int64.logxor
          (Array.unsafe_get c ((x + 4) mod 5))
          (rotl64 (Array.unsafe_get c ((x + 1) mod 5)) 1)
      in
      for y = 0 to 4 do
        Array.unsafe_set st (x + (5 * y)) (Int64.logxor (Array.unsafe_get st (x + (5 * y))) d)
      done
    done;
    (* rho + pi *)
    for x = 0 to 4 do
      for y = 0 to 4 do
        let src = x + (5 * y) in
        let dst = y + (5 * (((2 * x) + (3 * y)) mod 5)) in
        Array.unsafe_set b dst (rotl64 (Array.unsafe_get st src) (Array.unsafe_get rotations src))
      done
    done;
    (* chi *)
    for y = 0 to 4 do
      for x = 0 to 4 do
        Array.unsafe_set st (x + (5 * y))
          (Int64.logxor
             (Array.unsafe_get b (x + (5 * y)))
             (Int64.logand
                (Int64.lognot (Array.unsafe_get b (((x + 1) mod 5) + (5 * y))))
                (Array.unsafe_get b (((x + 2) mod 5) + (5 * y)))))
      done
    done;
    (* iota *)
    Array.unsafe_set st 0 (Int64.logxor (Array.unsafe_get st 0) (Array.unsafe_get round_constants round))
  done

let rate_bytes = 136 (* SHA3-256: capacity 512 bits *)

let absorb_block st (block : bytes) off len =
  (* XOR [len] bytes (len <= rate) into the state, little-endian lanes. *)
  for i = 0 to len - 1 do
    let lane = i / 8 and shift = 8 * (i mod 8) in
    let byte = Int64.of_int (Char.code (Bytes.get block (off + i))) in
    st.(lane) <- Int64.logxor st.(lane) (Int64.shift_left byte shift)
  done

let sha3_256 (msg : bytes) : digest =
  let st = Array.make 25 0L in
  let len = Bytes.length msg in
  (* Full-rate blocks. *)
  let off = ref 0 in
  while len - !off >= rate_bytes do
    absorb_block st msg !off rate_bytes;
    keccak_f1600 st;
    off := !off + rate_bytes
  done;
  (* Final partial block with SHA3 domain padding 0x06 .. 0x80. *)
  let rem = len - !off in
  absorb_block st msg !off rem;
  let pad_first = rem in
  let xor_byte pos v =
    let lane = pos / 8 and shift = 8 * (pos mod 8) in
    st.(lane) <- Int64.logxor st.(lane) (Int64.shift_left (Int64.of_int v) shift)
  in
  xor_byte pad_first 0x06;
  xor_byte (rate_bytes - 1) 0x80;
  keccak_f1600 st;
  (* Squeeze 32 bytes. *)
  let out = Bytes.create digest_length in
  for i = 0 to digest_length - 1 do
    let lane = i / 8 and shift = 8 * (i mod 8) in
    Bytes.set out i
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical st.(lane) shift) 0xFFL)))
  done;
  Bytes.unsafe_to_string out

let sha3_256_string s = sha3_256 (Bytes.of_string s)

let hash2 a b =
  if String.length a <> digest_length || String.length b <> digest_length then
    invalid_arg "Keccak.hash2: digests must be 32 bytes";
  sha3_256_string (a ^ b)

let hash_gf elems =
  let n = Array.length elems in
  let buf = Bytes.create (8 * n) in
  for i = 0 to n - 1 do
    Bytes.set_int64_le buf (8 * i) (Zk_field.Gf.to_int64 elems.(i))
  done;
  sha3_256 buf

(* Batched absorption: each input is absorbed by an independent sponge, so
   the batch splits across pool domains with byte-identical digests for any
   domain count. These are the entry points the Merkle / Orion hot paths
   use; the Hash FU analogue is hashing one column per vector lane. *)

let sha3_256_batch msgs = Pool.parallel_map ~threshold:8 sha3_256 msgs

let hash2_pairs level =
  let n = Array.length level in
  if n = 0 || n land 1 = 1 then invalid_arg "Keccak.hash2_pairs: need an even, non-empty level";
  Pool.parallel_init ~threshold:32 (n / 2) (fun i -> hash2 level.(2 * i) level.((2 * i) + 1))

let hash_gf_batch cols = Pool.parallel_map ~threshold:8 hash_gf cols

let to_hex d =
  let buf = Buffer.create 64 in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents buf

let digest_to_gf d =
  Array.init 4 (fun i -> Zk_field.Gf.of_int64 (String.get_int64_le d (8 * i)))
