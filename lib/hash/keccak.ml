module Pool = Nocap_parallel.Pool
module Fv = Nocap_vec.Fv
module Gf = Zk_field.Gf
module Native = Nocap_native.Native

type digest = string

let digest_length = 32

let round_constants =
  [|
    0x0000000000000001L; 0x0000000000008082L; 0x800000000000808AL;
    0x8000000080008000L; 0x000000000000808BL; 0x0000000080000001L;
    0x8000000080008081L; 0x8000000000008009L; 0x000000000000008AL;
    0x0000000000000088L; 0x0000000080008009L; 0x000000008000000AL;
    0x000000008000808BL; 0x800000000000008BL; 0x8000000000008089L;
    0x8000000000008003L; 0x8000000000008002L; 0x8000000000000080L;
    0x000000000000800AL; 0x800000008000000AL; 0x8000000080008081L;
    0x8000000000008080L; 0x0000000080000001L; 0x8000000080008008L;
  |]

(* rho rotation offsets, indexed x + 5*y. *)
let rotations =
  [|
    0; 1; 62; 28; 27;
    36; 44; 6; 55; 20;
    3; 10; 43; 25; 39;
    41; 45; 15; 21; 8;
    18; 2; 61; 56; 14;
  |]

let[@inline] rotl64 x n =
  if n = 0 then x
  else Int64.logor (Int64.shift_left x n) (Int64.shift_right_logical x (64 - n))

(* The inner rounds use unsafe accesses: every index is x + 5*y (or a
   rho/pi permutation of one) with x, y in [0, 4] from the loop headers and
   the 25-lane length checked once on entry, so all indices lie in
   [0, 24]. *)
let keccak_f1600 st =
  if Array.length st <> 25 then invalid_arg "Keccak.keccak_f1600: need 25 lanes";
  let c = Array.make 5 0L in
  let b = Array.make 25 0L in
  for round = 0 to 23 do
    (* theta *)
    for x = 0 to 4 do
      Array.unsafe_set c x
        (Int64.logxor (Array.unsafe_get st x)
           (Int64.logxor
              (Array.unsafe_get st (x + 5))
              (Int64.logxor
                 (Array.unsafe_get st (x + 10))
                 (Int64.logxor (Array.unsafe_get st (x + 15)) (Array.unsafe_get st (x + 20))))))
    done;
    for x = 0 to 4 do
      let d =
        Int64.logxor
          (Array.unsafe_get c ((x + 4) mod 5))
          (rotl64 (Array.unsafe_get c ((x + 1) mod 5)) 1)
      in
      for y = 0 to 4 do
        Array.unsafe_set st (x + (5 * y)) (Int64.logxor (Array.unsafe_get st (x + (5 * y))) d)
      done
    done;
    (* rho + pi *)
    for x = 0 to 4 do
      for y = 0 to 4 do
        let src = x + (5 * y) in
        let dst = y + (5 * (((2 * x) + (3 * y)) mod 5)) in
        Array.unsafe_set b dst (rotl64 (Array.unsafe_get st src) (Array.unsafe_get rotations src))
      done
    done;
    (* chi *)
    for y = 0 to 4 do
      for x = 0 to 4 do
        Array.unsafe_set st (x + (5 * y))
          (Int64.logxor
             (Array.unsafe_get b (x + (5 * y)))
             (Int64.logand
                (Int64.lognot (Array.unsafe_get b (((x + 1) mod 5) + (5 * y))))
                (Array.unsafe_get b (((x + 2) mod 5) + (5 * y)))))
      done
    done;
    (* iota *)
    Array.unsafe_set st 0 (Int64.logxor (Array.unsafe_get st 0) (Array.unsafe_get round_constants round))
  done

let rate_bytes = 136 (* SHA3-256: capacity 512 bits *)
let rate_lanes = 17 (* 136 / 8 *)

(* --- unboxed sponge ----------------------------------------------------- *)

(* The production sponge keeps its 25-lane state plus the theta/chi scratch
   in Bigarray-backed vectors: [int64 array] lanes are boxed, so the array
   permutation above (kept exported as the correctness oracle) allocates a
   box per lane write, while this one runs on flat int64 with no heap
   traffic. One scratch record lives per domain, so batched hashing splits
   across the pool without sharing. *)

type scratch = { st : Fv.t; b : Fv.t; c : Fv.t }

let scratch_key : scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { st = Fv.create 25; b = Fv.create 25; c = Fv.create 5 })

(* Permute the 25 lanes at [st.(off .. off + 24)]. The offset form lets
   {!Col_hash} keep one sponge state per matrix column in a single flat
   bank and permute them in place. Under the native layer the C permutation
   runs instead (bit-identical; [b]/[c] scratch is unused there). *)
let f1600_off_ocaml st off b c =
  for round = 0 to 23 do
    (* theta *)
    for x = 0 to 4 do
      Fv.unsafe_set c x
        (Int64.logxor (Fv.unsafe_get st (off + x))
           (Int64.logxor
              (Fv.unsafe_get st (off + x + 5))
              (Int64.logxor
                 (Fv.unsafe_get st (off + x + 10))
                 (Int64.logxor
                    (Fv.unsafe_get st (off + x + 15))
                    (Fv.unsafe_get st (off + x + 20))))))
    done;
    for x = 0 to 4 do
      let d =
        Int64.logxor
          (Fv.unsafe_get c ((x + 4) mod 5))
          (rotl64 (Fv.unsafe_get c ((x + 1) mod 5)) 1)
      in
      for y = 0 to 4 do
        Fv.unsafe_set st (off + x + (5 * y))
          (Int64.logxor (Fv.unsafe_get st (off + x + (5 * y))) d)
      done
    done;
    (* rho + pi *)
    for x = 0 to 4 do
      for y = 0 to 4 do
        let src = x + (5 * y) in
        let dst = y + (5 * (((2 * x) + (3 * y)) mod 5)) in
        Fv.unsafe_set b dst (rotl64 (Fv.unsafe_get st (off + src)) (Array.unsafe_get rotations src))
      done
    done;
    (* chi *)
    for y = 0 to 4 do
      for x = 0 to 4 do
        Fv.unsafe_set st (off + x + (5 * y))
          (Int64.logxor
             (Fv.unsafe_get b (x + (5 * y)))
             (Int64.logand
                (Int64.lognot (Fv.unsafe_get b (((x + 1) mod 5) + (5 * y))))
                (Fv.unsafe_get b (((x + 2) mod 5) + (5 * y)))))
      done
    done;
    (* iota *)
    Fv.unsafe_set st off (Int64.logxor (Fv.unsafe_get st off) (Array.unsafe_get round_constants round))
  done

let f1600_off st off b c =
  if Native.on () then Native.f1600_off st off else f1600_off_ocaml st off b c

let f1600 { st; b; c } = f1600_off st 0 b c

let[@inline] xor_lane st lane v = Fv.unsafe_set st lane (Int64.logxor (Fv.unsafe_get st lane) v)

(* Full-rate absorption reads whole little-endian lanes straight out of the
   source buffer — no per-byte loop, no division per byte, no staging copy. *)
let absorb_full_block st (msg : bytes) off =
  for lane = 0 to rate_lanes - 1 do
    xor_lane st lane (Bytes.get_int64_le msg (off + (8 * lane)))
  done

(* Absorb the final [rem < rate_bytes] message bytes plus the SHA3 domain
   padding byte 0x06 (which lands at byte offset [rem] of the block). The
   caller XORs the closing 0x80 into the last rate byte. *)
let absorb_tail_padded st (msg : bytes) off rem =
  let full = rem / 8 in
  for lane = 0 to full - 1 do
    xor_lane st lane (Bytes.get_int64_le msg (off + (8 * lane)))
  done;
  let tail = ref 0L in
  for i = rem - 1 downto 8 * full do
    tail := Int64.logor (Int64.shift_left !tail 8) (Int64.of_int (Char.code (Bytes.get msg (off + i))))
  done;
  xor_lane st full (Int64.logor !tail (Int64.shift_left 0x06L (8 * (rem land 7))))

let trailing_pad = Int64.shift_left 0x80L 56 (* byte 135 = lane 16, top byte *)

let squeeze_32_off st off =
  let out = Bytes.create digest_length in
  for lane = 0 to 3 do
    Bytes.set_int64_le out (8 * lane) (Fv.unsafe_get st (off + lane))
  done;
  Bytes.unsafe_to_string out

let squeeze_32 st = squeeze_32_off st 0

let sha3_256_ocaml (msg : bytes) : digest =
  let s = Domain.DLS.get scratch_key in
  let st = s.st in
  Fv.zero st;
  let len = Bytes.length msg in
  let off = ref 0 in
  while len - !off >= rate_bytes do
    absorb_full_block st msg !off;
    f1600 s;
    off := !off + rate_bytes
  done;
  absorb_tail_padded st msg !off (len - !off);
  xor_lane st 16 trailing_pad;
  f1600 s;
  squeeze_32 st

(* The whole-message native sponge skips the per-block OCaml absorb loop,
   not just the permutation. *)
let sha3_256 (msg : bytes) : digest =
  if Native.on () then begin
    let out = Bytes.create digest_length in
    Native.sha3 msg out;
    Bytes.unsafe_to_string out
  end
  else sha3_256_ocaml msg

let sha3_256_string s = sha3_256 (Bytes.unsafe_of_string s)

(* Two 32-byte digests fill exactly lanes 0-7, so the Merkle compression
   absorbs both operands in place of the old [a ^ b] concatenation buffer:
   one permutation, zero intermediate allocation. *)
let hash2_ocaml a b =
  let s = Domain.DLS.get scratch_key in
  let st = s.st in
  Fv.zero st;
  for lane = 0 to 3 do
    xor_lane st lane (String.get_int64_le a (8 * lane));
    xor_lane st (4 + lane) (String.get_int64_le b (8 * lane))
  done;
  xor_lane st 8 0x06L (* pad at byte 64 *);
  xor_lane st 16 trailing_pad;
  f1600 s;
  squeeze_32 st

let hash2 a b =
  if String.length a <> digest_length || String.length b <> digest_length then
    invalid_arg "Keccak.hash2: digests must be 32 bytes";
  if Native.on () then begin
    let out = Bytes.create digest_length in
    Native.hash2 a b out;
    Bytes.unsafe_to_string out
  end
  else hash2_ocaml a b

(* Field elements are 8 LE bytes, so element k of a message lands exactly in
   lane [k mod rate_lanes]: both Gf-hash entry points absorb elements as
   lanes directly, skipping the intermediate byte buffer the old
   implementation built. *)

let finish_gf_block s m =
  let st = s.st in
  xor_lane st m 0x06L (* pad at byte 8*m; m < rate_lanes *);
  xor_lane st 16 trailing_pad;
  f1600 s;
  squeeze_32 st

let rec hash_gf (elems : Gf.t array) =
  if Native.on () then begin
    let out = Bytes.create digest_length in
    Native.hash_gf elems out;
    Bytes.unsafe_to_string out
  end
  else hash_gf_ocaml elems

and hash_gf_ocaml (elems : Gf.t array) =
  let s = Domain.DLS.get scratch_key in
  let st = s.st in
  Fv.zero st;
  let n = Array.length elems in
  let off = ref 0 in
  while n - !off >= rate_lanes do
    for k = 0 to rate_lanes - 1 do
      xor_lane st k (Gf.to_int64 (Array.unsafe_get elems (!off + k)))
    done;
    f1600 s;
    off := !off + rate_lanes
  done;
  let m = n - !off in
  for k = 0 to m - 1 do
    xor_lane st k (Gf.to_int64 (Array.unsafe_get elems (!off + k)))
  done;
  finish_gf_block s m

(* Strided flat-vector variant: element i of the message is
   [v.(pos + i*stride)]. stride = 1 hashes a contiguous vector; stride =
   n_cols hashes one column of a row-major matrix without gathering it. *)
let rec hash_fv_stride (v : Fv.t) ~pos ~stride ~count =
  if count < 0 || pos < 0 || stride < 1
     || (count > 0 && pos + ((count - 1) * stride) >= Fv.length v)
  then invalid_arg "Keccak.hash_fv_stride";
  if Native.on () then begin
    let out = Bytes.create digest_length in
    Native.hash_fv_stride v pos stride count out;
    Bytes.unsafe_to_string out
  end
  else hash_fv_stride_ocaml v ~pos ~stride ~count

and hash_fv_stride_ocaml (v : Fv.t) ~pos ~stride ~count =
  let s = Domain.DLS.get scratch_key in
  let st = s.st in
  Fv.zero st;
  let off = ref 0 in
  while count - !off >= rate_lanes do
    let base = pos + (!off * stride) in
    for k = 0 to rate_lanes - 1 do
      xor_lane st k (Fv.unsafe_get v (base + (k * stride)))
    done;
    f1600 s;
    off := !off + rate_lanes
  done;
  let m = count - !off in
  let base = pos + (!off * stride) in
  for k = 0 to m - 1 do
    xor_lane st k (Fv.unsafe_get v (base + (k * stride)))
  done;
  finish_gf_block s m

let hash_fv v = hash_fv_stride v ~pos:0 ~stride:1 ~count:(Fv.length v)

(* --- grain calibration --------------------------------------------------- *)

(* One f1600 permutation costs ~1.5µs in the pure-OCaml build and ~350ns in
   the C kernel (measured once; see DESIGN.md Sec. 12/13), so the chunk
   cost is mode-dependent. Every batched entry point below derives its pool
   grain from a per-item permutation count, so a claimed chunk amortizes
   ~50µs of hashing regardless of message shape. *)
let block_ns () = if Native.on () then 350 else 1_500

(* A message of [msg_bytes] runs ceil-ish (len / 136) + 1 permutations. *)
let batch_grain ~msg_bytes = Pool.grain_of_ns (((msg_bytes / rate_bytes) + 1) * block_ns ())

(* hash2 is a single permutation. *)
let pair_grain () = Pool.grain_of_ns (block_ns ())

(* Hashing [count] absorbed elements costs (count / 17) + 1 permutations. *)
let elems_grain count = Pool.grain_of_ns (((count / rate_lanes) + 1) * block_ns ())

let hash_matrix_cols ~rows ~cols (flat : Fv.t) =
  if rows < 0 || cols <= 0 || Fv.length flat <> rows * cols then
    invalid_arg "Keccak.hash_matrix_cols";
  Pool.parallel_init ~grain:(elems_grain rows) cols (fun j ->
      hash_fv_stride flat ~pos:j ~stride:cols ~count:rows)

(* Batched absorption: each input is absorbed by an independent sponge, so
   the batch splits across pool domains with byte-identical digests for any
   domain count. These are the entry points the Merkle / Orion hot paths
   use; the Hash FU analogue is hashing one column per vector lane. *)

(* When every message has the same length (the common case: Merkle leaves,
   fixed-width columns) and SIMD is up, quads of messages run through the
   4-lane AVX2 sponge; the digests are identical to four scalar calls, so
   batching is invisible to callers. *)
let sha3_256_batch msgs =
  let n = Array.length msgs in
  let grain = if n = 0 then 1 else batch_grain ~msg_bytes:(Bytes.length msgs.(0)) in
  let uniform =
    n >= 4
    && Native.on ()
    &&
    let len0 = Bytes.length msgs.(0) in
    Array.for_all (fun m -> Bytes.length m = len0) msgs
  in
  if not uniform then Pool.parallel_map ~grain sha3_256 msgs
  else begin
    let quads = n / 4 in
    let out = Array.make n "" in
    Pool.parallel_for ~grain:(max 1 (grain / 4)) ~n:quads (fun q ->
        let base = 4 * q in
        let outs = [| Bytes.create 32; Bytes.create 32; Bytes.create 32; Bytes.create 32 |] in
        Native.sha3_x4 (Array.sub msgs base 4) outs;
        for i = 0 to 3 do
          out.(base + i) <- Bytes.unsafe_to_string outs.(i)
        done);
    for i = 4 * quads to n - 1 do
      out.(i) <- sha3_256 msgs.(i)
    done;
    out
  end

let hash2_pairs level =
  let n = Array.length level in
  if n = 0 || n land 1 = 1 then invalid_arg "Keccak.hash2_pairs: need an even, non-empty level";
  Pool.parallel_init ~grain:(pair_grain ()) (n / 2) (fun i ->
      hash2 level.(2 * i) level.((2 * i) + 1))

let hash_gf_batch cols =
  let grain =
    if Array.length cols = 0 then 1 else elems_grain (Array.length cols.(0))
  in
  Pool.parallel_map ~grain hash_gf cols

(* --- incremental per-column sponges -------------------------------------- *)

(* A bank of independent SHA3-256 sponges, one per matrix column, that
   absorbs the matrix row-block by row-block. This is what lets the Orion
   commit pipeline hash block k while encoding block k+1: rows stream in as
   they are produced instead of a single column-strided pass at the end.
   For any column j, absorbing rows 0..total-1 in order and finalizing is
   byte-identical to [hash_fv_stride ~pos:j ~stride:cols ~count:total]. *)
module Col_hash = struct
  type t = { cols : int; states : Fv.t (* 25 lanes per column *) }

  let create cols =
    if cols <= 0 then invalid_arg "Keccak.Col_hash.create";
    let states = Fv.create (25 * cols) in
    Fv.zero states;
    { cols; states }

  (* Absorb rows [r_lo, r_hi) of the row-major matrix [flat] (row length
     [row_stride]) into the sponges of columns [c_lo, c_hi). Rows must
     arrive in order and exactly once per column; disjoint column ranges
     may be absorbed from different domains concurrently (the b/c
     permutation scratch is domain-local). *)
  let rec absorb t (flat : Fv.t) ~row_stride ~r_lo ~r_hi ~c_lo ~c_hi =
    if c_lo < 0 || c_hi > t.cols || r_lo < 0
       || (r_hi > r_lo && ((r_hi - 1) * row_stride) + c_hi > Fv.length flat)
    then invalid_arg "Keccak.Col_hash.absorb";
    if Native.on () then Native.col_absorb t.states flat row_stride r_lo r_hi c_lo c_hi
    else absorb_ocaml t flat ~row_stride ~r_lo ~r_hi ~c_lo ~c_hi

  and absorb_ocaml t (flat : Fv.t) ~row_stride ~r_lo ~r_hi ~c_lo ~c_hi =
    let s = Domain.DLS.get scratch_key in
    for j = c_lo to c_hi - 1 do
      let base = 25 * j in
      for r = r_lo to r_hi - 1 do
        let lane = r mod rate_lanes in
        Fv.unsafe_set t.states (base + lane)
          (Int64.logxor
             (Fv.unsafe_get t.states (base + lane))
             (Fv.unsafe_get flat ((r * row_stride) + j)));
        if lane = rate_lanes - 1 then f1600_off t.states base s.b s.c
      done
    done

  (* Close columns [c_lo, c_hi) after [total_rows] absorbed rows, writing
     digest j into [out.(j)]. *)
  let finalize t ~total_rows ~c_lo ~c_hi (out : digest array) =
    if c_lo < 0 || c_hi > t.cols || Array.length out < c_hi then
      invalid_arg "Keccak.Col_hash.finalize";
    let s = Domain.DLS.get scratch_key in
    let m = total_rows mod rate_lanes in
    for j = c_lo to c_hi - 1 do
      let base = 25 * j in
      Fv.unsafe_set t.states (base + m)
        (Int64.logxor (Fv.unsafe_get t.states (base + m)) 0x06L);
      Fv.unsafe_set t.states (base + 16)
        (Int64.logxor (Fv.unsafe_get t.states (base + 16)) trailing_pad);
      f1600_off t.states base s.b s.c;
      out.(j) <- squeeze_32_off t.states base
    done
end

let to_hex d =
  let buf = Buffer.create 64 in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents buf

let digest_to_gf d =
  Array.init 4 (fun i -> Zk_field.Gf.of_int64 (String.get_int64_le d (8 * i)))
