type t = int64

let p = 0xFFFF_FFFF_0000_0001L

(* epsilon = 2^32 - 1 = 2^64 mod p. All the reductions below rest on the
   identities 2^64 = epsilon (mod p) and 2^96 = -1 (mod p). *)
let epsilon = 0xFFFF_FFFFL

let mask32 = 0xFFFF_FFFFL

let zero = 0L
let one = 1L
let two = 2L

(* The add/sub/mul below carry [@inline]: they are the per-element body of
   every pool-parallelized loop (butterflies, row combinations, sumcheck
   rounds), where the call would otherwise dominate the arithmetic. *)
let[@inline] ( <^ ) a b = Int64.unsigned_compare a b < 0
let[@inline] ( >=^ ) a b = Int64.unsigned_compare a b >= 0

let is_canonical x = x <^ p

let[@inline] of_int64 n = if n >=^ p then Int64.sub n p else n

let of_int n =
  if n >= 0 then of_int64 (Int64.of_int n)
  else Int64.sub p (of_int64 (Int64.neg (Int64.of_int n)))

let to_int64 x = x

let[@inline] equal (a : t) (b : t) = Int64.equal a b
let compare (a : t) (b : t) = Int64.unsigned_compare a b

let[@inline] add a b =
  let s = Int64.add a b in
  (* A wrap past 2^64 contributes epsilon; the wrapped sum is < p so adding
     epsilon cannot wrap again. *)
  let s = if s <^ a then Int64.add s epsilon else s in
  if s >=^ p then Int64.sub s p else s

let[@inline] sub a b =
  let d = Int64.sub a b in
  if a <^ b then Int64.sub d epsilon else d

let[@inline] neg a = if Int64.equal a 0L then 0L else Int64.sub p a

let[@inline] double a = add a a

let[@inline] reduce128 ~lo ~hi =
  let hi_hi = Int64.shift_right_logical hi 32 in
  let hi_lo = Int64.logand hi mask32 in
  (* lo + 2^64 * (hi_lo + 2^32 * hi_hi)
     = lo + epsilon * hi_lo - hi_hi  (mod p) *)
  let t0 = Int64.sub lo hi_hi in
  let t0 = if lo <^ hi_hi then Int64.sub t0 epsilon else t0 in
  let t1 = Int64.mul hi_lo epsilon in
  let t2 = Int64.add t0 t1 in
  let t2 = if t2 <^ t0 then Int64.add t2 epsilon else t2 in
  if t2 >=^ p then Int64.sub t2 p else t2

let[@inline] mul a b =
  let a_lo = Int64.logand a mask32 and a_hi = Int64.shift_right_logical a 32 in
  let b_lo = Int64.logand b mask32 and b_hi = Int64.shift_right_logical b 32 in
  let ll = Int64.mul a_lo b_lo in
  let lh = Int64.mul a_lo b_hi in
  let hl = Int64.mul a_hi b_lo in
  let hh = Int64.mul a_hi b_hi in
  (* Both intermediate sums fit in 64 bits: each term is below 2^64 - 2^33. *)
  let t = Int64.add hl (Int64.shift_right_logical ll 32) in
  let u = Int64.add lh (Int64.logand t mask32) in
  let lo = Int64.logor (Int64.shift_left u 32) (Int64.logand ll mask32) in
  let hi =
    Int64.add hh
      (Int64.add (Int64.shift_right_logical t 32) (Int64.shift_right_logical u 32))
  in
  reduce128 ~lo ~hi

let[@inline] square a = mul a a

let pow x e =
  let acc = ref one and base = ref x and e = ref e in
  while not (Int64.equal !e 0L) do
    if Int64.logand !e 1L = 1L then acc := mul !acc !base;
    base := square !base;
    e := Int64.shift_right_logical !e 1
  done;
  !acc

let inv x =
  if Int64.equal x 0L then raise Division_by_zero;
  pow x (Int64.sub p 2L)

let div a b = mul a (inv b)

let batch_inv xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let prefix = Array.make n one in
    let acc = ref one in
    for i = 0 to n - 1 do
      if Int64.equal xs.(i) 0L then raise Division_by_zero;
      prefix.(i) <- !acc;
      acc := mul !acc xs.(i)
    done;
    let inv_acc = ref (inv !acc) in
    let out = Array.make n one in
    for i = n - 1 downto 0 do
      out.(i) <- mul !inv_acc prefix.(i);
      inv_acc := mul !inv_acc xs.(i)
    done;
    out
  end

let multiplicative_generator = 7L

let two_adicity = 32

let root_of_unity k =
  if k < 0 || k > two_adicity then invalid_arg "Gf.root_of_unity";
  (* p - 1 = 2^32 * (2^32 - 1); the exponent (p-1) / 2^k is exact. *)
  let e = Int64.shift_right_logical (Int64.sub p 1L) k in
  pow multiplicative_generator e

let random rng =
  (* Rejection sampling keeps the distribution exactly uniform. *)
  let rec go () =
    let x = Zk_util.Rng.next rng in
    if x <^ p then x else go ()
  in
  go ()

let to_string x = Printf.sprintf "%Lu" x

let pp fmt x = Format.pp_print_string fmt (to_string x)
