(** A Litmus-style verifiable key-value database (Sec. I, Sec. VIII): the
    server executes YCSB transactions, batches them, and produces a
    Spartan+Orion proof that each batch took the public table state to the
    public next state; clients verify without trusting the server.

    {!prove_batch}/{!verify_batch} run the real pipeline at feasible scale;
    {!max_throughput} evaluates the paper's headline claim — at a 1-second
    transaction-latency target, a software prover manages a few transactions
    per second while NoCap reaches the ~10^3/s that make real-time verified
    databases practical. *)

type t
(** An open database. *)

val create : rows:int -> seed:int64 -> t

val state : t -> int array
(** Current table contents. *)

type receipt = {
  instance : Zk_r1cs.R1cs.instance;
  io : Zk_field.Gf.t array;
  proof : Zk_spartan.Spartan.proof;
  transactions : Zk_workloads.Litmus_circuit.transaction list;
}

val prove_batch :
  ?engine:Zk_pcs.Engine.t ->
  ?params:Zk_spartan.Spartan.params ->
  t ->
  Zk_workloads.Litmus_circuit.transaction list ->
  receipt
(** Execute a batch against the database and produce a proof binding the
    prior public state to the new one. [engine] is passed through to the
    Spartan prover. *)

val verify_batch :
  ?engine:Zk_pcs.Engine.t -> ?params:Zk_spartan.Spartan.params -> receipt -> bool

val check_batch :
  ?engine:Zk_pcs.Engine.t ->
  ?params:Zk_spartan.Spartan.params ->
  receipt ->
  (unit, Zk_pcs.Verify_error.t) result
(** {!verify_batch} with the structured rejection reason: what a client
    would log (or map to an exit code) when a server's receipt fails. *)

(* --- the Sec. VIII throughput analysis --- *)

type prover_platform = Cpu | Nocap

val constraints_per_transaction : float
(** 26,840: the Litmus benchmark's 268.4M constraints over 10,000
    transactions (Table III). *)

val batch_latency :
  platform:prover_platform -> include_send:bool -> batch:int -> float
(** Seconds to prove, (optionally) ship, and verify a batch. *)

val max_throughput :
  platform:prover_platform -> include_send:bool -> latency_budget:float -> float
(** Largest sustainable transactions/second with every transaction's
    end-to-end latency within budget. The paper's accounting ("computation,
    proof generation, and verification", Sec. I) corresponds to
    [include_send:false]. *)
