module Gf = Zk_field.Gf
module R1cs = Zk_r1cs.R1cs
module Spartan = Zk_spartan.Spartan
module Litmus = Zk_workloads.Litmus_circuit
module Proofsize = Zk_baseline.Proofsize
module Cpu_model = Zk_baseline.Cpu_model

type t = {
  mutable table : int array;
  seed : int64;
  mutable batches : int;
}

let create ~rows ~seed =
  let rng = Zk_util.Rng.create seed in
  { table = Array.init rows (fun _ -> Zk_util.Rng.int rng 65536); seed; batches = 0 }

let state db = Array.copy db.table

type receipt = {
  instance : R1cs.instance;
  io : Gf.t array;
  proof : Spartan.proof;
  transactions : Litmus.transaction list;
}

let prove_batch ?engine ?(params = Spartan.test_params) db txs =
  let rows = Array.length db.table in
  (* The circuit generator re-derives the initial state from its seed; we
     instead build the circuit against the database's actual contents by
     replaying the generator path: construct the circuit inline. *)
  let b = Zk_r1cs.Builder.create () in
  let module Builder = Zk_r1cs.Builder in
  let module Gadgets = Zk_r1cs.Gadgets in
  let wires = ref (Array.map (fun v -> Builder.input b (Gf.of_int v)) db.table) in
  let access st ~row ~op =
    let sel =
      Array.init rows (fun j ->
          let bit = Builder.witness b (if j = row then Gf.one else Gf.zero) in
          Gadgets.assert_bool b bit;
          bit)
    in
    Gadgets.assert_equal b
      (Array.to_list sel |> List.map (fun s -> (s, Gf.one)))
      (Builder.lc_const Gf.one);
    match op with
    | Litmus.Read -> st
    | Litmus.Write v ->
      let newval = Builder.witness b (Gf.of_int v) in
      Array.mapi (fun j old -> Gadgets.select b ~cond:sel.(j) newval old) st
  in
  List.iter
    (fun (tx : Litmus.transaction) ->
      wires := access !wires ~row:tx.Litmus.row_a ~op:tx.Litmus.op_a;
      wires := access !wires ~row:tx.Litmus.row_b ~op:tx.Litmus.op_b)
    txs;
  let final = Litmus.apply db.table txs in
  Array.iteri
    (fun j wire ->
      let out = Builder.input b (Gf.of_int final.(j)) in
      Gadgets.assert_equal b (Builder.lc_var wire) (Builder.lc_var out))
    !wires;
  let instance, asn = Builder.finalize b in
  let rng = Zk_util.Rng.create (Int64.add db.seed (Int64.of_int db.batches)) in
  let proof, _stats = Spartan.prove ?engine ~rng params instance asn in
  db.table <- final;
  db.batches <- db.batches + 1;
  { instance; io = R1cs.public_io instance asn; proof; transactions = txs }

let check_batch ?engine ?(params = Spartan.test_params) receipt =
  Spartan.verify ?engine params receipt.instance ~io:receipt.io receipt.proof

let verify_batch ?engine ?(params = Spartan.test_params) receipt =
  Result.is_ok (check_batch ?engine ~params receipt)

type prover_platform = Cpu | Nocap

let constraints_per_transaction = 268.4e6 /. 10_000.0

let litmus_density = 0.9536

let prover_seconds platform n =
  match platform with
  | Cpu -> Cpu_model.spartan_orion_seconds ~density:litmus_density ~n_constraints:n ()
  | Nocap ->
    let wl =
      Nocap_model.Workload.spartan_orion ~density:litmus_density ~n_constraints:n ()
    in
    (Nocap_model.Simulator.run Nocap_model.Config.default wl)
      .Nocap_model.Simulator.total_seconds

let batch_latency ~platform ~include_send ~batch =
  if batch < 1 then invalid_arg "Zkdb.batch_latency";
  let n = constraints_per_transaction *. float_of_int batch in
  let prove = prover_seconds platform n in
  (* The log^2 proof-size/verifier fits are calibrated on 16M-550M
     constraints; clamp below that range. *)
  let proof_bytes = max 524_288.0 (Proofsize.spartan_orion_proof_bytes ~n_constraints:n) in
  let verify = max 0.02 (Proofsize.spartan_orion_verifier_seconds ~n_constraints:n) in
  let send = if include_send then proof_bytes /. (10.0 *. 1024.0 *. 1024.0) else 0.0 in
  prove +. send +. verify

let max_throughput ~platform ~include_send ~latency_budget =
  (* Latency is monotone in batch size; exponential-then-binary search for
     the largest batch within budget. *)
  let fits b = batch_latency ~platform ~include_send ~batch:b <= latency_budget in
  if not (fits 1) then 0.0
  else begin
    let rec grow hi = if fits hi then grow (2 * hi) else hi in
    let hi = grow 2 in
    let rec bisect lo hi =
      if hi - lo <= 1 then lo
      else
        let mid = (lo + hi) / 2 in
        if fits mid then bisect mid hi else bisect lo mid
    in
    let batch = bisect 1 hi in
    float_of_int batch /. latency_budget
  end
