/* Native kernels for the Fv fast path: Goldilocks arithmetic, radix-2 NTT,
   Keccak-f[1600], and the fused Reed-Solomon row encode, operating directly
   on the int64 Bigarray layout of Nocap_vec.Fv.

   Contract with the OCaml side (see DESIGN.md Sec. 13):

   - Every kernel is BIT-EXACT against its OCaml oracle for every input,
     canonical or not: the scalar C code mirrors the OCaml formulas
     operation for operation, and the SIMD variants evaluate the same
     per-lane expressions, so results never depend on which path ran.
   - Bounds and shape validation happen in OCaml before the call; the C
     side trusts its arguments (all stubs are [@@noalloc] leaf calls that
     never touch the OCaml heap or run the GC).
   - SIMD selection is runtime: the scalar fallback compiles on every
     target the repo builds on; AVX2 bodies carry
     __attribute__((target("avx2"))) so the object file stays portable and
     the choice is made per call from __builtin_cpu_supports. On aarch64
     the add/sub lanes use NEON; everything else takes the scalar path
     (still well ahead of the OCaml loops). The g_simd flag is set from
     OCaml (Native.set_mode): 0 pins every kernel to scalar C, which is
     how the bench separates "scalar C" from "SIMD" rows. */

#include <stdint.h>
#include <stddef.h>
#include <string.h>

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/bigarray.h>

#if defined(__x86_64__)
#include <immintrin.h>
#define NOCAP_X86_64 1
#endif

#if defined(__aarch64__)
#include <arm_neon.h>
#endif

/* --- runtime feature detection / mode flag ------------------------------- */

static int g_simd = 0; /* 1 = SIMD variants allowed; set from OCaml */

#if defined(NOCAP_X86_64)
static int g_have_avx2 = -1;
static int have_avx2(void)
{
  if (g_have_avx2 < 0) g_have_avx2 = __builtin_cpu_supports("avx2") ? 1 : 0;
  return g_have_avx2;
}
#else
static int have_avx2(void) { return 0; }
#endif

static int have_neon(void)
{
#if defined(__aarch64__)
  return 1;
#else
  return 0;
#endif
}

CAMLprim value caml_nocap_cpu_features(value unit)
{
  int f = 0;
  (void)unit;
  if (have_avx2()) f |= 1;
  if (have_neon()) f |= 2;
  return Val_int(f);
}

CAMLprim value caml_nocap_set_simd(value v)
{
  g_simd = Int_val(v);
  return Val_unit;
}

/* --- scalar Goldilocks arithmetic ----------------------------------------
   p = 2^64 - 2^32 + 1, epsilon = 2^32 - 1 = 2^64 mod p. The add/sub/reduce
   sequences below are literal translations of Zk_field.Gf, so outputs are
   bit-identical even for non-canonical (>= p) inputs. */

#define GL_P 0xFFFFFFFF00000001ULL
#define GL_EPS 0xFFFFFFFFULL

static inline uint64_t gl_add(uint64_t a, uint64_t b)
{
  uint64_t s = a + b;
  if (s < a) s += GL_EPS;
  if (s >= GL_P) s -= GL_P;
  return s;
}

static inline uint64_t gl_sub(uint64_t a, uint64_t b)
{
  uint64_t d = a - b;
  if (a < b) d -= GL_EPS;
  return d;
}

static inline uint64_t gl_reduce128(uint64_t lo, uint64_t hi)
{
  uint64_t hi_hi = hi >> 32;
  uint64_t hi_lo = hi & GL_EPS;
  uint64_t t0 = lo - hi_hi;
  if (lo < hi_hi) t0 -= GL_EPS;
  uint64_t t1 = hi_lo * GL_EPS; /* both < 2^32: no wrap */
  uint64_t t2 = t0 + t1;
  if (t2 < t0) t2 += GL_EPS;
  if (t2 >= GL_P) t2 -= GL_P;
  return t2;
}

static inline uint64_t gl_mul(uint64_t a, uint64_t b)
{
#if defined(__SIZEOF_INT128__)
  unsigned __int128 p = (unsigned __int128)a * b;
  return gl_reduce128((uint64_t)p, (uint64_t)(p >> 64));
#else
  /* 32-bit decomposition, exactly as the OCaml Gf.mul. */
  uint64_t a_lo = a & GL_EPS, a_hi = a >> 32;
  uint64_t b_lo = b & GL_EPS, b_hi = b >> 32;
  uint64_t ll = a_lo * b_lo, lh = a_lo * b_hi, hl = a_hi * b_lo, hh = a_hi * b_hi;
  uint64_t t = hl + (ll >> 32);
  uint64_t u = lh + (t & GL_EPS);
  uint64_t lo = (u << 32) | (ll & GL_EPS);
  uint64_t hi = hh + (t >> 32) + (u >> 32);
  return gl_reduce128(lo, hi);
#endif
}

/* n_inv = n^(p-2): one-off per inverse-NTT plan, so a plain square-and-
   multiply is plenty. */
static uint64_t gl_pow(uint64_t x, uint64_t e)
{
  uint64_t acc = 1, base = x;
  while (e != 0) {
    if (e & 1) acc = gl_mul(acc, base);
    base = gl_mul(base, base);
    e >>= 1;
  }
  return acc;
}

/* --- AVX2 Goldilocks lanes ----------------------------------------------- */

#if defined(NOCAP_X86_64)

/* Unsigned 64-bit compare: bias both sides by 2^63 and use the signed
   compare AVX2 provides. */
#define GL_SIGN64 0x8000000000000000ULL

__attribute__((target("avx2"))) static inline __m256i gl4_ltu(__m256i a, __m256i b)
{
  const __m256i sign = _mm256_set1_epi64x((long long)GL_SIGN64);
  return _mm256_cmpgt_epi64(_mm256_xor_si256(b, sign), _mm256_xor_si256(a, sign));
}

__attribute__((target("avx2"))) static inline __m256i gl4_add(__m256i a, __m256i b)
{
  const __m256i eps = _mm256_set1_epi64x((long long)GL_EPS);
  const __m256i p = _mm256_set1_epi64x((long long)GL_P);
  __m256i s = _mm256_add_epi64(a, b);
  __m256i carry = gl4_ltu(s, a); /* wrapped past 2^64 */
  s = _mm256_add_epi64(s, _mm256_and_si256(carry, eps));
  __m256i lt_p = gl4_ltu(s, p);
  return _mm256_sub_epi64(s, _mm256_andnot_si256(lt_p, p));
}

__attribute__((target("avx2"))) static inline __m256i gl4_sub(__m256i a, __m256i b)
{
  const __m256i eps = _mm256_set1_epi64x((long long)GL_EPS);
  __m256i d = _mm256_sub_epi64(a, b);
  __m256i borrow = gl4_ltu(a, b);
  return _mm256_sub_epi64(d, _mm256_and_si256(borrow, eps));
}

/* Exact 128-bit product from four 32x32 partials (mul_epu32 multiplies the
   low halves of each 64-bit lane), combined with the same carry pattern as
   the scalar code — the partial sums provably fit in 64 bits — then the
   same shift-based reduction. */
__attribute__((target("avx2"))) static inline __m256i gl4_mul(__m256i a, __m256i b)
{
  const __m256i mask32 = _mm256_set1_epi64x((long long)GL_EPS);
  const __m256i p = _mm256_set1_epi64x((long long)GL_P);
  __m256i a_hi = _mm256_srli_epi64(a, 32);
  __m256i b_hi = _mm256_srli_epi64(b, 32);
  __m256i ll = _mm256_mul_epu32(a, b);
  __m256i lh = _mm256_mul_epu32(a, b_hi);
  __m256i hl = _mm256_mul_epu32(a_hi, b);
  __m256i hh = _mm256_mul_epu32(a_hi, b_hi);
  __m256i t = _mm256_add_epi64(hl, _mm256_srli_epi64(ll, 32));
  __m256i u = _mm256_add_epi64(lh, _mm256_and_si256(t, mask32));
  __m256i lo = _mm256_or_si256(_mm256_slli_epi64(u, 32), _mm256_and_si256(ll, mask32));
  __m256i hi =
      _mm256_add_epi64(hh, _mm256_add_epi64(_mm256_srli_epi64(t, 32), _mm256_srli_epi64(u, 32)));
  /* reduce128 */
  const __m256i eps = mask32;
  __m256i hi_hi = _mm256_srli_epi64(hi, 32);
  __m256i hi_lo = _mm256_and_si256(hi, mask32);
  __m256i t0 = _mm256_sub_epi64(lo, hi_hi);
  __m256i borrow = gl4_ltu(lo, hi_hi);
  t0 = _mm256_sub_epi64(t0, _mm256_and_si256(borrow, eps));
  __m256i t1 = _mm256_mul_epu32(hi_lo, eps); /* both < 2^32: exact */
  __m256i t2 = _mm256_add_epi64(t0, t1);
  __m256i carry = gl4_ltu(t2, t0);
  t2 = _mm256_add_epi64(t2, _mm256_and_si256(carry, eps));
  __m256i lt_p = gl4_ltu(t2, p);
  return _mm256_sub_epi64(t2, _mm256_andnot_si256(lt_p, p));
}

#endif /* NOCAP_X86_64 */

/* --- elementwise Fv kernels ---------------------------------------------- */

#define BA_DATA(v) ((uint64_t *)Caml_ba_data_val(v))
#define BA_DIM(v) (Caml_ba_array_val(v)->dim[0])

#if defined(NOCAP_X86_64)
#define FV_LOOP_AVX2(name, body4, body1)                                                 \
  __attribute__((target("avx2"))) static void name(uint64_t *dst, const uint64_t *a,     \
                                                   const uint64_t *b, intnat n)          \
  {                                                                                      \
    intnat i = 0;                                                                        \
    for (; i + 4 <= n; i += 4) {                                                         \
      __m256i x = _mm256_loadu_si256((const __m256i *)(a + i));                          \
      __m256i y = _mm256_loadu_si256((const __m256i *)(b + i));                          \
      _mm256_storeu_si256((__m256i *)(dst + i), body4);                                  \
    }                                                                                    \
    for (; i < n; i++) dst[i] = body1;                                                   \
  }

FV_LOOP_AVX2(fv_add_avx2, gl4_add(x, y), gl_add(a[i], b[i]))
FV_LOOP_AVX2(fv_sub_avx2, gl4_sub(x, y), gl_sub(a[i], b[i]))
FV_LOOP_AVX2(fv_mul_avx2, gl4_mul(x, y), gl_mul(a[i], b[i]))

__attribute__((target("avx2"))) static void fv_scale_avx2(uint64_t *dst, const uint64_t *a,
                                                          uint64_t c, intnat n)
{
  const __m256i cv = _mm256_set1_epi64x((long long)c);
  intnat i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i x = _mm256_loadu_si256((const __m256i *)(a + i));
    _mm256_storeu_si256((__m256i *)(dst + i), gl4_mul(cv, x));
  }
  for (; i < n; i++) dst[i] = gl_mul(c, a[i]);
}

__attribute__((target("avx2"))) static void fv_axpy_avx2(uint64_t *dst, uint64_t c,
                                                         const uint64_t *src, intnat n)
{
  const __m256i cv = _mm256_set1_epi64x((long long)c);
  intnat i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i d = _mm256_loadu_si256((const __m256i *)(dst + i));
    __m256i s = _mm256_loadu_si256((const __m256i *)(src + i));
    _mm256_storeu_si256((__m256i *)(dst + i), gl4_add(d, gl4_mul(cv, s)));
  }
  for (; i < n; i++) dst[i] = gl_add(dst[i], gl_mul(c, src[i]));
}
#endif /* NOCAP_X86_64 */

#if defined(__aarch64__)
/* NEON covers the carry-propagation lanes (add/sub); mul and the sponges
   take the scalar path on ARM — see DESIGN.md Sec. 13. */
static void fv_add_neon(uint64_t *dst, const uint64_t *a, const uint64_t *b, intnat n)
{
  const uint64x2_t eps = vdupq_n_u64(GL_EPS);
  const uint64x2_t p = vdupq_n_u64(GL_P);
  intnat i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t x = vld1q_u64(a + i), y = vld1q_u64(b + i);
    uint64x2_t s = vaddq_u64(x, y);
    uint64x2_t carry = vcgtq_u64(x, s); /* s < x: wrapped */
    s = vaddq_u64(s, vandq_u64(carry, eps));
    uint64x2_t ge_p = vcgeq_u64(s, p);
    s = vsubq_u64(s, vandq_u64(ge_p, p));
    vst1q_u64(dst + i, s);
  }
  for (; i < n; i++) dst[i] = gl_add(a[i], b[i]);
}

static void fv_sub_neon(uint64_t *dst, const uint64_t *a, const uint64_t *b, intnat n)
{
  const uint64x2_t eps = vdupq_n_u64(GL_EPS);
  intnat i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t x = vld1q_u64(a + i), y = vld1q_u64(b + i);
    uint64x2_t d = vsubq_u64(x, y);
    uint64x2_t borrow = vcgtq_u64(y, x);
    d = vsubq_u64(d, vandq_u64(borrow, eps));
    vst1q_u64(dst + i, d);
  }
  for (; i < n; i++) dst[i] = gl_sub(a[i], b[i]);
}
#endif /* __aarch64__ */

CAMLprim value caml_nocap_fv_add(value vdst, value va, value vb)
{
  uint64_t *dst = BA_DATA(vdst);
  const uint64_t *a = BA_DATA(va), *b = BA_DATA(vb);
  intnat n = BA_DIM(vdst);
#if defined(NOCAP_X86_64)
  if (g_simd && have_avx2()) { fv_add_avx2(dst, a, b, n); return Val_unit; }
#elif defined(__aarch64__)
  if (g_simd) { fv_add_neon(dst, a, b, n); return Val_unit; }
#endif
  for (intnat i = 0; i < n; i++) dst[i] = gl_add(a[i], b[i]);
  return Val_unit;
}

CAMLprim value caml_nocap_fv_sub(value vdst, value va, value vb)
{
  uint64_t *dst = BA_DATA(vdst);
  const uint64_t *a = BA_DATA(va), *b = BA_DATA(vb);
  intnat n = BA_DIM(vdst);
#if defined(NOCAP_X86_64)
  if (g_simd && have_avx2()) { fv_sub_avx2(dst, a, b, n); return Val_unit; }
#elif defined(__aarch64__)
  if (g_simd) { fv_sub_neon(dst, a, b, n); return Val_unit; }
#endif
  for (intnat i = 0; i < n; i++) dst[i] = gl_sub(a[i], b[i]);
  return Val_unit;
}

CAMLprim value caml_nocap_fv_mul(value vdst, value va, value vb)
{
  uint64_t *dst = BA_DATA(vdst);
  const uint64_t *a = BA_DATA(va), *b = BA_DATA(vb);
  intnat n = BA_DIM(vdst);
#if defined(NOCAP_X86_64)
  if (g_simd && have_avx2()) { fv_mul_avx2(dst, a, b, n); return Val_unit; }
#endif
  for (intnat i = 0; i < n; i++) dst[i] = gl_mul(a[i], b[i]);
  return Val_unit;
}

CAMLprim value caml_nocap_fv_scale(value vdst, value va, value vc)
{
  uint64_t *dst = BA_DATA(vdst);
  const uint64_t *a = BA_DATA(va);
  uint64_t c = (uint64_t)Int64_val(vc);
  intnat n = BA_DIM(vdst);
#if defined(NOCAP_X86_64)
  if (g_simd && have_avx2()) { fv_scale_avx2(dst, a, c, n); return Val_unit; }
#endif
  for (intnat i = 0; i < n; i++) dst[i] = gl_mul(c, a[i]);
  return Val_unit;
}

CAMLprim value caml_nocap_fv_axpy(value vdst, value vc, value vsrc)
{
  uint64_t *dst = BA_DATA(vdst);
  const uint64_t *src = BA_DATA(vsrc);
  uint64_t c = (uint64_t)Int64_val(vc);
  intnat n = BA_DIM(vdst);
#if defined(NOCAP_X86_64)
  if (g_simd && have_avx2()) { fv_axpy_avx2(dst, c, src, n); return Val_unit; }
#endif
  for (intnat i = 0; i < n; i++) dst[i] = gl_add(dst[i], gl_mul(c, src[i]));
  return Val_unit;
}

/* --- radix-2 NTT ---------------------------------------------------------
   Same algorithm and operation order as Ntt.Gf_fv.transform: bit-reverse,
   then log n butterfly passes against the shared twiddle table
   (tw[j * stride], stride = n / len). Butterflies within a pass are
   independent, so the AVX2 pass computes identical per-lane expressions in
   a different order without changing a single output bit. */

static void gl_bit_reverse(uint64_t *a, intnat n, int log_n)
{
  for (intnat i = 0; i < n; i++) {
    intnat j = 0, x = i;
    for (int k = 0; k < log_n; k++) {
      j = (j << 1) | (x & 1);
      x >>= 1;
    }
    if (j > i) {
      uint64_t t = a[i];
      a[i] = a[j];
      a[j] = t;
    }
  }
}

#if defined(NOCAP_X86_64)
__attribute__((target("avx2"))) static void ntt_pass_avx2(uint64_t *a, const uint64_t *tw,
                                                          intnat n, intnat len)
{
  intnat half = len >> 1;
  intnat stride = n / len;
  for (intnat k = 0; k < n; k += len) {
    intnat j = 0;
    for (; j + 4 <= half; j += 4) {
      __m256i w;
      if (stride == 1)
        w = _mm256_loadu_si256((const __m256i *)(tw + j));
      else
        w = _mm256_i64gather_epi64((const long long *)tw,
                                   _mm256_setr_epi64x(j * stride, (j + 1) * stride,
                                                      (j + 2) * stride, (j + 3) * stride),
                                   8);
      __m256i u = _mm256_loadu_si256((const __m256i *)(a + k + j));
      __m256i v = _mm256_loadu_si256((const __m256i *)(a + k + j + half));
      __m256i t = gl4_mul(w, v);
      _mm256_storeu_si256((__m256i *)(a + k + j), gl4_add(u, t));
      _mm256_storeu_si256((__m256i *)(a + k + j + half), gl4_sub(u, t));
    }
    for (; j < half; j++) {
      uint64_t w = tw[j * stride];
      uint64_t u = a[k + j];
      uint64_t t = gl_mul(w, a[k + j + half]);
      a[k + j] = gl_add(u, t);
      a[k + j + half] = gl_sub(u, t);
    }
  }
}
#endif

static void gl_ntt(uint64_t *a, intnat n, const uint64_t *tw)
{
  if (n < 2) return;
  int log_n = 0;
  while (((intnat)1 << log_n) < n) log_n++;
  gl_bit_reverse(a, n, log_n);
  int use_avx2 = 0;
#if defined(NOCAP_X86_64)
  use_avx2 = g_simd && have_avx2();
#endif
  for (intnat len = 2; len <= n; len <<= 1) {
    intnat half = len >> 1;
    intnat stride = n / len;
#if defined(NOCAP_X86_64)
    if (use_avx2 && half >= 4) {
      ntt_pass_avx2(a, tw, n, len);
      continue;
    }
#else
    (void)use_avx2;
#endif
    for (intnat k = 0; k < n; k += len) {
      for (intnat j = 0; j < half; j++) {
        uint64_t w = tw[j * stride];
        uint64_t u = a[k + j];
        uint64_t t = gl_mul(w, a[k + j + half]);
        a[k + j] = gl_add(u, t);
        a[k + j + half] = gl_sub(u, t);
      }
    }
  }
}

CAMLprim value caml_nocap_ntt_forward(value vbuf, value vtw)
{
  gl_ntt(BA_DATA(vbuf), BA_DIM(vbuf), BA_DATA(vtw));
  return Val_unit;
}

CAMLprim value caml_nocap_ntt_inverse(value vbuf, value vtw, value vninv)
{
  uint64_t *a = BA_DATA(vbuf);
  intnat n = BA_DIM(vbuf);
  uint64_t n_inv = (uint64_t)Int64_val(vninv);
  gl_ntt(a, n, BA_DATA(vtw));
#if defined(NOCAP_X86_64)
  if (g_simd && have_avx2()) {
    fv_scale_avx2(a, a, n_inv, n);
    return Val_unit;
  }
#endif
  for (intnat i = 0; i < n; i++) a[i] = gl_mul(a[i], n_inv);
  return Val_unit;
}

/* Fused RS row encode: dst[0..n) = src, dst[n..m) = 0, then the in-place
   forward NTT of the whole codeword — one pass, no OCaml round trips. */
CAMLprim value caml_nocap_rs_encode_row(value vsrc, value vdst, value vtw)
{
  const uint64_t *src = BA_DATA(vsrc);
  uint64_t *dst = BA_DATA(vdst);
  intnat n = BA_DIM(vsrc);
  intnat m = BA_DIM(vdst);
  memcpy(dst, src, (size_t)n * 8);
  memset(dst + n, 0, (size_t)(m - n) * 8);
  gl_ntt(dst, m, BA_DATA(vtw));
  return Val_unit;
}

/* --- Keccak-f[1600] ------------------------------------------------------ */

static const uint64_t keccak_rc[24] = {
  0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808AULL,
  0x8000000080008000ULL, 0x000000000000808BULL, 0x0000000080000001ULL,
  0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008AULL,
  0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000AULL,
  0x000000008000808BULL, 0x800000000000008BULL, 0x8000000000008089ULL,
  0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
  0x000000000000800AULL, 0x800000008000000AULL, 0x8000000080008081ULL,
  0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL,
};

static const int keccak_rot[25] = {
  0, 1, 62, 28, 27, 36, 44, 6, 55, 20, 3, 10, 43, 25, 39, 41, 45, 15, 21, 8, 18, 2, 61, 56, 14,
};

static inline uint64_t rotl64(uint64_t x, int r)
{
  return r == 0 ? x : (x << r) | (x >> (64 - r));
}

static void keccak_f1600(uint64_t *st)
{
  uint64_t b[25], c[5], d;
  for (int round = 0; round < 24; round++) {
    for (int x = 0; x < 5; x++)
      c[x] = st[x] ^ st[x + 5] ^ st[x + 10] ^ st[x + 15] ^ st[x + 20];
    for (int x = 0; x < 5; x++) {
      d = c[(x + 4) % 5] ^ rotl64(c[(x + 1) % 5], 1);
      for (int y = 0; y < 5; y++) st[x + 5 * y] ^= d;
    }
    for (int x = 0; x < 5; x++)
      for (int y = 0; y < 5; y++) {
        int src = x + 5 * y;
        int dst = y + 5 * ((2 * x + 3 * y) % 5);
        b[dst] = rotl64(st[src], keccak_rot[src]);
      }
    for (int y = 0; y < 5; y++)
      for (int x = 0; x < 5; x++)
        st[x + 5 * y] = b[x + 5 * y] ^ (~b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
    st[0] ^= keccak_rc[round];
  }
}

CAMLprim value caml_nocap_f1600_off(value vst, value voff)
{
  keccak_f1600(BA_DATA(vst) + Int_val(voff));
  return Val_unit;
}

/* byte-order-independent little-endian lane load/store (compilers lower
   these to single moves on LE hosts) */
static inline uint64_t load64le(const unsigned char *p)
{
  return (uint64_t)p[0] | ((uint64_t)p[1] << 8) | ((uint64_t)p[2] << 16) |
         ((uint64_t)p[3] << 24) | ((uint64_t)p[4] << 32) | ((uint64_t)p[5] << 40) |
         ((uint64_t)p[6] << 48) | ((uint64_t)p[7] << 56);
}

static inline void store64le(unsigned char *p, uint64_t x)
{
  for (int i = 0; i < 8; i++) p[i] = (unsigned char)(x >> (8 * i));
}

#define RATE_BYTES 136
#define RATE_LANES 17
#define SHA3_PAD 0x06ULL
#define TRAILING_PAD (0x80ULL << 56)

static void squeeze32(const uint64_t *st, unsigned char *out)
{
  for (int l = 0; l < 4; l++) store64le(out + 8 * l, st[l]);
}

static void sha3_256_c(const unsigned char *msg, size_t len, unsigned char *out)
{
  uint64_t st[25] = { 0 };
  size_t off = 0;
  while (len - off >= RATE_BYTES) {
    for (int l = 0; l < RATE_LANES; l++) st[l] ^= load64le(msg + off + 8 * l);
    keccak_f1600(st);
    off += RATE_BYTES;
  }
  size_t rem = len - off;
  size_t full = rem / 8;
  for (size_t l = 0; l < full; l++) st[l] ^= load64le(msg + off + 8 * l);
  uint64_t tail = 0;
  for (size_t i = 8 * full; i < rem; i++)
    tail |= (uint64_t)msg[off + i] << (8 * (i - 8 * full));
  st[full] ^= tail | (SHA3_PAD << (8 * (rem & 7)));
  st[16] ^= TRAILING_PAD;
  keccak_f1600(st);
  squeeze32(st, out);
}

CAMLprim value caml_nocap_sha3(value vmsg, value vout)
{
  sha3_256_c(Bytes_val(vmsg), caml_string_length(vmsg), Bytes_val(vout));
  return Val_unit;
}

CAMLprim value caml_nocap_hash2(value va, value vb, value vout)
{
  uint64_t st[25] = { 0 };
  const unsigned char *a = (const unsigned char *)String_val(va);
  const unsigned char *b = (const unsigned char *)String_val(vb);
  for (int l = 0; l < 4; l++) {
    st[l] ^= load64le(a + 8 * l);
    st[4 + l] ^= load64le(b + 8 * l);
  }
  st[8] ^= SHA3_PAD;
  st[16] ^= TRAILING_PAD;
  keccak_f1600(st);
  squeeze32(st, Bytes_val(vout));
  return Val_unit;
}

/* Absorb [count] already-packed 64-bit lanes fetched by [get(i)], then pad
   and squeeze: the shared tail of hash_gf / hash_fv_stride. */
#define SPONGE_LANES(st, count, GET, out)                                                \
  do {                                                                                   \
    intnat off_ = 0;                                                                     \
    while ((count) - off_ >= RATE_LANES) {                                               \
      for (int k_ = 0; k_ < RATE_LANES; k_++) st[k_] ^= GET(off_ + k_);                  \
      keccak_f1600(st);                                                                  \
      off_ += RATE_LANES;                                                                \
    }                                                                                    \
    intnat m_ = (count)-off_;                                                            \
    for (intnat k_ = 0; k_ < m_; k_++) st[k_] ^= GET(off_ + k_);                         \
    st[m_] ^= SHA3_PAD;                                                                  \
    st[16] ^= TRAILING_PAD;                                                              \
    keccak_f1600(st);                                                                    \
    squeeze32(st, out);                                                                  \
  } while (0)

CAMLprim value caml_nocap_hash_gf(value varr, value vout)
{
  uint64_t st[25] = { 0 };
  intnat n = Wosize_val(varr);
  unsigned char *out = Bytes_val(vout);
#define GET_BOXED(i) ((uint64_t)Int64_val(Field(varr, (i))))
  SPONGE_LANES(st, n, GET_BOXED, out);
#undef GET_BOXED
  return Val_unit;
}

CAMLprim value caml_nocap_hash_fv_stride(value vv, value vpos, value vstride, value vcount,
                                         value vout)
{
  uint64_t st[25] = { 0 };
  const uint64_t *v = BA_DATA(vv);
  intnat pos = Int_val(vpos), stride = Int_val(vstride), count = Int_val(vcount);
  unsigned char *out = Bytes_val(vout);
#define GET_STRIDED(i) (v[pos + (i)*stride])
  SPONGE_LANES(st, count, GET_STRIDED, out);
#undef GET_STRIDED
  return Val_unit;
}

/* Col_hash.absorb: per-column incremental sponges living 25 lanes apart in
   one flat bank; mirror of the OCaml loop (rows in order, permute on every
   17th absorbed lane). */
CAMLprim value caml_nocap_col_absorb(value vstates, value vflat, value vrs, value vrlo,
                                     value vrhi, value vclo, value vchi)
{
  uint64_t *states = BA_DATA(vstates);
  const uint64_t *flat = BA_DATA(vflat);
  intnat row_stride = Int_val(vrs);
  intnat r_lo = Int_val(vrlo), r_hi = Int_val(vrhi);
  intnat c_lo = Int_val(vclo), c_hi = Int_val(vchi);
  for (intnat j = c_lo; j < c_hi; j++) {
    uint64_t *st = states + 25 * j;
    for (intnat r = r_lo; r < r_hi; r++) {
      int lane = (int)(r % RATE_LANES);
      st[lane] ^= flat[r * row_stride + j];
      if (lane == RATE_LANES - 1) keccak_f1600(st);
    }
  }
  return Val_unit;
}

/* --- 4-lane AVX2 Keccak sponge -------------------------------------------
   One 64-bit lane position across four independent states per ymm register:
   the batched entry points (sha3_256_batch over equal-length messages)
   drive four sponges for the price of ~1.3. */

#if defined(NOCAP_X86_64)

__attribute__((target("avx2"))) static inline __m256i rotl64x4(__m256i x, int r)
{
  if (r == 0) return x;
  return _mm256_or_si256(_mm256_slli_epi64(x, r), _mm256_srli_epi64(x, 64 - r));
}

__attribute__((target("avx2"))) static void keccak_f1600_x4(__m256i *st)
{
  __m256i b[25], c[5], d;
  for (int round = 0; round < 24; round++) {
    for (int x = 0; x < 5; x++)
      c[x] = _mm256_xor_si256(
          st[x],
          _mm256_xor_si256(st[x + 5], _mm256_xor_si256(st[x + 10],
                                                       _mm256_xor_si256(st[x + 15], st[x + 20]))));
    for (int x = 0; x < 5; x++) {
      d = _mm256_xor_si256(c[(x + 4) % 5], rotl64x4(c[(x + 1) % 5], 1));
      for (int y = 0; y < 5; y++) st[x + 5 * y] = _mm256_xor_si256(st[x + 5 * y], d);
    }
    for (int x = 0; x < 5; x++)
      for (int y = 0; y < 5; y++) {
        int src = x + 5 * y;
        int dst = y + 5 * ((2 * x + 3 * y) % 5);
        b[dst] = rotl64x4(st[src], keccak_rot[src]);
      }
    for (int y = 0; y < 5; y++)
      for (int x = 0; x < 5; x++)
        st[x + 5 * y] = _mm256_xor_si256(
            b[x + 5 * y],
            _mm256_andnot_si256(b[(x + 1) % 5 + 5 * y], b[(x + 2) % 5 + 5 * y]));
    st[0] = _mm256_xor_si256(st[0], _mm256_set1_epi64x((long long)keccak_rc[round]));
  }
}

__attribute__((target("avx2"))) static void sha3_256_x4(const unsigned char *m[4], size_t len,
                                                        unsigned char *out[4])
{
  __m256i st[25];
  for (int l = 0; l < 25; l++) st[l] = _mm256_setzero_si256();
  size_t off = 0;
  while (len - off >= RATE_BYTES) {
    for (int l = 0; l < RATE_LANES; l++)
      st[l] = _mm256_xor_si256(
          st[l], _mm256_set_epi64x((long long)load64le(m[3] + off + 8 * l),
                                   (long long)load64le(m[2] + off + 8 * l),
                                   (long long)load64le(m[1] + off + 8 * l),
                                   (long long)load64le(m[0] + off + 8 * l)));
    keccak_f1600_x4(st);
    off += RATE_BYTES;
  }
  size_t rem = len - off;
  size_t full = rem / 8;
  for (size_t l = 0; l < full; l++)
    st[l] = _mm256_xor_si256(st[l], _mm256_set_epi64x((long long)load64le(m[3] + off + 8 * l),
                                                      (long long)load64le(m[2] + off + 8 * l),
                                                      (long long)load64le(m[1] + off + 8 * l),
                                                      (long long)load64le(m[0] + off + 8 * l)));
  uint64_t tails[4];
  for (int i = 0; i < 4; i++) {
    uint64_t tail = 0;
    for (size_t k = 8 * full; k < rem; k++)
      tail |= (uint64_t)m[i][off + k] << (8 * (k - 8 * full));
    tails[i] = tail | (SHA3_PAD << (8 * (rem & 7)));
  }
  st[full] = _mm256_xor_si256(st[full], _mm256_set_epi64x((long long)tails[3], (long long)tails[2],
                                                          (long long)tails[1], (long long)tails[0]));
  st[16] = _mm256_xor_si256(st[16], _mm256_set1_epi64x((long long)TRAILING_PAD));
  keccak_f1600_x4(st);
  uint64_t tmp[4];
  for (int l = 0; l < 4; l++) {
    _mm256_storeu_si256((__m256i *)tmp, st[l]);
    for (int i = 0; i < 4; i++) store64le(out[i] + 8 * l, tmp[i]);
  }
}

#endif /* NOCAP_X86_64 */

CAMLprim value caml_nocap_sha3_x4(value vmsgs, value vouts)
{
  const unsigned char *m[4];
  unsigned char *o[4];
  size_t len = caml_string_length(Field(vmsgs, 0));
  for (int i = 0; i < 4; i++) {
    m[i] = Bytes_val(Field(vmsgs, i));
    o[i] = Bytes_val(Field(vouts, i));
  }
#if defined(NOCAP_X86_64)
  if (g_simd && have_avx2()) {
    sha3_256_x4(m, len, o);
    return Val_unit;
  }
#endif
  for (int i = 0; i < 4; i++) sha3_256_c(m[i], len, o[i]);
  return Val_unit;
}

/* Self-check hook for gl_pow (used by inverse-NTT plan building from C if
   ever needed) — keeps the symbol alive and testable. */
CAMLprim value caml_nocap_gl_pow(value va, value ve)
{
  return caml_copy_int64((int64_t)gl_pow((uint64_t)Int64_val(va), (uint64_t)Int64_val(ve)));
}

CAMLprim value caml_nocap_col_absorb_byte(value *argv, int argn)
{
  (void)argn;
  return caml_nocap_col_absorb(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5], argv[6]);
}
