type mode =
  | Off
  | Scalar
  | Simd

let mode_to_string = function
  | Off -> "off"
  | Scalar -> "scalar"
  | Simd -> "simd"

let parse_mode s =
  match String.lowercase_ascii (String.trim s) with
  | "0" | "off" -> Ok Off
  | "scalar" -> Ok Scalar
  | "1" | "on" | "auto" | "simd" -> Ok Simd
  | other ->
    Error
      (Printf.sprintf "invalid NOCAP_NATIVE %S (expected 0|off|scalar|1|on|auto|simd)" other)

external cpu_features : unit -> int = "caml_nocap_cpu_features" [@@noalloc]
external set_simd : int -> unit = "caml_nocap_set_simd" [@@noalloc]

let have_avx2 () = cpu_features () land 1 <> 0
let have_neon () = cpu_features () land 2 <> 0

let features_to_string () =
  match (have_avx2 (), have_neon ()) with
  | true, true -> "avx2+neon"
  | true, false -> "avx2"
  | false, true -> "neon"
  | false, false -> "none"

(* The C-side [g_simd] flag starts at 0, so [set_mode] must run before any
   SIMD kernel can fire; the lazy default below covers programs that never
   resolve an [Engine] (tests, bare library users). [Engine.Config.of_env]
   parses the same variable with loud errors and re-applies it here. *)
let current = ref None

let set_mode m =
  current := Some m;
  set_simd (match m with Simd -> 1 | Off | Scalar -> 0)

let default_mode () =
  match Sys.getenv_opt "NOCAP_NATIVE" with
  | None -> Simd
  | Some s -> ( match parse_mode s with Ok m -> m | Error _ -> Simd)

let mode () =
  match !current with
  | Some m -> m
  | None ->
    let m = default_mode () in
    set_mode m;
    m

let on () = mode () <> Off

let with_mode m f =
  let prev = mode () in
  set_mode m;
  Fun.protect ~finally:(fun () -> set_mode prev) f

type fv = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

external fv_add : fv -> fv -> fv -> unit = "caml_nocap_fv_add" [@@noalloc]
external fv_sub : fv -> fv -> fv -> unit = "caml_nocap_fv_sub" [@@noalloc]
external fv_mul : fv -> fv -> fv -> unit = "caml_nocap_fv_mul" [@@noalloc]
external fv_scale : fv -> fv -> int64 -> unit = "caml_nocap_fv_scale" [@@noalloc]
external fv_axpy : fv -> int64 -> fv -> unit = "caml_nocap_fv_axpy" [@@noalloc]
external ntt_forward : fv -> fv -> unit = "caml_nocap_ntt_forward" [@@noalloc]
external ntt_inverse : fv -> fv -> int64 -> unit = "caml_nocap_ntt_inverse" [@@noalloc]
external rs_encode_row : fv -> fv -> fv -> unit = "caml_nocap_rs_encode_row" [@@noalloc]
external f1600_off : fv -> int -> unit = "caml_nocap_f1600_off" [@@noalloc]
external sha3 : Bytes.t -> Bytes.t -> unit = "caml_nocap_sha3" [@@noalloc]
external sha3_x4 : Bytes.t array -> Bytes.t array -> unit = "caml_nocap_sha3_x4" [@@noalloc]
external hash2 : string -> string -> Bytes.t -> unit = "caml_nocap_hash2" [@@noalloc]
external hash_gf : int64 array -> Bytes.t -> unit = "caml_nocap_hash_gf" [@@noalloc]

external hash_fv_stride : fv -> int -> int -> int -> Bytes.t -> unit
  = "caml_nocap_hash_fv_stride"
[@@noalloc]

external col_absorb : fv -> fv -> int -> int -> int -> int -> int -> unit
  = "caml_nocap_col_absorb_byte" "caml_nocap_col_absorb"
[@@noalloc]

external gl_pow : int64 -> int64 -> int64 = "caml_nocap_gl_pow"
