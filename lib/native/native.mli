(** Runtime switch for the native (C) kernel layer.

    The C stubs in [nocap_native_stubs.c] are bit-exact replacements for the
    hot OCaml kernels over [Fv] buffers (Goldilocks elementwise ops, radix-2
    NTT, Keccak-f[1600] sponges, fused RS row encode).  This module owns the
    single mode flag that every dispatch site consults:

    - [Off]    — pure OCaml oracles only (the pre-PR-8 code paths).
    - [Scalar] — portable C kernels, SIMD variants disabled.
    - [Simd]   — C kernels with AVX2/NEON bodies when the CPU supports them
                 (falls back to scalar C per kernel otherwise).

    The default comes from [NOCAP_NATIVE] (unset = [Simd]); [Engine.Config]
    re-parses the same variable with loud errors and re-applies it via
    [set_mode], so engine-driven programs get config validation while bare
    library users still get a sensible default.  Mode changes are global and
    instantaneous, but every kernel is bit-exact across modes, so flipping
    mid-run is safe (the bench harness does exactly that). *)

type mode =
  | Off
  | Scalar
  | Simd

val mode_to_string : mode -> string

val parse_mode : string -> (mode, string) result
(** Accepts ["0"|"off"] (Off), ["scalar"] (Scalar), ["1"|"on"|"auto"|"simd"]
    (Simd), case-insensitively. *)

val mode : unit -> mode
(** Current mode.  First call reads [NOCAP_NATIVE] (malformed values fall
    back to [Simd]; [Engine.Config.of_env] reports them loudly). *)

val set_mode : mode -> unit

val on : unit -> bool
(** [mode () <> Off]: dispatch sites branch to the C kernel. *)

val with_mode : mode -> (unit -> 'a) -> 'a
(** Run [f] under a forced mode, restoring the previous mode after (also on
    exceptions).  Not atomic w.r.t. concurrent [set_mode]. *)

(** {2 CPU feature detection} *)

val have_avx2 : unit -> bool
val have_neon : unit -> bool

val features_to_string : unit -> string
(** e.g. ["avx2"], ["neon"], or ["none"] — for bench metadata. *)

(** {2 Raw stub entry points}

    Exposed for the equivalence test-suite and bench micro-loops; library
    code goes through the dispatching wrappers in [Fv]/[Ntt]/[Keccak]/
    [Reed_solomon] instead.  All operate on [int64] C-layout Bigarrays and
    perform no bounds checks: callers validate shapes first. *)

type fv = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

external fv_add : fv -> fv -> fv -> unit = "caml_nocap_fv_add" [@@noalloc]
external fv_sub : fv -> fv -> fv -> unit = "caml_nocap_fv_sub" [@@noalloc]
external fv_mul : fv -> fv -> fv -> unit = "caml_nocap_fv_mul" [@@noalloc]
external fv_scale : fv -> fv -> int64 -> unit = "caml_nocap_fv_scale" [@@noalloc]
external fv_axpy : fv -> int64 -> fv -> unit = "caml_nocap_fv_axpy" [@@noalloc]

external ntt_forward : fv -> fv -> unit = "caml_nocap_ntt_forward" [@@noalloc]
(** [ntt_forward buf tw]: in-place forward NTT of [buf] (length n, a power
    of two) against the shared twiddle table [tw] (length [n/2]). *)

external ntt_inverse : fv -> fv -> int64 -> unit = "caml_nocap_ntt_inverse" [@@noalloc]
(** [ntt_inverse buf inv_tw n_inv]: inverse NTT including the [1/n] scale. *)

external rs_encode_row : fv -> fv -> fv -> unit = "caml_nocap_rs_encode_row" [@@noalloc]
(** [rs_encode_row src dst tw]: copy [src] into [dst], zero-pad, forward
    NTT of [dst] — the fused Reed-Solomon row encode. *)

external f1600_off : fv -> int -> unit = "caml_nocap_f1600_off" [@@noalloc]
(** Keccak-f[1600] permutation of the 25 lanes at offset [off]. *)

external sha3 : Bytes.t -> Bytes.t -> unit = "caml_nocap_sha3" [@@noalloc]
(** [sha3 msg out]: SHA3-256 of [msg] into the 32-byte [out]. *)

external sha3_x4 : Bytes.t array -> Bytes.t array -> unit = "caml_nocap_sha3_x4" [@@noalloc]
(** Four equal-length messages, four 32-byte outputs; AVX2 runs the four
    sponges in 64-bit lanes of ymm registers, otherwise sequential. *)

external hash2 : string -> string -> Bytes.t -> unit = "caml_nocap_hash2" [@@noalloc]
(** SHA3-256 of the concatenation of two 32-byte strings (Merkle node). *)

external hash_gf : int64 array -> Bytes.t -> unit = "caml_nocap_hash_gf" [@@noalloc]
(** SHA3-256 of an [int64 array] absorbed as little-endian 64-bit lanes. *)

external hash_fv_stride : fv -> int -> int -> int -> Bytes.t -> unit
  = "caml_nocap_hash_fv_stride"
[@@noalloc]
(** [hash_fv_stride v pos stride count out]. *)

external col_absorb : fv -> fv -> int -> int -> int -> int -> int -> unit
  = "caml_nocap_col_absorb_byte" "caml_nocap_col_absorb"
[@@noalloc]
(** [col_absorb states flat row_stride r_lo r_hi c_lo c_hi]: incremental
    column-sponge absorption for [Keccak.Col_hash]. *)

external gl_pow : int64 -> int64 -> int64 = "caml_nocap_gl_pow"
(** Goldilocks exponentiation (test hook for the C field arithmetic). *)
