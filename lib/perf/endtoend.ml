module Cpu_model = Zk_baseline.Cpu_model
module Pipezk = Zk_baseline.Pipezk
module Gzkp = Zk_baseline.Gzkp
module Proofsize = Zk_baseline.Proofsize
module Config = Nocap_model.Config
module Workload = Nocap_model.Workload
module Simulator = Nocap_model.Simulator

type platform =
  | Groth16_cpu
  | Groth16_gpu
  | Groth16_pipezk
  | Spartan_cpu
  | Spartan_nocap

let platform_name = function
  | Groth16_cpu -> "Groth16 / CPU"
  | Groth16_gpu -> "Groth16 / GPU"
  | Groth16_pipezk -> "Groth16 / PipeZK"
  | Spartan_cpu -> "Spartan+Orion / CPU"
  | Spartan_nocap -> "Spartan+Orion / NoCap"

type breakdown = { prover : float; send : float; verifier : float }

let total b = b.prover +. b.send +. b.verifier

let link_mb_per_s = 10.0

let send_seconds bytes = bytes /. (link_mb_per_s *. 1024.0 *. 1024.0)

let nocap_prover_seconds ~n_constraints ~density =
  let wl = Workload.spartan_orion ~density ~n_constraints () in
  (Simulator.run Config.default wl).Simulator.total_seconds

let run ?engine platform ~n_constraints ?(density = 1.0) () =
  let engine = Zk_pcs.Engine.resolve engine in
  let groth16 prover =
    {
      prover;
      send = send_seconds Proofsize.groth16_proof_bytes;
      verifier = Proofsize.groth16_verifier_seconds;
    }
  in
  let spartan prover =
    {
      prover;
      send = send_seconds (Proofsize.spartan_orion_proof_bytes ~n_constraints);
      verifier = Proofsize.spartan_orion_verifier_seconds ~n_constraints;
    }
  in
  let b =
    match platform with
    | Groth16_cpu -> groth16 (Cpu_model.groth16_seconds ~n_constraints)
    | Groth16_gpu -> groth16 (Gzkp.table1_seconds *. n_constraints /. 16.0e6)
    | Groth16_pipezk -> groth16 (Pipezk.seconds ~n_constraints)
    | Spartan_cpu ->
      spartan (Cpu_model.spartan_orion_seconds ~density ~n_constraints ())
    | Spartan_nocap -> spartan (nocap_prover_seconds ~n_constraints ~density)
  in
  let key = platform_name platform in
  Zk_pcs.Engine.emit engine (key ^ "/prover_s") b.prover;
  Zk_pcs.Engine.emit engine (key ^ "/send_s") b.send;
  Zk_pcs.Engine.emit engine (key ^ "/verifier_s") b.verifier;
  b

let benchmark_breakdown platform (b : Zk_workloads.Benchmarks.t) =
  run platform ~n_constraints:b.Zk_workloads.Benchmarks.r1cs_size
    ~density:b.Zk_workloads.Benchmarks.density ()

let speedup baseline ours = total baseline /. total ours

let pcie_gbps = 64.0

let witness_upload_seconds ~n_constraints = 8.0 *. n_constraints /. (pcie_gbps *. 1e9)
