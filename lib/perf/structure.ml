module Report = Nocap_analysis.Circuit_report

(* Bridge from measured circuit structure (Nocap_analysis.Circuit_report) to
   the performance model. The simulator's per-benchmark density factors are
   expressed relative to the AES circuit (Workload.spartan_orion's [density]
   argument); this module derives that factor from two measured reports and
   checks the internal consistency of a report before the model trusts it —
   the cross-check the analysis bench runs over BENCH_analysis.json. *)

let density_relative ~anchor (r : Report.t) =
  if anchor.Report.density_factor <= 0.0 then
    invalid_arg "Structure.density_relative: anchor has no nonzeros";
  r.Report.density_factor /. anchor.Report.density_factor

let workload_of_report ?recompute ?repetitions ?code ~anchor (r : Report.t) =
  Nocap_model.Workload.spartan_orion ?recompute ?repetitions ?code
    ~density:(density_relative ~anchor r)
    ~n_constraints:(float_of_int r.Report.num_constraints)
    ()

let prover_seconds_of_report ~anchor (r : Report.t) =
  let breakdown =
    Endtoend.run Endtoend.Spartan_nocap
      ~n_constraints:(float_of_int r.Report.num_constraints)
      ~density:(density_relative ~anchor r)
      ()
  in
  breakdown.Endtoend.prover

(* The streamability premise of the SpMV mapping (paper Sec. V-A): O(1)
   nonzeros per row and most nonzeros near the diagonal. Circuits violating
   it would not enjoy the modelled vector reuse, so the bench flags them. *)
let spmv_streamable ?(max_row_nnz = 64) ?(min_band_fraction = 0.5)
    (r : Report.t) =
  let ok (m : Report.matrix_stats) =
    m.Report.row_nnz_max <= max_row_nnz
    && (m.Report.nnz = 0 || m.Report.band_within_64 >= min_band_fraction)
  in
  ok r.Report.a && ok r.Report.b && ok r.Report.c

let consistent (r : Report.t) =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let n = 1 lsl r.Report.log_size in
  let sum_nnz = r.Report.a.nnz + r.Report.b.nnz + r.Report.c.nnz in
  let frac_ok (m : Report.matrix_stats) =
    m.Report.band_within_64 >= 0.0 && m.Report.band_within_64 <= 1.0
  in
  if sum_nnz <> r.Report.total_nnz then
    err "total_nnz %d <> per-matrix sum %d" r.Report.total_nnz sum_nnz
  else if r.Report.num_constraints > n then
    err "num_constraints %d exceeds 2^log_size %d" r.Report.num_constraints n
  else if r.Report.num_witness > n / 2 || r.Report.num_io > n / 2 then
    err "live columns exceed the z-vector halves"
  else if
    r.Report.num_constraints > 0
    && abs_float
         (r.Report.density_factor
         -. (float_of_int r.Report.total_nnz
            /. float_of_int r.Report.num_constraints))
       > 1e-6
  then err "density_factor inconsistent with total_nnz / num_constraints"
  else if not (List.for_all frac_ok [ r.Report.a; r.Report.b; r.Report.c ])
  then err "band_within_64 outside [0, 1]"
  else if
    (* Every matrix entry sits in a live column, so the fan-out mass must
       equal the nonzero count exactly. *)
    abs_float
      ((r.Report.fanout.fanout_mean *. float_of_int r.Report.fanout.live_vars)
      -. float_of_int r.Report.total_nnz)
    > 0.5
  then err "fan-out mass inconsistent with total_nnz"
  else if r.Report.fanout.unused_vars > r.Report.fanout.live_vars then
    err "more unused than live columns"
  else Ok ()
