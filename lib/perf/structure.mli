(** Measured circuit structure → performance model.

    {!Nocap_model.Workload.spartan_orion} expresses matrix density relative
    to the AES benchmark; this module derives that factor from two measured
    {!Nocap_analysis.Circuit_report} values (circuit + AES anchor), builds
    the corresponding simulator workload, and validates a report's internal
    invariants — the cross-check the [analysis] bench runs over every
    circuit entry of [BENCH_analysis.json]. *)

val density_relative :
  anchor:Nocap_analysis.Circuit_report.t ->
  Nocap_analysis.Circuit_report.t ->
  float
(** Nonzeros-per-row of the report over nonzeros-per-row of the anchor
    (the AES circuit, density 1.0 by definition).
    @raise Invalid_argument if the anchor has no nonzeros. *)

val workload_of_report :
  ?recompute:bool ->
  ?repetitions:int ->
  ?code:[ `Reed_solomon | `Expander ] ->
  anchor:Nocap_analysis.Circuit_report.t ->
  Nocap_analysis.Circuit_report.t ->
  Nocap_model.Workload.t
(** The simulator workload for the reported circuit, with density measured
    rather than assumed. *)

val prover_seconds_of_report :
  anchor:Nocap_analysis.Circuit_report.t ->
  Nocap_analysis.Circuit_report.t ->
  float
(** NoCap prover seconds for the reported circuit via {!Endtoend.run}. *)

val spmv_streamable :
  ?max_row_nnz:int ->
  ?min_band_fraction:float ->
  Nocap_analysis.Circuit_report.t ->
  bool
(** Does the circuit satisfy the SpMV mapping's structure premise (paper
    Sec. V-A): every matrix row O(1)-sparse ([max_row_nnz], default 64) and
    at least [min_band_fraction] (default 0.5) of nonzeros within band 64? *)

val consistent : Nocap_analysis.Circuit_report.t -> (unit, string) result
(** Internal invariants of a report: per-matrix nonzeros sum to the total,
    the density factor matches, fan-out mass equals the nonzero count, and
    all counts respect the [2^log_size] geometry. *)
