(** End-to-end performance analysis: prover time + proof transmission over a
    10 MB/s link + verification time (Table I and Table V).

    All five prover platforms are covered: Spartan+Orion on {NoCap, CPU} and
    Groth16 on {CPU, GPU (GZKP), PipeZK}. *)

type platform =
  | Groth16_cpu
  | Groth16_gpu
  | Groth16_pipezk
  | Spartan_cpu
  | Spartan_nocap

val platform_name : platform -> string

type breakdown = {
  prover : float;
  send : float;
  verifier : float;
}

val total : breakdown -> float

val link_mb_per_s : float
(** 10 MB/s (Sec. III). *)

val run :
  ?engine:Zk_pcs.Engine.t ->
  platform ->
  n_constraints:float ->
  ?density:float ->
  unit ->
  breakdown
(** End-to-end breakdown for one platform on one statement size. The GPU
    platform is only calibrated at 16M constraints (Table I); other sizes
    scale linearly per Sec. IX-B. Each component is reported to the engine's
    trace sink (if any) under ["<platform>/{prover,send,verifier}_s"]. *)

val benchmark_breakdown : platform -> Zk_workloads.Benchmarks.t -> breakdown

val speedup : breakdown -> breakdown -> float
(** [speedup baseline ours] = total baseline / total ours. *)

val pcie_gbps : float
(** 64 GB/s: PCIe 5.0, the host link of Sec. IV-D. *)

val witness_upload_seconds : n_constraints:float -> float
(** Time to ship the wire values (8 bytes each) from the host CPU to NoCap
    before proving starts. The paper's claim that PCIe 5.0 is "more than
    enough to keep NoCap busy" (Sec. IV-D) is checked in the tests: this is
    ~1-2% of the proving time at every benchmark size. *)
