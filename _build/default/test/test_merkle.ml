(* Merkle-tree tests: paths verify, wrong anything fails. *)

module Merkle = Zk_merkle.Merkle
module Keccak = Zk_hash.Keccak
module Gf = Zk_field.Gf

let leaves n = Array.init n (fun i -> Keccak.sha3_256_string (Printf.sprintf "leaf-%d" i))

let test_roundtrip () =
  List.iter
    (fun n ->
      let ls = leaves n in
      let t = Merkle.build ls in
      Alcotest.(check int) "num_leaves" n (Merkle.num_leaves t);
      for i = 0 to n - 1 do
        let ok =
          Merkle.verify ~root:(Merkle.root t) ~index:i ~leaf:ls.(i) ~path:(Merkle.path t i)
        in
        Alcotest.(check bool) (Printf.sprintf "n=%d leaf %d verifies" n i) true ok
      done)
    [ 1; 2; 3; 7; 8; 16; 100 ]

let test_rejections () =
  let ls = leaves 16 in
  let t = Merkle.build ls in
  let root = Merkle.root t in
  let path5 = Merkle.path t 5 in
  Alcotest.(check bool) "wrong leaf" false
    (Merkle.verify ~root ~index:5 ~leaf:ls.(6) ~path:path5);
  Alcotest.(check bool) "wrong index" false
    (Merkle.verify ~root ~index:6 ~leaf:ls.(5) ~path:path5);
  Alcotest.(check bool) "wrong root" false
    (Merkle.verify ~root:(Keccak.sha3_256_string "evil") ~index:5 ~leaf:ls.(5) ~path:path5);
  let tampered = match path5 with x :: rest -> Keccak.sha3_256_string "x" :: rest @ [ x ] |> List.tl | [] -> [] in
  Alcotest.(check bool) "tampered path" false
    (Merkle.verify ~root ~index:5 ~leaf:ls.(5) ~path:tampered)

let test_depth_and_path_length () =
  let t = Merkle.build (leaves 16) in
  Alcotest.(check int) "depth 16" 4 (Merkle.depth t);
  Alcotest.(check int) "path length matches" 4 (List.length (Merkle.path t 3));
  Alcotest.(check int) "path_length 16" 4 (Merkle.path_length 16);
  Alcotest.(check int) "path_length 17" 5 (Merkle.path_length 17);
  Alcotest.(check int) "path_length 1" 0 (Merkle.path_length 1)

let test_column_leaf () =
  let col = Array.init 128 Gf.of_int in
  Alcotest.(check string) "column leaf = hash_gf"
    (Keccak.to_hex (Keccak.hash_gf col))
    (Keccak.to_hex (Merkle.leaf_of_column col))

let test_root_depends_on_all_leaves () =
  let ls = leaves 8 in
  let r1 = Merkle.root (Merkle.build ls) in
  ls.(7) <- Keccak.sha3_256_string "changed";
  let r2 = Merkle.root (Merkle.build ls) in
  Alcotest.(check bool) "root changed" false (String.equal r1 r2)

let suite =
  [
    Alcotest.test_case "build and verify" `Quick test_roundtrip;
    Alcotest.test_case "rejections" `Quick test_rejections;
    Alcotest.test_case "depth and path length" `Quick test_depth_and_path_length;
    Alcotest.test_case "column leaf" `Quick test_column_leaf;
    Alcotest.test_case "root covers all leaves" `Quick test_root_depends_on_all_leaves;
  ]
