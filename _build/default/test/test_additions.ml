(* Coverage for the late additions: polynomial division/interpolation, the
   divmod and nonzero gadgets, and the PCIe host-integration claim. *)

module Gf = Zk_field.Gf
module Dense = Zk_poly.Dense
module Builder = Zk_r1cs.Builder
module Gadgets = Zk_r1cs.Gadgets
module R1cs = Zk_r1cs.R1cs
module Endtoend = Zk_perf.Endtoend
module Rng = Zk_util.Rng

let gf = Alcotest.testable Gf.pp Gf.equal

let prop_div_rem =
  QCheck.Test.make ~count:60 ~name:"div_rem: p = q*d + r with deg r < deg d"
    QCheck.(pair (int_range 0 40) (int_range 0 20))
    (fun (dp, dd) ->
      let rng = Rng.create (Int64.of_int ((dp * 97) + dd)) in
      let p = Dense.random rng ~degree:dp in
      let d = Dense.random rng ~degree:dd in
      let q, r = Dense.div_rem p d in
      Dense.equal p (Dense.add (Dense.mul q d) r) && Dense.degree r < Dense.degree d
      || (Dense.degree r = -1 && Dense.equal p (Dense.mul q d)))

let test_div_rem_exact () =
  let rng = Rng.create 400L in
  let q = Dense.random rng ~degree:7 and d = Dense.random rng ~degree:4 in
  let p = Dense.mul q d in
  let q', r = Dense.div_rem p d in
  Alcotest.(check bool) "quotient recovered" true (Dense.equal q q');
  Alcotest.(check int) "zero remainder" (-1) (Dense.degree r);
  Alcotest.(check bool) "divide by zero raises" true
    (try
       ignore (Dense.div_rem p Dense.zero);
       false
     with Division_by_zero -> true)

let test_vanishing_and_interpolate () =
  let rng = Rng.create 401L in
  let xs = Array.init 6 (fun i -> Gf.of_int ((i * i) + 1)) in
  let z = Dense.vanishing xs in
  Array.iter (fun x -> Alcotest.check gf "root" Gf.zero (Dense.eval z x)) xs;
  Alcotest.(check int) "degree" 6 (Dense.degree z);
  let p = Dense.random rng ~degree:5 in
  let ys = Array.map (Dense.eval p) xs in
  let p' = Dense.interpolate ~xs ~ys in
  Alcotest.(check bool) "interpolation recovers p" true (Dense.equal p p');
  (* Quotient-style identity: (p - p(x0)) divisible by (X - x0). *)
  let x0 = Gf.of_int 42 in
  let shifted = Dense.sub p (Dense.constant (Dense.eval p x0)) in
  let _, r = Dense.div_rem shifted [| Gf.neg x0; Gf.one |] in
  Alcotest.(check int) "clean division" (-1) (Dense.degree r)

let test_divmod_gadget () =
  let b = Builder.create () in
  List.iter
    (fun (a, n) ->
      let wa = Builder.witness b (Gf.of_int a) in
      let q, r = Gadgets.divmod b ~width:12 wa n in
      Alcotest.check gf (Printf.sprintf "%d / %d" a n) (Gf.of_int (a / n)) (Builder.value b q);
      Alcotest.check gf (Printf.sprintf "%d mod %d" a n) (Gf.of_int (a mod n)) (Builder.value b r))
    [ (100, 7); (0, 3); (4095, 4095); (50, 100) ];
  let inst, asn = Builder.finalize b in
  Alcotest.(check bool) "satisfied" true (R1cs.satisfied inst asn)

let test_assert_nonzero () =
  let b = Builder.create () in
  Gadgets.assert_nonzero b (Builder.witness b (Gf.of_int 5));
  let inst, asn = Builder.finalize b in
  Alcotest.(check bool) "satisfied" true (R1cs.satisfied inst asn);
  Alcotest.(check bool) "zero rejected at build" true
    (try
       let b2 = Builder.create () in
       Gadgets.assert_nonzero b2 (Builder.witness b2 Gf.zero);
       false
     with Invalid_argument _ -> true);
  (* And a tampered-to-zero wire fails satisfaction. *)
  asn.R1cs.w.(0) <- Gf.zero;
  Alcotest.(check bool) "zero wire unsatisfied" false (R1cs.satisfied inst asn)

let test_pcie_never_bottlenecks () =
  (* Sec. IV-D: 64 GB/s "more than enough to keep NoCap busy" — witness
     upload stays below 2.5% of proving time on every benchmark. *)
  List.iter
    (fun (b : Zk_workloads.Benchmarks.t) ->
      let n = b.Zk_workloads.Benchmarks.r1cs_size in
      let upload = Endtoend.witness_upload_seconds ~n_constraints:n in
      let prove =
        (Nocap_model.Simulator.run Nocap_model.Config.default
           (Nocap_model.Workload.spartan_orion
              ~density:b.Zk_workloads.Benchmarks.density ~n_constraints:n ()))
          .Nocap_model.Simulator.total_seconds
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: upload %.4fs vs prove %.4fs" b.Zk_workloads.Benchmarks.name upload prove)
        true
        (upload < 0.025 *. prove))
    Zk_workloads.Benchmarks.all

let suite =
  [
    Alcotest.test_case "div_rem exact" `Quick test_div_rem_exact;
    Alcotest.test_case "vanishing and interpolate" `Quick test_vanishing_and_interpolate;
    Alcotest.test_case "divmod gadget" `Quick test_divmod_gadget;
    Alcotest.test_case "assert_nonzero" `Quick test_assert_nonzero;
    Alcotest.test_case "PCIe never bottlenecks" `Quick test_pcie_never_bottlenecks;
    QCheck_alcotest.to_alcotest prop_div_rem;
  ]
