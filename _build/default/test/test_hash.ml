(* Known-answer tests for the from-scratch SHA3-256, plus transcript
   determinism/divergence tests. *)

module Keccak = Zk_hash.Keccak
module Transcript = Zk_hash.Transcript
module Gf = Zk_field.Gf

let hex = Keccak.to_hex

let test_sha3_kats () =
  (* FIPS 202 / NIST CAVP known answers. *)
  Alcotest.(check string) "empty"
    "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"
    (hex (Keccak.sha3_256_string ""));
  Alcotest.(check string) "abc"
    "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"
    (hex (Keccak.sha3_256_string "abc"));
  Alcotest.(check string) "fox"
    "69070dda01975c8c120c3aada1b282394e7f032fa9cf32f4cb2259a0897dfc04"
    (hex (Keccak.sha3_256_string "The quick brown fox jumps over the lazy dog"));
  (* 200 bytes of 0xa3: crosses the 136-byte rate boundary (multi-block). *)
  Alcotest.(check string) "1600-bit 0xa3 message"
    "79f38adec5c20307a98ef76e8324afbfd46cfd81b22e3973c65fa1bd9de31787"
    (hex (Keccak.sha3_256 (Bytes.make 200 '\xa3')))

let test_rate_boundaries () =
  (* Exactly one rate block (136 bytes) and one byte either side: the padding
     logic must place 0x06/0x80 in a fresh block when the message fills the
     rate exactly. Compare lengths/distinctness rather than external KATs. *)
  let d135 = Keccak.sha3_256 (Bytes.make 135 'x') in
  let d136 = Keccak.sha3_256 (Bytes.make 136 'x') in
  let d137 = Keccak.sha3_256 (Bytes.make 137 'x') in
  Alcotest.(check int) "digest length" 32 (String.length d136);
  Alcotest.(check bool) "135 <> 136" false (String.equal d135 d136);
  Alcotest.(check bool) "136 <> 137" false (String.equal d136 d137)

let test_hash2 () =
  let a = Keccak.sha3_256_string "left" and b = Keccak.sha3_256_string "right" in
  Alcotest.(check string) "hash2 = sha3(a||b)"
    (hex (Keccak.sha3_256_string (a ^ b)))
    (hex (Keccak.hash2 a b));
  Alcotest.(check bool) "order matters" false
    (String.equal (Keccak.hash2 a b) (Keccak.hash2 b a))

let test_hash_gf () =
  let elems = [| Gf.of_int 1; Gf.of_int 2; Gf.of_int 3; Gf.of_int 4 |] in
  let buf = Bytes.create 32 in
  Array.iteri (fun i e -> Bytes.set_int64_le buf (8 * i) (Gf.to_int64 e)) elems;
  Alcotest.(check string) "packing is 8 LE bytes per element"
    (hex (Keccak.sha3_256 buf))
    (hex (Keccak.hash_gf elems));
  let back = Keccak.digest_to_gf (Keccak.hash_gf elems) in
  Alcotest.(check int) "digest_to_gf yields 4 elements" 4 (Array.length back);
  Array.iter (fun e -> Alcotest.(check bool) "canonical" true (Gf.is_canonical (Gf.to_int64 e))) back

let test_transcript_determinism () =
  let run () =
    let t = Transcript.create "test" in
    Transcript.absorb_gf t "v" [| Gf.of_int 5; Gf.of_int 6 |];
    Transcript.absorb_int t "n" 42;
    let c1 = Transcript.challenge_gf t "alpha" in
    let c2 = Transcript.challenge_gf t "beta" in
    (c1, c2)
  in
  let a1, a2 = run () and b1, b2 = run () in
  Alcotest.(check bool) "deterministic" true (Gf.equal a1 b1 && Gf.equal a2 b2);
  Alcotest.(check bool) "distinct challenges" false (Gf.equal a1 a2)

let test_transcript_divergence () =
  (* Different absorbed data must give different challenges. *)
  let c_of data =
    let t = Transcript.create "test" in
    Transcript.absorb_gf t "v" data;
    Transcript.challenge_gf t "alpha"
  in
  let c1 = c_of [| Gf.of_int 5 |] and c2 = c_of [| Gf.of_int 6 |] in
  Alcotest.(check bool) "divergent" false (Gf.equal c1 c2);
  (* Labels matter too. *)
  let t1 = Transcript.create "a" and t2 = Transcript.create "b" in
  Alcotest.(check bool) "domain separation" false
    (Gf.equal (Transcript.challenge_gf t1 "x") (Transcript.challenge_gf t2 "x"))

let test_challenge_indices () =
  let t = Transcript.create "ix" in
  let ix = Transcript.challenge_indices t "q" ~bound:100 ~count:189 in
  Alcotest.(check int) "count" 189 (Array.length ix);
  Array.iter (fun i -> Alcotest.(check bool) "in range" true (i >= 0 && i < 100)) ix

let prop_challenges_canonical =
  QCheck.Test.make ~count:50 ~name:"transcript challenges are canonical field elements"
    QCheck.small_string
    (fun s ->
      let t = Transcript.create "prop" in
      Transcript.absorb_bytes t "data" (Bytes.of_string s);
      Gf.is_canonical (Gf.to_int64 (Transcript.challenge_gf t "c")))

let suite =
  [
    Alcotest.test_case "SHA3-256 known answers" `Quick test_sha3_kats;
    Alcotest.test_case "rate boundaries" `Quick test_rate_boundaries;
    Alcotest.test_case "hash2" `Quick test_hash2;
    Alcotest.test_case "hash_gf packing" `Quick test_hash_gf;
    Alcotest.test_case "transcript determinism" `Quick test_transcript_determinism;
    Alcotest.test_case "transcript divergence" `Quick test_transcript_divergence;
    Alcotest.test_case "challenge indices" `Quick test_challenge_indices;
    QCheck_alcotest.to_alcotest prop_challenges_canonical;
  ]
