(* The mini-STARK (Fibonacci AIR over FRI): completeness, boundary and
   transition soundness, and trace-binding. *)

module Gf = Zk_field.Gf
module Stark = Zk_orion.Stark
module Fri = Zk_orion.Fri

let test_trace () =
  let t = Stark.trace_of ~n:8 ~a0:Gf.one ~a1:Gf.one in
  Alcotest.(check bool) "fib" true
    (Array.map Gf.to_int64 t = [| 1L; 1L; 2L; 3L; 5L; 8L; 13L; 21L |])

let test_completeness () =
  List.iter
    (fun n ->
      let a0 = Gf.of_int 3 and a1 = Gf.of_int 7 in
      let proof, last = Stark.prove ~n ~a0 ~a1 in
      match Stark.verify ~n ~a0 ~a1 ~claimed_last:last proof with
      | Ok () -> ()
      | Error e -> Alcotest.failf "n=%d: %s" n e)
    [ 4; 16; 64; 256 ]

let test_wrong_boundary_rejected () =
  let n = 64 in
  let a0 = Gf.one and a1 = Gf.one in
  let proof, last = Stark.prove ~n ~a0 ~a1 in
  (match Stark.verify ~n ~a0 ~a1 ~claimed_last:(Gf.add last Gf.one) proof with
  | Ok () -> Alcotest.fail "accepted a wrong final value"
  | Error _ -> ());
  match Stark.verify ~n ~a0:(Gf.of_int 2) ~a1 ~claimed_last:last proof with
  | Ok () -> Alcotest.fail "accepted a wrong initial value"
  | Error _ -> ()

let test_tampered_openings_rejected () =
  let n = 32 in
  let a0 = Gf.of_int 5 and a1 = Gf.of_int 9 in
  let proof, last = Stark.prove ~n ~a0 ~a1 in
  (* Corrupt one opened trace value. *)
  let opens = proof.Stark.openings.(0) in
  let v, path = opens.(0) in
  opens.(0) <- (Gf.add v Gf.one, path);
  match Stark.verify ~n ~a0 ~a1 ~claimed_last:last proof with
  | Ok () -> Alcotest.fail "accepted a tampered trace opening"
  | Error _ -> ()

let test_proof_scales_logarithmically () =
  let size n =
    let proof, _ = Stark.prove ~n ~a0:Gf.one ~a1:Gf.one in
    Stark.proof_size_bytes proof
  in
  let s64 = size 64 and s1024 = size 1024 in
  (* 16x the computation, far less than 16x the proof. *)
  Alcotest.(check bool)
    (Printf.sprintf "sublinear growth (%d -> %d)" s64 s1024)
    true
    (s1024 < 3 * s64)

let suite =
  [
    Alcotest.test_case "trace" `Quick test_trace;
    Alcotest.test_case "completeness" `Quick test_completeness;
    Alcotest.test_case "wrong boundary rejected" `Quick test_wrong_boundary_rejected;
    Alcotest.test_case "tampered openings rejected" `Quick test_tampered_openings_rejected;
    Alcotest.test_case "logarithmic proofs" `Quick test_proof_scales_logarithmically;
  ]
