(* Dense polynomial and multilinear-extension tests. *)

module Gf = Zk_field.Gf
module Dense = Zk_poly.Dense
module Mle = Zk_poly.Mle
module Rng = Zk_util.Rng

let gf = Alcotest.testable Gf.pp Gf.equal

let random_poly rng d = Dense.random rng ~degree:d

let test_degree_trim () =
  Alcotest.(check int) "zero" (-1) (Dense.degree Dense.zero);
  Alcotest.(check int) "constant" 0 (Dense.degree (Dense.constant Gf.one));
  let p = [| Gf.one; Gf.zero; Gf.zero |] in
  Alcotest.(check int) "trailing zeros" 0 (Dense.degree p);
  Alcotest.(check int) "trimmed length" 1 (Array.length (Dense.trim p))

let test_eval () =
  (* p(x) = 3 + 2x + x^2, p(5) = 38 *)
  let p = [| Gf.of_int 3; Gf.of_int 2; Gf.one |] in
  Alcotest.check gf "horner" (Gf.of_int 38) (Dense.eval p (Gf.of_int 5));
  Alcotest.check gf "at 0" (Gf.of_int 3) (Dense.eval p Gf.zero);
  Alcotest.check gf "zero poly" Gf.zero (Dense.eval Dense.zero (Gf.of_int 9))

let prop_mul_matches_naive =
  QCheck.Test.make ~count:60 ~name:"Dense.mul matches schoolbook"
    QCheck.(pair (int_range 0 80) (int_range 0 80))
    (fun (d1, d2) ->
      let rng = Rng.create (Int64.of_int ((d1 * 131) + d2)) in
      let p = random_poly rng d1 and q = random_poly rng d2 in
      Dense.equal (Dense.mul p q) (Dense.mul_naive p q))

let prop_mul_eval_homomorphism =
  QCheck.Test.make ~count:60 ~name:"(p*q)(x) = p(x) * q(x)"
    QCheck.(int_range 0 50)
    (fun d ->
      let rng = Rng.create (Int64.of_int (d + 1000)) in
      let p = random_poly rng d and q = random_poly rng (d / 2) in
      let x = Gf.random rng in
      Gf.equal (Dense.eval (Dense.mul p q) x) (Gf.mul (Dense.eval p x) (Dense.eval q x)))

let test_interpolate () =
  let rng = Rng.create 10L in
  let p = random_poly rng 5 in
  let xs = Array.init 6 Gf.of_int in
  let ys = Array.map (Dense.eval p) xs in
  let r = Gf.random rng in
  Alcotest.check gf "lagrange recovers evaluation" (Dense.eval p r)
    (Dense.interpolate_eval ~xs ~ys r);
  (* Evaluation at a node returns the tabulated value. *)
  Alcotest.check gf "at node" ys.(3) (Dense.interpolate_eval ~xs ~ys (Gf.of_int 3));
  Alcotest.check gf "small variant" (Dense.eval p r) (Dense.interpolate_eval_small ys r)

(* --- MLE --- *)

let test_mle_on_cube () =
  (* On Boolean points the MLE reproduces the table. *)
  let rng = Rng.create 11L in
  let l = 4 in
  let table = Array.init (1 lsl l) (fun _ -> Gf.random rng) in
  for i = 0 to (1 lsl l) - 1 do
    Alcotest.check gf
      (Printf.sprintf "table[%d]" i)
      table.(i)
      (Mle.eval table (Mle.eval_of_index l i))
  done

let test_eq_table () =
  let rng = Rng.create 12L in
  let l = 5 in
  let r = Array.init l (fun _ -> Gf.random rng) in
  let eq = Mle.eq_table r in
  (* sum_b eq(r, b) = 1 *)
  Alcotest.check gf "partition of unity" Gf.one (Array.fold_left Gf.add Gf.zero eq);
  (* eq-table entries agree with the closed form. *)
  for b = 0 to (1 lsl l) - 1 do
    Alcotest.check gf "pointwise" (Mle.eq_point r (Mle.eval_of_index l b)) eq.(b)
  done;
  (* eval via inner product with the eq table. *)
  let table = Array.init (1 lsl l) (fun _ -> Gf.random rng) in
  let dot = ref Gf.zero in
  Array.iteri (fun i e -> dot := Gf.add !dot (Gf.mul e table.(i))) eq;
  Alcotest.check gf "eval = <table, eq>" (Mle.eval table r) !dot

let test_fold_top () =
  let rng = Rng.create 13L in
  let l = 6 in
  let table = Array.init (1 lsl l) (fun _ -> Gf.random rng) in
  let r = Array.init l (fun _ -> Gf.random rng) in
  (* Folding variable-by-variable equals direct evaluation. *)
  let cur = ref (Array.copy table) in
  Array.iter (fun ri -> cur := Mle.fold_top !cur ri) r;
  Alcotest.check gf "fold chain" (Mle.eval table r) (!cur).(0);
  (* In-place fold agrees with the copying fold. *)
  let buf = Array.copy table in
  let len = ref (Array.length buf) in
  Array.iter (fun ri -> len := Mle.fold_top_in_place buf ~len:!len ri) r;
  Alcotest.(check int) "folded to one" 1 !len;
  Alcotest.check gf "in-place" (Mle.eval table r) buf.(0)

let prop_fold_linear =
  QCheck.Test.make ~count:40 ~name:"fold_top at 0/1 selects halves"
    QCheck.(int_range 1 6)
    (fun l ->
      let rng = Rng.create (Int64.of_int (l + 77)) in
      let n = 1 lsl l in
      let table = Array.init n (fun _ -> Gf.random rng) in
      let lo = Mle.fold_top table Gf.zero and hi = Mle.fold_top table Gf.one in
      let ok = ref true in
      for b = 0 to (n / 2) - 1 do
        if not (Gf.equal lo.(b) table.(b) && Gf.equal hi.(b) table.(b + (n / 2))) then
          ok := false
      done;
      !ok)

let test_num_vars () =
  Alcotest.(check int) "8 -> 3" 3 (Mle.num_vars (Array.make 8 Gf.zero));
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Mle: table must be a power of two") (fun () ->
      ignore (Mle.num_vars (Array.make 6 Gf.zero)))

let suite =
  [
    Alcotest.test_case "degree and trim" `Quick test_degree_trim;
    Alcotest.test_case "evaluation" `Quick test_eval;
    Alcotest.test_case "lagrange interpolation" `Quick test_interpolate;
    Alcotest.test_case "MLE on hypercube" `Quick test_mle_on_cube;
    Alcotest.test_case "eq table" `Quick test_eq_table;
    Alcotest.test_case "fold_top" `Quick test_fold_top;
    Alcotest.test_case "num_vars" `Quick test_num_vars;
    QCheck_alcotest.to_alcotest prop_mul_matches_naive;
    QCheck_alcotest.to_alcotest prop_mul_eval_homomorphism;
    QCheck_alcotest.to_alcotest prop_fold_linear;
  ]
