test/test_nocap.ml: Alcotest Array Bytes Fun Hashtbl List Nocap_model Printf Zk_field Zk_hash Zk_util
