test/test_sha256.ml: Alcotest Array Bytes Lazy String Zk_field Zk_r1cs Zk_spartan Zk_workloads
