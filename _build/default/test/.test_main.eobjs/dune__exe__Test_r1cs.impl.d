test/test_r1cs.ml: Alcotest Array Int64 List Printf QCheck QCheck_alcotest Seq Zk_field Zk_poly Zk_r1cs Zk_util
