test/test_bignum.ml: Alcotest Array Int64 List Printf QCheck QCheck_alcotest Zk_field Zk_r1cs Zk_spartan Zk_util
