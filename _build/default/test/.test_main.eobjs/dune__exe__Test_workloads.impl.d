test/test_workloads.ml: Alcotest Array List Zk_field Zk_r1cs Zk_spartan Zk_util Zk_workloads
