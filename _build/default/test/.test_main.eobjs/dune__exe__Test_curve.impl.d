test/test_curve.ml: Alcotest Array List Printf Zk_curve Zk_field Zk_util
