test/test_grand_product.ml: Alcotest Array Int64 List Printf QCheck QCheck_alcotest Zk_field Zk_hash Zk_orion Zk_poly Zk_sumcheck Zk_util
