test/test_sumcheck.ml: Alcotest Array Int64 Printf QCheck QCheck_alcotest Zk_field Zk_hash Zk_poly Zk_sumcheck Zk_util
