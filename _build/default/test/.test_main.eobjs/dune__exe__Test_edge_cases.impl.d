test/test_edge_cases.ml: Alcotest Array Int64 Nocap_model Printf Zk_field Zk_hash Zk_merkle Zk_orion Zk_poly Zk_r1cs Zk_spartan Zk_sumcheck Zk_util
