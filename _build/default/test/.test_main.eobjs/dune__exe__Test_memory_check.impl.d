test/test_memory_check.ml: Alcotest Array List Printf Zk_field Zk_hash Zk_r1cs Zk_spartan Zk_util Zk_workloads
