test/test_ntt.ml: Alcotest Array Int64 List Printf Zk_field Zk_ntt Zk_util
