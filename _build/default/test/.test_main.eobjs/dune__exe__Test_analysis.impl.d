test/test_analysis.ml: Alcotest Array List Nocap_analysis Nocap_model Printf String Zk_field Zk_r1cs Zk_util Zk_workloads
