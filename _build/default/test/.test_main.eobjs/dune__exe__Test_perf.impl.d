test/test_perf.ml: Alcotest Int64 List Printf Zk_baseline Zk_perf Zk_r1cs Zk_report Zk_spartan Zk_workloads Zk_zkdb
