test/test_merkle.ml: Alcotest Array List Printf String Zk_field Zk_hash Zk_merkle
