test/test_lang_spmv.ml: Alcotest Array Int64 List Nocap_model Printf QCheck QCheck_alcotest Zk_field Zk_r1cs Zk_spartan Zk_util Zk_workloads
