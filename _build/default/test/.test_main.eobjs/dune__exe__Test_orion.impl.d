test/test_orion.ml: Alcotest Array Int64 List Zk_ecc Zk_field Zk_hash Zk_merkle Zk_orion Zk_poly Zk_util
