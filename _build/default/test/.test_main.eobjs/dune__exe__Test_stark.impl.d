test/test_stark.ml: Alcotest Array List Printf Zk_field Zk_orion
