test/test_spartan.ml: Alcotest Array Int64 List QCheck QCheck_alcotest Zk_field Zk_orion Zk_r1cs Zk_spartan Zk_sumcheck Zk_util
