test/test_hash.ml: Alcotest Array Bytes QCheck QCheck_alcotest String Zk_field Zk_hash
