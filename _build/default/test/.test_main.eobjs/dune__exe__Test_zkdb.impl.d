test/test_zkdb.ml: Alcotest Array Zk_field Zk_util Zk_workloads Zk_zkdb
