test/test_ecc.ml: Alcotest Array Int64 List Printf QCheck QCheck_alcotest Zk_ecc Zk_field Zk_util
