test/test_additions.ml: Alcotest Array Int64 List Nocap_model Printf QCheck QCheck_alcotest Zk_field Zk_perf Zk_poly Zk_r1cs Zk_util Zk_workloads
