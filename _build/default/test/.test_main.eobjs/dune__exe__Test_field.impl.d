test/test_field.ml: Alcotest Array Int64 List Printf QCheck QCheck_alcotest Zk_field Zk_util
