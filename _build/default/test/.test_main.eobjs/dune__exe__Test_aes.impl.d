test/test_aes.ml: Alcotest Array Lazy Printf QCheck QCheck_alcotest String Zk_field Zk_r1cs Zk_spartan Zk_workloads
