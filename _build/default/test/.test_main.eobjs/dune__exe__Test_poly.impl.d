test/test_poly.ml: Alcotest Array Int64 Printf QCheck QCheck_alcotest Zk_field Zk_poly Zk_util
