test/test_fri.ml: Alcotest Array Int64 List Printf QCheck QCheck_alcotest Zk_field Zk_hash Zk_orion Zk_util
