test/test_extensions.ml: Alcotest Array Bytes Char Int64 Lazy List Nocap_model Printf QCheck QCheck_alcotest Zk_field Zk_hash Zk_ntt Zk_r1cs Zk_spartan Zk_sumcheck Zk_util Zk_workloads
