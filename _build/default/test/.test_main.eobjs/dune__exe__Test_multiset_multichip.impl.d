test/test_multiset_multichip.ml: Alcotest Int64 List Nocap_model Printf QCheck QCheck_alcotest Zk_field Zk_hash Zk_util
