(* Sparse matrices, R1CS instances, the builder DSL, and the gadget library. *)

module Gf = Zk_field.Gf
module Sparse = Zk_r1cs.Sparse
module R1cs = Zk_r1cs.R1cs
module Builder = Zk_r1cs.Builder
module Gadgets = Zk_r1cs.Gadgets
module Mle = Zk_poly.Mle
module Rng = Zk_util.Rng

let gf = Alcotest.testable Gf.pp Gf.equal

let test_sparse_spmv () =
  (* [[1 2 0] [0 0 3] [0 0 0]] * [1 1 1] = [3 3 0] *)
  let m =
    Sparse.of_entries ~nrows:3 ~ncols:3
      [ (0, 0, Gf.one); (0, 1, Gf.two); (1, 2, Gf.of_int 3) ]
  in
  let y = Sparse.spmv m [| Gf.one; Gf.one; Gf.one |] in
  Alcotest.check gf "y0" (Gf.of_int 3) y.(0);
  Alcotest.check gf "y1" (Gf.of_int 3) y.(1);
  Alcotest.check gf "y2" Gf.zero y.(2);
  Alcotest.(check int) "nnz" 3 (Sparse.nnz m)

let test_sparse_duplicates_and_zeros () =
  let m =
    Sparse.of_entries ~nrows:2 ~ncols:2
      [ (0, 0, Gf.one); (0, 0, Gf.two); (1, 1, Gf.zero) ]
  in
  Alcotest.(check int) "duplicates merged, zeros dropped" 1 (Sparse.nnz m);
  let y = Sparse.spmv m [| Gf.one; Gf.one |] in
  Alcotest.check gf "merged value" (Gf.of_int 3) y.(0)

let test_sparse_transpose () =
  let rng = Rng.create 30L in
  let n = 16 in
  let entries = ref [] in
  for _ = 1 to 40 do
    entries := (Rng.int rng n, Rng.int rng n, Gf.random rng) :: !entries
  done;
  let m = Sparse.of_entries ~nrows:n ~ncols:n !entries in
  let x = Array.init n (fun _ -> Gf.random rng) in
  let y = Array.init n (fun _ -> Gf.random rng) in
  (* <y, Mx> = <M^T y, x> *)
  let dot a b = Array.fold_left Gf.add Gf.zero (Array.map2 Gf.mul a b) in
  Alcotest.check gf "adjoint identity" (dot y (Sparse.spmv m x)) (dot (Sparse.spmv_transpose m y) x)

let test_sparse_mle_eval () =
  let rng = Rng.create 31L in
  let n = 8 in
  let m =
    Sparse.of_entries ~nrows:n ~ncols:n
      [ (0, 0, Gf.of_int 5); (3, 6, Gf.of_int 7); (7, 7, Gf.of_int 11) ]
  in
  let rx = Array.init 3 (fun _ -> Gf.random rng) in
  let ry = Array.init 3 (fun _ -> Gf.random rng) in
  let row_eq = Mle.eq_table rx and col_eq = Mle.eq_table ry in
  (* Reference: build the dense 64-entry MLE table and evaluate. *)
  let dense = Array.make (n * n) Gf.zero in
  Seq.iter (fun (r, c, v) -> dense.((r * n) + c) <- v) (Sparse.entries m);
  let expected = Mle.eval dense (Array.append rx ry) in
  Alcotest.check gf "sparse MLE = dense MLE" expected (Sparse.mle_eval m ~row_eq ~col_eq)

let test_bandwidth_profile () =
  let m =
    Sparse.of_entries ~nrows:8 ~ncols:8
      [ (0, 0, Gf.one); (1, 2, Gf.one); (5, 1, Gf.one) ]
  in
  let max_band, mean = Sparse.bandwidth_profile m in
  Alcotest.(check int) "max band" 4 max_band;
  Alcotest.(check bool) "mean band" true (abs_float (mean -. (5.0 /. 3.0)) < 1e-9)

(* --- builder --- *)

let test_builder_simple () =
  (* Prove knowledge of x, y with x * y = 15 and x + y = 8. *)
  let b = Builder.create () in
  let x = Builder.witness b (Gf.of_int 3) in
  let y = Builder.witness b (Gf.of_int 5) in
  let prod = Builder.input b (Gf.of_int 15) in
  let sum = Builder.input b (Gf.of_int 8) in
  Builder.constrain b (Builder.lc_var x) (Builder.lc_var y) (Builder.lc_var prod);
  Builder.constrain b
    (Builder.lc_add (Builder.lc_var x) (Builder.lc_var y))
    (Builder.lc_var Builder.one)
    (Builder.lc_var sum);
  let inst, asn = Builder.finalize b in
  Alcotest.(check bool) "satisfied" true (R1cs.satisfied inst asn);
  Alcotest.(check int) "constraints" 2 inst.R1cs.num_constraints;
  Alcotest.check gf "io(0) = 1" Gf.one asn.R1cs.io.(0)

let test_builder_rejects_bad_constraint () =
  let b = Builder.create () in
  let x = Builder.witness b (Gf.of_int 3) in
  Alcotest.(check bool) "raises" true
    (try
       Builder.constrain b (Builder.lc_var x) (Builder.lc_var x) (Builder.lc_const (Gf.of_int 10));
       false
     with Invalid_argument _ -> true)

let test_tampered_assignment_unsatisfied () =
  let b = Builder.create () in
  let x = Builder.witness b (Gf.of_int 3) in
  let y = Builder.witness b (Gf.of_int 5) in
  Builder.constrain b (Builder.lc_var x) (Builder.lc_var y) (Builder.lc_const (Gf.of_int 15));
  let inst, asn = Builder.finalize b in
  Alcotest.(check bool) "honest" true (R1cs.satisfied inst asn);
  asn.R1cs.w.(0) <- Gf.of_int 4;
  Alcotest.(check bool) "tampered" false (R1cs.satisfied inst asn)

(* --- gadgets --- *)

let test_gadget_arith () =
  let b = Builder.create () in
  let x = Builder.witness b (Gf.of_int 6) in
  let y = Builder.witness b (Gf.of_int 7) in
  let s = Gadgets.add b x y in
  let p = Gadgets.mul b x y in
  Alcotest.check gf "sum" (Gf.of_int 13) (Builder.value b s);
  Alcotest.check gf "product" (Gf.of_int 42) (Builder.value b p);
  let inst, asn = Builder.finalize b in
  Alcotest.(check bool) "satisfied" true (R1cs.satisfied inst asn)

let test_gadget_bits () =
  let b = Builder.create () in
  let v = Builder.witness b (Gf.of_int 0b1011010) in
  let bits = Gadgets.bits_of b ~width:8 v in
  let expect = [| 0; 1; 0; 1; 1; 0; 1; 0 |] in
  Array.iteri
    (fun i e -> Alcotest.check gf (Printf.sprintf "bit %d" i) (Gf.of_int e) (Builder.value b bits.(i)))
    expect;
  let packed = Gadgets.pack b bits in
  Alcotest.check gf "repack" (Gf.of_int 0b1011010) (Builder.value b packed);
  let inst, asn = Builder.finalize b in
  Alcotest.(check bool) "satisfied" true (R1cs.satisfied inst asn)

let test_gadget_bits_overflow_rejected () =
  let b = Builder.create () in
  let v = Builder.witness b (Gf.of_int 256) in
  Alcotest.(check bool) "reject too-wide value" true
    (try
       ignore (Gadgets.bits_of b ~width:8 v);
       false
     with Invalid_argument _ -> true)

let test_gadget_boolean_table () =
  let b = Builder.create () in
  let wire v = Builder.witness b (Gf.of_int v) in
  let check name f spec =
    List.iter
      (fun (x, y, expect) ->
        let r = f b (wire x) (wire y) in
        Alcotest.check gf (Printf.sprintf "%s %d %d" name x y) (Gf.of_int expect) (Builder.value b r))
      spec
  in
  check "xor" Gadgets.bxor [ (0, 0, 0); (0, 1, 1); (1, 0, 1); (1, 1, 0) ];
  check "and" Gadgets.band [ (0, 0, 0); (0, 1, 0); (1, 0, 0); (1, 1, 1) ];
  check "or" Gadgets.bor [ (0, 0, 0); (0, 1, 1); (1, 0, 1); (1, 1, 1) ];
  let n0 = Gadgets.bnot b (wire 0) and n1 = Gadgets.bnot b (wire 1) in
  Alcotest.check gf "not 0" Gf.one (Builder.value b n0);
  Alcotest.check gf "not 1" Gf.zero (Builder.value b n1);
  let inst, asn = Builder.finalize b in
  Alcotest.(check bool) "satisfied" true (R1cs.satisfied inst asn)

let test_gadget_select_iszero_equal () =
  let b = Builder.create () in
  let x = Builder.witness b (Gf.of_int 10) in
  let y = Builder.witness b (Gf.of_int 20) in
  let c1 = Builder.witness b Gf.one and c0 = Builder.witness b Gf.zero in
  Alcotest.check gf "select true" (Gf.of_int 10) (Builder.value b (Gadgets.select b ~cond:c1 x y));
  Alcotest.check gf "select false" (Gf.of_int 20) (Builder.value b (Gadgets.select b ~cond:c0 x y));
  let z = Builder.witness b Gf.zero in
  Alcotest.check gf "is_zero 0" Gf.one (Builder.value b (Gadgets.is_zero b z));
  Alcotest.check gf "is_zero 10" Gf.zero (Builder.value b (Gadgets.is_zero b x));
  let x' = Builder.witness b (Gf.of_int 10) in
  Alcotest.check gf "equal yes" Gf.one (Builder.value b (Gadgets.equal b x x'));
  Alcotest.check gf "equal no" Gf.zero (Builder.value b (Gadgets.equal b x y));
  let inst, asn = Builder.finalize b in
  Alcotest.(check bool) "satisfied" true (R1cs.satisfied inst asn)

let test_gadget_less_than () =
  let b = Builder.create () in
  let cases = [ (3, 5, 1); (5, 3, 0); (4, 4, 0); (0, 255, 1); (255, 0, 0) ] in
  List.iter
    (fun (x, y, expect) ->
      let vx = Builder.witness b (Gf.of_int x) and vy = Builder.witness b (Gf.of_int y) in
      let lt = Gadgets.less_than b ~width:8 vx vy in
      Alcotest.check gf (Printf.sprintf "%d < %d" x y) (Gf.of_int expect) (Builder.value b lt))
    cases;
  let inst, asn = Builder.finalize b in
  Alcotest.(check bool) "satisfied" true (R1cs.satisfied inst asn)

let test_gadget_words () =
  let b = Builder.create () in
  let wa = Gadgets.const_word b ~width:16 0b1010101010101010L in
  let wb = Gadgets.const_word b ~width:16 0b0000111100001111L in
  let x = Gadgets.xor_word b wa wb in
  let value_of word =
    Array.to_list word
    |> List.mapi (fun i v -> Int64.shift_left (Gf.to_int64 (Builder.value b v)) i)
    |> List.fold_left Int64.logor 0L
  in
  Alcotest.(check int64) "xor word" 0b1010010110100101L (value_of x);
  Alcotest.(check int64) "rotl" 0b0101010101010101L (value_of (Gadgets.rotl_word wa 1));
  let inst, asn = Builder.finalize b in
  Alcotest.(check bool) "satisfied" true (R1cs.satisfied inst asn)

let prop_random_circuits_satisfied =
  (* Random gadget soup must always finalize into a satisfied instance. *)
  QCheck.Test.make ~count:25 ~name:"random gadget circuits are satisfied"
    QCheck.(int_range 1 60)
    (fun steps ->
      let rng = Rng.create (Int64.of_int (steps * 7919)) in
      let b = Builder.create () in
      let pool = ref [ Builder.witness b (Gf.of_int (1 + Rng.int rng 1000)) ] in
      let pick () = List.nth !pool (Rng.int rng (List.length !pool)) in
      for _ = 1 to steps do
        let v =
          match Rng.int rng 4 with
          | 0 -> Gadgets.add b (pick ()) (pick ())
          | 1 -> Gadgets.mul b (pick ()) (pick ())
          | 2 -> Gadgets.is_zero b (pick ())
          | _ -> Gadgets.add_lc b (Builder.lc_add (Builder.lc_var (pick ())) (Builder.lc_const (Gf.of_int 3)))
        in
        pool := v :: !pool
      done;
      let inst, asn = Builder.finalize b in
      R1cs.satisfied inst asn)

let suite =
  [
    Alcotest.test_case "sparse spmv" `Quick test_sparse_spmv;
    Alcotest.test_case "sparse duplicates/zeros" `Quick test_sparse_duplicates_and_zeros;
    Alcotest.test_case "sparse transpose adjoint" `Quick test_sparse_transpose;
    Alcotest.test_case "sparse MLE eval" `Quick test_sparse_mle_eval;
    Alcotest.test_case "bandwidth profile" `Quick test_bandwidth_profile;
    Alcotest.test_case "builder simple" `Quick test_builder_simple;
    Alcotest.test_case "builder rejects bad constraint" `Quick test_builder_rejects_bad_constraint;
    Alcotest.test_case "tampered assignment" `Quick test_tampered_assignment_unsatisfied;
    Alcotest.test_case "gadget arithmetic" `Quick test_gadget_arith;
    Alcotest.test_case "gadget bits" `Quick test_gadget_bits;
    Alcotest.test_case "gadget bits overflow" `Quick test_gadget_bits_overflow_rejected;
    Alcotest.test_case "gadget boolean table" `Quick test_gadget_boolean_table;
    Alcotest.test_case "gadget select/is_zero/equal" `Quick test_gadget_select_iszero_equal;
    Alcotest.test_case "gadget less_than" `Quick test_gadget_less_than;
    Alcotest.test_case "gadget words" `Quick test_gadget_words;
    QCheck_alcotest.to_alcotest prop_random_circuits_satisfied;
  ]
