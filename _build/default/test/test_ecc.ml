(* Linear-code tests: Reed-Solomon (cross-checked against direct evaluation)
   and the expander ablation code; both must be linear and systematic enough
   for Orion's combination checks. *)

module Gf = Zk_field.Gf
module Rs = Zk_ecc.Reed_solomon
module Expander = Zk_ecc.Expander
module Rng = Zk_util.Rng

let gf = Alcotest.testable Gf.pp Gf.equal

let random_msg rng n = Array.init n (fun _ -> Gf.random rng)

let test_rs_blowup () =
  let rng = Rng.create 20L in
  List.iter
    (fun n ->
      let cw = Rs.encode (random_msg rng n) in
      Alcotest.(check int) (Printf.sprintf "blowup n=%d" n) (4 * n) (Array.length cw))
    [ 1; 2; 16; 128; 1024 ]

let test_rs_matches_direct_eval () =
  let rng = Rng.create 21L in
  let msg = random_msg rng 64 in
  let cw = Rs.encode msg in
  List.iter
    (fun i -> Alcotest.check gf (Printf.sprintf "position %d" i) (Rs.codeword_at msg i) cw.(i))
    [ 0; 1; 17; 100; 255 ]

let check_linear name encode rng n =
  let m1 = random_msg rng n and m2 = random_msg rng n in
  let c = Gf.random rng in
  let combo = Array.init n (fun i -> Gf.add m1.(i) (Gf.mul c m2.(i))) in
  let c1 = encode m1 and c2 = encode m2 and cc = encode combo in
  Array.iteri
    (fun j x ->
      Alcotest.check gf
        (Printf.sprintf "%s linearity at %d" name j)
        (Gf.add c1.(j) (Gf.mul c c2.(j)))
        x)
    cc

let test_rs_linear () =
  let rng = Rng.create 22L in
  check_linear "rs" Rs.encode rng 128

let test_expander_blowup () =
  let rng = Rng.create 23L in
  List.iter
    (fun n ->
      let cw = Expander.encode (random_msg rng n) in
      Alcotest.(check int) (Printf.sprintf "blowup n=%d" n) (4 * n) (Array.length cw))
    [ 16; 32; 64; 256; 1024 ]

let test_expander_linear () =
  let rng = Rng.create 24L in
  check_linear "expander" Expander.encode rng 256

let test_expander_systematic () =
  (* The message is embedded verbatim at the head of the codeword. *)
  let rng = Rng.create 25L in
  let msg = random_msg rng 128 in
  let cw = Expander.encode msg in
  Array.iteri (fun i m -> Alcotest.check gf "systematic prefix" m cw.(i)) msg

let test_expander_deterministic () =
  let rng = Rng.create 26L in
  let msg = random_msg rng 64 in
  let c1 = Expander.encode msg and c2 = Expander.encode msg in
  Array.iteri (fun i x -> Alcotest.check gf "deterministic" x c2.(i)) c1

let test_cost_models () =
  Alcotest.(check bool) "graph grows superlinearly vs base" true
    (Expander.graph_bytes 4096 > 4 * Expander.graph_bytes 512);
  Alcotest.(check int) "no gathers at base size" 0 (Expander.random_accesses 32);
  Alcotest.(check bool) "query counts per Sec. VII-A" true
    (Rs.query_count = 189 && Expander.query_count = 1222)

let prop_rs_distinct_messages_distinct_codewords =
  QCheck.Test.make ~count:30 ~name:"RS: distinct messages yield distinct codewords"
    QCheck.(pair small_nat small_nat)
    (fun (s1, s2) ->
      let n = 32 in
      let m1 = random_msg (Rng.create (Int64.of_int (s1 + 1))) n in
      let m2 = random_msg (Rng.create (Int64.of_int (s2 + 1000000))) n in
      let distinct = Array.exists2 (fun a b -> not (Gf.equal a b)) m1 m2 in
      (not distinct)
      || Array.exists2 (fun a b -> not (Gf.equal a b)) (Rs.encode m1) (Rs.encode m2))

let suite =
  [
    Alcotest.test_case "RS blowup" `Quick test_rs_blowup;
    Alcotest.test_case "RS matches direct evaluation" `Quick test_rs_matches_direct_eval;
    Alcotest.test_case "RS linearity" `Quick test_rs_linear;
    Alcotest.test_case "expander blowup" `Quick test_expander_blowup;
    Alcotest.test_case "expander linearity" `Quick test_expander_linear;
    Alcotest.test_case "expander systematic" `Quick test_expander_systematic;
    Alcotest.test_case "expander deterministic" `Quick test_expander_deterministic;
    Alcotest.test_case "cost models" `Quick test_cost_models;
    QCheck_alcotest.to_alcotest prop_rs_distinct_messages_distinct_codewords;
  ]
