(* End-to-end models (Tables I, IV, V), op-count validation, and the report
   data plumbing. *)

module Endtoend = Zk_perf.Endtoend
module Opcounts = Zk_perf.Opcounts
module Spartan = Zk_spartan.Spartan
module R1cs = Zk_r1cs.R1cs
module Synthetic = Zk_workloads.Synthetic
module Tables = Zk_report.Tables
module Figures = Zk_report.Figures

let close ?(tol = 0.02) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %.4g, got %.4g)" msg expected actual)
    true
    (abs_float (actual -. expected) <= tol *. abs_float expected)

let test_table1_totals () =
  (* Paper's Table I totals at 16M constraints. *)
  let check platform expected tol =
    let b = Endtoend.run platform ~n_constraints:16.0e6 () in
    close ~tol (Endtoend.platform_name platform) expected (Endtoend.total b)
  in
  check Endtoend.Groth16_cpu 54.00 0.01;
  check Endtoend.Groth16_gpu 37.45 0.01;
  check Endtoend.Groth16_pipezk 8.03 0.01;
  check Endtoend.Spartan_cpu 95.14 0.01;
  check Endtoend.Spartan_nocap 1.09 0.03

let test_table1_structure () =
  (* Groth16 is prover-dominated; NoCap makes proving a minority share. *)
  let g16 = Endtoend.run Endtoend.Groth16_cpu ~n_constraints:16.0e6 () in
  Alcotest.(check bool) "Groth16 prover-dominated" true
    (g16.Endtoend.prover /. Endtoend.total g16 > 0.99);
  let nocap = Endtoend.run Endtoend.Spartan_nocap ~n_constraints:16.0e6 () in
  Alcotest.(check bool) "NoCap proving ~14% of total" true
    (let f = nocap.Endtoend.prover /. Endtoend.total nocap in
     f > 0.10 && f < 0.20)

let test_table4_gmeans () =
  let _, g_cpu, g_pipezk = Tables.table4_data () in
  (* Paper: 586x and 41x; our per-benchmark densities give slightly higher
     but same-magnitude speedups. *)
  close ~tol:0.10 "gmean vs CPU" 586.0 g_cpu;
  close ~tol:0.15 "gmean vs PipeZK" 41.0 g_pipezk

let test_table5_gmean () =
  let rows, g = Tables.table5_data () in
  close ~tol:0.08 "gmean end-to-end vs PipeZK" 16.8 g;
  (* Speedups grow with circuit size (Sec. VIII-F) up to Auction's dip. *)
  let by_name n = List.find (fun (r : Tables.table5_row) -> r.Tables.t5_name = n) rows in
  Alcotest.(check bool) "Litmus > AES" true
    ((by_name "Litmus").Tables.t5_vs_pipezk > (by_name "AES").Tables.t5_vs_pipezk)

let test_fig7_shape () =
  let data = Figures.fig7_data () in
  let series name = List.assoc name data in
  let at series f = List.assoc f series in
  (* Among the FU-throughput knobs, arithmetic is the most sensitive
     (Sec. VIII-D); the register file is a capacity cliff handled below. *)
  Alcotest.(check bool) "arith most sensitive FU downward" true
    (List.for_all
       (fun (name, s) ->
         name = "arith" || name = "regfile" || at s 0.25 >= at (series "arith") 0.25)
       data);
  (* Defaults are at the knee: 4x any knob gains < 20%. *)
  List.iter
    (fun (name, s) ->
      Alcotest.(check bool) (name ^ " saturates") true (at s 4.0 < 1.25))
    data;
  (* Shrinking the register file degrades sharply. *)
  Alcotest.(check bool) "regfile cliff" true (at (series "regfile") 0.25 < 0.5)

let test_fig8_pareto () =
  let frontier = Figures.fig8_pareto ~hbm_factor:1.0 in
  Alcotest.(check bool) "nonempty" true (List.length frontier > 3);
  (* Monotone: increasing area strictly improves time along the frontier. *)
  let rec monotone = function
    | (a1, t1) :: ((a2, t2) :: _ as rest) ->
      a1 < a2 && t1 > t2 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly improving" true (monotone frontier);
  (* 2 TB/s frontier reaches faster points at higher area. *)
  let f2 = Figures.fig8_pareto ~hbm_factor:2.0 in
  let best l = List.fold_left (fun acc (_, t) -> min acc t) infinity l in
  Alcotest.(check bool) "2 TB/s reaches lower times" true (best f2 < best frontier)

let test_opcount_validation () =
  (* The closed forms must match the instrumented prover exactly. *)
  List.iter
    (fun (n_constraints, reps) ->
      let inst, asn = Synthetic.circuit ~n_constraints ~seed:(Int64.of_int n_constraints) () in
      let params = { Spartan.test_params with Spartan.repetitions = reps } in
      let _, stats = Spartan.prove params inst asn in
      let n = R1cs.size inst in
      Alcotest.(check int)
        (Printf.sprintf "sumcheck mults n=%d reps=%d" n reps)
        (Opcounts.sumcheck_mults ~n ~repetitions:reps)
        stats.Spartan.sumcheck_mults;
      Alcotest.(check int)
        (Printf.sprintf "sumcheck adds n=%d reps=%d" n reps)
        (Opcounts.sumcheck_adds ~n ~repetitions:reps)
        stats.Spartan.sumcheck_adds;
      Alcotest.(check int)
        (Printf.sprintf "spmv mults n=%d reps=%d" n reps)
        (Opcounts.spmv_mults ~nnz:(R1cs.nnz inst) ~repetitions:reps)
        stats.Spartan.spmv_mults)
    [ (100, 1); (100, 3); (700, 2) ]

let test_proofsize_fits () =
  (* The log^2 fits stay within 5% of the paper's five points. *)
  let proof = Zk_baseline.Proofsize.spartan_orion_proof_bytes in
  let verify = Zk_baseline.Proofsize.spartan_orion_verifier_seconds in
  List.iter
    (fun (n, p_mb, v_ms) ->
      close ~tol:0.05 "proof size" p_mb (proof ~n_constraints:n /. (1024.0 *. 1024.0));
      close ~tol:0.07 "verify time" v_ms (verify ~n_constraints:n *. 1000.0))
    [
      (16.0e6, 8.1, 134.0);
      (32.0e6, 8.7, 153.7);
      (98.0e6, 10.1, 198.0);
      (268.4e6, 10.9, 222.4);
      (550.0e6, 12.5, 276.1);
    ]

let test_sec3_efficiency_analysis () =
  (* The Sec. III disentanglement: 4.66 / 4.94 / (2.7 / 5.0) = 1.74x. *)
  let m = Zk_baseline.Cpu_model.serial_mult_rate_ratio in
  let w = Zk_baseline.Cpu_model.multiplies_ratio in
  let p =
    Zk_baseline.Cpu_model.parallel_speedup_spartan
    /. Zk_baseline.Cpu_model.parallel_speedup_groth16
  in
  close ~tol:0.01 "1.74x slower" 1.74 (m /. w /. p);
  (* And indeed the measured CPU times are ~1.74x apart. *)
  close ~tol:0.01 "94.2 / 53.99" (94.2 /. 53.99) (m /. w /. p)

let test_db_throughput_shape () =
  let module Zkdb = Zk_zkdb.Zkdb in
  let cpu = Zkdb.max_throughput ~platform:Zkdb.Cpu ~include_send:false ~latency_budget:1.0 in
  let nocap = Zkdb.max_throughput ~platform:Zkdb.Nocap ~include_send:false ~latency_budget:1.0 in
  Alcotest.(check bool) "CPU a handful of tx/s" true (cpu >= 1.0 && cpu < 20.0);
  Alcotest.(check bool) "NoCap hundreds-to-thousands" true (nocap > 400.0);
  Alcotest.(check bool) "2-3 orders of magnitude" true (nocap /. cpu > 100.0);
  (* The paper's 1,142 tx/s sits inside our send-inclusive..send-exclusive
     bracket. *)
  let with_send =
    Zkdb.max_throughput ~platform:Zkdb.Nocap ~include_send:true ~latency_budget:1.0
  in
  Alcotest.(check bool) "bracket contains 1142" true (with_send < 1142.0 && nocap > 1142.0)

let suite =
  [
    Alcotest.test_case "Table I totals" `Quick test_table1_totals;
    Alcotest.test_case "Table I structure" `Quick test_table1_structure;
    Alcotest.test_case "Table IV gmeans" `Quick test_table4_gmeans;
    Alcotest.test_case "Table V gmean" `Quick test_table5_gmean;
    Alcotest.test_case "Fig 7 shape" `Quick test_fig7_shape;
    Alcotest.test_case "Fig 8 Pareto" `Quick test_fig8_pareto;
    Alcotest.test_case "op-count validation" `Quick test_opcount_validation;
    Alcotest.test_case "proof-size fits" `Quick test_proofsize_fits;
    Alcotest.test_case "Sec III efficiency analysis" `Quick test_sec3_efficiency_analysis;
    Alcotest.test_case "DB throughput shape" `Quick test_db_throughput_shape;
  ]
