(* BLS12-381 G1 group law, Pippenger MSM, and the Groth16 baseline. *)

module Fq = Zk_field.Fq_bls
module Fr = Zk_field.Fr_bls
module G1 = Zk_curve.G1
module Msm = Zk_curve.Msm
module Groth16 = Zk_curve.Groth16
module Rng = Zk_util.Rng

let test_generator_on_curve () =
  Alcotest.(check bool) "generator" true (G1.is_on_curve G1.generator);
  Alcotest.(check bool) "not infinity" false (G1.is_infinity G1.generator)

let test_group_law () =
  let g = G1.generator in
  let g2 = G1.double g in
  Alcotest.(check bool) "2G on curve" true (G1.is_on_curve g2);
  Alcotest.(check bool) "G+G = 2G" true (G1.equal (G1.add g g) g2);
  let g3 = G1.add g2 g in
  Alcotest.(check bool) "2G+G = G+2G" true (G1.equal g3 (G1.add g g2));
  Alcotest.(check bool) "G + inf = G" true (G1.equal (G1.add g G1.infinity) g);
  Alcotest.(check bool) "G + (-G) = inf" true (G1.is_infinity (G1.add g (G1.neg g)));
  Alcotest.(check bool) "assoc" true
    (G1.equal (G1.add (G1.add g g2) g3) (G1.add g (G1.add g2 g3)))

let test_scalar_mul () =
  let g = G1.generator in
  Alcotest.(check bool) "0 * G = inf" true (G1.is_infinity (G1.scalar_mul Fr.zero g));
  Alcotest.(check bool) "1 * G = G" true (G1.equal (G1.scalar_mul Fr.one g) g);
  let five = G1.scalar_mul (Fr.of_int 5) g in
  let by_adds = G1.add g (G1.add g (G1.add g (G1.add g g))) in
  Alcotest.(check bool) "5 * G" true (G1.equal five by_adds);
  (* Group order: r * G = infinity. Exercise via (r-1) * G = -G. *)
  let r_minus_1 = Fr.neg Fr.one in
  Alcotest.(check bool) "(r-1) * G = -G" true
    (G1.equal (G1.scalar_mul r_minus_1 g) (G1.neg g))

let test_scalar_mul_distributes () =
  let rng = Rng.create 70L in
  let a = Fr.random rng and b = Fr.random rng in
  let g = G1.generator in
  Alcotest.(check bool) "(a+b)G = aG + bG" true
    (G1.equal
       (G1.scalar_mul (Fr.add a b) g)
       (G1.add (G1.scalar_mul a g) (G1.scalar_mul b g)))

let test_affine_roundtrip () =
  let rng = Rng.create 71L in
  let p = G1.random rng in
  (match G1.to_affine p with
  | None -> Alcotest.fail "random point was infinity"
  | Some (x, y) ->
    let q = G1.of_affine ~x ~y in
    Alcotest.(check bool) "roundtrip" true (G1.equal p q));
  Alcotest.(check bool) "infinity has no affine form" true
    (G1.to_affine G1.infinity = None)

let test_msm_matches_naive () =
  let rng = Rng.create 72L in
  List.iter
    (fun n ->
      let scalars = Array.init n (fun _ -> Fr.random rng) in
      let points = Array.init n (fun _ -> G1.random rng) in
      let expected = Msm.naive scalars points in
      Alcotest.(check bool)
        (Printf.sprintf "pippenger n=%d" n)
        true
        (G1.equal expected (Msm.pippenger scalars points));
      Alcotest.(check bool)
        (Printf.sprintf "pippenger window=3 n=%d" n)
        true
        (G1.equal expected (Msm.pippenger ~window:3 scalars points)))
    [ 1; 2; 7; 32 ]

let test_msm_edge_cases () =
  Alcotest.(check bool) "empty" true (G1.is_infinity (Msm.pippenger [||] [||]));
  let rng = Rng.create 73L in
  let p = G1.random rng in
  Alcotest.(check bool) "zero scalars" true
    (G1.is_infinity (Msm.pippenger [| Fr.zero; Fr.zero |] [| p; p |]));
  Alcotest.(check bool) "window sizing monotone" true
    (Msm.window_for 1024 >= Msm.window_for 16);
  Alcotest.(check bool) "adds estimate positive" true
    (Msm.point_adds_estimate ~n:1000 ~window:8 > 0)

(* --- Groth16 --- *)

(* x^3 + x + 5 = out (the classic toy circuit): variables
   [1; out; x; t1 = x*x; t2 = t1*x]. *)
let toy_circuit x =
  let fx = Fr.of_int x in
  let t1 = Fr.mul fx fx in
  let t2 = Fr.mul t1 fx in
  let out = Fr.add t2 (Fr.add fx (Fr.of_int 5)) in
  let circuit =
    {
      Groth16.num_vars = 5;
      num_public = 2;
      constraints =
        [|
          ([ (2, Fr.one) ], [ (2, Fr.one) ], [ (3, Fr.one) ]);
          ([ (3, Fr.one) ], [ (2, Fr.one) ], [ (4, Fr.one) ]);
          ( [ (4, Fr.one); (2, Fr.one); (0, Fr.of_int 5) ],
            [ (0, Fr.one) ],
            [ (1, Fr.one) ] );
        |];
    }
  in
  (circuit, [| Fr.one; out; fx; t1; t2 |])

let test_groth16_completeness () =
  let rng = Rng.create 74L in
  let circuit, z = toy_circuit 3 in
  Alcotest.(check bool) "satisfied" true (Groth16.satisfied circuit z);
  let s = Groth16.setup rng circuit in
  let proof = Groth16.prove rng s circuit z in
  Alcotest.(check bool) "verifies" true
    (Groth16.verify s circuit (Array.sub z 0 2) proof)

let test_groth16_wrong_public_rejected () =
  let rng = Rng.create 75L in
  let circuit, z = toy_circuit 3 in
  let s = Groth16.setup rng circuit in
  let proof = Groth16.prove rng s circuit z in
  let bad_public = [| Fr.one; Fr.of_int 999 |] in
  Alcotest.(check bool) "rejected" false (Groth16.verify s circuit bad_public proof)

let test_groth16_tampered_proof_rejected () =
  let rng = Rng.create 76L in
  let circuit, z = toy_circuit 4 in
  let s = Groth16.setup rng circuit in
  let proof = Groth16.prove rng s circuit z in
  let bad = { proof with Groth16.pi_a = Fr.add proof.Groth16.pi_a Fr.one } in
  Alcotest.(check bool) "rejected" false (Groth16.verify s circuit (Array.sub z 0 2) bad)

let test_groth16_unsatisfied_rejected () =
  let rng = Rng.create 77L in
  let circuit, z = toy_circuit 3 in
  z.(3) <- Fr.of_int 999;
  let s = Groth16.setup rng circuit in
  Alcotest.(check bool) "prove raises" true
    (try
       ignore (Groth16.prove rng s circuit z);
       false
     with Invalid_argument _ -> true)

let test_groth16_randomized_proofs_differ () =
  (* Zero-knowledge randomization: two proofs of the same statement differ. *)
  let rng = Rng.create 78L in
  let circuit, z = toy_circuit 3 in
  let s = Groth16.setup rng circuit in
  let p1 = Groth16.prove rng s circuit z in
  let p2 = Groth16.prove rng s circuit z in
  Alcotest.(check bool) "different pi_a" false (Fr.equal p1.Groth16.pi_a p2.Groth16.pi_a);
  Alcotest.(check bool) "both verify" true
    (Groth16.verify s circuit (Array.sub z 0 2) p1
    && Groth16.verify s circuit (Array.sub z 0 2) p2)

let test_groth16_larger_circuit () =
  (* Chain of squarings: exercises a 64-point NTT domain. *)
  let rng = Rng.create 79L in
  let n = 40 in
  let vals = Array.make (n + 2) Fr.one in
  vals.(1) <- Fr.of_int 7;
  for i = 2 to n + 1 do
    vals.(i) <- Fr.mul vals.(i - 1) vals.(i - 1)
  done;
  (* Shift so variable 0 is the constant 1, x is public. *)
  let z = Array.init (n + 2) (fun i -> if i = 0 then Fr.one else vals.(i)) in
  let constraints =
    Array.init n (fun i ->
        ([ (i + 1, Fr.one) ], [ (i + 1, Fr.one) ], [ (i + 2, Fr.one) ]))
  in
  let circuit = { Groth16.num_vars = n + 2; num_public = 2; constraints } in
  Alcotest.(check bool) "satisfied" true (Groth16.satisfied circuit z);
  Alcotest.(check int) "domain" 64 (Groth16.domain_size circuit);
  let s = Groth16.setup rng circuit in
  let proof = Groth16.prove rng s circuit z in
  Alcotest.(check bool) "verifies" true
    (Groth16.verify s circuit (Array.sub z 0 2) proof)

let test_workload_model () =
  let w = Groth16.prover_workload ~n:1000 in
  Alcotest.(check int) "ntt points" (7 * 1024) w.Groth16.ntt_points;
  Alcotest.(check int) "g1 points" 3000 w.Groth16.msm_g1_points;
  Alcotest.(check int) "g2 points" 1000 w.Groth16.msm_g2_points

let suite =
  [
    Alcotest.test_case "generator on curve" `Quick test_generator_on_curve;
    Alcotest.test_case "group law" `Quick test_group_law;
    Alcotest.test_case "scalar multiplication" `Quick test_scalar_mul;
    Alcotest.test_case "scalar mul distributes" `Quick test_scalar_mul_distributes;
    Alcotest.test_case "affine roundtrip" `Quick test_affine_roundtrip;
    Alcotest.test_case "MSM matches naive" `Quick test_msm_matches_naive;
    Alcotest.test_case "MSM edge cases" `Quick test_msm_edge_cases;
    Alcotest.test_case "Groth16 completeness" `Quick test_groth16_completeness;
    Alcotest.test_case "Groth16 wrong public" `Quick test_groth16_wrong_public_rejected;
    Alcotest.test_case "Groth16 tampered proof" `Quick test_groth16_tampered_proof_rejected;
    Alcotest.test_case "Groth16 unsatisfied witness" `Quick test_groth16_unsatisfied_rejected;
    Alcotest.test_case "Groth16 proofs randomized" `Quick test_groth16_randomized_proofs_differ;
    Alcotest.test_case "Groth16 larger circuit" `Quick test_groth16_larger_circuit;
    Alcotest.test_case "Groth16 workload model" `Quick test_workload_model;
  ]
