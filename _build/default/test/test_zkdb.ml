(* Verifiable database: real prove/verify round trips over batches of
   transactions, state evolution, and rejection of forged receipts. *)

module Zkdb = Zk_zkdb.Zkdb
module Litmus = Zk_workloads.Litmus_circuit
module Rng = Zk_util.Rng
module Gf = Zk_field.Gf

let test_batch_roundtrip () =
  let db = Zkdb.create ~rows:8 ~seed:11L in
  let before = Zkdb.state db in
  let rng = Rng.create 12L in
  let txs = Litmus.random_transactions rng ~rows:8 ~count:4 in
  let receipt = Zkdb.prove_batch db txs in
  Alcotest.(check bool) "verifies" true (Zkdb.verify_batch receipt);
  let after = Zkdb.state db in
  Alcotest.(check (array int)) "state advanced per the reference" (Litmus.apply before txs) after

let test_multiple_batches () =
  let db = Zkdb.create ~rows:8 ~seed:13L in
  let rng = Rng.create 14L in
  for _ = 1 to 3 do
    let txs = Litmus.random_transactions rng ~rows:8 ~count:3 in
    let receipt = Zkdb.prove_batch db txs in
    Alcotest.(check bool) "each batch verifies" true (Zkdb.verify_batch receipt)
  done

let test_forged_receipt_rejected () =
  let db = Zkdb.create ~rows:8 ~seed:15L in
  let rng = Rng.create 16L in
  let txs = Litmus.random_transactions rng ~rows:8 ~count:3 in
  let receipt = Zkdb.prove_batch db txs in
  (* Claim a different final state: flip one public output. *)
  let io = Array.copy receipt.Zkdb.io in
  let last = Array.length io - 1 in
  io.(last) <- Gf.add io.(last) Gf.one;
  let forged = { receipt with Zkdb.io } in
  Alcotest.(check bool) "forged io rejected" false (Zkdb.verify_batch forged)

let test_latency_monotone () =
  let lat b = Zkdb.batch_latency ~platform:Zkdb.Nocap ~include_send:true ~batch:b in
  Alcotest.(check bool) "monotone in batch" true (lat 10 < lat 100 && lat 100 < lat 1000);
  Alcotest.(check bool) "constraints per tx" true
    (abs_float (Zkdb.constraints_per_transaction -. 26840.0) < 1.0)

let test_throughput_zero_when_impossible () =
  Alcotest.(check (float 0.0)) "impossible budget" 0.0
    (Zkdb.max_throughput ~platform:Zkdb.Cpu ~include_send:true ~latency_budget:0.01)

let suite =
  [
    Alcotest.test_case "batch roundtrip" `Quick test_batch_roundtrip;
    Alcotest.test_case "multiple batches" `Quick test_multiple_batches;
    Alcotest.test_case "forged receipt rejected" `Quick test_forged_receipt_rejected;
    Alcotest.test_case "latency model" `Quick test_latency_monotone;
    Alcotest.test_case "impossible budget" `Quick test_throughput_zero_when_impossible;
  ]
