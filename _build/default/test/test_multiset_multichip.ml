(* Multiset hashing (the 4-gamma Spartan component) and the rack-scale
   multi-accelerator model (Sec. X). *)

module Gf = Zk_field.Gf
module Multiset = Zk_hash.Multiset_hash
module Transcript = Zk_hash.Transcript
module Multichip = Nocap_model.Multichip
module Rng = Zk_util.Rng

let params () = Multiset.params_of_transcript (Transcript.create "ms-test")

let test_permutation_invariance () =
  let ps = params () in
  let xs = List.init 20 (fun i -> Gf.of_int ((i * 31) + 5)) in
  let shuffled = List.rev xs in
  Alcotest.(check bool) "order does not matter" true
    (Multiset.equal (Multiset.digest_of_list ps xs) (Multiset.digest_of_list ps shuffled))

let test_multiplicity_matters () =
  let ps = params () in
  let a = Multiset.digest_of_list ps [ Gf.of_int 3; Gf.of_int 3; Gf.of_int 5 ] in
  let b = Multiset.digest_of_list ps [ Gf.of_int 3; Gf.of_int 5; Gf.of_int 5 ] in
  Alcotest.(check bool) "different multiplicities differ" false (Multiset.equal a b)

let test_union_homomorphism () =
  let ps = params () in
  let xs = [ Gf.of_int 1; Gf.of_int 2 ] and ys = [ Gf.of_int 9; Gf.of_int 2 ] in
  Alcotest.(check bool) "union = concat" true
    (Multiset.equal
       (Multiset.union (Multiset.digest_of_list ps xs) (Multiset.digest_of_list ps ys))
       (Multiset.digest_of_list ps (xs @ ys)))

let test_tuples () =
  let ps = params () in
  let d1 = Multiset.add_tuple (Multiset.empty ps) [| Gf.of_int 1; Gf.of_int 2 |] in
  let d2 = Multiset.add_tuple (Multiset.empty ps) [| Gf.of_int 2; Gf.of_int 1 |] in
  Alcotest.(check bool) "tuple order matters" false (Multiset.equal d1 d2);
  Alcotest.(check int) "4 instantiations" 4 Multiset.instantiations;
  Alcotest.(check int) "mults per element" 4 Multiset.mults_per_element

let prop_random_collision_free =
  (* Random distinct multisets must not collide (probability ~ n/p^4). *)
  QCheck.Test.make ~count:50 ~name:"multiset digests separate random multisets"
    QCheck.(pair small_nat small_nat)
    (fun (s1, s2) ->
      let ps = params () in
      let mk seed =
        let rng = Rng.create (Int64.of_int (seed + 1)) in
        List.init 10 (fun _ -> Gf.random rng)
      in
      s1 = s2
      || not (Multiset.equal (Multiset.digest_of_list ps (mk s1)) (Multiset.digest_of_list ps (mk s2))))

(* --- multichip --- *)

let test_multichip_single () =
  let r = Multichip.run ~chips:1 ~n_constraints:16.0e6 () in
  Alcotest.(check (float 1e-9)) "speedup 1" 1.0 r.Multichip.speedup;
  Alcotest.(check (float 1e-9)) "no exchange" 0.0 r.Multichip.exchange_seconds

let test_multichip_scaling () =
  let rs = Multichip.sweep ~n_constraints:550.0e6 ~chips:[ 1; 2; 4; 8; 16 ] () in
  (* Speedup grows with chips but sublinearly (aggregation overhead). *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      a.Multichip.speedup < b.Multichip.speedup && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "speedup monotone" true (monotone rs);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "efficiency <= 1 at %d chips" r.Multichip.chips)
        true
        (r.Multichip.efficiency <= 1.0 +. 1e-9))
    rs;
  let r16 = List.nth rs 4 in
  Alcotest.(check bool) "16 chips give real speedup" true (r16.Multichip.speedup > 8.0);
  Alcotest.(check bool) "but not ideal" true (r16.Multichip.speedup < 16.0)

let test_multichip_interconnect_sensitivity () =
  let fast = Multichip.run ~interconnect_gbps:256.0 ~chips:8 ~n_constraints:268.4e6 () in
  let slow = Multichip.run ~interconnect_gbps:1.0 ~chips:8 ~n_constraints:268.4e6 () in
  Alcotest.(check bool) "slow interconnect hurts" true
    (slow.Multichip.total_seconds > fast.Multichip.total_seconds)

let suite =
  [
    Alcotest.test_case "permutation invariance" `Quick test_permutation_invariance;
    Alcotest.test_case "multiplicity matters" `Quick test_multiplicity_matters;
    Alcotest.test_case "union homomorphism" `Quick test_union_homomorphism;
    Alcotest.test_case "tuples" `Quick test_tuples;
    Alcotest.test_case "multichip single" `Quick test_multichip_single;
    Alcotest.test_case "multichip scaling" `Quick test_multichip_scaling;
    Alcotest.test_case "interconnect sensitivity" `Quick test_multichip_interconnect_sensitivity;
    QCheck_alcotest.to_alcotest prop_random_collision_free;
  ]
