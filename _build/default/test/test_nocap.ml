(* NoCap accelerator model tests: timing calibration against the paper's
   published numbers, area/power models, the ISA-level VM, and the static
   scheduler. *)

module Config = Nocap_model.Config
module Workload = Nocap_model.Workload
module Simulator = Nocap_model.Simulator
module Area = Nocap_model.Area
module Power = Nocap_model.Power
module Isa = Nocap_model.Isa
module Vm = Nocap_model.Vm
module Schedule = Nocap_model.Schedule
module Kernels = Nocap_model.Kernels
module Gf = Zk_field.Gf
module Rng = Zk_util.Rng

let gf = Alcotest.testable Gf.pp Gf.equal

let close ?(tol = 0.02) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %.4g, got %.4g)" msg expected actual)
    true
    (abs_float (actual -. expected) <= tol *. abs_float expected)

let default_run n = Simulator.run Config.default (Workload.spartan_orion ~n_constraints:n ())

let test_table4_calibration () =
  (* AES: 16M constraints -> 151.3 ms (Table IV). *)
  let r = default_run 16.0e6 in
  close ~tol:0.01 "AES proving time" 0.1513 r.Simulator.total_seconds;
  (* Linear scaling over the relevant range (Sec. VIII-B). *)
  let r2 = default_run 32.0e6 in
  close ~tol:0.001 "linear scaling" (2.0 *. r.Simulator.total_seconds) r2.Simulator.total_seconds

let test_fig6a_breakdown () =
  let r = default_run 16.0e6 in
  (* ~70% sumcheck, 9% RS, 12% poly, 5% merkle, 0.5% spmv (Fig. 6a). *)
  close ~tol:0.08 "sumcheck share" 0.72 (Simulator.task_fraction r Workload.Sumcheck);
  close ~tol:0.05 "reed-solomon share" 0.09 (Simulator.task_fraction r Workload.Reed_solomon);
  close ~tol:0.05 "poly share" 0.12 (Simulator.task_fraction r Workload.Poly_arith);
  close ~tol:0.05 "merkle share" 0.05 (Simulator.task_fraction r Workload.Merkle_tree);
  close ~tol:0.2 "spmv share" 0.005 (Simulator.task_fraction r Workload.Spmv);
  (* Sumcheck dominates traffic too (Fig. 6b); spmv is ~1%. *)
  Alcotest.(check bool) "sumcheck traffic dominant" true
    (Simulator.traffic_fraction r Workload.Sumcheck > 0.5);
  Alcotest.(check bool) "spmv traffic tiny" true
    (Simulator.traffic_fraction r Workload.Spmv < 0.02);
  (* "Overall utilization of compute resources is 60%". *)
  close ~tol:0.05 "compute utilization" 0.60 r.Simulator.compute_utilization

let test_recompute_ablation () =
  (* Sec. VIII-C: recomputation improves NoCap by 1.1x and cuts sumcheck
     traffic by 31%. *)
  let on = default_run 16.0e6 in
  let off =
    Simulator.run Config.default
      (Workload.spartan_orion ~recompute:false ~n_constraints:16.0e6 ())
  in
  close ~tol:0.02 "1.1x speedup" 1.10 (off.Simulator.total_seconds /. on.Simulator.total_seconds);
  let traffic r =
    let t = List.find (fun (x : Simulator.task_timing) -> x.Simulator.task = Workload.Sumcheck) r.Simulator.tasks in
    t.Simulator.hbm_bytes
  in
  close ~tol:0.02 "31% sumcheck traffic cut" 0.69 (traffic on /. traffic off)

let test_area_table2 () =
  let b = Area.of_config Config.default in
  close ~tol:0.001 "NTT FU" 1.80 b.Area.ntt_fu;
  close ~tol:0.001 "Multiply FU" 6.34 b.Area.mul_fu;
  close ~tol:0.001 "Add FU" 0.96 b.Area.add_fu;
  close ~tol:0.001 "Hash FU" 0.84 b.Area.hash_fu;
  close ~tol:0.01 "compute total" 9.95 (Area.compute_total b);
  close ~tol:0.001 "regfile" 6.01 b.Area.regfile;
  close ~tol:0.001 "Benes" 0.11 b.Area.benes;
  close ~tol:0.001 "memory interface" 29.80 b.Area.mem_interface;
  close ~tol:0.01 "total" 45.87 (Area.total b);
  (* Scaling: halving arith lanes halves their area; 2 TB/s needs 4 PHYs. *)
  let half = Config.scale_fu Config.default `Arith 0.5 in
  close ~tol:0.01 "half mul area" 3.17 (Area.of_config half).Area.mul_fu;
  let big_bw = Config.scale_hbm Config.default 2.0 in
  close ~tol:0.01 "4 PHYs at 2 TB/s" 59.6 (Area.of_config big_bw).Area.mem_interface

let test_power_fig5 () =
  let r = default_run 16.0e6 in
  let p = Power.of_result r in
  close ~tol:0.05 "62 W total" 62.0 (Power.total p);
  let fu, rf, hbm = Power.fractions p in
  close ~tol:0.15 "FU share 13%" 0.13 fu;
  close ~tol:0.08 "regfile share 44%" 0.44 rf;
  close ~tol:0.08 "HBM share 42%" 0.42 hbm

let test_sensitivity_directions () =
  (* Fig. 7: decreasing any resource degrades performance quickly; increasing
     past the chosen point helps little. *)
  let base = (default_run 16.0e6).Simulator.total_seconds in
  let time cfg =
    (Simulator.run cfg (Workload.spartan_orion ~n_constraints:16.0e6 ())).Simulator.total_seconds
  in
  let arith_half = time (Config.scale_fu Config.default `Arith 0.5) in
  let arith_double = time (Config.scale_fu Config.default `Arith 2.0) in
  Alcotest.(check bool) "halving arith hurts a lot" true (arith_half > 1.4 *. base);
  Alcotest.(check bool) "doubling arith helps little" true
    (arith_double > 0.75 *. base && arith_double < base);
  let hbm_half = time (Config.scale_hbm Config.default 0.5) in
  Alcotest.(check bool) "halving HBM hurts" true (hbm_half > 1.15 *. base);
  let hash_half = time (Config.scale_fu Config.default `Hash 0.5) in
  Alcotest.(check bool) "halving hash hurts mildly" true
    (hash_half > base && hash_half < arith_half);
  (* Register file: growing is free, shrinking spills (Sec. VIII-D). *)
  let rf_double = time (Config.scale_regfile Config.default 2.0) in
  close ~tol:0.001 "bigger regfile: no change" base rf_double;
  let rf_half = time (Config.scale_regfile Config.default 0.5) in
  Alcotest.(check bool) "smaller regfile degrades drastically" true (rf_half > 1.2 *. base)

let test_expander_ablation () =
  (* Replacing Reed-Solomon with the expander code makes encoding
     memory-bound and slows the accelerator substantially (Sec. II). *)
  let rs = default_run 16.0e6 in
  let exp_r =
    Simulator.run Config.default
      (Workload.spartan_orion ~code:`Expander ~n_constraints:16.0e6 ())
  in
  Alcotest.(check bool) "expander slower" true
    (exp_r.Simulator.total_seconds > 1.3 *. rs.Simulator.total_seconds);
  let enc = List.find (fun (t : Simulator.task_timing) -> t.Simulator.task = Workload.Reed_solomon) exp_r.Simulator.tasks in
  Alcotest.(check bool) "encoding memory-bound" true (enc.Simulator.bound_by = Simulator.Hbm)

(* --- ISA-level VM and scheduler --- *)

let test_vm_elementwise () =
  let k = 64 in
  let vm = Vm.create ~vector_len:k ~num_regs:8 ~mem_slots:4 in
  let rng = Rng.create 80L in
  let a = Array.init k (fun _ -> Gf.random rng) in
  let b = Array.init k (fun _ -> Gf.random rng) in
  Vm.write_mem vm 0 a;
  Vm.write_mem vm 1 b;
  Vm.exec vm Kernels.elementwise_mul.Kernels.program;
  let out = Vm.read_mem vm Kernels.elementwise_mul.Kernels.output_slot in
  Array.iteri (fun i x -> Alcotest.check gf "product" (Gf.mul a.(i) b.(i)) x) out

let test_vm_sumcheck_round () =
  let k = 128 in
  let vm = Vm.create ~vector_len:k ~num_regs:8 ~mem_slots:8 in
  let rng = Rng.create 81L in
  let lo = Array.init k (fun _ -> Gf.random rng) in
  let hi = Array.init k (fun _ -> Gf.random rng) in
  let r = Gf.random rng in
  Vm.write_mem vm 0 lo;
  Vm.write_mem vm 1 hi;
  Vm.write_mem vm 4 (Array.make k r);
  Vm.exec vm (Kernels.sumcheck_round ~vector_len:k).Kernels.program;
  let g0 = (Vm.read_mem vm 2).(0) and g1 = (Vm.read_mem vm 3).(0) in
  Alcotest.check gf "g(0) = sum of low half" (Array.fold_left Gf.add Gf.zero lo) g0;
  Alcotest.check gf "g(1) = sum of high half" (Array.fold_left Gf.add Gf.zero hi) g1;
  let folded = Vm.read_mem vm 5 in
  Array.iteri
    (fun i x ->
      Alcotest.check gf "fold" (Gf.add lo.(i) (Gf.mul r (Gf.sub hi.(i) lo.(i)))) x)
    folded

let test_vm_merkle_level () =
  let k = 64 in
  (* 16 digests of 4 lanes each -> 8 parent digests. *)
  let vm = Vm.create ~vector_len:k ~num_regs:8 ~mem_slots:4 in
  let rng = Rng.create 82L in
  let leaves = Array.init k (fun _ -> Gf.random rng) in
  Vm.write_mem vm 0 leaves;
  Vm.exec vm (Kernels.merkle_level ~vector_len:k).Kernels.program;
  let out = Vm.read_mem vm 1 in
  let digest_of_group v g =
    let bytes = Bytes.create 32 in
    for i = 0 to 3 do
      Bytes.set_int64_le bytes (8 * i) (Gf.to_int64 v.((4 * g) + i))
    done;
    Bytes.unsafe_to_string bytes
  in
  for parent = 0 to (k / 8) - 1 do
    let expected =
      Zk_hash.Keccak.hash2 (digest_of_group leaves (2 * parent)) (digest_of_group leaves ((2 * parent) + 1))
    in
    let got = Zk_hash.Keccak.digest_to_gf expected in
    for i = 0 to 3 do
      Alcotest.check gf
        (Printf.sprintf "parent %d word %d" parent i)
        got.(i)
        out.((4 * parent) + i)
    done
  done

let test_vm_poly_mul () =
  let k = 32 in
  let vm = Vm.create ~vector_len:k ~num_regs:8 ~mem_slots:4 in
  let rng = Rng.create 83L in
  let a = Array.init k (fun _ -> Gf.random rng) in
  let b = Array.init k (fun _ -> Gf.random rng) in
  Vm.write_mem vm 0 a;
  Vm.write_mem vm 1 b;
  Vm.exec vm Kernels.poly_mul_cyclic.Kernels.program;
  let out = Vm.read_mem vm 2 in
  for i = 0 to k - 1 do
    let expected = ref Gf.zero in
    for j = 0 to k - 1 do
      expected := Gf.add !expected (Gf.mul a.(j) b.((i - j + k) mod k))
    done;
    Alcotest.check gf (Printf.sprintf "conv %d" i) !expected out.(i)
  done

let test_interleave_perm () =
  let perm = Isa.interleave_perm ~len:16 ~group:1 in
  (* Chunks of 2: [c0 c1 c2 c3 c4 c5 c6 c7] -> [c0 c2 c4 c6 c1 c3 c5 c7]. *)
  Alcotest.(check (array int)) "group 1"
    [| 0; 1; 4; 5; 8; 9; 12; 13; 2; 3; 6; 7; 10; 11; 14; 15 |]
    perm;
  (* Always a permutation. *)
  let p = Isa.interleave_perm ~len:64 ~group:2 in
  let seen = Array.make 64 false in
  Array.iter (fun i -> seen.(i) <- true) p;
  Alcotest.(check bool) "bijective" true (Array.for_all Fun.id seen)

let test_schedule () =
  let k = 2048 in
  let kern = Kernels.sumcheck_round ~vector_len:k in
  let sched = Schedule.run Config.default ~vector_len:k kern.Kernels.program in
  Alcotest.(check bool) "positive makespan" true (sched.Schedule.makespan > 0);
  (* Data dependencies respected: each instruction issues no earlier than the
     finish of the producers of its sources. *)
  let finish_of = Hashtbl.create 16 in
  List.iter
    (fun (s : Schedule.slot) ->
      List.iter
        (fun r ->
          match Hashtbl.find_opt finish_of r with
          | Some f -> Alcotest.(check bool) "RAW respected" true (s.Schedule.issue >= f)
          | None -> ())
        (Isa.reads s.Schedule.instr);
      match Isa.writes s.Schedule.instr with
      | Some d -> Hashtbl.replace finish_of d s.Schedule.finish
      | None -> ())
    sched.Schedule.slots;
  (* Occupancy model: a 2048-element Vmul on 2048 lanes takes 1 cycle;
     a Vhash (128 lanes) takes 16. *)
  Alcotest.(check int) "vmul occupancy" 1
    (Schedule.occupancy Config.default ~vector_len:k (Isa.Vmul (0, 1, 2)));
  Alcotest.(check int) "vhash occupancy" 16
    (Schedule.occupancy Config.default ~vector_len:k (Isa.Vhash (0, 1, 2)));
  (* Halving the hash lanes doubles Vhash occupancy. *)
  Alcotest.(check int) "vhash occupancy scales" 32
    (Schedule.occupancy (Config.scale_fu Config.default `Hash 0.5) ~vector_len:k
       (Isa.Vhash (0, 1, 2)))

let test_schedule_vs_naive_serial () =
  (* Static scheduling should beat naive serial issue (overlap across FUs). *)
  let k = 2048 in
  let prog =
    [
      Isa.Vload (0, 0);
      Isa.Vload (1, 1);
      Isa.Vmul (2, 0, 0);
      Isa.Vhash (3, 1, 1);
      (* independent of the multiply *)
      Isa.Vstore (2, 2);
      Isa.Vstore (3, 3);
    ]
  in
  let sched = Schedule.run Config.default ~vector_len:k prog in
  let serial =
    List.fold_left
      (fun acc i -> acc + Schedule.latency Config.default ~vector_len:k i)
      0 prog
  in
  Alcotest.(check bool) "overlap shortens the schedule" true
    (sched.Schedule.makespan < serial)

let suite =
  [
    Alcotest.test_case "Table IV calibration" `Quick test_table4_calibration;
    Alcotest.test_case "Fig 6a breakdown" `Quick test_fig6a_breakdown;
    Alcotest.test_case "recompute ablation" `Quick test_recompute_ablation;
    Alcotest.test_case "Table II area" `Quick test_area_table2;
    Alcotest.test_case "Fig 5 power" `Quick test_power_fig5;
    Alcotest.test_case "Fig 7 sensitivity directions" `Quick test_sensitivity_directions;
    Alcotest.test_case "expander ablation" `Quick test_expander_ablation;
    Alcotest.test_case "VM elementwise" `Quick test_vm_elementwise;
    Alcotest.test_case "VM sumcheck round" `Quick test_vm_sumcheck_round;
    Alcotest.test_case "VM merkle level" `Quick test_vm_merkle_level;
    Alcotest.test_case "VM poly mul" `Quick test_vm_poly_mul;
    Alcotest.test_case "interleave permutation" `Quick test_interleave_perm;
    Alcotest.test_case "static scheduler" `Quick test_schedule;
    Alcotest.test_case "schedule overlaps FUs" `Quick test_schedule_vs_naive_serial;
  ]
