(* FRI low-degree test: completeness across sizes, rejection of
   out-of-degree claims and tampered proofs — the second hash-based PCS
   demonstrating NoCap's generality claim (Sec. IV-E). *)

module Gf = Zk_field.Gf
module Fri = Zk_orion.Fri
module Transcript = Zk_hash.Transcript
module Rng = Zk_util.Rng

let params = Fri.default_params

let prove_poly ~seed n =
  let rng = Rng.create seed in
  let coeffs = Array.init n (fun _ -> Gf.random rng) in
  let t = Transcript.create "fri-test" in
  (coeffs, Fri.prove params t coeffs)

let verify ~degree_bound proof =
  let t = Transcript.create "fri-test" in
  Fri.verify params t ~degree_bound proof

let test_completeness () =
  List.iter
    (fun n ->
      let _, proof = prove_poly ~seed:(Int64.of_int (700 + n)) n in
      match verify ~degree_bound:n proof with
      | Ok () -> ()
      | Error e -> Alcotest.failf "n=%d: %s" n e)
    [ 1; 2; 8; 64; 256; 1024 ]

let test_constant_poly () =
  let t = Transcript.create "fri-test" in
  let proof = Fri.prove params t [| Gf.of_int 7; Gf.zero; Gf.zero; Gf.zero |] in
  (match verify ~degree_bound:4 proof with
  | Ok () -> ()
  | Error e -> Alcotest.failf "constant: %s" e);
  Alcotest.(check bool) "constant recovered" true
    (Gf.equal proof.Fri.final_constant (Gf.of_int 7))

let test_degree_cheat_rejected () =
  (* A degree-2n polynomial committed against a degree-n bound: forge by
     proving at the larger bound and verifying at the smaller one. *)
  let n = 64 in
  let _, proof = prove_poly ~seed:701L (2 * n) in
  match verify ~degree_bound:n proof with
  | Ok () -> Alcotest.fail "accepted an out-of-degree polynomial"
  | Error _ -> ()

let test_tampered_constant_rejected () =
  let _, proof = prove_poly ~seed:702L 128 in
  let bad = { proof with Fri.final_constant = Gf.add proof.Fri.final_constant Gf.one } in
  match verify ~degree_bound:128 bad with
  | Ok () -> Alcotest.fail "accepted a tampered constant"
  | Error _ -> ()

let test_tampered_layer_rejected () =
  let _, proof = prove_poly ~seed:703L 128 in
  let q = proof.Fri.queries.(3) in
  let a, b, p1, p2 = q.Fri.layers.(1) in
  q.Fri.layers.(1) <- (Gf.add a Gf.one, b, p1, p2);
  match verify ~degree_bound:128 proof with
  | Ok () -> Alcotest.fail "accepted a tampered opening"
  | Error _ -> ()

let test_wrong_transcript_rejected () =
  let _, proof = prove_poly ~seed:704L 64 in
  let t = Transcript.create "some-other-domain" in
  match Fri.verify params t ~degree_bound:64 proof with
  | Ok () -> Alcotest.fail "accepted under divergent challenges"
  | Error _ -> ()

let test_proof_size () =
  let _, proof = prove_poly ~seed:705L 1024 in
  let sz = Fri.proof_size_bytes proof in
  (* Logarithmic layers x 30 queries x (pair + path): tens of KB, far below
     the committed 4096-point table. *)
  Alcotest.(check bool) (Printf.sprintf "size %d plausible" sz) true
    (sz > 10_000 && sz < 400_000)

let prop_random_sizes =
  QCheck.Test.make ~count:10 ~name:"FRI roundtrip at random sizes"
    QCheck.(int_range 0 7)
    (fun log_n ->
      let n = 1 lsl log_n in
      let _, proof = prove_poly ~seed:(Int64.of_int (800 + log_n)) n in
      match verify ~degree_bound:n proof with Ok () -> true | Error _ -> false)

let suite =
  [
    Alcotest.test_case "completeness" `Quick test_completeness;
    Alcotest.test_case "constant polynomial" `Quick test_constant_poly;
    Alcotest.test_case "degree cheat rejected" `Quick test_degree_cheat_rejected;
    Alcotest.test_case "tampered constant rejected" `Quick test_tampered_constant_rejected;
    Alcotest.test_case "tampered layer rejected" `Quick test_tampered_layer_rejected;
    Alcotest.test_case "wrong transcript rejected" `Quick test_wrong_transcript_rejected;
    Alcotest.test_case "proof size" `Quick test_proof_size;
    QCheck_alcotest.to_alcotest prop_random_sizes;
  ]
