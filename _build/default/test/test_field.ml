(* Unit and property tests for the Goldilocks-64 field and the multi-limb
   Montgomery fields. *)

module Gf = Zk_field.Gf
module Limbs = Zk_field.Limbs
module Fr = Zk_field.Fr_bls
module Fq = Zk_field.Fq_bls
module Rng = Zk_util.Rng

let gf_testable = Alcotest.testable Gf.pp Gf.equal

(* Reference multiplication mod p by double-and-add over the bits of b:
   independent of the 128-bit reduction path under test. *)
let mul_ref a b =
  let acc = ref Gf.zero in
  for i = 63 downto 0 do
    acc := Gf.add !acc !acc;
    if Int64.logand (Int64.shift_right_logical b i) 1L = 1L then acc := Gf.add !acc a
  done;
  !acc

let arb_gf =
  QCheck.make
    ~print:(fun x -> Gf.to_string x)
    QCheck.Gen.(map (fun (a, b) -> Gf.of_int64 (Int64.logor (Int64.shift_left (Int64.of_int a) 32) (Int64.of_int b)))
                  (pair (int_bound 0xFFFFFFFF) (int_bound 0xFFFFFFFF)))

let test_constants () =
  Alcotest.(check int64) "p" 0xFFFF_FFFF_0000_0001L Gf.p;
  Alcotest.check gf_testable "1+1=2" Gf.two (Gf.add Gf.one Gf.one);
  Alcotest.check gf_testable "p-1 = -1" (Gf.neg Gf.one) (Gf.of_int64 (Int64.sub Gf.p 1L));
  Alcotest.check gf_testable "(-1)^2 = 1" Gf.one (Gf.square (Gf.neg Gf.one))

let test_overflow_edges () =
  (* Values chosen to exercise every carry/borrow branch in add/sub/mul. *)
  let near_p = Gf.of_int64 (Int64.sub Gf.p 1L) in
  Alcotest.check gf_testable "(p-1)+(p-1)" (Gf.sub near_p Gf.one) (Gf.add near_p near_p);
  Alcotest.check gf_testable "0-(p-1) = 1" Gf.one (Gf.sub Gf.zero near_p);
  Alcotest.check gf_testable "(p-1)*(p-1)" (mul_ref near_p near_p) (Gf.mul near_p near_p);
  let x = Gf.of_int64 0xFFFF_FFFEL in
  Alcotest.check gf_testable "epsilon-boundary mul" (mul_ref x x) (Gf.mul x x);
  (* 2^64 mod p = 2^32 - 1. *)
  Alcotest.check gf_testable "2^64 reduction" (Gf.of_int64 0xFFFF_FFFFL)
    (Gf.reduce128 ~lo:0L ~hi:1L);
  (* 2^96 mod p = p - 1. *)
  Alcotest.check gf_testable "2^96 = -1" (Gf.neg Gf.one)
    (Gf.reduce128 ~lo:0L ~hi:0x1_0000_0000L)

let test_of_int_negative () =
  Alcotest.check gf_testable "of_int (-1)" (Gf.neg Gf.one) (Gf.of_int (-1));
  Alcotest.check gf_testable "of_int (-5) + 5 = 0" Gf.zero
    (Gf.add (Gf.of_int (-5)) (Gf.of_int 5))

let test_pow_inv () =
  let rng = Rng.create 42L in
  for _ = 1 to 50 do
    let x = Gf.random rng in
    if not (Gf.equal x Gf.zero) then begin
      Alcotest.check gf_testable "x * x^-1 = 1" Gf.one (Gf.mul x (Gf.inv x));
      Alcotest.check gf_testable "x^p = x (Fermat)" x (Gf.pow x Gf.p)
    end
  done;
  Alcotest.check gf_testable "pow x 0" Gf.one (Gf.pow (Gf.of_int 12345) 0L);
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (Gf.inv Gf.zero))

let test_batch_inv () =
  let rng = Rng.create 7L in
  let xs = Array.init 33 (fun _ -> Gf.random rng) in
  let xs = Array.map (fun x -> if Gf.equal x Gf.zero then Gf.one else x) xs in
  let invs = Gf.batch_inv xs in
  Array.iteri
    (fun i x -> Alcotest.check gf_testable "batch inv" (Gf.inv x) invs.(i))
    xs;
  Alcotest.(check int) "empty" 0 (Array.length (Gf.batch_inv [||]))

let test_roots_of_unity () =
  for k = 0 to 12 do
    let w = Gf.root_of_unity k in
    let order = Int64.shift_left 1L k in
    Alcotest.check gf_testable
      (Printf.sprintf "w_{2^%d} has order dividing 2^%d" k k)
      Gf.one (Gf.pow w order);
    if k > 0 then
      Alcotest.(check bool)
        (Printf.sprintf "w_{2^%d} is primitive" k)
        false
        (Gf.equal (Gf.pow w (Int64.shift_right_logical order 1)) Gf.one)
  done;
  (* Full 2-adicity. *)
  let w32 = Gf.root_of_unity 32 in
  Alcotest.check gf_testable "w32^(2^32) = 1" Gf.one (Gf.pow w32 0x1_0000_0000L)

let prop_mul_matches_reference =
  QCheck.Test.make ~count:500 ~name:"Gf.mul matches double-and-add reference"
    (QCheck.pair arb_gf arb_gf)
    (fun (a, b) -> Gf.equal (Gf.mul a b) (mul_ref a b))

let prop_field_axioms =
  QCheck.Test.make ~count:300 ~name:"Gf field axioms"
    (QCheck.triple arb_gf arb_gf arb_gf)
    (fun (a, b, c) ->
      Gf.equal (Gf.add a b) (Gf.add b a)
      && Gf.equal (Gf.mul a b) (Gf.mul b a)
      && Gf.equal (Gf.add (Gf.add a b) c) (Gf.add a (Gf.add b c))
      && Gf.equal (Gf.mul (Gf.mul a b) c) (Gf.mul a (Gf.mul b c))
      && Gf.equal (Gf.mul a (Gf.add b c)) (Gf.add (Gf.mul a b) (Gf.mul a c))
      && Gf.equal (Gf.sub a b) (Gf.add a (Gf.neg b))
      && Gf.is_canonical (Gf.add a b)
      && Gf.is_canonical (Gf.mul a b)
      && Gf.is_canonical (Gf.sub a b))

(* --- multi-limb --- *)

let test_limbs_hex () =
  let x = Limbs.of_hex 4 "1a0111ea397fe69a4b1ba7b6434bacd7" in
  Alcotest.(check string) "roundtrip" "1a0111ea397fe69a4b1ba7b6434bacd7" (Limbs.to_hex x);
  Alcotest.(check string) "zero" "0" (Limbs.to_hex (Limbs.of_hex 4 "0"));
  Alcotest.(check int) "bits" 125 (Limbs.bits x)

let test_limbs_arith () =
  let a = Limbs.of_hex 2 "ffffffffffffffffffffffffffffffff" in
  let one = Limbs.of_hex 2 "1" in
  let s, carry = Limbs.add a one in
  Alcotest.(check bool) "carry out" true (Int64.equal carry 1L);
  Alcotest.(check bool) "wrapped to zero" true (Limbs.is_zero s);
  let d, borrow = Limbs.sub (Limbs.of_hex 2 "0") one in
  Alcotest.(check bool) "borrow out" true (Int64.equal borrow 1L);
  Alcotest.(check string) "wrapped down" "ffffffffffffffffffffffffffffffff" (Limbs.to_hex d);
  (* (2^64 - 1)^2 = 2^128 - 2^65 + 1 *)
  let m = Limbs.mul [| 0xFFFF_FFFF_FFFF_FFFFL |] [| 0xFFFF_FFFF_FFFF_FFFFL |] in
  Alcotest.(check string) "mul64x64" "fffffffffffffffe0000000000000001" (Limbs.to_hex m)

let test_neg_inv64 () =
  List.iter
    (fun m0 ->
      let inv = Limbs.neg_inv64 m0 in
      Alcotest.(check int64) "m0 * (-m0^-1) = -1 mod 2^64" (-1L) (Int64.mul m0 inv))
    [ 1L; 3L; 0xFFFF_FFFF_0000_0001L; 0xb9feffffffffaaabL; 0x73eda753299d7d49L ]

let test_fr_basics () =
  Alcotest.(check bool) "2+3=5" true Fr.(equal (add (of_int 2) (of_int 3)) (of_int 5));
  Alcotest.(check bool) "2*3=6" true Fr.(equal (mul (of_int 2) (of_int 3)) (of_int 6));
  Alcotest.(check bool) "x*inv x = 1" true
    (let x = Fr.of_int 123456789 in
     Fr.(equal (mul x (inv x)) one));
  Alcotest.(check string) "to_hex small" "2a" (Fr.to_hex (Fr.of_int 42));
  (* r - 1 = -1 *)
  let minus1 = Fr.neg Fr.one in
  Alcotest.(check string) "-1 hex"
    "73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000000"
    (Fr.to_hex minus1)

let test_fr_root_of_unity () =
  let w = Fr.root_of_unity 2 in
  (* w^4 = 1, w^2 = -1 *)
  Alcotest.(check bool) "w^4 = 1" true Fr.(equal (square (square w)) one);
  Alcotest.(check bool) "w^2 = -1" true Fr.(equal (square w) (neg one));
  let w20 = Fr.root_of_unity 20 in
  let rec pow2 x k = if k = 0 then x else pow2 (Fr.square x) (k - 1) in
  Alcotest.(check bool) "w20^(2^20) = 1" true Fr.(equal (pow2 w20 20) one);
  Alcotest.(check bool) "w20^(2^19) <> 1" false Fr.(equal (pow2 w20 19) one)

let test_fq_basics () =
  let rng = Rng.create 99L in
  for _ = 1 to 20 do
    let x = Fq.random rng in
    if not (Fq.is_zero x) then
      Alcotest.(check bool) "x * inv x = 1" true Fq.(equal (mul x (inv x)) one)
  done;
  (* Montgomery round trip through standard form. *)
  let x = Fq.of_hex "123456789abcdef0fedcba9876543210" in
  Alcotest.(check string) "hex roundtrip" "123456789abcdef0fedcba9876543210" (Fq.to_hex x)

let prop_fr_distributes =
  let arb_fr =
    QCheck.make
      ~print:(fun x -> Fr.to_hex x)
      QCheck.Gen.(map (fun s -> Fr.random (Rng.create (Int64.of_int s))) int)
  in
  QCheck.Test.make ~count:100 ~name:"Fr distributivity + sub/neg"
    (QCheck.triple arb_fr arb_fr arb_fr)
    (fun (a, b, c) ->
      Fr.(equal (mul a (add b c)) (add (mul a b) (mul a c)))
      && Fr.(equal (sub a b) (add a (neg b)))
      && Fr.(equal (of_limbs (to_limbs a)) a))

let suite =
  [
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "overflow edges" `Quick test_overflow_edges;
    Alcotest.test_case "of_int negative" `Quick test_of_int_negative;
    Alcotest.test_case "pow and inv" `Quick test_pow_inv;
    Alcotest.test_case "batch inversion" `Quick test_batch_inv;
    Alcotest.test_case "roots of unity" `Quick test_roots_of_unity;
    Alcotest.test_case "limbs hex" `Quick test_limbs_hex;
    Alcotest.test_case "limbs arithmetic" `Quick test_limbs_arith;
    Alcotest.test_case "montgomery constant" `Quick test_neg_inv64;
    Alcotest.test_case "Fr basics" `Quick test_fr_basics;
    Alcotest.test_case "Fr roots of unity" `Quick test_fr_root_of_unity;
    Alcotest.test_case "Fq basics" `Quick test_fq_basics;
    QCheck_alcotest.to_alcotest prop_mul_matches_reference;
    QCheck_alcotest.to_alcotest prop_field_axioms;
    QCheck_alcotest.to_alcotest prop_fr_distributes;
  ]
