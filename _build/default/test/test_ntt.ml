(* NTT correctness: inverse round trips, naive DFT cross-check, convolution
   theorem, four-step equivalence (the algorithm NoCap's NTT FU runs). *)

module Gf = Zk_field.Gf
module Ntt = Zk_ntt.Ntt.Gf_ntt
module Fr = Zk_field.Fr_bls
module Fr_ntt = Zk_ntt.Ntt.Fr_ntt
module Rng = Zk_util.Rng

let random_vec rng n = Array.init n (fun _ -> Gf.random rng)

let check_gf_array msg expected actual =
  Alcotest.(check int) (msg ^ " length") (Array.length expected) (Array.length actual);
  Array.iteri
    (fun i e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s [%d]" msg i)
        true (Gf.equal e actual.(i)))
    expected

(* O(n^2) reference DFT. *)
let dft_naive a =
  let n = Array.length a in
  let log_n =
    let rec go k m = if m = 1 then k else go (k + 1) (m lsr 1) in
    go 0 n
  in
  let w = Gf.root_of_unity log_n in
  Array.init n (fun k ->
      let acc = ref Gf.zero in
      for j = 0 to n - 1 do
        acc := Gf.add !acc (Gf.mul a.(j) (Gf.pow w (Int64.of_int (j * k mod n))))
      done;
      !acc)

let test_matches_naive () =
  let rng = Rng.create 1L in
  List.iter
    (fun n ->
      let a = random_vec rng n in
      check_gf_array (Printf.sprintf "n=%d" n) (dft_naive a) (Ntt.forward_copy (Ntt.plan n) a))
    [ 1; 2; 4; 8; 16; 32 ]

let test_roundtrip () =
  let rng = Rng.create 2L in
  List.iter
    (fun n ->
      let plan = Ntt.plan n in
      let a = random_vec rng n in
      check_gf_array
        (Printf.sprintf "roundtrip n=%d" n)
        a
        (Ntt.inverse_copy plan (Ntt.forward_copy plan a)))
    [ 2; 8; 64; 256; 1024; 4096 ]

let test_convolution () =
  (* NTT(a) .* NTT(b) = NTT(a circ* b). *)
  let rng = Rng.create 3L in
  let n = 64 in
  let plan = Ntt.plan n in
  let a = random_vec rng n and b = random_vec rng n in
  let circular =
    Array.init n (fun k ->
        let acc = ref Gf.zero in
        for i = 0 to n - 1 do
          acc := Gf.add !acc (Gf.mul a.(i) b.((k - i + n) mod n))
        done;
        !acc)
  in
  let fa = Ntt.forward_copy plan a and fb = Ntt.forward_copy plan b in
  let pointwise = Array.init n (fun i -> Gf.mul fa.(i) fb.(i)) in
  check_gf_array "convolution theorem" circular (Ntt.inverse_copy plan pointwise)

let test_four_step () =
  let rng = Rng.create 4L in
  List.iter
    (fun (rows, cols) ->
      let n = rows * cols in
      let a = random_vec rng n in
      let expected = Ntt.forward_copy (Ntt.plan n) a in
      check_gf_array
        (Printf.sprintf "four-step %dx%d" rows cols)
        expected
        (Ntt.four_step_forward ~rows ~cols a))
    [ (2, 2); (4, 4); (2, 8); (8, 2); (16, 16); (64, 64); (8, 512) ]

let test_linearity () =
  let rng = Rng.create 5L in
  let n = 128 in
  let plan = Ntt.plan n in
  let a = random_vec rng n and b = random_vec rng n in
  let c = Gf.random rng in
  let lhs =
    Ntt.forward_copy plan (Array.init n (fun i -> Gf.add a.(i) (Gf.mul c b.(i))))
  in
  let fa = Ntt.forward_copy plan a and fb = Ntt.forward_copy plan b in
  let rhs = Array.init n (fun i -> Gf.add fa.(i) (Gf.mul c fb.(i))) in
  check_gf_array "linearity" lhs rhs

let test_fr_ntt () =
  (* The Groth16 baseline's Fr NTT must also round trip. *)
  let rng = Rng.create 6L in
  let n = 256 in
  let plan = Fr_ntt.plan n in
  let a = Array.init n (fun _ -> Fr.random rng) in
  let back = Fr_ntt.inverse_copy plan (Fr_ntt.forward_copy plan a) in
  Array.iteri
    (fun i e -> Alcotest.(check bool) "Fr roundtrip" true (Fr.equal e back.(i)))
    a

let test_butterfly_count () =
  Alcotest.(check int) "n=8" 12 (Ntt.butterfly_count 8);
  Alcotest.(check int) "n=4096" (2048 * 12) (Ntt.butterfly_count 4096)

let test_bad_sizes () =
  Alcotest.check_raises "non power of two" (Invalid_argument "Ntt: size must be a power of two")
    (fun () -> ignore (Ntt.plan 3))

let suite =
  [
    Alcotest.test_case "matches naive DFT" `Quick test_matches_naive;
    Alcotest.test_case "inverse roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "convolution theorem" `Quick test_convolution;
    Alcotest.test_case "four-step equivalence" `Quick test_four_step;
    Alcotest.test_case "linearity" `Quick test_linearity;
    Alcotest.test_case "Fr NTT roundtrip" `Quick test_fr_ntt;
    Alcotest.test_case "butterfly count" `Quick test_butterfly_count;
    Alcotest.test_case "bad sizes rejected" `Quick test_bad_sizes;
  ]
