(** A minimal STARK: the AIR-over-FRI construction of the zkSTARK family the
    paper groups Spartan+Orion with (Sec. II-A: transparent hash-based
    schemes; Sec. IV-E: "NoCap can support ... STARKs").

    The statement is a Fibonacci-style execution trace: the prover knows a
    length-[n] trace [t] with [t_{i+2} = t_{i+1} + t_i], starting from public
    [t_0, t_1] and ending in the public claimed value [t_{n-1}]. The trace is
    interpolated over an [n]-point domain, low-degree-extended 4x and Merkle-
    committed; the transition and boundary constraints become quotient
    polynomials whose random linear combination is proven low-degree with
    {!Fri}; each FRI query is additionally checked for consistency against
    Merkle openings of the trace itself, tying the low-degree claim to the
    committed execution.

    All primitives are NoCap FU operations — the same NTT, SHA3, and vector
    arithmetic as Spartan+Orion. *)

module Gf = Zk_field.Gf

type proof = {
  trace_root : Zk_merkle.Merkle.digest;
  fri : Fri.proof;
  openings : (Gf.t * Zk_merkle.Merkle.digest list) array array;
      (** per FRI query: the six authenticated trace-LDE values the
          composition check needs *)
}

val trace_of : n:int -> a0:Gf.t -> a1:Gf.t -> Gf.t array
(** The honest Fibonacci trace (power-of-two [n >= 4]). *)

val prove : n:int -> a0:Gf.t -> a1:Gf.t -> proof * Gf.t
(** Prove the trace; returns the proof and the public final value. *)

val verify :
  n:int -> a0:Gf.t -> a1:Gf.t -> claimed_last:Gf.t -> proof -> (unit, string) result

val proof_size_bytes : proof -> int
