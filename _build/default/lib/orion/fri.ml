module Gf = Zk_field.Gf
module Ntt = Zk_ntt.Ntt.Gf_ntt
module Merkle = Zk_merkle.Merkle
module Transcript = Zk_hash.Transcript

type params = { blowup_log2 : int; num_queries : int }

let default_params = { blowup_log2 = 2; num_queries = 30 }

type proof = {
  layer_roots : Merkle.digest array;
  final_constant : Gf.t;
  queries : query array;
}

and query = {
  position : int;
  layers : (Gf.t * Gf.t * Merkle.digest list * Merkle.digest list) array;
}

let log2_exact n =
  if n <= 0 || n land (n - 1) <> 0 then invalid_arg "Fri: size must be a power of two";
  let rec go k m = if m = 1 then k else go (k + 1) (m lsr 1) in
  go 0 n

(* Merkle tree over an evaluation layer, co-locating f(x) and f(-x): leaf j
   commits to (E[j], E[j + half]). *)
let commit_layer evals =
  let half = Array.length evals / 2 in
  let leaves =
    Array.init half (fun j -> Merkle.leaf_of_column [| evals.(j); evals.(j + half) |])
  in
  Merkle.build leaves

let fold ~shift evals beta =
  let n = Array.length evals in
  let half = n / 2 in
  let w = Gf.root_of_unity (log2_exact n) in
  let inv2 = Gf.inv Gf.two in
  let x = ref shift in
  Array.init half (fun j ->
      let a = evals.(j) and b = evals.(j + half) in
      let even = Gf.mul inv2 (Gf.add a b) in
      let odd = Gf.mul inv2 (Gf.mul (Gf.sub a b) (Gf.inv !x)) in
      let out = Gf.add even (Gf.mul beta odd) in
      x := Gf.mul !x w;
      out)

let prove ?(shift = Gf.one) params transcript coeffs =
  let n = Array.length coeffs in
  let log_n = log2_exact n in
  let domain = n lsl params.blowup_log2 in
  Transcript.absorb_int transcript "fri/degree" n;
  Transcript.absorb_int transcript "fri/blowup" params.blowup_log2;
  (* Layer 0: evaluations over the (possibly coset-shifted) domain. *)
  let evals = Array.make domain Gf.zero in
  Array.blit coeffs 0 evals 0 n;
  (* Coset: scale coefficient i by shift^i before the NTT. *)
  if not (Gf.equal shift Gf.one) then begin
    let si = ref Gf.one in
    for i = 0 to n - 1 do
      evals.(i) <- Gf.mul evals.(i) !si;
      si := Gf.mul !si shift
    done
  end;
  Ntt.forward (Ntt.plan domain) evals;
  (* Commit and fold log_n times. *)
  let layers = ref [ evals ] in
  let trees = ref [ commit_layer evals ] in
  Transcript.absorb_digest transcript "fri/root" (Merkle.root (List.hd !trees));
  let layer_shift = ref shift in
  for _ = 1 to log_n do
    let beta = Transcript.challenge_gf transcript "fri/beta" in
    let next = fold ~shift:!layer_shift (List.hd !layers) beta in
    layer_shift := Gf.square !layer_shift;
    layers := next :: !layers;
    let tree = commit_layer next in
    trees := tree :: !trees;
    Transcript.absorb_digest transcript "fri/root" (Merkle.root tree)
  done;
  let layers = Array.of_list (List.rev !layers) in
  let trees = Array.of_list (List.rev !trees) in
  (* The last layer must be constant (degree < 1 after log_n folds). *)
  let last = layers.(Array.length layers - 1) in
  let final_constant = last.(0) in
  Transcript.absorb_gf transcript "fri/final" [| final_constant |];
  (* Queries. *)
  let positions =
    Transcript.challenge_indices transcript "fri/queries" ~bound:(domain / 2)
      ~count:params.num_queries
  in
  let queries =
    Array.map
      (fun position ->
        let opened =
          Array.mapi
            (fun i layer ->
              let half = Array.length layer / 2 in
              let pos = position mod half in
              let path = Merkle.path trees.(i) pos in
              (layer.(pos), layer.(pos + half), path, path))
            layers
        in
        { position; layers = opened })
      positions
  in
  {
    layer_roots = Array.map Merkle.root trees;
    final_constant;
    queries;
  }

let verify ?(shift = Gf.one) params transcript ~degree_bound proof =
  let ( let* ) = Result.bind in
  let log_n = log2_exact degree_bound in
  let domain = degree_bound lsl params.blowup_log2 in
  let* () =
    if Array.length proof.layer_roots = log_n + 1 then Ok ()
    else Error "wrong number of layers"
  in
  Transcript.absorb_int transcript "fri/degree" degree_bound;
  Transcript.absorb_int transcript "fri/blowup" params.blowup_log2;
  Transcript.absorb_digest transcript "fri/root" proof.layer_roots.(0);
  let betas = Array.make log_n Gf.zero in
  for i = 0 to log_n - 1 do
    betas.(i) <- Transcript.challenge_gf transcript "fri/beta";
    Transcript.absorb_digest transcript "fri/root" proof.layer_roots.(i + 1)
  done;
  Transcript.absorb_gf transcript "fri/final" [| proof.final_constant |];
  let positions =
    Transcript.challenge_indices transcript "fri/queries" ~bound:(domain / 2)
      ~count:params.num_queries
  in
  let* () =
    if Array.length proof.queries = params.num_queries then Ok ()
    else Error "wrong number of queries"
  in
  let inv2 = Gf.inv Gf.two in
  let rec check_query q_idx =
    if q_idx >= Array.length proof.queries then Ok ()
    else begin
      let q = proof.queries.(q_idx) in
      if q.position <> positions.(q_idx) then Error "query position mismatch"
      else if Array.length q.layers <> log_n + 1 then Error "query layer count"
      else begin
        (* Walk the folding chain: at layer i the walked index j lives in
           [0, layer_size); the co-located leaf is j mod half, and j selects
           the low (a) or high (b) element of the opened pair. *)
        let rec walk i layer_size j expected =
          let half = layer_size / 2 in
          let leaf_pos = j mod half in
          let a, b, path, _ = q.layers.(i) in
          let leaf = Merkle.leaf_of_column [| a; b |] in
          if not (Merkle.verify ~root:proof.layer_roots.(i) ~index:leaf_pos ~leaf ~path)
          then Error (Printf.sprintf "query %d layer %d: bad path" q_idx i)
          else begin
            let value_at_j = if j >= half then b else a in
            let consistent =
              match expected with
              | None -> true
              | Some v -> Gf.equal v value_at_j
            in
            if not consistent then
              Error (Printf.sprintf "query %d layer %d: fold mismatch" q_idx i)
            else if i = log_n then
              if Gf.equal a proof.final_constant && Gf.equal b proof.final_constant
              then Ok ()
              else Error (Printf.sprintf "query %d: final layer not constant" q_idx)
            else begin
              let w = Gf.root_of_unity (log2_exact layer_size) in
              let shift_i =
                (* The layer-i domain is shift^(2^i) times the plain one. *)
                let rec sq s k = if k = 0 then s else sq (Gf.square s) (k - 1) in
                sq shift i
              in
              let x = Gf.mul shift_i (Gf.pow w (Int64.of_int leaf_pos)) in
              let even = Gf.mul inv2 (Gf.add a b) in
              let odd = Gf.mul inv2 (Gf.mul (Gf.sub a b) (Gf.inv x)) in
              let next = Gf.add even (Gf.mul betas.(i) odd) in
              walk (i + 1) half leaf_pos (Some next)
            end
          end
        in
        match walk 0 domain q.position None with
        | Error e -> Error e
        | Ok () -> check_query (q_idx + 1)
      end
    end
  in
  check_query 0

let proof_size_bytes proof =
  let digest = 32 and field = 8 in
  (digest * Array.length proof.layer_roots)
  + field
  + Array.fold_left
      (fun acc q ->
        acc + 8
        + Array.fold_left
            (fun acc (_, _, path, _) -> acc + (2 * field) + (digest * List.length path))
            0 q.layers)
      0 proof.queries
