module Gf = Zk_field.Gf
module Ntt = Zk_ntt.Ntt.Gf_ntt
module Merkle = Zk_merkle.Merkle
module Transcript = Zk_hash.Transcript

type proof = {
  trace_root : Merkle.digest;
  fri : Fri.proof;
  (* Per FRI query: openings of the committed trace LDE at the six positions
     needed to recompute the composition polynomial at the query's pair. *)
  openings : (Gf.t * Merkle.digest list) array array;
}

let params = Fri.default_params

let log2_exact n =
  if n <= 0 || n land (n - 1) <> 0 then invalid_arg "Stark: size must be a power of two";
  let rec go k m = if m = 1 then k else go (k + 1) (m lsr 1) in
  go 0 n

let trace_of ~n ~a0 ~a1 =
  if n < 4 then invalid_arg "Stark.trace_of: n >= 4";
  ignore (log2_exact n);
  let t = Array.make n Gf.zero in
  t.(0) <- a0;
  t.(1) <- a1;
  for i = 2 to n - 1 do
    t.(i) <- Gf.add t.(i - 1) t.(i - 2)
  done;
  t

let shift = Gf.multiplicative_generator

(* Trace LDE over the coset shift * <w>, w the 4n-th root. *)
let trace_lde t =
  let n = Array.length t in
  let domain = 4 * n in
  let coeffs = Array.copy t in
  Ntt.inverse (Ntt.plan n) coeffs;
  let evals = Array.make domain Gf.zero in
  Array.blit coeffs 0 evals 0 n;
  let si = ref Gf.one in
  for i = 0 to n - 1 do
    evals.(i) <- Gf.mul evals.(i) !si;
    si := Gf.mul !si shift
  done;
  Ntt.forward (Ntt.plan domain) evals;
  evals

let commit_trace lde =
  Merkle.build (Array.map (fun v -> Merkle.leaf_of_column [| v |]) lde)

(* Composition value at LDE index j, from the three trace values the
   transition touches. *)
let composition ~n ~a0 ~a1 ~last ~alphas ~g ~x t_j t_j4 t_j8 =
  let xn = Gf.pow x (Int64.of_int n) in
  let g_nm1 = Gf.pow g (Int64.of_int (n - 1)) in
  let g_nm2 = Gf.pow g (Int64.of_int (n - 2)) in
  let num_c = Gf.sub t_j8 (Gf.add t_j4 t_j) in
  let zfix = Gf.mul (Gf.sub x g_nm2) (Gf.sub x g_nm1) in
  let c = Gf.mul num_c (Gf.mul zfix (Gf.inv (Gf.sub xn Gf.one))) in
  let b0 = Gf.mul (Gf.sub t_j a0) (Gf.inv (Gf.sub x Gf.one)) in
  let b1 = Gf.mul (Gf.sub t_j a1) (Gf.inv (Gf.sub x g)) in
  let bl = Gf.mul (Gf.sub t_j last) (Gf.inv (Gf.sub x g_nm1)) in
  Gf.add
    (Gf.add (Gf.mul alphas.(0) c) (Gf.mul alphas.(1) b0))
    (Gf.add (Gf.mul alphas.(2) b1) (Gf.mul alphas.(3) bl))

let start_transcript ~n ~a0 ~a1 ~last root =
  let t = Transcript.create "mini-stark" in
  Transcript.absorb_int t "n" n;
  Transcript.absorb_gf t "boundary" [| a0; a1; last |];
  Transcript.absorb_digest t "trace" root;
  t

let query_indices ~domain ~n position =
  [| position; (position + 4) mod domain; (position + 8) mod domain;
     (position + (2 * n)) mod domain;
     (position + (2 * n) + 4) mod domain;
     (position + (2 * n) + 8) mod domain |]

let prove ~n ~a0 ~a1 =
  let t = trace_of ~n ~a0 ~a1 in
  let last = t.(n - 1) in
  let domain = 4 * n in
  let lde = trace_lde t in
  let tree = commit_trace lde in
  let transcript = start_transcript ~n ~a0 ~a1 ~last (Merkle.root tree) in
  let alphas = Transcript.challenge_gf_vec transcript "alphas" 4 in
  let w = Gf.root_of_unity (log2_exact domain) in
  let g = Gf.pow w 4L in
  (* Composition evaluations over the coset. *)
  let f_evals = Array.make domain Gf.zero in
  let x = ref shift in
  for j = 0 to domain - 1 do
    f_evals.(j) <-
      composition ~n ~a0 ~a1 ~last ~alphas ~g ~x:!x lde.(j)
        lde.((j + 4) mod domain)
        lde.((j + 8) mod domain);
    x := Gf.mul !x w
  done;
  (* Back to coefficients (coset inverse NTT) and truncate to the degree
     bound n: honest compositions have degree < n. *)
  let coeffs = Array.copy f_evals in
  Ntt.inverse (Ntt.plan domain) coeffs;
  let s_inv = Gf.inv shift in
  let si = ref Gf.one in
  for i = 0 to domain - 1 do
    coeffs.(i) <- Gf.mul coeffs.(i) !si;
    si := Gf.mul !si s_inv
  done;
  let f_coeffs = Array.sub coeffs 0 n in
  let fri = Fri.prove ~shift params transcript f_coeffs in
  let openings =
    Array.map
      (fun (q : Fri.query) ->
        Array.map
          (fun idx -> (lde.(idx), Merkle.path tree idx))
          (query_indices ~domain ~n q.Fri.position))
      fri.Fri.queries
  in
  ({ trace_root = Merkle.root tree; fri; openings }, last)

let verify ~n ~a0 ~a1 ~claimed_last proof =
  let ( let* ) = Result.bind in
  let* () = if n >= 4 && n land (n - 1) = 0 then Ok () else Error "bad n" in
  let domain = 4 * n in
  let transcript = start_transcript ~n ~a0 ~a1 ~last:claimed_last proof.trace_root in
  let alphas = Transcript.challenge_gf_vec transcript "alphas" 4 in
  let* () = Fri.verify ~shift params transcript ~degree_bound:n proof.fri in
  let* () =
    if Array.length proof.openings = Array.length proof.fri.Fri.queries then Ok ()
    else Error "opening count mismatch"
  in
  let w = Gf.root_of_unity (log2_exact domain) in
  let g = Gf.pow w 4L in
  let rec check q_idx =
    if q_idx >= Array.length proof.openings then Ok ()
    else begin
      let q = proof.fri.Fri.queries.(q_idx) in
      let opens = proof.openings.(q_idx) in
      let* () = if Array.length opens = 6 then Ok () else Error "need six openings" in
      let indices = query_indices ~domain ~n q.Fri.position in
      (* Authenticate every opened trace value. *)
      let rec auth i =
        if i >= 6 then Ok ()
        else begin
          let v, path = opens.(i) in
          if
            Merkle.verify ~root:proof.trace_root ~index:indices.(i)
              ~leaf:(Merkle.leaf_of_column [| v |])
              ~path
          then auth (i + 1)
          else Error (Printf.sprintf "query %d: bad trace opening %d" q_idx i)
        end
      in
      let* () = auth 0 in
      (* Recompute the composition at the query pair and compare with the
         FRI layer-0 values: this ties the low-degree proof to the committed
         execution trace. *)
      let recompute base_idx v0 v4 v8 =
        let x = Gf.mul shift (Gf.pow w (Int64.of_int base_idx)) in
        composition ~n ~a0 ~a1 ~last:claimed_last ~alphas ~g ~x v0 v4 v8
      in
      let f_lo = recompute q.Fri.position (fst opens.(0)) (fst opens.(1)) (fst opens.(2)) in
      let f_hi =
        recompute ((q.Fri.position + (2 * n)) mod domain) (fst opens.(3)) (fst opens.(4))
          (fst opens.(5))
      in
      let a, b, _, _ = q.Fri.layers.(0) in
      if not (Gf.equal f_lo a) then
        Error (Printf.sprintf "query %d: composition mismatch (low)" q_idx)
      else if not (Gf.equal f_hi b) then
        Error (Printf.sprintf "query %d: composition mismatch (high)" q_idx)
      else check (q_idx + 1)
    end
  in
  check 0

let proof_size_bytes proof =
  let digest = 32 and field = 8 in
  digest
  + Fri.proof_size_bytes proof.fri
  + Array.fold_left
      (fun acc opens ->
        acc
        + Array.fold_left
            (fun acc (_, path) -> acc + field + (digest * List.length path))
            0 opens)
      0 proof.openings
