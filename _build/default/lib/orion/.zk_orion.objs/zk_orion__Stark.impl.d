lib/orion/stark.ml: Array Fri Int64 List Printf Result Zk_field Zk_hash Zk_merkle Zk_ntt
