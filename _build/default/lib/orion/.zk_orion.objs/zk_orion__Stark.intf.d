lib/orion/stark.mli: Fri Zk_field Zk_merkle
