lib/orion/fri.ml: Array Int64 List Printf Result Zk_field Zk_hash Zk_merkle Zk_ntt
