lib/orion/fri.mli: Zk_field Zk_hash Zk_merkle
