lib/orion/orion.ml: Array List Printf Result Zk_ecc Zk_field Zk_hash Zk_merkle Zk_poly
