lib/orion/orion.mli: Zk_ecc Zk_field Zk_hash Zk_merkle Zk_util
