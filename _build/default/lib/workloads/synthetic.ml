module Gf = Zk_field.Gf
module Builder = Zk_r1cs.Builder
module Rng = Zk_util.Rng

let circuit ~n_constraints ?(band = 64) ?(row_nnz = 2) ~seed () =
  if n_constraints < 1 then invalid_arg "Synthetic.circuit";
  let rng = Rng.create seed in
  let b = Builder.create () in
  let pool = ref [| Builder.witness b (Gf.of_int (2 + Rng.int rng 1000)) |] in
  let pool_len = ref 1 in
  let grow = Array.make (max 16 (n_constraints + 1)) !pool.(0) in
  grow.(0) <- !pool.(0);
  pool := grow;
  let pick () =
    let lo = max 0 (!pool_len - band) in
    !pool.(lo + Rng.int rng (!pool_len - lo))
  in
  for _ = 1 to n_constraints do
    (* (sum of row_nnz recent wires) * recent wire = new wire. *)
    let lhs =
      List.init row_nnz (fun _ -> (pick (), Gf.of_int (1 + Rng.int rng 7)))
    in
    let rhs = pick () in
    let value = Gf.mul (Builder.lc_value b lhs) (Builder.value b rhs) in
    let out = Builder.witness b value in
    Builder.constrain b lhs (Builder.lc_var rhs) (Builder.lc_var out);
    !pool.(!pool_len) <- out;
    incr pool_len
  done;
  Builder.finalize b
