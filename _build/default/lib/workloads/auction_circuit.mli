(** Verifiable sealed-bid auction (Galal & Youssef, FC'18; the paper's
    "Auction" benchmark): the auctioneer proves the announced winning price is
    the maximum of the sealed bids without revealing losing bids.

    The circuit range-checks every bid and folds a comparator/select chain
    over them; the wide comparison rows make this the densest benchmark
    matrix (Table III's Auction is ~2x the per-constraint work of AES). *)

val circuit :
  ?bid_bits:int ->
  bids:int ->
  seed:int64 ->
  unit ->
  Zk_r1cs.R1cs.instance * Zk_r1cs.R1cs.assignment
(** [bids] sealed bids of [bid_bits] (default 16) bits each; the winning
    price is the only public output. *)
