(** Bit-accurate AES-128 as an R1CS circuit — the paper's AES benchmark
    (Sec. VII-B) for real, at feasible block counts.

    Every component is the FIPS-197 algorithm over bit wires: SubBytes is a
    witnessed GF(2^8) inversion (checked by an in-circuit carryless multiply
    against the Rijndael polynomial) followed by the affine map; ShiftRows is
    free rewiring; MixColumns is xtime/XOR networks; the key schedule runs
    in-circuit on the secret key. ~160 constraints per S-box, ~33k per block
    (200 S-boxes including key expansion).

    The proof statement: "I know a key under which this public plaintext
    encrypts to this public ciphertext." *)

val encrypt_reference : key:int array -> int array -> int array
(** Software AES-128: 16-byte key, 16-byte block; checked against the
    FIPS-197 vectors in the tests. *)

val build :
  Zk_r1cs.Builder.t ->
  key:int array ->
  plaintext:int array ->
  Zk_r1cs.Builder.var array
(** Allocate the key as witness bytes and the plaintext as public inputs;
    returns the 16 ciphertext byte wires. *)

val circuit :
  blocks:int ->
  seed:int64 ->
  unit ->
  Zk_r1cs.R1cs.instance * Zk_r1cs.R1cs.assignment
(** [blocks] random blocks under one random key, plaintexts and ciphertexts
    public. *)
