module Sparse = Zk_r1cs.Sparse
module R1cs = Zk_r1cs.R1cs

type t = {
  name : string;
  description : string;
  r1cs_size : float;
  density : float;
  paper_proof_mb : float;
  paper_verify_ms : float;
  generate : int -> R1cs.instance * R1cs.assignment;
}

(* Density factors are the per-constraint work of each benchmark relative to
   AES, derived from the paper's per-benchmark CPU times (Table IV): denser
   matrix rows (RSA's range checks, Auction's comparators) do proportionally
   more SpMV and sumcheck work per constraint. *)

let aes =
  {
    name = "AES";
    description = "encryption of a 16 KB message (1,000 AES blocks)";
    r1cs_size = 16.0e6;
    density = 1.0;
    paper_proof_mb = 8.1;
    paper_verify_ms = 134.0;
    generate = (fun scale -> Aes128.circuit ~blocks:(max 1 scale) ~seed:101L ());
  }

let sha =
  {
    name = "SHA";
    description = "hash of a 64 KB file (1,000 512-bit blocks)";
    r1cs_size = 32.0e6;
    density = 1.0;
    paper_proof_mb = 8.7;
    paper_verify_ms = 153.7;
    generate = (fun scale -> Sha256_circuit.circuit ~blocks:(max 1 scale) ~seed:102L ());
  }

let rsa =
  {
    name = "RSA";
    description = "RSA operations over a 256 KB message";
    r1cs_size = 98.0e6;
    density = 1.306;
    paper_proof_mb = 10.1;
    paper_verify_ms = 198.0;
    generate = (fun scale -> Modexp.circuit ~instances:(max 1 scale) ~seed:103L ());
  }

let litmus =
  {
    name = "Litmus";
    description = "10,000 YCSB transactions over two random rows each";
    r1cs_size = 268.4e6;
    density = 0.9536;
    paper_proof_mb = 10.9;
    paper_verify_ms = 222.4;
    generate =
      (fun scale ->
        let rng = Zk_util.Rng.create 104L in
        let rows = 8 in
        let txs =
          Litmus_circuit.random_transactions rng ~rows ~count:(max 1 scale)
        in
        Litmus_circuit.circuit ~rows ~transactions:txs ~seed:105L ());
  }

let auction =
  {
    name = "Auction";
    description = "sealed-bid auction over 100x the bids of prior work";
    r1cs_size = 550.0e6;
    density = 1.891;
    paper_proof_mb = 12.5;
    paper_verify_ms = 276.1;
    generate = (fun scale -> Auction_circuit.circuit ~bids:(max 2 scale) ~seed:106L ());
  }

let all = [ aes; sha; rsa; litmus; auction ]

let find name =
  let lower = String.lowercase_ascii name in
  List.find (fun b -> String.lowercase_ascii b.name = lower) all

let measured_density inst =
  float_of_int (R1cs.nnz inst) /. (3.0 *. float_of_int inst.R1cs.num_constraints)
