(** Bit-accurate SHA-256 compression as an R1CS circuit — the paper's SHA
    benchmark (Sec. VII-B: 512-bit hash blocks) for real.

    The full FIPS-180-4 round function over bit wires: Ch/Maj as AND/XOR
    networks, the big and small sigmas as free rotations XORed together, and
    modular 2^32 addition by witnessing the wide sum's bit decomposition and
    keeping the low 32 bits. ~30k constraints per 512-bit block.

    The proof statement: "I know a 512-bit message block whose SHA-256
    compression from the standard IV yields this public digest" — proving
    ownership of data matching a hash without revealing it (the paper's SHA
    use case). *)

val compress_reference : block:int array -> int array -> int array
(** [compress_reference ~block state]: one compression of a 64-byte block
    (16 big-endian 32-bit words) into the 8-word state. *)

val sha256_reference : bytes -> string
(** Full SHA-256 with padding, as lowercase hex (for the known-answer
    tests). *)

val build :
  Zk_r1cs.Builder.t ->
  block:int array ->
  Zk_r1cs.Builder.var array
(** Allocate the 16 message words as witnesses and compress from the
    standard IV; returns the 8 digest-word wires. *)

val circuit :
  blocks:int ->
  seed:int64 ->
  unit ->
  Zk_r1cs.R1cs.instance * Zk_r1cs.R1cs.assignment
(** [blocks] independent compressions with public digests. *)
