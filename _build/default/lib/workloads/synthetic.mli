(** Structure-matched synthetic circuits for performance runs at sizes where
    assembling a real gadget circuit is infeasible.

    The generator emits satisfiable constraint chains whose matrices have the
    two properties the paper's SpMV mapping exploits (Sec. V-A): O(1)
    nonzeros per row and limited bandwidth (nonzeros clustered near the
    diagonal). Row density is tunable to match a target benchmark's density
    factor. *)

val circuit :
  n_constraints:int ->
  ?band:int ->
  ?row_nnz:int ->
  seed:int64 ->
  unit ->
  Zk_r1cs.R1cs.instance * Zk_r1cs.R1cs.assignment
(** [band] (default 64) bounds how far a constraint reaches back into the
    witness; [row_nnz] (default 2) sets the A-row density. *)
