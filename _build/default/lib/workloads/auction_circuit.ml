module Gf = Zk_field.Gf
module Builder = Zk_r1cs.Builder
module Gadgets = Zk_r1cs.Gadgets
module Rng = Zk_util.Rng

let circuit ?(bid_bits = 16) ~bids ~seed () =
  if bids < 1 then invalid_arg "Auction_circuit.circuit: need at least one bid";
  let rng = Rng.create seed in
  let b = Builder.create () in
  let bid_values = Array.init bids (fun _ -> Rng.int rng (1 lsl bid_bits)) in
  let bid_wires =
    Array.map
      (fun v ->
        let w = Builder.witness b (Gf.of_int v) in
        ignore (Gadgets.bits_of b ~width:bid_bits w);
        w)
      bid_values
  in
  (* Fold a max chain: each step compares the running maximum with the next
     bid and selects the larger. *)
  let best = ref bid_wires.(0) in
  for i = 1 to bids - 1 do
    let is_less = Gadgets.less_than b ~width:bid_bits !best bid_wires.(i) in
    best := Gadgets.select b ~cond:is_less bid_wires.(i) !best
  done;
  let expected = Array.fold_left max 0 bid_values in
  let out = Builder.input b (Gf.of_int expected) in
  Gadgets.assert_equal b (Builder.lc_var !best) (Builder.lc_var out);
  Builder.finalize b
