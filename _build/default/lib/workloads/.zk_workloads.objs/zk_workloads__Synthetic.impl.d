lib/workloads/synthetic.ml: Array List Zk_field Zk_r1cs Zk_util
