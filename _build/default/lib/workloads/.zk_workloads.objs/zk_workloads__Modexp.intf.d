lib/workloads/modexp.mli: Zk_r1cs
