lib/workloads/keccak_circuit.ml: Array Zk_field Zk_r1cs Zk_util
