lib/workloads/sha256_circuit.ml: Array Bytes Char Int64 List Printf String Zk_field Zk_r1cs Zk_util
