lib/workloads/litmus_circuit.ml: Array List Zk_field Zk_r1cs Zk_util
