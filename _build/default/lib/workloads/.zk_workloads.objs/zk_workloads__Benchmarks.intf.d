lib/workloads/benchmarks.mli: Zk_r1cs
