lib/workloads/synthetic.mli: Zk_r1cs
