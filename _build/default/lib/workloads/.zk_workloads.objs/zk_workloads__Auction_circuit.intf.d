lib/workloads/auction_circuit.mli: Zk_r1cs
