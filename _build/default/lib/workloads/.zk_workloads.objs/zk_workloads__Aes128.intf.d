lib/workloads/aes128.mli: Zk_r1cs
