lib/workloads/modexp.ml: Int64 List Zk_field Zk_r1cs Zk_util
