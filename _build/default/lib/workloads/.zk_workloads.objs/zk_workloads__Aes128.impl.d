lib/workloads/aes128.ml: Array Int64 List Option Zk_field Zk_r1cs Zk_util
