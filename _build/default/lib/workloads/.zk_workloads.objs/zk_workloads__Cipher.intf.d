lib/workloads/cipher.mli: Zk_r1cs
