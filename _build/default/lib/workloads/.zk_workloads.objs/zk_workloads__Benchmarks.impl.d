lib/workloads/benchmarks.ml: Aes128 Auction_circuit List Litmus_circuit Modexp Sha256_circuit String Zk_r1cs Zk_util
