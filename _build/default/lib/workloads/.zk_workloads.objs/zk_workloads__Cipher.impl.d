lib/workloads/cipher.ml: Array Zk_field Zk_r1cs Zk_util
