lib/workloads/litmus_circuit.mli: Zk_r1cs Zk_util
