lib/workloads/keccak_circuit.mli: Zk_r1cs
