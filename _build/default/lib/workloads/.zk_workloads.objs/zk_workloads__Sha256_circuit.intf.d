lib/workloads/sha256_circuit.mli: Zk_r1cs
