module Gf = Zk_field.Gf
module Builder = Zk_r1cs.Builder
module Gadgets = Zk_r1cs.Gadgets
module Rng = Zk_util.Rng

(* --- software reference (FIPS-197) --- *)

let xtime x =
  let y = x lsl 1 in
  if y land 0x100 <> 0 then (y lxor 0x1b) land 0xff else y

let gf256_mul a b =
  let acc = ref 0 and a = ref a and b = ref b in
  while !b <> 0 do
    if !b land 1 = 1 then acc := !acc lxor !a;
    a := xtime !a;
    b := !b lsr 1
  done;
  !acc

let gf256_inv x =
  if x = 0 then 0
  else begin
    (* x^254 by square-and-multiply. *)
    let rec pow acc base e =
      if e = 0 then acc
      else pow (if e land 1 = 1 then gf256_mul acc base else acc) (gf256_mul base base) (e lsr 1)
    in
    pow 1 x 254
  end

let sbox_affine y =
  let bit v i = (v lsr i) land 1 in
  let out = ref 0 in
  for i = 0 to 7 do
    let b =
      bit y i lxor bit y ((i + 4) mod 8) lxor bit y ((i + 5) mod 8)
      lxor bit y ((i + 6) mod 8)
      lxor bit y ((i + 7) mod 8)
      lxor bit 0x63 i
    in
    out := !out lor (b lsl i)
  done;
  !out

let sbox x = sbox_affine (gf256_inv x)

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36 |]

(* Key schedule: 11 round keys of 16 bytes, from a 16-byte key. Words are
   4 bytes; w.(i) for i in 0..43. *)
let expand_key_ref key =
  let w = Array.make 44 [||] in
  for i = 0 to 3 do
    w.(i) <- Array.init 4 (fun j -> key.((4 * i) + j))
  done;
  for i = 4 to 43 do
    let temp = Array.copy w.(i - 1) in
    let temp =
      if i mod 4 = 0 then begin
        let rotated = [| temp.(1); temp.(2); temp.(3); temp.(0) |] in
        let subbed = Array.map sbox rotated in
        subbed.(0) <- subbed.(0) lxor rcon.((i / 4) - 1);
        subbed
      end
      else temp
    in
    w.(i) <- Array.map2 (fun a b -> a lxor b) w.(i - 4) temp
  done;
  Array.init 11 (fun r -> Array.init 16 (fun j -> w.((4 * r) + (j / 4)).(j mod 4)))

(* State bytes in FIPS order: state.(r + 4*c) = input.(r + 4*c)?  FIPS maps
   in.(i) to s.(i mod 4, i / 4); we keep the flat input order and index
   s r c = state.((4 * c) + r). *)
let sref state r c = state.((4 * c) + r)

let shift_rows_ref state =
  Array.init 16 (fun i ->
      let r = i mod 4 and c = i / 4 in
      sref state r ((c + r) mod 4))

let mix_columns_ref state =
  Array.init 16 (fun i ->
      let r = i mod 4 and c = i / 4 in
      let s k = sref state k c in
      match r with
      | 0 -> gf256_mul 2 (s 0) lxor gf256_mul 3 (s 1) lxor s 2 lxor s 3
      | 1 -> s 0 lxor gf256_mul 2 (s 1) lxor gf256_mul 3 (s 2) lxor s 3
      | 2 -> s 0 lxor s 1 lxor gf256_mul 2 (s 2) lxor gf256_mul 3 (s 3)
      | _ -> gf256_mul 3 (s 0) lxor s 1 lxor s 2 lxor gf256_mul 2 (s 3))

let add_round_key_ref state rk = Array.map2 (fun a b -> a lxor b) state rk

let encrypt_reference ~key block =
  if Array.length key <> 16 || Array.length block <> 16 then
    invalid_arg "Aes128.encrypt_reference";
  let round_keys = expand_key_ref key in
  let state = ref (add_round_key_ref block round_keys.(0)) in
  for round = 1 to 9 do
    state := Array.map sbox !state;
    state := shift_rows_ref !state;
    state := mix_columns_ref !state;
    state := add_round_key_ref !state round_keys.(round)
  done;
  state := Array.map sbox !state;
  state := shift_rows_ref !state;
  add_round_key_ref !state round_keys.(10)

(* --- circuit --- *)

(* Bytes are little-endian arrays of 8 Boolean wires. *)

let xor_bytes b x y = Gadgets.xor_word b x y

(* Carryless GF(2^8) product of two bit-decomposed bytes, reduced mod
   x^8 + x^4 + x^3 + x + 1. *)
let gf256_mul_bits b x y =
  (* 15 partial-product bits p_k = xor_{i+j=k} x_i y_j. *)
  let partial = Array.make 15 None in
  for i = 0 to 7 do
    for j = 0 to 7 do
      let prod = Gadgets.band b x.(i) y.(j) in
      let k = i + j in
      partial.(k) <-
        (match partial.(k) with
        | None -> Some prod
        | Some acc -> Some (Gadgets.bxor b acc prod))
    done
  done;
  let p = Array.map Option.get partial in
  (* Reduce the high bits: x^k = x^(k-8) * (x^4 + x^3 + x + 1) for k >= 8. *)
  let out = Array.sub p 0 8 in
  for k = 14 downto 8 do
    let hi = p.(k) in
    List.iter
      (fun off ->
        let dst = k - 8 + off in
        if dst < 8 then out.(dst) <- Gadgets.bxor b out.(dst) hi
        else p.(dst) <- Gadgets.bxor b p.(dst) hi)
      [ 0; 1; 3; 4 ]
  done;
  out

let byte_wires b ~public v =
  let wire = if public then Builder.input b (Gf.of_int v) else Builder.witness b (Gf.of_int v) in
  Gadgets.bits_of b ~width:8 wire

let value_of_bits b bits =
  Array.to_list bits
  |> List.mapi (fun i w -> Int64.to_int (Gf.to_int64 (Builder.value b w)) lsl i)
  |> List.fold_left ( lor ) 0

(* In-circuit S-box: witness the GF(2^8) inverse, check x * inv = 1 (or both
   zero), apply the affine map. *)
let sbox_bits b x =
  let xv = value_of_bits b x in
  let inv = Array.init 8 (fun i ->
      let bit = (gf256_inv xv lsr i) land 1 in
      let w = Builder.witness b (Gf.of_int bit) in
      Gadgets.assert_bool b w;
      w)
  in
  (* is_zero(x) over the packed byte. *)
  let packed = Gadgets.pack b x in
  let isz = Gadgets.is_zero b packed in
  let prod = gf256_mul_bits b x inv in
  (* prod = 1 - isz in the low bit, 0 elsewhere; and isz forces inv = 0. *)
  Gadgets.assert_equal b
    (Builder.lc_var prod.(0))
    (Builder.lc_add (Builder.lc_const Gf.one) (Builder.lc_scale (Gf.neg Gf.one) (Builder.lc_var isz)));
  for i = 1 to 7 do
    Gadgets.assert_equal b (Builder.lc_var prod.(i)) []
  done;
  Array.iter (fun iw -> Builder.constrain b (Builder.lc_var isz) (Builder.lc_var iw) []) inv;
  (* Affine map: XORs of rotated bits plus the 0x63 constant. *)
  Array.init 8 (fun i ->
      let t1 = Gadgets.bxor b inv.(i) inv.((i + 4) mod 8) in
      let t2 = Gadgets.bxor b inv.((i + 5) mod 8) inv.((i + 6) mod 8) in
      let t3 = Gadgets.bxor b t1 t2 in
      let t4 = Gadgets.bxor b t3 inv.((i + 7) mod 8) in
      if (0x63 lsr i) land 1 = 1 then Gadgets.bnot b t4 else t4)

let xtime_bits b x =
  let msb = x.(7) in
  Array.init 8 (fun i ->
      let shifted = if i = 0 then None else Some x.(i - 1) in
      let needs_poly = (0x1b lsr i) land 1 = 1 in
      match (shifted, needs_poly) with
      | None, true -> msb (* bit 0: 0 ^ msb *)
      | None, false -> Gadgets.band b msb (Gadgets.bnot b msb) (* constant 0 *)
      | Some s, true -> Gadgets.bxor b s msb
      | Some s, false -> s)

let mix_columns_bits b state =
  let s r c = state.((4 * c) + r) in
  Array.init 16 (fun i ->
      let r = i mod 4 and c = i / 4 in
      let two x = xtime_bits b x in
      let three x = xor_bytes b (xtime_bits b x) x in
      let ( ^^ ) = xor_bytes b in
      match r with
      | 0 -> two (s 0 c) ^^ three (s 1 c) ^^ s 2 c ^^ s 3 c
      | 1 -> s 0 c ^^ two (s 1 c) ^^ three (s 2 c) ^^ s 3 c
      | 2 -> s 0 c ^^ s 1 c ^^ two (s 2 c) ^^ three (s 3 c)
      | _ -> three (s 0 c) ^^ s 1 c ^^ s 2 c ^^ two (s 3 c))

let shift_rows_bits state =
  Array.init 16 (fun i ->
      let r = i mod 4 and c = i / 4 in
      state.((4 * (((c + r) mod 4)) + r)))

let expand_key_bits b key_bytes =
  let w = Array.make 44 [||] in
  for i = 0 to 3 do
    w.(i) <- Array.init 4 (fun j -> key_bytes.((4 * i) + j))
  done;
  for i = 4 to 43 do
    let temp =
      if i mod 4 = 0 then begin
        let rotated = [| w.(i - 1).(1); w.(i - 1).(2); w.(i - 1).(3); w.(i - 1).(0) |] in
        let subbed = Array.map (sbox_bits b) rotated in
        let rc = rcon.((i / 4) - 1) in
        subbed.(0) <-
          Array.mapi
            (fun bit wv -> if (rc lsr bit) land 1 = 1 then Gadgets.bnot b wv else wv)
            subbed.(0);
        subbed
      end
      else w.(i - 1)
    in
    w.(i) <- Array.map2 (fun a t -> xor_bytes b a t) w.(i - 4) temp
  done;
  Array.init 11 (fun r -> Array.init 16 (fun j -> w.((4 * r) + (j / 4)).(j mod 4)))

let build b ~key ~plaintext =
  if Array.length key <> 16 || Array.length plaintext <> 16 then
    invalid_arg "Aes128.build";
  let key_bits = Array.map (fun v -> byte_wires b ~public:false v) key in
  let pt_bits = Array.map (fun v -> byte_wires b ~public:true v) plaintext in
  let round_keys = expand_key_bits b key_bits in
  let add_rk state rk = Array.map2 (fun s k -> xor_bytes b s k) state rk in
  let state = ref (add_rk pt_bits round_keys.(0)) in
  for round = 1 to 9 do
    state := Array.map (sbox_bits b) !state;
    state := shift_rows_bits !state;
    state := mix_columns_bits b !state;
    state := add_rk !state round_keys.(round)
  done;
  state := Array.map (sbox_bits b) !state;
  state := shift_rows_bits !state;
  state := add_rk !state round_keys.(10);
  Array.map (fun bits -> Gadgets.pack b bits) !state

let circuit ~blocks ~seed () =
  let rng = Rng.create seed in
  let b = Builder.create () in
  let key = Array.init 16 (fun _ -> Rng.int rng 256) in
  for _ = 1 to blocks do
    let plaintext = Array.init 16 (fun _ -> Rng.int rng 256) in
    let expected = encrypt_reference ~key plaintext in
    let ct = build b ~key ~plaintext in
    Array.iteri
      (fun i wire ->
        let out = Builder.input b (Gf.of_int expected.(i)) in
        Gadgets.assert_equal b (Builder.lc_var wire) (Builder.lc_var out))
      ct
  done;
  Builder.finalize b
