module Gf = Zk_field.Gf
module Builder = Zk_r1cs.Builder
module Gadgets = Zk_r1cs.Gadgets
module Rng = Zk_util.Rng

let state_bytes = 16

(* chi-style S-box on a byte: bit i becomes b_i xor (not b_{i+1} and b_{i+2}). *)
let sbox_ref b =
  let bit x i = (x lsr i) land 1 in
  let out = ref 0 in
  for i = 0 to 7 do
    let v = bit b i lxor (lnot (bit b ((i + 1) mod 8)) land 1 land bit b ((i + 2) mod 8)) in
    out := !out lor (v lsl i)
  done;
  !out

(* ShiftRows-style byte rotation: row r of the 4x4 state rotates by r. *)
let shift_rows_ref st =
  Array.init state_bytes (fun i ->
      let r = i / 4 and c = i mod 4 in
      st.((r * 4) + ((c + r) mod 4)))

(* MixColumns-lite: XOR each byte with the next byte in its column. *)
let mix_columns_ref st =
  Array.init state_bytes (fun i ->
      let r = i / 4 and c = i mod 4 in
      st.(i) lxor st.((((r + 1) mod 4) * 4) + c))

let reference ~plaintext ~keys =
  Array.fold_left
    (fun st key ->
      let st = Array.mapi (fun i b -> b lxor key.(i)) st in
      let st = Array.map sbox_ref st in
      let st = shift_rows_ref st in
      mix_columns_ref st)
    (Array.copy plaintext) keys

(* Circuit versions operating on bytes as arrays of 8 Boolean wires. *)

let sbox_gadget b bits =
  Array.init 8 (fun i ->
      let t = Gadgets.band b (Gadgets.bnot b bits.((i + 1) mod 8)) bits.((i + 2) mod 8) in
      Gadgets.bxor b bits.(i) t)

let build b ~plaintext ~keys =
  let to_bits_public byte =
    let v = Builder.input b (Gf.of_int byte) in
    Gadgets.bits_of b ~width:8 v
  in
  let to_bits_witness byte =
    let v = Builder.witness b (Gf.of_int byte) in
    Gadgets.bits_of b ~width:8 v
  in
  let state = ref (Array.map to_bits_public plaintext) in
  Array.iter
    (fun key ->
      let key_bits = Array.map to_bits_witness key in
      let st = Array.map2 (fun s k -> Gadgets.xor_word b s k) !state key_bits in
      let st = Array.map (sbox_gadget b) st in
      let st =
        Array.init state_bytes (fun i ->
            let r = i / 4 and c = i mod 4 in
            st.((r * 4) + ((c + r) mod 4)))
      in
      let st =
        Array.init state_bytes (fun i ->
            let r = i / 4 and c = i mod 4 in
            Gadgets.xor_word b st.(i) st.((((r + 1) mod 4) * 4) + c))
      in
      state := st)
    keys;
  Array.map (fun bits -> Gadgets.pack b bits) !state

let circuit ?(rounds = 10) ~blocks ~seed () =
  let rng = Rng.create seed in
  let b = Builder.create () in
  for _ = 1 to blocks do
    let plaintext = Array.init state_bytes (fun _ -> Rng.int rng 256) in
    let keys = Array.init rounds (fun _ -> Array.init state_bytes (fun _ -> Rng.int rng 256)) in
    let expected = reference ~plaintext ~keys in
    let ct = build b ~plaintext ~keys in
    Array.iteri
      (fun i wire ->
        let out = Builder.input b (Gf.of_int expected.(i)) in
        Gadgets.assert_equal b (Builder.lc_var wire) (Builder.lc_var out))
      ct
  done;
  Builder.finalize b
