(** The paper's benchmark suite (Table III): scaled-up PipeZK circuits plus
    the Litmus verifiable database.

    Each descriptor records the paper-scale R1CS size and the matrix-density
    factor relative to AES (derived from the paper's per-benchmark
    measurements; denser circuits such as Auction's comparator trees do
    proportionally more work per constraint). [generate] builds a {e real}
    satisfiable circuit of the same kind at a feasible size for correctness
    runs; the paper-scale sizes drive the performance models. *)

type t = {
  name : string;
  description : string;
  r1cs_size : float; (** paper-scale constraint count (Table III) *)
  density : float; (** average matrix-row density relative to AES *)
  paper_proof_mb : float; (** Table III *)
  paper_verify_ms : float; (** Table III *)
  generate : int -> Zk_r1cs.R1cs.instance * Zk_r1cs.R1cs.assignment;
      (** [generate scale] builds a real instance; [scale] is a small
          repetition count (blocks / bids / transactions). The AES benchmark
          uses the bit-accurate {!Aes128} (~49k constraints per block). *)
}

val aes : t
val sha : t
val rsa : t
val litmus : t
val auction : t

val all : t list
(** In Table III order. *)

val find : string -> t
(** Lookup by (case-insensitive) name. @raise Not_found. *)

val measured_density :
  Zk_r1cs.R1cs.instance -> float
(** Nonzeros per constraint row of a generated instance — used to check that
    the density ordering of the real generators matches the calibrated
    factors. *)
