(** A bit-accurate AES-style substitution-permutation cipher circuit: the
    "AES" benchmark's stand-in at feasible scale (see DESIGN.md).

    The state is 16 bytes. Each round XORs a witness round key, applies a
    chi-style nonlinear byte S-box, rotates rows (free rewiring), and mixes
    columns with XORs — the same gate profile (bitwise XOR/AND over
    bit-decomposed bytes) that makes real AES circuits large. The proof shows
    knowledge of a key taking a public plaintext to a public ciphertext. *)

val reference : plaintext:int array -> keys:int array array -> int array
(** Software model: 16 plaintext bytes, one 16-byte key per round; returns
    the ciphertext bytes. *)

val build :
  Zk_r1cs.Builder.t ->
  plaintext:int array ->
  keys:int array array ->
  Zk_r1cs.Builder.var array
(** Append the cipher to a builder: allocates the plaintext as public inputs
    and the keys as witnesses, returns the ciphertext wires (callers assert
    them against public outputs). *)

val circuit :
  ?rounds:int ->
  blocks:int ->
  seed:int64 ->
  unit ->
  Zk_r1cs.R1cs.instance * Zk_r1cs.R1cs.assignment
(** A complete instance encrypting [blocks] random blocks under random keys
    (10 rounds each by default), with plaintexts and ciphertexts public. *)
