(** A reduced-width Keccak permutation as an R1CS circuit — the "SHA"
    benchmark's stand-in: the real theta/rho/pi/chi/iota round structure over
    a 5x5 state of [w]-bit lanes (w = 8 here instead of 64), built from
    XOR/AND bit gadgets. Proves knowledge of a preimage state mapping to a
    public output state. *)

val lanes : int
(** 25. *)

val reference : rounds:int -> lane_bits:int -> int array -> int array
(** Software model of the reduced permutation on 25 lanes. *)

val build :
  Zk_r1cs.Builder.t ->
  rounds:int ->
  lane_bits:int ->
  preimage:int array ->
  Zk_r1cs.Builder.var array
(** Allocates the preimage as witness lanes, returns the output lane wires. *)

val circuit :
  ?rounds:int ->
  ?lane_bits:int ->
  blocks:int ->
  seed:int64 ->
  unit ->
  Zk_r1cs.R1cs.instance * Zk_r1cs.R1cs.assignment
