module Gf = Zk_field.Gf
module Builder = Zk_r1cs.Builder
module Gadgets = Zk_r1cs.Gadgets
module Rng = Zk_util.Rng

type op = Read | Write of int

type transaction = { row_a : int; op_a : op; row_b : int; op_b : op }

let value_bits = 16

let random_transactions rng ~rows ~count =
  let access () =
    let row = Rng.int rng rows in
    let op = if Rng.bool rng then Read else Write (Rng.int rng (1 lsl value_bits)) in
    (row, op)
  in
  List.init count (fun _ ->
      let row_a, op_a = access () in
      let row_b, op_b = access () in
      { row_a; op_a; row_b; op_b })

let apply state txs =
  let st = Array.copy state in
  List.iter
    (fun tx ->
      (match tx.op_a with Read -> () | Write v -> st.(tx.row_a) <- v);
      match tx.op_b with Read -> () | Write v -> st.(tx.row_b) <- v)
    txs;
  st

(* One data-dependent access: returns the read value wire and the updated
   state wires. *)
let access b state ~rows ~row ~op =
  (* One-hot selector over the table, witnessed and constrained. *)
  let sel =
    Array.init rows (fun j ->
        let bit = Builder.witness b (if j = row then Gf.one else Gf.zero) in
        Gadgets.assert_bool b bit;
        bit)
  in
  let sum_lc = Array.to_list sel |> List.map (fun s -> (s, Gf.one)) in
  Gadgets.assert_equal b sum_lc (Builder.lc_const Gf.one);
  (* Read: value = sum_j sel_j * state_j. *)
  let partials = Array.mapi (fun j s -> Gadgets.mul b sel.(j) (ignore s; state.(j))) sel in
  let read =
    Gadgets.add_lc b (Array.to_list partials |> List.map (fun p -> (p, Gf.one)))
  in
  match op with
  | Read -> (read, state)
  | Write v ->
    let newval = Builder.witness b (Gf.of_int v) in
    let state' =
      Array.mapi (fun j old -> Gadgets.select b ~cond:sel.(j) newval old) state
    in
    (read, state')

let circuit ~rows ~transactions ~seed () =
  let rng = Rng.create seed in
  let b = Builder.create () in
  let init = Array.init rows (fun _ -> Rng.int rng (1 lsl value_bits)) in
  let state = ref (Array.map (fun v -> Builder.input b (Gf.of_int v)) init) in
  List.iter
    (fun tx ->
      let _, st1 = access b !state ~rows ~row:tx.row_a ~op:tx.op_a in
      let _, st2 = access b st1 ~rows ~row:tx.row_b ~op:tx.op_b in
      state := st2)
    transactions;
  let expected = apply init transactions in
  Array.iteri
    (fun j wire ->
      let out = Builder.input b (Gf.of_int expected.(j)) in
      Gadgets.assert_equal b (Builder.lc_var wire) (Builder.lc_var out))
    !state;
  Builder.finalize b
