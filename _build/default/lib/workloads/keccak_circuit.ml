module Gf = Zk_field.Gf
module Builder = Zk_r1cs.Builder
module Gadgets = Zk_r1cs.Gadgets
module Rng = Zk_util.Rng

let lanes = 25

let rotations =
  [| 0; 1; 6; 4; 3; 4; 4; 6; 7; 4; 3; 2; 3; 1; 7; 1; 5; 7; 5; 0; 2; 2; 5; 0; 6 |]
(* Keccak rho offsets reduced mod the lane width (8). *)

let round_constants = [| 0x01; 0x82; 0x8A; 0x00; 0x8B; 0x01; 0x81; 0x09; 0x8A; 0x88; 0x09; 0x0A |]

let rotl w x n =
  let n = n mod w in
  ((x lsl n) lor (x lsr (w - n))) land ((1 lsl w) - 1)

let reference ~rounds ~lane_bits st0 =
  let mask = (1 lsl lane_bits) - 1 in
  let st = Array.copy st0 in
  for round = 0 to rounds - 1 do
    (* theta *)
    let c = Array.init 5 (fun x -> st.(x) lxor st.(x + 5) lxor st.(x + 10) lxor st.(x + 15) lxor st.(x + 20)) in
    let d = Array.init 5 (fun x -> c.((x + 4) mod 5) lxor rotl lane_bits c.((x + 1) mod 5) 1) in
    for x = 0 to 4 do
      for y = 0 to 4 do
        st.(x + (5 * y)) <- st.(x + (5 * y)) lxor d.(x)
      done
    done;
    (* rho + pi *)
    let b = Array.make lanes 0 in
    for x = 0 to 4 do
      for y = 0 to 4 do
        let src = x + (5 * y) in
        b.(y + (5 * (((2 * x) + (3 * y)) mod 5))) <- rotl lane_bits st.(src) rotations.(src)
      done
    done;
    (* chi *)
    for y = 0 to 4 do
      for x = 0 to 4 do
        st.(x + (5 * y)) <-
          b.(x + (5 * y)) lxor (lnot b.(((x + 1) mod 5) + (5 * y)) land mask land b.(((x + 2) mod 5) + (5 * y)))
      done
    done;
    (* iota *)
    st.(0) <- st.(0) lxor (round_constants.(round mod Array.length round_constants) land mask)
  done;
  st

let build b ~rounds ~lane_bits ~preimage =
  let w = lane_bits in
  let lane_of_int v =
    let wire = Builder.witness b (Gf.of_int v) in
    Gadgets.bits_of b ~width:w wire
  in
  let st = ref (Array.map lane_of_int preimage) in
  for round = 0 to rounds - 1 do
    let cur = !st in
    let xor = Gadgets.xor_word b in
    let c =
      Array.init 5 (fun x ->
          xor (xor (xor (xor cur.(x) cur.(x + 5)) cur.(x + 10)) cur.(x + 15)) cur.(x + 20))
    in
    let d = Array.init 5 (fun x -> xor c.((x + 4) mod 5) (Gadgets.rotl_word c.((x + 1) mod 5) 1)) in
    let st1 = Array.init lanes (fun i -> xor cur.(i) d.(i mod 5)) in
    let bmat = Array.make lanes [||] in
    for x = 0 to 4 do
      for y = 0 to 4 do
        let src = x + (5 * y) in
        bmat.(y + (5 * (((2 * x) + (3 * y)) mod 5))) <- Gadgets.rotl_word st1.(src) rotations.(src)
      done
    done;
    let st2 =
      Array.init lanes (fun i ->
          let x = i mod 5 and y = i / 5 in
          let nb = Array.map (Gadgets.bnot b) bmat.(((x + 1) mod 5) + (5 * y)) in
          let t = Array.map2 (fun p q -> Gadgets.band b p q) nb bmat.(((x + 2) mod 5) + (5 * y)) in
          Array.map2 (fun p q -> Gadgets.bxor b p q) bmat.(i) t)
    in
    (* iota: xor a constant into lane 0 (flip the constrained constant bits). *)
    let rc = round_constants.(round mod Array.length round_constants) land ((1 lsl w) - 1) in
    let lane0 =
      Array.mapi
        (fun i bit -> if (rc lsr i) land 1 = 1 then Gadgets.bnot b bit else bit)
        st2.(0)
    in
    st2.(0) <- lane0;
    st := st2
  done;
  Array.map (fun bits -> Gadgets.pack b bits) !st

let circuit ?(rounds = 12) ?(lane_bits = 8) ~blocks ~seed () =
  let rng = Rng.create seed in
  let b = Builder.create () in
  for _ = 1 to blocks do
    let preimage = Array.init lanes (fun _ -> Rng.int rng (1 lsl lane_bits)) in
    let expected = reference ~rounds ~lane_bits preimage in
    let out = build b ~rounds ~lane_bits ~preimage in
    Array.iteri
      (fun i wire ->
        let pub = Builder.input b (Gf.of_int expected.(i)) in
        Gadgets.assert_equal b (Builder.lc_var wire) (Builder.lc_var pub))
      out
  done;
  Builder.finalize b
