module Gf = Zk_field.Gf
module Builder = Zk_r1cs.Builder
module Gadgets = Zk_r1cs.Gadgets
module Rng = Zk_util.Rng

let reference ~x ~e ~n =
  let rec go acc base e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then acc * base mod n else acc in
      go acc (base * base mod n) (e lsr 1)
  in
  go 1 (x mod n) e

(* r = a * b mod n as a gadget: witness q, r with a*b = q*n + r, r < n,
   q < 2^width. *)
let mulmod b ~width ~n va vb =
  let a = Gf.to_int64 (Builder.value b va) |> Int64.to_int in
  let bb = Gf.to_int64 (Builder.value b vb) |> Int64.to_int in
  let product = a * bb in
  let q = Builder.witness b (Gf.of_int (product / n)) in
  let r = Builder.witness b (Gf.of_int (product mod n)) in
  (* a * b = q * n + r *)
  Builder.constrain b (Builder.lc_var va) (Builder.lc_var vb)
    (Builder.lc_add (Builder.lc_scale (Gf.of_int n) (Builder.lc_var q)) (Builder.lc_var r));
  (* Range checks. *)
  ignore (Gadgets.bits_of b ~width:(2 * width) q);
  ignore (Gadgets.bits_of b ~width r);
  let nv = Gadgets.add_lc b (Builder.lc_const (Gf.of_int n)) in
  let lt = Gadgets.less_than b ~width r nv in
  Gadgets.assert_equal b (Builder.lc_var lt) (Builder.lc_const Gf.one);
  r

let circuit ?(modulus = 3329) ?(exponent = 17) ~instances ~seed () =
  let width =
    let rec go w = if 1 lsl w > modulus then w else go (w + 1) in
    go 1
  in
  let rng = Rng.create seed in
  let b = Builder.create () in
  for _ = 1 to instances do
    let x = 1 + Rng.int rng (modulus - 1) in
    let y = reference ~x ~e:exponent ~n:modulus in
    let xv = Builder.witness b (Gf.of_int x) in
    ignore (Gadgets.bits_of b ~width xv);
    (* Square-and-multiply over the fixed public exponent. *)
    let bits =
      let rec go e acc = if e = 0 then acc else go (e lsr 1) ((e land 1) :: acc) in
      go exponent []
    in
    let acc = ref (Gadgets.add_lc b (Builder.lc_const Gf.one)) in
    List.iter
      (fun bit ->
        acc := mulmod b ~width ~n:modulus !acc !acc;
        if bit = 1 then acc := mulmod b ~width ~n:modulus !acc xv)
      bits;
    let out = Builder.input b (Gf.of_int y) in
    Gadgets.assert_equal b (Builder.lc_var !acc) (Builder.lc_var out)
  done;
  Builder.finalize b
