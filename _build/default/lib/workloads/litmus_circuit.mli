(** Litmus-style verifiable database transactions (SIGMOD'22; the paper's
    "Litmus" benchmark): prove that a batch of YCSB-style transactions — each
    touching two rows, reading or writing with equal probability (Sec. VII-B)
    — takes a public initial table state to a public final state.

    Row addressing is data-dependent, so each access multiplexes over the
    whole table with a one-hot selector (the standard R1CS memory circuit):
    selector bits are Boolean-constrained, sum to one, and gate both the read
    value and the conditional write-back. *)

type op = Read | Write of int

type transaction = { row_a : int; op_a : op; row_b : int; op_b : op }

val random_transactions :
  Zk_util.Rng.t -> rows:int -> count:int -> transaction list
(** YCSB-style: two uniform rows per transaction, read or write with equal
    probability. *)

val apply : int array -> transaction list -> int array
(** Software reference: final table contents. *)

val circuit :
  rows:int ->
  transactions:transaction list ->
  seed:int64 ->
  unit ->
  Zk_r1cs.R1cs.instance * Zk_r1cs.R1cs.assignment
(** Initial and final states are public; row indices and written values are
    witness data. *)
