(** Modular exponentiation circuit — the "RSA" benchmark's stand-in: prove
    knowledge of [x] with [x^e = y (mod n)] for public [e], [n], [y].

    Square-and-multiply, with each modular step done the standard R1CS way:
    witness the quotient and remainder of [t = q*n + r], range-check both
    (bit decomposition plus a comparison against [n]). The modulus is small
    (default 12 bits) but the constraint profile — big packing rows from the
    range checks — is the dense-row shape that makes RSA circuits heavier per
    constraint than AES (Table III vs. Table IV). *)

val reference : x:int -> e:int -> n:int -> int

val circuit :
  ?modulus:int ->
  ?exponent:int ->
  instances:int ->
  seed:int64 ->
  unit ->
  Zk_r1cs.R1cs.instance * Zk_r1cs.R1cs.assignment
(** [instances] independent exponentiation proofs; modulus defaults to 3329
    (12 bits), exponent to 65537's small stand-in 17. *)
