module Gf = Zk_field.Gf
module Builder = Zk_r1cs.Builder
module Gadgets = Zk_r1cs.Gadgets
module Rng = Zk_util.Rng

let k_constants =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

let iv =
  [|
    0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c;
    0x1f83d9ab; 0x5be0cd19;
  |]

let mask = 0xffffffff

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

let shr x n = x lsr n

let compress_reference ~block state =
  if Array.length block <> 16 || Array.length state <> 8 then
    invalid_arg "Sha256_circuit.compress_reference";
  let w = Array.make 64 0 in
  Array.blit block 0 w 0 16;
  for t = 16 to 63 do
    let s0 = rotr w.(t - 15) 7 lxor rotr w.(t - 15) 18 lxor shr w.(t - 15) 3 in
    let s1 = rotr w.(t - 2) 17 lxor rotr w.(t - 2) 19 lxor shr w.(t - 2) 10 in
    w.(t) <- (w.(t - 16) + s0 + w.(t - 7) + s1) land mask
  done;
  let a = ref state.(0) and b = ref state.(1) and c = ref state.(2) and d = ref state.(3) in
  let e = ref state.(4) and f = ref state.(5) and g = ref state.(6) and h = ref state.(7) in
  for t = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = !e land !f lxor (lnot !e land mask land !g) in
    let t1 = (!h + s1 + ch + k_constants.(t) + w.(t)) land mask in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = !a land !b lxor (!a land !c) lxor (!b land !c) in
    let t2 = (s0 + maj) land mask in
    h := !g;
    g := !f;
    f := !e;
    e := (!d + t1) land mask;
    d := !c;
    c := !b;
    b := !a;
    a := (t1 + t2) land mask
  done;
  [|
    (state.(0) + !a) land mask; (state.(1) + !b) land mask;
    (state.(2) + !c) land mask; (state.(3) + !d) land mask;
    (state.(4) + !e) land mask; (state.(5) + !f) land mask;
    (state.(6) + !g) land mask; (state.(7) + !h) land mask;
  |]

let sha256_reference msg =
  let len = Bytes.length msg in
  (* Pad: 0x80, zeros, 64-bit big-endian bit length. *)
  let total = ((len + 8) / 64 * 64) + 64 in
  let padded = Bytes.make total '\x00' in
  Bytes.blit msg 0 padded 0 len;
  Bytes.set padded len '\x80';
  let bits = Int64.of_int (8 * len) in
  for i = 0 to 7 do
    Bytes.set padded
      (total - 1 - i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
  done;
  let state = ref (Array.copy iv) in
  for blk = 0 to (total / 64) - 1 do
    let block =
      Array.init 16 (fun w ->
          let base = (blk * 64) + (4 * w) in
          (Char.code (Bytes.get padded base) lsl 24)
          lor (Char.code (Bytes.get padded (base + 1)) lsl 16)
          lor (Char.code (Bytes.get padded (base + 2)) lsl 8)
          lor Char.code (Bytes.get padded (base + 3)))
    in
    state := compress_reference ~block !state
  done;
  String.concat "" (Array.to_list (Array.map (Printf.sprintf "%08x") !state))

(* --- circuit: words are 32-element little-endian bit-wire arrays --- *)

let word_wires b ~public v =
  let wire =
    if public then Builder.input b (Gf.of_int v) else Builder.witness b (Gf.of_int v)
  in
  Gadgets.bits_of b ~width:32 wire

let const_word b v = Gadgets.const_word b ~width:32 (Int64.of_int v)

let rotr_bits bits n = Array.init 32 (fun i -> bits.((i + n) mod 32))

(* Logical right shift: the vacated high bits become a shared constant-zero
   wire. *)
let shr_bits b bits n =
  let zero =
    let w = Builder.witness b Gf.zero in
    Gadgets.assert_equal b (Builder.lc_var w) [];
    w
  in
  Array.init 32 (fun i -> if i + n < 32 then bits.(i + n) else zero)

let xor3 b x y z = Gadgets.xor_word b (Gadgets.xor_word b x y) z

(* Modular 2^32 sum of several words: add the packed values over the field,
   decompose the wide sum, keep the low 32 bits. *)
let add_mod32 b words =
  let lc =
    List.concat_map
      (fun bits ->
        Array.to_list bits
        |> List.mapi (fun i w -> (w, Gf.of_int64 (Int64.shift_left 1L i))))
      words
  in
  let total = Gadgets.add_lc b lc in
  let extra =
    let rec bits_needed n acc = if n <= 1 then acc else bits_needed ((n + 1) / 2) (acc + 1) in
    bits_needed (List.length words) 0
  in
  let wide = Gadgets.bits_of b ~width:(32 + extra) total in
  Array.sub wide 0 32

let ch_bits b e f g =
  (* ch = (e & f) ^ (~e & g) *)
  Array.init 32 (fun i ->
      let ef = Gadgets.band b e.(i) f.(i) in
      let neg = Gadgets.band b (Gadgets.bnot b e.(i)) g.(i) in
      Gadgets.bxor b ef neg)

let maj_bits b a bb c =
  Array.init 32 (fun i ->
      let ab = Gadgets.band b a.(i) bb.(i) in
      let ac = Gadgets.band b a.(i) c.(i) in
      let bc = Gadgets.band b bb.(i) c.(i) in
      Gadgets.bxor b (Gadgets.bxor b ab ac) bc)

let build b ~block =
  if Array.length block <> 16 then invalid_arg "Sha256_circuit.build";
  let w = Array.make 64 [||] in
  for t = 0 to 15 do
    w.(t) <- word_wires b ~public:false block.(t)
  done;
  for t = 16 to 63 do
    let s0 =
      xor3 b (rotr_bits w.(t - 15) 7) (rotr_bits w.(t - 15) 18) (shr_bits b w.(t - 15) 3)
    in
    let s1 =
      xor3 b (rotr_bits w.(t - 2) 17) (rotr_bits w.(t - 2) 19) (shr_bits b w.(t - 2) 10)
    in
    w.(t) <- add_mod32 b [ w.(t - 16); s0; w.(t - 7); s1 ]
  done;
  let state = Array.map (fun v -> const_word b v) iv in
  let a = ref state.(0) and bb = ref state.(1) and c = ref state.(2) and d = ref state.(3) in
  let e = ref state.(4) and f = ref state.(5) and g = ref state.(6) and h = ref state.(7) in
  for t = 0 to 63 do
    let s1 = xor3 b (rotr_bits !e 6) (rotr_bits !e 11) (rotr_bits !e 25) in
    let ch = ch_bits b !e !f !g in
    let t1 = add_mod32 b [ !h; s1; ch; const_word b k_constants.(t); w.(t) ] in
    let s0 = xor3 b (rotr_bits !a 2) (rotr_bits !a 13) (rotr_bits !a 22) in
    let maj = maj_bits b !a !bb !c in
    let t2 = add_mod32 b [ s0; maj ] in
    h := !g;
    g := !f;
    f := !e;
    e := add_mod32 b [ !d; t1 ];
    d := !c;
    c := !bb;
    bb := !a;
    a := add_mod32 b [ t1; t2 ]
  done;
  let finals = [| !a; !bb; !c; !d; !e; !f; !g; !h |] in
  Array.mapi
    (fun i final -> Gadgets.pack b (add_mod32 b [ state.(i); final ]))
    finals

let circuit ~blocks ~seed () =
  let rng = Rng.create seed in
  let b = Builder.create () in
  for _ = 1 to blocks do
    let block = Array.init 16 (fun _ -> Rng.int rng (1 lsl 30) lor (Rng.int rng 4 lsl 30)) in
    let expected = compress_reference ~block (Array.copy iv) in
    let digest = build b ~block in
    Array.iteri
      (fun i wire ->
        let out = Builder.input b (Gf.of_int expected.(i)) in
        Gadgets.assert_equal b (Builder.lc_var wire) (Builder.lc_var out))
      digest
  done;
  Builder.finalize b
