lib/poly/mle.mli: Zk_field
