lib/poly/dense.mli: Zk_field Zk_util
