lib/poly/mle.ml: Array Zk_field
