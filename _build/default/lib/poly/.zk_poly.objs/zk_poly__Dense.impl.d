lib/poly/dense.ml: Array Int64 List Zk_field Zk_ntt Zk_util
