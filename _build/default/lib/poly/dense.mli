(** Dense univariate polynomials over Goldilocks-64, coefficients in
    little-endian order ([coeffs.(i)] multiplies [x^i]).

    Products go through the NTT (transform, pointwise multiply, inverse
    transform), which is the "polynomial arithmetic" task of Sec. V-A. *)

type t = Zk_field.Gf.t array

val zero : t
val constant : Zk_field.Gf.t -> t
val of_coeffs : Zk_field.Gf.t array -> t

val degree : t -> int
(** Degree of the trimmed polynomial; [-1] for the zero polynomial. *)

val trim : t -> t
(** Drop trailing zero coefficients. *)

val equal : t -> t -> bool
val add : t -> t -> t
val sub : t -> t -> t
val scale : Zk_field.Gf.t -> t -> t

val mul : t -> t -> t
(** NTT-based product. *)

val mul_naive : t -> t -> t
(** Quadratic schoolbook product (reference for tests). *)

val eval : t -> Zk_field.Gf.t -> Zk_field.Gf.t
(** Horner evaluation. *)

val random : Zk_util.Rng.t -> degree:int -> t

val interpolate_eval :
  xs:Zk_field.Gf.t array -> ys:Zk_field.Gf.t array -> Zk_field.Gf.t -> Zk_field.Gf.t
(** [interpolate_eval ~xs ~ys r] evaluates at [r] the unique polynomial of
    degree [< length xs] through the points [(xs.(i), ys.(i))] (Lagrange).
    Used by the sumcheck verifier to evaluate round polynomials. *)

val interpolate_eval_small : Zk_field.Gf.t array -> Zk_field.Gf.t -> Zk_field.Gf.t
(** Specialization of {!interpolate_eval} to nodes [0, 1, ..., d]: evaluates
    the degree-[d] polynomial with values [ys] on [0..d] at a point. *)

val div_rem : t -> t -> t * t
(** [div_rem p q] is [(quotient, remainder)] with
    [p = quotient * q + remainder] and [degree remainder < degree q].
    @raise Division_by_zero on a zero divisor. *)

val interpolate : xs:Zk_field.Gf.t array -> ys:Zk_field.Gf.t array -> t
(** The unique polynomial of degree [< length xs] through the points
    (Lagrange; O(n^2)). Node values must be distinct. *)

val vanishing : Zk_field.Gf.t array -> t
(** [vanishing xs] = [prod_i (X - xs_i)]. *)
