module Gf = Zk_field.Gf
module Ntt = Zk_ntt.Ntt.Gf_ntt

type t = Gf.t array

let zero = [||]

let constant c = if Gf.equal c Gf.zero then [||] else [| c |]

let of_coeffs = Array.copy

let degree p =
  let rec go i = if i < 0 then -1 else if Gf.equal p.(i) Gf.zero then go (i - 1) else i in
  go (Array.length p - 1)

let trim p =
  let d = degree p in
  Array.sub p 0 (d + 1)

let equal p q =
  let dp = degree p and dq = degree q in
  dp = dq
  &&
  let rec go i = i > dp || (Gf.equal p.(i) q.(i) && go (i + 1)) in
  go 0

let add p q =
  let n = max (Array.length p) (Array.length q) in
  Array.init n (fun i ->
      let a = if i < Array.length p then p.(i) else Gf.zero in
      let b = if i < Array.length q then q.(i) else Gf.zero in
      Gf.add a b)

let sub p q =
  let n = max (Array.length p) (Array.length q) in
  Array.init n (fun i ->
      let a = if i < Array.length p then p.(i) else Gf.zero in
      let b = if i < Array.length q then q.(i) else Gf.zero in
      Gf.sub a b)

let scale c p = Array.map (Gf.mul c) p

let next_pow2 n =
  let rec go k = if k >= n then k else go (2 * k) in
  go 1

let mul_naive p q =
  let dp = degree p and dq = degree q in
  if dp < 0 || dq < 0 then [||]
  else begin
    let out = Array.make (dp + dq + 1) Gf.zero in
    for i = 0 to dp do
      for j = 0 to dq do
        out.(i + j) <- Gf.add out.(i + j) (Gf.mul p.(i) q.(j))
      done
    done;
    out
  end

let mul p q =
  let dp = degree p and dq = degree q in
  if dp < 0 || dq < 0 then [||]
  else if dp + dq < 32 then mul_naive p q
  else begin
    let n = next_pow2 (dp + dq + 1) in
    let plan = Ntt.plan n in
    let pa = Array.make n Gf.zero and qa = Array.make n Gf.zero in
    Array.blit p 0 pa 0 (dp + 1);
    Array.blit q 0 qa 0 (dq + 1);
    Ntt.forward plan pa;
    Ntt.forward plan qa;
    for i = 0 to n - 1 do
      pa.(i) <- Gf.mul pa.(i) qa.(i)
    done;
    Ntt.inverse plan pa;
    Array.sub pa 0 (dp + dq + 1)
  end

let eval p x =
  let acc = ref Gf.zero in
  for i = Array.length p - 1 downto 0 do
    acc := Gf.add (Gf.mul !acc x) p.(i)
  done;
  !acc

let random rng ~degree:d =
  Array.init (d + 1) (fun i ->
      if i = d then
        (* Keep the leading coefficient nonzero so the degree is exact. *)
        Gf.add Gf.one (Gf.of_int64 (Int64.rem (Zk_util.Rng.next rng) (Int64.sub Gf.p 1L)))
      else Gf.random rng)

let interpolate_eval ~xs ~ys r =
  let n = Array.length xs in
  if Array.length ys <> n then invalid_arg "Dense.interpolate_eval";
  (* If r coincides with a node, return the tabulated value (the barycentric
     formula below would divide by zero). *)
  let hit = ref None in
  Array.iteri (fun i x -> if Gf.equal x r then hit := Some ys.(i)) xs;
  match !hit with
  | Some y -> y
  | None ->
    (* Lagrange: sum_i ys_i * prod_{j<>i} (r - xs_j) / (xs_i - xs_j). *)
    let num = Array.map (fun x -> Gf.sub r x) xs in
    let full = Array.fold_left Gf.mul Gf.one num in
    let acc = ref Gf.zero in
    for i = 0 to n - 1 do
      let denom = ref num.(i) in
      for j = 0 to n - 1 do
        if j <> i then denom := Gf.mul !denom (Gf.sub xs.(i) xs.(j))
      done;
      acc := Gf.add !acc (Gf.mul ys.(i) (Gf.div full !denom))
    done;
    !acc

let interpolate_eval_small ys r =
  let xs = Array.init (Array.length ys) Gf.of_int in
  interpolate_eval ~xs ~ys r

let div_rem p q =
  let dq = degree q in
  if dq < 0 then raise Division_by_zero;
  let lead_inv = Gf.inv q.(dq) in
  let r = Array.copy (trim p) in
  let dp = degree r in
  if dp < dq then ([||], Array.copy r)
  else begin
    let quot = Array.make (dp - dq + 1) Gf.zero in
    for i = dp downto dq do
      let c = Gf.mul r.(i) lead_inv in
      if not (Gf.equal c Gf.zero) then begin
        quot.(i - dq) <- c;
        for j = 0 to dq do
          r.(i - dq + j) <- Gf.sub r.(i - dq + j) (Gf.mul c q.(j))
        done
      end
    done;
    (quot, trim r)
  end

let vanishing xs =
  Array.fold_left
    (fun acc x -> mul acc [| Gf.neg x; Gf.one |])
    [| Gf.one |] xs

let interpolate ~xs ~ys =
  let n = Array.length xs in
  if Array.length ys <> n then invalid_arg "Dense.interpolate";
  let acc = ref [||] in
  for i = 0 to n - 1 do
    (* Basis polynomial through (xs_i, 1), zero at the other nodes. *)
    let others = Array.of_list (List.filteri (fun j _ -> j <> i) (Array.to_list xs)) in
    let basis = vanishing others in
    let scale_factor =
      let denom = ref Gf.one in
      Array.iter (fun x -> denom := Gf.mul !denom (Gf.sub xs.(i) x)) others;
      Gf.div ys.(i) !denom
    in
    acc := add !acc (scale scale_factor basis)
  done;
  trim !acc
