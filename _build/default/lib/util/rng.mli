(** Deterministic pseudo-random number generation (splitmix64).

    All randomness in the library flows through an explicit generator state so
    that tests, benchmarks and protocol transcripts are reproducible. This is
    not a cryptographically secure generator; the protocols only use it for
    test data and for verifier challenges in the {e interactive} setting, while
    the non-interactive protocols derive challenges from the Fiat-Shamir
    transcript ({!Zk_hash.Transcript}). *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator seeded with [seed]. *)

val copy : t -> t
(** Independent copy of the generator state. *)

val next : t -> int64
(** Next raw 64-bit output (uniform over all of [int64]). *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [\[0, 1)]. *)
