let mean = function
  | [] -> invalid_arg "Stats.mean: empty"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let gmean = function
  | [] -> invalid_arg "Stats.gmean: empty"
  | xs ->
    let log_sum =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.gmean: nonpositive input";
          acc +. log x)
        0.0 xs
    in
    exp (log_sum /. float_of_int (List.length xs))

let percent part whole = 100.0 *. part /. whole
