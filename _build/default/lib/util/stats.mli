(** Small numeric helpers shared by the evaluation harness. *)

val mean : float list -> float

val gmean : float list -> float
(** Geometric mean; all inputs must be positive. *)

val percent : float -> float -> float
(** [percent part whole] is [100 *. part /. whole]. *)
