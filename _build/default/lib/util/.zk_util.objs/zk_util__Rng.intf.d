lib/util/rng.mli:
