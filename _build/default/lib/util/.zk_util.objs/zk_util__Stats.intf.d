lib/util/stats.mli:
