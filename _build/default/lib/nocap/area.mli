(** Area model (Table II): 14nm synthesis results for the default
    configuration, scaled linearly with lane counts / capacity / PHY count for
    the design-space exploration (Fig. 8). *)

type breakdown = {
  ntt_fu : float;
  mul_fu : float;
  add_fu : float;
  hash_fu : float;
  regfile : float;
  benes : float;
  mem_interface : float; (** HBM PHYs: one 14.9 mm^2 PHY per 512 GB/s *)
}

val of_config : Config.t -> breakdown

val compute_total : breakdown -> float
(** NTT + multiply + add + hash FUs. *)

val memory_total : breakdown -> float
(** Register file + Benes network + memory interface. *)

val total : breakdown -> float

val table_rows : breakdown -> (string * float) list
(** The rows of Table II, in the paper's order. *)
