type kernel = {
  program : Isa.program;
  input_slots : int list;
  output_slot : int;
}

let reduce_add_program ~vector_len ~src ~scratch =
  (* v <- v + rotate(v, s) for s = k/2, k/4, ..., 1: after the tree every
     lane holds the total ("summing the values within a vector with cyclic
     shifts", Sec. V-A). *)
  let rec steps s acc =
    if s = 0 then List.rev acc
    else
      steps (s / 2)
        (Isa.Vadd (src, src, scratch) :: Isa.Vrotate (scratch, src, s) :: acc)
  in
  steps (vector_len / 2) []

let elementwise_mul =
  {
    program =
      [ Isa.Vload (0, 0); Isa.Vload (1, 1); Isa.Vmul (2, 0, 1); Isa.Vstore (2, 2) ];
    input_slots = [ 0; 1 ];
    output_slot = 2;
  }

let sumcheck_round ~vector_len =
  (* Registers: 0 = lo half, 1 = hi half, 2 = delta, 3 = folded, 4 = r,
     5 = scratch, 6 = g(0) accumulator, 7 = g(1) accumulator. *)
  let program =
    [ Isa.Vload (0, 0); Isa.Vload (1, 1); Isa.Vload (4, 4) ]
    @ [ Isa.Vrotate (6, 0, 0); Isa.Vrotate (7, 1, 0) ]
    @ reduce_add_program ~vector_len ~src:6 ~scratch:5
    @ reduce_add_program ~vector_len ~src:7 ~scratch:5
    @ [ Isa.Vstore (2, 6); Isa.Vstore (3, 7) ]
    @ [
        Isa.Vsub (2, 1, 0);
        Isa.Vmul (2, 2, 4);
        Isa.Vadd (3, 0, 2);
        Isa.Vstore (5, 3);
      ]
  in
  { program; input_slots = [ 0; 1; 4 ]; output_slot = 5 }

let merkle_level ~vector_len =
  {
    program =
      [
        Isa.Vload (0, 0);
        (* Chunks of 4 elements are digests; interleaving with group 2^2
           compacts even-indexed digests into the low half and odd-indexed
           ones into the high half... *)
        Isa.Vinterleave (1, 0, 2);
        (* ...and a half-vector rotation aligns each odd digest with its even
           partner. *)
        Isa.Vrotate (2, 1, vector_len / 2);
        Isa.Vhash (3, 1, 2);
        Isa.Vstore (1, 3);
      ];
    input_slots = [ 0 ];
    output_slot = 1;
  }

let poly_mul_cyclic =
  {
    program =
      [
        Isa.Vload (0, 0);
        Isa.Vload (1, 1);
        Isa.Vntt { dst = 2; src = 0; inverse = false };
        Isa.Vntt { dst = 3; src = 1; inverse = false };
        Isa.Vmul (4, 2, 3);
        Isa.Vntt { dst = 5; src = 4; inverse = true };
        Isa.Vstore (2, 5);
      ];
    input_slots = [ 0; 1 ];
    output_slot = 2;
  }

(* Permutation sending the row-major (rows x cols) matrix to its transpose
   (cols x rows), as perm.(dst) = src for Vshuffle. *)
let transpose_perm ~rows ~cols =
  Array.init (rows * cols) (fun i ->
      let c = i / rows and r = i mod rows in
      (r * cols) + c)

let four_step_ntt ~rows ~cols =
  let module Gf = Zk_field.Gf in
  let k = rows * cols in
  let log_k =
    let rec go a m = if m <= 1 then a else go (a + 1) (m / 2) in
    go 0 k
  in
  let w = Gf.root_of_unity log_k in
  (* Twiddle (r, c) = w^(r*c), row-major. *)
  let twiddles = Array.make k Gf.one in
  let wr = ref Gf.one in
  for r = 0 to rows - 1 do
    let f = ref Gf.one in
    for c = 0 to cols - 1 do
      twiddles.((r * cols) + c) <- !f;
      f := Gf.mul !f !wr
    done;
    wr := Gf.mul !wr w
  done;
  let kernel =
    {
      program =
        [
          Isa.Vload (0, 0);
          (* Step 1: transpose, then NTT each original column as a tile. *)
          Isa.Vshuffle (1, 0, transpose_perm ~rows ~cols);
          Isa.Vntt_tiled { dst = 2; src = 1; tile = rows; inverse = false };
          Isa.Vshuffle (3, 2, transpose_perm ~rows:cols ~cols:rows);
          (* Step 2: twiddle scaling. *)
          Isa.Vload (4, 1);
          Isa.Vmul (5, 3, 4);
          (* Step 3: NTT each row in place. *)
          Isa.Vntt_tiled { dst = 6; src = 5; tile = cols; inverse = false };
          (* Step 4: transpose into the flat transform's natural order. *)
          Isa.Vshuffle (7, 6, transpose_perm ~rows ~cols);
          Isa.Vstore (2, 7);
        ];
      input_slots = [ 0; 1 ];
      output_slot = 2;
    }
  in
  (kernel, twiddles)
