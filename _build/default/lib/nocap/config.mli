(** NoCap hardware configuration (Sec. IV, Table II).

    The default matches the paper: a 1 GHz vector processor with 2,048
    multiply/add lanes, a 128-lane SHA3 hash FU (1 KB/cycle), a 64-lane
    four-step NTT FU, a 128-wide Benes shuffle network, an 8 MB banked
    register file, and 1 TB/s of HBM. Sweeping these fields reproduces the
    sensitivity study (Fig. 7) and the design-space exploration (Fig. 8). *)

type t = {
  freq_ghz : float;
  mul_lanes : int;
  add_lanes : int;
  hash_lanes : int; (** elements/cycle; 128 = 1 KB/cycle *)
  ntt_lanes : int; (** butterflies/cycle *)
  shuffle_lanes : int;
  regfile_mb : float;
  hbm_gbps : float; (** bytes/ns; 1024.0 = 1 TB/s *)
}

val default : t

val scale_fu : t -> [ `Arith | `Hash | `Ntt | `Shuffle ] -> float -> t
(** Scale one functional unit's lane count (Fig. 7's per-FU sweep; [`Arith]
    scales multiply and add lanes together, as the paper does). *)

val scale_hbm : t -> float -> t

val scale_regfile : t -> float -> t

val hbm_bytes_per_cycle : t -> float

val describe : t -> string
