type slot = { instr : Isa.instr; issue : int; finish : int }

type schedule = {
  slots : slot list;
  makespan : int;
  fu_busy : (Simulator.resource * int) list;
}

let cdiv a b = (a + b - 1) / b

let occupancy (c : Config.t) ~vector_len instr =
  let k = vector_len in
  match (instr : Isa.instr) with
  | Isa.Vadd _ | Isa.Vsub _ -> cdiv k c.Config.add_lanes
  | Isa.Vmul _ -> cdiv k c.Config.mul_lanes
  | Isa.Vntt _ ->
    (* n/2 * log2 n butterflies through the NTT pipeline. *)
    let log_k =
      let rec go a m = if m <= 1 then a else go (a + 1) (m / 2) in
      go 0 k
    in
    cdiv (k / 2 * log_k) c.Config.ntt_lanes
  | Isa.Vntt_tiled { tile; _ } ->
    let log_t =
      let rec go a m = if m <= 1 then a else go (a + 1) (m / 2) in
      go 0 tile
    in
    cdiv (k / tile * (tile / 2) * log_t) c.Config.ntt_lanes
  | Isa.Vhash _ -> cdiv k c.Config.hash_lanes
  | Isa.Vshuffle _ | Isa.Vrotate _ | Isa.Vinterleave _ -> cdiv k c.Config.shuffle_lanes
  | Isa.Vload _ | Isa.Vstore _ ->
    cdiv (8 * k) (int_of_float (Config.hbm_bytes_per_cycle c))
  | Isa.Vsplat _ -> 1
  | Isa.Delay n -> n

(* Pipeline depths per FU type. *)
let pipe_depth = function
  | Isa.Vadd _ | Isa.Vsub _ -> 2
  | Isa.Vmul _ -> 6
  | Isa.Vntt _ | Isa.Vntt_tiled _ -> 24
  | Isa.Vhash _ -> 48 (* 24 Keccak rounds, 2 per cycle *)
  | Isa.Vshuffle _ | Isa.Vrotate _ | Isa.Vinterleave _ -> 14 (* Benes stages *)
  | Isa.Vload _ | Isa.Vstore _ -> 100 (* worst-case HBM latency, Sec. IV-A *)
  | Isa.Vsplat _ -> 1
  | Isa.Delay _ -> 0

let latency c ~vector_len instr = occupancy c ~vector_len instr + pipe_depth instr

let run config ~vector_len program =
  (* ready.(r): cycle at which register r's latest value is available.
     fu_free: next cycle each FU can accept an instruction. *)
  let ready = Hashtbl.create 64 in
  let fu_free = Hashtbl.create 8 in
  let fu_busy = Hashtbl.create 8 in
  let reg_ready r = Option.value (Hashtbl.find_opt ready r) ~default:0 in
  let fu_next fu = Option.value (Hashtbl.find_opt fu_free fu) ~default:0 in
  let clock = ref 0 in
  let slots =
    List.map
      (fun instr ->
        let deps = Isa.reads instr in
        let data_ready = List.fold_left (fun acc r -> max acc (reg_ready r)) 0 deps in
        let occ = occupancy config ~vector_len instr in
        let issue =
          match Isa.which_fu instr with
          | None -> max data_ready !clock
          | Some fu -> max (max data_ready (fu_next fu)) 0
        in
        let finish = issue + latency config ~vector_len instr in
        (match Isa.which_fu instr with
        | None -> ()
        | Some fu ->
          Hashtbl.replace fu_free fu (issue + occ);
          Hashtbl.replace fu_busy fu (Option.value (Hashtbl.find_opt fu_busy fu) ~default:0 + occ));
        (match Isa.writes instr with
        | Some d -> Hashtbl.replace ready d finish
        | None -> ());
        clock := max !clock issue;
        { instr; issue; finish })
      program
  in
  let makespan = List.fold_left (fun acc s -> max acc s.finish) 0 slots in
  {
    slots;
    makespan;
    fu_busy = Hashtbl.fold (fun fu n acc -> (fu, n) :: acc) fu_busy [];
  }
