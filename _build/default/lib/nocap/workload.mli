(** The Spartan+Orion proving workload expressed as per-task operation and
    traffic counts — the input to the timing {!Simulator}.

    This mirrors the paper's methodology (Sec. VII): the prover program is a
    serial sequence of tasks (Fig. 4), each characterized by how many
    element-operations it issues to each functional unit and how many bytes it
    moves to/from HBM. Counts are per R1CS constraint and scale linearly with
    circuit size over the relevant range (Sec. VIII-B), with the full 128-bit
    protocol configuration baked in: 3 sumcheck repetitions, 4 multiset-hash
    instantiations, 4 proximity vectors, Reed-Solomon blowup 4 (Sec. VII-A).

    The coefficients are calibrated so the default configuration reproduces
    the paper's measured behaviour: 9.46 ns/constraint total (Table IV),
    the task breakdown of Fig. 6a, and the recomputation ablation of
    Sec. VIII-C; see EXPERIMENTS.md for the calibration notes and
    {!Zk_perf.Opcounts} for the cross-validation against the instrumented
    software prover. *)

type task = Sumcheck | Reed_solomon | Merkle_tree | Spmv | Poly_arith

val task_name : task -> string
val all_tasks : task list

type work = {
  mul_ops : float; (** element multiplies issued to the multiply FU *)
  add_ops : float;
  hash_bytes : float; (** bytes through the SHA3 FU *)
  ntt_butterflies : float;
  shuffle_ops : float; (** elements routed through the Benes network *)
  hbm_bytes : float;
  spill_sensitive : bool;
      (** true for tasks whose intermediates spill to HBM when the register
          file shrinks below the default 8 MB (sumcheck recomputation,
          Sec. VIII-D) *)
}

type t = (task * work) list

val spartan_orion :
  ?recompute:bool ->
  ?repetitions:int ->
  ?code:[ `Reed_solomon | `Expander ] ->
  ?density:float ->
  n_constraints:float ->
  unit ->
  t
(** The full prover workload for an [n_constraints]-sized R1CS statement.

    - [recompute] (default true): the paper's sumcheck recomputation
      optimization — trades multiplies for a 31% cut in sumcheck traffic
      (Sec. V-A).
    - [repetitions] (default 3): sumcheck soundness repetitions; work in the
      repetition-scaled tasks varies proportionally.
    - [code] (default [`Reed_solomon]): [`Expander] models the original
      Orion expander encoder — data-dependent gathers turn the encoding task
      memory-bound (Sec. II, Sec. VIII-C).
    - [density] (default 1.0): average R1CS matrix nonzeros per row relative
      to the AES benchmark; denser circuits (e.g. Auction's comparators) do
      proportionally more work everywhere. *)

val total_hbm_bytes : t -> float
