(** Task-serial timing simulator (the paper's evaluation methodology,
    Sec. VII: "a simulator executes this program, keeping track of the FU and
    memory bandwidth usage of each task").

    Each task's latency is the roofline maximum of its per-resource service
    times — NoCap's decoupled data orchestration overlaps loads with compute
    inside a task (Sec. IV-C), and tasks execute one at a time (Sec. V).
    Shrinking the register file below the default spills sumcheck
    recomputation intermediates to HBM, inflating that task's traffic
    (Sec. VIII-D). *)

type resource = Mul | Add | Hash | Ntt | Shuffle | Hbm

val resource_name : resource -> string

type task_timing = {
  task : Workload.task;
  cycles : float;
  bound_by : resource;
  compute_cycles : (resource * float) list; (** service time per FU *)
  hbm_bytes : float; (** after any register-file spill inflation *)
}

type result = {
  config : Config.t;
  tasks : task_timing list;
  total_cycles : float;
  total_seconds : float;
  fu_utilization : (resource * float) list;
      (** busy fraction of each resource over the whole run *)
  compute_utilization : float; (** multiply-FU busy fraction, the paper's
                                    "overall utilization of compute" metric *)
  total_hbm_bytes : float;
}

val run : Config.t -> Workload.t -> result

val task_seconds : result -> Workload.task -> float

val task_fraction : result -> Workload.task -> float
(** Share of total runtime (Fig. 6a). *)

val traffic_fraction : result -> Workload.task -> float
(** Share of HBM traffic (Fig. 6b). *)
