module Gf = Zk_field.Gf
module Sparse = Zk_r1cs.Sparse

type schedule = {
  program : Isa.program;
  x_slots : int array;
  coeff_slots : int list;
  coeff_data : Gf.t array list;
  y_slot_base : int;
  num_y_chunks : int;
  x_chunk_loads : int;
  matrix_values_streamed : int;
}

(* Registers: 0 = current x chunk, 1 = aligned operands, 2 = streamed
   coefficients, 3 = partial products, 4 = output accumulator. *)
let r_x = 0

let r_aligned = 1

let r_coeff = 2

let r_prod = 3

let r_acc = 4

let compile ~vector_len (m : Sparse.t) =
  let k = vector_len in
  if m.Sparse.nrows mod k <> 0 || m.Sparse.ncols mod k <> 0 then
    invalid_arg "Spmv_compile.compile: dimensions must be multiples of vector_len";
  let num_y_chunks = m.Sparse.nrows / k in
  let num_x_chunks = m.Sparse.ncols / k in
  let x_slots = Array.init num_x_chunks (fun i -> i) in
  let y_slot_base = num_x_chunks in
  let coeff_base = num_x_chunks + num_y_chunks in
  (* Bucket nonzeros by (output chunk, input chunk). *)
  let buckets = Hashtbl.create 64 in
  Seq.iter
    (fun (r, c, v) ->
      let key = (r / k, c / k) in
      let cur = Option.value (Hashtbl.find_opt buckets key) ~default:[] in
      Hashtbl.replace buckets key ((r mod k, c mod k, v) :: cur))
    (Sparse.entries m);
  let program = ref [] in
  let emit i = program := i :: !program in
  let coeff_slots = ref [] in
  let coeff_data = ref [] in
  let next_coeff = ref coeff_base in
  let x_chunk_loads = ref 0 in
  let matrix_values_streamed = ref 0 in
  for yc = 0 to num_y_chunks - 1 do
    emit (Isa.Vsplat (r_acc, Gf.zero));
    for xc = 0 to num_x_chunks - 1 do
      match Hashtbl.find_opt buckets (yc, xc) with
      | None -> ()
      | Some nonzeros ->
        (* One x-chunk load serves every round of this bucket: the vector
           reuse the output-stationary dataflow exists to get. *)
        emit (Isa.Vload (r_x, x_slots.(xc)));
        incr x_chunk_loads;
        (* Greedily pack nonzeros into rounds with at most one per output
           lane (the Benes network delivers one operand per destination). *)
        let remaining = ref nonzeros in
        while !remaining <> [] do
          let taken = Array.make k None in
          let rest =
            List.filter
              (fun (dst, src, v) ->
                match taken.(dst) with
                | None ->
                  taken.(dst) <- Some (src, v);
                  false
                | Some _ -> true)
              !remaining
          in
          remaining := rest;
          let perm = Array.make k 0 in
          let coeffs = Array.make k Gf.zero in
          Array.iteri
            (fun dst slot ->
              match slot with
              | Some (src, v) ->
                perm.(dst) <- src;
                coeffs.(dst) <- v;
                incr matrix_values_streamed
              | None -> ())
            taken;
          let slot = !next_coeff in
          incr next_coeff;
          coeff_slots := slot :: !coeff_slots;
          coeff_data := coeffs :: !coeff_data;
          emit (Isa.Vshuffle (r_aligned, r_x, perm));
          emit (Isa.Vload (r_coeff, slot));
          emit (Isa.Vmul (r_prod, r_aligned, r_coeff));
          emit (Isa.Vadd (r_acc, r_acc, r_prod))
        done
    done;
    emit (Isa.Vstore (y_slot_base + yc, r_acc))
  done;
  {
    program = List.rev !program;
    x_slots;
    coeff_slots = List.rev !coeff_slots;
    coeff_data = List.rev !coeff_data;
    y_slot_base;
    num_y_chunks;
    x_chunk_loads = !x_chunk_loads;
    matrix_values_streamed = !matrix_values_streamed;
  }

let run vm schedule x =
  let k = Vm.vector_len vm in
  Array.iteri
    (fun i slot -> Vm.write_mem vm slot (Array.sub x (i * k) k))
    schedule.x_slots;
  List.iter2 (fun slot data -> Vm.write_mem vm slot data) schedule.coeff_slots
    schedule.coeff_data;
  Vm.exec vm schedule.program;
  Array.concat
    (List.init schedule.num_y_chunks (fun c -> Vm.read_mem vm (schedule.y_slot_base + c)))
