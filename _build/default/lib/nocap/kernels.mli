(** ISA-level kernel programs for the tasks of Sec. V-A, written the way the
    paper describes the hardware executing them: reductions by cyclic shifts,
    Merkle compaction by grouped interleavings, polynomial products through
    the NTT FU. Each generator returns a program plus the memory-slot layout
    so tests can validate the VM's results against the pure software
    implementations, and the {!Schedule} cycle counts against the analytic
    task model. *)

type kernel = {
  program : Isa.program;
  input_slots : int list;
  output_slot : int;
}

val elementwise_mul : kernel
(** out = a .* b (slots 0, 1 -> 2). *)

val sumcheck_round : vector_len:int -> kernel
(** One round of the sumcheck DP (Listing 1) on a table split across slots 0
    (low half) and 1 (high half): writes the round sums g(0) and g(1)
    (replicated across lanes) to slots 2 and 3, and the folded table
    [lo + r * (hi - lo)] to slot 5. The challenge vector is read from slot 4
    (splatted by the host). Reductions use the paper's rotate-and-add tree. *)

val merkle_level : vector_len:int -> kernel
(** Hash adjacent digest pairs of the vector in slot 0 into slot 1; the first
    half of the output vector holds the parent digests (grouped interleaving
    compacts even/odd digests, Sec. IV-B). *)

val poly_mul_cyclic : kernel
(** Cyclic convolution of the polynomials in slots 0 and 1 via forward NTTs,
    a pointwise multiply, and an inverse NTT; result in slot 2. *)

val reduce_add_program :
  vector_len:int -> src:Isa.vreg -> scratch:Isa.vreg -> Isa.program
(** The rotate-and-add reduction tree: leaves the total of the [src] vector
    replicated in every lane of [src]. *)

val four_step_ntt : rows:int -> cols:int -> kernel * Zk_field.Gf.t array
(** A [rows * cols]-point NTT built from the NTT FU's native tile size, via
    transpose, tiled column NTTs, twiddle scaling, tiled row NTTs, and a
    final transpose — the Sec. V-A mapping of Reed-Solomon's large NTTs onto
    the 64-lane FU. Input in slot 0; the returned twiddle vector must be
    loaded into slot 1 by the host; output (natural order, identical to a
    flat NTT) lands in slot 2. *)
