(** Rack-scale multi-accelerator proving (the Sec. X future-work direction):
    "large proofs could be parallelized across many accelerators, with little
    communication among them".

    The model partitions a statement into [chips] equal shards, proves the
    shards in parallel (each on one NoCap), and accounts for the two glue
    costs the paper identifies: cross-shard wire consistency (the shards'
    boundary witnesses must be exchanged and re-committed) and the final
    aggregation proof that ties the shard proofs together (costed like one
    more proof over [chips * boundary] constraints, cf. {!Zk_spartan.Aggregate}
    which implements the single-chip analogue of that aggregation). *)

type result = {
  chips : int;
  shard_seconds : float; (** parallel shard proving time *)
  exchange_seconds : float; (** boundary-witness exchange over the interconnect *)
  aggregate_seconds : float; (** the final combining proof *)
  total_seconds : float;
  speedup : float; (** vs a single chip *)
  efficiency : float; (** speedup / chips *)
}

val run :
  ?config:Config.t ->
  ?interconnect_gbps:float ->
  ?boundary_fraction:float ->
  chips:int ->
  n_constraints:float ->
  unit ->
  result
(** [interconnect_gbps] defaults to 64 GB/s (PCIe 5.0, Sec. IV-D);
    [boundary_fraction] is the share of each shard's wires that cross shard
    boundaries (default 1%). *)

val sweep :
  ?config:Config.t -> n_constraints:float -> chips:int list -> unit -> result list
(** The scaling curve: one {!result} per chip count. *)
