lib/nocap/streams.ml: Config Isa List Schedule Simulator
