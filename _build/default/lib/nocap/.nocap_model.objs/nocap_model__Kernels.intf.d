lib/nocap/kernels.mli: Isa Zk_field
