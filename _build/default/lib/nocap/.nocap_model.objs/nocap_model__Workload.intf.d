lib/nocap/workload.mli:
