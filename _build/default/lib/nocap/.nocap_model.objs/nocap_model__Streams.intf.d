lib/nocap/streams.mli: Config Isa Simulator
