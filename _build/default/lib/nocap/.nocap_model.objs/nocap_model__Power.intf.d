lib/nocap/power.mli: Simulator
