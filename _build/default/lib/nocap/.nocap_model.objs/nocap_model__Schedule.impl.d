lib/nocap/schedule.ml: Config Hashtbl Isa List Option Simulator
