lib/nocap/simulator.ml: Config List Workload
