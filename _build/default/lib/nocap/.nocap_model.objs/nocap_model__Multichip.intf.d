lib/nocap/multichip.mli: Config
