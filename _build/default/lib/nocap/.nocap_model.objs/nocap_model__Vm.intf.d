lib/nocap/vm.mli: Isa Zk_field
