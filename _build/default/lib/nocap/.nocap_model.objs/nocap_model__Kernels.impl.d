lib/nocap/kernels.ml: Array Isa List Zk_field
