lib/nocap/config.mli:
