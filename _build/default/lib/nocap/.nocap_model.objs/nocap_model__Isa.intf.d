lib/nocap/isa.mli: Simulator Zk_field
