lib/nocap/config.ml: Float Printf
