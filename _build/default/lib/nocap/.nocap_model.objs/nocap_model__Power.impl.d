lib/nocap/power.ml: Config List Simulator
