lib/nocap/isa.ml: Array Printf Simulator Zk_field
