lib/nocap/isa.ml: Array Simulator Zk_field
