lib/nocap/area.ml: Config Float
