lib/nocap/vm.ml: Array Bytes Isa List Printf Zk_field Zk_hash Zk_ntt
