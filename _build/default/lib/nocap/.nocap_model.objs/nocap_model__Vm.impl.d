lib/nocap/vm.ml: Array Bytes Isa List Zk_field Zk_hash Zk_ntt
