lib/nocap/spmv_compile.ml: Array Hashtbl Isa List Option Seq Vm Zk_field Zk_r1cs
