lib/nocap/schedule.mli: Config Isa Simulator
