lib/nocap/simulator.mli: Config Workload
