lib/nocap/spmv_compile.mli: Isa Vm Zk_field Zk_r1cs
