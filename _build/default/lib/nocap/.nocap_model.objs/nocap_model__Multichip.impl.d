lib/nocap/multichip.ml: Config List Simulator Workload
