lib/nocap/workload.ml: List
