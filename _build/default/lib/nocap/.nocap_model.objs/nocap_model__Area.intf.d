lib/nocap/area.mli: Config
