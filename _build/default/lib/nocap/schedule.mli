(** Static cycle-accurate scheduling of ISA programs (Sec. IV-A).

    NoCap is statically scheduled: every instruction has a fixed latency known
    to the compiler, which places issue cycles to respect data dependencies
    and functional-unit structural hazards. This module is that compiler pass:
    greedy list scheduling in program order, with each FU modelled as a fully
    pipelined unit that accepts one vector instruction per [occupancy]
    cycles (the cycles a [k]-element vector needs through an FU with fewer
    than [k] lanes). *)

type slot = {
  instr : Isa.instr;
  issue : int; (** cycle the instruction starts *)
  finish : int; (** cycle its result is available *)
}

type schedule = {
  slots : slot list;
  makespan : int; (** total cycles *)
  fu_busy : (Simulator.resource * int) list; (** occupied cycles per FU *)
}

val occupancy : Config.t -> vector_len:int -> Isa.instr -> int
(** Cycles the instruction occupies its FU (issue-to-issue). *)

val latency : Config.t -> vector_len:int -> Isa.instr -> int
(** Cycles from issue until the result may be consumed (occupancy plus the
    pipeline depth of the FU). *)

val run : Config.t -> vector_len:int -> Isa.program -> schedule
