type vreg = int

type instr =
  | Vadd of vreg * vreg * vreg
  | Vsub of vreg * vreg * vreg
  | Vmul of vreg * vreg * vreg
  | Vntt of { dst : vreg; src : vreg; inverse : bool }
  | Vntt_tiled of { dst : vreg; src : vreg; tile : int; inverse : bool }
  | Vhash of vreg * vreg * vreg
  | Vshuffle of vreg * vreg * int array
  | Vrotate of vreg * vreg * int
  | Vinterleave of vreg * vreg * int
  | Vsplat of vreg * Zk_field.Gf.t
  | Vload of vreg * int
  | Vstore of int * vreg
  | Delay of int

type program = instr list

let which_fu = function
  | Vadd _ | Vsub _ -> Some Simulator.Add
  | Vmul _ -> Some Simulator.Mul
  | Vntt _ | Vntt_tiled _ -> Some Simulator.Ntt
  | Vhash _ -> Some Simulator.Hash
  | Vshuffle _ | Vrotate _ | Vinterleave _ -> Some Simulator.Shuffle
  | Vload _ | Vstore _ -> Some Simulator.Hbm
  | Vsplat _ | Delay _ -> None

let reads = function
  | Vadd (_, a, b) | Vsub (_, a, b) | Vmul (_, a, b) | Vhash (_, a, b) -> [ a; b ]
  | Vntt { src; _ } | Vntt_tiled { src; _ } -> [ src ]
  | Vshuffle (_, s, _) | Vrotate (_, s, _) | Vinterleave (_, s, _) -> [ s ]
  | Vstore (_, s) -> [ s ]
  | Vsplat _ | Vload _ | Delay _ -> []

let writes = function
  | Vadd (d, _, _)
  | Vsub (d, _, _)
  | Vmul (d, _, _)
  | Vhash (d, _, _)
  | Vshuffle (d, _, _)
  | Vrotate (d, _, _)
  | Vinterleave (d, _, _)
  | Vsplat (d, _)
  | Vload (d, _) ->
    Some d
  | Vntt { dst; _ } | Vntt_tiled { dst; _ } -> Some dst
  | Vstore _ | Delay _ -> None

let interleave_perm ~len ~group =
  let chunk = 1 lsl group in
  if len mod (2 * chunk) <> 0 then invalid_arg "Isa.interleave_perm";
  let chunks = len / chunk in
  let perm = Array.make len 0 in
  for c = 0 to chunks - 1 do
    (* Destination chunk: even source chunks pack into the first half,
       odd ones into the second. *)
    let dst_chunk = if c land 1 = 0 then c / 2 else (chunks / 2) + (c / 2) in
    for i = 0 to chunk - 1 do
      perm.((dst_chunk * chunk) + i) <- (c * chunk) + i
    done
  done;
  (* perm maps destination index -> source index. *)
  perm
