(** Functional simulator for the NoCap vector ISA.

    Executes {!Isa.program}s over a register file of [k]-element Goldilocks
    vectors and a vector-addressed main memory, producing bit-exact results —
    used to validate that kernels scheduled for the accelerator compute the
    same values as the reference software implementation. *)

type t

val create : vector_len:int -> num_regs:int -> mem_slots:int -> t

val vector_len : t -> int

val write_mem : t -> int -> Zk_field.Gf.t array -> unit
(** Fill a main-memory vector slot (length must match [vector_len]). *)

val read_mem : t -> int -> Zk_field.Gf.t array

val read_reg : t -> Isa.vreg -> Zk_field.Gf.t array

val exec : t -> Isa.program -> unit
(** Run a program to completion.
    @raise Invalid_argument on malformed programs (bad register, unloaded
    NTT size, etc.). *)
