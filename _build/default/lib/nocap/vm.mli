(** Functional simulator for the NoCap vector ISA.

    Executes {!Isa.program}s over a register file of [k]-element Goldilocks
    vectors and a vector-addressed main memory, producing bit-exact results —
    used to validate that kernels scheduled for the accelerator compute the
    same values as the reference software implementation. *)

type t

val create : vector_len:int -> num_regs:int -> mem_slots:int -> t

val vector_len : t -> int

val write_mem : t -> int -> Zk_field.Gf.t array -> unit
(** Fill a main-memory vector slot (length must match [vector_len]). *)

val read_mem : t -> int -> Zk_field.Gf.t array

val read_reg : t -> Isa.vreg -> Zk_field.Gf.t array

val write_reg : t -> Isa.vreg -> Zk_field.Gf.t array -> unit
(** Poke a register directly — instrumentation for the static-analysis
    property tests, which compare {!Isa.reads}/{!Isa.writes} against the
    registers an instruction actually observes and modifies. *)

val exec : t -> Isa.program -> unit
(** Run a program to completion.
    @raise Invalid_argument on malformed programs (bad register, unloaded
    NTT size, etc.). The message names the failing instruction's index and
    constructor (["Vm.exec: instruction 3 (Vload): ..."]) so failures
    cross-reference with {!Nocap_analysis.Lint} diagnostics, which anchor to
    the same indices. *)
