type task = Sumcheck | Reed_solomon | Merkle_tree | Spmv | Poly_arith

let task_name = function
  | Sumcheck -> "sumcheck"
  | Reed_solomon -> "reed-solomon"
  | Merkle_tree -> "merkle-tree"
  | Spmv -> "spmv"
  | Poly_arith -> "poly-arith"

let all_tasks = [ Sumcheck; Reed_solomon; Merkle_tree; Spmv; Poly_arith ]

type work = {
  mul_ops : float;
  add_ops : float;
  hash_bytes : float;
  ntt_butterflies : float;
  shuffle_ops : float;
  hbm_bytes : float;
  spill_sensitive : bool;
}

type t = (task * work) list

let zero_work =
  {
    mul_ops = 0.0;
    add_ops = 0.0;
    hash_bytes = 0.0;
    ntt_butterflies = 0.0;
    shuffle_ops = 0.0;
    hbm_bytes = 0.0;
    spill_sensitive = false;
  }

(* Per-constraint coefficients for the paper's full 128-bit protocol
   (3 sumcheck repetitions, 4 multiset-hash gamma instantiations, sumchecks up
   to 18N, Reed-Solomon blowup 4, 4 proximity vectors). Calibrated against
   Table IV / Fig. 6a / Sec. VIII-C; coefficients are per repetition-set of 3,
   so other repetition counts scale by reps / 3. *)

let sumcheck_coeff ~recompute =
  (* Recomputation regenerates the DP inputs from the streamed circuit
     (Sec. V-A): ~25% more multiplies, 31% less traffic; without it the task
     is memory-bound. *)
  if recompute then
    {
      zero_work with
      mul_ops = 14234.0;
      add_ops = 11387.0;
      hash_bytes = 12.0 (* round-challenge hashing *);
      hbm_bytes = 5581.0;
      spill_sensitive = true;
    }
  else
    {
      zero_work with
      mul_ops = 11387.0;
      add_ops = 11387.0;
      hash_bytes = 12.0;
      hbm_bytes = 8090.0;
      spill_sensitive = false;
    }

let reed_solomon_coeff ~code =
  match code with
  | `Reed_solomon ->
    {
      zero_work with
      mul_ops = 100.0 (* twiddle scaling around the NTT FU *);
      ntt_butterflies = 54.5;
      hbm_bytes = 717.0;
    }
  | `Expander ->
    (* Expander encoding replaces butterflies by sparse gathers over a
       multi-gigabyte graph: each gather is a serialized, data-dependent HBM
       access with no reuse (Sec. II). *)
    {
      zero_work with
      add_ops = 436.0;
      mul_ops = 436.0;
      shuffle_ops = 54.5;
      hbm_bytes = 7170.0;
    }

let merkle_coeff = { zero_work with hash_bytes = 484.0; hbm_bytes = 451.0 }

let spmv_coeff =
  {
    zero_work with
    mul_ops = 40.0;
    add_ops = 40.0;
    shuffle_ops = 5.1;
    hbm_bytes = 48.0;
  }

let poly_arith_coeff =
  {
    zero_work with
    mul_ops = 766.0;
    add_ops = 1100.0;
    ntt_butterflies = 28.8;
    hbm_bytes = 1162.0;
  }

let scale_work f w =
  {
    mul_ops = f *. w.mul_ops;
    add_ops = f *. w.add_ops;
    hash_bytes = f *. w.hash_bytes;
    ntt_butterflies = f *. w.ntt_butterflies;
    shuffle_ops = f *. w.shuffle_ops;
    hbm_bytes = f *. w.hbm_bytes;
    spill_sensitive = w.spill_sensitive;
  }

let spartan_orion ?(recompute = true) ?(repetitions = 3) ?(code = `Reed_solomon)
    ?(density = 1.0) ~n_constraints () =
  if n_constraints <= 0.0 then invalid_arg "Workload.spartan_orion: n_constraints";
  if repetitions < 1 then invalid_arg "Workload.spartan_orion: repetitions";
  let rep_factor = float_of_int repetitions /. 3.0 in
  let per_constraint =
    [
      (* Sumcheck and the second-phase SpMV repeat per soundness repetition;
         the witness commitment (RS encode + Merkle) happens once, but the
         per-repetition Orion openings contribute the smaller share folded
         into the coefficients. *)
      (Sumcheck, scale_work rep_factor (sumcheck_coeff ~recompute));
      (Reed_solomon, reed_solomon_coeff ~code);
      (Merkle_tree, merkle_coeff);
      (Spmv, scale_work rep_factor spmv_coeff);
      (Poly_arith, scale_work rep_factor poly_arith_coeff);
    ]
  in
  List.map
    (fun (task, w) -> (task, scale_work (n_constraints *. density) w))
    per_constraint

let total_hbm_bytes t = List.fold_left (fun acc (_, w) -> acc +. w.hbm_bytes) 0.0 t
