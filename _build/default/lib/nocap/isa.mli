(** NoCap's vector instruction set (Sec. IV-A).

    Instructions operate on [k]-element vectors of Goldilocks-64 values held
    in a banked register file. The set matches the paper: element-wise modular
    add/multiply, forward/inverse NTT, SHA3 hashing, structured permutations
    (arbitrary Benes shuffles within 128 lanes, cyclic rotations, grouped
    interleavings), vector load/store, and the delay/loop control of the
    statically scheduled distributed instruction streams (loops are unrolled
    by the program generators here, so only [Delay] appears explicitly). *)

type vreg = int

type instr =
  | Vadd of vreg * vreg * vreg (** dst, src1, src2 *)
  | Vsub of vreg * vreg * vreg
  | Vmul of vreg * vreg * vreg
  | Vntt of { dst : vreg; src : vreg; inverse : bool }
      (** NTT over the whole vector (the hardware decomposes sizes above 2^12
          via the four-step algorithm). *)
  | Vntt_tiled of { dst : vreg; src : vreg; tile : int; inverse : bool }
      (** Independent NTTs on each aligned [tile]-element chunk — what the
          64-lane NTT FU natively performs; {!Kernels.four_step_ntt} builds
          large transforms from it exactly as Sec. V-A describes. *)
  | Vhash of vreg * vreg * vreg
      (** SHA3 compression: each aligned group of four 64-bit elements of the
          two sources is a 256-bit input; the output group is the 256-bit
          digest (Sec. IV-B). *)
  | Vshuffle of vreg * vreg * int array
      (** Arbitrary permutation: dst.(i) = src.(perm.(i)); the compile-time
          Benes routing bits of Sec. IV-B. *)
  | Vrotate of vreg * vreg * int (** cyclic left rotation *)
  | Vinterleave of vreg * vreg * int
      (** Grouped interleaving with chunk size [2^g]: even-indexed chunks to
          the first half, odd-indexed to the second. *)
  | Vsplat of vreg * Zk_field.Gf.t
  | Vload of vreg * int (** register <- main-memory vector slot *)
  | Vstore of int * vreg
  | Delay of int

type program = instr list

val which_fu : instr -> Simulator.resource option
(** Functional unit an instruction occupies ([None] for [Delay]/[Vsplat]). *)

val reads : instr -> vreg list
val writes : instr -> vreg option

val instr_name : instr -> string
(** The constructor name, e.g. ["Vshuffle"] — used by {!Vm} failures and the
    static-analysis diagnostics so the two cross-reference. *)

val describe : instr -> string
(** One-line rendering with operands, e.g. ["Vadd r2, r0, r1"]. *)

val interleave_perm : len:int -> group:int -> int array
(** The permutation a grouped interleaving applies (exposed for tests). *)
