type result = {
  chips : int;
  shard_seconds : float;
  exchange_seconds : float;
  aggregate_seconds : float;
  total_seconds : float;
  speedup : float;
  efficiency : float;
}

let prove_seconds config n =
  (Simulator.run config (Workload.spartan_orion ~n_constraints:n ())).Simulator.total_seconds

let run ?(config = Config.default) ?(interconnect_gbps = 64.0)
    ?(boundary_fraction = 0.01) ~chips ~n_constraints () =
  if chips < 1 then invalid_arg "Multichip.run";
  let single = prove_seconds config n_constraints in
  if chips = 1 then
    {
      chips;
      shard_seconds = single;
      exchange_seconds = 0.0;
      aggregate_seconds = 0.0;
      total_seconds = single;
      speedup = 1.0;
      efficiency = 1.0;
    }
  else begin
    let shard_n = n_constraints /. float_of_int chips in
    let shard_seconds = prove_seconds config shard_n in
    (* Boundary wires: each shard exchanges its boundary witness values
       (8 bytes each) with neighbours over the interconnect. *)
    let boundary_wires = boundary_fraction *. shard_n in
    let exchange_seconds = 8.0 *. boundary_wires /. (interconnect_gbps *. 1e9) in
    (* The combining proof spans all boundary wires plus one consistency
       constraint per shard pair. *)
    let aggregate_n = max 1024.0 (boundary_wires *. float_of_int chips) in
    let aggregate_seconds = prove_seconds config aggregate_n in
    let total_seconds = shard_seconds +. exchange_seconds +. aggregate_seconds in
    {
      chips;
      shard_seconds;
      exchange_seconds;
      aggregate_seconds;
      total_seconds;
      speedup = single /. total_seconds;
      efficiency = single /. total_seconds /. float_of_int chips;
    }
  end

let sweep ?(config = Config.default) ~n_constraints ~chips () =
  List.map (fun c -> run ~config ~chips:c ~n_constraints ()) chips
