type breakdown = { fu_w : float; regfile_w : float; hbm_w : float }

(* Per-event energies (14nm): *)
let e_mul = 4.0e-12 (* J per 64-bit modular multiply *)
let e_add = 0.5e-12
let e_butterfly = 10.0e-12
let e_hash_byte = 10.0e-12
let e_shuffle = 1.0e-12
let e_regfile_byte = 0.386e-12
let e_hbm_byte = 30.9e-12

(* Register-file traffic per event: operands + result for arithmetic;
   streaming in/out for the wide FUs. *)
let rf_bytes_per_arith = 24.0
let rf_bytes_per_butterfly = 40.0
let rf_bytes_per_hash_byte = 2.0
let rf_bytes_per_shuffle = 16.0

let of_result (r : Simulator.result) =
  let sum f =
    List.fold_left (fun acc (_, w) -> acc +. f w) 0.0
      (List.map (fun (t : Simulator.task_timing) -> (t.Simulator.task, t)) r.Simulator.tasks)
  in
  ignore sum;
  (* Recover the total op counts from the workload embedded in task timings:
     compute_cycles * lanes gives back ops per resource. *)
  let cfg = r.Simulator.config in
  let ops resource lanes =
    List.fold_left
      (fun acc (t : Simulator.task_timing) ->
        acc +. (List.assoc resource t.Simulator.compute_cycles *. lanes))
      0.0 r.Simulator.tasks
  in
  let mul_ops = ops Simulator.Mul (float_of_int cfg.Config.mul_lanes) in
  let add_ops = ops Simulator.Add (float_of_int cfg.Config.add_lanes) in
  let hash_bytes = ops Simulator.Hash (8.0 *. float_of_int cfg.Config.hash_lanes) in
  let butterflies = ops Simulator.Ntt (float_of_int cfg.Config.ntt_lanes) in
  let shuffles = ops Simulator.Shuffle (float_of_int cfg.Config.shuffle_lanes) in
  let seconds = r.Simulator.total_seconds in
  let fu_j =
    (mul_ops *. e_mul) +. (add_ops *. e_add) +. (butterflies *. e_butterfly)
    +. (hash_bytes *. e_hash_byte) +. (shuffles *. e_shuffle)
  in
  let rf_bytes =
    ((mul_ops +. add_ops) *. rf_bytes_per_arith)
    +. (butterflies *. rf_bytes_per_butterfly)
    +. (hash_bytes *. rf_bytes_per_hash_byte)
    +. (shuffles *. rf_bytes_per_shuffle)
  in
  {
    fu_w = fu_j /. seconds;
    regfile_w = rf_bytes *. e_regfile_byte /. seconds;
    hbm_w = r.Simulator.total_hbm_bytes *. e_hbm_byte /. seconds;
  }

let total b = b.fu_w +. b.regfile_w +. b.hbm_w

let fractions b =
  let t = total b in
  (b.fu_w /. t, b.regfile_w /. t, b.hbm_w /. t)
