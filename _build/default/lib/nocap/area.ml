type breakdown = {
  ntt_fu : float;
  mul_fu : float;
  add_fu : float;
  hash_fu : float;
  regfile : float;
  benes : float;
  mem_interface : float;
}

(* Table II reference areas (mm^2, 14nm) at the default configuration. *)
let ref_ntt = 1.80
let ref_mul = 6.34
let ref_add = 0.96
let ref_hash = 0.84
let ref_regfile = 6.01
let ref_benes = 0.11
let phy_area = 14.90 (* per 512 GB/s HBM2E PHY *)

let of_config (c : Config.t) =
  let d = Config.default in
  let ratio a b = float_of_int a /. float_of_int b in
  {
    ntt_fu = ref_ntt *. ratio c.Config.ntt_lanes d.Config.ntt_lanes;
    mul_fu = ref_mul *. ratio c.Config.mul_lanes d.Config.mul_lanes;
    add_fu = ref_add *. ratio c.Config.add_lanes d.Config.add_lanes;
    hash_fu = ref_hash *. ratio c.Config.hash_lanes d.Config.hash_lanes;
    regfile = ref_regfile *. (c.Config.regfile_mb /. d.Config.regfile_mb);
    benes = ref_benes *. ratio c.Config.shuffle_lanes d.Config.shuffle_lanes;
    mem_interface = phy_area *. Float.of_int (int_of_float (ceil (c.Config.hbm_gbps /. 512.0)));
  }

let compute_total b = b.ntt_fu +. b.mul_fu +. b.add_fu +. b.hash_fu

let memory_total b = b.regfile +. b.benes +. b.mem_interface

let total b = compute_total b +. memory_total b

let table_rows b =
  [
    ("NTT FU", b.ntt_fu);
    ("Multiply FU", b.mul_fu);
    ("Add FU", b.add_fu);
    ("Hash FU", b.hash_fu);
    ("Total Compute", compute_total b);
    ("Reg. file (2,048 x 4 KB banks)", b.regfile);
    ("Benes network", b.benes);
    ("Memory interface (2 x PHY)", b.mem_interface);
    ("Total memory system", memory_total b);
    ("Total NoCap", total b);
  ]
