(** Power model (Fig. 5): per-event energies from RTL synthesis combined with
    the simulator's activity factors (Sec. VII). The default configuration on
    a 16M-constraint run draws ~62 W: 13% in the FUs, 44% in the register
    file, 42% in HBM. Energy constants are physically grounded (pJ-scale 64-bit
    multiplies, ~0.4 pJ/B SRAM, ~31 pJ/B HBM2E end to end). *)

type breakdown = {
  fu_w : float;
  regfile_w : float;
  hbm_w : float;
}

val of_result : Simulator.result -> breakdown

val total : breakdown -> float

val fractions : breakdown -> float * float * float
(** (fu, regfile, hbm) shares of total. *)
