(** Compile-time SpMV scheduling (Sec. V-A).

    NoCap computes [y = A x] with an output-stationary dataflow: the output
    is produced chunk by chunk; for each output chunk the input chunks that
    contribute to it are loaded (exploiting the matrices' limited bandwidth
    for reuse), the Benes network aligns the input elements with the output
    lanes they feed, the streamed matrix values multiply the aligned
    operands, and partial products accumulate in place. Because the sparsity
    pattern is known at compile time, the nonzeros are emitted in exactly the
    order consumed — no coordinate storage, no cache.

    [compile] produces a real {!Isa.program} implementing this schedule; the
    tests execute it on the {!Vm} and compare against {!Zk_r1cs.Sparse.spmv},
    and check the traffic claims (each matrix value read exactly once, input
    chunks reused rather than reloaded). *)

type schedule = {
  program : Isa.program;
  x_slots : int array; (** memory slots the caller fills with x's chunks *)
  coeff_slots : int list; (** slots holding the streamed matrix values *)
  coeff_data : Zk_field.Gf.t array list; (** contents for those slots *)
  y_slot_base : int; (** output chunk c lands in slot [y_slot_base + c] *)
  num_y_chunks : int;
  x_chunk_loads : int; (** input-chunk loads issued (measures reuse) *)
  matrix_values_streamed : int; (** total coefficient elements streamed *)
}

val compile : vector_len:int -> Zk_r1cs.Sparse.t -> schedule
(** The matrix's dimensions must be multiples of [vector_len].
    Register budget: 6 registers regardless of matrix size. *)

val run : Vm.t -> schedule -> Zk_field.Gf.t array -> Zk_field.Gf.t array
(** Load [x], execute the schedule, gather [y] (convenience for tests and
    benchmarks). *)
