type t = {
  freq_ghz : float;
  mul_lanes : int;
  add_lanes : int;
  hash_lanes : int;
  ntt_lanes : int;
  shuffle_lanes : int;
  regfile_mb : float;
  hbm_gbps : float;
}

let default =
  {
    freq_ghz = 1.0;
    mul_lanes = 2048;
    add_lanes = 2048;
    hash_lanes = 128;
    ntt_lanes = 64;
    shuffle_lanes = 128;
    regfile_mb = 8.0;
    hbm_gbps = 1024.0;
  }

let scale_lanes n f = max 1 (int_of_float (Float.round (float_of_int n *. f)))

let scale_fu t fu f =
  match fu with
  | `Arith ->
    { t with mul_lanes = scale_lanes t.mul_lanes f; add_lanes = scale_lanes t.add_lanes f }
  | `Hash -> { t with hash_lanes = scale_lanes t.hash_lanes f }
  | `Ntt -> { t with ntt_lanes = scale_lanes t.ntt_lanes f }
  | `Shuffle -> { t with shuffle_lanes = scale_lanes t.shuffle_lanes f }

let scale_hbm t f = { t with hbm_gbps = t.hbm_gbps *. f }

let scale_regfile t f = { t with regfile_mb = t.regfile_mb *. f }

let hbm_bytes_per_cycle t = t.hbm_gbps /. t.freq_ghz

let describe t =
  Printf.sprintf
    "NoCap @ %.1f GHz: %d mul / %d add / %d hash / %d ntt / %d shuffle lanes, %.1f MB RF, %.0f GB/s HBM"
    t.freq_ghz t.mul_lanes t.add_lanes t.hash_lanes t.ntt_lanes t.shuffle_lanes
    t.regfile_mb t.hbm_gbps
