(** Distributed control (Sec. IV-A): NoCap does not fetch one wide VLIW word
    per cycle — each functional unit runs its own instruction stream, padded
    with [Delay] instructions so that every operation still issues at the
    cycle the static schedule assigned (the "components can be scheduled
    cycle-accurately" property).

    [split] compiles a scheduled program into per-FU streams; [replay]
    recovers each instruction's issue cycle from the streams alone, which the
    tests use to prove the decomposition preserves the schedule. [code_size]
    quantifies the paper's claim that distributed streams with delay slots
    are smaller than equivalent VLIW encoding. *)

type stream = {
  fu : Simulator.resource option; (** [None] is the control stream *)
  ops : Isa.instr list; (** [Delay] interleaved with the FU's instructions *)
}

type t = {
  streams : stream list;
  makespan : int;
  config : Config.t;
  vector_len : int;
}

val split : Config.t -> vector_len:int -> Isa.program -> t
(** Compile via {!Schedule.run} and slice per functional unit. Control-only
    instructions ([Vsplat], [Delay]) get their own control stream. *)

val replay : t -> (Isa.instr * int) list
(** Issue cycles recovered by walking each stream: a [Delay n] advances the
    stream clock by [n]; any other instruction issues at the current clock
    and advances it by its occupancy. Order across streams is by issue
    cycle. *)

val instruction_count : t -> int
(** Total instructions across streams, delays included. *)

val vliw_word_count : t -> int
(** Instruction words a single-stream VLIW encoding of the same schedule
    would need (one wide word per cycle up to the makespan) — the baseline
    the paper's distributed control improves on. *)
