type stream = {
  fu : Simulator.resource option;
  ops : Isa.instr list;
}

type t = {
  streams : stream list;
  makespan : int;
  config : Config.t;
  vector_len : int;
}

let stream_slots slots fu =
  List.filter (fun (s : Schedule.slot) -> Isa.which_fu s.Schedule.instr = fu) slots

let build_stream config ~vector_len fu slots =
  (* Slots arrive in program order; on one FU that is also issue order
     (the scheduler never reorders within a unit). Insert delays to recover
     the exact issue cycles. *)
  let ops, _ =
    List.fold_left
      (fun (acc, clock) (s : Schedule.slot) ->
        let acc =
          if s.Schedule.issue > clock then Isa.Delay (s.Schedule.issue - clock) :: acc
          else acc
        in
        let occ =
          match (s.Schedule.instr, fu) with
          | Isa.Delay n, _ -> n
          | _, None -> 1
          | _, Some _ -> Schedule.occupancy config ~vector_len s.Schedule.instr
        in
        (s.Schedule.instr :: acc, max s.Schedule.issue clock + occ))
      ([], 0) slots
  in
  { fu; ops = List.rev ops }

let split config ~vector_len program =
  let sched = Schedule.run config ~vector_len program in
  let fus =
    [
      Some Simulator.Mul; Some Simulator.Add; Some Simulator.Hash;
      Some Simulator.Ntt; Some Simulator.Shuffle; Some Simulator.Hbm; None;
    ]
  in
  let streams =
    List.filter_map
      (fun fu ->
        match stream_slots sched.Schedule.slots fu with
        | [] -> None
        | slots -> Some (build_stream config ~vector_len fu slots))
      fus
  in
  { streams; makespan = sched.Schedule.makespan; config; vector_len }

let replay t =
  let issues =
    List.concat_map
      (fun stream ->
        let out, _ =
          List.fold_left
            (fun (acc, clock) instr ->
              match instr with
              | Isa.Delay n ->
                (* Padding (and original control delays) just advance the
                   stream clock. *)
                (acc, clock + n)
              | _ ->
                let occ =
                  match stream.fu with
                  | None -> 1
                  | Some _ -> Schedule.occupancy t.config ~vector_len:t.vector_len instr
                in
                ((instr, clock) :: acc, clock + occ))
            ([], 0) stream.ops
        in
        List.rev out)
      t.streams
  in
  List.stable_sort (fun (_, c1) (_, c2) -> compare c1 c2) issues

let instruction_count t =
  List.fold_left (fun acc s -> acc + List.length s.ops) 0 t.streams

let vliw_word_count t = t.makespan
