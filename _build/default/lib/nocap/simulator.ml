type resource = Mul | Add | Hash | Ntt | Shuffle | Hbm

let resource_name = function
  | Mul -> "mul"
  | Add -> "add"
  | Hash -> "hash"
  | Ntt -> "ntt"
  | Shuffle -> "shuffle"
  | Hbm -> "hbm"

type task_timing = {
  task : Workload.task;
  cycles : float;
  bound_by : resource;
  compute_cycles : (resource * float) list;
  hbm_bytes : float;
}

type result = {
  config : Config.t;
  tasks : task_timing list;
  total_cycles : float;
  total_seconds : float;
  fu_utilization : (resource * float) list;
  compute_utilization : float;
  total_hbm_bytes : float;
}

(* Register-file spill model (Sec. VIII-D): below the default 8 MB, the
   sumcheck recomputation intermediates no longer fit and spill, inflating the
   task's HBM traffic sharply; extra capacity beyond 8 MB brings nothing. *)
let spill_factor (config : Config.t) (w : Workload.work) =
  let default_mb = Config.default.Config.regfile_mb in
  if (not w.Workload.spill_sensitive) || config.Config.regfile_mb >= default_mb then 1.0
  else 1.0 +. (2.0 *. ((default_mb /. config.Config.regfile_mb) -. 1.0))

let time_task (config : Config.t) (task, (w : Workload.work)) =
  let bytes = w.Workload.hbm_bytes *. spill_factor config w in
  let per_resource =
    [
      (Mul, w.Workload.mul_ops /. float_of_int config.Config.mul_lanes);
      (Add, w.Workload.add_ops /. float_of_int config.Config.add_lanes);
      (Hash, w.Workload.hash_bytes /. (8.0 *. float_of_int config.Config.hash_lanes));
      (Ntt, w.Workload.ntt_butterflies /. float_of_int config.Config.ntt_lanes);
      (Shuffle, w.Workload.shuffle_ops /. float_of_int config.Config.shuffle_lanes);
      (Hbm, bytes /. Config.hbm_bytes_per_cycle config);
    ]
  in
  let bound_by, cycles =
    List.fold_left
      (fun (br, bc) (r, c) -> if c > bc then (r, c) else (br, bc))
      (Mul, 0.0) per_resource
  in
  {
    task;
    cycles;
    bound_by;
    compute_cycles = List.filter (fun (r, _) -> r <> Hbm) per_resource;
    hbm_bytes = bytes;
  }

let run config workload =
  let tasks = List.map (time_task config) workload in
  let total_cycles = List.fold_left (fun acc t -> acc +. t.cycles) 0.0 tasks in
  let total_seconds = total_cycles /. (config.Config.freq_ghz *. 1e9) in
  let busy r =
    List.fold_left
      (fun acc t ->
        acc
        +.
        if r = Hbm then t.hbm_bytes /. Config.hbm_bytes_per_cycle config
        else List.assoc r t.compute_cycles)
      0.0 tasks
  in
  let resources = [ Mul; Add; Hash; Ntt; Shuffle; Hbm ] in
  let fu_utilization = List.map (fun r -> (r, busy r /. total_cycles)) resources in
  (* Area-weighted average busy fraction of the compute FUs (Table II
     weights) — the paper's "overall utilization of compute resources". *)
  let compute_utilization =
    let weights = [ (Mul, 6.34); (Add, 0.96); (Hash, 0.84); (Ntt, 1.80) ] in
    let num, den =
      List.fold_left
        (fun (n, d) (r, w) -> (n +. (w *. List.assoc r fu_utilization), d +. w))
        (0.0, 0.0) weights
    in
    num /. den
  in
  {
    config;
    tasks;
    total_cycles;
    total_seconds;
    fu_utilization;
    compute_utilization;
    total_hbm_bytes = List.fold_left (fun acc t -> acc +. t.hbm_bytes) 0.0 tasks;
  }

let task_seconds result task =
  let t = List.find (fun t -> t.task = task) result.tasks in
  t.cycles /. (result.config.Config.freq_ghz *. 1e9)

let task_fraction result task =
  let t = List.find (fun t -> t.task = task) result.tasks in
  t.cycles /. result.total_cycles

let traffic_fraction result task =
  let t = List.find (fun t -> t.task = task) result.tasks in
  t.hbm_bytes /. result.total_hbm_bytes
