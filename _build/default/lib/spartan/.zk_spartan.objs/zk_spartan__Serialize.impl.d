lib/spartan/serialize.ml: Array Buffer Bytes Int64 List Result Spartan String Zk_field Zk_orion Zk_sumcheck
