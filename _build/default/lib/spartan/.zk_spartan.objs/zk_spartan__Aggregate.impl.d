lib/spartan/aggregate.ml: Array List Printf Result Spartan Zk_field Zk_hash Zk_orion Zk_poly Zk_r1cs Zk_sumcheck Zk_util
