lib/spartan/serialize.mli: Spartan
