lib/spartan/spartan.mli: Zk_field Zk_hash Zk_orion Zk_r1cs Zk_sumcheck Zk_util
