lib/spartan/aggregate.mli: Spartan Zk_field Zk_orion Zk_r1cs Zk_sumcheck Zk_util
