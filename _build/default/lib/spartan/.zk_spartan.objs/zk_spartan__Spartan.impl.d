lib/spartan/spartan.ml: Array Buffer Bytes Int64 Printf Result Seq Zk_field Zk_hash Zk_orion Zk_poly Zk_r1cs Zk_sumcheck Zk_util
