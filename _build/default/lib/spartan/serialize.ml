module Gf = Zk_field.Gf
module Orion = Zk_orion.Orion
module Sumcheck = Zk_sumcheck.Sumcheck

let magic = "NCAP1\x00\x00\x00"

(* --- writer --- *)

let put_u64 buf (x : int64) =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 x;
  Buffer.add_bytes buf b

let put_int buf n = put_u64 buf (Int64.of_int n)

let put_gf buf x = put_u64 buf (Gf.to_int64 x)

let put_gf_array buf a =
  put_int buf (Array.length a);
  Array.iter (put_gf buf) a

let put_digest buf d =
  assert (String.length d = 32);
  Buffer.add_string buf d

let put_sumcheck buf (p : Sumcheck.proof) =
  put_int buf (Array.length p.Sumcheck.round_polys);
  Array.iter (put_gf_array buf) p.Sumcheck.round_polys

let put_eval_proof buf (p : Orion.eval_proof) =
  put_gf_array buf p.Orion.u;
  put_int buf (Array.length p.Orion.proximity);
  Array.iter (put_gf_array buf) p.Orion.proximity;
  put_int buf (Array.length p.Orion.columns);
  Array.iter
    (fun (j, col, path) ->
      put_int buf j;
      put_gf_array buf col;
      put_int buf (List.length path);
      List.iter (put_digest buf) path)
    p.Orion.columns

let proof_to_bytes (p : Spartan.proof) =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf magic;
  let cm = p.Spartan.w_commitment in
  put_digest buf cm.Orion.root;
  put_int buf cm.Orion.num_vars;
  put_int buf cm.Orion.mat_rows;
  put_int buf cm.Orion.mat_cols;
  put_int buf (Array.length p.Spartan.reps);
  Array.iter
    (fun (r : Spartan.rep_proof) ->
      put_sumcheck buf r.Spartan.sc1;
      put_gf buf r.Spartan.va;
      put_gf buf r.Spartan.vb;
      put_gf buf r.Spartan.vc;
      put_sumcheck buf r.Spartan.sc2;
      put_gf buf r.Spartan.vw;
      put_eval_proof buf r.Spartan.w_open)
    p.Spartan.reps;
  Buffer.to_bytes buf

let serialized_size p = Bytes.length (proof_to_bytes p)

(* --- reader: total, bounds-checked --- *)

type reader = { data : bytes; mutable pos : int }

let ( let* ) = Result.bind

(* Any single length field beyond this is rejected outright: it cannot be a
   legitimate proof component and would otherwise let a malicious length
   pre-allocate unbounded memory. *)
let max_len = 1 lsl 28

let need r n =
  if r.pos + n <= Bytes.length r.data then Ok ()
  else Error "truncated proof"

let get_u64 r =
  let* () = need r 8 in
  let x = Bytes.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  Ok x

let get_len r =
  let* x = get_u64 r in
  if Int64.compare x 0L < 0 || Int64.compare x (Int64.of_int max_len) > 0 then
    Error "implausible length field"
  else Ok (Int64.to_int x)

let get_gf r =
  let* x = get_u64 r in
  if Gf.is_canonical x then Ok (Gf.of_int64 x) else Error "non-canonical field element"

let get_gf_array r =
  let* n = get_len r in
  let* () = need r (8 * n) in
  let out = Array.make (max n 1) Gf.zero in
  let rec go i =
    if i = n then Ok (if n = 0 then [||] else out)
    else
      let* x = get_gf r in
      out.(i) <- x;
      go (i + 1)
  in
  go 0

let get_digest r =
  let* () = need r 32 in
  let d = Bytes.sub_string r.data r.pos 32 in
  r.pos <- r.pos + 32;
  Ok d

let get_list r get =
  let* n = get_len r in
  let rec go i acc =
    if i = n then Ok (List.rev acc)
    else
      let* x = get r in
      go (i + 1) (x :: acc)
  in
  go 0 []

let get_array r get =
  let* l = get_list r get in
  Ok (Array.of_list l)

let get_sumcheck r =
  let* round_polys = get_array r get_gf_array in
  Ok { Sumcheck.round_polys }

let get_eval_proof r =
  let* u = get_gf_array r in
  let* proximity = get_array r get_gf_array in
  let* columns =
    get_array r (fun r ->
        let* j = get_len r in
        let* col = get_gf_array r in
        let* path = get_list r get_digest in
        Ok (j, col, path))
  in
  Ok { Orion.u; proximity; columns }

let proof_of_bytes data =
  let r = { data; pos = 0 } in
  let* () = need r (String.length magic) in
  let got = Bytes.sub_string data 0 (String.length magic) in
  if not (String.equal got magic) then Error "bad magic"
  else begin
    r.pos <- String.length magic;
    let* root = get_digest r in
    let* num_vars = get_len r in
    let* mat_rows = get_len r in
    let* mat_cols = get_len r in
    let* reps =
      get_array r (fun r ->
          let* sc1 = get_sumcheck r in
          let* va = get_gf r in
          let* vb = get_gf r in
          let* vc = get_gf r in
          let* sc2 = get_sumcheck r in
          let* vw = get_gf r in
          let* w_open = get_eval_proof r in
          Ok { Spartan.sc1; va; vb; vc; sc2; vw; w_open })
    in
    if r.pos <> Bytes.length data then Error "trailing bytes"
    else
      Ok
        {
          Spartan.w_commitment = { Orion.root; num_vars; mat_rows; mat_cols };
          reps;
        }
  end
