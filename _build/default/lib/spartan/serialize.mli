(** Binary serialization of Spartan+Orion proofs.

    Proofs cross the wire in the paper's deployment (the 10 MB/s link of
    Table I), so the library provides a canonical byte format:
    little-endian u64 for field elements and lengths, raw 32-byte digests,
    length-prefixed arrays. Decoding is total: malformed input yields
    [Error], never an exception, and decoders bound every length field
    against the remaining input. *)

val proof_to_bytes : Spartan.proof -> bytes

val proof_of_bytes : bytes -> (Spartan.proof, string) result

val serialized_size : Spartan.proof -> int
(** Exact byte length [proof_to_bytes] produces (payload plus framing). *)
