(** The Spartan+Orion zk-SNARK — the scheme NoCap accelerates (Sec. II-A,
    Sec. V).

    Pipeline, following Fig. 2 and Fig. 4:

    + the witness half of the wire vector is committed with the Orion
      polynomial commitment (Reed-Solomon + Merkle);
    + sumcheck #1 proves [sum_x eq(tau, x) * (Az(x) * Bz(x) - Cz(x)) = 0],
      reducing R1CS satisfiability to evaluation claims on Az~, Bz~, Cz~ at a
      random point [rx];
    + sumcheck #2 proves the random linear combination
      [sum_y (rA * A(rx,y) + rB * B(rx,y) + rC * C(rx,y)) * z(y)], reducing
      to one evaluation claim on [z~] at [ry];
    + [z~(ry)] splits into a public-input part the verifier computes itself
      and a witness part opened through Orion.

    The verifier evaluates the matrix MLEs [A~(rx,ry)], [B~], [C~] directly
    from the sparse matrices (O(nnz) — Spartan's NIZK variant without the
    SPARK preprocessing commitment; see DESIGN.md). Soundness over the
    Goldilocks-64 field is amplified by running the IOP [repetitions] times
    (the paper uses 3, Sec. VII-A). *)

module Gf = Zk_field.Gf

type params = {
  orion : Zk_orion.Orion.params;
  repetitions : int; (** 3 in the paper's 128-bit configuration *)
}

val default_params : params
(** Orion defaults, 3 repetitions. *)

val test_params : params
(** 1 repetition, 8-row Orion matrices: fast configuration for unit tests. *)

type rep_proof = {
  sc1 : Zk_sumcheck.Sumcheck.proof;
  va : Gf.t; (** Az~(rx) *)
  vb : Gf.t; (** Bz~(rx) *)
  vc : Gf.t; (** Cz~(rx) *)
  sc2 : Zk_sumcheck.Sumcheck.proof;
  vw : Gf.t; (** w~(ry minus the top variable) *)
  w_open : Zk_orion.Orion.eval_proof;
}

type proof = {
  w_commitment : Zk_orion.Orion.commitment;
  reps : rep_proof array;
}

type prover_stats = {
  sumcheck_mults : int;
  sumcheck_adds : int;
  spmv_mults : int;
  transcript_hashes : int;
}

val prove :
  ?rng:Zk_util.Rng.t ->
  params ->
  Zk_r1cs.R1cs.instance ->
  Zk_r1cs.R1cs.assignment ->
  proof * prover_stats
(** Produce a proof that the instance is satisfied by a witness whose public
    io the verifier will see. [rng] seeds the zk mask rows.
    @raise Invalid_argument if the assignment does not satisfy the instance. *)

val verify :
  params ->
  Zk_r1cs.R1cs.instance ->
  io:Gf.t array ->
  proof ->
  (unit, string) result
(** [verify params instance ~io proof]: [io] is the live public io prefix
    (constant 1 followed by public inputs), as returned by
    {!Zk_r1cs.R1cs.public_io}. *)

val proof_size_bytes : params -> proof -> int
(** Serialized proof size (8 B per field element, 32 B per digest). *)

val instance_digest : Zk_r1cs.R1cs.instance -> Zk_hash.Keccak.digest
(** Binding digest of the constraint matrices; absorbed into the transcript
    by both parties so proofs are tied to a specific circuit. *)
