(* Derivations, for an instance of size n = 2^L:

   Sumcheck #1 runs over 4 tables at degree 3. Round i processes
   half = n / 2^i index pairs; summed over rounds, half totals (n - 1).
   Per index pair: 4 evaluation points x 2 multiplies in the combination
   eq * (az*bz - cz) = 8 multiplies, plus 4 fold multiplies = 12.
   Sumcheck #2 (2 tables, degree 2): 3 points x 1 multiply + 2 folds = 5.

   Additions per index pair: the prover's generic loop counts
   (degree + 1) * (k + 1) evaluation adds plus 2k fold adds:
   sumcheck #1: 4 * 5 + 2 * 4 = 28; sumcheck #2: 3 * 3 + 2 * 2 = 13. *)

let sumcheck_mults ~n ~repetitions = repetitions * 17 * (n - 1)

let sumcheck_adds ~n ~repetitions = repetitions * (28 + 13) * (n - 1)

let spmv_mults ~nnz ~repetitions = (1 + repetitions) * nnz
