lib/perf/endtoend.ml: Nocap_model Zk_baseline Zk_workloads
