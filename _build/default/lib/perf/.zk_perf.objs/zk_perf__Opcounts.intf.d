lib/perf/opcounts.mli:
