lib/perf/endtoend.mli: Zk_workloads
