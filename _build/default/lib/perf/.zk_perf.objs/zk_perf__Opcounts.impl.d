lib/perf/opcounts.ml:
