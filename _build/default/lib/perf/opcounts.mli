(** Closed-form operation counts for the software Spartan+Orion prover,
    cross-validated against the instrumented implementation (the "op-count
    validation" of DESIGN.md Sec. 4).

    These formulas describe {e this repository's} prover (Spartan NIZK
    variant, parameterizable repetitions); the accelerator's task model
    ({!Nocap_model.Workload}) uses the paper-calibrated full-protocol
    coefficients. The tests assert the formulas here match
    {!Zk_spartan.Spartan.prover_stats} exactly, grounding the model pipeline
    in executed code. *)

val sumcheck_mults : n:int -> repetitions:int -> int
(** Prover field multiplications across both sumchecks:
    [reps * 17 * (n - 1)] for an instance of size [n]
    (12 per element for the degree-3 sumcheck, 5 for the degree-2). *)

val sumcheck_adds : n:int -> repetitions:int -> int
(** [reps * ((16 + 2*4)*(n-1) + (9 + 2*2)*(n-1))]: evaluation-point updates
    plus fold additions, both sumchecks. *)

val spmv_mults : nnz:int -> repetitions:int -> int
(** One forward SpMV over A, B, C plus one transpose SpMV per repetition:
    [(1 + reps) * nnz]. *)
