module Fq = Zk_field.Fq_bls
module Fr = Zk_field.Fr_bls
module Limbs = Zk_field.Limbs

(* Jacobian coordinates: (X, Y, Z) represents the affine point
   (X / Z^2, Y / Z^3); Z = 0 encodes the point at infinity. *)
type t = { x : Fq.t; y : Fq.t; z : Fq.t }

let b_coeff = Fq.of_int 4

let infinity = { x = Fq.one; y = Fq.one; z = Fq.zero }

let is_infinity p = Fq.is_zero p.z

let is_on_curve p =
  if is_infinity p then true
  else begin
    (* Y^2 = X^3 + 4 Z^6 in Jacobian form. *)
    let z2 = Fq.square p.z in
    let z6 = Fq.mul (Fq.square z2) z2 in
    Fq.equal (Fq.square p.y) (Fq.add (Fq.mul (Fq.square p.x) p.x) (Fq.mul b_coeff z6))
  end

let of_affine ~x ~y =
  let p = { x; y; z = Fq.one } in
  if not (is_on_curve p) then invalid_arg "G1.of_affine: point not on curve";
  p

let to_affine p =
  if is_infinity p then None
  else begin
    let zinv = Fq.inv p.z in
    let zinv2 = Fq.square zinv in
    Some (Fq.mul p.x zinv2, Fq.mul p.y (Fq.mul zinv2 zinv))
  end

let generator =
  of_affine
    ~x:
      (Fq.of_hex
         ("17f1d3a73197d7942695638c4fa9ac0fc3688c4f9774b905a14e3a3f171bac58"
        ^ "6c55e83ff97a1aeffb3af00adb22c6bb"))
    ~y:
      (Fq.of_hex
         ("08b3f481e3aaa0f1a09e30ed741d8ae4fcf5e095d5d00af600db18cb2c04b3ed"
        ^ "d03cc744a2888ae40caa232946c5e7e1"))

let equal p q =
  match (is_infinity p, is_infinity q) with
  | true, true -> true
  | true, false | false, true -> false
  | false, false ->
    (* Cross-multiplied comparison avoids inversions. *)
    let pz2 = Fq.square p.z and qz2 = Fq.square q.z in
    Fq.equal (Fq.mul p.x qz2) (Fq.mul q.x pz2)
    && Fq.equal (Fq.mul p.y (Fq.mul qz2 q.z)) (Fq.mul q.y (Fq.mul pz2 p.z))

let neg p = if is_infinity p then p else { p with y = Fq.neg p.y }

(* dbl-2009-l: 2M + 5S for a = 0 curves. *)
let double p =
  if is_infinity p then p
  else begin
    let a = Fq.square p.x in
    let b = Fq.square p.y in
    let c = Fq.square b in
    let d =
      Fq.double (Fq.sub (Fq.sub (Fq.square (Fq.add p.x b)) a) c)
    in
    let e = Fq.add a (Fq.double a) in
    let f = Fq.square e in
    let x3 = Fq.sub f (Fq.double d) in
    let y3 = Fq.sub (Fq.mul e (Fq.sub d x3)) (Fq.double (Fq.double (Fq.double c))) in
    let z3 = Fq.double (Fq.mul p.y p.z) in
    { x = x3; y = y3; z = z3 }
  end

(* add-2007-bl: 11M + 5S. *)
let add p q =
  if is_infinity p then q
  else if is_infinity q then p
  else begin
    let z1z1 = Fq.square p.z in
    let z2z2 = Fq.square q.z in
    let u1 = Fq.mul p.x z2z2 in
    let u2 = Fq.mul q.x z1z1 in
    let s1 = Fq.mul p.y (Fq.mul q.z z2z2) in
    let s2 = Fq.mul q.y (Fq.mul p.z z1z1) in
    let h = Fq.sub u2 u1 in
    let r = Fq.double (Fq.sub s2 s1) in
    if Fq.is_zero h then
      if Fq.is_zero r then double p else infinity
    else begin
      let i = Fq.square (Fq.double h) in
      let j = Fq.mul h i in
      let v = Fq.mul u1 i in
      let x3 = Fq.sub (Fq.sub (Fq.square r) j) (Fq.double v) in
      let y3 = Fq.sub (Fq.mul r (Fq.sub v x3)) (Fq.double (Fq.mul s1 j)) in
      let z3 =
        Fq.mul (Fq.sub (Fq.sub (Fq.square (Fq.add p.z q.z)) z1z1) z2z2) h
      in
      { x = x3; y = y3; z = z3 }
    end
  end

let scalar_mul k p =
  let bits = Fr.to_limbs k in
  let n = Limbs.bits bits in
  let acc = ref infinity in
  for i = n - 1 downto 0 do
    acc := double !acc;
    if Limbs.bit bits i then acc := add !acc p
  done;
  !acc

let random rng = scalar_mul (Fr.random rng) generator

let field_mults_per_add = 16
