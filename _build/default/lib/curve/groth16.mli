(** Groth16 over the BLS12-381 scalar field — the baseline zk-SNARK that
    PipeZK and GZKP accelerate (Sec. III).

    The full prover data path is implemented: R1CS-to-QAP conversion with
    Lagrange evaluation at the toxic-waste point, the coset-NTT computation of
    the quotient polynomial [h(x) = (A(x)B(x) - C(x)) / Z(x)], and the
    random-shifted proof terms. Group exponentiations are carried out in the
    exponent (over Fr) with the trapdoor retained, replacing the pairing-based
    verification by the equivalent scalar identity — see DESIGN.md: the
    prover-side work being modelled (NTTs + MSMs) is what the comparison
    needs, and the real G1 MSM kernel lives in {!Msm}. *)

module Fr = Zk_field.Fr_bls

type lc = (int * Fr.t) list
(** Linear combination over variables; variable 0 is the constant 1. *)

type circuit = {
  num_vars : int;
  num_public : int; (** variables [0 .. num_public-1] are public (incl. 1) *)
  constraints : (lc * lc * lc) array;
}

val satisfied : circuit -> Fr.t array -> bool

type setup
(** Proving/verification parameters; retains the trapdoor (simulation
    setting). *)

type proof = { pi_a : Fr.t; pi_b : Fr.t; pi_c : Fr.t }

val setup : Zk_util.Rng.t -> circuit -> setup

val prove : Zk_util.Rng.t -> setup -> circuit -> Fr.t array -> proof
(** @raise Invalid_argument if the assignment does not satisfy the circuit. *)

val verify : setup -> circuit -> Fr.t array -> proof -> bool
(** [verify s c public proof] with [public] the first [num_public] variable
    values (starting with 1). *)

val domain_size : circuit -> int
(** The NTT domain the prover works over (constraints padded to a power of
    two). *)

type workload = {
  ntt_points : int; (** total points across the prover's 7 size-[d] NTTs *)
  msm_g1_points : int; (** G1 MSM input points (3 MSMs of ~n each) *)
  msm_g2_points : int; (** G2 MSM input points (the phase PipeZK leaves on the CPU) *)
}

val prover_workload : n:int -> workload
(** Operation counts for a Groth16 proof over [n] constraints; drives the
    CPU/PipeZK cost models (Sec. III, Sec. VII). *)
