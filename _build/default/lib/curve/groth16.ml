module Fr = Zk_field.Fr_bls
module Ntt = Zk_ntt.Ntt.Fr_ntt

type lc = (int * Fr.t) list

type circuit = {
  num_vars : int;
  num_public : int;
  constraints : (lc * lc * lc) array;
}

let lc_eval z lc =
  List.fold_left (fun acc (j, c) -> Fr.add acc (Fr.mul c z.(j))) Fr.zero lc

let satisfied circuit z =
  Array.length z = circuit.num_vars
  && Fr.equal z.(0) Fr.one
  && Array.for_all
       (fun (a, b, c) ->
         Fr.equal (Fr.mul (lc_eval z a) (lc_eval z b)) (lc_eval z c))
       circuit.constraints

let next_pow2 n =
  let rec go k = if k >= n then k else go (2 * k) in
  go 1

let domain_size circuit = next_pow2 (max 2 (Array.length circuit.constraints))

type setup = {
  tau : Fr.t;
  alpha : Fr.t;
  beta : Fr.t;
  delta : Fr.t;
  s_domain : int;
}

type proof = { pi_a : Fr.t; pi_b : Fr.t; pi_c : Fr.t }

let nonzero rng =
  let rec go () =
    let x = Fr.random rng in
    if Fr.is_zero x then go () else x
  in
  go ()

let setup rng circuit =
  let d = domain_size circuit in
  (* tau must avoid the evaluation domain (Z(tau) <> 0); random tau hits the
     domain with negligible probability, but re-draw to be exact. *)
  let log_d =
    let rec go k m = if m = 1 then k else go (k + 1) (m lsr 1) in
    go 0 d
  in
  let rec pick_tau () =
    let t = nonzero rng in
    (* Z(tau) = tau^d - 1 *)
    let td = Fr.pow t [| Int64.of_int d; 0L; 0L; 0L |] in
    if Fr.equal td Fr.one then pick_tau () else t
  in
  ignore log_d;
  {
    tau = pick_tau ();
    alpha = nonzero rng;
    beta = nonzero rng;
    delta = nonzero rng;
    s_domain = d;
  }

(* Lagrange basis values L_i(tau) over the radix-2 domain:
   L_i(tau) = Z(tau) * w^i / (d * (tau - w^i)). *)
let lagrange_at_tau ~d tau =
  let log_d =
    let rec go k m = if m = 1 then k else go (k + 1) (m lsr 1) in
    go 0 d
  in
  let w = Fr.root_of_unity log_d in
  let z_tau = Fr.sub (Fr.pow tau [| Int64.of_int d; 0L; 0L; 0L |]) Fr.one in
  let d_inv = Fr.inv (Fr.of_int d) in
  let out = Array.make d Fr.zero in
  let wi = ref Fr.one in
  for i = 0 to d - 1 do
    out.(i) <-
      Fr.mul (Fr.mul z_tau !wi) (Fr.mul d_inv (Fr.inv (Fr.sub tau !wi)));
    wi := Fr.mul !wi w
  done;
  out

(* Per-variable QAP evaluations at tau: Aj(tau) = sum_i a_ij * L_i(tau). *)
let qap_at_tau circuit lagrange =
  let n = circuit.num_vars in
  let at = Array.make n Fr.zero in
  let bt = Array.make n Fr.zero in
  let ct = Array.make n Fr.zero in
  Array.iteri
    (fun i (a, b, c) ->
      let li = lagrange.(i) in
      let bump dst lc =
        List.iter (fun (j, coeff) -> dst.(j) <- Fr.add dst.(j) (Fr.mul coeff li)) lc
      in
      bump at a;
      bump bt b;
      bump ct c)
    circuit.constraints;
  (at, bt, ct)

(* Quotient polynomial h(x) = (A(x)B(x) - C(x)) / Z(x), computed with the
   standard coset trick: on the coset gH, Z(g w^i) = g^d - 1 is constant, so
   the division is a pointwise scaling. This is the 7-NTT pipeline that
   PipeZK's NTT engines accelerate. *)
let quotient_evals ~d u v w =
  let plan = Ntt.plan d in
  let to_coeffs evals =
    let a = Array.copy evals in
    Ntt.inverse plan a;
    a
  in
  let ua = to_coeffs u and va = to_coeffs v and wa = to_coeffs w in
  let g = Fr.multiplicative_generator in
  let shift coeffs =
    let out = Array.copy coeffs in
    let gi = ref Fr.one in
    for i = 0 to d - 1 do
      out.(i) <- Fr.mul out.(i) !gi;
      gi := Fr.mul !gi g
    done;
    Ntt.forward plan out;
    out
  in
  let uc = shift ua and vc = shift va and wc = shift wa in
  let z_coset = Fr.sub (Fr.pow g [| Int64.of_int d; 0L; 0L; 0L |]) Fr.one in
  let z_inv = Fr.inv z_coset in
  let h_coset =
    Array.init d (fun i -> Fr.mul z_inv (Fr.sub (Fr.mul uc.(i) vc.(i)) wc.(i)))
  in
  Ntt.inverse plan h_coset;
  (* Undo the coset shift to recover h's coefficients. *)
  let g_inv = Fr.inv g in
  let gi = ref Fr.one in
  for i = 0 to d - 1 do
    h_coset.(i) <- Fr.mul h_coset.(i) !gi;
    gi := Fr.mul !gi g_inv
  done;
  h_coset

let prove rng s circuit z =
  if not (satisfied circuit z) then invalid_arg "Groth16.prove: unsatisfied";
  let d = s.s_domain in
  let m = Array.length circuit.constraints in
  (* Evaluations of A.z, B.z, C.z per constraint (zero-padded to the domain). *)
  let u = Array.make d Fr.zero
  and v = Array.make d Fr.zero
  and w = Array.make d Fr.zero in
  Array.iteri
    (fun i (a, b, c) ->
      u.(i) <- lc_eval z a;
      v.(i) <- lc_eval z b;
      w.(i) <- lc_eval z c)
    circuit.constraints;
  ignore m;
  let lagrange = lagrange_at_tau ~d s.tau in
  let at, bt, ct = qap_at_tau circuit lagrange in
  let dot arr =
    let acc = ref Fr.zero in
    Array.iteri (fun j aj -> acc := Fr.add !acc (Fr.mul z.(j) aj)) arr;
    !acc
  in
  let a_tau = dot at and b_tau = dot bt in
  (* h(tau) * Z(tau). *)
  let h = quotient_evals ~d u v w in
  let h_tau =
    let acc = ref Fr.zero and ti = ref Fr.one in
    Array.iter
      (fun c ->
        acc := Fr.add !acc (Fr.mul c !ti);
        ti := Fr.mul !ti s.tau)
      h;
    !acc
  in
  let z_tau = Fr.sub (Fr.pow s.tau [| Int64.of_int d; 0L; 0L; 0L |]) Fr.one in
  let hz = Fr.mul h_tau z_tau in
  (* Private-input contribution to pi_C. *)
  let priv = ref Fr.zero in
  for j = circuit.num_public to circuit.num_vars - 1 do
    priv :=
      Fr.add !priv
        (Fr.mul z.(j)
           (Fr.add (Fr.mul s.beta at.(j)) (Fr.add (Fr.mul s.alpha bt.(j)) ct.(j))))
  done;
  let r = Fr.random rng and t = Fr.random rng in
  let pi_a = Fr.add s.alpha (Fr.add a_tau (Fr.mul r s.delta)) in
  let pi_b = Fr.add s.beta (Fr.add b_tau (Fr.mul t s.delta)) in
  let delta_inv = Fr.inv s.delta in
  let pi_c =
    Fr.add
      (Fr.mul (Fr.add !priv hz) delta_inv)
      (Fr.sub
         (Fr.add (Fr.mul t pi_a) (Fr.mul r pi_b))
         (Fr.mul (Fr.mul r t) s.delta))
  in
  { pi_a; pi_b; pi_c }

let verify s circuit public proof =
  if Array.length public <> circuit.num_public then false
  else begin
    let d = s.s_domain in
    let lagrange = lagrange_at_tau ~d s.tau in
    let at, bt, ct = qap_at_tau circuit lagrange in
    (* Public-input commitment, computed by the verifier. *)
    let ic = ref Fr.zero in
    for j = 0 to circuit.num_public - 1 do
      ic :=
        Fr.add !ic
          (Fr.mul public.(j)
             (Fr.add (Fr.mul s.beta at.(j)) (Fr.add (Fr.mul s.alpha bt.(j)) ct.(j))))
    done;
    (* Pairing identity in the exponent:
       pi_A * pi_B = alpha * beta + IC + pi_C * delta. *)
    let lhs = Fr.mul proof.pi_a proof.pi_b in
    let rhs =
      Fr.add (Fr.mul s.alpha s.beta) (Fr.add !ic (Fr.mul proof.pi_c s.delta))
    in
    Fr.equal lhs rhs
  end

type workload = { ntt_points : int; msm_g1_points : int; msm_g2_points : int }

let prover_workload ~n =
  let d = next_pow2 (max 2 n) in
  {
    (* 3 inverse NTTs + 3 coset NTTs + 1 inverse NTT for h. *)
    ntt_points = 7 * d;
    (* MSMs over the A, C and H query bases (~n points each). *)
    msm_g1_points = 3 * n;
    (* The B query in G2 — the phase PipeZK offloads to the CPU. *)
    msm_g2_points = n;
  }
