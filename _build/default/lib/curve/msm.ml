module Fr = Zk_field.Fr_bls
module Limbs = Zk_field.Limbs

let naive scalars points =
  if Array.length scalars <> Array.length points then invalid_arg "Msm.naive: lengths";
  let acc = ref G1.infinity in
  Array.iteri (fun i s -> acc := G1.add !acc (G1.scalar_mul s points.(i))) scalars;
  !acc

let window_for n =
  let rec log2 k m = if m <= 1 then k else log2 (k + 1) (m / 2) in
  min 16 (max 2 (log2 0 n - 2))

let scalar_bits = 255

(* Extract the [window]-bit digit of a scalar starting at bit [lo]. *)
let digit limbs lo window =
  let v = ref 0 in
  for b = window - 1 downto 0 do
    let bit = if Limbs.bit limbs (lo + b) then 1 else 0 in
    v := (!v lsl 1) lor bit
  done;
  !v

let pippenger ?window scalars points =
  let n = Array.length scalars in
  if n <> Array.length points then invalid_arg "Msm.pippenger: lengths";
  if n = 0 then G1.infinity
  else begin
    let c = match window with Some c -> c | None -> window_for n in
    let num_windows = (scalar_bits + c - 1) / c in
    let limbs = Array.map Fr.to_limbs scalars in
    let acc = ref G1.infinity in
    for w = num_windows - 1 downto 0 do
      (* Shift the accumulator left by one window. *)
      if not (G1.is_infinity !acc) then
        for _ = 1 to c do
          acc := G1.double !acc
        done;
      (* Bucket accumulation for this window. *)
      let buckets = Array.make ((1 lsl c) - 1) G1.infinity in
      for i = 0 to n - 1 do
        let d = digit limbs.(i) (w * c) c in
        if d > 0 then buckets.(d - 1) <- G1.add buckets.(d - 1) points.(i)
      done;
      (* Running-sum reduction: sum_d d * bucket_d with 2 * |buckets| adds. *)
      let running = ref G1.infinity and windowed = ref G1.infinity in
      for d = Array.length buckets - 1 downto 0 do
        running := G1.add !running buckets.(d);
        windowed := G1.add !windowed !running
      done;
      acc := G1.add !acc !windowed
    done;
    !acc
  end

let point_adds_estimate ~n ~window =
  let num_windows = (scalar_bits + window - 1) / window in
  (* Per window: n bucket insertions + 2 * 2^window reduction adds, plus the
     window shift doublings. *)
  num_windows * (n + (2 * (1 lsl window)) + window)
