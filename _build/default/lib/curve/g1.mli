(** The BLS12-381 G1 curve group: [y^2 = x^3 + 4] over {!Zk_field.Fq_bls}.

    This is the group Groth16's prover does its multi-scalar multiplications
    in — the workload PipeZK accelerates and the reason curve-based SNARKs are
    hard to speed up (each point addition costs ~16 381-bit field
    multiplications, Sec. III). Points use Jacobian projective coordinates so
    additions need no field inversions. *)

module Fq = Zk_field.Fq_bls
module Fr = Zk_field.Fr_bls

type t
(** A curve point (including infinity). *)

val infinity : t
val generator : t
(** The standard BLS12-381 G1 generator. *)

val is_infinity : t -> bool
val of_affine : x:Fq.t -> y:Fq.t -> t
(** @raise Invalid_argument if the point is not on the curve. *)

val to_affine : t -> (Fq.t * Fq.t) option
(** [None] for infinity. *)

val is_on_curve : t -> bool
val equal : t -> t -> bool
val neg : t -> t
val double : t -> t
val add : t -> t -> t
val scalar_mul : Fr.t -> t -> t
(** Double-and-add over the scalar's canonical bits. *)

val random : Zk_util.Rng.t -> t
(** A random multiple of the generator. *)

val field_mults_per_add : int
(** Approximate 381-bit field multiplications per mixed point addition; used
    by the Groth16 cost model (Sec. III's critical-operation accounting). *)
