lib/curve/g1.mli: Zk_field Zk_util
