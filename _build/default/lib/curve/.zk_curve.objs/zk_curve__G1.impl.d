lib/curve/g1.ml: Zk_field
