lib/curve/msm.ml: Array G1 Zk_field
