lib/curve/groth16.mli: Zk_field Zk_util
