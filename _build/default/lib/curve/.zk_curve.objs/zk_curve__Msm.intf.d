lib/curve/msm.mli: G1 Zk_field
