lib/curve/groth16.ml: Array Int64 List Zk_field Zk_ntt
