lib/zkdb/zkdb.mli: Zk_field Zk_r1cs Zk_spartan Zk_workloads
