lib/zkdb/zkdb.ml: Array Int64 List Nocap_model Zk_baseline Zk_field Zk_r1cs Zk_spartan Zk_util Zk_workloads
