(** Montgomery-form prime field arithmetic over multi-limb moduli.

    Instantiated for the BLS12-381 scalar field {!Fr_bls} and base field
    {!Fq_bls}, which the Groth16/PipeZK baseline computes in. *)

module type PRIME = sig
  val name : string

  val limbs : int
  (** Number of 64-bit limbs. *)

  val modulus_hex : string
  (** The modulus as a big-endian hex string (no "0x" prefix); must be odd. *)
end

module type S = sig
  type t
  (** A field element in Montgomery form. Abstract; all conversions go through
      [of_*]/[to_*]. *)

  val limbs : int
  val modulus : int64 array

  val zero : t
  val one : t
  val of_int : int -> t
  val of_limbs : int64 array -> t
  (** Standard-form little-endian limbs (must be [< modulus]). *)

  val to_limbs : t -> int64 array
  (** Canonical standard-form little-endian limbs. *)

  val of_hex : string -> t
  val to_hex : t -> string
  val equal : t -> t -> bool
  val is_zero : t -> bool
  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val double : t -> t
  val mul : t -> t -> t
  val square : t -> t
  val pow : t -> int64 array -> t
  (** Exponent given as little-endian unsigned limbs (any length). *)

  val inv : t -> t
  (** @raise Division_by_zero on [zero]. *)

  val random : Zk_util.Rng.t -> t
  val pp : Format.formatter -> t -> unit
end

module Make (P : PRIME) : S
