(** The BLS12-381 base field Fq (381 bits, 6 limbs), over which the G1 curve
    points of the Groth16 baseline live. *)

include Mont.S
