include Mont.Make (struct
  let name = "Fr_bls"
  let limbs = 4

  let modulus_hex =
    "73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001"
end)

let two_adicity = 32

let multiplicative_generator = of_int 7

let root_of_unity k =
  if k < 0 || k > two_adicity then invalid_arg "Fr_bls.root_of_unity";
  (* exponent = (r - 1) / 2^k, computed on standard-form limbs. *)
  let r_minus_1, _ = Limbs.sub modulus [| 1L; 0L; 0L; 0L |] in
  let e = Array.copy r_minus_1 in
  (* Logical right shift of the 4-limb value by k bits (k <= 32 so the shift
     stays within adjacent limbs). *)
  let shift x k =
    if k = 0 then x
    else begin
      let n = Array.length x in
      let out = Array.make n 0L in
      for i = 0 to n - 1 do
        let lo = Int64.shift_right_logical x.(i) k in
        let hi =
          if i + 1 < n then Int64.shift_left x.(i + 1) (64 - k) else 0L
        in
        out.(i) <- Int64.logor lo hi
      done;
      out
    end
  in
  pow multiplicative_generator (shift e k)
