(** The quadratic extension GF(p^2) of Goldilocks-64, with [phi^2 = 7]
    (7 is a quadratic non-residue mod p; see the tests).

    Sec. VII-A's 128-bit configuration amplifies the 64-bit field's soundness
    by running every sumcheck three times. Sampling the verifier challenges
    from this extension instead is the standard alternative — one run with
    ~2^128 challenge space — at the cost of 3 base multiplications per
    extension multiplication. {!Zk_sumcheck.Sumcheck_ext} implements that
    variant; the ablation bench compares the two. *)

type t = { c0 : Gf.t; c1 : Gf.t }
(** [c0 + c1 * phi]. *)

val zero : t
val one : t
val phi : t
val of_base : Gf.t -> t
val equal : t -> t -> bool
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val square : t -> t
val mul_base : t -> Gf.t -> t
val inv : t -> t
(** Via the conjugate and the norm. @raise Division_by_zero on zero. *)

val conjugate : t -> t
(** The Frobenius map [x -> x^p]: negates the [phi] coefficient. *)

val norm : t -> Gf.t
(** [x * conjugate x = c0^2 - 7 c1^2], an element of the base field. *)

val pow : t -> int64 -> t
val random : Zk_util.Rng.t -> t
val pp : Format.formatter -> t -> unit
