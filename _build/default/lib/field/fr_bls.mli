(** The BLS12-381 scalar field Fr (255 bits, 4 limbs).

    Groth16's QAP polynomial arithmetic (the NTTs PipeZK accelerates) happens
    in this field. [r - 1 = 2^32 * t] with [t] odd, so radix-2 NTTs up to
    [2^32] points exist. *)

include Mont.S

val two_adicity : int
(** [32]. *)

val multiplicative_generator : t
(** [7]. *)

val root_of_unity : int -> t
(** [root_of_unity k] is a primitive [2^k]-th root of unity, [k <= 32]. *)
