(** The Goldilocks-64 prime field, [p = 2^64 - 2^32 + 1].

    This is the field NoCap computes in (Sec. IV-A of the paper). The prime
    admits a reduction algorithm using only additions and bit shifts because
    [2^64 = 2^32 - 1 (mod p)] and [2^96 = -1 (mod p)], which is what makes the
    multiply functional units cheap.

    Elements are represented canonically as [int64] values in [\[0, p)],
    interpreted as unsigned. *)

type t = int64

val p : int64
(** The field modulus, [0xFFFF_FFFF_0000_0001]. *)

val zero : t
val one : t
val two : t

val of_int : int -> t
(** [of_int n] reduces [n] (interpreted as a signed integer) into the field. *)

val of_int64 : int64 -> t
(** [of_int64 n] reduces [n] (interpreted as unsigned) into the field. *)

val to_int64 : t -> int64
(** Canonical unsigned representative in [\[0, p)]. *)

val is_canonical : int64 -> bool

val equal : t -> t -> bool
val compare : t -> t -> int

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val square : t -> t
val double : t -> t

val reduce128 : lo:int64 -> hi:int64 -> t
(** Reduce a 128-bit value [hi * 2^64 + lo] (both halves unsigned) into the
    field using the shift-based Goldilocks reduction. *)

val pow : t -> int64 -> t
(** [pow x e] with [e] interpreted as an unsigned 64-bit exponent. *)

val inv : t -> t
(** Multiplicative inverse. @raise Division_by_zero on [zero]. *)

val div : t -> t -> t

val batch_inv : t array -> t array
(** Batch inversion (Montgomery's trick): one inversion plus [3n] multiplies.
    @raise Division_by_zero if any element is [zero]. *)

val multiplicative_generator : t
(** [7], a generator of the multiplicative group. *)

val two_adicity : int
(** [32]: [p - 1 = 2^32 * (2^32 - 1)]. *)

val root_of_unity : int -> t
(** [root_of_unity k] is a primitive [2^k]-th root of unity, for
    [0 <= k <= two_adicity]. *)

val random : Zk_util.Rng.t -> t
(** Uniform random field element. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
