let mask32 = 0xFFFF_FFFFL

let ( <^ ) a b = Int64.unsigned_compare a b < 0

let mul64 a b =
  let a_lo = Int64.logand a mask32 and a_hi = Int64.shift_right_logical a 32 in
  let b_lo = Int64.logand b mask32 and b_hi = Int64.shift_right_logical b 32 in
  let ll = Int64.mul a_lo b_lo in
  let lh = Int64.mul a_lo b_hi in
  let hl = Int64.mul a_hi b_lo in
  let hh = Int64.mul a_hi b_hi in
  let t = Int64.add hl (Int64.shift_right_logical ll 32) in
  let u = Int64.add lh (Int64.logand t mask32) in
  let lo = Int64.logor (Int64.shift_left u 32) (Int64.logand ll mask32) in
  let hi =
    Int64.add hh
      (Int64.add (Int64.shift_right_logical t 32) (Int64.shift_right_logical u 32))
  in
  (hi, lo)

let add_carry a b c =
  let s1 = Int64.add a b in
  let c1 = if s1 <^ a then 1L else 0L in
  let s2 = Int64.add s1 c in
  let c2 = if s2 <^ s1 then 1L else 0L in
  (s2, Int64.add c1 c2)

let sub_borrow a b brw =
  let d1 = Int64.sub a b in
  let b1 = if a <^ b then 1L else 0L in
  let d2 = Int64.sub d1 brw in
  let b2 = if d1 <^ brw then 1L else 0L in
  (d2, Int64.add b1 b2)

let compare a b =
  let n = Array.length a in
  assert (Array.length b = n);
  let rec go i =
    if i < 0 then 0
    else
      let c = Int64.unsigned_compare a.(i) b.(i) in
      if c <> 0 then c else go (i - 1)
  in
  go (n - 1)

let is_zero a = Array.for_all (Int64.equal 0L) a

let add a b =
  let n = Array.length a in
  let out = Array.make n 0L in
  let carry = ref 0L in
  for i = 0 to n - 1 do
    let s, c = add_carry a.(i) b.(i) !carry in
    out.(i) <- s;
    carry := c
  done;
  (out, !carry)

let sub a b =
  let n = Array.length a in
  let out = Array.make n 0L in
  let borrow = ref 0L in
  for i = 0 to n - 1 do
    let d, brw = sub_borrow a.(i) b.(i) !borrow in
    out.(i) <- d;
    borrow := brw
  done;
  (out, !borrow)

let mul a b =
  let n = Array.length a and m = Array.length b in
  let out = Array.make (n + m) 0L in
  for i = 0 to n - 1 do
    let carry = ref 0L in
    for j = 0 to m - 1 do
      let hi, lo = mul64 a.(i) b.(j) in
      let s, c1 = add_carry out.(i + j) lo !carry in
      out.(i + j) <- s;
      (* hi < 2^64 - 1 so hi + c1 cannot wrap. *)
      carry := Int64.add hi c1
    done;
    out.(i + m) <- Int64.add out.(i + m) !carry
  done;
  out

let neg_inv64 m0 =
  assert (Int64.logand m0 1L = 1L);
  (* Newton-Hensel: x <- x * (2 - m0 * x) doubles the number of correct
     low-order bits each step; 6 steps suffice for 64 bits. *)
  let x = ref m0 in
  for _ = 1 to 6 do
    x := Int64.mul !x (Int64.sub 2L (Int64.mul m0 !x))
  done;
  Int64.neg !x

let bit x i =
  let limb = i / 64 and off = i mod 64 in
  limb < Array.length x
  && Int64.logand (Int64.shift_right_logical x.(limb) off) 1L = 1L

let bits x =
  let rec top i =
    if i < 0 then 0
    else if Int64.equal x.(i) 0L then top (i - 1)
    else
      let rec msb b = if Int64.equal (Int64.shift_right_logical x.(i) b) 0L then b else msb (b + 1) in
      (i * 64) + msb 0
  in
  top (Array.length x - 1)

let of_hex n s =
  let out = Array.make n 0L in
  let len = String.length s in
  let nibble c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Limbs.of_hex"
  in
  for i = 0 to len - 1 do
    (* Character at position len-1-i contributes nibble i (little-endian). *)
    let v = Int64.of_int (nibble s.[len - 1 - i]) in
    let limb = i / 16 and off = 4 * (i mod 16) in
    if limb >= n then (
      if not (Int64.equal v 0L) then invalid_arg "Limbs.of_hex: overflow")
    else out.(limb) <- Int64.logor out.(limb) (Int64.shift_left v off)
  done;
  out

let to_hex x =
  let n = Array.length x in
  let buf = Buffer.create (n * 16) in
  let started = ref false in
  for i = n - 1 downto 0 do
    if !started then Buffer.add_string buf (Printf.sprintf "%016Lx" x.(i))
    else if not (Int64.equal x.(i) 0L) then begin
      started := true;
      Buffer.add_string buf (Printf.sprintf "%Lx" x.(i))
    end
  done;
  if !started then Buffer.contents buf else "0"
