type t = { c0 : Gf.t; c1 : Gf.t }

(* The non-residue: phi^2 = 7. *)
let w = 7L

let zero = { c0 = Gf.zero; c1 = Gf.zero }
let one = { c0 = Gf.one; c1 = Gf.zero }
let phi = { c0 = Gf.zero; c1 = Gf.one }

let of_base x = { c0 = x; c1 = Gf.zero }

let equal x y = Gf.equal x.c0 y.c0 && Gf.equal x.c1 y.c1

let add x y = { c0 = Gf.add x.c0 y.c0; c1 = Gf.add x.c1 y.c1 }
let sub x y = { c0 = Gf.sub x.c0 y.c0; c1 = Gf.sub x.c1 y.c1 }
let neg x = { c0 = Gf.neg x.c0; c1 = Gf.neg x.c1 }

let mul x y =
  (* (a + b phi)(c + d phi) = ac + 7bd + (ad + bc) phi. *)
  let ac = Gf.mul x.c0 y.c0 and bd = Gf.mul x.c1 y.c1 in
  {
    c0 = Gf.add ac (Gf.mul w bd);
    c1 = Gf.add (Gf.mul x.c0 y.c1) (Gf.mul x.c1 y.c0);
  }

let square x = mul x x

let mul_base x s = { c0 = Gf.mul x.c0 s; c1 = Gf.mul x.c1 s }

let conjugate x = { x with c1 = Gf.neg x.c1 }

let norm x = Gf.sub (Gf.square x.c0) (Gf.mul w (Gf.square x.c1))

let inv x =
  let n = norm x in
  if Gf.equal n Gf.zero then raise Division_by_zero;
  mul_base (conjugate x) (Gf.inv n)

let pow x e =
  let acc = ref one and base = ref x and e = ref e in
  while not (Int64.equal !e 0L) do
    if Int64.logand !e 1L = 1L then acc := mul !acc !base;
    base := square !base;
    e := Int64.shift_right_logical !e 1
  done;
  !acc

let random rng = { c0 = Gf.random rng; c1 = Gf.random rng }

let pp fmt x = Format.fprintf fmt "(%a + %a*phi)" Gf.pp x.c0 Gf.pp x.c1
