module type PRIME = sig
  val name : string
  val limbs : int
  val modulus_hex : string
end

module type S = sig
  type t

  val limbs : int
  val modulus : int64 array
  val zero : t
  val one : t
  val of_int : int -> t
  val of_limbs : int64 array -> t
  val to_limbs : t -> int64 array
  val of_hex : string -> t
  val to_hex : t -> string
  val equal : t -> t -> bool
  val is_zero : t -> bool
  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val double : t -> t
  val mul : t -> t -> t
  val square : t -> t
  val pow : t -> int64 array -> t
  val inv : t -> t
  val random : Zk_util.Rng.t -> t
  val pp : Format.formatter -> t -> unit
end

module Make (P : PRIME) : S = struct
  type t = int64 array (* Montgomery form, length P.limbs, < modulus *)

  let limbs = P.limbs
  let modulus = Limbs.of_hex P.limbs P.modulus_hex
  let n0_inv = Limbs.neg_inv64 modulus.(0)

  let mod_add a b =
    let s, carry = Limbs.add a b in
    if not (Int64.equal carry 0L) || Limbs.compare s modulus >= 0 then
      fst (Limbs.sub s modulus)
    else s

  let mod_sub a b =
    let d, borrow = Limbs.sub a b in
    if Int64.equal borrow 0L then d else fst (Limbs.add d modulus)

  (* Montgomery reduction of a 2n-limb product (SOS method). *)
  let mont_reduce (t : int64 array) : int64 array =
    let n = limbs in
    let t = Array.append t [| 0L |] in
    for i = 0 to n - 1 do
      let u = Int64.mul t.(i) n0_inv in
      let carry = ref 0L in
      for j = 0 to n - 1 do
        let hi, lo = Limbs.mul64 u modulus.(j) in
        let s, c1 = Limbs.add_carry t.(i + j) lo !carry in
        t.(i + j) <- s;
        carry := Int64.add hi c1
      done;
      (* Propagate the remaining carry into the upper limbs. *)
      let k = ref (i + n) in
      while not (Int64.equal !carry 0L) do
        let s, c = Limbs.add_carry t.(!k) !carry 0L in
        t.(!k) <- s;
        carry := c;
        incr k
      done
    done;
    let out = Array.sub t n n in
    if not (Int64.equal t.(2 * n) 0L) || Limbs.compare out modulus >= 0 then
      fst (Limbs.sub out modulus)
    else out

  let mul a b = mont_reduce (Limbs.mul a b)
  let square a = mul a a
  let add = mod_add
  let sub = mod_sub

  let zero = Array.make limbs 0L

  let is_zero = Limbs.is_zero
  let neg a = if is_zero a then Array.copy a else fst (Limbs.sub modulus a)
  let double a = mod_add a a

  (* R mod m, computed by 64*n modular doublings of 1; R^2 by 64*n more. *)
  let r_mod_m =
    let x = ref (Array.init limbs (fun i -> if i = 0 then 1L else 0L)) in
    for _ = 1 to 64 * limbs do
      x := mod_add !x !x
    done;
    !x

  let r2_mod_m =
    let x = ref r_mod_m in
    for _ = 1 to 64 * limbs do
      x := mod_add !x !x
    done;
    !x

  let one = r_mod_m

  let of_limbs x =
    if Array.length x <> limbs then invalid_arg (P.name ^ ".of_limbs: length");
    if Limbs.compare x modulus >= 0 then invalid_arg (P.name ^ ".of_limbs: not reduced");
    mul x r2_mod_m

  let to_limbs x = mont_reduce (Array.append x (Array.make limbs 0L))

  let of_int n =
    if n < 0 then invalid_arg (P.name ^ ".of_int: negative");
    of_limbs (Array.init limbs (fun i -> if i = 0 then Int64.of_int n else 0L))

  let of_hex s = of_limbs (Limbs.of_hex limbs s)
  let to_hex x = Limbs.to_hex (to_limbs x)

  let equal a b = Limbs.compare a b = 0

  let pow x e =
    let nbits = Limbs.bits e in
    let acc = ref one in
    for i = nbits - 1 downto 0 do
      acc := square !acc;
      if Limbs.bit e i then acc := mul !acc x
    done;
    !acc

  let inv x =
    if is_zero x then raise Division_by_zero;
    let m_minus_2, borrow =
      Limbs.sub modulus (Array.init limbs (fun i -> if i = 0 then 2L else 0L))
    in
    assert (Int64.equal borrow 0L);
    pow x m_minus_2

  let random rng =
    (* Rejection sampling over the top limb keeps the bias negligible and the
       value reduced. *)
    let rec go () =
      let x = Array.init limbs (fun _ -> Zk_util.Rng.next rng) in
      if Limbs.compare x modulus < 0 then x else go ()
    in
    mul (go ()) r2_mod_m

  let pp fmt x = Format.fprintf fmt "0x%s" (to_hex x)
end
